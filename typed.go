package hear

import (
	"encoding/binary"
	"fmt"
	"math"

	"hear/internal/core"
	"hear/internal/hfp"
	"hear/internal/mpi"
)

// This file provides the typed entry points mirroring the (datatype, op)
// pairs libhear intercepts: MPI_INT/MPI_SUM, MPI_FLOAT/MPI_SUM, and the
// rest of Table 2. Each call is collective: every rank of the communicator
// must call the same method with the same element count in the same order.

func marshal64(vals []int64) []byte {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[i*8:], uint64(v))
	}
	return buf
}

func unmarshal64(buf []byte, out []int64) {
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(buf[i*8:]))
	}
}

// AllreduceInt64Sum computes the element-wise wrapping sum of send across
// all ranks into recv (which may alias send) under the integer SUM scheme
// (§5.1.1).
func (c *Context) AllreduceInt64Sum(comm *mpi.Comm, send, recv []int64) error {
	if len(recv) < len(send) {
		return fmt.Errorf("hear: recv %d < send %d", len(recv), len(send))
	}
	s, err := c.intSum(64)
	if err != nil {
		return err
	}
	buf := marshal64(send)
	if err := c.allreduce(comm, s, buf, len(send)); err != nil {
		return err
	}
	unmarshal64(buf, recv[:len(send)])
	return nil
}

// AllreduceInt32Sum is the 32-bit variant (MPI_INT + MPI_SUM).
func (c *Context) AllreduceInt32Sum(comm *mpi.Comm, send, recv []int32) error {
	if len(recv) < len(send) {
		return fmt.Errorf("hear: recv %d < send %d", len(recv), len(send))
	}
	s, err := c.intSum(32)
	if err != nil {
		return err
	}
	buf := make([]byte, 4*len(send))
	for i, v := range send {
		binary.LittleEndian.PutUint32(buf[i*4:], uint32(v))
	}
	if err := c.allreduce(comm, s, buf, len(send)); err != nil {
		return err
	}
	for i := range send {
		recv[i] = int32(binary.LittleEndian.Uint32(buf[i*4:]))
	}
	return nil
}

// AllreduceUint64Prod computes the element-wise wrapping product (§5.1.2).
func (c *Context) AllreduceUint64Prod(comm *mpi.Comm, send, recv []uint64) error {
	if len(recv) < len(send) {
		return fmt.Errorf("hear: recv %d < send %d", len(recv), len(send))
	}
	s, err := c.intProd(64)
	if err != nil {
		return err
	}
	buf := make([]byte, 8*len(send))
	for i, v := range send {
		binary.LittleEndian.PutUint64(buf[i*8:], v)
	}
	if err := c.allreduce(comm, s, buf, len(send)); err != nil {
		return err
	}
	for i := range send {
		recv[i] = binary.LittleEndian.Uint64(buf[i*8:])
	}
	return nil
}

// AllreduceUint64Xor computes the element-wise XOR (§5.1.3, MPI_BXOR).
func (c *Context) AllreduceUint64Xor(comm *mpi.Comm, send, recv []uint64) error {
	if len(recv) < len(send) {
		return fmt.Errorf("hear: recv %d < send %d", len(recv), len(send))
	}
	s, err := c.intXor(64)
	if err != nil {
		return err
	}
	buf := make([]byte, 8*len(send))
	for i, v := range send {
		binary.LittleEndian.PutUint64(buf[i*8:], v)
	}
	if err := c.allreduce(comm, s, buf, len(send)); err != nil {
		return err
	}
	for i := range send {
		recv[i] = binary.LittleEndian.Uint64(buf[i*8:])
	}
	return nil
}

// AllreduceFloat32Sum computes the element-wise float sum under the v1
// addition scheme (§5.3.3: temporal and local safety; choose γ via
// Options.Gamma). This is the MPI_FLOAT + MPI_SUM pair of the paper's DNN
// experiments.
func (c *Context) AllreduceFloat32Sum(comm *mpi.Comm, send, recv []float32) error {
	return c.float32Op(comm, send, recv, func() (core.Scheme, error) { return c.floatSum(hfp.FP32) })
}

// AllreduceFloat32SumV2 uses the alternative log-space addition (§5.3.4),
// which restores global safety at the cost of precision and dynamic range.
func (c *Context) AllreduceFloat32SumV2(comm *mpi.Comm, send, recv []float32) error {
	return c.float32Op(comm, send, recv, func() (core.Scheme, error) { return c.floatSumV2(hfp.FP32) })
}

// AllreduceFloat32Prod computes the element-wise float product (§5.3.2).
func (c *Context) AllreduceFloat32Prod(comm *mpi.Comm, send, recv []float32) error {
	return c.float32Op(comm, send, recv, func() (core.Scheme, error) { return c.floatProd(hfp.FP32) })
}

func (c *Context) float32Op(comm *mpi.Comm, send, recv []float32, mk func() (core.Scheme, error)) error {
	if len(recv) < len(send) {
		return fmt.Errorf("hear: recv %d < send %d", len(recv), len(send))
	}
	s, err := mk()
	if err != nil {
		return err
	}
	buf := make([]byte, 4*len(send))
	for i, v := range send {
		binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(v))
	}
	if err := c.allreduce(comm, s, buf, len(send)); err != nil {
		return err
	}
	for i := range send {
		recv[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
	}
	return nil
}

// AllreduceFloat64Sum is the FP64 v1 addition scheme.
func (c *Context) AllreduceFloat64Sum(comm *mpi.Comm, send, recv []float64) error {
	return c.float64Op(comm, send, recv, func() (core.Scheme, error) { return c.floatSum(hfp.FP64) })
}

// AllreduceFloat64Prod is the FP64 multiplication scheme.
func (c *Context) AllreduceFloat64Prod(comm *mpi.Comm, send, recv []float64) error {
	return c.float64Op(comm, send, recv, func() (core.Scheme, error) { return c.floatProd(hfp.FP64) })
}

// AllreduceFloat64SumV2 is the FP64 log-space addition.
func (c *Context) AllreduceFloat64SumV2(comm *mpi.Comm, send, recv []float64) error {
	return c.float64Op(comm, send, recv, func() (core.Scheme, error) { return c.floatSumV2(hfp.FP64) })
}

// AllreduceFixedSum sums real values on the shared fixed point grid (§5.2);
// inputs must be within the codec's range.
func (c *Context) AllreduceFixedSum(comm *mpi.Comm, send, recv []float64) error {
	return c.float64Op(comm, send, recv, c.fixedSum)
}

// AllreduceFixedProd multiplies real values on the fixed point grid; the
// output scale is corrected by the communicator size per §5.2.
func (c *Context) AllreduceFixedProd(comm *mpi.Comm, send, recv []float64) error {
	return c.float64Op(comm, send, recv, c.fixedProd)
}

func (c *Context) float64Op(comm *mpi.Comm, send, recv []float64, mk func() (core.Scheme, error)) error {
	if len(recv) < len(send) {
		return fmt.Errorf("hear: recv %d < send %d", len(recv), len(send))
	}
	s, err := mk()
	if err != nil {
		return err
	}
	buf := make([]byte, 8*len(send))
	for i, v := range send {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	if err := c.allreduce(comm, s, buf, len(send)); err != nil {
		return err
	}
	for i := range send {
		recv[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return nil
}

// AllreduceBoolOr computes element-wise logical OR via the counting
// encoding of §5.4 (OR/AND have no inverse and cannot be encrypted
// directly; the count ride the SUM scheme at O(log₂P) extra bits).
func (c *Context) AllreduceBoolOr(comm *mpi.Comm, send, recv []bool) error {
	return c.boolOp(comm, send, recv, true)
}

// AllreduceBoolAnd computes element-wise logical AND via the same encoding.
func (c *Context) AllreduceBoolAnd(comm *mpi.Comm, send, recv []bool) error {
	return c.boolOp(comm, send, recv, false)
}

func (c *Context) boolOp(comm *mpi.Comm, send, recv []bool, isOr bool) error {
	if len(recv) < len(send) {
		return fmt.Errorf("hear: recv %d < send %d", len(recv), len(send))
	}
	s, err := c.intSum(32)
	if err != nil {
		return err
	}
	bc := core.BoolCodec{P: c.size}
	buf := make([]byte, 4*len(send))
	if err := bc.EncodeBools(send, buf); err != nil {
		return err
	}
	if err := c.allreduce(comm, s, buf, len(send)); err != nil {
		return err
	}
	if isOr {
		return bc.DecodeOr(buf, recv[:len(send)])
	}
	return bc.DecodeAnd(buf, recv[:len(send)])
}

// AllreduceRaw runs the encrypted collective directly on a wire-format
// buffer of n elements for the given scheme — the zero-marshalling path
// used by the throughput benchmarks. The scheme must come from this
// context's rank (use Scheme).
func (c *Context) AllreduceRaw(comm *mpi.Comm, s core.Scheme, buf []byte, n int) error {
	return c.allreduce(comm, s, buf, n)
}

// SchemeKind names a scheme for Scheme lookups.
type SchemeKind string

// Scheme kinds accepted by Scheme.
const (
	Int32Sum     SchemeKind = "int32-sum"
	Int64Sum     SchemeKind = "int64-sum"
	Int64Prod    SchemeKind = "int64-prod"
	Int64Xor     SchemeKind = "int64-xor"
	Float32Sum   SchemeKind = "float32-sum"
	Float32Prod  SchemeKind = "float32-prod"
	Float32SumV2 SchemeKind = "float32-sum-v2"
	Float64Sum   SchemeKind = "float64-sum"
	Float64Prod  SchemeKind = "float64-prod"
	FixedSum     SchemeKind = "fixed-sum"
	FixedProd    SchemeKind = "fixed-prod"
)

// Scheme returns this rank's instance of the named scheme, creating it on
// first use. Instances are cached per context, matching libhear's per-rank
// state.
func (c *Context) Scheme(kind SchemeKind) (core.Scheme, error) {
	switch kind {
	case Int32Sum:
		return c.intSum(32)
	case Int64Sum:
		return c.intSum(64)
	case Int64Prod:
		return c.intProd(64)
	case Int64Xor:
		return c.intXor(64)
	case Float32Sum:
		return c.floatSum(hfp.FP32)
	case Float32Prod:
		return c.floatProd(hfp.FP32)
	case Float32SumV2:
		return c.floatSumV2(hfp.FP32)
	case Float64Sum:
		return c.floatSum(hfp.FP64)
	case Float64Prod:
		return c.floatProd(hfp.FP64)
	case FixedSum:
		return c.fixedSum()
	case FixedProd:
		return c.fixedProd()
	default:
		return nil, fmt.Errorf("hear: unknown scheme kind %q", kind)
	}
}
