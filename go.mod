module hear

go 1.22
