package hear

// §5.4: "some operations such as min and max are not allowed due to
// security constraints. If we enable the network to compare two values and
// determine which is larger, the adversary can encrypt an increasing set
// of values and determine the plaintext. Thus, all these operations must
// either use FHE schemes or be performed within the TEEs."
//
// This file implements the TEE route: contributions travel to a designated
// rank under pairwise transport encryption (GatherEncrypted), the
// comparison happens inside that rank's secure environment, and the result
// returns via the collective-key broadcast. The network never executes a
// comparison, so the §5.4 attack has no surface — at the price of Θ(P)
// data at the root instead of in-network aggregation.

import (
	"encoding/binary"
	"fmt"

	"hear/internal/mpi"
)

// AllreduceMaxInt64 computes the element-wise maximum across ranks via the
// secure-environment route. Requires Options.EnableP2P (the gather leg
// rides the pairwise key matrix). root chooses which rank's secure
// environment performs the comparisons.
func (c *Context) AllreduceMaxInt64(comm *mpi.Comm, root int, send, recv []int64) error {
	return c.minmax(comm, root, send, recv, func(a, b int64) int64 {
		if b > a {
			return b
		}
		return a
	})
}

// AllreduceMinInt64 is the element-wise minimum via the same route.
func (c *Context) AllreduceMinInt64(comm *mpi.Comm, root int, send, recv []int64) error {
	return c.minmax(comm, root, send, recv, func(a, b int64) int64 {
		if b < a {
			return b
		}
		return a
	})
}

func (c *Context) minmax(comm *mpi.Comm, root int, send, recv []int64, pick func(a, b int64) int64) error {
	if err := c.checkComm(comm); err != nil {
		return err
	}
	if c.pairKeys == nil {
		return fmt.Errorf("hear: min/max needs the pairwise key matrix (set Options.EnableP2P)")
	}
	if root < 0 || root >= c.size {
		return fmt.Errorf("hear: root %d outside communicator", root)
	}
	if len(recv) < len(send) {
		return fmt.Errorf("hear: recv %d < send %d", len(recv), len(send))
	}
	n := len(send)
	if n == 0 {
		return fmt.Errorf("hear: empty vector")
	}
	buf := marshal64(send)
	var gathered []byte
	if c.rank == root {
		gathered = make([]byte, c.size*len(buf))
	}
	// Leg 1: confidential transport to the root's secure environment.
	if err := c.GatherEncrypted(comm, root, buf, gathered); err != nil {
		return err
	}
	// Leg 2: the comparison, inside the secure environment only.
	result := make([]byte, len(buf))
	if c.rank == root {
		for j := 0; j < n; j++ {
			acc := int64(binary.LittleEndian.Uint64(gathered[j*8:]))
			for r := 1; r < c.size; r++ {
				v := int64(binary.LittleEndian.Uint64(gathered[r*len(buf)+j*8:]))
				acc = pick(acc, v)
			}
			binary.LittleEndian.PutUint64(result[j*8:], uint64(acc))
		}
	}
	// Leg 3: confidential broadcast of the result.
	if err := c.BcastEncrypted(comm, root, result); err != nil {
		return err
	}
	unmarshal64(result, recv[:n])
	return nil
}
