package hear

import (
	"encoding/binary"
	"fmt"

	"hear/internal/core/fold"
	"hear/internal/homac"
	"hear/internal/mpi"
)

// ErrVerificationFailed reports a failed HoMAC check: some network element
// tampered with the aggregation (§5.5).
type ErrVerificationFailed struct {
	Element int
}

func (e *ErrVerificationFailed) Error() string {
	return fmt.Sprintf("hear: result verification failed at element %d: the network modified the aggregate", e.Element)
}

// AllreduceInt64SumVerified is AllreduceInt64Sum with homomorphic result
// authentication (§5.5): each ciphertext is paired with a HoMAC tag, the
// network sums both lanes, and every rank checks Σs == c_t + σ_t·Z before
// trusting the decryption. The tag lane doubles the traffic — the >200%
// inflation the paper quotes for 64-bit p — which is why verification is a
// separate opt-in call.
//
// verifier must be shared by all ranks (built from the same (p, Z) inside
// the secure environment; see NewVerifier).
func (c *Context) AllreduceInt64SumVerified(comm *mpi.Comm, verifier *homac.Vector, send, recv []int64) error {
	if verifier == nil {
		return fmt.Errorf("hear: nil verifier")
	}
	if c.opts.INC != nil && c.opts.INCTags == nil {
		// The data tree folds mod 2^64, which breaks the mod-p tag
		// arithmetic. In-network verification needs a second tree whose
		// fold is TagFold (Options.INCTags).
		return fmt.Errorf("hear: verified allreduce over INC needs a mod-p tag tree (Options.INCTags)")
	}
	if len(recv) < len(send) {
		return fmt.Errorf("hear: recv %d < send %d", len(recv), len(send))
	}
	s, err := c.intSum(64)
	if err != nil {
		return err
	}
	n := len(send)
	c.st.Advance()

	// Encrypt the data lane.
	buf := marshal64(send)
	cipher := make([]byte, n*8)
	if err := s.Encrypt(c.st, buf, cipher, n); err != nil {
		return err
	}
	// Tag the ciphertext lane.
	lanes := make([]uint64, n)
	for i := range lanes {
		lanes[i] = binary.LittleEndian.Uint64(cipher[i*8:])
	}
	tags := make([]uint64, n)
	if err := verifier.Tag(c.st, lanes, tags); err != nil {
		return err
	}
	tagBytes := make([]byte, n*8)
	for i, t := range tags {
		binary.LittleEndian.PutUint64(tagBytes[i*8:], t)
	}

	// The network reduces both lanes: data mod 2^64, tags mod p. With INC
	// hardware these ride as a (c, σ) pair; here they are two collectives
	// over the same communicator.
	dataOp := mpi.OpFrom("hear/"+s.Name(), s.Reduce)
	tagOp := mpi.OpFrom("hear/homac-sum", func(dst, src []byte, k int) {
		fold.SumMod61(dst[:k*8], src[:k*8])
	})
	if c.opts.INC != nil {
		if err := c.opts.INC.Allreduce(c.rank, cipher); err != nil {
			return fmt.Errorf("hear: INC data lane: %w", err)
		}
		if err := c.opts.INCTags.Allreduce(c.rank, tagBytes); err != nil {
			return fmt.Errorf("hear: INC tag lane: %w", err)
		}
	} else {
		if err := comm.AllreduceAlgo(c.opts.Algorithm, cipher, cipher, n, mpi.Uint64, dataOp); err != nil {
			return fmt.Errorf("hear: data lane: %w", err)
		}
		if err := comm.AllreduceAlgo(c.opts.Algorithm, tagBytes, tagBytes, n, mpi.Uint64, tagOp); err != nil {
			return fmt.Errorf("hear: tag lane: %w", err)
		}
	}
	if c.faultInjector != nil {
		c.faultInjector(cipher)
	}

	// Verify before decrypting.
	for i := range lanes {
		lanes[i] = binary.LittleEndian.Uint64(cipher[i*8:])
		tags[i] = binary.LittleEndian.Uint64(tagBytes[i*8:])
	}
	if bad := verifier.Verify(c.st, lanes, tags, c.size); bad >= 0 {
		return &ErrVerificationFailed{Element: bad}
	}
	if err := s.Decrypt(c.st, cipher, buf, n); err != nil {
		return err
	}
	unmarshal64(buf, recv[:n])
	return nil
}

// SetFaultInjector installs (or clears, with nil) a hook that corrupts
// this rank's view of the reduced ciphertext before verification — the
// test and demo stand-in for a tampering network element on this rank's
// ejection path. Only verification-enabled calls consult it.
func (c *Context) SetFaultInjector(f func(reducedCipher []byte)) {
	c.faultInjector = f
}

// NewVerifier builds the shared HoMAC verifier from the communicator's
// secret verification key Z. All ranks must pass the same z (shared during
// initialization inside the secure environment).
func NewVerifier(z uint64) (*homac.Vector, error) {
	return homac.New(HoMACPrime, z)
}

// TagFold is the INC switch fold for the HoMAC tag lane: 64-bit lanes
// added mod the verification prime (the internal/core/fold kernel the
// aggregation gateway also runs). Build the Options.INCTags tree with it;
// the switch still needs no keys — the modulus is public.
func TagFold(dst, src []byte) { fold.SumMod61(dst, src) }
