package hear

import (
	"encoding/binary"
	"errors"
	"fmt"

	"hear/internal/core"
	"hear/internal/core/fold"
	"hear/internal/homac"
	"hear/internal/inc"
	"hear/internal/mpi"
)

// ErrVerificationFailed reports a failed HoMAC check: some network element
// tampered with the aggregation (§5.5).
type ErrVerificationFailed struct {
	Element int
}

func (e *ErrVerificationFailed) Error() string {
	return fmt.Sprintf("hear: result verification failed at element %d: the network modified the aggregate", e.Element)
}

// verifyPath is one rung of the verified allreduce degradation ladder.
// Retries step down the ladder: the in-network tree is fastest but has the
// most hardware in the blast radius; the pipelined host path removes the
// switches; the sync host path is the minimal, most conservative data
// path. A retry never climbs back up — if the fancy path just failed, the
// retry's job is to finish, not to re-test it.
type verifyPath int

const (
	vpINC           verifyPath = iota // (c, σ) pair through the aggregation trees
	vpHostPipelined                   // both lanes in flight concurrently (Iallreduce)
	vpHostSync                        // sequential blocking collectives
)

func (p verifyPath) String() string {
	switch p {
	case vpINC:
		return "inc"
	case vpHostPipelined:
		return "host-pipelined"
	default:
		return "host-sync"
	}
}

// nextPath steps down the ladder; the sync host path is terminal.
func nextPath(p verifyPath) verifyPath {
	if p == vpINC {
		return vpHostPipelined
	}
	return vpHostSync
}

// retryableVerifiedError reports whether a verified-allreduce failure is
// worth re-running on a lower rung: tampering detected by the HoMAC check,
// or a timeout from the INC tree or the host runtime. Anything else (bad
// arguments, crypto errors) is deterministic and retrying cannot help.
func retryableVerifiedError(err error) bool {
	var vf *ErrVerificationFailed
	return errors.As(err, &vf) || errors.Is(err, inc.ErrTimeout) || errors.Is(err, mpi.ErrTimeout)
}

// AllreduceInt64SumVerified is AllreduceInt64Sum with homomorphic result
// authentication (§5.5): each ciphertext is paired with a HoMAC tag, the
// network sums both lanes, and every rank checks Σs == c_t + σ_t·Z before
// trusting the decryption. The tag lane doubles the traffic — the >200%
// inflation the paper quotes for 64-bit p — which is why verification is a
// separate opt-in call.
//
// verifier must be shared by all ranks (built from the same (p, Z) inside
// the secure environment; see NewVerifier).
//
// With Options.VerifiedRetry > 0 a failed round is re-run up to that many
// times, stepping down the degradation ladder INC → pipelined host → sync
// host. Every attempt re-advances the collective key, so a retried round
// is a fresh IND-CPA-clean encryption — but that also means retries only
// stay coherent when they are group-wide. They are for the failures this
// ladder targets: an INC round outcome (aggregate or timeout) is published
// identically to every rank, so all ranks see the same HoMAC verdict and
// re-advance in lockstep. Asymmetric failures (a host-path corruption seen
// by a subset of ranks) can desynchronize the key schedule, in which case
// every subsequent attempt fails verification too and the call fails
// closed — tampered data is never returned.
func (c *Context) AllreduceInt64SumVerified(comm *mpi.Comm, verifier *homac.Vector, send, recv []int64) error {
	if verifier == nil {
		return fmt.Errorf("hear: nil verifier")
	}
	if c.opts.INC != nil && c.opts.INCTags == nil {
		// The data tree folds mod 2^64, which breaks the mod-p tag
		// arithmetic. In-network verification needs a second tree whose
		// fold is TagFold (Options.INCTags).
		return fmt.Errorf("hear: verified allreduce over INC needs a mod-p tag tree (Options.INCTags)")
	}
	if len(recv) < len(send) {
		return fmt.Errorf("hear: recv %d < send %d", len(recv), len(send))
	}
	if c.opts.RecvTimeout > 0 && comm != nil {
		comm.SetRecvTimeout(c.opts.RecvTimeout)
	}

	path := vpHostPipelined
	if c.opts.INC != nil {
		path = vpINC
	}
	var err error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			path = nextPath(path)
		}
		c.mx.verifiedAttempts[path].Inc()
		err = c.verifiedAttempt(comm, verifier, send, recv, path)
		if err == nil {
			if attempt > 0 {
				c.verifiedRetries += attempt
				c.mx.verifiedRetries.Add(uint64(attempt))
			}
			return nil
		}
		if attempt >= c.opts.VerifiedRetry || !retryableVerifiedError(err) {
			break
		}
		if comm == nil {
			// The fallback rungs are host collectives; without a
			// communicator there is nothing to degrade onto.
			c.mx.verifiedFailures.Inc()
			return fmt.Errorf("hear: verified allreduce failed and no communicator for host fallback: %w", err)
		}
	}
	c.mx.verifiedFailures.Inc()
	if c.opts.VerifiedRetry > 0 {
		return fmt.Errorf("hear: verified allreduce failed after %d attempts (last path %s): %w",
			c.opts.VerifiedRetry+1, path, err)
	}
	return err
}

// VerifiedRetries returns the cumulative number of extra verified-allreduce
// attempts this context has needed (0 when every round succeeded first
// try). Recovery harnesses use it to assert the ladder actually engaged.
func (c *Context) VerifiedRetries() int { return c.verifiedRetries }

// verifiedAttempt runs one complete verified round — advance, encrypt,
// tag, reduce both lanes over the given path, verify, decrypt.
func (c *Context) verifiedAttempt(comm *mpi.Comm, verifier *homac.Vector, send, recv []int64, path verifyPath) error {
	s, err := c.intSum(64)
	if err != nil {
		return err
	}
	n := len(send)
	c.st.Advance()

	// Encrypt the data lane.
	buf := marshal64(send)
	cipher := make([]byte, n*8)
	if err := s.Encrypt(c.st, buf, cipher, n); err != nil {
		return err
	}
	// Tag the ciphertext lane.
	lanes := make([]uint64, n)
	for i := range lanes {
		lanes[i] = binary.LittleEndian.Uint64(cipher[i*8:])
	}
	tags := make([]uint64, n)
	if err := verifier.Tag(c.st, lanes, tags); err != nil {
		return err
	}
	tagBytes := make([]byte, n*8)
	for i, t := range tags {
		binary.LittleEndian.PutUint64(tagBytes[i*8:], t)
	}

	// The network reduces both lanes: data mod 2^64, tags mod p.
	if err := c.reduceVerifiedLanes(comm, s, cipher, tagBytes, n, path); err != nil {
		return err
	}
	if c.faultInjector != nil {
		c.faultInjector(cipher)
	}

	// Verify before decrypting.
	for i := range lanes {
		lanes[i] = binary.LittleEndian.Uint64(cipher[i*8:])
		tags[i] = binary.LittleEndian.Uint64(tagBytes[i*8:])
	}
	if bad := verifier.Verify(c.st, lanes, tags, c.size); bad >= 0 {
		return &ErrVerificationFailed{Element: bad}
	}
	if err := s.Decrypt(c.st, cipher, buf, n); err != nil {
		return err
	}
	unmarshal64(buf, recv[:n])
	return nil
}

// reduceVerifiedLanes reduces the (ciphertext, tag) pair over one ladder
// rung. The INC rung submits both lanes concurrently — they ride as a
// (c, σ) pair in §5.5, and concurrency keeps a stalled tree from
// serializing two full timeouts. The pipelined host rung keeps both lanes
// in flight with non-blocking collectives; the sync rung is the plain
// sequential path.
func (c *Context) reduceVerifiedLanes(comm *mpi.Comm, s core.Scheme, cipher, tagBytes []byte, n int, path verifyPath) error {
	dataOp := mpi.OpFrom("hear/"+s.Name(), s.Reduce)
	tagOp := mpi.OpFrom("hear/homac-sum", func(dst, src []byte, k int) {
		fold.SumMod61(dst[:k*8], src[:k*8])
	})
	switch path {
	case vpINC:
		if c.opts.INC == nil {
			return fmt.Errorf("hear: INC path selected without a tree")
		}
		errc := make(chan error, 1)
		go func() {
			errc <- c.opts.INCTags.Allreduce(c.rank, tagBytes)
		}()
		dataErr := c.opts.INC.Allreduce(c.rank, cipher)
		tagErr := <-errc
		if dataErr != nil {
			return fmt.Errorf("hear: INC data lane: %w", dataErr)
		}
		if tagErr != nil {
			return fmt.Errorf("hear: INC tag lane: %w", tagErr)
		}
		return nil
	case vpHostPipelined:
		dataReq, err := comm.Iallreduce(cipher, cipher, n, mpi.Uint64, dataOp)
		if err != nil {
			return fmt.Errorf("hear: data lane start: %w", err)
		}
		tagReq, err := comm.Iallreduce(tagBytes, tagBytes, n, mpi.Uint64, tagOp)
		if err != nil {
			// The data lane is already in flight; collect it before
			// surfacing the error so the communicator is left clean.
			derr := dataReq.Wait()
			if derr == nil {
				derr = err
			}
			return fmt.Errorf("hear: tag lane start: %w", derr)
		}
		dataErr := dataReq.Wait()
		tagErr := tagReq.Wait()
		if dataErr != nil {
			return fmt.Errorf("hear: data lane: %w", dataErr)
		}
		if tagErr != nil {
			return fmt.Errorf("hear: tag lane: %w", tagErr)
		}
		return nil
	default: // vpHostSync
		if err := comm.AllreduceAlgo(c.opts.Algorithm, cipher, cipher, n, mpi.Uint64, dataOp); err != nil {
			return fmt.Errorf("hear: data lane: %w", err)
		}
		if err := comm.AllreduceAlgo(c.opts.Algorithm, tagBytes, tagBytes, n, mpi.Uint64, tagOp); err != nil {
			return fmt.Errorf("hear: tag lane: %w", err)
		}
		return nil
	}
}

// SetFaultInjector installs (or clears, with nil) a hook that corrupts
// this rank's view of the reduced ciphertext before verification — the
// test and demo stand-in for a tampering network element on this rank's
// ejection path. Only verification-enabled calls consult it.
func (c *Context) SetFaultInjector(f func(reducedCipher []byte)) {
	c.faultInjector = f
}

// NewVerifier builds the shared HoMAC verifier from the communicator's
// secret verification key Z. All ranks must pass the same z (shared during
// initialization inside the secure environment).
func NewVerifier(z uint64) (*homac.Vector, error) {
	return homac.New(HoMACPrime, z)
}

// TagFold is the INC switch fold for the HoMAC tag lane: 64-bit lanes
// added mod the verification prime (the internal/core/fold kernel the
// aggregation gateway also runs). Build the Options.INCTags tree with it;
// the switch still needs no keys — the modulus is public.
func TagFold(dst, src []byte) { fold.SumMod61(dst, src) }
