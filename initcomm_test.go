package hear

import (
	"fmt"
	"testing"

	"hear/internal/mpi"
)

// rankSeqReader derives per-rank deterministic entropy: every rank needs a
// DIFFERENT stream (keys must differ across ranks).
type rankSeqReader struct {
	next byte
}

func newRankReader(rank int) *rankSeqReader { return &rankSeqReader{next: byte(rank*53 + 1)} }

func (r *rankSeqReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = r.next*167 + 29
		r.next++
	}
	return len(p), nil
}

func TestInitOverCommAllreduce(t *testing.T) {
	const p = 5
	w := mpi.NewWorld(p)
	err := w.Run(testTimeout, func(c *mpi.Comm) error {
		ctx, err := InitOverComm(c, Options{}, newRankReader(c.Rank()))
		if err != nil {
			return err
		}
		data := []int64{int64(c.Rank() + 1), 100}
		out := make([]int64, 2)
		if err := ctx.AllreduceInt64Sum(c, data, out); err != nil {
			return err
		}
		if out[0] != p*(p+1)/2 || out[1] != 100*p {
			return fmt.Errorf("rank %d: %v", c.Rank(), out)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInitOverCommSingleRank(t *testing.T) {
	w := mpi.NewWorld(1)
	err := w.Run(testTimeout, func(c *mpi.Comm) error {
		ctx, err := InitOverComm(c, Options{}, newRankReader(0))
		if err != nil {
			return err
		}
		out := make([]int64, 1)
		if err := ctx.AllreduceInt64Sum(c, []int64{7}, out); err != nil {
			return err
		}
		if out[0] != 7 {
			return fmt.Errorf("got %d", out[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInitOverCommP2P(t *testing.T) {
	const p = 3
	w := mpi.NewWorld(p)
	err := w.Run(testTimeout, func(c *mpi.Comm) error {
		ctx, err := InitOverComm(c, Options{EnableP2P: true}, newRankReader(c.Rank()))
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			return ctx.SendEncrypted(c, 2, 9, []byte("via runtime keys"))
		}
		if c.Rank() == 2 {
			buf := make([]byte, 32)
			n, err := ctx.RecvEncrypted(c, 0, 9, buf)
			if err != nil {
				return err
			}
			if string(buf[:n]) != "via runtime keys" {
				return fmt.Errorf("got %q", buf[:n])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// The §5 property this whole file exists for: a rank already initialized
// in one communicator re-initializes independently in a sub-communicator,
// and encrypted collectives work in both with different keys.
func TestSplitWithPerCommunicatorKeys(t *testing.T) {
	const p = 6
	w := mpi.NewWorld(p)
	err := w.Run(testTimeout, func(c *mpi.Comm) error {
		worldCtx, err := InitOverComm(c, Options{}, newRankReader(c.Rank()))
		if err != nil {
			return err
		}
		// Split into even/odd sub-communicators.
		sub, err := c.Split(c.Rank()%2, c.Rank())
		if err != nil {
			return err
		}
		subCtx, err := InitOverComm(sub, Options{}, newRankReader(c.Rank()+100))
		if err != nil {
			return err
		}

		// World-wide encrypted sum.
		wout := make([]int64, 1)
		if err := worldCtx.AllreduceInt64Sum(c, []int64{1}, wout); err != nil {
			return err
		}
		if wout[0] != p {
			return fmt.Errorf("world sum = %d", wout[0])
		}
		// Sub-communicator encrypted sum: each half has p/2 members.
		sout := make([]int64, 1)
		if err := subCtx.AllreduceInt64Sum(sub, []int64{10}, sout); err != nil {
			return err
		}
		if sout[0] != 10*p/2 {
			return fmt.Errorf("sub sum = %d", sout[0])
		}
		// Interleave: another world-wide call after the sub-communicator
		// traffic, exercising tag-namespace separation.
		if err := worldCtx.AllreduceInt64Sum(c, []int64{2}, wout); err != nil {
			return err
		}
		if wout[0] != 2*p {
			return fmt.Errorf("world sum 2 = %d", wout[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitExcluded(t *testing.T) {
	const p = 4
	w := mpi.NewWorld(p)
	err := w.Run(testTimeout, func(c *mpi.Comm) error {
		color := 0
		if c.Rank() == 3 {
			color = mpi.ColorExcluded
		}
		sub, err := c.Split(color, 0)
		if err != nil {
			return err
		}
		if c.Rank() == 3 {
			if sub != nil {
				return fmt.Errorf("excluded rank got a communicator")
			}
			return nil
		}
		if sub.Size() != 3 {
			return fmt.Errorf("sub size %d", sub.Size())
		}
		// The remaining three ranks can run collectives.
		buf := []byte{byte(sub.Rank())}
		all := make([]byte, 3)
		return sub.Allgather(buf, all, 1, mpi.Byte)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitKeyOrdering(t *testing.T) {
	const p = 4
	w := mpi.NewWorld(p)
	err := w.Run(testTimeout, func(c *mpi.Comm) error {
		// All ranks same color, keys reverse the order.
		sub, err := c.Split(7, p-c.Rank())
		if err != nil {
			return err
		}
		wantLocal := p - 1 - c.Rank()
		if sub.Rank() != wantLocal {
			return fmt.Errorf("world rank %d got local rank %d, want %d", c.Rank(), sub.Rank(), wantLocal)
		}
		g := sub.Group()
		for i := 0; i < p; i++ {
			if g[i] != p-1-i {
				return fmt.Errorf("group = %v", g)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceEncrypted(t *testing.T) {
	const p = 4
	w, ctxs := initWorld(t, p, Options{})
	err := w.Run(testTimeout, func(c *mpi.Comm) error {
		ctx := ctxs[c.Rank()]
		send := []int64{int64(c.Rank() + 1), -5}
		var recv []int64
		if c.Rank() == 2 {
			recv = make([]int64, 2)
		}
		if err := ctx.ReduceInt64Sum(c, 2, send, recv); err != nil {
			return err
		}
		if c.Rank() == 2 {
			if recv[0] != 10 || recv[1] != -20 {
				return fmt.Errorf("reduce = %v", recv)
			}
		}
		// Floats to a different root.
		fsend := []float32{1.5}
		var frecv []float32
		if c.Rank() == 0 {
			frecv = make([]float32, 1)
		}
		if err := ctx.ReduceFloat32Sum(c, 0, fsend, frecv); err != nil {
			return err
		}
		if c.Rank() == 0 && (frecv[0] < 5.99 || frecv[0] > 6.01) {
			return fmt.Errorf("float reduce = %v", frecv)
		}
		// Products.
		psend := []uint64{2}
		var precv []uint64
		if c.Rank() == 1 {
			precv = make([]uint64, 1)
		}
		if err := ctx.ReduceUint64Prod(c, 1, psend, precv); err != nil {
			return err
		}
		if c.Rank() == 1 && precv[0] != 16 {
			return fmt.Errorf("prod reduce = %v", precv)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceValidation(t *testing.T) {
	w, ctxs := initWorld(t, 2, Options{})
	err := w.Run(testTimeout, func(c *mpi.Comm) error {
		ctx := ctxs[c.Rank()]
		if err := ctx.ReduceInt64Sum(c, 9, []int64{1}, nil); err == nil {
			return fmt.Errorf("bad root accepted")
		}
		if c.Rank() == 0 {
			if err := ctx.ReduceInt64Sum(c, 0, []int64{1, 2}, make([]int64, 1)); err == nil {
				return fmt.Errorf("short root recv accepted")
			}
		}
		return nil
	})
	// rank 1 may hang waiting if rank 0 errored before the collective —
	// both error paths return before communicating, so Run completes.
	if err != nil {
		t.Fatal(err)
	}
}
