package hear

// §8 "HEAR Extensions": beyond Allreduce, HEAR extends to the other
// collectives ("these would work similarly to Allreduce, however, without
// any INC") and to one-to-one communication "using a matrix of keys rather
// than a constant number of keys", at Θ(N) key space per rank instead of
// the Θ(1) of the Allreduce schemes.
//
// This file implements those extensions:
//
//   - SendEncrypted / RecvEncrypted: point-to-point messages encrypted
//     with a pairwise key from the matrix. A per-message sequence number
//     travels in a small header so out-of-order receivers stay in sync.
//   - BcastEncrypted: the root encrypts with the collective key stream;
//     every rank can decrypt (all ranks hold k_c).
//   - GatherEncrypted / AlltoallEncrypted: per-pair streams keyed by the
//     matrix, so only the two endpoints of each block can read it.
//
// These are transport encryption (no homomorphism needed — nothing is
// reduced), so unlike the Allreduce schemes they have no INC path.

import (
	"encoding/binary"
	"fmt"

	"hear/internal/core"
	"hear/internal/homac"
	"hear/internal/mpi"
)

// Domain separators keep the p2p, broadcast, gather, and alltoall streams
// of one pair disjoint even when sequence numbers coincide.
const (
	domainP2P      uint64 = 0x50325000_00000000
	domainBcast    uint64 = 0x42435354_00000000
	domainGather   uint64 = 0x47415452_00000000
	domainAlltoall uint64 = 0x41324100_00000000
)

// p2pHeaderBytes is the sequence-number header prepended to encrypted
// point-to-point payloads.
const p2pHeaderBytes = 8

// pairNonce returns the symmetric pairwise stream identifier for this
// rank and peer under a domain. The key matrix is symmetric (k_{i,j} =
// k_{j,i}), so both endpoints derive the same stream.
func (c *Context) pairNonce(peer int, domain uint64) (uint64, error) {
	if c.pairKeys == nil {
		return 0, fmt.Errorf("hear: pairwise keys not enabled (set Options.EnableP2P)")
	}
	if peer < 0 || peer >= c.size {
		return 0, fmt.Errorf("hear: peer %d outside communicator of size %d", peer, c.size)
	}
	return c.pairKeys[peer] + domain, nil
}

// xorStream XORs dst in place with the keystream of (nonce, seq): the
// stream offset is seq · 2^32 bytes, giving every message of a pair a
// disjoint 4 GiB span.
func (c *Context) xorStream(dst []byte, nonce, seq uint64) {
	ks := make([]byte, len(dst))
	c.st.Enc.Keystream(ks, nonce, seq<<32)
	for i := range dst {
		dst[i] ^= ks[i]
	}
}

// dirSeq disambiguates the two directions of a symmetric pair stream:
// without it, message seq of i→j and of j→i would reuse one keystream —
// a classic two-time pad. The low bit encodes the direction.
func dirSeq(seq uint64, sender, receiver int) uint64 {
	d := uint64(0)
	if sender > receiver {
		d = 1
	}
	return seq<<1 | d
}

// SendEncrypted sends data to rank `to` under tag, encrypted with the
// pairwise key stream. The wire message carries an 8-byte sequence header
// so receivers tolerate interleaved tags.
func (c *Context) SendEncrypted(comm *mpi.Comm, to, tag int, data []byte) error {
	nonce, err := c.pairNonce(to, domainP2P)
	if err != nil {
		return err
	}
	seq := c.sendSeq[to]
	c.sendSeq[to]++
	msg := make([]byte, p2pHeaderBytes+len(data))
	binary.LittleEndian.PutUint64(msg, seq)
	copy(msg[p2pHeaderBytes:], data)
	c.xorStream(msg[p2pHeaderBytes:], nonce, dirSeq(seq, c.rank, to))
	return comm.Send(to, tag, msg)
}

// RecvEncrypted receives a message from `from` under tag into buf and
// returns the payload length.
func (c *Context) RecvEncrypted(comm *mpi.Comm, from, tag int, buf []byte) (int, error) {
	nonce, err := c.pairNonce(from, domainP2P)
	if err != nil {
		return 0, err
	}
	msg := make([]byte, p2pHeaderBytes+len(buf))
	n, src, err := comm.Recv(from, tag, msg)
	if err != nil {
		return 0, err
	}
	if n < p2pHeaderBytes {
		return 0, fmt.Errorf("hear: encrypted message shorter than its header (%d B)", n)
	}
	if from == mpi.AnySource {
		if nonce, err = c.pairNonce(src, domainP2P); err != nil {
			return 0, err
		}
	}
	seq := binary.LittleEndian.Uint64(msg)
	payload := msg[p2pHeaderBytes:n]
	c.xorStream(payload, nonce, dirSeq(seq, src, c.rank))
	copy(buf, payload)
	return n - p2pHeaderBytes, nil
}

// BcastEncrypted broadcasts buf from root to every rank, encrypted on the
// wire with the collective key stream (all ranks hold k_c, only they can
// read it). Collective: every rank must call it.
func (c *Context) BcastEncrypted(comm *mpi.Comm, root int, buf []byte) error {
	if err := c.checkComm(comm); err != nil {
		return err
	}
	c.st.Advance() // temporal safety for the broadcast stream
	nonce := c.st.CollectiveNonce() + domainBcast
	wire := make([]byte, len(buf))
	copy(wire, buf)
	if comm.Rank() == root {
		c.xorStream(wire, nonce, 0)
	}
	if err := comm.Bcast(root, wire); err != nil {
		return err
	}
	if comm.Rank() != root {
		c.xorStream(wire, nonce, 0)
		copy(buf, wire)
	}
	return nil
}

// GatherEncrypted gathers each rank's block into root's recvBuf; block i
// travels under the (i, root) pairwise stream, so intermediate network
// elements learn nothing and non-root ranks cannot read each other's
// blocks. recvBuf may be nil on non-root ranks.
func (c *Context) GatherEncrypted(comm *mpi.Comm, root int, send []byte, recvBuf []byte) error {
	if err := c.checkComm(comm); err != nil {
		return err
	}
	if c.pairKeys == nil {
		// Fail before any communication: erroring after a collective has
		// started would strand the other members.
		return fmt.Errorf("hear: pairwise keys not enabled (set Options.EnableP2P)")
	}
	c.st.Advance()
	c.gatherSeq++ // all ranks advance in lockstep (collective call order)
	seq := c.gatherSeq
	nb := len(send)
	wire := make([]byte, nb)
	copy(wire, send)
	if comm.Rank() != root {
		nonce, err := c.pairNonce(root, domainGather)
		if err != nil {
			return err
		}
		c.xorStream(wire, nonce, seq)
	}
	if err := comm.Gather(root, wire, recvBuf, nb, mpi.Byte); err != nil {
		return err
	}
	if comm.Rank() == root {
		for i := 0; i < c.size; i++ {
			if i == root {
				continue
			}
			nonce, err := c.pairNonce(i, domainGather)
			if err != nil {
				return err
			}
			c.xorStream(recvBuf[i*nb:(i+1)*nb], nonce, seq)
		}
	}
	return nil
}

// AlltoallEncrypted exchanges per-destination blocks, each encrypted under
// its endpoint pair's stream. send and recv hold size × blockBytes bytes.
func (c *Context) AlltoallEncrypted(comm *mpi.Comm, send, recv []byte, blockBytes int) error {
	if err := c.checkComm(comm); err != nil {
		return err
	}
	if blockBytes <= 0 || len(send) < c.size*blockBytes || len(recv) < c.size*blockBytes {
		return fmt.Errorf("hear: alltoall buffers too small for %d × %d B", c.size, blockBytes)
	}
	if c.pairKeys == nil {
		return fmt.Errorf("hear: pairwise keys not enabled (set Options.EnableP2P)")
	}
	c.st.Advance()
	c.a2aSeq++
	seq := c.a2aSeq
	wire := make([]byte, c.size*blockBytes)
	copy(wire, send)
	for j := 0; j < c.size; j++ {
		if j == c.rank {
			continue
		}
		nonce, err := c.pairNonce(j, domainAlltoall)
		if err != nil {
			return err
		}
		c.xorStream(wire[j*blockBytes:(j+1)*blockBytes], nonce, dirSeq(seq, c.rank, j))
	}
	if err := comm.Alltoall(wire, recv, blockBytes, mpi.Byte); err != nil {
		return err
	}
	for j := 0; j < c.size; j++ {
		if j == c.rank {
			continue
		}
		nonce, err := c.pairNonce(j, domainAlltoall)
		if err != nil {
			return err
		}
		c.xorStream(recv[j*blockBytes:(j+1)*blockBytes], nonce, dirSeq(seq, j, c.rank))
	}
	return nil
}

func (c *Context) checkComm(comm *mpi.Comm) error {
	if comm == nil {
		return fmt.Errorf("hear: nil communicator")
	}
	if comm.Rank() != c.rank || comm.Size() != c.size {
		return fmt.Errorf("hear: context for rank %d/%d used with communicator rank %d/%d",
			c.rank, c.size, comm.Rank(), comm.Size())
	}
	return nil
}

// --- Aggregation-gateway hooks -------------------------------------------
//
// The secure aggregation gateway (internal/aggsvc, cmd/hearagg) moves the
// untrusted aggregator out of process: remote clients seal vectors, a
// key-blind TCP service folds the ciphertext (and HoMAC tag) lanes, and the
// clients verify and open the aggregate. GatewaySealer exposes exactly the
// per-round encrypt/tag/verify/decrypt steps a gateway client needs from a
// Context, without the client ever touching key material directly. It
// implements aggsvc.Sealer structurally so the root package need not import
// the gateway.

// GatewaySealer adapts one rank's Context to the gateway client's
// seal/open cycle under one of the 64-bit integer schemes (SUM by default;
// see NewGatewaySealerScheme for PROD and XOR). A nil verifier disables the
// HoMAC tag lane (Seal returns nil tags and Verify accepts anything), which
// trades integrity for halving the upload.
//
// Every participant of a gateway round must hold a Context from the same
// Init world (sized to the round group) and seal exactly once per round:
// Seal advances the collective key, so the group stays in lockstep the same
// way Allreduce callers do. The gateway protocol enforces the lockstep
// end-to-end: HELLO advertises Epoch, JOIN (sent only once the round's
// membership seals) names the group's agreed seal epoch, and Seal advances
// to exactly that epoch — so a rank that missed a round's JOIN rejoins the
// schedule instead of desynchronizing the whole group.
type GatewaySealer struct {
	ctx      *Context
	kind     SchemeKind
	verifier *homac.Vector
}

// NewGatewaySealer builds the gateway adapter for this context under the
// int64 SUM scheme. verifier may be nil to skip result verification;
// otherwise all participants must share it (same (p, Z), see NewVerifier).
func (c *Context) NewGatewaySealer(verifier *homac.Vector) *GatewaySealer {
	return &GatewaySealer{ctx: c, kind: Int64Sum, verifier: verifier}
}

// NewGatewaySealerScheme builds the gateway adapter under one of the
// gateway-foldable 64-bit integer schemes: Int64Sum, Int64Prod, or
// Int64Xor. The gateway folds each with the matching keyless kernel and
// stays key-blind for all three. HoMAC tags aggregate only linearly, so a
// verifier is accepted with Int64Sum alone; PROD and XOR rounds run
// untagged (the gateway refuses a tagged HELLO for those schemes).
func (c *Context) NewGatewaySealerScheme(kind SchemeKind, verifier *homac.Vector) (*GatewaySealer, error) {
	switch kind {
	case Int64Sum:
	case Int64Prod, Int64Xor:
		if verifier != nil {
			return nil, fmt.Errorf("hear: HoMAC verification is additive; scheme %s cannot carry a tag lane", kind)
		}
	default:
		return nil, fmt.Errorf("hear: scheme %s is not gateway-foldable (want %s, %s, or %s)",
			kind, Int64Sum, Int64Prod, Int64Xor)
	}
	return &GatewaySealer{ctx: c, kind: kind, verifier: verifier}, nil
}

// SchemeID is the wire identifier the gateway client advertises in HELLO,
// so the gateway picks the matching fold kernel. The values mirror
// aggsvc's SchemeInt64* constants structurally (this package must not
// import the gateway); a test pins the mapping.
func (g *GatewaySealer) SchemeID() uint8 {
	switch g.kind {
	case Int64Prod:
		return 2
	case Int64Xor:
		return 3
	default:
		return 1
	}
}

// Tagged reports whether this sealer produces a HoMAC tag lane.
func (g *GatewaySealer) Tagged() bool { return g.verifier != nil }

// Epoch is the context's current key-epoch counter — an opaque coherence
// token (never key material) the gateway client advertises in HELLO.
func (g *GatewaySealer) Epoch() uint64 { return g.ctx.st.Epoch() }

// Seal advances the collective key to the given epoch (0 means "advance
// exactly once") and encrypts vals under the sealer's scheme, returning
// the ciphertext lane and, when verification is enabled, the HoMAC tag
// lane (both little-endian 64-bit lanes). Sealing at an epoch at or below
// the current one is refused: the key schedule only moves forward, and a
// regression would reuse PRF streams.
func (g *GatewaySealer) Seal(vals []int64, epoch uint64) (cipher, tags []byte, err error) {
	s, err := g.ctx.Scheme(g.kind)
	if err != nil {
		return nil, nil, err
	}
	n := len(vals)
	if epoch == 0 {
		g.ctx.st.Advance()
	} else {
		if epoch <= g.ctx.st.Epoch() {
			return nil, nil, fmt.Errorf("hear: seal epoch %d not ahead of current epoch %d", epoch, g.ctx.st.Epoch())
		}
		for g.ctx.st.Epoch() < epoch {
			g.ctx.st.Advance()
		}
	}
	cipher = make([]byte, n*8)
	if err := s.Encrypt(g.ctx.st, marshal64(vals), cipher, n); err != nil {
		return nil, nil, err
	}
	g.ctx.mx.sealOps.Inc()
	if g.verifier == nil {
		return cipher, nil, nil
	}
	lanes := make([]uint64, n)
	for i := range lanes {
		lanes[i] = binary.LittleEndian.Uint64(cipher[i*8:])
	}
	sigma := make([]uint64, n)
	if err := g.verifier.Tag(g.ctx.st, lanes, sigma); err != nil {
		return nil, nil, err
	}
	tags = make([]byte, n*8)
	for i, t := range sigma {
		binary.LittleEndian.PutUint64(tags[i*8:], t)
	}
	return cipher, tags, nil
}

// PrefetchNext starts speculative generation of the next seal epoch's
// noise planes (Options.NoisePrefetch). The gateway client calls it after
// uploading its lanes, so the keystream for the following round generates
// while the gateway aggregates the current one. elems is the expected next
// vector length — normally this round's. Epoch tagging keeps it safe when
// the prediction is wrong: a sealer that later catches up several epochs
// (after missing a round's JOIN) simply misses the cache. A no-op when
// prefetching is disabled.
func (g *GatewaySealer) PrefetchNext(elems int) {
	s, err := g.ctx.Scheme(g.kind)
	if err != nil {
		return
	}
	g.ctx.kickPrefetch(s, elems)
}

// Verify checks a reduced (ciphertext, tag) lane pair against this rank's
// keys before the aggregate is trusted. With verification disabled it is a
// no-op; with it enabled, missing tags are an error — a gateway must not be
// able to strip verification.
func (g *GatewaySealer) Verify(reducedCipher, reducedTags []byte) error {
	if g.verifier == nil {
		return nil
	}
	n := len(reducedCipher) / 8
	if len(reducedTags) < n*8 {
		return fmt.Errorf("hear: reduced tag lane %d B < %d elements", len(reducedTags), n)
	}
	lanes := make([]uint64, n)
	sigma := make([]uint64, n)
	for i := range lanes {
		lanes[i] = binary.LittleEndian.Uint64(reducedCipher[i*8:])
		sigma[i] = binary.LittleEndian.Uint64(reducedTags[i*8:])
	}
	if bad := g.verifier.Verify(g.ctx.st, lanes, sigma, g.ctx.size); bad >= 0 {
		g.ctx.mx.verifyFailures.Inc()
		return &ErrVerificationFailed{Element: bad}
	}
	return nil
}

// Open decrypts a reduced ciphertext lane into out. It must pair the most
// recent Seal call (decryption uses the collective key that call advanced
// to), exactly as Allreduce decryption follows its own encryption.
func (g *GatewaySealer) Open(reduced []byte, out []int64) error {
	s, err := g.ctx.Scheme(g.kind)
	if err != nil {
		return err
	}
	n := len(reduced) / 8
	if len(out) < n {
		return fmt.Errorf("hear: out %d < %d elements", len(out), n)
	}
	buf := make([]byte, n*8)
	if err := s.Decrypt(g.ctx.st, reduced, buf, n); err != nil {
		return err
	}
	g.ctx.mx.openOps.Inc()
	unmarshal64(buf, out[:n])
	return nil
}

// --- Degraded (dropout-tolerant) rounds ----------------------------------
//
// A gateway running with DegradedRounds completes a round over the
// surviving participant set when stragglers die post-JOIN, and names that
// set in RESULT. The survivors' partial reduce still carries the missing
// ranks' telescoping noise, so the sealer folds it back in
// (core.SubsetCanceler) before the ordinary decrypt — possible exactly when
// the key policy lets one rank re-derive another's noise stream
// (Options.SharedGroupKeys). The methods below implement aggsvc's
// DegradedSealer structurally.

// RankID is this sealer's rank in the key schedule, advertised to the
// gateway so a survivor set can name it.
func (g *GatewaySealer) RankID() int { return g.ctx.rank }

// AcceptsDegraded reports whether this sealer can verify and open a
// survivor-subset aggregate: the key policy must allow deriving other
// ranks' noise streams (Options.SharedGroupKeys) and the scheme must
// support subset cancellation (all three gateway-foldable 64-bit integer
// schemes do). When false, the client negotiates the fail-closed v1
// protocol and a degraded round aborts for it as a retryable straggler cut.
func (g *GatewaySealer) AcceptsDegraded() bool {
	if !g.ctx.st.CanDeriveRankKeys() {
		return false
	}
	s, err := g.ctx.Scheme(g.kind)
	if err != nil {
		return false
	}
	_, ok := s.(core.SubsetCanceler)
	return ok
}

// missingFromSurvivors validates a RESULT's survivor set against the
// communicator and returns its complement. The sealer's own rank must be a
// survivor — a gateway claiming we contributed to a round we were cut from
// (or vice versa) is protocol corruption, not a recoverable state.
func (g *GatewaySealer) missingFromSurvivors(survivors []int) ([]int, error) {
	if len(survivors) == 0 || len(survivors) > g.ctx.size {
		return nil, fmt.Errorf("hear: survivor set size %d invalid for communicator of %d", len(survivors), g.ctx.size)
	}
	present := make([]bool, g.ctx.size)
	for _, r := range survivors {
		if r < 0 || r >= g.ctx.size {
			return nil, fmt.Errorf("hear: survivor rank %d outside communicator of %d", r, g.ctx.size)
		}
		if present[r] {
			return nil, fmt.Errorf("hear: duplicate survivor rank %d", r)
		}
		present[r] = true
	}
	if !present[g.ctx.rank] {
		return nil, fmt.Errorf("hear: own rank %d absent from survivor set", g.ctx.rank)
	}
	missing := make([]int, 0, g.ctx.size-len(survivors))
	for r, ok := range present {
		if !ok {
			missing = append(missing, r)
		}
	}
	return missing, nil
}

// VerifySurvivors checks a degraded round's reduced (ciphertext, tag) lane
// pair against the survivor subset: the HoMAC key sum telescopes per
// missing run just like the noise, so verification stays Θ(runs) per
// element. With verification disabled it is a no-op.
func (g *GatewaySealer) VerifySurvivors(reducedCipher, reducedTags []byte, survivors []int) error {
	if g.verifier == nil {
		return nil
	}
	missing, err := g.missingFromSurvivors(survivors)
	if err != nil {
		return err
	}
	n := len(reducedCipher) / 8
	if len(reducedTags) < n*8 {
		return fmt.Errorf("hear: reduced tag lane %d B < %d elements", len(reducedTags), n)
	}
	lanes := make([]uint64, n)
	sigma := make([]uint64, n)
	for i := range lanes {
		lanes[i] = binary.LittleEndian.Uint64(reducedCipher[i*8:])
		sigma[i] = binary.LittleEndian.Uint64(reducedTags[i*8:])
	}
	bad, err := g.verifier.VerifySubset(g.ctx.st, missing, lanes, sigma, len(survivors))
	if err != nil {
		return err
	}
	if bad >= 0 {
		g.ctx.mx.verifyFailures.Inc()
		return &ErrVerificationFailed{Element: bad}
	}
	return nil
}

// OpenSurvivors decrypts a degraded round's reduced ciphertext lane: the
// missing ranks' noise is folded back into a scratch copy
// (core.SubsetCanceler), after which the scheme's standard decrypt applies.
// The result is bit-identical to a fresh flat round run over only the
// survivors. A full survivor set degenerates to Open.
func (g *GatewaySealer) OpenSurvivors(reduced []byte, out []int64, survivors []int) error {
	missing, err := g.missingFromSurvivors(survivors)
	if err != nil {
		return err
	}
	if len(missing) == 0 {
		return g.Open(reduced, out)
	}
	s, err := g.ctx.Scheme(g.kind)
	if err != nil {
		return err
	}
	sc, ok := s.(core.SubsetCanceler)
	if !ok {
		return fmt.Errorf("hear: scheme %s cannot cancel subset noise", g.kind)
	}
	n := len(reduced) / 8
	if len(out) < n {
		return fmt.Errorf("hear: out %d < %d elements", len(out), n)
	}
	work := make([]byte, n*8)
	copy(work, reduced)
	if err := sc.FoldMissingNoise(g.ctx.st, work, n, missing); err != nil {
		return err
	}
	if err := s.Decrypt(g.ctx.st, work, work, n); err != nil {
		return err
	}
	g.ctx.mx.openOps.Inc()
	unmarshal64(work, out[:n])
	return nil
}
