package hear

import (
	"fmt"
	"time"

	"hear/internal/core"
	"hear/internal/mpi"
)

// maxSyncCipherPool caps the retained sync-path ciphertext buffer; larger
// messages fall back to a transient allocation (at that size the copy
// and crypto dominate mem_alloc anyway, and the cap keeps an occasional
// huge allreduce from pinning its buffer in the context forever).
const maxSyncCipherPool = 4 << 20

// cipherBuf returns an n-byte ciphertext buffer for the sync data path
// and a release function. The context retains a single buffer, grown
// geometrically and reused by every later call it fits — growing for a
// large message keeps serving smaller ones, and a grow/shrink/grow train
// allocates only on genuine high-water-mark increases. Repeated
// allreduces therefore stop paying the mem_alloc/mem_free phases Figure 4
// charges to every call; the pipelined path has its own block pool. The
// release function is a no-op today (a Context is single-goroutine, so
// the buffer is free again by the next call) but stays in the signature
// so the recycling point remains explicit at the call site.
func (c *Context) cipherBuf(n int) ([]byte, func()) {
	if n > maxSyncCipherPool {
		return make([]byte, n), func() {}
	}
	if cap(c.syncBuf) < n {
		size := 4 << 10
		for size < n {
			size <<= 1
		}
		c.syncBuf = make([]byte, size)
	}
	return c.syncBuf[:n], func() {}
}

// allreduce is the common encrypted data path: advance k_c, encrypt,
// reduce ciphertexts (host collectives, pipelined collectives, or the INC
// tree), decrypt. plain is the wire representation of n elements and is
// overwritten with the result. Encrypt/decrypt/reduce run through the
// shared multicore cipher engine; small messages take its serial path.
func (c *Context) allreduce(comm *mpi.Comm, s core.Scheme, plain []byte, n int) error {
	if comm != nil && (comm.Rank() != c.rank || comm.Size() != c.size) {
		return fmt.Errorf("hear: context for rank %d/%d used with communicator rank %d/%d",
			c.rank, c.size, comm.Rank(), comm.Size())
	}
	if n <= 0 {
		return fmt.Errorf("hear: non-positive element count %d", n)
	}
	if len(plain) < n*s.PlainSize() {
		return fmt.Errorf("hear: buffer %d B < %d elements × %d B", len(plain), n, s.PlainSize())
	}
	if c.opts.RecvTimeout > 0 && comm != nil {
		comm.SetRecvTimeout(c.opts.RecvTimeout)
	}
	c.mx.plainBytes.Add(uint64(n * s.PlainSize()))
	t0 := time.Now()
	defer func() { c.mx.callSeconds.Observe(time.Since(t0).Seconds()) }()
	c.st.Advance()

	if c.opts.PipelineBlockBytes > 0 && comm != nil && c.opts.INC == nil {
		blockElems := c.opts.PipelineBlockBytes / s.CipherSize()
		if blockElems >= 1 && n > blockElems {
			c.mx.pipelinedCalls.Inc()
			return c.allreducePipelined(comm, s, plain, n, blockElems)
		}
	}

	cipher, release := c.cipherBuf(n * s.CipherSize())
	defer release()
	if err := c.eng.Encrypt(s, c.st, plain, cipher, n); err != nil {
		return err
	}
	// The blocking reduction below is this call's communication window:
	// kick the prefetcher now so the next epoch's noise (and this epoch's
	// decrypt plane, when cold) generates on the worker pool while this
	// goroutine waits on the network or the INC tree.
	c.kickPrefetch(s, n)
	if c.opts.INC != nil {
		c.mx.incCalls.Inc()
		if err := c.opts.INC.Allreduce(c.rank, cipher); err != nil {
			return fmt.Errorf("hear: INC reduction: %w", err)
		}
	} else {
		c.mx.syncCalls.Inc()
		op := mpi.OpFrom("hear/"+s.Name(), c.eng.ReduceFunc(s))
		ct := mpi.CipherType(s.CipherSize())
		if err := comm.AllreduceAlgo(c.opts.Algorithm, cipher, cipher, n, ct, op); err != nil {
			return fmt.Errorf("hear: reduction: %w", err)
		}
	}
	return c.eng.Decrypt(s, c.st, cipher, plain, n)
}

// allreducePipelined is the §6 network-pipelining data path (Figure 6):
// the buffer is split into ciphertext blocks; while block i is being
// reduced by a non-blocking Iallreduce, block i+1 is encrypted and block
// i−1 decrypted, overlapping crypto with communication. Blocks come from
// the context's memory pool, so the steady state allocates nothing. The
// per-block crypto runs through the cipher engine, which shards large
// blocks across the worker pool — the engine's global-offset sharding
// composes with the pipeline's global-offset blocking, since both address
// the same counter-mode streams.
func (c *Context) allreducePipelined(comm *mpi.Comm, s core.Scheme, plain []byte, n, blockElems int) error {
	ps, cs := s.PlainSize(), s.CipherSize()
	op := mpi.OpFrom("hear/"+s.Name(), c.eng.ReduceFunc(s))

	type inflight struct {
		req   *mpi.Request
		buf   []byte // pool block; [:elems*cs] holds the ciphertext
		off   int    // element offset into plain
		elems int
	}
	var prev *inflight
	finish := func(f *inflight) error {
		if err := f.req.Wait(); err != nil {
			return fmt.Errorf("hear: pipelined reduction: %w", err)
		}
		if err := c.eng.DecryptAt(s, c.st, f.buf[:f.elems*cs], plain[f.off*ps:], f.elems, f.off); err != nil {
			return err
		}
		return c.pool.Put(f.buf[:cap(f.buf)])
	}

	for off := 0; off < n; off += blockElems {
		elems := blockElems
		if off+elems > n {
			elems = n - off
		}
		block, err := c.pool.Get()
		if err != nil {
			return fmt.Errorf("hear: pipeline pool: %w", err)
		}
		if len(block) < elems*cs {
			return fmt.Errorf("hear: pool block %d B < ciphertext block %d B", len(block), elems*cs)
		}
		// EncryptAt keeps stream indices global across blocks: element j of
		// this block uses noise index off+j, so no index is ever reused
		// within one collective call (local safety holds across blocks).
		if err := c.eng.EncryptAt(s, c.st, plain[off*ps:], block[:elems*cs], elems, off); err != nil {
			return err
		}
		req, err := comm.Iallreduce(block[:elems*cs], block[:elems*cs], elems, mpi.CipherType(cs), op)
		if err != nil {
			return fmt.Errorf("hear: pipelined reduction start: %w", err)
		}
		if off == 0 {
			// First block is in flight: the pipeline's overlap window has
			// opened, so speculative generation for the next epoch rides
			// along with the remaining blocks' crypto.
			c.kickPrefetch(s, n)
		}
		cur := &inflight{req: req, buf: block, off: off, elems: elems}
		if prev != nil {
			if err := finish(prev); err != nil {
				return err
			}
		}
		prev = cur
	}
	return finish(prev)
}
