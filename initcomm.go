package hear

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"io"

	"hear/internal/engine"
	"hear/internal/keys"
	"hear/internal/mempool"
	"hear/internal/mpi"
	"hear/internal/prf"

	corepkg "hear/internal/core"
)

// InitOverComm performs HEAR's per-communicator initialization *over the
// communicator itself*, the way libhear hooks communicator creation
// (MPI_Init, MPI_Comm_create): every member draws its starting key k_s_i
// and ships it to its ring predecessor, rank 0 draws and broadcasts the
// collective secrets (k_c, k_e, k_p) and its own k_s_0. §5 stresses that
// "the initialization is per communicator, even if some processes are
// already initialized in a different communicator" — a rank may therefore
// hold one Context per communicator it belongs to (e.g. after Split).
//
// The exchange messages stand in for the secure-environment channel the
// paper assumes; a deployment would run them through attested TLS between
// TEEs. It is a collective call: every member of comm must enter it, and
// entropy is drawn per rank (rng nil means crypto/rand).
func InitOverComm(comm *mpi.Comm, opts Options, rng io.Reader) (*Context, error) {
	if comm == nil {
		return nil, fmt.Errorf("hear: nil communicator")
	}
	opts.fill()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		rng = rand.Reader
	}
	p, r := comm.Size(), comm.Rank()

	// Draw this rank's starting key and exchange with the ring neighbours:
	// rank i needs k_s_{(i+1) mod P} for the canceling noise term.
	var kb [8]byte
	if _, err := io.ReadFull(rng, kb[:]); err != nil {
		return nil, fmt.Errorf("hear: drawing k_s: %w", err)
	}
	selfKey := binary.LittleEndian.Uint64(kb[:])

	const keyTag = 101
	nextKey := selfKey
	if p > 1 {
		if err := comm.Send((r-1+p)%p, keyTag, kb[:]); err != nil {
			return nil, fmt.Errorf("hear: key exchange send: %w", err)
		}
		var nb [8]byte
		if _, _, err := comm.Recv((r+1)%p, keyTag, nb[:]); err != nil {
			return nil, fmt.Errorf("hear: key exchange recv: %w", err)
		}
		nextKey = binary.LittleEndian.Uint64(nb[:])
	}

	// Rank 0 broadcasts (k_c, k_e, k_p, k_s_0) inside the secure channel.
	secrets := make([]byte, 8+keys.KeyBytes+keys.KeyBytes+8)
	if r == 0 {
		if _, err := io.ReadFull(rng, secrets[:8+2*keys.KeyBytes]); err != nil {
			return nil, fmt.Errorf("hear: drawing collective secrets: %w", err)
		}
		binary.LittleEndian.PutUint64(secrets[8+2*keys.KeyBytes:], selfKey)
	}
	if err := comm.Bcast(0, secrets); err != nil {
		return nil, fmt.Errorf("hear: secret broadcast: %w", err)
	}
	kc := binary.LittleEndian.Uint64(secrets)
	ke := secrets[8 : 8+keys.KeyBytes]
	kp := secrets[8+keys.KeyBytes : 8+2*keys.KeyBytes]
	rootKey := binary.LittleEndian.Uint64(secrets[8+2*keys.KeyBytes:])
	if r == 0 {
		rootKey = selfKey
	}

	enc, err := prf.New(opts.PRFBackend, ke)
	if err != nil {
		return nil, fmt.Errorf("hear: constructing F_{k_e}: %w", err)
	}
	prog, err := prf.New(opts.PRFBackend, kp)
	if err != nil {
		return nil, fmt.Errorf("hear: constructing F_{k_p}: %w", err)
	}
	st := keys.NewManual(r, p, selfKey, nextKey, rootKey, kc, enc, prog)

	ctx := &Context{
		rank:    r,
		size:    p,
		st:      st,
		opts:    opts,
		schemes: make(map[string]corepkg.Scheme),
		// Per-communicator engine: unlike Init, the members of comm are
		// (conceptually) separate nodes, so each context runs its own
		// worker pool. Idle workers cost nothing.
		eng: engine.New(opts.Workers),
		mx:  newCtxMetrics(opts.Metrics),
	}
	if opts.PipelineBlockBytes > 0 {
		pool, err := mempool.New(opts.PipelineBlockBytes, 3, 0)
		if err != nil {
			return nil, fmt.Errorf("hear: init pool: %w", err)
		}
		ctx.pool = pool
	}
	if opts.EnableP2P {
		// Rank 0 draws the symmetric pair matrix and distributes rows over
		// the secure channel (Θ(N) keys per rank, §8).
		n := p
		if r == 0 {
			matrix := make([]byte, n*n*8)
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					var pk [8]byte
					if _, err := io.ReadFull(rng, pk[:]); err != nil {
						return nil, fmt.Errorf("hear: drawing pair key: %w", err)
					}
					copy(matrix[(i*n+j)*8:], pk[:])
					copy(matrix[(j*n+i)*8:], pk[:])
				}
			}
			row := make([]byte, n*8)
			const rowTag = 102
			for i := 1; i < n; i++ {
				copy(row, matrix[i*n*8:(i+1)*n*8])
				if err := comm.Send(i, rowTag, row); err != nil {
					return nil, fmt.Errorf("hear: distributing pair keys: %w", err)
				}
			}
			ctx.pairKeys = make([]uint64, n)
			for j := 0; j < n; j++ {
				ctx.pairKeys[j] = binary.LittleEndian.Uint64(matrix[j*8:])
			}
		} else {
			row := make([]byte, n*8)
			if _, _, err := comm.Recv(0, 102, row); err != nil {
				return nil, fmt.Errorf("hear: receiving pair keys: %w", err)
			}
			ctx.pairKeys = make([]uint64, n)
			for j := 0; j < n; j++ {
				ctx.pairKeys[j] = binary.LittleEndian.Uint64(row[j*8:])
			}
		}
		ctx.sendSeq = make([]uint64, n)
	}
	registerTelemetry(opts.Metrics, ctx.eng, []*Context{ctx})
	return ctx, nil
}
