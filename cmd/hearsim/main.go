// hearsim explores the Aries-calibrated scaling model behind Figures 7/8
// beyond the paper's fixed configurations: sweep ranks, nodes, message
// sizes, and HEAR cost assumptions from the command line.
//
//	hearsim -ranks 4096 -nodes 128 -msg 16Mi
//	hearsim -sweep ppn -nodes 2 -msg 16Mi
//	hearsim -sweep nodes -ppn 36 -msg 16Mi
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hear/internal/dnn"
	"hear/internal/netsim"
)

var (
	ranksFlag = flag.Int("ranks", 1152, "total MPI ranks")
	nodesFlag = flag.Int("nodes", 32, "nodes")
	ppnFlag   = flag.Int("ppn", 36, "processes per node (for -sweep nodes)")
	msgFlag   = flag.String("msg", "16Mi", "message size (e.g. 16, 4Ki, 16Mi)")
	sweep     = flag.String("sweep", "", "sweep axis: '', 'ppn', or 'nodes'")
	dnnTrace  = flag.String("dnn", "", "path to a DNN workload trace (JSON); simulates it instead of the scaling sweep")
	encRate   = flag.Float64("enc", 9e9, "HEAR encryption rate B/s per core")
	decRate   = flag.Float64("dec", 18e9, "HEAR decryption rate B/s per core")
	pipeEff   = flag.Float64("pipe", 0.85, "pipeline efficiency (Figure 6 best point)")
	perCall   = flag.Float64("call", 0.4e-6, "per-call crypto latency in seconds")
	inflation = flag.Float64("inflation", 1.0, "ciphertext inflation factor")
)

func parseSize(s string) (int, error) {
	mult := 1
	switch {
	case strings.HasSuffix(s, "Gi"):
		mult, s = 1<<30, strings.TrimSuffix(s, "Gi")
	case strings.HasSuffix(s, "Mi"):
		mult, s = 1<<20, strings.TrimSuffix(s, "Mi")
	case strings.HasSuffix(s, "Ki"):
		mult, s = 1<<10, strings.TrimSuffix(s, "Ki")
	}
	n, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad size %q: %w", s, err)
	}
	return n * mult, nil
}

func main() {
	flag.Parse()
	if *dnnTrace != "" {
		if err := runDNNTrace(*dnnTrace); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	msg, err := parseSize(*msgFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	p := netsim.AriesDefaults()
	h := &netsim.HEARCosts{
		EncRate:            *encRate,
		DecRate:            *decRate,
		PerCallLatency:     *perCall,
		Inflation:          *inflation,
		PipelineEfficiency: *pipeEff,
	}
	if err := h.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var points []netsim.Point
	switch *sweep {
	case "":
		points = []netsim.Point{{Ranks: *ranksFlag, Nodes: *nodesFlag}}
	case "ppn":
		for _, ppn := range []int{1, 2, 4, 8, 16, 32, 36} {
			points = append(points, netsim.Point{Ranks: ppn * *nodesFlag, Nodes: *nodesFlag})
		}
	case "nodes":
		for n := 2; n <= 128; n *= 2 {
			points = append(points, netsim.Point{Ranks: *ppnFlag * n, Nodes: n})
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown sweep %q\n", *sweep)
		os.Exit(2)
	}

	fmt.Printf("message = %d B; HEAR enc %.1f dec %.1f GB/s, pipe %.0f%%, inflation %.2fx\n\n",
		msg, *encRate/1e9, *decRate/1e9, *pipeEff*100, *inflation)
	fmt.Printf("%-8s %-7s %-7s %-14s %-14s %-10s %-22s %-22s\n",
		"ranks", "nodes", "PPN", "native GB/s/n", "HEAR GB/s/n", "ratio", "native lat (µs)", "HEAR lat (µs)")
	for _, pt := range points {
		native, hearTP, err := p.ThroughputPerNode(h, pt.Ranks, pt.Nodes, msg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		nl, hl, err := p.Latency(h, pt.Ranks, pt.Nodes, 16)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%-8d %-7d %-7d %-14.2f %-14.2f %6.1f%%   %6.2f/%6.2f/%6.2f  %6.2f/%6.2f/%6.2f\n",
			pt.Ranks, pt.Nodes, pt.Ranks/pt.Nodes, native/1e9, hearTP/1e9, 100*hearTP/native,
			nl.Min*1e6, nl.Mean*1e6, nl.Max*1e6, hl.Min*1e6, hl.Mean*1e6, hl.Max*1e6)
	}
}

// runDNNTrace replays a user-provided workload trace against the model.
func runDNNTrace(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	models, err := dnn.LoadTrace(f)
	if err != nil {
		return err
	}
	h := &netsim.HEARCosts{
		EncRate:            *encRate,
		DecRate:            *decRate,
		PerCallLatency:     *perCall,
		Inflation:          *inflation,
		PipelineEfficiency: *pipeEff,
	}
	params := netsim.AriesDefaults()
	fmt.Printf("%-16s %-7s %-7s %-14s %-14s %-14s %s\n",
		"model", "ranks", "nodes", "gradient MB", "AR native ms", "AR HEAR ms", "relative time")
	for _, m := range models {
		r, err := dnn.Simulate(m, params, h)
		if err != nil {
			return err
		}
		fmt.Printf("%-16s %-7d %-7d %-14.1f %-14.2f %-14.2f %6.1f%%\n",
			m.Name, m.Ranks, m.Nodes, float64(m.AllreduceBytes())/1e6,
			r.AllreduceNative*1e3, r.AllreduceHEAR*1e3, 100*r.RelativeExecTime)
	}
	return nil
}
