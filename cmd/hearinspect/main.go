// hearinspect prints the paper's reference tables from the live
// implementation:
//
//	hearinspect table2   supported operations and their properties
//	hearinspect table3   the worked 4-bit integer and FP16 examples
//
// table3 executes the published example values through the actual scheme
// arithmetic (the unit tests pin the same numbers).
package main

import (
	"fmt"
	"math"
	"os"

	"hear/internal/hfp"
	"hear/internal/ring"
)

func main() {
	cmd := "table2"
	if len(os.Args) > 1 {
		cmd = os.Args[1]
	}
	switch cmd {
	case "table2":
		table2()
	case "table3":
		table3()
	default:
		fmt.Fprintf(os.Stderr, "unknown table %q (want table2 or table3)\n", cmd)
		os.Exit(2)
	}
}

// table2 mirrors the paper's Table 2 from the implementation's metadata.
func table2() {
	fmt.Println("Table 2 — supported operation and data types")
	fmt.Printf("%-24s %-10s %-10s %-20s %-18s %s\n",
		"scheme", "datatype", "lossiness", "security", "inflation", "hardware")
	rows := [][]string{
		{"MPI_SUM (§5.1.1)", "int/fixed", "lossless", "IND-CPA", "none", "none"},
		{"MPI_PROD (§5.1.2)", "int/fixed", "lossless", "IND-CPA", "none", "none"},
		{"MPI_LXOR/BXOR (§5.1.3)", "int/bool", "lossless", "IND-CPA", "none", "none"},
		{"MPI_SUM v1 (§5.3.3)", "float", "minor", "COA", "γ precision tradeoff", "minimal, FPU"},
		{"MPI_SUM v2 (§5.3.4)", "float", "medium", "COA", "γ precision tradeoff", "minimal, FPU"},
		{"MPI_PROD (§5.3.2)", "float", "minor", "COA", "γ precision tradeoff", "minimal, FPU"},
	}
	for _, r := range rows {
		fmt.Printf("%-24s %-10s %-10s %-20s %-18s %s\n", r[0], r[1], r[2], r[3], r[4], r[5])
	}
	fmt.Println("\nSafety: integer schemes and float PROD/v2 provide temporal, local, AND")
	fmt.Println("global safety; float SUM v1 provides temporal and local only (its eq. 7")
	fmt.Println("noise depends on the collective key alone).")
	fmt.Println("\nFloat ciphertext widths (CipherBits = 1 + le + lm + γ):")
	for _, base := range []struct {
		name string
		f    hfp.Format
	}{{"FP16", hfp.FP16}, {"FP32", hfp.FP32}, {"FP64", hfp.FP64}} {
		fmt.Printf("  %s: mul γ=0 → %d bits, add γ=0 → %d bits, add γ=2 → %d bits\n",
			base.name, base.f.ForMul(0).CipherBits(), base.f.ForAdd(0).CipherBits(), base.f.ForAdd(2).CipherBits())
	}
}

// table3 replays the paper's worked examples.
func table3() {
	fmt.Println("Table 3 — worked examples, executed by this implementation")

	// --- integer columns, 4-bit ring mod 16 ---
	r := ring.NewZ2(4)
	fmt.Println("\nInt, 4 bits, modulo 16, subgroup generator 3")
	fmt.Println("MPI_SUM: x1=[1 5] x2=[3 8], noise r1=[2 1] r2=[1 7]")
	c1 := []uint64{r.Add(1, r.Sub(2, 1)), r.Add(5, r.Sub(1, 7))}
	c2 := []uint64{r.Add(3, 1), r.Add(8, 7)}
	red := []uint64{r.Add(c1[0], c2[0]), r.Add(c1[1], c2[1])}
	dec := []uint64{r.Sub(red[0], 2), r.Sub(red[1], 1)}
	fmt.Printf("  encrypted: rank1=%v rank2=%v   (paper: [2 15] [4 15])\n", c1, c2)
	fmt.Printf("  reduced:   %v                  (paper: [6 14])\n", red)
	fmt.Printf("  decrypted: %v                  (paper: [4 13])\n", dec)

	fmt.Println("MPI_PROD: x1=[2 4] x2=[7 2], noise exponents e1=[1 2] e2=[1 0]")
	p1 := []uint64{r.Mul(2, r.Mul(r.PowG(1), r.InvPowG(1))), r.Mul(4, r.Mul(r.PowG(2), r.InvPowG(0)))}
	p2 := []uint64{r.Mul(7, r.PowG(1)), r.Mul(2, r.PowG(0))}
	pred := []uint64{r.Mul(p1[0], p2[0]), r.Mul(p1[1], p2[1])}
	pdec := []uint64{r.Mul(pred[0], r.InvPowG(1)), r.Mul(pred[1], r.InvPowG(2))}
	fmt.Printf("  encrypted: rank1=%v rank2=%v     (paper: [2 4] [5 2])\n", p1, p2)
	fmt.Printf("  reduced:   %v                  (paper: [10 8])\n", pred)
	fmt.Printf("  decrypted: %v                  (paper: [14 8])\n", pdec)

	fmt.Println("MPI_BXOR: x1=0011 x2=0010, noise n1=0101 n2=1001")
	bc1 := uint64(0b0011) ^ 0b0101 ^ 0b1001
	bc2 := uint64(0b0010) ^ 0b1001
	bred := bc1 ^ bc2
	fmt.Printf("  encrypted: rank1=%04b rank2=%04b   (paper: 1111 1011)\n", bc1, bc2)
	fmt.Printf("  reduced:   %04b                     (paper: 0100)\n", bred)
	fmt.Printf("  decrypted: %04b                     (paper: 0001)\n", bred^0b0101)

	// --- float columns, half precision ---
	fmt.Println("\nFloat, half precision (le=5, lm=10)")
	fa := hfp.FP16.ForAdd(0)
	x1 := mustEncode(fa, 1.75*math.Ldexp(1, 7))
	x2 := mustEncode(fa, 1.25*math.Ldexp(1, 9))
	noise := mustEncode(fa, 1.5*math.Ldexp(1, 13))
	e1 := fa.Mul(x1, noise)
	e2 := fa.Mul(x2, noise)
	radd := fa.Add(e1, e2)
	dadd := fa.Div(radd, noise)
	fmt.Println("MPI_SUM v1: x=[1.75×2^7, 1.25×2^9], noise=1.5×2^13")
	fmt.Printf("  encrypted: %s, %s   (paper: 1.3125×2^21, 1.875×2^22)\n", fa.String(e1), fa.String(e2))
	fmt.Printf("  reduced:   %s          (paper: 1.266×2^23)\n", fa.String(radd))
	fmt.Printf("  decrypted: %s           (paper: 1.6875×2^9)\n", fa.String(dadd))

	fm := hfp.FP16.ForMul(0)
	mx1 := mustEncode(fm, 1.125*math.Ldexp(1, 9))
	mx2 := mustEncode(fm, 1.375*math.Ldexp(1, 1))
	n1 := hfp.Value{Exp: 22 & ((1 << fm.EBits()) - 1), Frac: 0x300, W: uint8(fm.FracBits())}
	negExp := int64(-13)
	n2 := hfp.Value{Exp: uint64(negExp) & ((1 << fm.EBits()) - 1), Frac: 0x100, W: uint8(fm.FracBits())}
	me1 := fm.Mul(mx1, fm.Div(n1, n2))
	me2 := fm.Mul(mx2, n2)
	mred := fm.Mul(me1, me2)
	mdec := fm.Div(mred, n1)
	fmt.Println("MPI_PROD: x=[1.125×2^9, 1.375×2^1], noise n1=1.75×2^22 n2=1.25×2^-13")
	fmt.Printf("  encrypted: %s, %s  (paper: 1.575×2^44≡2^12 on the 5-bit ring, 1.719×2^-12)\n", fm.String(me1), fm.String(me2))
	fmt.Printf("  reduced:   %s             (paper: 1.354×2^33≡2^1 on the ring)\n", fm.String(mred))
	fmt.Printf("  decrypted: %s           (paper: 1.547×2^10)\n", fm.String(mdec))
}

func mustEncode(f hfp.Format, x float64) hfp.Value {
	v, err := f.Encode(x)
	if err != nil {
		panic(err)
	}
	return v
}
