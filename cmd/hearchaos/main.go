// hearchaos runs seeded fault-injection campaigns against the HEAR stack:
// the in-network aggregation trees, the host message-passing runtime, and
// the TCP aggregation gateway. Every campaign drives real verified
// allreduce rounds under a deterministic chaos plan and asserts that every
// surviving rank agrees on a correct aggregate — or failed with a typed,
// bounded error.
//
//	hearchaos -mode inc -ranks 8 -rounds 4 -seed 42       # tampering switch → host-ladder recovery
//	hearchaos -mode inc -kill -seed 42                    # dead switch → timeout → recovery
//	hearchaos -mode gateway -ranks 4 -seed 7              # severed conn → reconnect + round retry
//	hearchaos -mode gateway -quorum 3 -ranks 4 -seed 7    # mute straggler → quorum eviction
//	hearchaos -mode mpi -ranks 8 -rounds 8 -seed 1        # drop/delay/dup/reorder + crash-rank
//	hearchaos -mode dropout -ranks 8 -victims 2 -seed 9   # kill K of N post-JOIN → degraded round
//	hearchaos -mode all -seed 42
//
// The same seed replays the same fault schedule; the plan digest printed
// at the end of each campaign is stable across runs.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"hear"
	"hear/internal/aggsvc"
	"hear/internal/chaos"
	"hear/internal/core/fold"
	"hear/internal/inc"
	"hear/internal/metrics"
	"hear/internal/mpi"
)

var (
	mode    = flag.String("mode", "all", "campaign: inc, gateway, mpi, dropout, or all (dropout runs only when named)")
	seed    = flag.Int64("seed", 42, "chaos plan seed (same seed → same fault schedule)")
	ranks   = flag.Int("ranks", 8, "ranks / gateway clients")
	rounds  = flag.Int("rounds", 3, "allreduce rounds per campaign")
	elems   = flag.Int("elems", 256, "int64 elements per allreduce")
	prob    = flag.Float64("prob", 1.0, "per-frame fault probability for the inc corrupt rule")
	kill    = flag.Bool("kill", false, "inc mode: kill every switch (timeout path) instead of corrupting frames")
	quorum  = flag.Int("quorum", 0, "gateway mode: server quorum; >0 mutes one client to demo straggler eviction")
	victims = flag.Int("victims", 2, "dropout mode: clients killed right after JOIN (K of N)")
	verbose = flag.Bool("v", false, "print every chaos event")
	mdump   = flag.String("metrics", "", `dump per-campaign metrics snapshots as JSON ("-" = stdout, else a file path)`)
)

// campaignReg is the metrics registry of the campaign currently running
// (nil without -metrics): the hear contexts, the gateway, and the chaos
// plans all publish into it, so the dump shows the fault volume next to
// the retry/abort counters it caused.
var campaignReg *metrics.Registry

func main() {
	flag.Parse()
	snapshots := map[string]json.RawMessage{}
	run := func(name string, f func() error) {
		fmt.Printf("=== %s campaign (seed %d, %d ranks, %d rounds) ===\n", name, *seed, *ranks, *rounds)
		if *mdump != "" {
			campaignReg = metrics.New()
		}
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "%s campaign FAILED: %v\n", name, err)
			os.Exit(1)
		}
		if campaignReg != nil {
			var buf bytes.Buffer
			if err := campaignReg.WriteJSON(&buf); err != nil {
				fmt.Fprintf(os.Stderr, "metrics snapshot: %v\n", err)
				os.Exit(1)
			}
			snapshots[name] = json.RawMessage(buf.Bytes())
		}
		fmt.Println()
	}
	switch *mode {
	case "inc":
		run("inc", incCampaign)
	case "gateway":
		run("gateway", gatewayCampaign)
	case "mpi":
		run("mpi", mpiCampaign)
	case "dropout":
		run("dropout", dropoutCampaign)
	case "all":
		// dropout is deliberately not part of "all": it needs shared-group
		// keys and a degraded-mode gateway, which the default campaigns
		// keep off so their plan digests stay comparable across releases.
		run("inc", incCampaign)
		run("gateway", gatewayCampaign)
		run("mpi", mpiCampaign)
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
	if *mdump != "" {
		doc, err := json.MarshalIndent(snapshots, "", "  ")
		if err == nil && *mdump == "-" {
			fmt.Println(string(doc))
		} else if err == nil {
			err = os.WriteFile(*mdump, doc, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "writing metrics dump: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Println("all campaigns passed: every surviving rank agreed on a correct verified aggregate")
}

// reference returns rank r's deterministic input vector for one round and
// accumulates it into want.
func reference(round, rank int, want []int64) []int64 {
	in := make([]int64, *elems)
	for j := range in {
		in[j] = int64(*seed%97) + int64(round*31) + int64(rank*7) + int64(j)
		want[j] += in[j]
	}
	return in
}

func report(plan *chaos.Plan) {
	events := plan.Events()
	fmt.Printf("plan digest %016x, %d fault events\n", plan.Digest(), len(events))
	if *verbose {
		for _, e := range events {
			fmt.Printf("  %s\n", e)
		}
	}
}

// incCampaign: verified allreduce over the aggregation trees with a chaos
// rule attacking the data tree — bit-flip corruption (caught by HoMAC) or
// a kill-switch (surfaces as inc.ErrTimeout). Every failed round must
// recover over the host ladder with the correct sum on every rank.
func incCampaign() error {
	p := *ranks
	dataTree, err := inc.NewTree(p, 2, fold.SumUint64)
	if err != nil {
		return err
	}
	tagTree, err := inc.NewTree(p, 2, hear.TagFold)
	if err != nil {
		return err
	}
	dataTree.SetTimeout(500 * time.Millisecond)
	tagTree.SetTimeout(500 * time.Millisecond)

	var rule chaos.Rule
	if *kill {
		rule = chaos.NewRule(chaos.LayerINC, chaos.FaultKillSwitch)
	} else {
		rule = chaos.NewRule(chaos.LayerINC, chaos.FaultCorrupt)
		rule.Prob = *prob
	}
	plan := chaos.NewPlan(*seed, rule)
	plan.RegisterMetrics(campaignReg)
	dataTree.SetInterceptor(plan.INCInterceptor(0))

	w := mpi.NewWorld(p)
	ctxs, err := hear.Init(w, hear.Options{
		INC: dataTree, INCTags: tagTree,
		VerifiedRetry: 2, RecvTimeout: 2 * time.Second,
		Metrics: campaignReg,
	})
	if err != nil {
		return err
	}
	verifier, err := hear.NewVerifier(uint64(*seed) | 1)
	if err != nil {
		return err
	}

	for round := 0; round < *rounds; round++ {
		want := make([]int64, *elems)
		inputs := make([][]int64, p)
		for r := 0; r < p; r++ {
			inputs[r] = reference(round, r, want)
		}
		err := w.Run(60*time.Second, func(c *mpi.Comm) error {
			out := make([]int64, *elems)
			if err := ctxs[c.Rank()].AllreduceInt64SumVerified(c, verifier, inputs[c.Rank()], out); err != nil {
				return fmt.Errorf("rank %d round %d: %w", c.Rank(), round, err)
			}
			for j := range out {
				if out[j] != want[j] {
					return fmt.Errorf("rank %d round %d: sum[%d] = %d, want %d", c.Rank(), round, j, out[j], want[j])
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	retried := 0
	for r, ctx := range ctxs {
		if n := ctx.VerifiedRetries(); n > 0 {
			retried++
			if *verbose {
				fmt.Printf("  rank %d recovered via %d host-ladder retries\n", r, n)
			}
		}
	}
	report(plan)
	if len(plan.Events()) > 0 && retried == 0 {
		return errors.New("faults fired but no rank reported a retry — the ladder never engaged")
	}
	fmt.Printf("inc: %d rounds correct on all %d ranks; %d ranks used the degradation ladder\n", *rounds, p, retried)
	return nil
}

// gatewayCampaign: real TCP gateway, chaos-wrapped client connections.
// The default plan severs client 0's first connection mid-round, forcing a
// PeerLost abort; with -quorum, client 0's writes are silently dropped
// instead, so it is evicted as a straggler at the deadline. Either way
// every client must converge on the correct sums via reconnect + retry.
func gatewayCampaign() error {
	p := *ranks
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	s, err := aggsvc.NewServer(aggsvc.Config{
		Group: p, Quorum: *quorum, RoundTimeout: 2 * time.Second,
		Metrics: campaignReg,
	})
	if err != nil {
		return err
	}
	go s.Serve(l)
	defer s.Close()
	addr := l.Addr().String()

	var rule chaos.Rule
	if *quorum > 0 {
		// Mute the victim: its submits vanish, the server sees a straggler.
		rule = chaos.NewRule(chaos.LayerConn, chaos.FaultDrop)
		rule.Match.Dir = 1 // writes only; the JOIN and ABORT must still reach it
		rule.After = 2     // the HELLO's two writes pass, every submit is swallowed
	} else {
		rule = chaos.NewRule(chaos.LayerConn, chaos.FaultSever)
		rule.After = 2
		rule.Limit = 1
	}
	rule.Match.Conn = 0 // client 0's first connection only
	plan := chaos.NewPlan(*seed, rule)
	plan.RegisterMetrics(campaignReg)

	w := mpi.NewWorld(p)
	ctxs, err := hear.Init(w, hear.Options{Metrics: campaignReg})
	if err != nil {
		return err
	}
	verifier, err := hear.NewVerifier(uint64(*seed) | 1)
	if err != nil {
		return err
	}

	var wg sync.WaitGroup
	errs := make([]error, p)
	retries := make([]int, p)
	for i := 0; i < p; i++ {
		sealer := ctxs[i].NewGatewaySealer(verifier)
		dials := 0
		client := i
		dialer := func() (net.Conn, error) {
			conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
			if err != nil {
				return nil, err
			}
			// Deterministic conn ids: client*100 + dial attempt, so the
			// plan's Match.Conn pins exactly one connection.
			id := client*100 + dials
			dials++
			return plan.WrapConn(conn, id), nil
		}
		conn, err := dialer()
		if err != nil {
			return err
		}
		c := aggsvc.NewClient(conn, sealer, aggsvc.ClientOptions{
			Timeout: 5 * time.Second, Dialer: dialer,
			Retry: 4, RetryBackoff: 25 * time.Millisecond, JitterSeed: *seed + int64(client),
		})
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer c.Close()
			out := make([]int64, *elems)
			for round := 0; round < *rounds; round++ {
				want := make([]int64, *elems)
				var in []int64
				for r := 0; r < p; r++ {
					v := reference(round, r, want)
					if r == client {
						in = v
					}
				}
				info, err := c.Aggregate(in, out)
				if err != nil {
					errs[client] = fmt.Errorf("client %d round %d: %w", client, round, err)
					return
				}
				retries[client] += info.Retries
				for j := range out {
					if out[j] != want[j] {
						errs[client] = fmt.Errorf("client %d round %d: sum[%d] = %d, want %d", client, round, j, out[j], want[j])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	report(plan)
	total := 0
	for i, n := range retries {
		total += n
		if *verbose && n > 0 {
			fmt.Printf("  client %d retried %d rounds\n", i, n)
		}
	}
	evicted := s.StatsMap()["clients_evicted"]
	if len(plan.Events()) > 0 && total == 0 {
		return errors.New("faults fired but no client retried — the recovery path never engaged")
	}
	if *quorum > 0 && evicted == 0 {
		return errors.New("quorum campaign evicted nobody")
	}
	fmt.Printf("gateway: %d rounds correct on all %d clients; %d round retries, %d stragglers evicted\n",
		*rounds, p, total, evicted)
	return nil
}

// dropoutCampaign: a degraded-mode gateway completes the round when K of N
// clients die right after JOIN instead of failing closed. Every client runs
// the real shared-group crypto stack; a chaos sever rule cuts each victim's
// connection at its first post-JOIN write. The survivors must receive a
// RESULT naming the survivor set whose decrypted aggregate is bit-identical
// to a flat, fault-free round run over just the survivors — for sum
// (HoMAC-verified), prod, and xor.
func dropoutCampaign() error {
	p, k := *ranks, *victims
	if k < 1 || k >= p {
		return fmt.Errorf("-victims %d out of range (want 1..%d for %d ranks)", k, p-1, p)
	}
	// Spread the victims across odd ranks first so the missing set
	// coalesces into interior runs of the telescoping chain, then fill
	// from the front.
	victimSet := make(map[int]bool, k)
	for r := 1; r < p && len(victimSet) < k; r += 2 {
		victimSet[r] = true
	}
	for r := 0; r < p && len(victimSet) < k; r += 2 {
		victimSet[r] = true
	}
	surv := make([]int, 0, p-k)
	for r := 0; r < p; r++ {
		if !victimSet[r] {
			surv = append(surv, r)
		}
	}

	schemes := []struct {
		name string
		kind hear.SchemeKind
		tag  uint64 // HoMAC key seed; 0 = untagged
		fold func(a, v int64) int64
		unit int64
	}{
		{"sum", hear.Int64Sum, uint64(*seed) | 1, func(a, v int64) int64 { return a + v }, 0},
		{"prod", hear.Int64Prod, 0, func(a, v int64) int64 { return int64(uint64(a) * uint64(v)) }, 1},
		{"xor", hear.Int64Xor, 0, func(a, v int64) int64 { return a ^ v }, 0},
	}
	for si, sc := range schemes {
		if err := dropoutScheme(si, sc.name, sc.kind, sc.tag, sc.fold, sc.unit, victimSet, surv); err != nil {
			return fmt.Errorf("%s: %w", sc.name, err)
		}
	}
	fmt.Printf("dropout: %d/%d clients killed post-JOIN; every degraded aggregate bit-identical to the flat round over the %d survivors (sum, prod, xor)\n",
		k, p, p-k)
	return nil
}

// dropoutSealers builds a fresh shared-group-key world of the given size.
// tagSeed != 0 attaches a shared HoMAC verifier (sum only).
func dropoutSealers(size int, kind hear.SchemeKind, tagSeed uint64) ([]*hear.GatewaySealer, error) {
	w := mpi.NewWorld(size)
	ctxs, err := hear.Init(w, hear.Options{SharedGroupKeys: true, Metrics: campaignReg})
	if err != nil {
		return nil, err
	}
	verifier, err := hear.NewVerifier(tagSeed) // nil verifier for tagSeed 0
	if tagSeed != 0 && err != nil {
		return nil, err
	}
	if tagSeed == 0 {
		verifier = nil
	}
	sealers := make([]*hear.GatewaySealer, size)
	for i, c := range ctxs {
		if sealers[i], err = c.NewGatewaySealerScheme(kind, verifier); err != nil {
			return nil, err
		}
	}
	return sealers, nil
}

// dropoutRound runs one gateway round: every client i submits inputs[i]
// through wrap(i, conn); outs/infos/errs are reported per client.
func dropoutRound(cfg aggsvc.Config, inputs [][]int64, sealers []*hear.GatewaySealer,
	wrap func(i int, c net.Conn) net.Conn) ([][]int64, []aggsvc.Round, []error, map[string]uint64, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, nil, nil, err
	}
	s, err := aggsvc.NewServer(cfg)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	go s.Serve(l)
	defer s.Close()

	n := len(inputs)
	outs := make([][]int64, n)
	infos := make([]aggsvc.Round, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		conn, err := net.DialTimeout("tcp", l.Addr().String(), 5*time.Second)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		c := aggsvc.NewClient(wrap(i, conn), sealers[i], aggsvc.ClientOptions{Timeout: 10 * time.Second})
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer c.Close()
			outs[i] = make([]int64, *elems)
			infos[i], errs[i] = c.Aggregate(inputs[i], outs[i])
		}(i)
	}
	wg.Wait()
	return outs, infos, errs, s.StatsMap(), nil
}

func dropoutScheme(si int, name string, kind hear.SchemeKind, tagSeed uint64,
	fold func(a, v int64) int64, unit int64, victimSet map[int]bool, surv []int) error {
	p, k := *ranks, len(victimSet)

	// Deterministic inputs; the plaintext reference folds survivors only.
	inputs := make([][]int64, p)
	want := make([]int64, *elems)
	for j := range want {
		want[j] = unit
	}
	for r := range inputs {
		inputs[r] = make([]int64, *elems)
		for j := range inputs[r] {
			inputs[r][j] = int64(*seed%211) + int64(si*53) + int64(r*7) + int64(j) - int64(*elems)/2
			if !victimSet[r] {
				want[j] = fold(want[j], inputs[r][j])
			}
		}
	}

	// Degraded leg: one sever rule per victim, firing at its first
	// post-JOIN write (the HELLO's two writes pass).
	var rules []chaos.Rule
	for r := 0; r < p; r++ {
		if !victimSet[r] {
			continue
		}
		rule := chaos.NewRule(chaos.LayerConn, chaos.FaultSever)
		rule.Match.Conn = r * 100
		rule.Match.Dir = 1
		rule.After = 2
		rule.Limit = 1
		rules = append(rules, rule)
	}
	plan := chaos.NewPlan(*seed, rules...)
	plan.RegisterMetrics(campaignReg)

	sealers, err := dropoutSealers(p, kind, tagSeed)
	if err != nil {
		return err
	}
	outs, infos, errs, stats, err := dropoutRound(aggsvc.Config{
		Group: p, Quorum: p - k, DegradedRounds: true,
		RoundTimeout: 1500 * time.Millisecond, Metrics: campaignReg,
	}, inputs, sealers, func(i int, c net.Conn) net.Conn {
		return plan.WrapConn(c, i*100)
	})
	if err != nil {
		return err
	}
	for r := 0; r < p; r++ {
		if victimSet[r] {
			if errs[r] == nil {
				return fmt.Errorf("victim %d aggregated successfully despite its severed connection", r)
			}
			continue
		}
		if errs[r] != nil {
			return fmt.Errorf("survivor %d: %w", r, errs[r])
		}
		if !infos[r].Degraded {
			return fmt.Errorf("survivor %d round not marked degraded", r)
		}
		if fmt.Sprint(infos[r].Survivors) != fmt.Sprint(surv) {
			return fmt.Errorf("survivor %d saw survivor set %v, want %v", r, infos[r].Survivors, surv)
		}
		for j := range want {
			if outs[r][j] != want[j] {
				return fmt.Errorf("survivor %d elem %d = %d, want %d (plaintext fold over survivors)",
					r, j, outs[r][j], want[j])
			}
		}
	}
	if got := stats["rounds_degraded"]; got < 1 {
		return fmt.Errorf("rounds_degraded = %d, want >= 1", got)
	}
	if got := stats["clients_evicted"]; got != uint64(k) {
		return fmt.Errorf("clients_evicted = %d, want %d", got, k)
	}

	// Flat leg: a fault-free round over a fresh world holding exactly the
	// survivor population, fed the survivors' inputs. Its RESULT is the
	// ground truth the degraded round must reproduce bit for bit.
	flatSealers, err := dropoutSealers(len(surv), kind, tagSeed)
	if err != nil {
		return err
	}
	flatInputs := make([][]int64, len(surv))
	for i, r := range surv {
		flatInputs[i] = inputs[r]
	}
	flatOuts, flatInfos, flatErrs, _, err := dropoutRound(aggsvc.Config{
		Group: len(surv), RoundTimeout: 10 * time.Second, Metrics: campaignReg,
	}, flatInputs, flatSealers, func(_ int, c net.Conn) net.Conn { return c })
	if err != nil {
		return err
	}
	for i := range surv {
		if flatErrs[i] != nil {
			return fmt.Errorf("flat reference client %d: %w", i, flatErrs[i])
		}
		if flatInfos[i].Degraded || flatInfos[i].Survivors != nil {
			return fmt.Errorf("flat reference round unexpectedly degraded (%v)", flatInfos[i].Survivors)
		}
	}
	for _, r := range surv {
		for j := range flatOuts[0] {
			if outs[r][j] != flatOuts[0][j] {
				return fmt.Errorf("survivor %d elem %d: degraded %d != flat %d — degraded RESULT diverges from the flat round",
					r, j, outs[r][j], flatOuts[0][j])
			}
		}
	}

	report(plan)
	if len(plan.Events()) != k {
		return fmt.Errorf("%d sever events fired, want %d", len(plan.Events()), k)
	}
	fmt.Printf("  %s: survivors %v agreed; degraded RESULT == flat round over the survivors\n", name, surv)
	return nil
}

// mpiCampaign exercises the runtime layer twice: a point-to-point ring
// under benign-but-nasty faults (drop, delay, duplicate, reorder) where
// every loss must surface as a typed timeout within its deadline, and a
// crash-rank sub-campaign where a collective must terminate with typed
// errors on every surviving rank instead of hanging.
func mpiCampaign() error {
	p := *ranks
	drop := chaos.NewRule(chaos.LayerMPI, chaos.FaultDrop)
	drop.Prob = 0.15
	delay := chaos.NewRule(chaos.LayerMPI, chaos.FaultDelay)
	delay.Prob = 0.1
	delay.Delay = 2 * time.Millisecond
	dup := chaos.NewRule(chaos.LayerMPI, chaos.FaultDuplicate)
	dup.Prob = 0.1
	reorder := chaos.NewRule(chaos.LayerMPI, chaos.FaultReorder)
	reorder.Prob = 0.1
	plan := chaos.NewPlan(*seed, drop, delay, dup, reorder)
	plan.RegisterMetrics(campaignReg)

	w := mpi.NewWorld(p)
	w.SetInterceptor(plan.MPIInterceptor())
	lost := make([]int, p)
	err := w.Run(60*time.Second, func(c *mpi.Comm) error {
		c.SetRecvTimeout(500 * time.Millisecond)
		next, prev := (c.Rank()+1)%p, (c.Rank()+p-1)%p
		// Eager sends first: a missing message then means "dropped by the
		// plan", never "sender was slow".
		for round := 0; round < *rounds; round++ {
			payload := []byte{byte(c.Rank()), byte(round)}
			if err := c.Send(next, 1000+round, payload); err != nil {
				return err
			}
		}
		buf := make([]byte, 2)
		for round := 0; round < *rounds; round++ {
			_, _, err := c.Recv(prev, 1000+round, buf)
			switch {
			case err == nil:
				if int(buf[0]) != prev || int(buf[1]) != round {
					return fmt.Errorf("rank %d round %d: got frame %v from %d", c.Rank(), round, buf, prev)
				}
			case errors.Is(err, mpi.ErrTimeout) || errors.Is(err, mpi.ErrRankExited):
				lost[c.Rank()]++ // typed and bounded — the acceptable outcome
			default:
				return fmt.Errorf("rank %d round %d: untyped failure %w", c.Rank(), round, err)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	report(plan)
	totalLost := 0
	for _, n := range lost {
		totalLost += n
	}
	fmt.Printf("mpi ring: %d×%d messages, %d lost (all typed, all within deadline)\n", p, *rounds, totalLost)

	// Crash-rank sub-campaign: rank p-1 dies before round 1's collective;
	// every surviving rank's allreduce must fail fast with ErrRankExited.
	crash := chaos.NewRule(chaos.LayerMPI, chaos.FaultCrashRank)
	crash.Match.Rank = p - 1
	crash.Match.Round = 1
	crashPlan := chaos.NewPlan(*seed, crash)
	crashPlan.RegisterMetrics(campaignReg)
	w2 := mpi.NewWorld(p)
	typed := make([]bool, p)
	err = w2.Run(60*time.Second, func(c *mpi.Comm) error {
		c.SetRecvTimeout(2 * time.Second)
		buf := make([]byte, 8*8)
		for round := 0; round < 2; round++ {
			if err := crashPlan.CrashPoint(c.Rank(), round); err != nil {
				return err // the injected crash: this rank exits mid-campaign
			}
			err := c.AllreduceAlgo(mpi.AlgoRecursiveDoubling, buf, buf, 8, mpi.Uint64, mpi.SumInt64)
			if round == 0 && err != nil {
				return fmt.Errorf("rank %d: clean round failed: %w", c.Rank(), err)
			}
			if round == 1 {
				if errors.Is(err, mpi.ErrRankExited) || errors.Is(err, mpi.ErrTimeout) {
					typed[c.Rank()] = true
				} else if err != nil {
					return fmt.Errorf("rank %d: untyped failure after peer crash: %w", c.Rank(), err)
				}
			}
		}
		return nil
	})
	if err != nil && !errors.Is(err, chaos.ErrCrashed) {
		return err
	}
	survivors := 0
	for r := 0; r < p-1; r++ {
		if typed[r] {
			survivors++
		}
	}
	if survivors != p-1 {
		return fmt.Errorf("crash sub-campaign: %d/%d survivors saw a typed error; the rest hung or succeeded bogusly", survivors, p-1)
	}
	fmt.Printf("mpi crash: rank %d crashed at round 1; all %d survivors failed fast with typed errors\n", p-1, p-1)
	return nil
}
