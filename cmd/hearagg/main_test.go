package main

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"hear/internal/aggsvc"
)

func TestExitCodeMapping(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, 1}, // exitCode is only called on failure paths
		{errors.New("dial tcp: refused"), 1},
		{&aggsvc.AbortError{Code: aggsvc.AbortProtocol}, 21},
		{&aggsvc.AbortError{Code: aggsvc.AbortDeadline}, 25},
		{&aggsvc.AbortError{Code: aggsvc.AbortStraggler}, 28},
		{&aggsvc.AbortError{Code: aggsvc.AbortUpstream}, 29},
		// Wrapping (the client prefixes "conn N round R:") must not lose
		// the typed code.
		{fmt.Errorf("conn 3 round 1: %w", &aggsvc.AbortError{Code: aggsvc.AbortUpstream}), 29},
		// Unknown future codes clamp below the shell's reserved range.
		{&aggsvc.AbortError{Code: aggsvc.AbortCode(60000)}, 125},
	}
	for _, tc := range cases {
		if got := exitCode(tc.err); got != tc.want {
			t.Errorf("exitCode(%v) = %d, want %d", tc.err, got, tc.want)
		}
	}
}

func TestParseCohortStatic(t *testing.T) {
	got, err := parseCohortStatic("10.0.0.7=0, 10.0.0.9=2,h=1")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"10.0.0.7": 0, "10.0.0.9": 2, "h": 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parsed %v, want %v", got, want)
	}
	if m, err := parseCohortStatic(""); err != nil || m != nil {
		t.Fatalf("empty flag: %v, %v", m, err)
	}
	for _, bad := range []string{"host", "=3", "h=x", "h=1,,"} {
		if _, err := parseCohortStatic(bad); err == nil {
			t.Errorf("accepted malformed %q", bad)
		}
	}
}
