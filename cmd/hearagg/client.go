package main

import (
	"flag"
	"fmt"
	"sort"
	"sync"
	"time"

	"hear"
	"hear/internal/aggsvc"
	"hear/internal/homac"
	"hear/internal/mpi"
)

func runClient(args []string) error {
	fs := flag.NewFlagSet("hearagg client", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7100", "gateway address")
	conns := fs.Int("conns", 8, "concurrent client connections (the round group)")
	rounds := fs.Int("rounds", 1, "aggregation rounds per connection")
	elems := fs.Int("elems", 8192, "int64 elements per vector")
	check := fs.Bool("check", true, "compare every aggregate against the plaintext reference")
	scheme := fs.String("scheme", "sum", "aggregation scheme: sum, prod, or xor (prod and xor require -verify 0)")
	verify := fs.Uint64("verify", 1, "HoMAC verification key seed (0 disables tag lanes)")
	seed := fs.Int64("seed", 1, "input data seed")
	stats := fs.Bool("stats", false, "dump gateway counters and exit")
	connectTimeout := fs.Duration("connect-timeout", 10*time.Second, "retry dialing this long")
	timeout := fs.Duration("timeout", 60*time.Second, "per-round client deadline")
	fs.Parse(args)

	if *stats {
		return dumpStats(*addr, *connectTimeout)
	}
	if *conns < 1 || *rounds < 1 || *elems < 1 {
		return fmt.Errorf("conns, rounds, elems must be positive")
	}
	var kind hear.SchemeKind
	fold := func(a, v int64) int64 { return a + v }
	unit := int64(0)
	switch *scheme {
	case "sum":
		kind = hear.Int64Sum
	case "prod":
		kind = hear.Int64Prod
		fold = func(a, v int64) int64 { return int64(uint64(a) * uint64(v)) }
		unit = 1
	case "xor":
		kind = hear.Int64Xor
		fold = func(a, v int64) int64 { return a ^ v }
	default:
		return fmt.Errorf("unknown -scheme %q (want sum, prod, or xor)", *scheme)
	}

	// All participants live in this process: one in-process world supplies
	// the coordinated contexts the gateway never sees.
	w := mpi.NewWorld(*conns)
	ctxs, err := hear.Init(w, hear.Options{})
	if err != nil {
		return err
	}
	var verifier *homac.Vector
	if *verify != 0 {
		if kind != hear.Int64Sum {
			return fmt.Errorf("-scheme %s cannot carry a HoMAC tag lane (tag aggregation is additive); pass -verify 0", *scheme)
		}
		if verifier, err = hear.NewVerifier(*verify); err != nil {
			return err
		}
	}
	sealers := make([]*hear.GatewaySealer, *conns)
	for i, c := range ctxs {
		if sealers[i], err = c.NewGatewaySealerScheme(kind, verifier); err != nil {
			return err
		}
	}

	inputs := make([][]int64, *conns)
	want := make([]int64, *elems)
	for j := range want {
		want[j] = unit
	}
	for i := range inputs {
		inputs[i] = make([]int64, *elems)
		for j := range inputs[i] {
			inputs[i][j] = *seed*int64(i+1) + int64(j) - int64(*elems)/2
			want[j] = fold(want[j], inputs[i][j])
		}
	}

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		latencies []time.Duration
		firstErr  error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	// One read-buffer pool for the whole fleet: each client recycles its
	// high-water frame buffer through it on Close, so -conns clients over
	// -rounds rounds settle on a handful of RESULT-sized buffers instead
	// of growing one per connection.
	rbufs := &sync.Pool{}
	start := time.Now()
	for i := 0; i < *conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := dialRetry(*addr, sealers[i],
				aggsvc.ClientOptions{Timeout: *timeout, ReadBufPool: rbufs}, *connectTimeout)
			if err != nil {
				fail(fmt.Errorf("conn %d: %w", i, err))
				return
			}
			defer c.Close()
			out := make([]int64, *elems)
			for r := 0; r < *rounds; r++ {
				info, err := c.Aggregate(inputs[i], out)
				if err != nil {
					fail(fmt.Errorf("conn %d round %d: %w", i, r, err))
					return
				}
				if *check {
					for j := range out {
						if out[j] != want[j] {
							fail(fmt.Errorf("conn %d round %d: elem %d = %d, want %d",
								i, r, j, out[j], want[j]))
							return
						}
					}
				}
				mu.Lock()
				latencies = append(latencies, info.Elapsed)
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	elapsed := time.Since(start)

	laneBytes := int64(*elems) * 8
	totalBytes := laneBytes * int64(*conns) * int64(*rounds)
	if *verify != 0 {
		totalBytes *= 2 // tag lane rides along
	}
	sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
	pct := func(p float64) time.Duration {
		return latencies[min(len(latencies)-1, int(p*float64(len(latencies))))]
	}
	verified := "verified"
	if *verify == 0 {
		verified = "unverified"
	}
	fmt.Printf("hearagg: %d conns × %d rounds × %d elems (%s) OK\n", *conns, *rounds, *elems, verified)
	fmt.Printf("hearagg: wall %.3fs, %.1f rounds/s, %.1f MB/s submitted\n",
		elapsed.Seconds(), float64(*rounds)/elapsed.Seconds(),
		float64(totalBytes)/elapsed.Seconds()/1e6)
	fmt.Printf("hearagg: round latency p50=%s p90=%s max=%s\n",
		pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond),
		latencies[len(latencies)-1].Round(time.Microsecond))
	if *check {
		fmt.Println("hearagg: aggregate matches plaintext reference")
	}
	return nil
}

// dialRetry keeps dialing until the gateway answers or the budget runs
// out, so the client can be started before (or concurrently with) serve.
// Delays back off exponentially with jitter — a fleet of clients launched
// together must not re-dial a still-starting gateway in lockstep.
func dialRetry(addr string, s aggsvc.Sealer, opt aggsvc.ClientOptions, budget time.Duration) (*aggsvc.Client, error) {
	deadline := time.Now().Add(budget)
	bo := &aggsvc.Backoff{Base: 50 * time.Millisecond, Max: time.Second, Seed: int64(opt.JitterSeed) ^ deadline.UnixNano()}
	for attempt := 1; ; attempt++ {
		c, err := aggsvc.Dial(addr, s, opt)
		if err == nil {
			return c, nil
		}
		if time.Now().After(deadline) {
			return nil, &aggsvc.GiveUpError{Op: "dial " + addr, Attempts: attempt, Last: err}
		}
		bo.Sleep(attempt)
	}
}

func dumpStats(addr string, budget time.Duration) error {
	c, err := dialRetry(addr, nil, aggsvc.ClientOptions{Timeout: budget}, budget)
	if err != nil {
		return err
	}
	defer c.Close()
	m, err := c.ServerStats()
	if err != nil {
		return err
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("%-24s %d\n", k, m[k])
	}
	return nil
}
