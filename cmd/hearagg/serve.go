package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hear/internal/aggsvc"
	"hear/internal/aggsvc/federation"
	"hear/internal/metrics"
)

// parseCohortStatic parses the -cohort-static flag: comma-separated
// host=cohort pairs.
func parseCohortStatic(s string) (map[string]int, error) {
	if s == "" {
		return nil, nil
	}
	static := make(map[string]int)
	for _, pair := range strings.Split(s, ",") {
		host, idx, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || host == "" {
			return nil, fmt.Errorf("malformed -cohort-static entry %q (want host=cohort)", pair)
		}
		n, err := strconv.Atoi(idx)
		if err != nil {
			return nil, fmt.Errorf("malformed -cohort-static cohort in %q: %v", pair, err)
		}
		static[host] = n
	}
	return static, nil
}

func runServe(args []string) error {
	fs := flag.NewFlagSet("hearagg serve", flag.ExitOnError)
	addr := fs.String("addr", ":7100", "TCP listen address")
	group := fs.Int("group", 8, "clients aggregated per round")
	elems := fs.Int("elems", 0, "pin the vector length (0 = per-round, fixed by the first HELLO)")
	deadline := fs.Duration("deadline", aggsvc.DefaultRoundTimeout, "round deadline; stragglers abort the round")
	quorum := fs.Int("quorum", 0, "evict stragglers at the deadline when at least this many participants finished (0 = fail closed)")
	degraded := fs.Bool("degraded", false, "complete rounds over the surviving participants at the deadline instead of aborting (requires -quorum; survivors must run shared-group keys)")
	chunk := fs.Int("chunk", aggsvc.DefaultChunkBytes, "SUBMIT chunk bytes (fold parallelism unit)")
	workers := fs.Int("workers", 0, "fold worker goroutines (0 = GOMAXPROCS)")
	maxFrame := fs.Int("max-frame", aggsvc.DefaultMaxFrameBytes, "reject frames larger than this")
	quiet := fs.Bool("quiet", false, "suppress per-round log lines")
	admin := fs.String("admin", "", "opt-in HTTP admin listener serving /metrics, /healthz, /debug/pprof (empty = disabled)")
	upstream := fs.String("upstream", "", "federate: relay each cohort's partial fold to this upstream gateway (empty = this gateway is a flat root)")
	cohorts := fs.Int("cohorts", 1, "shard arriving clients into this many independently-filling cohorts")
	cohortStatic := fs.String("cohort-static", "", "pin client hosts to cohorts, e.g. \"10.0.0.7=0,10.0.0.9=2\" (others hash)")
	tier := fs.Int("tier", 0, "this gateway's tier in the federation (metrics label only)")
	upstreamTimeout := fs.Duration("upstream-timeout", federation.DefaultTimeout, "bound one upstream exchange; should exceed the upstream's -deadline")
	upstreamRetry := fs.Int("upstream-retry", 3, "re-attempts of a failed upstream dial (the exchange itself is never retried)")
	fs.Parse(args)

	logf := log.New(os.Stderr, "", log.Ltime|log.Lmicroseconds).Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	var reg *metrics.Registry
	if *admin != "" {
		reg = metrics.New()
	}
	static, err := parseCohortStatic(*cohortStatic)
	if err != nil {
		return err
	}
	var uplink aggsvc.UplinkDialer
	if *upstream != "" {
		u, err := federation.New(federation.Config{
			Addr:      *upstream,
			Timeout:   *upstreamTimeout,
			DialRetry: *upstreamRetry,
			Tier:      *tier,
			Metrics:   reg,
			Logf:      logf,
		})
		if err != nil {
			return err
		}
		uplink = u.Dialer()
	}
	s, err := aggsvc.NewServer(aggsvc.Config{
		Group:          *group,
		Elems:          *elems,
		RoundTimeout:   *deadline,
		Quorum:         *quorum,
		DegradedRounds: *degraded,
		ChunkBytes:     *chunk,
		Workers:        *workers,
		MaxFrameBytes:  *maxFrame,
		Cohorts:        *cohorts,
		CohortStatic:   static,
		Uplink:         uplink,
		Logf:           logf,
		Metrics:        reg,
	})
	if err != nil {
		return err
	}
	if *admin != "" {
		al, err := startAdmin(*admin, reg, nil)
		if err != nil {
			return err
		}
		defer al.Close()
		fmt.Printf("hearagg: admin on http://%s (/metrics /healthz /debug/pprof)\n", al.Addr())
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The "listening" line goes to stdout so scripts (and the CI smoke test)
	// can wait for readiness by watching for it.
	role := "flat root"
	if *upstream != "" {
		role = fmt.Sprintf("tier %d -> %s", *tier, *upstream)
	}
	if *degraded {
		role += fmt.Sprintf(", degraded rounds on (quorum %d)", *quorum)
	} else if *quorum > 0 {
		role += fmt.Sprintf(", quorum %d", *quorum)
	}
	fmt.Printf("hearagg: listening on %s (group=%d cohorts=%d deadline=%s chunk=%dB, %s)\n",
		l.Addr(), *group, *cohorts, *deadline, *chunk, role)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- s.Serve(l) }()
	select {
	case err := <-done:
		return err
	case <-sig:
		fmt.Println("hearagg: shutting down")
		s.Close()
		select {
		case <-done:
		case <-time.After(2 * time.Second):
		}
		return nil
	}
}
