package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"hear/internal/aggsvc"
	"hear/internal/metrics"
)

func runServe(args []string) error {
	fs := flag.NewFlagSet("hearagg serve", flag.ExitOnError)
	addr := fs.String("addr", ":7100", "TCP listen address")
	group := fs.Int("group", 8, "clients aggregated per round")
	elems := fs.Int("elems", 0, "pin the vector length (0 = per-round, fixed by the first HELLO)")
	deadline := fs.Duration("deadline", aggsvc.DefaultRoundTimeout, "round deadline; stragglers abort the round")
	chunk := fs.Int("chunk", aggsvc.DefaultChunkBytes, "SUBMIT chunk bytes (fold parallelism unit)")
	workers := fs.Int("workers", 0, "fold worker goroutines (0 = GOMAXPROCS)")
	maxFrame := fs.Int("max-frame", aggsvc.DefaultMaxFrameBytes, "reject frames larger than this")
	quiet := fs.Bool("quiet", false, "suppress per-round log lines")
	admin := fs.String("admin", "", "opt-in HTTP admin listener serving /metrics, /healthz, /debug/pprof (empty = disabled)")
	fs.Parse(args)

	logf := log.New(os.Stderr, "", log.Ltime|log.Lmicroseconds).Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	var reg *metrics.Registry
	if *admin != "" {
		reg = metrics.New()
	}
	s, err := aggsvc.NewServer(aggsvc.Config{
		Group:         *group,
		Elems:         *elems,
		RoundTimeout:  *deadline,
		ChunkBytes:    *chunk,
		Workers:       *workers,
		MaxFrameBytes: *maxFrame,
		Logf:          logf,
		Metrics:       reg,
	})
	if err != nil {
		return err
	}
	if *admin != "" {
		al, err := startAdmin(*admin, reg, nil)
		if err != nil {
			return err
		}
		defer al.Close()
		fmt.Printf("hearagg: admin on http://%s (/metrics /healthz /debug/pprof)\n", al.Addr())
	}
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The "listening" line goes to stdout so scripts (and the CI smoke test)
	// can wait for readiness by watching for it.
	fmt.Printf("hearagg: listening on %s (group=%d deadline=%s chunk=%dB)\n",
		l.Addr(), *group, *deadline, *chunk)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- s.Serve(l) }()
	select {
	case err := <-done:
		return err
	case <-sig:
		fmt.Println("hearagg: shutting down")
		s.Close()
		select {
		case <-done:
		case <-time.After(2 * time.Second):
		}
		return nil
	}
}
