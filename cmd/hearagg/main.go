// hearagg is the secure aggregation gateway daemon and its load-test
// client (internal/aggsvc served as a standalone binary):
//
//	hearagg serve  -addr :7100 -group 8                 run the gateway
//	hearagg client -addr host:7100 -conns 8 -rounds 10  drive rounds
//	hearagg client -stats                               dump gateway counters
//
// The server is key-blind: the serve path executes only internal/aggsvc's
// fold kernels and holds no key material. The client side hosts the HEAR
// contexts — it seals, verifies, and decrypts, and doubles as a load-test
// harness reporting round latency and fold throughput.
package main

import (
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = runServe(os.Args[2:])
	case "client":
		err = runClient(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "hearagg: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hearagg:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  hearagg serve  [flags]   run the aggregation gateway
  hearagg client [flags]   run N clients against a gateway (load test)
run "hearagg serve -h" or "hearagg client -h" for flags`)
}
