// hearagg is the secure aggregation gateway daemon and its load-test
// client (internal/aggsvc served as a standalone binary):
//
//	hearagg serve  -addr :7100 -group 8                 run the gateway
//	hearagg client -addr host:7100 -conns 8 -rounds 10  drive rounds
//	hearagg client -stats                               dump gateway counters
//
// The server is key-blind: the serve path executes only internal/aggsvc's
// fold kernels and holds no key material. The client side hosts the HEAR
// contexts — it seals, verifies, and decrypts, and doubles as a load-test
// harness reporting round latency and fold throughput.
package main

import (
	"errors"
	"fmt"
	"os"

	"hear/internal/aggsvc"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = runServe(os.Args[2:])
	case "client":
		err = runClient(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "hearagg: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hearagg:", err)
		os.Exit(exitCode(err))
	}
}

// abortExitBase offsets typed gateway aborts into their own exit-code
// range: a round aborted with AbortCode c exits with abortExitBase+c, so
// scripts and CI can branch on the failure class (21 protocol-violation …
// 29 upstream-failure) without parsing stderr. Codes clamp at 125 to stay
// clear of the shell's 126/127/128+signal conventions.
const abortExitBase = 20

// exitCode maps a failure to the process exit code: typed aborts land in
// the abortExitBase range, everything else exits 1.
func exitCode(err error) int {
	var aerr *aggsvc.AbortError
	if !errors.As(err, &aerr) {
		return 1
	}
	c := abortExitBase + int(aerr.Code)
	if c > 125 {
		c = 125
	}
	if c < abortExitBase {
		c = abortExitBase
	}
	return c
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  hearagg serve  [flags]   run the aggregation gateway
  hearagg client [flags]   run N clients against a gateway (load test)
run "hearagg serve -h" or "hearagg client -h" for flags

exit codes: 0 success, 1 generic failure, 2 usage; a typed gateway abort
exits 20+code (21 protocol-violation, 22 version-mismatch, 23 round-
mismatch, 24 oversized-frame, 25 deadline-expired, 26 participant-lost,
27 server-shutdown, 28 straggler-evicted, 29 upstream-failure)`)
}
