package main

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"hear/internal/metrics"
)

// startAdmin binds the opt-in admin listener and serves the observability
// endpoints on it:
//
//	/metrics        Prometheus text exposition (?format=json for the JSON
//	                snapshot — identical counter semantics)
//	/healthz        liveness probe; 200 with a one-line body
//	/debug/pprof/   the standard net/http/pprof profile index
//
// The mux is explicit — nothing registers on http.DefaultServeMux, so a
// stray import cannot widen the surface. The listener is separate from
// the aggregation port on purpose: operators can firewall it
// independently, and a wedged admin scrape can never block a round.
func startAdmin(addr string, reg *metrics.Registry, healthy func() bool) (net.Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("admin listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		samples := reg.Gather()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			metrics.WriteJSON(w, samples)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		metrics.WritePrometheus(w, samples)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if healthy != nil && !healthy() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "shutting down")
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(l)
	return l, nil
}
