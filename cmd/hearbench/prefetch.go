package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"hear"
	"hear/internal/chaos"
	"hear/internal/metrics"
	"hear/internal/mpi"
	"hear/internal/prf"
)

// prefetchExp measures what the noise prefetch engine buys on a steady
// Allreduce train: the same collective is timed with NoisePrefetch off and
// on over a link with a per-message delivery delay (a chaos FaultDelay
// rule standing in for network latency), so the run has a real
// communication window to hide next-epoch keystream generation in. It
// emits BENCH_prefetch.json with per-backend wall times, cold/warm hit
// rates, and the relative speedup.
//
// Backend choice decides the ceiling: under software ChaCha20, keystream
// generation dominates host-side cost and the overlap removes most of it;
// under hardware AES-CTR, generation is a few percent of wall time on this
// train and the measured gap sits inside run-to-run noise.

const (
	prefetchElems  = 64 << 10 // 512 KiB messages
	prefetchRanks  = 2
	prefetchDelay  = 2 * time.Millisecond
	prefetchBudget = 16 << 20
)

type prefetchRow struct {
	Backend        string  `json:"backend"`
	OffNsPerCall   float64 `json:"off_ns_per_call"`
	OnNsPerCall    float64 `json:"on_ns_per_call"`
	OffNsPerElem   float64 `json:"off_ns_per_elem"`
	OnNsPerElem    float64 `json:"on_ns_per_elem"`
	ColdHitRate    float64 `json:"cold_hit_rate"`
	WarmHitRate    float64 `json:"warm_hit_rate"`
	SpeedupPercent float64 `json:"speedup_percent"`
	// Metrics is the prefetch-on run's registry snapshot (internal/metrics
	// Map form: name{labels} → value) — the same counters `hearagg serve
	// -admin` exposes on /metrics, so a benchmark row and a live scrape
	// can be compared number for number.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

type prefetchReport struct {
	Experiment   string        `json:"experiment"`
	Ranks        int           `json:"ranks"`
	Elems        int           `json:"elems"`
	MessageBytes int           `json:"message_bytes"`
	DelayUS      float64       `json:"delay_us"`
	BudgetBytes  int           `json:"budget_bytes"`
	Iters        int           `json:"iters"`
	Rows         []prefetchRow `json:"rows"`
}

// prefetchTrain times itersN steady-state calls of a 512 KiB Int64Sum
// Allreduce and returns ns/call plus the prefetcher's cold (first call)
// and warm (timed train) hit rates, both 0 when budget is 0.
func prefetchTrain(backend string, budget, itersN int, reg *metrics.Registry) (nsPerCall, coldHit, warmHit float64, err error) {
	w := mpi.NewWorld(prefetchRanks)
	rule := chaos.NewRule(chaos.LayerMPI, chaos.FaultDelay)
	rule.Delay = prefetchDelay
	w.SetInterceptor(chaos.NewPlan(7, rule).MPIInterceptor())
	ctxs, err := hear.Init(w, hear.Options{
		Rand:          &seqReader{next: 11},
		PRFBackend:    backend,
		NoisePrefetch: budget,
		Metrics:       reg,
	})
	if err != nil {
		return 0, 0, 0, err
	}
	train := func(calls int) error {
		return w.Run(0, func(c *mpi.Comm) error {
			data := make([]int64, prefetchElems)
			out := make([]int64, prefetchElems)
			for i := 0; i < calls; i++ {
				if err := ctxs[c.Rank()].AllreduceInt64Sum(c, data, out); err != nil {
					return err
				}
			}
			return nil
		})
	}
	hitRate := func(baseHit, baseMiss uint64) (float64, uint64, uint64) {
		var hit, miss uint64
		for _, ctx := range ctxs {
			s := ctx.PrefetchStats()
			hit += s.HitBytes
			miss += s.MissBytes
		}
		dh, dm := hit-baseHit, miss-baseMiss
		if dh+dm == 0 {
			return 0, hit, miss
		}
		return float64(dh) / float64(dh+dm), hit, miss
	}

	// Cold: the very first collective, nothing speculated yet.
	if err := train(1); err != nil {
		return 0, 0, 0, err
	}
	coldHit, hit, miss := hitRate(0, 0)
	// Warm up to steady state, then time the train.
	if err := train(3); err != nil {
		return 0, 0, 0, err
	}
	_, hit, miss = hitRate(hit, miss)
	start := time.Now()
	if err := train(itersN); err != nil {
		return 0, 0, 0, err
	}
	wall := time.Since(start)
	warmHit, _, _ = hitRate(hit, miss)
	return float64(wall.Nanoseconds()) / float64(itersN), coldHit, warmHit, nil
}

func prefetchExp() error {
	itersN := iters(2000)
	if itersN > 40 {
		itersN = 40 // each call sleeps ~4 ms; 40 calls bound a full run
	}
	report := prefetchReport{
		Experiment:   "prefetch",
		Ranks:        prefetchRanks,
		Elems:        prefetchElems,
		MessageBytes: prefetchElems * 8,
		DelayUS:      float64(prefetchDelay) / float64(time.Microsecond),
		BudgetBytes:  prefetchBudget,
		Iters:        itersN,
	}
	fmt.Printf("noise prefetch overlap: %d ranks, %d KiB messages, %v/message link delay, %d iters\n",
		prefetchRanks, prefetchElems*8>>10, prefetchDelay, itersN)
	fmt.Printf("%-14s %14s %14s %10s %10s %9s\n", "backend", "off ns/call", "on ns/call", "cold hit", "warm hit", "speedup")
	for _, backend := range []string{prf.BackendChaCha20, prf.BackendAESFast} {
		offNs, _, _, err := prefetchTrain(backend, 0, itersN, nil)
		if err != nil {
			return err
		}
		reg := metrics.New()
		onNs, cold, warm, err := prefetchTrain(backend, prefetchBudget, itersN, reg)
		if err != nil {
			return err
		}
		row := prefetchRow{
			Backend:        backend,
			OffNsPerCall:   offNs,
			OnNsPerCall:    onNs,
			OffNsPerElem:   offNs / prefetchElems,
			OnNsPerElem:    onNs / prefetchElems,
			ColdHitRate:    cold,
			WarmHitRate:    warm,
			SpeedupPercent: 100 * (1 - onNs/offNs),
			Metrics:        reg.Map(),
		}
		report.Rows = append(report.Rows, row)
		fmt.Printf("%-14s %14.0f %14.0f %9.1f%% %9.1f%% %8.1f%%\n",
			backend, row.OffNsPerCall, row.OnNsPerCall, 100*cold, 100*warm, row.SpeedupPercent)
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_prefetch.json", append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_prefetch.json")
	return nil
}
