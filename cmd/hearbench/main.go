// hearbench regenerates every table and figure of the paper's evaluation:
//
//	hearbench table1     requirement matrix vs Paillier/RSA/ElGamal
//	hearbench fig3       HFP precision loss vs float type and γ
//	hearbench fig4       16 B critical-path latency breakdown
//	hearbench fig5       enc/dec throughput per PRF backend
//	hearbench fig6       16 MiB pipelined throughput vs block size
//	hearbench fig7       throughput scaling to 1152 ranks (model + measured costs)
//	hearbench fig8       16 B latency scaling to 1152 ranks
//	hearbench fig9       DNN training relative iteration time
//	hearbench map        §5.3.1 MAP adversary success probabilities
//	hearbench prefetch   noise prefetch overlap speedup (BENCH_prefetch.json)
//	hearbench federation gateway-federation fan-in scaling (BENCH_federation.json)
//	hearbench wirepath   zero-copy fan-out bytes/sec/core vs legacy codec (BENCH_wirepath.json)
//	hearbench roofline   fused vs two-pass kernel ns/elem across working sets (BENCH_roofline.json)
//	hearbench inc        INC's latency/bandwidth advantages (intro claims)
//	hearbench ablation   design-choice ablations (canceling, PRF backend, op cost)
//	hearbench validate   §6 correctness validation (float error, int memcmp)
//	hearbench all        everything above
//
// Flags scale the iteration counts so CI runs stay fast while full runs
// match the paper's methodology (100 000 latency iterations, etc.).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

var (
	quick = flag.Bool("quick", false, "reduce iteration counts ~100x for smoke runs")
	ranks = flag.Int("ranks", 4, "in-process world size for the wall-clock benches")
)

func main() {
	flag.Parse()
	cmd := flag.Arg(0)
	if cmd == "" {
		cmd = "all"
	}
	experiments := map[string]func() error{
		"table1":     table1,
		"fig3":       fig3,
		"fig4":       fig4,
		"fig5":       fig5,
		"fig6":       fig6,
		"fig7":       fig7,
		"fig8":       fig8,
		"fig9":       fig9,
		"map":        mapAttack,
		"prefetch":   prefetchExp,
		"federation": federationExp,
		"wirepath":   wirepathExp,
		"roofline":   rooflineExp,
		"inc":        incExp,
		"ablation":   ablation,
		"validate":   validate,
	}
	if cmd == "all" {
		names := make([]string, 0, len(experiments))
		for n := range experiments {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("\n============================== %s ==============================\n", strings.ToUpper(n))
			if err := experiments[n](); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", n, err)
				os.Exit(1)
			}
		}
		return
	}
	f, ok := experiments[cmd]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", cmd)
		os.Exit(2)
	}
	if err := f(); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", cmd, err)
		os.Exit(1)
	}
}

// iters scales an iteration count down in -quick mode.
func iters(full int) int {
	if *quick {
		n := full / 100
		if n < 1 {
			n = 1
		}
		return n
	}
	return full
}
