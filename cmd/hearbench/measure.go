package main

import (
	"fmt"
	"time"

	"hear/internal/core"
	"hear/internal/hfp"
	"hear/internal/keys"
	"hear/internal/prf"
)

// seqReader makes benchmark key material deterministic so repeated runs
// measure the same key schedule.
type seqReader struct{ next byte }

func (r *seqReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = r.next*197 + 31
		r.next++
	}
	return len(p), nil
}

// benchStates returns a deterministic two-rank key state for single-node
// crypto measurements.
func benchStates(backend string, size int) ([]*keys.RankState, error) {
	return keys.Generate(size, keys.Config{Backend: backend, Rand: &seqReader{next: 5}})
}

// cryptoRates measures one rank's encryption and decryption throughput in
// bytes/s for a scheme over a buffer of n elements, averaged over iters
// runs — the quantity Figure 5 plots and the scaling model consumes.
func cryptoRates(s core.Scheme, st *keys.RankState, n, iters int) (encRate, decRate float64, err error) {
	plain := make([]byte, n*s.PlainSize())
	for i := range plain {
		plain[i] = byte(i*31 + 7)
	}
	cipher := make([]byte, n*s.CipherSize())
	st.Advance()

	// Warmup.
	if err := s.Encrypt(st, plain, cipher, n); err != nil {
		return 0, 0, err
	}
	if err := s.Decrypt(st, cipher, plain, n); err != nil {
		return 0, 0, err
	}

	t0 := time.Now()
	for i := 0; i < iters; i++ {
		if err := s.Encrypt(st, plain, cipher, n); err != nil {
			return 0, 0, err
		}
	}
	encT := time.Since(t0)

	t0 = time.Now()
	for i := 0; i < iters; i++ {
		if err := s.Decrypt(st, cipher, plain, n); err != nil {
			return 0, 0, err
		}
	}
	decT := time.Since(t0)

	plainBytes := float64(n*s.PlainSize()) * float64(iters)
	return plainBytes / encT.Seconds(), plainBytes / decT.Seconds(), nil
}

// perCallLatency measures the fixed cost of encrypting + decrypting one
// 16-byte message (key progression included) — Figure 4/8's quantity.
func perCallLatency(s core.Scheme, st *keys.RankState, iters int) (time.Duration, error) {
	n := 16 / s.PlainSize()
	if n < 1 {
		n = 1
	}
	plain := make([]byte, n*s.PlainSize())
	cipher := make([]byte, n*s.CipherSize())
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		st.Advance()
		if err := s.Encrypt(st, plain, cipher, n); err != nil {
			return 0, err
		}
		if err := s.Decrypt(st, cipher, plain, n); err != nil {
			return 0, err
		}
	}
	return time.Since(t0) / time.Duration(iters), nil
}

// measuredCosts bundles the rates the scaling figures inject into netsim.
type measuredCosts struct {
	intEnc, intDec     float64
	floatEnc, floatDec float64
	perCall            time.Duration
}

// measureHEARCosts runs the quick crypto microbenchmarks on this build.
func measureHEARCosts(iters int) (measuredCosts, error) {
	var mc measuredCosts
	states, err := benchStates(prf.BackendAESFast, 2)
	if err != nil {
		return mc, err
	}
	intScheme, err := core.NewIntSum(64)
	if err != nil {
		return mc, err
	}
	mc.intEnc, mc.intDec, err = cryptoRates(intScheme, states[0], 1<<17, iters)
	if err != nil {
		return mc, err
	}
	floatScheme, err := core.NewFloatSum(hfp.FP32, 0)
	if err != nil {
		return mc, err
	}
	mc.floatEnc, mc.floatDec, err = cryptoRates(floatScheme, states[0], 1<<15, iters)
	if err != nil {
		return mc, err
	}
	mc.perCall, err = perCallLatency(intScheme, states[0], iters*10)
	if err != nil {
		return mc, err
	}
	return mc, nil
}

func gbs(bytesPerSec float64) string {
	return fmt.Sprintf("%7.3f GB/s", bytesPerSec/1e9)
}
