package main

import (
	"fmt"

	"hear/internal/adversary"
	"hear/internal/dnn"
	"hear/internal/hfp"
	"hear/internal/netsim"
)

// hfpFP32Base returns the FP32 plaintext shape (helper shared by the
// measurement code).
func hfpFP32Base() hfp.Format { return hfp.FP32 }

// scalingCosts converts this build's measured crypto rates into the
// model's HEARCosts. pipelineEff is taken from the paper's Figure 6 best
// point methodology: the measured best pipelined/native ratio; we use the
// canonical 0.85 unless a fig6 run suggests otherwise.
func scalingCosts(mc measuredCosts, float bool) *netsim.HEARCosts {
	h := &netsim.HEARCosts{
		PerCallLatency:     mc.perCall.Seconds(),
		Inflation:          1.0,
		PipelineEfficiency: 0.85,
	}
	if float {
		h.EncRate, h.DecRate = mc.floatEnc, mc.floatDec
	} else {
		h.EncRate, h.DecRate = mc.intEnc, mc.intDec
	}
	return h
}

// fig7 regenerates Figure 7: 16 MiB Allreduce throughput per node from 2
// to 1152 ranks (PPN section on two nodes, then node scaling at 36 PPN),
// on the Aries-calibrated model with this build's measured crypto rates.
func fig7() error {
	mc, err := measureHEARCosts(iters(100))
	if err != nil {
		return err
	}
	fmt.Printf("Figure 7 — 16 MiB Allreduce throughput per node (model; measured int enc %.1f / dec %.1f GB/s per core)\n\n",
		mc.intEnc/1e9, mc.intDec/1e9)
	p := netsim.AriesDefaults()
	h := scalingCosts(mc, false)
	fmt.Printf("%-8s %-7s %-7s %-18s %-18s %-12s %s\n", "ranks", "nodes", "PPN", "native GB/s/node", "HEAR GB/s/node", "HEAR/native", "DES ratio")
	for _, pt := range netsim.PaperPoints() {
		native, hearTP, err := p.ThroughputPerNode(h, pt.Ranks, pt.Nodes, 16<<20)
		if err != nil {
			return err
		}
		// Discrete-event cross-check: the same config through the
		// dependency-graph simulator, native vs pipelined HEAR.
		cl := netsim.AriesCluster(pt.Nodes, pt.Ranks/pt.Nodes)
		desNative, err := cl.SimulateAllreduce(netsim.AlgoRingDES, 16<<20, 0)
		if err != nil {
			return err
		}
		desHEAR, err := cl.SimulateHEARAllreduce(netsim.AlgoRingDES, 16<<20, h, 256<<10)
		if err != nil {
			return err
		}
		fmt.Printf("%-8d %-7d %-7d %-18.2f %-18.2f %6.1f%%      %6.1f%%\n",
			pt.Ranks, pt.Nodes, pt.Ranks/pt.Nodes, native/1e9, hearTP/1e9,
			100*hearTP/native, 100*desNative/desHEAR)
	}
	fmt.Println("\nShape check vs the paper: native peaks ~11.1 GB/s and declines with node")
	fmt.Println("count; HEAR scales identically at ~80% of native throughout. The last")
	fmt.Println("column is the discrete-event simulator's independent HEAR/native ratio")
	fmt.Println("for the same configuration (dependency-graph replay, not closed forms).")
	return nil
}

// fig8 regenerates Figure 8: 16 B Allreduce latency from 2 to 1152 ranks
// with min/mean/max noise bands.
func fig8() error {
	mc, err := measureHEARCosts(iters(100))
	if err != nil {
		return err
	}
	fmt.Printf("Figure 8 — 16 B Allreduce latency (model; measured per-call crypto %.0f ns)\n\n",
		float64(mc.perCall.Nanoseconds()))
	p := netsim.AriesDefaults()
	h := scalingCosts(mc, false)
	fmt.Printf("%-8s %-7s %-26s %-26s %s\n", "ranks", "nodes", "native µs (min/mean/max)", "HEAR µs (min/mean/max)", "HEAR in noise band")
	for _, pt := range netsim.PaperPoints() {
		native, hearLat, err := p.Latency(h, pt.Ranks, pt.Nodes, 16)
		if err != nil {
			return err
		}
		inBand := hearLat.Mean <= native.Max
		fmt.Printf("%-8d %-7d %6.2f/%6.2f/%6.2f       %6.2f/%6.2f/%6.2f        %v\n",
			pt.Ranks, pt.Nodes,
			native.Min*1e6, native.Mean*1e6, native.Max*1e6,
			hearLat.Min*1e6, hearLat.Mean*1e6, hearLat.Max*1e6, inBand)
	}
	fmt.Println("\nShape check vs the paper: latency grows with rank count; HEAR's constant")
	fmt.Println("crypto overhead shrinks relative to the widening network-noise band and")
	fmt.Println("disappears inside it at scale.")
	return nil
}

// fig9 regenerates Figure 9: simulated relative iteration time of DNN
// training proxies under HEAR (FP32 gradient Allreduce encrypted).
func fig9() error {
	mc, err := measureHEARCosts(iters(100))
	if err != nil {
		return err
	}
	fmt.Printf("Figure 9 — DNN training iteration time with HEAR, relative to native\n")
	fmt.Printf("(measured float32 scheme: enc %.2f / dec %.2f GB/s per core)\n\n", mc.floatEnc/1e9, mc.floatDec/1e9)
	res, err := dnn.SimulateAll(netsim.AriesDefaults(), scalingCosts(mc, true))
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %-7s %-7s %-14s %-16s %-16s %s\n", "model", "ranks", "nodes", "gradient MB", "AR native ms", "AR HEAR ms", "relative time")
	for _, r := range res {
		fmt.Printf("%-12s %-7d %-7d %-14.1f %-16.2f %-16.2f %6.1f%%\n",
			r.Model.Name, r.Model.Ranks, r.Model.Nodes,
			float64(r.Model.AllreduceBytes())/1e6,
			r.AllreduceNative*1e3, r.AllreduceHEAR*1e3, 100*r.RelativeExecTime)
	}
	fmt.Println("\nShape check vs the paper (ResNet-152 131.2%, DLRM 117.3%, CosmoFlow")
	fmt.Println("111.3%, GPT3 103.1%): Allreduce-only ResNet-152 is the worst case;")
	fmt.Println("compute-dominated GPT3 barely notices; the others sit between.")
	return nil
}

// mapAttack prints the §5.3.1 MAP adversary evaluation.
func mapAttack() error {
	fmt.Println("§5.3.1 — MAP estimator attack on the HFP mantissa channel")
	fmt.Printf("%-14s %-12s %-12s %-12s %-12s %s\n", "mantissa bits", "uniform", "MAP avg", "MAP max", "MAP min", "advantage")
	var last adversary.MAPResult
	for _, bits := range []uint{6, 8, 10, 12} {
		if *quick && bits > 10 {
			break
		}
		res, err := adversary.MAPAttack(bits)
		if err != nil {
			return err
		}
		fmt.Printf("%-14d %-12.3g %-12.3g %-12.3g %-12.3g %.2fx\n",
			res.MantissaBits, res.Uniform, res.Avg, res.Max, res.Min, res.Advantage)
		last = res
	}
	fp32 := adversary.ExtrapolateAdvantage(last.Advantage, 23)
	fmt.Printf("\nExtrapolated FP32 (23-bit mantissa): MAP success %.3g vs uniform 1.19e-7\n", fp32)
	fmt.Println("(paper reports avg 3.57e-7, max 3.58e-7, min 2.38e-7 — same negligible")
	fmt.Println("order; the exact constant depends on the estimator's quantization).")
	return nil
}
