package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"hear/internal/core"
	"hear/internal/keys"
	"hear/internal/prf"
)

// rooflineExp profiles the fused single-pass kernels against the two-pass
// reference across working-set sizes that walk down the cache hierarchy:
// ns/element for an int64-sum encrypt, fused vs two-pass, on the AES-NI
// and software-ChaCha20 backends. The two-pass kernel materializes the
// full keystream plane into scratch and combines in a second sweep, so
// past L2 it streams ~4 buffers through DRAM where the fused loop streams
// 2 plus an L1-resident staging block — the gap between the curves is the
// memory-bandwidth roofline the fusion buys back. Emits
// BENCH_roofline.json.

type rooflineRow struct {
	Backend string `json:"backend"`
	WSBytes int    `json:"ws_bytes"`
	Elems   int    `json:"elems"`
	Iters   int    `json:"iters"`
	// ns per element, encrypt direction (decrypt shares the same kernel
	// structure; one direction keeps the sweep fast enough for CI).
	FusedNsElem   float64 `json:"fused_ns_elem"`
	TwoPassNsElem float64 `json:"twopass_ns_elem"`
	// Speedup = twopass / fused; > 1 means the fused path wins.
	Speedup float64 `json:"speedup"`
}

type rooflineReport struct {
	Experiment string        `json:"experiment"`
	Scheme     string        `json:"scheme"`
	Rows       []rooflineRow `json:"rows"`
	// LargestWSSpeedup maps backend → speedup on the largest working set
	// (the DRAM-resident regime where fusion matters most).
	LargestWSSpeedup map[string]float64 `json:"largest_ws_speedup"`
}

// rooflinePass times iters EncryptAt calls over an n-element buffer and
// returns ns/element. Fusion must already be set by the caller.
func rooflinePass(s core.Scheme, st *keys.RankState, plain, cipher []byte, n, iters int) (float64, error) {
	// Warmup: fault the buffers and fill the scratch/stream pools.
	if err := s.EncryptAt(st, plain, cipher, n, 0); err != nil {
		return 0, err
	}
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		if err := s.EncryptAt(st, plain, cipher, n, 0); err != nil {
			return 0, err
		}
	}
	return float64(time.Since(t0).Nanoseconds()) / float64(iters) / float64(n), nil
}

func rooflineExp() error {
	scheme, err := core.NewIntSum(64)
	if err != nil {
		return err
	}
	// 16 KiB sits in L1, 256 KiB in L2; 1–16 MiB spill to L3/DRAM where
	// the two-pass plane round-trip starts paying memory bandwidth twice.
	sizes := []int{16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20}
	const sweepBytes = 1 << 28 // per (backend, size, variant) measurement
	minIters := 3
	if *quick {
		sizes = []int{16 << 10, 1 << 20, 4 << 20}
		minIters = 1
	}

	report := rooflineReport{
		Experiment:       "roofline",
		Scheme:           scheme.Name(),
		LargestWSSpeedup: map[string]float64{},
	}
	defer core.SetFusion(core.SetFusion(true)) // restore on exit

	fmt.Println("roofline: int64-sum encrypt ns/elem, fused single-pass vs two-pass reference")
	fmt.Printf("%-16s %10s %12s %12s %8s\n", "backend", "ws", "fused", "two-pass", "speedup")
	for _, backend := range []string{prf.BackendAESFast, prf.BackendChaCha20} {
		states, err := benchStates(backend, 2)
		if err != nil {
			return err
		}
		st := states[0]
		st.Advance()
		for _, ws := range sizes {
			n := ws / scheme.PlainSize()
			iters := sweepBytes / ws
			if *quick {
				iters /= 64
			}
			if iters < minIters {
				iters = minIters
			}
			plain := make([]byte, n*scheme.PlainSize())
			for i := range plain {
				plain[i] = byte(i*31 + 7)
			}
			cipher := make([]byte, n*scheme.CipherSize())
			row := rooflineRow{Backend: backend, WSBytes: ws, Elems: n, Iters: iters}

			core.SetFusion(true)
			if row.FusedNsElem, err = rooflinePass(scheme, st, plain, cipher, n, iters); err != nil {
				return err
			}
			core.SetFusion(false)
			if row.TwoPassNsElem, err = rooflinePass(scheme, st, plain, cipher, n, iters); err != nil {
				return err
			}
			core.SetFusion(true)

			row.Speedup = row.TwoPassNsElem / row.FusedNsElem
			report.Rows = append(report.Rows, row)
			if ws == sizes[len(sizes)-1] {
				report.LargestWSSpeedup[backend] = row.Speedup
			}
			fmt.Printf("%-16s %10s %10.2fns %10.2fns %7.2fx\n",
				backend, fmtBytes(ws), row.FusedNsElem, row.TwoPassNsElem, row.Speedup)
		}
	}

	f, err := os.Create("BENCH_roofline.json")
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_roofline.json")
	return nil
}
