package main

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"

	"hear/internal/core"
	"hear/internal/hfp"
	"hear/internal/prf"
	"hear/internal/refmath"
)

// validate reproduces §6's "Results validation": millions of float
// encryption–decryption round trips with the observed mean relative error
// (paper: 1.3e-7 for MPI_FLOAT), and an exact memcmp check of the integer
// path against an unencrypted reference reduction.
func validate() error {
	reps := iters(10_000_000)
	if reps > 2_000_000 {
		reps = 2_000_000 // full fidelity at 1/5 the paper's count; the mean stabilizes long before
	}

	// --- float round-trip error ---
	states, err := benchStates(prf.BackendAESFast, 2)
	if err != nil {
		return err
	}
	f := hfp.FP32.ForAdd(0)
	rng := rand.New(rand.NewSource(11))
	sum := 0.0
	maxErr := 0.0
	n := 0
	for i := 0; i < reps; i++ {
		x := (rng.Float64() + 0.5) * math.Ldexp(1, rng.Intn(40)-20)
		v, err := f.Encode(x)
		if err != nil {
			continue
		}
		noise := f.Noise(states[0].Enc, uint64(i), 0)
		got := f.Decode(f.Div(f.Mul(v, noise), noise))
		rel := math.Abs(got-x) / x
		sum += rel
		if rel > maxErr {
			maxErr = rel
		}
		n++
	}
	fmt.Printf("§6 validation — %d float32 enc/dec round trips (γ=0):\n", n)
	fmt.Printf("  mean relative error = %.3g (paper: 1.3e-7)\n", sum/float64(n))
	fmt.Printf("  max  relative error = %.3g\n", maxErr)

	// --- integer memcmp vs reference ---
	intScheme, err := core.NewIntSum(64)
	if err != nil {
		return err
	}
	intScheme2, err := core.NewIntSum(64)
	if err != nil {
		return err
	}
	const elems = 4096
	states[0].Advance()
	states[1].Advance()
	p0 := make([]byte, elems*8)
	p1 := make([]byte, elems*8)
	rng.Read(p0)
	rng.Read(p1)
	// Reference: plain wrapping sum.
	ref := make([]byte, elems*8)
	copy(ref, p0)
	intScheme.Reduce(ref, p1, elems)
	// Encrypted path.
	c0 := make([]byte, elems*8)
	c1 := make([]byte, elems*8)
	if err := intScheme.Encrypt(states[0], p0, c0, elems); err != nil {
		return err
	}
	if err := intScheme2.Encrypt(states[1], p1, c1, elems); err != nil {
		return err
	}
	intScheme.Reduce(c0, c1, elems)
	out := make([]byte, elems*8)
	if err := intScheme.Decrypt(states[0], c0, out, elems); err != nil {
		return err
	}
	fmt.Printf("  MPI_INT sum receive buffers bitwise identical to reference: %v\n", bytes.Equal(ref, out))

	// --- and the reference check the paper's MPFR numbers rest on ---
	acc := refmath.NewSum()
	for i := 1; i <= 1000; i++ {
		acc.Add(1.0 / float64(i))
	}
	fmt.Printf("  1024-bit reference harmonic(1000) = %.15f (sanity: 7.485470...)\n", acc.Float64())
	return nil
}
