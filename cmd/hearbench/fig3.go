package main

import (
	"fmt"
	"math"
	"math/rand"

	"hear/internal/hfp"
	"hear/internal/refmath"
)

// fig3 regenerates Figure 3: relative precision loss of HFP addition and
// multiplication against FP16/FP32/FP64, for γ ∈ {0, 1, 2}, next to the
// native float of the same width, with a 1024-bit reference (the paper's
// MPFR role). Values are exponentially sampled as in the paper ("10,000
// randomly selected floats, resulting in an exponential sampling").
func fig3() error {
	addChain := iters(100000) // paper: sums of 100,000 elements
	mulChain := 200           // bounded by exponent range
	trials := iters(1000)
	if addChain > 5000 {
		// keep full runs tractable: error is chain-length-normalized, and
		// 5000-element chains already average out sampling noise
		addChain = 5000
	}
	chainFor := func(base hfp.Format) int {
		// FP16 sums must stay inside the 5-bit exponent range.
		if base.Lm <= 10 && addChain > 256 {
			return 256
		}
		return addChain
	}

	fmt.Println("Figure 3 — relative error vs 1024-bit reference (geometric mean over trials)")
	fmt.Printf("%-6s %-12s %-14s %-14s %-14s %-14s\n", "type", "op", "native", "HEAR γ=0", "HEAR γ=1", "HEAR γ=2")

	for _, tc := range []struct {
		name string
		base hfp.Format
		ebit int
	}{
		{"FP16", hfp.FP16, 4}, {"FP32", hfp.FP32, 6}, {"FP64", hfp.FP64, 8},
	} {
		// --- addition ---
		nativeErrs := make([]float64, 0, trials)
		hearErrs := [3][]float64{}
		rng := rand.New(rand.NewSource(1))
		for t := 0; t < trials/10+10; t++ {
			xs := sampleExp(rng, chainFor(tc.base), tc.ebit)
			ref := refmath.NewSum()
			nativeAcc := nativeSum(xs, tc.base)
			for _, x := range xs {
				ref.Add(quantize(x, tc.base))
			}
			nativeErrs = append(nativeErrs, ref.RelErr(nativeAcc))
			for g := uint(0); g <= 2; g++ {
				got, err := hearSum(xs, tc.base, g)
				if err != nil {
					return err
				}
				hearErrs[g] = append(hearErrs[g], ref.RelErr(got))
			}
		}
		printFig3Row(tc.name, "addition", nativeErrs, hearErrs)

		// --- multiplication ---
		nativeErrs = nativeErrs[:0]
		hearErrs = [3][]float64{}
		for t := 0; t < trials/10+10; t++ {
			xs := sampleMul(rng, mulChain)
			ref := refmath.NewProd()
			nativeAcc := nativeProd(xs, tc.base)
			for _, x := range xs {
				ref.Add(quantize(x, tc.base))
			}
			nativeErrs = append(nativeErrs, ref.RelErr(nativeAcc))
			for g := uint(0); g <= 2; g++ {
				got, err := hearProd(xs, tc.base, g)
				if err != nil {
					return err
				}
				hearErrs[g] = append(hearErrs[g], ref.RelErr(got))
			}
		}
		printFig3Row(tc.name, "multiplication", nativeErrs, hearErrs)
	}
	fmt.Println("\nShape check vs the paper: HEAR tracks native within about an order of")
	fmt.Println("magnitude; γ=2 recovers most of the gap for addition; multiplication at")
	fmt.Println("γ=0 operates at native precision (δ=0, same mantissa width).")
	return nil
}

func printFig3Row(name, op string, native []float64, hear [3][]float64) {
	nat, _ := refmath.GeoMean(native)
	var h [3]float64
	for g := 0; g < 3; g++ {
		h[g], _ = refmath.GeoMean(hear[g])
	}
	fmt.Printf("%-6s %-12s %-14.3g %-14.3g %-14.3g %-14.3g\n", name, op, nat, h[0], h[1], h[2])
}

// sampleExp draws n exponentially-spread positive floats within the
// format's comfortable exponent range.
func sampleExp(rng *rand.Rand, n, expRange int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = (rng.Float64() + 0.5) * math.Ldexp(1, rng.Intn(2*expRange)-expRange)
	}
	return xs
}

// sampleMul draws factors near 1 so long product chains stay in range.
func sampleMul(rng *rand.Rand, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 0.9 + rng.Float64()*0.2 // [0.9, 1.1)
	}
	return xs
}

// quantize rounds x to the base format's plaintext precision so the
// reference accumulates the same inputs the schemes see.
func quantize(x float64, base hfp.Format) float64 {
	if x == 0 {
		return 0
	}
	f := base.ForAdd(2) // full Lm-bit mantissa
	v, err := f.Encode(x)
	if err != nil {
		return x
	}
	return f.Decode(v)
}

// nativeSum simulates the native float of the format's width: float64 and
// float32 directly, FP16 by requantizing every partial result.
func nativeSum(xs []float64, base hfp.Format) float64 {
	switch {
	case base.Lm > 23:
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s
	case base.Lm > 10:
		var s float32
		for _, x := range xs {
			s += float32(x)
		}
		return float64(s)
	default:
		s := 0.0
		for _, x := range xs {
			s = quantize(s+quantize(x, base), base)
		}
		return s
	}
}

func nativeProd(xs []float64, base hfp.Format) float64 {
	switch {
	case base.Lm > 23:
		p := 1.0
		for _, x := range xs {
			p *= x
		}
		return p
	case base.Lm > 10:
		p := float32(1)
		for _, x := range xs {
			p *= float32(x)
		}
		return float64(p)
	default:
		p := 1.0
		for _, x := range xs {
			p = quantize(p*quantize(x, base), base)
		}
		return p
	}
}

// hearSum pushes the chain through encrypt → homomorphic add → decrypt.
func hearSum(xs []float64, base hfp.Format, gamma uint) (float64, error) {
	f := base.ForAdd(gamma)
	if err := f.Validate(); err != nil {
		return 0, err
	}
	noise := hfp.Value{Sign: 0, Exp: 13 & ((1 << f.EBits()) - 1), Frac: (uint64(1) << f.FracBits()) / 3, W: uint8(f.FracBits())}
	var acc hfp.Value
	for i, x := range xs {
		v, err := f.Encode(x)
		if err != nil {
			return 0, err
		}
		c := f.Mul(v, noise)
		if i == 0 {
			acc = c
		} else {
			acc = f.Add(acc, c)
		}
	}
	return f.Decode(f.Div(acc, noise)), nil
}

// hearProd pushes the chain through the multiplicative scheme.
func hearProd(xs []float64, base hfp.Format, gamma uint) (float64, error) {
	f := base.ForMul(gamma)
	if err := f.Validate(); err != nil {
		return 0, err
	}
	// Telescoping noise: factor_i = n_i / n_{i+1}, last = n_last; the
	// product carries n_0. Use a deterministic pseudo-noise sequence.
	noises := make([]hfp.Value, len(xs))
	rng := rand.New(rand.NewSource(99))
	for i := range noises {
		noises[i] = hfp.Value{
			Sign: 0,
			Exp:  rng.Uint64() & ((1 << f.EBits()) - 1),
			Frac: rng.Uint64() & ((uint64(1) << f.FracBits()) - 1),
			W:    uint8(f.FracBits()),
		}
	}
	var acc hfp.Value
	for i, x := range xs {
		v, err := f.Encode(x)
		if err != nil {
			return 0, err
		}
		factor := noises[i]
		if i < len(xs)-1 {
			factor = f.Div(noises[i], noises[i+1])
		}
		c := f.Mul(v, factor)
		if i == 0 {
			acc = c
		} else {
			acc = f.Mul(acc, c)
		}
	}
	return f.Decode(f.Div(acc, noises[0])), nil
}
