package main

import (
	"fmt"
	"time"

	"hear/internal/baseline"
	"hear/internal/core"
	"hear/internal/prf"
)

// table1 regenerates the requirement matrix of Table 1 with *measured*
// values: ciphertext inflation for a 64-bit payload (R1), a bounded-vs-
// unbounded operation count (R2), per-element operation latency (R3), and
// the supported operation types (R4).
func table1() error {
	primeBits := 512
	if *quick {
		primeBits = 256
	}
	paillier, err := baseline.NewPaillier(primeBits)
	if err != nil {
		return err
	}
	rsa, err := baseline.NewRSA(primeBits)
	if err != nil {
		return err
	}
	elgamal, err := baseline.NewElGamal(2 * primeBits)
	if err != nil {
		return err
	}

	type row struct {
		name      string
		inflation float64
		encTime   time.Duration
		opTime    time.Duration
		unbounded string
		ops       string
	}
	var rows []row

	n := iters(2000)
	for _, s := range []baseline.PHE{paillier, rsa, elgamal} {
		var cts []baseline.Ciphertext
		t0 := time.Now()
		for i := 0; i < n; i++ {
			c, err := s.Encrypt(uint64(i + 1))
			if err != nil {
				return err
			}
			if len(cts) < 2 {
				cts = append(cts, c)
			}
		}
		encT := time.Since(t0) / time.Duration(n)
		t0 = time.Now()
		acc := cts[0]
		for i := 0; i < n; i++ {
			acc = s.Combine(acc, cts[1])
		}
		opT := time.Since(t0) / time.Duration(n)
		unbounded := "no (message space bound)"
		rows = append(rows, row{s.Name(), s.InflationFor(64), encT, opT, unbounded, s.OpName()})
	}

	// HEAR integer SUM on the same machine.
	states, err := benchStates(prf.BackendAESFast, 2)
	if err != nil {
		return err
	}
	intSum, err := core.NewIntSum(64)
	if err != nil {
		return err
	}
	const elems = 4096
	plain := make([]byte, elems*8)
	cipher := make([]byte, elems*8)
	states[0].Advance()
	t0 := time.Now()
	reps := iters(2000)
	for i := 0; i < reps; i++ {
		if err := intSum.Encrypt(states[0], plain, cipher, elems); err != nil {
			return err
		}
	}
	hearEnc := time.Since(t0) / time.Duration(reps*elems)
	t0 = time.Now()
	for i := 0; i < reps; i++ {
		intSum.Reduce(cipher, cipher, elems)
	}
	hearOp := time.Since(t0) / time.Duration(reps*elems)
	rows = append(rows, row{"HEAR int-sum", 1.0, hearEnc, hearOp, "yes (modular ring)", "add/mul/xor (6 schemes)"})

	fmt.Println("Table 1 — measured requirement matrix (64-bit payloads)")
	fmt.Printf("%-14s %-16s %-14s %-14s %-24s %s\n", "scheme", "R1 inflation", "R3 enc/elem", "R3 op/elem", "R2 unbounded ops", "R4 op types")
	for _, r := range rows {
		verdict := "FAIL"
		if r.inflation <= 2.0 {
			verdict = "ok"
		}
		fmt.Printf("%-14s %6.1fx (%s)   %-14v %-14v %-24s %s\n",
			r.name, r.inflation, verdict, r.encTime, r.opTime, r.unbounded, r.ops)
	}
	fmt.Println("\nR1 budget is 2x (INC halves traffic; more inflation erases the gain).")
	fmt.Println("Every classical PHE scheme measured here violates R1 by an order of")
	fmt.Println("magnitude and costs µs–ms per element (R3); HEAR sits at 1.0x and ns/element.")
	return nil
}
