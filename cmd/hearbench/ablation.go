package main

import (
	"fmt"
	"time"

	"hear/internal/core"
	"hear/internal/prf"
)

// ablation measures the design choices DESIGN.md calls out:
//
//  1. the canceling technique (§5.1.4): Θ(1) decryption vs the naive
//     Figure-1 scheme's Θ(P);
//  2. the PRF backend choice (§6): AES vs SHA1 vs ChaCha20 vs the
//     insecure xorshift lower bound, on the integer SUM data path;
//  3. the modular-exponentiation cost of the PROD scheme vs SUM (why the
//     paper calls out the O(log d) term).
func ablation() error {
	const n = 8192
	reps := iters(2000)
	if reps > 500 {
		reps = 500
	}

	// --- 1. canceling vs naive decryption scaling ---
	fmt.Println("Ablation 1 — decryption cost vs communicator size (§5.1.4)")
	fmt.Printf("%-22s %-14s %-14s %s\n", "scheme", "P=4", "P=16", "P=64")
	for _, naive := range []bool{false, true} {
		name := "canceling Θ(1)"
		if naive {
			name = "naive Θ(P) (Fig. 1)"
		}
		fmt.Printf("%-22s", name)
		for _, p := range []int{4, 16, 64} {
			states, err := benchStates(prf.BackendAESFast, p)
			if err != nil {
				return err
			}
			var s core.Scheme
			if naive {
				starting := make([]uint64, p)
				for i, st := range states {
					starting[i] = st.SelfKey
				}
				s, err = core.NewNaiveIntSum(64, starting)
			} else {
				s, err = core.NewIntSum(64)
			}
			if err != nil {
				return err
			}
			plain := make([]byte, n*8)
			cipher := make([]byte, n*8)
			states[0].Advance()
			if err := s.Encrypt(states[0], plain, cipher, n); err != nil {
				return err
			}
			t0 := time.Now()
			for i := 0; i < reps; i++ {
				if err := s.Decrypt(states[0], cipher, plain, n); err != nil {
					return err
				}
			}
			rate := float64(n*8*reps) / time.Since(t0).Seconds()
			fmt.Printf(" %-13s", gbs(rate))
		}
		fmt.Println()
	}
	fmt.Println("(canceling stays flat; naive decays linearly in P — the reason the")
	fmt.Println("production scheme pays a second PRF stream at encryption time)")

	// --- 2. PRF backend on the int-sum data path ---
	fmt.Println("\nAblation 2 — PRF backend on the integer SUM data path")
	fmt.Printf("%-20s %-14s %s\n", "backend", "encrypt", "decrypt")
	for _, backend := range []string{prf.BackendAESFast, prf.BackendAESScalar, prf.BackendChaCha20, prf.BackendSHA1, prf.BackendXorshift} {
		states, err := benchStates(backend, 2)
		if err != nil {
			return err
		}
		s, err := core.NewIntSum(64)
		if err != nil {
			return err
		}
		enc, dec, err := cryptoRates(s, states[0], n, reps/4+1)
		if err != nil {
			return err
		}
		fmt.Printf("%-20s %-14s %s\n", backend, gbs(enc), gbs(dec))
	}

	// --- 3. SUM vs PROD vs XOR per-element cost ---
	fmt.Println("\nAblation 3 — scheme operation complexity (R3)")
	fmt.Printf("%-14s %-16s %s\n", "scheme", "encrypt ns/elem", "note")
	type mk struct {
		name string
		s    func() (core.Scheme, error)
		note string
	}
	for _, m := range []mk{
		{"int64-sum", func() (core.Scheme, error) { return core.NewIntSum(64) }, "add + 2 PRF words"},
		{"int64-xor", func() (core.Scheme, error) { return core.NewIntXor(64) }, "xor + 2 PRF words"},
		{"int64-prod", func() (core.Scheme, error) { return core.NewIntProd(64) }, "O(log d) modexp (2^4-ary)"},
	} {
		states, err := benchStates(prf.BackendAESFast, 2)
		if err != nil {
			return err
		}
		s, err := m.s()
		if err != nil {
			return err
		}
		plain := make([]byte, n*8)
		cipher := make([]byte, n*8)
		states[0].Advance()
		if err := s.Encrypt(states[0], plain, cipher, n); err != nil {
			return err
		}
		r := reps / 4
		if r < 1 {
			r = 1
		}
		t0 := time.Now()
		for i := 0; i < r; i++ {
			if err := s.Encrypt(states[0], plain, cipher, n); err != nil {
				return err
			}
		}
		perElem := time.Since(t0).Seconds() / float64(r*n) * 1e9
		fmt.Printf("%-14s %-16.1f %s\n", m.name, perElem, m.note)
	}
	fmt.Println("(PROD pays the exponentiation the paper's §5.1.4 predicts; SUM and XOR")
	fmt.Println("run at keystream speed)")
	return nil
}
