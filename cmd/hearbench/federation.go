package main

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"hear"
	"hear/internal/aggsvc"
	"hear/internal/aggsvc/federation"
	"hear/internal/metrics"
	"hear/internal/mpi"
	"hear/internal/netsim"
)

// federationExp sizes hierarchical gateway federation (internal/aggsvc/
// federation) at the scale the flat gateway cannot reach: the netsim
// fan-in model projects one-million-client rounds across 1-, 2-, and
// 3-tier topologies, and an in-process 2-tier cascade is then run for
// real — bit-identical to the flat gateway over the same client set — to
// ground the model's shape in measured rounds. Emits
// BENCH_federation.json.

const (
	fedModelRanks = 1_000_000
	fedModelMsg   = 1024 // sealed lane bytes per client (128 int64 elements)
)

type federationModelRow struct {
	Topology   string `json:"topology"`
	Tiers      int    `json:"tiers"`
	CohortSize int    `json:"cohort_size"`
	Gateways   []int  `json:"gateways_per_tier"`
	MaxFanIn   int    `json:"max_fan_in"`
	// LatencyMS is one whole round up and down the tree.
	LatencyMS float64 `json:"latency_ms"`
	// RoundsPerSec is the pipelined rate, bound by the busiest gateway.
	RoundsPerSec   float64 `json:"rounds_per_sec"`
	ClientsPerSecM float64 `json:"clients_per_sec_millions"`
	GBPerSec       float64 `json:"gb_per_sec"`
}

type federationMeasuredRow struct {
	Topology     string             `json:"topology"`
	Clients      int                `json:"clients"`
	Cohorts      int                `json:"cohorts"`
	Elems        int                `json:"elems"`
	Rounds       int                `json:"rounds"`
	WallMS       float64            `json:"wall_ms"`
	RoundsPerSec float64            `json:"rounds_per_sec"`
	Metrics      map[string]float64 `json:"metrics,omitempty"`
}

type federationReport struct {
	Experiment string                  `json:"experiment"`
	ModelRanks int                     `json:"model_ranks"`
	ModelMsg   int                     `json:"model_msg_bytes"`
	Model      []federationModelRow    `json:"model"`
	Measured   []federationMeasuredRow `json:"measured"`
}

func federationExp() error {
	p := netsim.AriesDefaults()
	report := federationReport{
		Experiment: "federation",
		ModelRanks: fedModelRanks,
		ModelMsg:   fedModelMsg,
	}

	fmt.Printf("federation fan-in model: %d clients, %d B sealed lanes (Aries-class NICs)\n",
		fedModelRanks, fedModelMsg)
	fmt.Printf("%-22s %6s %8s %12s %12s %14s\n",
		"topology", "tiers", "fan-in", "latency", "rounds/s", "clients/s")
	for _, tc := range []struct {
		name       string
		cohortSize int
		tiers      int
	}{
		{"flat gateway", fedModelRanks, 1},
		{"2-tier / 1000-cohort", 1000, 2},
		{"3-tier / 100-cohort", 100, 3},
	} {
		s, err := p.Federation(fedModelRanks, tc.cohortSize, tc.tiers, fedModelMsg)
		if err != nil {
			return err
		}
		maxFanIn := 0
		for _, f := range s.FanIn {
			if f > maxFanIn {
				maxFanIn = f
			}
		}
		row := federationModelRow{
			Topology:       tc.name,
			Tiers:          s.Levels,
			CohortSize:     tc.cohortSize,
			Gateways:       s.Gateways,
			MaxFanIn:       maxFanIn,
			LatencyMS:      s.Latency * 1e3,
			RoundsPerSec:   s.RoundsPerSec,
			ClientsPerSecM: s.ClientsPerSec / 1e6,
			GBPerSec:       s.BytesPerSec / 1e9,
		}
		report.Model = append(report.Model, row)
		fmt.Printf("%-22s %6d %8d %10.3fms %12.1f %13.2fM\n",
			tc.name, row.Tiers, row.MaxFanIn, row.LatencyMS, row.RoundsPerSec, row.ClientsPerSecM)
	}

	// Ground truth at laptop scale: the same client set through a flat
	// gateway and a 2-tier cascade, verified aggregates both ways.
	const clients, cohorts, elems = 8, 4, 1024
	roundsN := iters(400)
	fmt.Printf("\nmeasured in-process cascade: %d clients, %d-element verified SUM, %d rounds\n",
		clients, elems, roundsN)
	flat, err := runFederationCampaign("flat", clients, 1, elems, roundsN, nil)
	if err != nil {
		return err
	}
	reg := metrics.New()
	fed, err := runFederationCampaign("2-tier / 4 cohorts", clients, cohorts, elems, roundsN, reg)
	if err != nil {
		return err
	}
	report.Measured = append(report.Measured, flat, fed)
	for _, r := range report.Measured {
		fmt.Printf("%-22s %8.1fms wall, %8.1f rounds/s\n", r.Topology, r.WallMS, r.RoundsPerSec)
	}

	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile("BENCH_federation.json", append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_federation.json")
	return nil
}

// runFederationCampaign drives clients through roundsN verified SUM rounds
// against an in-process gateway topology: flat when cohorts is 1, a leaf
// tier cascading into a root otherwise. Every aggregate is checked against
// the plaintext reference.
func runFederationCampaign(name string, clients, cohorts, elems, roundsN int, reg *metrics.Registry) (federationMeasuredRow, error) {
	row := federationMeasuredRow{Topology: name, Clients: clients, Cohorts: cohorts, Elems: elems, Rounds: roundsN}

	var listeners []*aggsvc.PipeListener
	var servers []*aggsvc.Server
	startTier := func(cfg aggsvc.Config) (*aggsvc.PipeListener, error) {
		s, err := aggsvc.NewServer(cfg)
		if err != nil {
			return nil, err
		}
		l := aggsvc.NewPipeListener()
		go s.Serve(l)
		listeners = append(listeners, l)
		servers = append(servers, s)
		return l, nil
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	var front *aggsvc.PipeListener
	if cohorts == 1 {
		l, err := startTier(aggsvc.Config{Group: clients, Metrics: reg})
		if err != nil {
			return row, err
		}
		front = l
	} else {
		rootL, err := startTier(aggsvc.Config{Group: cohorts, Metrics: reg})
		if err != nil {
			return row, err
		}
		u, err := federation.New(federation.Config{Dial: rootL.Dial, Metrics: reg})
		if err != nil {
			return row, err
		}
		var next int64
		var mu sync.Mutex
		l, err := startTier(aggsvc.Config{
			Group:   clients / cohorts,
			Cohorts: cohorts,
			CohortBy: func(net.Addr) int {
				mu.Lock()
				defer mu.Unlock()
				c := int(next % int64(cohorts))
				next++
				return c
			},
			Uplink:  u.Dialer(),
			Metrics: reg,
		})
		if err != nil {
			return row, err
		}
		front = l
	}

	w := mpi.NewWorld(clients)
	ctxs, err := hear.Init(w, hear.Options{})
	if err != nil {
		return row, err
	}
	verifier, err := hear.NewVerifier(0xbe7c)
	if err != nil {
		return row, err
	}

	inputs := make([][]int64, clients)
	want := make([]int64, elems)
	for i := range inputs {
		inputs[i] = make([]int64, elems)
		for j := range inputs[i] {
			inputs[i][j] = int64((i+1)*(j+7)) - 99
			want[j] += inputs[i][j]
		}
	}

	var wg sync.WaitGroup
	errs := make([]error, clients)
	start := time.Now()
	for i := 0; i < clients; i++ {
		conn, err := front.Dial()
		if err != nil {
			return row, err
		}
		c := aggsvc.NewClient(conn, ctxs[i].NewGatewaySealer(verifier),
			aggsvc.ClientOptions{Timeout: 60 * time.Second})
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer c.Close()
			out := make([]int64, elems)
			for r := 0; r < roundsN; r++ {
				if _, err := c.Aggregate(inputs[i], out); err != nil {
					errs[i] = err
					return
				}
				for j := range out {
					if out[j] != want[j] {
						errs[i] = fmt.Errorf("round %d elem %d = %d, want %d", r, j, out[j], want[j])
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	for i, err := range errs {
		if err != nil {
			return row, fmt.Errorf("%s client %d: %w", name, i, err)
		}
	}
	row.WallMS = float64(wall.Nanoseconds()) / 1e6
	row.RoundsPerSec = float64(roundsN) / wall.Seconds()
	row.Metrics = reg.Map()
	return row, nil
}
