//go:build unix

package main

import "syscall"

const cpuAccounting = "getrusage(RUSAGE_SELF) utime+stime"

// processCPUSeconds returns the CPU seconds (user + system) this process
// has consumed so far, across all threads. Deltas of it turn the wirepath
// experiment's byte counts into bytes/sec/core — the unit the zero-copy
// work targets, since a gateway core spent copying is a core not folding.
func processCPUSeconds() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	sec := func(tv syscall.Timeval) float64 {
		return float64(tv.Sec) + float64(tv.Usec)/1e6
	}
	return sec(ru.Utime) + sec(ru.Stime)
}
