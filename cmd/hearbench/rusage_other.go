//go:build !unix

package main

import "time"

const cpuAccounting = "wall-clock fallback (no getrusage)"

// processCPUSeconds falls back to wall time where getrusage is not
// available; bytes/sec/core then degrades to plain bytes/sec.
func processCPUSeconds() float64 {
	return float64(time.Now().UnixNano()) / 1e9
}
