package main

import (
	"fmt"
	"sort"
	"time"

	"hear"
	"hear/internal/core"
	"hear/internal/mpi"
	"hear/internal/prf"
	"hear/internal/trace"
)

// fig4 regenerates Figure 4: the critical-path latency breakdown of a
// 16-byte integer-sum Allreduce on two ranks, for the SHA1-backed and
// AES-backed HEAR implementations, phase by phase (mem_alloc, encrypt,
// comm, decrypt, mem_free), with the crypto overhead expressed as a
// percentage of the communication time.
func fig4() error {
	reps := iters(100000)
	fmt.Printf("Figure 4 — 16 B MPI_Allreduce int sum critical path, 2 ranks, %d iterations\n", reps)
	fmt.Printf("(cycle counts at the paper's nominal %.2f GHz)\n\n", trace.NominalGHz)

	// Native reference: communication only.
	nativeComm, err := fig4Comm(reps)
	if err != nil {
		return err
	}
	fmt.Printf("%-22s comm=%.0fcy (median)\n", "native (reference)", nativeComm.Seconds()*trace.NominalGHz*1e9)

	for _, backend := range []string{prf.BackendSHA1, prf.BackendAESFast} {
		b, err := fig4Breakdown(backend, reps, nativeComm)
		if err != nil {
			return err
		}
		fmt.Printf("%-22s %s\n", backend, b.MedianString())
	}
	fmt.Println("\nShape check vs the paper: SHA1 overhead dwarfs AES (paper: 75.5% vs 7.1%")
	fmt.Println("of comm time); hardware-AES crypto hides inside the small-message budget.")
	return nil
}

// fig4Comm measures the bare 16 B allreduce time on two ranks (median of
// per-operation samples — robust against host stalls on virtualized CI).
func fig4Comm(reps int) (time.Duration, error) {
	w := mpi.NewWorld(2)
	b := trace.NewBreakdown()
	b.KeepSamples = true
	err := w.Run(0, func(c *mpi.Comm) error {
		buf := make([]byte, 16)
		// Warmup.
		for i := 0; i < 100; i++ {
			if err := c.Allreduce(buf, buf, 4, mpi.Int32, mpi.SumInt32); err != nil {
				return err
			}
		}
		for i := 0; i < reps; i++ {
			var t trace.Timer
			if c.Rank() == 0 {
				t = b.Start(trace.PhaseComm)
			}
			if err := c.Allreduce(buf, buf, 4, mpi.Int32, mpi.SumInt32); err != nil {
				return err
			}
			if c.Rank() == 0 {
				t.Stop()
			}
		}
		return nil
	})
	return b.Median(trace.PhaseComm), err
}

// fig4Breakdown runs the full HEAR path with per-phase timers on rank 0.
func fig4Breakdown(backend string, reps int, comm time.Duration) (*trace.Breakdown, error) {
	states, err := benchStates(backend, 2)
	if err != nil {
		return nil, err
	}
	w := mpi.NewWorld(2)
	b := trace.NewBreakdown()
	b.KeepSamples = true
	err = w.Run(0, func(c *mpi.Comm) error {
		s, err := core.NewIntSum(32)
		if err != nil {
			return err
		}
		st := states[c.Rank()]
		op := mpi.OpFrom("bench", s.Reduce)
		plain := make([]byte, 16)
		me := c.Rank() == 0
		for i := 0; i < reps; i++ {
			st.Advance()
			var t trace.Timer
			if me {
				t = b.Start(trace.PhaseMemAlloc)
			}
			cipher := make([]byte, 16)
			if me {
				t.Stop()
				t = b.Start(trace.PhaseEncrypt)
			}
			if err := s.Encrypt(st, plain, cipher, 4); err != nil {
				return err
			}
			if me {
				t.Stop()
				t = b.Start(trace.PhaseComm)
			}
			if err := c.Allreduce(cipher, cipher, 4, mpi.Int32, op); err != nil {
				return err
			}
			if me {
				t.Stop()
				t = b.Start(trace.PhaseDecrypt)
			}
			if err := s.Decrypt(st, cipher, plain, 4); err != nil {
				return err
			}
			if me {
				t.Stop()
				t = b.Start(trace.PhaseMemFree)
				cipher = nil
				_ = cipher
				t.Stop()
			}
		}
		return nil
	})
	return b, err
}

// fig5 regenerates Figure 5: single-core encryption/decryption throughput
// per PRF backend for integer and float summation across buffer sizes.
func fig5() error {
	sizes := []int{4 << 10, 64 << 10, 1 << 20, 16 << 20}
	if *quick {
		sizes = sizes[:3]
	}
	// OSU-style per-size iteration scaling keeps the slow backends (SHA1 at
	// ~40 MB/s) from turning the 16 MiB points into minutes.
	repsFor := func(size int) int {
		switch {
		case size <= 64<<10:
			return iters(100)
		case size <= 1<<20:
			if r := iters(100) / 4; r > 1 {
				return r
			}
			return 1
		default:
			return 3
		}
	}
	fmt.Printf("Figure 5 — enc/dec throughput per backend (mean over sizes %v)\n\n", sizes)
	fmt.Printf("%-20s %-12s %-14s %-14s\n", "backend", "op", "encrypt", "decrypt")

	for _, backend := range []string{prf.BackendSHA1, prf.BackendAESScalar, prf.BackendAESFast, prf.BackendChaCha20, prf.BackendXorshift} {
		states, err := benchStates(backend, 2)
		if err != nil {
			return err
		}
		// Integer summation.
		intScheme, err := core.NewIntSum(64)
		if err != nil {
			return err
		}
		encSum, decSum := 0.0, 0.0
		for _, sz := range sizes {
			e, d, err := cryptoRates(intScheme, states[0], sz/8, repsFor(sz))
			if err != nil {
				return err
			}
			encSum += e
			decSum += d
		}
		k := float64(len(sizes))
		fmt.Printf("%-20s %-12s %-14s %-14s\n", backend, "int64 sum", gbs(encSum/k), gbs(decSum/k))

		// Float summation (the software HFP FPU dominates here).
		floatScheme, err := core.NewFloatSum(hfpFP32Base(), 0)
		if err != nil {
			return err
		}
		encSum, decSum = 0, 0
		for _, sz := range sizes {
			r := repsFor(sz)/4 + 1
			if sz > 1<<20 {
				r = 1 // the software float path at MB sizes
			}
			e, d, err := cryptoRates(floatScheme, states[0], sz/4, r)
			if err != nil {
				return err
			}
			encSum += e
			decSum += d
		}
		fmt.Printf("%-20s %-12s %-14s %-14s\n", backend, "float32 sum", gbs(encSum/k), gbs(decSum/k))
	}
	fmt.Println("\nShape check vs the paper: SHA1 is far below AES (paper: <1 vs 5–18")
	fmt.Println("GB/s/core); hardware-accelerated AES saturates a 100 Gbit/s share; the")
	fmt.Println("float path costs extra from the software HFP FPU.")
	return nil
}

// fig6 regenerates Figure 6: 16 MiB message throughput of the pipelined
// HEAR data path across Iallreduce block sizes, against the naive
// synchronous version and the native (unencrypted) runtime.
func fig6() error {
	msgBytes := 16 << 20
	reps := 9 // median over reps; wall-clock bound for the in-process runtime
	if *quick {
		reps = 3
	}
	p := *ranks
	fmt.Printf("Figure 6 — %d MiB int32 sum across %d ranks, %d reps per point\n\n", msgBytes>>20, p, reps)

	native, err := fig6Native(p, msgBytes, reps)
	if err != nil {
		return err
	}
	fmt.Printf("%-22s %-16s %s\n", "configuration", "GB/s per rank", "% of native")
	fmt.Printf("%-22s %-16.3f %s\n", "native (Cray MPICH role)", native/1e9, "100.0%")

	sync, err := fig6HEAR(p, msgBytes, 0, reps)
	if err != nil {
		return err
	}
	fmt.Printf("%-22s %-16.3f %5.1f%%\n", "naive (sync)", sync/1e9, 100*sync/native)

	blocks := []int{4 << 10, 16 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20, 4 << 20}
	if *quick {
		blocks = []int{16 << 10, 128 << 10, 1 << 20}
	}
	best := 0.0
	for _, blk := range blocks {
		rate, err := fig6HEAR(p, msgBytes, blk, reps)
		if err != nil {
			return err
		}
		if rate > best {
			best = rate
		}
		fmt.Printf("pipelined %-12d %-16.3f %5.1f%%\n", blk, rate/1e9, 100*rate/native)
	}
	fmt.Printf("\nBest pipelined point: %.1f%% of native (paper: ~85%% at 131–262 KiB blocks;\n", 100*best/native)
	fmt.Println("the crossover shape — poor at tiny blocks, peak at mid KiB sizes, decline")
	fmt.Println("at huge blocks where overlap vanishes — is the reproduced result).")
	return nil
}

func fig6Native(p, msgBytes, reps int) (float64, error) {
	w := mpi.NewWorld(p)
	count := msgBytes / 4
	var med time.Duration
	err := w.Run(0, func(c *mpi.Comm) error {
		buf := make([]byte, msgBytes)
		if err := c.AllreduceAlgo(mpi.AlgoRing, buf, buf, count, mpi.Int32, mpi.SumInt32); err != nil {
			return err
		}
		var samples []time.Duration
		for i := 0; i < reps; i++ {
			t0 := time.Now()
			if err := c.AllreduceAlgo(mpi.AlgoRing, buf, buf, count, mpi.Int32, mpi.SumInt32); err != nil {
				return err
			}
			samples = append(samples, time.Since(t0))
		}
		if c.Rank() == 0 {
			med = medianDuration(samples)
		}
		return nil
	})
	return float64(msgBytes) / med.Seconds(), err
}

// medianDuration returns the median of a non-empty sample.
func medianDuration(s []time.Duration) time.Duration {
	sorted := make([]time.Duration, len(s))
	copy(sorted, s)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2]
}

func fig6HEAR(p, msgBytes, blockBytes, reps int) (float64, error) {
	w := mpi.NewWorld(p)
	ctxs, err := hear.Init(w, hear.Options{
		PipelineBlockBytes: blockBytes,
		Algorithm:          mpi.AlgoRing,
		Rand:               &seqReader{next: 3},
	})
	if err != nil {
		return 0, err
	}
	count := msgBytes / 4
	var med time.Duration
	err = w.Run(0, func(c *mpi.Comm) error {
		ctx := ctxs[c.Rank()]
		s, err := ctx.Scheme(hear.Int32Sum)
		if err != nil {
			return err
		}
		buf := make([]byte, msgBytes)
		if err := ctx.AllreduceRaw(c, s, buf, count); err != nil {
			return err
		}
		var samples []time.Duration
		for i := 0; i < reps; i++ {
			t0 := time.Now()
			if err := ctx.AllreduceRaw(c, s, buf, count); err != nil {
				return err
			}
			samples = append(samples, time.Since(t0))
		}
		if c.Rank() == 0 {
			med = medianDuration(samples)
		}
		return nil
	})
	return float64(msgBytes) / med.Seconds(), err
}
