package main

import (
	"encoding/binary"
	"fmt"
	"sync"

	"hear/internal/inc"
	"hear/internal/mpi"
	"hear/internal/netsim"
	"hear/internal/topology"
)

// incExp quantifies the two INC advantages the paper's introduction cites
// — "latency [...] lowered by 3-18x" and bandwidth "reduced by 2x" — on
// this repository's own substrates: fabric traffic measured on the real
// aggregation tree vs the real host-based ring, and latency on the
// calibrated model. HEAR's whole design budget (R1's 2x inflation cap)
// derives from these numbers.
func incExp() error {
	const p = 16
	const elems = 4096
	msg := elems * 8

	// --- fabric traffic: host-based ring vs aggregation tree ---
	w := mpi.NewWorld(p)
	err := w.Run(0, func(c *mpi.Comm) error {
		buf := make([]byte, msg)
		return c.AllreduceAlgo(mpi.AlgoRing, buf, buf, elems, mpi.Uint64, mpi.SumInt64)
	})
	if err != nil {
		return err
	}
	var hostBytes uint64
	for r := 0; r < p; r++ {
		hostBytes += w.Stats(r).BytesSent.Load()
	}

	tree, err := inc.NewTree(p, 4, func(dst, src []byte) {
		for o := 0; o+8 <= len(dst); o += 8 {
			binary.LittleEndian.PutUint64(dst[o:],
				binary.LittleEndian.Uint64(dst[o:])+binary.LittleEndian.Uint64(src[o:]))
		}
	})
	if err != nil {
		return err
	}
	var wg sync.WaitGroup
	for r := 0; r < p; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			buf := make([]byte, msg)
			if err := tree.Allreduce(rank, buf); err != nil {
				panic(err)
			}
		}(r)
	}
	wg.Wait()
	st := tree.Stats()

	// Fabric traffic at LINK granularity over the same tree topology: a
	// host-based ring message between ranks on different leaves crosses
	// host→leaf→root→leaf→host; INC frames cross each link once, and the
	// result multicasts down. This link-level view is what the paper's
	// "bandwidth reduced by 2x" refers to.
	const radix = 4
	leaf := func(r int) int { return r / radix }
	perRankBytes := float64(hostBytes) / float64(p) // ring bytes each rank injects
	hostLinkBytes := 0.0
	for r := 0; r < p; r++ {
		hops := 2.0 // host→leaf, leaf→host
		if leaf(r) != leaf((r+1)%p) {
			hops = 4.0 // + leaf→root, root→leaf
		}
		hostLinkBytes += perRankBytes * hops
	}
	// INC: every host link carries M up and M down; every leaf↔root link
	// carries one aggregated M up and one multicast M down.
	leaves := (p + radix - 1) / radix
	incLinkBytes := float64(2*p*msg) + float64(2*leaves*msg)

	fmt.Printf("INC advantages over host-based Allreduce (%d ranks, radix-%d tree, %d KiB message)\n\n", p, radix, msg>>10)
	fmt.Printf("injected bytes, host ring:     %8.2f MiB (runtime-measured)\n", float64(hostBytes)/float64(1<<20))
	fmt.Printf("link-level bytes, host ring:   %8.2f MiB\n", hostLinkBytes/float64(1<<20))
	fmt.Printf("link-level bytes, INC tree:    %8.2f MiB (%d switches, depth %d; up-frames tree-measured: %.2f MiB)\n",
		incLinkBytes/float64(1<<20), st.SwitchCount, st.Depth, float64(st.BytesUp)/float64(1<<20))
	fmt.Printf("fabric traffic reduction:      %8.2fx (paper cites 2x)\n", hostLinkBytes/incLinkBytes)

	// --- graph-level cross-check on realistic fabrics ---
	fmt.Println("\nReduction factor on routed network graphs (shortest-path link loads):")
	for _, tc := range []struct {
		name string
		net  func() (*topology.Network, error)
	}{
		{"fat tree, 4 leaves × 8 hosts, 2 spines", func() (*topology.Network, error) { return topology.FatTree(4, 8, 2) }},
		{"fat tree, 8 leaves × 4 hosts, 4 spines", func() (*topology.Network, error) { return topology.FatTree(8, 4, 4) }},
		{"dragonfly (Aries-like), 4 groups × 3 routers × 2 hosts", func() (*topology.Network, error) { return topology.Dragonfly(4, 3, 2) }},
	} {
		net, err := tc.net()
		if err != nil {
			return err
		}
		factor, err := net.ReductionFactor(int64(msg))
		if err != nil {
			return err
		}
		avg, err := net.AverageHops()
		if err != nil {
			return err
		}
		fmt.Printf("  %-52s %.2fx (avg %.1f hops)\n", tc.name, factor, avg)
	}

	// --- latency: model comparison at scale ---
	params := netsim.AriesDefaults()
	fmt.Printf("\n%-8s %-22s %-22s %s\n", "ranks", "host latency (µs)", "INC latency (µs)", "speedup")
	for _, ranks := range []int{64, 256, 1024} {
		host, _, err := params.Latency(nil, ranks, ranks/32, 16)
		if err != nil {
			return err
		}
		incLat, err := params.INCLatency(ranks, 16, 16)
		if err != nil {
			return err
		}
		fmt.Printf("%-8d %-22.2f %-22.2f %.1fx\n", ranks, host.Mean*1e6, incLat*1e6, host.Mean/incLat)
	}
	fmt.Println("\n(paper: INC lowers latency 3-18x and bandwidth 2x — the gains HEAR")
	fmt.Println("preserves by keeping the aggregation inside the network.)")
	return nil
}
