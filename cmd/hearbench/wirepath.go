package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"hear/internal/aggsvc"
)

// wirepathExp measures the zero-copy wire path against the codec it
// replaced: a 64-client loopback RESULT fan-out, writer and readers in one
// process, charged in bytes per second per CPU core (rusage). The legacy
// variant allocates and copies the full aggregate once per participant and
// issues one write syscall per payload slice, with fresh-buffer-per-frame
// readers; the vectored variant encodes the round's lanes exactly once and
// fans out with writev against shared immutable buffers, with
// reusable-buffer readers. Emits BENCH_wirepath.json; the allocs/op side
// of the story is pinned by BenchmarkWirePath / TestWirePathAllocFree in
// internal/aggsvc.

const wirepathConns = 64

type wirepathRow struct {
	LaneBytes int `json:"lane_bytes"`
	Conns     int `json:"conns"`
	Rounds    int `json:"rounds"`
	// Payload volume fanned out (rounds × conns × frame bytes).
	TotalMB float64 `json:"total_mb"`
	// Legacy = per-participant encode+copy, sequential writes, allocating
	// readers. Vectored = once-per-round encode, writev fan-out, reusing
	// readers.
	LegacyWallMS       float64 `json:"legacy_wall_ms"`
	LegacyCPUSec       float64 `json:"legacy_cpu_sec"`
	LegacyBytesPerCore float64 `json:"legacy_bytes_per_sec_core"`
	VectorWallMS       float64 `json:"vectored_wall_ms"`
	VectorCPUSec       float64 `json:"vectored_cpu_sec"`
	VectorBytesPerCore float64 `json:"vectored_bytes_per_sec_core"`
	Improvement        float64 `json:"improvement"`
}

type wirepathE2E struct {
	Clients      int     `json:"clients"`
	Elems        int     `json:"elems"`
	Rounds       int     `json:"rounds"`
	WallMS       float64 `json:"wall_ms"`
	RoundsPerSec float64 `json:"rounds_per_sec"`
}

type wirepathReport struct {
	Experiment string        `json:"experiment"`
	CPUAccount string        `json:"cpu_accounting"`
	Rows       []wirepathRow `json:"rows"`
	// FanoutImprovement is the headline bytes/sec/core ratio on the
	// 64-client 64 KiB-lane fan-out (the gateway's default chunk size).
	FanoutImprovement float64     `json:"fanout_improvement"`
	E2E               wirepathE2E `json:"e2e_gateway_round"`
}

// wirepathFanOut runs one fan-out variant: rounds × FanOutResult* over
// conns TCP loopback connections, each drained by its own reader
// goroutine, returning wall time and process CPU consumed.
func wirepathFanOut(laneBytes, rounds int, vectored bool) (wall time.Duration, cpu float64, err error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, 0, err
	}
	defer l.Close()

	writers := make([]io.Writer, 0, wirepathConns)
	var closers []net.Conn
	defer func() {
		for _, c := range closers {
			c.Close()
		}
	}()
	var readers sync.WaitGroup
	maxFrame := laneBytes + 1<<10
	for i := 0; i < wirepathConns; i++ {
		dst, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			return 0, 0, err
		}
		closers = append(closers, dst)
		src, err := l.Accept()
		if err != nil {
			return 0, 0, err
		}
		closers = append(closers, src)
		writers = append(writers, src)
		readers.Add(1)
		go func(c net.Conn) {
			defer readers.Done()
			var buf []byte
			for {
				if vectored {
					if _, buf, _, err = aggsvc.ReadFrameInto(c, buf, maxFrame); err != nil {
						return
					}
				} else {
					if _, _, err := aggsvc.ReadFrameAlloc(c, maxFrame); err != nil {
						return
					}
				}
			}
		}(dst)
	}

	data := make([]byte, laneBytes)
	for i := range data {
		data[i] = byte(i * 31)
	}
	start := time.Now()
	cpu0 := processCPUSeconds()
	for r := 0; r < rounds; r++ {
		if vectored {
			err = aggsvc.FanOutResultVectored(writers, uint64(r), data, nil)
		} else {
			err = aggsvc.FanOutResultLegacy(writers, uint64(r), data, nil)
		}
		if err != nil {
			return 0, 0, err
		}
	}
	wall = time.Since(start)
	// Close the write sides so the readers drain the tail and exit, then
	// charge their CPU too — the legacy codec's per-frame allocation burns
	// reader cores as surely as writer cores.
	for _, w := range writers {
		w.(net.Conn).Close()
	}
	readers.Wait()
	cpu = processCPUSeconds() - cpu0
	return wall, cpu, nil
}

// wirepathE2ERound measures whole gateway rounds over loopback TCP: the
// zero-copy path end to end (HELLO through vectored RESULT fan-out).
func wirepathE2ERound(clients, elems, rounds int) (wirepathE2E, error) {
	e := wirepathE2E{Clients: clients, Elems: elems, Rounds: rounds}
	srv, err := aggsvc.NewServer(aggsvc.Config{Group: clients})
	if err != nil {
		return e, err
	}
	defer srv.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return e, err
	}
	go srv.Serve(l)

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	start := time.Now()
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := aggsvc.Dial(l.Addr().String(), passthroughSealer{elems: elems},
				aggsvc.ClientOptions{Timeout: 30 * time.Second})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			vals := make([]int64, elems)
			out := make([]int64, elems)
			for r := 0; r < rounds; r++ {
				if _, err := c.Aggregate(vals, out); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-errs:
		return e, err
	default:
	}
	e.WallMS = float64(time.Since(start).Microseconds()) / 1000
	e.RoundsPerSec = float64(rounds) / time.Since(start).Seconds()
	return e, nil
}

// passthroughSealer uploads plaintext LE int64 lanes — the transport cost
// is what wirepath measures; sealing belongs to the other experiments.
type passthroughSealer struct{ elems int }

func (s passthroughSealer) Seal(vals []int64, _ uint64) ([]byte, []byte, error) {
	return make([]byte, len(vals)*8), nil, nil
}
func (passthroughSealer) Verify(_, _ []byte) error   { return nil }
func (passthroughSealer) Open([]byte, []int64) error { return nil }
func (passthroughSealer) Tagged() bool               { return false }
func (passthroughSealer) Epoch() uint64              { return 0 }

func wirepathExp() error {
	type cfg struct {
		lane   int
		rounds int
	}
	cases := []cfg{{4 << 10, 2000}, {64 << 10, 800}, {1 << 20, 80}}
	e2eRounds := 10
	if *quick {
		cases = []cfg{{4 << 10, 40}, {64 << 10, 20}, {1 << 20, 4}}
		e2eRounds = 2
	}
	report := wirepathReport{Experiment: "wirepath", CPUAccount: cpuAccounting}

	fmt.Printf("wire path: %d-conn loopback RESULT fan-out, legacy codec vs zero-copy writev\n", wirepathConns)
	fmt.Printf("%-10s %8s %14s %14s %8s\n", "lane", "rounds", "legacy B/s/core", "writev B/s/core", "ratio")
	for _, c := range cases {
		row := wirepathRow{LaneBytes: c.lane, Conns: wirepathConns, Rounds: c.rounds}
		frameBytes := 5 + 16 + c.lane // header + RESULT prefixes + data lane
		total := float64(c.rounds) * float64(wirepathConns) * float64(frameBytes)
		row.TotalMB = total / (1 << 20)

		wall, cpu, err := wirepathFanOut(c.lane, c.rounds, false)
		if err != nil {
			return err
		}
		row.LegacyWallMS = float64(wall.Microseconds()) / 1000
		row.LegacyCPUSec = cpu
		row.LegacyBytesPerCore = total / cpu

		wall, cpu, err = wirepathFanOut(c.lane, c.rounds, true)
		if err != nil {
			return err
		}
		row.VectorWallMS = float64(wall.Microseconds()) / 1000
		row.VectorCPUSec = cpu
		row.VectorBytesPerCore = total / cpu

		row.Improvement = row.VectorBytesPerCore / row.LegacyBytesPerCore
		report.Rows = append(report.Rows, row)
		if c.lane == 64<<10 {
			report.FanoutImprovement = row.Improvement
		}
		fmt.Printf("%-10s %8d %14.1fM %14.1fM %7.2fx\n",
			fmtBytes(c.lane), c.rounds,
			row.LegacyBytesPerCore/1e6, row.VectorBytesPerCore/1e6, row.Improvement)
	}

	e2e, err := wirepathE2ERound(8, 8192, e2eRounds)
	if err != nil {
		return err
	}
	report.E2E = e2e
	fmt.Printf("e2e gateway: %d clients × %d elems, %d rounds: %.1f rounds/s\n",
		e2e.Clients, e2e.Elems, e2e.Rounds, e2e.RoundsPerSec)

	f, err := os.Create("BENCH_wirepath.json")
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return err
	}
	fmt.Println("wrote BENCH_wirepath.json")
	return nil
}

func fmtBytes(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMiB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKiB", n>>10)
	}
	return fmt.Sprintf("%dB", n)
}
