package hear

import (
	"testing"

	"hear/internal/core/fold"
	"hear/internal/mpi"
)

// Regression: Options{EnableP2P: true} with a nil Rand used to dereference
// nil in the pairwise-matrix draw; fill() now defaults to crypto/rand.
func TestInitEnableP2PNilRand(t *testing.T) {
	w := mpi.NewWorld(4)
	ctxs, err := Init(w, Options{EnableP2P: true})
	if err != nil {
		t.Fatalf("Init with EnableP2P and nil Rand: %v", err)
	}
	if len(ctxs) != 4 {
		t.Fatalf("got %d contexts, want 4", len(ctxs))
	}
	for _, c := range ctxs {
		if c.pairKeys == nil {
			t.Fatal("pairwise keys not generated")
		}
	}
	// The matrix must be symmetric and drawn from real entropy (two distinct
	// off-diagonal entries being equal by chance is ~2^-64).
	if ctxs[0].pairKeys[1] != ctxs[1].pairKeys[0] {
		t.Error("pairwise key matrix not symmetric")
	}
	if ctxs[0].pairKeys[1] == ctxs[0].pairKeys[2] {
		t.Error("pairwise keys not distinct — entropy source suspect")
	}
}

// gatewayFold plays the key-blind aggregator: it folds sealed lanes with
// the same internal/core/fold kernels the gateway server runs.
func gatewayFold(t *testing.T, sealers []*GatewaySealer, inputs [][]int64) (cipher, tags []byte) {
	t.Helper()
	for i, g := range sealers {
		c, tg, err := g.Seal(inputs[i], 0)
		if err != nil {
			t.Fatalf("seal %d: %v", i, err)
		}
		if i == 0 {
			cipher, tags = c, tg
			continue
		}
		fold.SumUint64(cipher, c)
		if tags != nil {
			fold.SumMod61(tags, tg)
		}
	}
	return cipher, tags
}

func TestGatewaySealerRoundTrip(t *testing.T) {
	const P, n = 5, 257
	w := mpi.NewWorld(P)
	ctxs, err := Init(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	verifier, err := NewVerifier(0x5eed)
	if err != nil {
		t.Fatal(err)
	}
	sealers := make([]*GatewaySealer, P)
	inputs := make([][]int64, P)
	want := make([]int64, n)
	for i := range sealers {
		sealers[i] = ctxs[i].NewGatewaySealer(verifier)
		inputs[i] = make([]int64, n)
		for j := range inputs[i] {
			inputs[i][j] = int64(i*1000 + j - 300)
			want[j] += inputs[i][j]
		}
	}

	for round := 0; round < 3; round++ { // k_c advances stay in lockstep
		cipher, tags := gatewayFold(t, sealers, inputs)
		for i, g := range sealers {
			if err := g.Verify(cipher, tags); err != nil {
				t.Fatalf("round %d rank %d verify: %v", round, i, err)
			}
			got := make([]int64, n)
			if err := g.Open(cipher, got); err != nil {
				t.Fatalf("round %d rank %d open: %v", round, i, err)
			}
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("round %d rank %d elem %d = %d, want %d", round, i, j, got[j], want[j])
				}
			}
		}
	}
}

func TestGatewaySealerDetectsTampering(t *testing.T) {
	const P = 3
	w := mpi.NewWorld(P)
	ctxs, err := Init(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	verifier, err := NewVerifier(42)
	if err != nil {
		t.Fatal(err)
	}
	sealers := make([]*GatewaySealer, P)
	inputs := make([][]int64, P)
	for i := range sealers {
		sealers[i] = ctxs[i].NewGatewaySealer(verifier)
		inputs[i] = []int64{1, 2, 3}
	}
	cipher, tags := gatewayFold(t, sealers, inputs)
	cipher[9] ^= 0x40 // a tampering gateway flips one aggregate bit
	err = sealers[0].Verify(cipher, tags)
	vf, ok := err.(*ErrVerificationFailed)
	if !ok {
		t.Fatalf("tampered aggregate verified: %v", err)
	}
	if vf.Element != 1 {
		t.Errorf("failure at element %d, want 1", vf.Element)
	}
	// Stripping the tag lane must not bypass verification.
	if err := sealers[0].Verify(cipher[:16], nil); err == nil {
		t.Error("nil tag lane accepted with verification enabled")
	}
}

func TestGatewaySealerUnverified(t *testing.T) {
	w := mpi.NewWorld(2)
	ctxs, err := Init(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, b := ctxs[0].NewGatewaySealer(nil), ctxs[1].NewGatewaySealer(nil)
	ca, ta, err := a.Seal([]int64{10, -4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ta != nil {
		t.Error("unverified seal produced tags")
	}
	cb, _, err := b.Seal([]int64{-7, 5}, 0)
	if err != nil {
		t.Fatal(err)
	}
	fold.SumUint64(ca, cb)
	got := make([]int64, 2)
	if err := a.Open(ca, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 3 || got[1] != 1 {
		t.Errorf("aggregate = %v, want [3 1]", got)
	}
}
