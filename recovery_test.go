package hear

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"hear/internal/chaos"
	"hear/internal/inc"
	"hear/internal/mpi"
)

// buildVerifiedTrees returns a (data, tag) tree pair for p ranks with
// radix 2, the in-network layout every verified INC test uses.
func buildVerifiedTrees(t *testing.T, p int) (*inc.Tree, *inc.Tree) {
	t.Helper()
	dataTree, err := inc.NewTree(p, 2, sumFold64)
	if err != nil {
		t.Fatal(err)
	}
	tagTree, err := inc.NewTree(p, 2, TagFold)
	if err != nil {
		t.Fatal(err)
	}
	return dataTree, tagTree
}

// TestVerifiedRetryRecoversFromINCCorruption is the end-to-end recovery
// scenario for a tampering switch: a chaos plan corrupts every frame of
// the DATA tree, so the in-network attempt fails HoMAC verification on
// every rank; with VerifiedRetry the whole group steps down to the host
// path and completes with the correct aggregate.
func TestVerifiedRetryRecoversFromINCCorruption(t *testing.T) {
	const p = 4
	dataTree, tagTree := buildVerifiedTrees(t, p)
	corrupt := chaos.NewRule(chaos.LayerINC, chaos.FaultCorrupt)
	plan := chaos.NewPlan(0xC0BB, corrupt)
	dataTree.SetInterceptor(plan.INCInterceptor(0))

	w, ctxs := initWorld(t, p, Options{INC: dataTree, INCTags: tagTree, VerifiedRetry: 2})
	verifier, err := NewVerifier(0xFA117)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(testTimeout, func(c *mpi.Comm) error {
		data := []int64{int64(c.Rank()) + 1, -7, int64(c.Rank()) << 30}
		want := []int64{10, -28, (0 + 1 + 2 + 3) << 30}
		out := make([]int64, 3)
		if err := ctxs[c.Rank()].AllreduceInt64SumVerified(c, verifier, data, out); err != nil {
			return err
		}
		for i := range out {
			if out[i] != want[i] {
				return fmt.Errorf("rank %d: recovered sum[%d] = %d, want %d", c.Rank(), i, out[i], want[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, ctx := range ctxs {
		if ctx.VerifiedRetries() < 1 {
			t.Errorf("rank %d reported %d retries; the corrupted INC attempt should have failed first", r, ctx.VerifiedRetries())
		}
	}
	if len(plan.Events()) == 0 {
		t.Fatal("the corruption rule never fired — the test exercised nothing")
	}
}

// TestVerifiedRetryRecoversFromINCTimeout: a killed switch stalls the data
// tree until its round timeout; the typed inc.ErrTimeout is retryable and
// the group recovers over the host ladder.
func TestVerifiedRetryRecoversFromINCTimeout(t *testing.T) {
	const p = 4
	dataTree, tagTree := buildVerifiedTrees(t, p)
	dataTree.SetTimeout(150 * time.Millisecond)
	tagTree.SetTimeout(150 * time.Millisecond)
	kill := chaos.NewRule(chaos.LayerINC, chaos.FaultKillSwitch)
	plan := chaos.NewPlan(0xDEAD, kill)
	dataTree.SetInterceptor(plan.INCInterceptor(0))

	w, ctxs := initWorld(t, p, Options{INC: dataTree, INCTags: tagTree, VerifiedRetry: 2})
	verifier, err := NewVerifier(0x7E1E)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(testTimeout, func(c *mpi.Comm) error {
		data := []int64{int64(c.Rank() * 11)}
		out := make([]int64, 1)
		if err := ctxs[c.Rank()].AllreduceInt64SumVerified(c, verifier, data, out); err != nil {
			return err
		}
		if out[0] != 11*(0+1+2+3) {
			return fmt.Errorf("rank %d: recovered sum = %d, want %d", c.Rank(), out[0], 11*6)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, ctx := range ctxs {
		if ctx.VerifiedRetries() < 1 {
			t.Errorf("rank %d reported %d retries; the killed switch should have timed the INC attempt out", r, ctx.VerifiedRetries())
		}
	}
}

// TestVerifiedRetryHostLadder: with no INC at all, the ladder starts at
// the pipelined host rung; a first-attempt-only corruption on every rank
// (group-wide, keeping keys in lockstep) is recovered by the sync rung.
func TestVerifiedRetryHostLadder(t *testing.T) {
	const p = 4
	w, ctxs := initWorld(t, p, Options{VerifiedRetry: 1})
	verifier, err := NewVerifier(0x1ADD)
	if err != nil {
		t.Fatal(err)
	}
	for _, ctx := range ctxs {
		fired := false
		ctx.SetFaultInjector(func(cipher []byte) {
			if !fired {
				fired = true
				cipher[0] ^= 0x40
			}
		})
	}
	err = w.Run(testTimeout, func(c *mpi.Comm) error {
		data := []int64{int64(c.Rank()), 5}
		out := make([]int64, 2)
		if err := ctxs[c.Rank()].AllreduceInt64SumVerified(c, verifier, data, out); err != nil {
			return err
		}
		if out[0] != 6 || out[1] != 20 {
			return fmt.Errorf("rank %d: recovered sum = %v", c.Rank(), out)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, ctx := range ctxs {
		if got := ctx.VerifiedRetries(); got != 1 {
			t.Errorf("rank %d VerifiedRetries() = %d, want 1", r, got)
		}
	}
}

// TestVerifiedRetryExhausts: a persistent per-rank corruption can never
// verify; the call fails closed with the typed verification error after
// the configured attempts rather than returning tampered data.
func TestVerifiedRetryExhausts(t *testing.T) {
	const p = 2
	w, ctxs := initWorld(t, p, Options{VerifiedRetry: 2})
	verifier, err := NewVerifier(0xBADBAD)
	if err != nil {
		t.Fatal(err)
	}
	for _, ctx := range ctxs {
		ctx.SetFaultInjector(func(cipher []byte) { cipher[0] ^= 1 })
	}
	err = w.Run(testTimeout, func(c *mpi.Comm) error {
		out := make([]int64, 1)
		err := ctxs[c.Rank()].AllreduceInt64SumVerified(c, verifier, []int64{1}, out)
		var vf *ErrVerificationFailed
		if !errors.As(err, &vf) {
			return fmt.Errorf("rank %d: want wrapped *ErrVerificationFailed after exhausted retries, got %v", c.Rank(), err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestVerifiedRetryZeroKeepsOldBehavior: the default configuration fails
// on the first error exactly as before the ladder existed.
func TestVerifiedRetryZeroKeepsOldBehavior(t *testing.T) {
	const p = 2
	w, ctxs := initWorld(t, p, Options{})
	verifier, err := NewVerifier(0x1234)
	if err != nil {
		t.Fatal(err)
	}
	for _, ctx := range ctxs {
		calls := 0
		ctx.SetFaultInjector(func(cipher []byte) {
			calls++
			if calls > 1 {
				t.Error("VerifiedRetry=0 ran a second attempt")
			}
			cipher[0] ^= 1
		})
	}
	err = w.Run(testTimeout, func(c *mpi.Comm) error {
		out := make([]int64, 1)
		err := ctxs[c.Rank()].AllreduceInt64SumVerified(c, verifier, []int64{1}, out)
		var vf *ErrVerificationFailed
		if !errors.As(err, &vf) {
			return fmt.Errorf("rank %d: want *ErrVerificationFailed, got %v", c.Rank(), err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
