package hear

import (
	"bytes"
	"fmt"
	"testing"

	"hear/internal/mpi"
)

func TestSendRecvEncryptedRoundTrip(t *testing.T) {
	w, ctxs := initWorld(t, 3, Options{EnableP2P: true})
	err := w.Run(testTimeout, func(c *mpi.Comm) error {
		ctx := ctxs[c.Rank()]
		switch c.Rank() {
		case 0:
			if err := ctx.SendEncrypted(c, 1, 5, []byte("attack at dawn")); err != nil {
				return err
			}
			if err := ctx.SendEncrypted(c, 1, 5, []byte("second message")); err != nil {
				return err
			}
		case 1:
			buf := make([]byte, 64)
			n, err := ctx.RecvEncrypted(c, 0, 5, buf)
			if err != nil {
				return err
			}
			if string(buf[:n]) != "attack at dawn" {
				return fmt.Errorf("got %q", buf[:n])
			}
			n, err = ctx.RecvEncrypted(c, 0, 5, buf)
			if err != nil {
				return err
			}
			if string(buf[:n]) != "second message" {
				return fmt.Errorf("got %q", buf[:n])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEncryptedP2PBothDirectionsDiffer(t *testing.T) {
	// i→j and j→i with the same seq must NOT share a keystream (the
	// two-time-pad pitfall of a symmetric pair key).
	w, ctxs := initWorld(t, 2, Options{EnableP2P: true})
	plain := bytes.Repeat([]byte{0}, 32) // zero plaintext exposes the keystream
	var c01, c10 []byte
	err := w.Run(testTimeout, func(c *mpi.Comm) error {
		ctx := ctxs[c.Rank()]
		peer := 1 - c.Rank()
		if err := ctx.SendEncrypted(c, peer, 1, plain); err != nil {
			return err
		}
		// Capture the raw wire bytes via a plain Recv (the adversary view).
		raw := make([]byte, p2pHeaderBytes+len(plain))
		if _, _, err := c.Recv(peer, 1, raw); err != nil {
			return err
		}
		if c.Rank() == 0 {
			c10 = append([]byte(nil), raw[p2pHeaderBytes:]...)
		} else {
			c01 = append([]byte(nil), raw[p2pHeaderBytes:]...)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(c01, c10) {
		t.Error("identical keystreams in both directions: two-time pad")
	}
	if bytes.Equal(c01, plain) || bytes.Equal(c10, plain) {
		t.Error("wire bytes equal plaintext")
	}
}

func TestSendEncryptedRequiresP2P(t *testing.T) {
	w, ctxs := initWorld(t, 2, Options{})
	err := w.Run(testTimeout, func(c *mpi.Comm) error {
		if c.Rank() != 0 {
			return nil
		}
		if err := ctxs[0].SendEncrypted(c, 1, 1, []byte("x")); err == nil {
			return fmt.Errorf("p2p without key matrix accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastEncrypted(t *testing.T) {
	w, ctxs := initWorld(t, 5, Options{})
	payload := []byte("broadcast me confidentially, twice")
	err := w.Run(testTimeout, func(c *mpi.Comm) error {
		ctx := ctxs[c.Rank()]
		for round := 0; round < 2; round++ {
			buf := make([]byte, len(payload))
			if c.Rank() == 2 {
				copy(buf, payload)
			}
			if err := ctx.BcastEncrypted(c, 2, buf); err != nil {
				return err
			}
			if !bytes.Equal(buf, payload) {
				return fmt.Errorf("rank %d round %d got %q", c.Rank(), round, buf)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherEncrypted(t *testing.T) {
	const p = 4
	w, ctxs := initWorld(t, p, Options{EnableP2P: true})
	err := w.Run(testTimeout, func(c *mpi.Comm) error {
		ctx := ctxs[c.Rank()]
		send := []byte{byte(c.Rank() * 11), byte(c.Rank() + 1)}
		var recv []byte
		if c.Rank() == 1 {
			recv = make([]byte, p*2)
		}
		if err := ctx.GatherEncrypted(c, 1, send, recv); err != nil {
			return err
		}
		if c.Rank() == 1 {
			for i := 0; i < p; i++ {
				if recv[i*2] != byte(i*11) || recv[i*2+1] != byte(i+1) {
					return fmt.Errorf("slot %d: %v", i, recv[i*2:i*2+2])
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallEncrypted(t *testing.T) {
	const p, blk = 4, 8
	w, ctxs := initWorld(t, p, Options{EnableP2P: true})
	err := w.Run(testTimeout, func(c *mpi.Comm) error {
		ctx := ctxs[c.Rank()]
		send := make([]byte, p*blk)
		for j := 0; j < p; j++ {
			for b := 0; b < blk; b++ {
				send[j*blk+b] = byte(c.Rank()*16 + j)
			}
		}
		recv := make([]byte, p*blk)
		// Two rounds to exercise the per-call sequence counter.
		for round := 0; round < 2; round++ {
			if err := ctx.AlltoallEncrypted(c, send, recv, blk); err != nil {
				return err
			}
			for j := 0; j < p; j++ {
				want := byte(j*16 + c.Rank())
				for b := 0; b < blk; b++ {
					if recv[j*blk+b] != want {
						return fmt.Errorf("rank %d round %d block %d: got %d, want %d",
							c.Rank(), round, j, recv[j*blk+b], want)
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallEncryptedValidation(t *testing.T) {
	w, ctxs := initWorld(t, 2, Options{EnableP2P: true})
	err := w.Run(testTimeout, func(c *mpi.Comm) error {
		if err := ctxs[c.Rank()].AlltoallEncrypted(c, make([]byte, 4), make([]byte, 4), 8); err == nil {
			return fmt.Errorf("short buffers accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPairKeysAreSymmetricAndPrivate(t *testing.T) {
	_, ctxs := initWorld(t, 4, Options{EnableP2P: true})
	for i := range ctxs {
		for j := range ctxs {
			if ctxs[i].pairKeys[j] != ctxs[j].pairKeys[i] {
				t.Fatalf("pair key (%d,%d) asymmetric", i, j)
			}
		}
	}
	// Distinct pairs get distinct keys (w.h.p.; deterministic test rand).
	seen := map[uint64]bool{}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			k := ctxs[i].pairKeys[j]
			if seen[k] {
				t.Fatalf("duplicate pair key %#x", k)
			}
			seen[k] = true
		}
	}
}
