package hear

import (
	"errors"
	"testing"
	"time"

	"hear/internal/mpi"
)

// TestOptionsValidation pins that every sign-sensitive Options field is
// rejected at context creation with a typed *OptionError naming the
// field — not silently reinterpreted ("negative workers means serial")
// deeper in the stack.
func TestOptionsValidation(t *testing.T) {
	cases := []struct {
		field string
		opts  Options
	}{
		{"PipelineBlockBytes", Options{PipelineBlockBytes: -1}},
		{"Workers", Options{Workers: -1}},
		{"NoisePrefetch", Options{NoisePrefetch: -4096}},
		{"VerifiedRetry", Options{VerifiedRetry: -2}},
		{"RecvTimeout", Options{RecvTimeout: -time.Second}},
	}
	w := mpi.NewWorld(2)
	for _, tc := range cases {
		t.Run(tc.field, func(t *testing.T) {
			_, err := Init(w, tc.opts)
			if err == nil {
				t.Fatalf("Init accepted negative %s", tc.field)
			}
			var oe *OptionError
			if !errors.As(err, &oe) {
				t.Fatalf("error %v is not an *OptionError", err)
			}
			if oe.Field != tc.field {
				t.Errorf("OptionError.Field = %q, want %q", oe.Field, tc.field)
			}
		})
	}
}

// TestOptionsValidationOverComm pins that InitOverComm applies the same
// validation: it is the per-communicator entry point, and skipping the
// check there would let the exact same bad config through a different
// door.
func TestOptionsValidationOverComm(t *testing.T) {
	w := mpi.NewWorld(1)
	err := w.Run(0, func(comm *mpi.Comm) error {
		_, err := InitOverComm(comm, Options{Workers: -1}, nil)
		return err
	})
	var oe *OptionError
	if !errors.As(err, &oe) || oe.Field != "Workers" {
		t.Fatalf("InitOverComm error = %v, want *OptionError{Field: Workers}", err)
	}
}

// TestOptionsZeroValuesStillDefault pins that validation does not break
// the documented zero defaults (0 workers = GOMAXPROCS, 0 timeout =
// forever, ...).
func TestOptionsZeroValuesStillDefault(t *testing.T) {
	w := mpi.NewWorld(2)
	if _, err := Init(w, Options{}); err != nil {
		t.Fatalf("zero Options rejected: %v", err)
	}
}
