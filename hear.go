// Package hear is the public API of this HEAR reproduction — the analogue
// of libhear (§6): a middleware layer that adds homomorphic encryption and
// decryption around Allreduce without changing application code structure.
// Where libhear interposes on PMPI and is enabled with an LD_PRELOAD, this
// package wraps the bundled message-passing runtime (internal/mpi) behind
// per-rank Contexts created at communicator initialization.
//
// Usage mirrors an MPI program:
//
//	w := mpi.NewWorld(8)
//	ctxs, _ := hear.Init(w, hear.Options{})
//	w.Run(0, func(c *mpi.Comm) error {
//	    ctx := ctxs[c.Rank()]
//	    data := []int64{...}
//	    return ctx.AllreduceInt64Sum(c, data, data)
//	})
//
// Every Allreduce call advances the collective key (temporal safety),
// encrypts element-wise with the scheme selected by datatype and
// operation, reduces ciphertexts — on the hosts or through an in-network
// aggregation tree — and decrypts the aggregate with a single PRF stream.
package hear

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	"time"

	"hear/internal/core"
	"hear/internal/engine"
	"hear/internal/fixedpoint"
	"hear/internal/hfp"
	"hear/internal/inc"
	"hear/internal/keys"
	"hear/internal/mempool"
	"hear/internal/metrics"
	"hear/internal/mpi"
	"hear/internal/noise"
	"hear/internal/prf"
	"hear/internal/ring"
	"hear/internal/trace"
)

// Options configures a HEAR communicator.
type Options struct {
	// PRFBackend selects the noise PRF (default prf.BackendAESFast, the
	// hardware-AES counter mode libhear settled on).
	PRFBackend string
	// Gamma is the float ciphertext inflation parameter γ (§5.3.1):
	// 0 keeps ciphertexts plaintext-sized, 2 restores full mantissa
	// precision for the addition scheme.
	Gamma uint
	// FixedPoint configures the fixed point codec (§5.2); zero value means
	// 64-bit words with 20 fractional bits.
	FixedPointFrac uint
	// PipelineBlockBytes enables the non-blocking pipelined data path for
	// buffers larger than one block (§6 "Communication"): ciphertext
	// blocks of this size overlap encryption, reduction, and decryption.
	// 0 disables pipelining.
	PipelineBlockBytes int
	// INC, when non-nil, routes ciphertext reduction through the
	// in-network aggregation tree instead of host-based collectives.
	INC *inc.Tree
	// INCTags, when non-nil alongside INC, is a second aggregation tree
	// whose fold adds mod the HoMAC prime; verified Allreduce then reduces
	// the (c, σ) pair fully in-network, as §5.5 describes INC doing.
	INCTags *inc.Tree
	// Algorithm selects the host-based Allreduce algorithm (AlgoAuto
	// default); ignored when INC is set.
	Algorithm mpi.Algorithm
	// Workers sizes the multicore cipher engine that shards encryption,
	// decryption, and ciphertext reduction over element ranges
	// (internal/engine; counter-mode noise offsets keep the sharded
	// result bit-identical to the serial path). 0 selects GOMAXPROCS;
	// 1 forces the serial path. The engine is shared by every context of
	// the communicator, mirroring one worker pool per node.
	Workers int
	// NoisePrefetch, when positive, enables the speculative keystream
	// prefetcher (internal/noise) with that many bytes of plane budget per
	// rank: while a collective is blocked on the network, the next epoch's
	// noise planes generate on the engine's worker pool, and the following
	// call's Encrypt/Decrypt consume precomputed bytes instead of running
	// the PRF on the critical path. Bit-identical to the unprefetched path;
	// epoch-tagged so out-of-band key advances (the verified-retry ladder)
	// miss instead of using stale noise. Budget guidance: two epochs of
	// planes ≈ 6× the message's noise bytes (a truncated budget still
	// prefix-hits). 0 (default) disables.
	NoisePrefetch int
	// VerifiedRetry bounds how many extra attempts AllreduceInt64SumVerified
	// makes after a retryable failure (tampering detected by the HoMAC
	// check, or an INC/runtime timeout), stepping down the degradation
	// ladder INC → pipelined host → sync host on each retry. 0 (default)
	// fails on the first error. Every attempt re-advances the collective
	// key, so retries stay coherent only when the whole group retries —
	// see AllreduceInt64SumVerified.
	VerifiedRetry int
	// RecvTimeout, when positive, bounds every point-to-point receive of
	// this context's host collectives; an expired wait surfaces as a typed
	// mpi.ErrTimeout instead of hanging on a crashed or severed peer.
	// 0 waits forever (the classic MPI behavior).
	RecvTimeout time.Duration
	// Metrics, when non-nil, publishes this communicator's telemetry into
	// the given registry under the hear_* namespace: per-path allreduce
	// call counters and latency histogram, verified-retry attempt counters
	// per ladder rung, gateway sealer operations, and snapshot-time
	// sources for the cipher engine's shard phases, the noise prefetcher,
	// and the pipeline mempool. The hot-path instruments are atomic and
	// allocation-free; nil (the default) disables all of it.
	Metrics *metrics.Registry
	// EnableP2P generates the §8 pairwise key matrix at initialization,
	// enabling SendEncrypted/RecvEncrypted and the encrypted non-reducing
	// collectives. Costs Θ(N) key space per rank instead of Θ(1).
	EnableP2P bool
	// SharedGroupKeys derives every rank's starting key from one group key
	// (keys.Config.SharedGroup) instead of independent random draws. Any
	// rank can then re-derive any other rank's PRF noise stream, which is
	// what lets GatewaySealer verify and open a degraded (dropout-tolerant)
	// gateway round over a survivor subset. Trade-off: the default policy
	// gives a rank only its ring neighbours' keys; with this on, the whole
	// group shares one derivation secret (the shared-key secure-aggregation
	// model). The gateway stays key-blind either way. Off by default.
	SharedGroupKeys bool
	// Rand overrides the key-generation entropy source (tests only).
	Rand io.Reader
}

func (o *Options) fill() {
	if o.PRFBackend == "" {
		o.PRFBackend = prf.BackendAESFast
	}
	if o.FixedPointFrac == 0 {
		o.FixedPointFrac = 20
	}
	if o.Rand == nil {
		// Default exactly as internal/keys does: nil means the system CSPRNG.
		// Init reads from o.Rand directly for the §8 pairwise matrix, so a
		// nil reader would otherwise crash EnableP2P initialization.
		o.Rand = rand.Reader
	}
}

// Context is one rank's HEAR state: its key material and scheme instances.
// A Context belongs to one rank goroutine and is not safe for concurrent
// use — exactly like an MPI process's library state.
type Context struct {
	rank    int
	size    int
	st      *keys.RankState
	opts    Options
	schemes map[string]core.Scheme
	pool    *mempool.Pool
	eng     *engine.Engine // shared multicore cipher engine (Options.Workers)
	mx      *ctxMetrics    // hot-path instruments; no-op when Options.Metrics is nil

	// syncBuf lazily caches the sync data path's ciphertext buffer so
	// repeated allreduces stop paying mem_alloc/mem_free (Fig. 4) per
	// call; see cipherBuf in allreduce.go.
	syncBuf []byte

	// prefetch is the speculative keystream engine (Options.NoisePrefetch);
	// nil when disabled. It owns the cache-backed PRF installed in st.Enc.
	prefetch *noise.Prefetcher

	// faultInjector, when set, corrupts the reduced ciphertext before
	// HoMAC verification (testing/demo hook; see SetFaultInjector).
	faultInjector func([]byte)

	// verifiedRetries counts the extra attempts verified allreduces needed
	// over this context's lifetime (see VerifiedRetries).
	verifiedRetries int

	// §8 extension state (nil/zero unless Options.EnableP2P).
	pairKeys  []uint64 // this rank's row of the symmetric pairwise key matrix
	sendSeq   []uint64 // per-peer point-to-point message counters
	gatherSeq uint64   // collective-call counters for the encrypted
	a2aSeq    uint64   // non-reducing collectives (lockstep across ranks)
}

// Init performs HEAR's initialization for every rank of a world: key
// generation and the secure exchange of §5 ("Key Generation"). It returns
// one Context per rank. In a deployment each context would live inside
// that rank's secure environment; here the slice models the completed
// exchange.
func Init(w *mpi.World, opts Options) ([]*Context, error) {
	opts.fill()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	states, err := keys.Generate(w.Size(), keys.Config{
		Backend: opts.PRFBackend, Rand: opts.Rand, SharedGroup: opts.SharedGroupKeys})
	if err != nil {
		return nil, fmt.Errorf("hear: init: %w", err)
	}
	// §8 pairwise key matrix: symmetric, drawn once, distributed by row.
	var matrix [][]uint64
	if opts.EnableP2P {
		n := w.Size()
		matrix = make([][]uint64, n)
		for i := range matrix {
			matrix[i] = make([]uint64, n)
		}
		var b [8]byte
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if _, err := io.ReadFull(opts.Rand, b[:]); err != nil {
					return nil, fmt.Errorf("hear: drawing pairwise key: %w", err)
				}
				k := binary.LittleEndian.Uint64(b[:])
				matrix[i][j] = k
				matrix[j][i] = k
			}
		}
	}

	// One cipher engine for all contexts: rank goroutines of one world
	// share the node's cores, so a shared pool avoids oversubscription.
	eng := engine.New(opts.Workers)
	mx := newCtxMetrics(opts.Metrics)

	ctxs := make([]*Context, w.Size())
	for i := range ctxs {
		var pool *mempool.Pool
		if opts.PipelineBlockBytes > 0 {
			// Three blocks cover the encrypt/reduce/decrypt pipeline depth.
			pool, err = mempool.New(opts.PipelineBlockBytes, 3, 0)
			if err != nil {
				return nil, fmt.Errorf("hear: init pool: %w", err)
			}
		}
		ctx := &Context{
			rank:    i,
			size:    w.Size(),
			st:      states[i],
			opts:    opts,
			schemes: make(map[string]core.Scheme),
			pool:    pool,
			eng:     eng,
			mx:      mx,
		}
		if matrix != nil {
			ctx.pairKeys = matrix[i]
			ctx.sendSeq = make([]uint64, w.Size())
		}
		if opts.NoisePrefetch > 0 {
			// Attach wraps st.Enc, so every scheme bound to this state
			// consumes noise through the plane cache from here on.
			ctx.prefetch = noise.Attach(states[i], eng.Pool(), eng.Phases(), opts.NoisePrefetch)
		}
		ctxs[i] = ctx
	}
	registerTelemetry(opts.Metrics, eng, ctxs)
	return ctxs, nil
}

// Rank returns the context's rank.
func (c *Context) Rank() int { return c.rank }

// Workers returns the worker count of the shared cipher engine.
func (c *Context) Workers() int { return c.eng.Workers() }

// EngineBreakdown snapshots the cipher engine's per-shard phase timings
// (encrypt_shard/decrypt_shard/reduce_shard; one sample per shard). The
// accumulator is shared across all contexts of the communicator.
func (c *Context) EngineBreakdown() *trace.Breakdown { return c.eng.Phases().Snapshot() }

// Size returns the communicator size.
func (c *Context) Size() int { return c.size }

// PrefetchStats returns the noise prefetcher's lifetime counters; the zero
// Stats when NoisePrefetch is off. The byte counters also surface in
// EngineBreakdown as the prefetch_hit_bytes / prefetch_miss_bytes phases.
func (c *Context) PrefetchStats() noise.Stats {
	if c.prefetch == nil {
		return noise.Stats{}
	}
	return c.prefetch.Stats()
}

// kickPrefetch starts speculative generation of the noise planes the next
// collective of this scheme and size will need (plus this call's decrypt
// plane when cold). Callers place it where the communication window opens —
// right before the blocking reduction, or after the first Iallreduce
// submit — so generation overlaps the wait. A no-op without a prefetcher
// or for schemes with no static noise profile.
func (c *Context) kickPrefetch(s core.Scheme, n int) {
	if c.prefetch == nil {
		return
	}
	if np, ok := s.(core.NoiseProfiler); ok {
		c.prefetch.Kick(np.NoiseProfile(), n)
	}
}

// scheme returns (creating on first use) the named scheme instance.
func (c *Context) scheme(key string, mk func() (core.Scheme, error)) (core.Scheme, error) {
	if s, ok := c.schemes[key]; ok {
		return s, nil
	}
	s, err := mk()
	if err != nil {
		return nil, err
	}
	c.schemes[key] = s
	return s, nil
}

func (c *Context) intSum(width int) (core.Scheme, error) {
	return c.scheme(fmt.Sprintf("int%d-sum", width), func() (core.Scheme, error) { return core.NewIntSum(width) })
}

func (c *Context) intProd(width int) (core.Scheme, error) {
	return c.scheme(fmt.Sprintf("int%d-prod", width), func() (core.Scheme, error) { return core.NewIntProd(width) })
}

func (c *Context) intXor(width int) (core.Scheme, error) {
	return c.scheme(fmt.Sprintf("int%d-xor", width), func() (core.Scheme, error) { return core.NewIntXor(width) })
}

func (c *Context) floatSum(base hfp.Format) (core.Scheme, error) {
	return c.scheme(fmt.Sprintf("float%d-sum-g%d", base.Lm, c.opts.Gamma), func() (core.Scheme, error) {
		return core.NewFloatSum(base, c.opts.Gamma)
	})
}

func (c *Context) floatProd(base hfp.Format) (core.Scheme, error) {
	return c.scheme(fmt.Sprintf("float%d-prod-g%d", base.Lm, c.opts.Gamma), func() (core.Scheme, error) {
		return core.NewFloatProd(base, c.opts.Gamma)
	})
}

func (c *Context) floatSumV2(base hfp.Format) (core.Scheme, error) {
	return c.scheme(fmt.Sprintf("float%d-sumv2-g%d", base.Lm, c.opts.Gamma), func() (core.Scheme, error) {
		return core.NewFloatSumV2(base, c.opts.Gamma)
	})
}

func (c *Context) fixedSum() (core.Scheme, error) {
	return c.scheme("fixed-sum", func() (core.Scheme, error) {
		codec, err := fixedpoint.NewCodec(64, c.opts.FixedPointFrac)
		if err != nil {
			return nil, err
		}
		return core.NewFixedSum(codec)
	})
}

func (c *Context) fixedProd() (core.Scheme, error) {
	return c.scheme("fixed-prod", func() (core.Scheme, error) {
		codec, err := fixedpoint.NewCodec(64, c.opts.FixedPointFrac)
		if err != nil {
			return nil, err
		}
		return core.NewFixedProd(codec)
	})
}

// HoMACPrime is the modulus of the result-verification field (§5.5).
const HoMACPrime = ring.MersennePrime61
