package hear

import (
	"encoding/binary"
	"errors"
	"fmt"
	"testing"

	"hear/internal/inc"
	"hear/internal/mpi"
)

func sumFold64(dst, src []byte) {
	for o := 0; o+8 <= len(dst); o += 8 {
		binary.LittleEndian.PutUint64(dst[o:],
			binary.LittleEndian.Uint64(dst[o:])+binary.LittleEndian.Uint64(src[o:]))
	}
}

// Verified Allreduce fully in-network: the data tree folds mod 2^64, the
// tag tree folds mod p, and verification passes for honest switches.
func TestVerifiedAllreduceOverINC(t *testing.T) {
	const p = 4
	dataTree, err := inc.NewTree(p, 2, sumFold64)
	if err != nil {
		t.Fatal(err)
	}
	tagTree, err := inc.NewTree(p, 2, TagFold)
	if err != nil {
		t.Fatal(err)
	}
	w, ctxs := initWorld(t, p, Options{INC: dataTree, INCTags: tagTree})
	verifier, err := NewVerifier(0xABCDEF01)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(testTimeout, func(c *mpi.Comm) error {
		data := []int64{int64(c.Rank() * 2), -3, 1 << 40}
		out := make([]int64, 3)
		if err := ctxs[c.Rank()].AllreduceInt64SumVerified(c, verifier, data, out); err != nil {
			return err
		}
		if out[0] != 12 || out[1] != -12 || out[2] != 4<<40 {
			return fmt.Errorf("verified INC sum = %v", out)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// A tampering switch in the DATA tree must be caught by every rank.
func TestVerifiedINCDetectsMaliciousSwitch(t *testing.T) {
	const p = 4
	// The malicious fold flips a bit of the aggregate at the root level.
	calls := 0
	evilFold := func(dst, src []byte) {
		sumFold64(dst, src)
		calls++
		if calls == p-1 { // the final fold — the root switch
			dst[0] ^= 1
		}
	}
	dataTree, err := inc.NewTree(p, 2, evilFold)
	if err != nil {
		t.Fatal(err)
	}
	tagTree, err := inc.NewTree(p, 2, TagFold)
	if err != nil {
		t.Fatal(err)
	}
	w, ctxs := initWorld(t, p, Options{INC: dataTree, INCTags: tagTree})
	verifier, err := NewVerifier(0x5EC0DE)
	if err != nil {
		t.Fatal(err)
	}
	detected := make([]bool, p)
	err = w.Run(testTimeout, func(c *mpi.Comm) error {
		data := []int64{int64(c.Rank()) + 100}
		out := make([]int64, 1)
		err := ctxs[c.Rank()].AllreduceInt64SumVerified(c, verifier, data, out)
		var vf *ErrVerificationFailed
		if errors.As(err, &vf) {
			detected[c.Rank()] = true
			return nil
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, d := range detected {
		if !d {
			t.Errorf("rank %d accepted a tampered in-network aggregate", r)
		}
	}
}

func TestVerifiedINCWithoutTagTreeFailsFast(t *testing.T) {
	dataTree, err := inc.NewTree(2, 2, sumFold64)
	if err != nil {
		t.Fatal(err)
	}
	w, ctxs := initWorld(t, 2, Options{INC: dataTree})
	verifier, err := NewVerifier(7)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(testTimeout, func(c *mpi.Comm) error {
		err := ctxs[c.Rank()].AllreduceInt64SumVerified(c, verifier, []int64{1}, make([]int64, 1))
		if err == nil {
			return fmt.Errorf("verified INC without tag tree accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
