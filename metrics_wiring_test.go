package hear

import (
	"strings"
	"testing"

	"hear/internal/metrics"
	"hear/internal/mpi"
)

// TestMetricsWiring drives real allreduces (sync and pipelined) with a
// registry attached and asserts the hear_* namespace moves: path
// counters, plaintext byte accounting, the latency histogram, and the
// engine-phase source all publish through one Gather.
func TestMetricsWiring(t *testing.T) {
	reg := metrics.New()
	w := mpi.NewWorld(2)
	ctxs, err := Init(w, Options{Metrics: reg, PipelineBlockBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(0, func(comm *mpi.Comm) error {
		ctx := ctxs[comm.Rank()]
		small := make([]int64, 16)    // below one block: sync path
		large := make([]int64, 4<<10) // many blocks: pipelined path
		for i := range small {
			small[i] = int64(comm.Rank() + 1)
		}
		if err := ctx.AllreduceInt64Sum(comm, small, small); err != nil {
			return err
		}
		return ctx.AllreduceInt64Sum(comm, large, large)
	})
	if err != nil {
		t.Fatal(err)
	}

	m := reg.Map()
	if got := m[`hear_allreduce_total{path="sync"}`]; got != 2 {
		t.Errorf("sync calls = %g, want 2 (one per rank)", got)
	}
	if got := m[`hear_allreduce_total{path="pipelined"}`]; got != 2 {
		t.Errorf("pipelined calls = %g, want 2", got)
	}
	wantBytes := float64(2 * (16 + 4<<10) * 8)
	if got := m["hear_allreduce_plain_bytes_total"]; got != wantBytes {
		t.Errorf("plain bytes = %g, want %g", got, wantBytes)
	}
	if got := m["hear_allreduce_seconds_count"]; got != 4 {
		t.Errorf("latency observations = %g, want 4", got)
	}
	// The telemetry source publishes engine and mempool state on Gather.
	// (Shard phases appear only for calls big enough to shard, so assert
	// the always-present gauge rather than a machine-dependent phase.)
	if m["hear_engine_workers"] < 1 {
		t.Errorf("engine workers gauge = %g", m["hear_engine_workers"])
	}
	if m["hear_mempool_hits_total"]+m["hear_mempool_misses_total"] == 0 {
		t.Error("mempool stats did not publish")
	}

	// And the same snapshot renders as a Prometheus exposition.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE hear_allreduce_total counter",
		`hear_allreduce_total{path="sync"} 2`,
		"# TYPE hear_allreduce_seconds histogram",
		"hear_engine_workers",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestMetricsVerifiedLadderCounters pins the per-rung attempt counters:
// with a fault injector forcing HoMAC failures, a retrying verified
// allreduce must count one attempt on each rung it visits.
func TestMetricsVerifiedLadderCounters(t *testing.T) {
	reg := metrics.New()
	w := mpi.NewWorld(2)
	ctxs, err := Init(w, Options{Metrics: reg, VerifiedRetry: 2})
	if err != nil {
		t.Fatal(err)
	}
	verifier, err := NewVerifier(12345)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(0, func(comm *mpi.Comm) error {
		ctx := ctxs[comm.Rank()]
		// Corrupt the first reduced ciphertext on every rank, then heal:
		// attempt 1 (host-pipelined) fails verification, attempt 2
		// (host-sync) succeeds.
		failed := false
		ctx.SetFaultInjector(func(c []byte) {
			if !failed {
				failed = true
				c[0] ^= 0xFF
			}
		})
		buf := []int64{int64(comm.Rank() + 1)}
		return ctx.AllreduceInt64SumVerified(comm, verifier, buf, buf)
	})
	if err != nil {
		t.Fatal(err)
	}
	m := reg.Map()
	if got := m[`hear_verified_attempts_total{path="host-pipelined"}`]; got != 2 {
		t.Errorf("host-pipelined attempts = %g, want 2 (one per rank)", got)
	}
	if got := m[`hear_verified_attempts_total{path="host-sync"}`]; got != 2 {
		t.Errorf("host-sync attempts = %g, want 2", got)
	}
	if got := m["hear_verified_retries_total"]; got != 2 {
		t.Errorf("retries = %g, want 2", got)
	}
	if got := m["hear_verified_failures_total"]; got != 0 {
		t.Errorf("failures = %g, want 0 (the ladder recovered)", got)
	}
}
