package hear

import (
	"fmt"
	"math"
	"testing"

	"hear/internal/mpi"
	"hear/internal/prf"
)

func TestFloat64SumAndFixedValidation(t *testing.T) {
	const p = 3
	w, ctxs := initWorld(t, p, Options{})
	err := w.Run(testTimeout, func(c *mpi.Comm) error {
		ctx := ctxs[c.Rank()]
		in := []float64{1.5, -0.5, 1e10}
		out := make([]float64, 3)
		if err := ctx.AllreduceFloat64Sum(c, in, out); err != nil {
			return err
		}
		wants := []float64{4.5, -1.5, 3e10}
		for i, want := range wants {
			if math.Abs(out[i]-want)/math.Abs(want) > 1e-9 {
				return fmt.Errorf("elem %d: %g want %g", i, out[i], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFloat32ProdAndV2(t *testing.T) {
	const p = 2
	w, ctxs := initWorld(t, p, Options{Gamma: 1})
	err := w.Run(testTimeout, func(c *mpi.Comm) error {
		ctx := ctxs[c.Rank()]
		out := make([]float32, 1)
		if err := ctx.AllreduceFloat32Prod(c, []float32{3}, out); err != nil {
			return err
		}
		if math.Abs(float64(out[0])-9) > 1e-3 {
			return fmt.Errorf("prod = %g", out[0])
		}
		if err := ctx.AllreduceFloat32SumV2(c, []float32{1.25}, out); err != nil {
			return err
		}
		if math.Abs(float64(out[0])-2.5) > 1e-3 {
			return fmt.Errorf("sum-v2 = %g", out[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSchemeKindsAllConstructible(t *testing.T) {
	_, ctxs := initWorld(t, 2, Options{Gamma: 2})
	kinds := []SchemeKind{
		Int32Sum, Int64Sum, Int64Prod, Int64Xor,
		Float32Sum, Float32Prod, Float32SumV2,
		Float64Sum, Float64Prod, FixedSum, FixedProd,
	}
	for _, k := range kinds {
		s, err := ctxs[0].Scheme(k)
		if err != nil {
			t.Errorf("%s: %v", k, err)
			continue
		}
		if s.PlainSize() <= 0 || s.CipherSize() <= 0 {
			t.Errorf("%s: degenerate sizes", k)
		}
		// Cached: second lookup returns the same instance.
		s2, err := ctxs[0].Scheme(k)
		if err != nil || s2 != s {
			t.Errorf("%s: not cached", k)
		}
	}
}

func TestRankSizeAccessors(t *testing.T) {
	_, ctxs := initWorld(t, 3, Options{})
	for i, ctx := range ctxs {
		if ctx.Rank() != i || ctx.Size() != 3 {
			t.Errorf("ctx %d: Rank=%d Size=%d", i, ctx.Rank(), ctx.Size())
		}
	}
}

func TestAlternativePRFBackendEndToEnd(t *testing.T) {
	// The whole pipeline on the ChaCha20 backend: §8's extensibility at the
	// public-API level.
	const p = 3
	w, ctxs := initWorld(t, p, Options{PRFBackend: prf.BackendChaCha20})
	err := w.Run(testTimeout, func(c *mpi.Comm) error {
		out := make([]int64, 1)
		if err := ctxs[c.Rank()].AllreduceInt64Sum(c, []int64{int64(c.Rank() + 1)}, out); err != nil {
			return err
		}
		if out[0] != 6 {
			return fmt.Errorf("chacha sum = %d", out[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInitOverCommSplitWorldsDisagreeOnKeys(t *testing.T) {
	// Contexts from different communicators must encrypt identical
	// plaintexts differently (fresh k_c/k_e per communicator).
	const p = 2
	w := mpi.NewWorld(p)
	err := w.Run(testTimeout, func(c *mpi.Comm) error {
		a, err := InitOverComm(c, Options{}, newRankReader(c.Rank()))
		if err != nil {
			return err
		}
		b, err := InitOverComm(c, Options{}, newRankReader(c.Rank()+50))
		if err != nil {
			return err
		}
		sa, err := a.Scheme(Int64Sum)
		if err != nil {
			return err
		}
		sb, err := b.Scheme(Int64Sum)
		if err != nil {
			return err
		}
		plain := marshal64([]int64{42})
		ca := make([]byte, 8)
		cb := make([]byte, 8)
		a.st.Advance()
		b.st.Advance()
		if err := sa.Encrypt(a.st, plain, ca, 1); err != nil {
			return err
		}
		if err := sb.Encrypt(b.st, plain, cb, 1); err != nil {
			return err
		}
		if string(ca) == string(cb) {
			return fmt.Errorf("two communicators share ciphertext for the same plaintext")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
