package hear

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"hear/internal/adversary"
	"hear/internal/inc"
	"hear/internal/mpi"
)

const testTimeout = 60 * time.Second

// seqReader is a deterministic entropy source for reproducible tests.
type seqReader struct{ next byte }

func (r *seqReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = r.next*89 + 13
		r.next++
	}
	return len(p), nil
}

func initWorld(t testing.TB, size int, opts Options) (*mpi.World, []*Context) {
	t.Helper()
	if opts.Rand == nil {
		opts.Rand = &seqReader{next: 1}
	}
	w := mpi.NewWorld(size)
	ctxs, err := Init(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	return w, ctxs
}

func TestInt64SumAcrossWorld(t *testing.T) {
	for _, p := range []int{1, 2, 5, 8} {
		w, ctxs := initWorld(t, p, Options{})
		const n = 200
		err := w.Run(testTimeout, func(c *mpi.Comm) error {
			rng := rand.New(rand.NewSource(int64(c.Rank())))
			data := make([]int64, n)
			for j := range data {
				data[j] = int64(rng.Uint64())
			}
			out := make([]int64, n)
			if err := ctxs[c.Rank()].AllreduceInt64Sum(c, data, out); err != nil {
				return err
			}
			// Recompute expected on every rank (wrapping).
			want := make([]int64, n)
			for r := 0; r < p; r++ {
				rr := rand.New(rand.NewSource(int64(r)))
				for j := range want {
					want[j] += int64(rr.Uint64())
				}
			}
			for j := range want {
				if out[j] != want[j] {
					return fmt.Errorf("rank %d elem %d: got %d, want %d", c.Rank(), j, out[j], want[j])
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestInt32SumExact(t *testing.T) {
	w, ctxs := initWorld(t, 4, Options{})
	err := w.Run(testTimeout, func(c *mpi.Comm) error {
		data := []int32{int32(c.Rank() + 1), -int32(c.Rank() + 1), math.MaxInt32}
		out := make([]int32, 3)
		if err := ctxs[c.Rank()].AllreduceInt32Sum(c, data, out); err != nil {
			return err
		}
		if out[0] != 10 || out[1] != -10 {
			return fmt.Errorf("got %v", out)
		}
		// 4 × MaxInt32 wraps mod 2^32.
		four := uint32(4)
		want := int32(uint32(math.MaxInt32) * four)
		if out[2] != want {
			return fmt.Errorf("wrap: got %d, want %d", out[2], want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUint64ProdAndXor(t *testing.T) {
	w, ctxs := initWorld(t, 3, Options{})
	err := w.Run(testTimeout, func(c *mpi.Comm) error {
		ctx := ctxs[c.Rank()]
		prodIn := []uint64{uint64(c.Rank()*2 + 3)} // 3, 5, 7
		prodOut := make([]uint64, 1)
		if err := ctx.AllreduceUint64Prod(c, prodIn, prodOut); err != nil {
			return err
		}
		if prodOut[0] != 105 {
			return fmt.Errorf("prod = %d, want 105", prodOut[0])
		}
		xorIn := []uint64{uint64(0xF0F << (4 * c.Rank()))}
		xorOut := make([]uint64, 1)
		if err := ctx.AllreduceUint64Xor(c, xorIn, xorOut); err != nil {
			return err
		}
		want := uint64(0xF0F) ^ (0xF0F << 4) ^ (0xF0F << 8)
		if xorOut[0] != want {
			return fmt.Errorf("xor = %#x, want %#x", xorOut[0], want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFloat32SumAccuracy(t *testing.T) {
	for _, gamma := range []uint{0, 2} {
		w, ctxs := initWorld(t, 6, Options{Gamma: gamma})
		const n = 64
		err := w.Run(testTimeout, func(c *mpi.Comm) error {
			rng := rand.New(rand.NewSource(int64(c.Rank() + 100)))
			data := make([]float32, n)
			for j := range data {
				data[j] = rng.Float32() + 0.25
			}
			out := make([]float32, n)
			if err := ctxs[c.Rank()].AllreduceFloat32Sum(c, data, out); err != nil {
				return err
			}
			want := make([]float64, n)
			for r := 0; r < 6; r++ {
				rr := rand.New(rand.NewSource(int64(r + 100)))
				for j := range want {
					want[j] += float64(rr.Float32() + 0.25)
				}
			}
			tol := 64 * math.Ldexp(1, -21+int(gamma))
			for j := range want {
				rel := math.Abs(float64(out[j])-want[j]) / want[j]
				if rel > tol {
					return fmt.Errorf("γ=%d elem %d: got %g, want %g (rel %g)", gamma, j, out[j], want[j], rel)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestFloat64ProdAndSumV2(t *testing.T) {
	w, ctxs := initWorld(t, 4, Options{})
	err := w.Run(testTimeout, func(c *mpi.Comm) error {
		ctx := ctxs[c.Rank()]
		in := []float64{1.5, 0.75}
		out := make([]float64, 2)
		if err := ctx.AllreduceFloat64Prod(c, in, out); err != nil {
			return err
		}
		if math.Abs(out[0]-5.0625) > 1e-12 || math.Abs(out[1]-0.31640625) > 1e-12 {
			return fmt.Errorf("prod = %v", out)
		}
		in2 := []float64{0.5, -0.25}
		out2 := make([]float64, 2)
		if err := ctx.AllreduceFloat64SumV2(c, in2, out2); err != nil {
			return err
		}
		if math.Abs(out2[0]-2.0) > 1e-10 || math.Abs(out2[1]+1.0) > 1e-10 {
			return fmt.Errorf("sum-v2 = %v", out2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFixedSumAndProd(t *testing.T) {
	w, ctxs := initWorld(t, 3, Options{FixedPointFrac: 16})
	err := w.Run(testTimeout, func(c *mpi.Comm) error {
		ctx := ctxs[c.Rank()]
		in := []float64{1.25}
		out := make([]float64, 1)
		if err := ctx.AllreduceFixedSum(c, in, out); err != nil {
			return err
		}
		if out[0] != 3.75 {
			return fmt.Errorf("fixed sum = %g", out[0])
		}
		in2 := []float64{2.0}
		out2 := make([]float64, 1)
		if err := ctx.AllreduceFixedProd(c, in2, out2); err != nil {
			return err
		}
		if out2[0] != 8.0 {
			return fmt.Errorf("fixed prod = %g", out2[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBoolOrAnd(t *testing.T) {
	w, ctxs := initWorld(t, 4, Options{})
	err := w.Run(testTimeout, func(c *mpi.Comm) error {
		ctx := ctxs[c.Rank()]
		// elem0: all true; elem1: only rank 2 true; elem2: all false.
		in := []bool{true, c.Rank() == 2, false}
		orOut := make([]bool, 3)
		if err := ctx.AllreduceBoolOr(c, in, orOut); err != nil {
			return err
		}
		if !orOut[0] || !orOut[1] || orOut[2] {
			return fmt.Errorf("OR = %v", orOut)
		}
		andOut := make([]bool, 3)
		if err := ctx.AllreduceBoolAnd(c, in, andOut); err != nil {
			return err
		}
		if !andOut[0] || andOut[1] || andOut[2] {
			return fmt.Errorf("AND = %v", andOut)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPipelinedMatchesBlocking(t *testing.T) {
	const p, n = 4, 10000
	wPlain, plainCtxs := initWorld(t, p, Options{})
	wPipe, pipeCtxs := initWorld(t, p, Options{PipelineBlockBytes: 4096})
	results := make([][]int64, 2)
	for i, cfg := range []struct {
		w    *mpi.World
		ctxs []*Context
	}{{wPlain, plainCtxs}, {wPipe, pipeCtxs}} {
		out := make([]int64, n)
		err := cfg.w.Run(testTimeout, func(c *mpi.Comm) error {
			data := make([]int64, n)
			for j := range data {
				data[j] = int64(c.Rank()*1000 + j)
			}
			res := make([]int64, n)
			if err := cfg.ctxs[c.Rank()].AllreduceInt64Sum(c, data, res); err != nil {
				return err
			}
			if c.Rank() == 0 {
				copy(out, res)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		results[i] = out
	}
	for j := range results[0] {
		if results[0][j] != results[1][j] {
			t.Fatalf("elem %d: blocking %d != pipelined %d", j, results[0][j], results[1][j])
		}
	}
}

func TestPipelinedFloatSum(t *testing.T) {
	const p, n = 3, 5000
	w, ctxs := initWorld(t, p, Options{PipelineBlockBytes: 2048, Gamma: 2})
	err := w.Run(testTimeout, func(c *mpi.Comm) error {
		data := make([]float32, n)
		for j := range data {
			data[j] = float32(j%100) + 1.5
		}
		out := make([]float32, n)
		if err := ctxs[c.Rank()].AllreduceFloat32Sum(c, data, out); err != nil {
			return err
		}
		for j := range out {
			want := float32(p) * (float32(j%100) + 1.5)
			if math.Abs(float64(out[j]-want))/float64(want) > 1e-5 {
				return fmt.Errorf("elem %d: got %g, want %g", j, out[j], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestINCPath(t *testing.T) {
	const p = 8
	sumFold := func(dst, src []byte) {
		for o := 0; o+8 <= len(dst); o += 8 {
			a := uint64(0)
			b := uint64(0)
			for i := 0; i < 8; i++ {
				a |= uint64(dst[o+i]) << (8 * i)
				b |= uint64(src[o+i]) << (8 * i)
			}
			s := a + b
			for i := 0; i < 8; i++ {
				dst[o+i] = byte(s >> (8 * i))
			}
		}
	}
	tree, err := inc.NewTree(p, 4, sumFold)
	if err != nil {
		t.Fatal(err)
	}
	tap := &captureTap{}
	tree.SetTap(tap)
	w, ctxs := initWorld(t, p, Options{INC: tree})
	err = w.Run(testTimeout, func(c *mpi.Comm) error {
		data := []int64{int64(c.Rank() + 1), 42}
		out := make([]int64, 2)
		if err := ctxs[c.Rank()].AllreduceInt64Sum(c, data, out); err != nil {
			return err
		}
		if out[0] != p*(p+1)/2 || out[1] != 42*p {
			return fmt.Errorf("INC result %v", out)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The tap captured ciphertext only: the plaintext constant 42 must not
	// be recoverable from any frame at its lane position.
	if tap.sawPlain(42) {
		t.Error("plaintext lane visible on the INC tap")
	}
}

type captureTap struct {
	mu     sync.Mutex
	frames [][]byte
}

func (c *captureTap) Observe(switchID, from int, up bool, frame []byte) {
	cp := make([]byte, len(frame))
	copy(cp, frame)
	c.mu.Lock()
	c.frames = append(c.frames, cp)
	c.mu.Unlock()
}

func (c *captureTap) sawPlain(v uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, f := range c.frames {
		if len(f) >= 16 {
			lane := uint64(0)
			for i := 0; i < 8; i++ {
				lane |= uint64(f[8+i]) << (8 * i)
			}
			if lane == v {
				return true
			}
		}
	}
	return false
}

func TestVerifiedSumDetectsHonestAndTampered(t *testing.T) {
	const p = 4
	w, ctxs := initWorld(t, p, Options{})
	verifier, err := NewVerifier(0x1234567)
	if err != nil {
		t.Fatal(err)
	}
	err = w.Run(testTimeout, func(c *mpi.Comm) error {
		data := []int64{int64(c.Rank()), 7, -1}
		out := make([]int64, 3)
		if err := ctxs[c.Rank()].AllreduceInt64SumVerified(c, verifier, data, out); err != nil {
			return err
		}
		if out[0] != 6 || out[1] != 28 || out[2] != -4 {
			return fmt.Errorf("verified sum = %v", out)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestContextCommMismatch(t *testing.T) {
	w, ctxs := initWorld(t, 2, Options{})
	err := w.Run(testTimeout, func(c *mpi.Comm) error {
		wrong := ctxs[(c.Rank()+1)%2]
		err := wrong.AllreduceInt64Sum(c, []int64{1}, make([]int64, 1))
		if err == nil {
			return fmt.Errorf("mismatched context accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestArgumentValidation(t *testing.T) {
	w, ctxs := initWorld(t, 2, Options{})
	err := w.Run(testTimeout, func(c *mpi.Comm) error {
		ctx := ctxs[c.Rank()]
		if err := ctx.AllreduceInt64Sum(c, []int64{1, 2}, make([]int64, 1)); err == nil {
			return fmt.Errorf("short recv accepted")
		}
		if err := ctx.AllreduceInt64Sum(c, nil, nil); err == nil {
			return fmt.Errorf("empty send accepted")
		}
		if err := ctx.AllreduceFloat32Sum(c, []float32{float32(math.NaN())}, make([]float32, 1)); err == nil {
			return fmt.Errorf("NaN accepted")
		}
		if _, err := ctx.Scheme("nope"); err == nil {
			return fmt.Errorf("unknown scheme kind accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInitErrors(t *testing.T) {
	w := mpi.NewWorld(2)
	if _, err := Init(w, Options{PRFBackend: "bogus"}); err == nil {
		t.Error("bogus PRF backend accepted")
	}
	if _, err := Init(w, Options{PipelineBlockBytes: -1, Rand: &seqReader{}}); err == nil {
		// negative block just disables pipelining? It must not silently
		// corrupt; Init should reject it.
		t.Error("negative pipeline block accepted")
	}
}

// Ciphertext on the wire is uniform even for constant plaintext — the
// end-to-end confidentiality property, measured at the public API level.
func TestWireUniformityEndToEnd(t *testing.T) {
	const p = 2
	w, ctxs := initWorld(t, p, Options{})
	var captured []byte
	tree, err := inc.NewTree(p, 2, func(dst, src []byte) {
		for i := range dst {
			dst[i] += src[i] // lane-wise garbage fold is fine; we only capture
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	tap := &captureTap{}
	tree.SetTap(tap)
	_ = w
	// Capture across several calls directly at the scheme level via INC.
	w2, ctxs2 := initWorld(t, p, Options{INC: tree})
	_ = ctxs
	err = w2.Run(testTimeout, func(c *mpi.Comm) error {
		data := make([]int64, 2048) // all zeros: maximally structured plaintext
		out := make([]int64, len(data))
		for call := 0; call < 2; call++ {
			if err := ctxs2[c.Rank()].AllreduceInt64Sum(c, data, out); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	tap.mu.Lock()
	for _, f := range tap.frames {
		captured = append(captured, f...)
	}
	tap.mu.Unlock()
	chi2, err := adversary.ChiSquareBytes(captured)
	if err != nil {
		t.Fatal(err)
	}
	// Up-frames from hosts are uniform; aggregated/down frames are sums of
	// uniform values (still uniform mod 2^64). Allow a wider 8σ band since
	// the capture mixes frame kinds.
	if chi2 > 255+8*math.Sqrt(2*255) {
		t.Errorf("χ² = %.1f: wire traffic is not uniform", chi2)
	}
}
