package hear

import (
	"hear/internal/engine"
	"hear/internal/metrics"
)

// ctxMetrics bundles the instruments a Context touches on its data paths.
// Every Context holds one; with Options.Metrics unset the instruments are
// nil and their methods no-op, so the call sites stay unconditional and
// the disabled cost is a dead branch per operation.
type ctxMetrics struct {
	syncCalls      *metrics.Counter // hear_allreduce_total{path="sync"}
	pipelinedCalls *metrics.Counter // hear_allreduce_total{path="pipelined"}
	incCalls       *metrics.Counter // hear_allreduce_total{path="inc"}
	plainBytes     *metrics.Counter // hear_allreduce_plain_bytes_total
	callSeconds    *metrics.Histogram

	// One attempt counter per rung of the verified-retry ladder, indexed
	// by verifyPath (vpINC, vpHostPipelined, vpHostSync).
	verifiedAttempts [3]*metrics.Counter
	verifiedRetries  *metrics.Counter
	verifiedFailures *metrics.Counter

	sealOps        *metrics.Counter // hear_gateway_seal_total
	openOps        *metrics.Counter // hear_gateway_open_total
	verifyFailures *metrics.Counter // hear_gateway_verify_failures_total
}

// newCtxMetrics registers the context instruments on r. Instruments are
// interned by (name, labels), so the contexts of one Init world share
// counters — the registry reports communicator-wide totals, matching the
// shared cipher engine.
func newCtxMetrics(r *metrics.Registry) *ctxMetrics {
	m := &ctxMetrics{
		syncCalls:      r.Counter("hear_allreduce_total", metrics.Labels{"path": "sync"}),
		pipelinedCalls: r.Counter("hear_allreduce_total", metrics.Labels{"path": "pipelined"}),
		incCalls:       r.Counter("hear_allreduce_total", metrics.Labels{"path": "inc"}),
		plainBytes:     r.Counter("hear_allreduce_plain_bytes_total", nil),
		callSeconds:    r.Histogram("hear_allreduce_seconds", nil, metrics.DurationBuckets),

		verifiedRetries:  r.Counter("hear_verified_retries_total", nil),
		verifiedFailures: r.Counter("hear_verified_failures_total", nil),

		sealOps:        r.Counter("hear_gateway_seal_total", nil),
		openOps:        r.Counter("hear_gateway_open_total", nil),
		verifyFailures: r.Counter("hear_gateway_verify_failures_total", nil),
	}
	for p := vpINC; p <= vpHostSync; p++ {
		m.verifiedAttempts[p] = r.Counter("hear_verified_attempts_total",
			metrics.Labels{"path": p.String()})
	}
	return m
}

// registerTelemetry publishes the externally owned stats of one
// communicator — the cipher engine's shard phases, each context's noise
// prefetcher and pipeline mempool — as a snapshot-time Source, so the
// subsystems keep their own accounting and the registry reads it on
// Gather instead of double-counting. A nil registry is a no-op.
func registerTelemetry(r *metrics.Registry, eng *engine.Engine, ctxs []*Context) {
	if r == nil {
		return
	}
	r.RegisterSource(func(emit func(metrics.Sample)) {
		emit(metrics.Sample{Name: "hear_engine_workers", Kind: metrics.KindGauge,
			Value: float64(eng.Workers())})
		phases := eng.Phases().Snapshot()
		for _, p := range phases.Phases() {
			labels := metrics.Labels{"phase": p}
			emit(metrics.Sample{Name: "hear_engine_phase_seconds_total", Labels: labels,
				Kind: metrics.KindCounter, Value: phases.Sum(p).Seconds()})
			emit(metrics.Sample{Name: "hear_engine_phase_ops_total", Labels: labels,
				Kind: metrics.KindCounter, Value: float64(phases.Count(p))})
		}
		for _, p := range phases.BytePhases() {
			emit(metrics.Sample{Name: "hear_engine_phase_bytes_total",
				Labels: metrics.Labels{"phase": p},
				Kind:   metrics.KindCounter, Value: float64(phases.Bytes(p))})
		}

		// Noise and mempool counters summed across the world's contexts:
		// the registry namespace is per communicator, like the engine.
		var hit, miss, gen, planes, recycled uint64
		var poolHits, poolMisses, poolWaits uint64
		var poolAllocated int
		for _, c := range ctxs {
			if c.prefetch != nil {
				s := c.prefetch.Stats()
				hit += s.HitBytes
				miss += s.MissBytes
				gen += s.GenBytes
				planes += s.GenPlanes
				recycled += s.RecycledPlanes
			}
			if c.pool != nil {
				h, m, a := c.pool.Stats()
				poolHits += h
				poolMisses += m
				poolAllocated += a
				poolWaits += c.pool.Waits()
			}
		}
		counter := func(name string, v uint64) {
			emit(metrics.Sample{Name: name, Kind: metrics.KindCounter, Value: float64(v)})
		}
		counter("hear_noise_prefetch_hit_bytes_total", hit)
		counter("hear_noise_prefetch_miss_bytes_total", miss)
		counter("hear_noise_prefetch_gen_bytes_total", gen)
		counter("hear_noise_prefetch_gen_planes_total", planes)
		counter("hear_noise_prefetch_recycled_planes_total", recycled)
		counter("hear_mempool_hits_total", poolHits)
		counter("hear_mempool_misses_total", poolMisses)
		counter("hear_mempool_waits_total", poolWaits)
		emit(metrics.Sample{Name: "hear_mempool_allocated_blocks", Kind: metrics.KindGauge,
			Value: float64(poolAllocated)})
	})
}
