package hear

// Encrypted MPI_Reduce. The paper singles out "Allreduce, together with
// the related Reduce collective" as the most commonly invoked operations;
// Reduce rides the same schemes — every rank encrypts, the reduction runs
// over ciphertexts (host tree or INC), and only the root decrypts. The
// telescoped noise F(k_s_0 + k_c + j) is removable by any rank holding
// rank 0's key, which per §5's key generation is every rank — so the root
// may be arbitrary.

import (
	"encoding/binary"
	"fmt"
	"math"

	"hear/internal/core"
	"hear/internal/mpi"
)

// reduce is the common encrypted Reduce path: recvPlain is written on the
// root only (and may be nil elsewhere).
func (c *Context) reduce(comm *mpi.Comm, s core.Scheme, root int, plain, recvPlain []byte, n int) error {
	if err := c.checkComm(comm); err != nil {
		return err
	}
	if root < 0 || root >= c.size {
		return fmt.Errorf("hear: reduce root %d outside communicator", root)
	}
	if n <= 0 || len(plain) < n*s.PlainSize() {
		return fmt.Errorf("hear: reduce: bad count %d or buffer %d B", n, len(plain))
	}
	if c.rank == root && len(recvPlain) < n*s.PlainSize() {
		return fmt.Errorf("hear: reduce: root receive buffer %d B < %d", len(recvPlain), n*s.PlainSize())
	}
	c.st.Advance()
	cipher := make([]byte, n*s.CipherSize())
	if err := c.eng.Encrypt(s, c.st, plain, cipher, n); err != nil {
		return err
	}
	op := mpi.OpFrom("hear/"+s.Name(), c.eng.ReduceFunc(s))
	ct := mpi.CipherType(s.CipherSize())
	var out []byte
	if c.rank == root {
		out = make([]byte, n*s.CipherSize())
	}
	if err := comm.Reduce(root, cipher, out, n, ct, op); err != nil {
		return fmt.Errorf("hear: reduce: %w", err)
	}
	if c.rank != root {
		return nil
	}
	return c.eng.Decrypt(s, c.st, out, recvPlain, n)
}

// ReduceInt64Sum reduces the element-wise wrapping sum to root; recv is
// written on root only (nil elsewhere is fine).
func (c *Context) ReduceInt64Sum(comm *mpi.Comm, root int, send []int64, recv []int64) error {
	s, err := c.intSum(64)
	if err != nil {
		return err
	}
	buf := marshal64(send)
	var out []byte
	if c.rank == root {
		if len(recv) < len(send) {
			return fmt.Errorf("hear: recv %d < send %d", len(recv), len(send))
		}
		out = make([]byte, len(buf))
	}
	if err := c.reduce(comm, s, root, buf, out, len(send)); err != nil {
		return err
	}
	if c.rank == root {
		unmarshal64(out, recv[:len(send)])
	}
	return nil
}

// ReduceFloat32Sum reduces the element-wise float sum (v1 scheme) to root.
func (c *Context) ReduceFloat32Sum(comm *mpi.Comm, root int, send []float32, recv []float32) error {
	s, err := c.Scheme(Float32Sum)
	if err != nil {
		return err
	}
	buf := make([]byte, 4*len(send))
	for i, v := range send {
		binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(v))
	}
	var out []byte
	if c.rank == root {
		if len(recv) < len(send) {
			return fmt.Errorf("hear: recv %d < send %d", len(recv), len(send))
		}
		out = make([]byte, len(buf))
	}
	if err := c.reduce(comm, s, root, buf, out, len(send)); err != nil {
		return err
	}
	if c.rank == root {
		for i := range send {
			recv[i] = math.Float32frombits(binary.LittleEndian.Uint32(out[i*4:]))
		}
	}
	return nil
}

// ReduceUint64Prod reduces the element-wise wrapping product to root.
func (c *Context) ReduceUint64Prod(comm *mpi.Comm, root int, send []uint64, recv []uint64) error {
	s, err := c.intProd(64)
	if err != nil {
		return err
	}
	buf := make([]byte, 8*len(send))
	for i, v := range send {
		binary.LittleEndian.PutUint64(buf[i*8:], v)
	}
	var out []byte
	if c.rank == root {
		if len(recv) < len(send) {
			return fmt.Errorf("hear: recv %d < send %d", len(recv), len(send))
		}
		out = make([]byte, len(buf))
	}
	if err := c.reduce(comm, s, root, buf, out, len(send)); err != nil {
		return err
	}
	if c.rank == root {
		for i := range send {
			recv[i] = binary.LittleEndian.Uint64(out[i*8:])
		}
	}
	return nil
}
