package hear

// One testing.B benchmark per table/figure of the paper's evaluation, so
// `go test -bench=. -benchmem` regenerates the measured quantities in
// benchmark form. cmd/hearbench renders the same experiments as the
// paper's tables; these benches are the CI-friendly counterparts.

import (
	"testing"
	"time"

	"hear/internal/adversary"
	"hear/internal/baseline"
	"hear/internal/chaos"
	"hear/internal/core"
	"hear/internal/dnn"
	"hear/internal/engine"
	"hear/internal/hfp"
	"hear/internal/homac"
	"hear/internal/keys"
	"hear/internal/mpi"
	"hear/internal/netsim"
	"hear/internal/prf"
	"hear/internal/refmath"
	"hear/internal/ring"
)

func benchKeys(b *testing.B, backend string, size int) []*keys.RankState {
	b.Helper()
	states, err := keys.Generate(size, keys.Config{Backend: backend, Rand: &seqReader{next: 9}})
	if err != nil {
		b.Fatal(err)
	}
	return states
}

// --- Table 1: PHE baselines vs HEAR (per-element encrypt cost) ---

func BenchmarkTable1PaillierEncrypt(b *testing.B) {
	p, err := baseline.NewPaillier(256)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Encrypt(uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1RSAEncrypt(b *testing.B) {
	r, err := baseline.NewRSA(256)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Encrypt(uint64(i) + 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1ElGamalEncrypt(b *testing.B) {
	e, err := baseline.NewElGamal(512)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Encrypt(uint64(i) + 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1HEARIntSumEncryptPerElem(b *testing.B) {
	states := benchKeys(b, prf.BackendAESFast, 2)
	s, err := core.NewIntSum(64)
	if err != nil {
		b.Fatal(err)
	}
	const n = 4096
	plain := make([]byte, n*8)
	cipher := make([]byte, n*8)
	states[0].Advance()
	b.ResetTimer()
	for i := 0; i < b.N; i += n {
		if err := s.Encrypt(states[0], plain, cipher, n); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 3: HFP precision-loss kernels ---

func BenchmarkFig3HFPAddFP32(b *testing.B) {
	f := hfp.FP32.ForAdd(2)
	x, _ := f.Encode(1.375)
	y, _ := f.Encode(2.625)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Add(x, y)
	}
}

func BenchmarkFig3HFPMulFP64(b *testing.B) {
	f := hfp.FP64.ForMul(0)
	x, _ := f.Encode(1.375)
	y, _ := f.Encode(0.99)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Mul(x, y)
	}
}

func BenchmarkFig3ReferenceSum(b *testing.B) {
	acc := refmath.NewSum()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc.Add(1.0 / float64(i+1))
	}
}

// --- Figure 4: 16 B critical path ---

func benchmarkFig4(b *testing.B, backend string) {
	states := benchKeys(b, backend, 2)
	w := mpi.NewWorld(2)
	b.ResetTimer()
	err := w.Run(0, func(c *mpi.Comm) error {
		s, err := core.NewIntSum(32)
		if err != nil {
			return err
		}
		op := mpi.OpFrom("bench", s.Reduce)
		st := states[c.Rank()]
		plain := make([]byte, 16)
		cipher := make([]byte, 16)
		for i := 0; i < b.N; i++ {
			st.Advance()
			if err := s.Encrypt(st, plain, cipher, 4); err != nil {
				return err
			}
			if err := c.Allreduce(cipher, cipher, 4, mpi.Int32, op); err != nil {
				return err
			}
			if err := s.Decrypt(st, cipher, plain, 4); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkFig4Allreduce16BAES(b *testing.B)  { benchmarkFig4(b, prf.BackendAESFast) }
func BenchmarkFig4Allreduce16BSHA1(b *testing.B) { benchmarkFig4(b, prf.BackendSHA1) }

func BenchmarkFig4Allreduce16BNative(b *testing.B) {
	w := mpi.NewWorld(2)
	b.ResetTimer()
	err := w.Run(0, func(c *mpi.Comm) error {
		buf := make([]byte, 16)
		for i := 0; i < b.N; i++ {
			if err := c.Allreduce(buf, buf, 4, mpi.Int32, mpi.SumInt32); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// --- Figure 5: enc/dec throughput per backend ---

func benchmarkFig5Encrypt(b *testing.B, backend string, mk func() (core.Scheme, error), bytesPerElem int) {
	states := benchKeys(b, backend, 2)
	s, err := mk()
	if err != nil {
		b.Fatal(err)
	}
	n := (256 << 10) / bytesPerElem
	plain := make([]byte, n*s.PlainSize())
	cipher := make([]byte, n*s.CipherSize())
	states[0].Advance()
	b.SetBytes(int64(n * s.PlainSize()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Encrypt(states[0], plain, cipher, n); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5IntSumEncryptAES(b *testing.B) {
	benchmarkFig5Encrypt(b, prf.BackendAESFast, func() (core.Scheme, error) { return core.NewIntSum(64) }, 8)
}

func BenchmarkFig5IntSumEncryptSHA1(b *testing.B) {
	benchmarkFig5Encrypt(b, prf.BackendSHA1, func() (core.Scheme, error) { return core.NewIntSum(64) }, 8)
}

func BenchmarkFig5FloatSumEncryptAES(b *testing.B) {
	benchmarkFig5Encrypt(b, prf.BackendAESFast, func() (core.Scheme, error) { return core.NewFloatSum(hfp.FP32, 0) }, 4)
}

func BenchmarkFig5IntProdEncryptAES(b *testing.B) {
	benchmarkFig5Encrypt(b, prf.BackendAESFast, func() (core.Scheme, error) { return core.NewIntProd(64) }, 8)
}

func BenchmarkFig5IntXorEncryptAES(b *testing.B) {
	benchmarkFig5Encrypt(b, prf.BackendAESFast, func() (core.Scheme, error) { return core.NewIntXor(64) }, 8)
}

// benchmarkFig5EngineEncDec measures the multicore cipher engine's
// encrypt+decrypt throughput on a 4 MiB message. The engine is sized to
// GOMAXPROCS, which the -cpu flag controls, so
//
//	go test -bench 'Fig5.*Engine' -cpu 1,2,4,8
//
// produces the parallel-scaling curve; the sharded output is bit-identical
// to the serial path (internal/engine's cross-check tests), so this is
// pure speedup, not a relaxed code path.
func benchmarkFig5EngineEncDec(b *testing.B, mk func() (core.Scheme, error)) {
	states := benchKeys(b, prf.BackendAESFast, 2)
	s, err := mk()
	if err != nil {
		b.Fatal(err)
	}
	eng := engine.New(0)
	defer eng.Close()
	n := (4 << 20) / s.PlainSize()
	plain := make([]byte, n*s.PlainSize())
	cipher := make([]byte, n*s.CipherSize())
	states[0].Advance()
	b.SetBytes(int64(2 * n * s.PlainSize())) // one encrypt + one decrypt pass
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := eng.Encrypt(s, states[0], plain, cipher, n); err != nil {
			b.Fatal(err)
		}
		if err := eng.Decrypt(s, states[0], cipher, plain, n); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5IntSumEngineEncDec(b *testing.B) {
	benchmarkFig5EngineEncDec(b, func() (core.Scheme, error) { return core.NewIntSum(64) })
}

func BenchmarkFig5FloatSumEngineEncDec(b *testing.B) {
	benchmarkFig5EngineEncDec(b, func() (core.Scheme, error) { return core.NewFloatSum(hfp.FP32, 0) })
}

// --- Figure 6: pipelined vs sync data path ---

func benchmarkFig6(b *testing.B, blockBytes int) {
	const p = 2
	const msg = 1 << 20
	w := mpi.NewWorld(p)
	ctxs, err := Init(w, Options{PipelineBlockBytes: blockBytes, Rand: &seqReader{next: 7}})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(msg)
	b.ResetTimer()
	err = w.Run(0, func(c *mpi.Comm) error {
		ctx := ctxs[c.Rank()]
		s, err := ctx.Scheme(Int32Sum)
		if err != nil {
			return err
		}
		buf := make([]byte, msg)
		for i := 0; i < b.N; i++ {
			if err := ctx.AllreduceRaw(c, s, buf, msg/4); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkFig6Sync1MiB(b *testing.B)              { benchmarkFig6(b, 0) }
func BenchmarkFig6Pipelined64KiBBlocks(b *testing.B)  { benchmarkFig6(b, 64<<10) }
func BenchmarkFig6Pipelined256KiBBlocks(b *testing.B) { benchmarkFig6(b, 256<<10) }

// --- Figures 7/8: the scaling model (cheap; measures model evaluation) ---

func BenchmarkFig7ScalingModel(b *testing.B) {
	p := netsim.AriesDefaults()
	h := &netsim.HEARCosts{EncRate: 9e9, DecRate: 18e9, PerCallLatency: 4e-7, Inflation: 1, PipelineEfficiency: 0.85}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pt := range netsim.PaperPoints() {
			if _, _, err := p.ThroughputPerNode(h, pt.Ranks, pt.Nodes, 16<<20); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFig8LatencyModel(b *testing.B) {
	p := netsim.AriesDefaults()
	h := &netsim.HEARCosts{EncRate: 9e9, DecRate: 18e9, PerCallLatency: 4e-7, Inflation: 1, PipelineEfficiency: 0.85}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pt := range netsim.PaperPoints() {
			if _, _, err := p.Latency(h, pt.Ranks, pt.Nodes, 16); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Figure 9: DNN proxy replay ---

func BenchmarkFig9DNNProxies(b *testing.B) {
	p := netsim.AriesDefaults()
	h := &netsim.HEARCosts{EncRate: 0.4e9, DecRate: 0.4e9, PerCallLatency: 5e-7, Inflation: 1, PipelineEfficiency: 0.85}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dnn.SimulateAll(p, h); err != nil {
			b.Fatal(err)
		}
	}
}

// --- §5.1.4 ablation: canceling (Θ(1)) vs naive (Θ(P)) decryption ---

func benchmarkDecryptScaling(b *testing.B, p int, naive bool) {
	states := benchKeys(b, prf.BackendAESFast, p)
	const n = 8192
	var enc, dec core.Scheme
	if naive {
		starting := make([]uint64, p)
		for i, st := range states {
			starting[i] = st.SelfKey
		}
		s, err := core.NewNaiveIntSum(64, starting)
		if err != nil {
			b.Fatal(err)
		}
		enc, dec = s, s
	} else {
		s, err := core.NewIntSum(64)
		if err != nil {
			b.Fatal(err)
		}
		enc, dec = s, s
	}
	plain := make([]byte, n*8)
	cipher := make([]byte, n*8)
	states[0].Advance()
	if err := enc.Encrypt(states[0], plain, cipher, n); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(n * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dec.Decrypt(states[0], cipher, plain, n); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationDecryptCancelingP4(b *testing.B)  { benchmarkDecryptScaling(b, 4, false) }
func BenchmarkAblationDecryptCancelingP64(b *testing.B) { benchmarkDecryptScaling(b, 64, false) }
func BenchmarkAblationDecryptNaiveP4(b *testing.B)      { benchmarkDecryptScaling(b, 4, true) }
func BenchmarkAblationDecryptNaiveP64(b *testing.B)     { benchmarkDecryptScaling(b, 64, true) }

// --- §5.5: HoMAC tagging cost ---

func BenchmarkHoMACTagAndVerify(b *testing.B) {
	states := benchKeys(b, prf.BackendAESFast, 2)
	v, err := homac.New(ring.MersennePrime61, 424242)
	if err != nil {
		b.Fatal(err)
	}
	const n = 1024
	cipher := make([]uint64, n)
	tags := make([]uint64, n)
	states[0].Advance()
	b.SetBytes(n * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := v.Tag(states[0], cipher, tags); err != nil {
			b.Fatal(err)
		}
	}
}

// HoMAC naive vs canceling verification (§5.5's "can be improved" remark).
func benchmarkHoMACVerify(b *testing.B, p int, naive bool) {
	states := benchKeys(b, prf.BackendAESFast, p)
	v, err := homac.New(ring.MersennePrime61, 424242)
	if err != nil {
		b.Fatal(err)
	}
	const n = 256
	starting := make([]uint64, p)
	for i, st := range states {
		starting[i] = st.SelfKey
	}
	var cT, sigmaT []uint64
	for i := 0; i < p; i++ {
		states[i].Advance()
		cipher := make([]uint64, n)
		tags := make([]uint64, n)
		if naive {
			err = v.TagNaive(states[i], cipher, tags)
		} else {
			err = v.Tag(states[i], cipher, tags)
		}
		if err != nil {
			b.Fatal(err)
		}
		if cT == nil {
			cT = append([]uint64(nil), cipher...)
			sigmaT = append([]uint64(nil), tags...)
		} else {
			for j := range cT {
				cT[j] += cipher[j]
			}
			v.Aggregate(sigmaT, tags)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var bad int
		if naive {
			bad = v.VerifyNaive(states[0], starting, cT, sigmaT, p)
		} else {
			bad = v.Verify(states[0], cT, sigmaT, p)
		}
		if bad != -1 {
			b.Fatalf("verification failed at %d", bad)
		}
	}
}

func BenchmarkHoMACVerifyCancelingP16(b *testing.B) { benchmarkHoMACVerify(b, 16, false) }
func BenchmarkHoMACVerifyNaiveP16(b *testing.B)     { benchmarkHoMACVerify(b, 16, true) }

// --- §5.3.1: MAP attack evaluation cost ---

func BenchmarkMAPAttack8Bit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := adversary.MAPAttack(8); err != nil {
			b.Fatal(err)
		}
	}
}

// --- end-to-end API benches at several sizes ---

func benchmarkE2E(b *testing.B, elems int) {
	const p = 2
	w := mpi.NewWorld(p)
	ctxs, err := Init(w, Options{Rand: &seqReader{next: 11}})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(elems * 8))
	b.ResetTimer()
	err = w.Run(0, func(c *mpi.Comm) error {
		data := make([]int64, elems)
		out := make([]int64, elems)
		for i := 0; i < b.N; i++ {
			if err := ctxs[c.Rank()].AllreduceInt64Sum(c, data, out); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkE2EAllreduce2(b *testing.B)     { benchmarkE2E(b, 2) }
func BenchmarkE2EAllreduce4Ki(b *testing.B)   { benchmarkE2E(b, 4096) }
func BenchmarkE2EAllreduce256Ki(b *testing.B) { benchmarkE2E(b, 256*1024) }

// --- noise prefetch overlap (On vs Off pins the tentpole's speedup) ---

// benchmarkPrefetch measures a steady-state Allreduce train over a link
// with a per-message delivery delay (a chaos FaultDelay rule standing in
// for real network latency). The delay sleeps on the sender goroutine, so
// the run has a genuine communication window for the prefetcher to hide
// next-epoch keystream generation in — on a single core the On/Off gap is
// pure overlap, not extra parallelism. The headline pair runs the software
// ChaCha20 backend, where keystream generation dominates the host-side
// cost (the regime of every non-AES-NI host); the AES-NI pair is the
// same train where generation is a small slice of wall time, so the
// overlap's ceiling is correspondingly low.
func benchmarkPrefetch(b *testing.B, backend string, elems, budget int) {
	const p = 2
	w := mpi.NewWorld(p)
	delay := chaos.NewRule(chaos.LayerMPI, chaos.FaultDelay)
	delay.Delay = 2 * time.Millisecond
	w.SetInterceptor(chaos.NewPlan(7, delay).MPIInterceptor())
	ctxs, err := Init(w, Options{Rand: &seqReader{next: 11}, NoisePrefetch: budget, PRFBackend: backend})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(elems * 8))
	b.ResetTimer()
	err = w.Run(0, func(c *mpi.Comm) error {
		data := make([]int64, elems)
		out := make([]int64, elems)
		for i := 0; i < b.N; i++ {
			if err := ctxs[c.Rank()].AllreduceInt64Sum(c, data, out); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

func BenchmarkPrefetchAllreduce512KiOff(b *testing.B) {
	benchmarkPrefetch(b, prf.BackendChaCha20, 64<<10, 0)
}
func BenchmarkPrefetchAllreduce512KiOn(b *testing.B) {
	benchmarkPrefetch(b, prf.BackendChaCha20, 64<<10, 16<<20)
}
func BenchmarkPrefetchAllreduceAES512KiOff(b *testing.B) {
	benchmarkPrefetch(b, prf.BackendAESFast, 64<<10, 0)
}
func BenchmarkPrefetchAllreduceAES512KiOn(b *testing.B) {
	benchmarkPrefetch(b, prf.BackendAESFast, 64<<10, 16<<20)
}
