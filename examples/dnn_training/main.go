// dnn_training demonstrates the paper's motivating workload: distributed
// SGD where each iteration averages gradients with an Allreduce over
// MPI_FLOAT data (§7.2). The gradients stay confidential end to end —
// encrypted with the v1 float addition scheme — while the collective still
// produces the exact average every data-parallel replica needs.
//
// The "model" is a small linear regression trained on synthetic data so
// the run finishes in milliseconds; the communication pattern (per-
// iteration float-gradient Allreduce, pipelined for larger models) is the
// real one.
//
//	go run ./examples/dnn_training
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hear"
	"hear/internal/mpi"
)

const (
	ranks     = 4
	features  = 64
	samples   = 256 // per rank
	iters     = 120
	learnRate = 0.3
)

// trueWeights is the ground truth the distributed ranks should recover.
func trueWeights() []float32 {
	w := make([]float32, features)
	for i := range w {
		w[i] = float32(i%5) - 2 // -2..2
	}
	return w
}

func main() {
	world := mpi.NewWorld(ranks)
	ctxs, err := hear.Init(world, hear.Options{
		Gamma:              2,    // full FP32 mantissa precision for the gradients
		PipelineBlockBytes: 4096, // overlap encrypt/reduce/decrypt for big models
	})
	if err != nil {
		log.Fatalf("hear init: %v", err)
	}

	err = world.Run(0, func(c *mpi.Comm) error {
		ctx := ctxs[c.Rank()]
		rng := rand.New(rand.NewSource(int64(c.Rank()) + 7))

		// Per-rank private shard of the dataset.
		wTrue := trueWeights()
		xs := make([][]float32, samples)
		ys := make([]float32, samples)
		for s := range xs {
			xs[s] = make([]float32, features)
			var y float32
			for f := range xs[s] {
				xs[s][f] = rng.Float32()*2 - 1
				y += xs[s][f] * wTrue[f]
			}
			ys[s] = y + (rng.Float32()-0.5)*0.01 // label noise
		}

		weights := make([]float32, features)
		grad := make([]float32, features)
		avg := make([]float32, features)

		for it := 0; it < iters; it++ {
			// Local gradient of squared loss on this rank's shard.
			for f := range grad {
				grad[f] = 0
			}
			for s := range xs {
				var pred float32
				for f := range xs[s] {
					pred += weights[f] * xs[s][f]
				}
				err := pred - ys[s]
				for f := range xs[s] {
					grad[f] += 2 * err * xs[s][f] / samples
				}
			}

			// The confidential gradient averaging: this is the Allreduce
			// that HEAR encrypts. The network only ever folds ciphertexts.
			if err := ctx.AllreduceFloat32Sum(c, grad, avg); err != nil {
				return err
			}
			for f := range weights {
				weights[f] -= learnRate * avg[f] / ranks
			}
		}

		// Report the recovered weights' error on rank 0.
		if c.Rank() == 0 {
			var maxErr float32
			for f := range weights {
				d := weights[f] - wTrue[f]
				if d < 0 {
					d = -d
				}
				if d > maxErr {
					maxErr = d
				}
			}
			fmt.Printf("distributed SGD over %d ranks, %d iterations\n", ranks, iters)
			fmt.Printf("max |w - w_true| = %.4f (converged: %v)\n", maxErr, maxErr < 0.1)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
