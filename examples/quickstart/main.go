// Quickstart: an 8-rank confidential integer Allreduce in ~40 lines.
//
// Every rank holds a private vector; HEAR encrypts it so that neither the
// network nor an in-network aggregation switch ever sees a plaintext, yet
// each rank receives the exact element-wise sum.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hear"
	"hear/internal/mpi"
)

func main() {
	const ranks = 8
	world := mpi.NewWorld(ranks)

	// Initialization = HEAR's key generation and secure exchange, the
	// moral equivalent of LD_PRELOADing libhear before MPI_Init.
	ctxs, err := hear.Init(world, hear.Options{})
	if err != nil {
		log.Fatalf("hear init: %v", err)
	}

	err = world.Run(0, func(c *mpi.Comm) error {
		ctx := ctxs[c.Rank()]

		// Each rank's confidential contribution.
		mine := []int64{int64(c.Rank() + 1), int64(c.Rank() * 10), -1}

		sum := make([]int64, len(mine))
		if err := ctx.AllreduceInt64Sum(c, mine, sum); err != nil {
			return err
		}

		if c.Rank() == 0 {
			fmt.Printf("encrypted allreduce over %d ranks: %v\n", ranks, sum)
			fmt.Printf("(expected: [%d %d %d])\n", ranks*(ranks+1)/2, 10*ranks*(ranks-1)/2, -ranks)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
