// verified_allreduce demonstrates §5.5's result authentication: HEAR's
// ciphertexts are malleable by design (any switch can add to them — that
// is what makes in-network reduction possible), so a malicious network
// element could silently corrupt the aggregate. HoMAC tags close that
// hole: each ciphertext travels with a homomorphic MAC, both lanes reduce
// in the network, and every rank verifies Σs == c_t + σ_t·Z before
// trusting the result.
//
// The run shows three phases: an honest verified Allreduce (accepted), a
// plain unverified Allreduce under a tampering "switch" (silent corruption
// — the attack), and a verified Allreduce under the same tampering
// (detected and rejected).
//
//	go run ./examples/verified_allreduce
package main

import (
	"errors"
	"fmt"
	"log"

	"hear"
	"hear/internal/mpi"
)

const ranks = 4

func main() {
	world := mpi.NewWorld(ranks)
	ctxs, err := hear.Init(world, hear.Options{})
	if err != nil {
		log.Fatal(err)
	}
	verifier, err := hear.NewVerifier(0xC0FFEE12345)
	if err != nil {
		log.Fatal(err)
	}

	err = world.Run(0, func(c *mpi.Comm) error {
		ctx := ctxs[c.Rank()]
		data := []int64{int64(c.Rank() + 1), 1000}

		// Phase 1: honest network, verified reduction.
		out := make([]int64, 2)
		if err := ctx.AllreduceInt64SumVerified(c, verifier, data, out); err != nil {
			return fmt.Errorf("honest verified allreduce rejected: %w", err)
		}
		if c.Rank() == 0 {
			fmt.Printf("phase 1 — honest network, HoMAC on:  accepted, sum = %v\n", out)
		}

		// Phase 2: a tampering network, NO verification. The "switch" is a
		// middle rank flipping a bit of the ciphertext it forwards — here
		// modeled by rank 1 submitting a corrupted ciphertext contribution
		// out-of-band (the aggregate silently shifts).
		tampered := []int64{int64(c.Rank() + 1), 1000}
		if c.Rank() == 1 {
			tampered[1] += 7 // the adversary's delta, invisible without MACs
		}
		out2 := make([]int64, 2)
		if err := ctx.AllreduceInt64Sum(c, tampered, out2); err != nil {
			return err
		}
		if c.Rank() == 0 {
			fmt.Printf("phase 2 — tampered,      HoMAC off: accepted(!) corrupted sum = %v (true: [10 4000])\n", out2)
		}

		// Phase 3: the same network-side tampering with verification on.
		// The adversary modifies the reduced ciphertext on rank 1's
		// ejection path but cannot forge a matching tag (it has no Z), so
		// rank 1's verification rejects; the untampered ranks accept.
		if c.Rank() == 1 {
			ctx.SetFaultInjector(func(reduced []byte) { reduced[9] ^= 0x40 })
		}
		err := ctx.AllreduceInt64SumVerified(c, verifier, data, out)
		ctx.SetFaultInjector(nil)
		var vf *hear.ErrVerificationFailed
		switch {
		case c.Rank() == 1 && errors.As(err, &vf):
			fmt.Printf("phase 3 — tampered,      HoMAC on:  REJECTED at rank 1 (element %d flagged)\n", vf.Element)
			return nil
		case c.Rank() == 1:
			return fmt.Errorf("rank 1: tampering went undetected (err=%v)", err)
		default:
			return err
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nresult verification closes the malleability HEAR's homomorphism requires.")
}
