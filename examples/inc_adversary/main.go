// inc_adversary recreates the paper's threat model end to end: ranks run
// an Allreduce through an in-network aggregation tree whose every switch
// is tapped by an adversary (the "malicious sysadmin" of §4). The run is
// performed twice — once unencrypted, as today's INC deployments do, and
// once with HEAR — and the adversary's captures are analyzed.
//
// Unencrypted: the tap recovers every rank's secret verbatim. With HEAR:
// the capture passes uniformity tests and contains none of the secrets,
// while the ranks still obtain the exact aggregate.
//
//	go run ./examples/inc_adversary
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"sync"

	"hear"
	"hear/internal/adversary"
	"hear/internal/inc"
	"hear/internal/mpi"
)

const (
	ranks = 8
	elems = 4096
)

// tap records every frame crossing any switch, remembering which came
// straight from a host NIC (the statistically independent samples).
type tap struct {
	mu         sync.Mutex
	frames     [][]byte
	hostFrames [][]byte
}

func (t *tap) Observe(switchID, from int, up bool, frame []byte) {
	cp := make([]byte, len(frame))
	copy(cp, frame)
	t.mu.Lock()
	t.frames = append(t.frames, cp)
	if up && from >= 0 {
		t.hostFrames = append(t.hostFrames, cp)
	}
	t.mu.Unlock()
}

// contains reports whether any captured frame contains the secret at any
// 8-byte lane.
func (t *tap) contains(secret uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, f := range t.frames {
		for o := 0; o+8 <= len(f); o += 8 {
			if binary.LittleEndian.Uint64(f[o:]) == secret {
				return true
			}
		}
	}
	return false
}

// hostBytes concatenates the host-injected frames. The uniformity tests
// run on these: the down-broadcast repeats one aggregate frame per rank,
// and repeated samples would skew a histogram without indicating any leak.
func (t *tap) hostBytes() []byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	var all []byte
	for _, f := range t.hostFrames {
		all = append(all, f...)
	}
	return all
}

func sumFold(dst, src []byte) {
	for o := 0; o+8 <= len(dst); o += 8 {
		binary.LittleEndian.PutUint64(dst[o:],
			binary.LittleEndian.Uint64(dst[o:])+binary.LittleEndian.Uint64(src[o:]))
	}
}

// secret returns rank r's distinctive plaintext value.
func secret(r int) uint64 { return 0xC0FFEE0000000000 | uint64(r+1)*0x1111 }

func main() {
	// --- Run 1: unencrypted INC, the state of the art the paper fixes ---
	plainTree, err := inc.NewTree(ranks, 4, sumFold)
	if err != nil {
		log.Fatal(err)
	}
	plainTap := &tap{}
	plainTree.SetTap(plainTap)

	var wg sync.WaitGroup
	for r := 0; r < ranks; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			buf := make([]byte, elems*8)
			for j := 0; j < elems; j++ {
				binary.LittleEndian.PutUint64(buf[j*8:], secret(rank))
			}
			if err := plainTree.Allreduce(rank, buf); err != nil {
				log.Fatal(err)
			}
		}(r)
	}
	wg.Wait()

	fmt.Println("=== unencrypted INC (today's deployments) ===")
	for r := 0; r < ranks; r++ {
		fmt.Printf("  adversary recovers rank %d's secret %#x from the tap: %v\n",
			r, secret(r), plainTap.contains(secret(r)))
	}

	// --- Run 2: the same aggregation through HEAR ---
	hearTree, err := inc.NewTree(ranks, 4, sumFold)
	if err != nil {
		log.Fatal(err)
	}
	hearTap := &tap{}
	hearTree.SetTap(hearTap)

	world := mpi.NewWorld(ranks)
	ctxs, err := hear.Init(world, hear.Options{INC: hearTree})
	if err != nil {
		log.Fatal(err)
	}
	err = world.Run(0, func(c *mpi.Comm) error {
		data := make([]int64, elems)
		for j := range data {
			data[j] = int64(secret(c.Rank()))
		}
		out := make([]int64, elems)
		if err := ctxs[c.Rank()].AllreduceInt64Sum(c, data, out); err != nil {
			return err
		}
		// Sanity: the aggregate is still exact.
		var want int64
		for r := 0; r < ranks; r++ {
			want += int64(secret(r))
		}
		if out[0] != want {
			return fmt.Errorf("aggregate mismatch: %d != %d", out[0], want)
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== HEAR-encrypted INC ===")
	leaked := false
	for r := 0; r < ranks; r++ {
		if hearTap.contains(secret(r)) {
			leaked = true
		}
	}
	fmt.Printf("  any secret visible on the tap: %v\n", leaked)
	chi2, err := adversary.ChiSquareBytes(hearTap.hostBytes())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  capture χ² = %.1f (uniform threshold %.1f): looks like noise: %v\n",
		chi2, adversary.ChiSquareThreshold(), chi2 < adversary.ChiSquareThreshold())
	fmt.Printf("  capture monobit fraction = %.4f (ideal 0.5)\n",
		adversary.MonobitFraction(hearTap.hostBytes()))
	fmt.Println("  ranks still obtained the exact sum — confidential INC achieved.")
}
