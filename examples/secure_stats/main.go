// secure_stats demonstrates §5.4's derived operations: computing the mean
// and variance of a distributed confidential dataset using only the
// supported homomorphic SUM — each rank pre-computes Σx and Σx² locally
// inside its secure environment, and two encrypted Allreduces aggregate
// them. The network learns nothing about the samples, yet every rank ends
// up with exact global statistics.
//
// Also shown: the rank-parity add/subtract mix (§5.4's example of a
// user-specified function from one operation type) and confidential
// logical OR/AND via the counting encoding.
//
//	go run ./examples/secure_stats
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hear"
	"hear/internal/mpi"
)

const (
	ranks   = 6
	samples = 10000 // per rank, private
)

func main() {
	world := mpi.NewWorld(ranks)
	ctxs, err := hear.Init(world, hear.Options{FixedPointFrac: 24})
	if err != nil {
		log.Fatalf("hear init: %v", err)
	}

	err = world.Run(0, func(c *mpi.Comm) error {
		ctx := ctxs[c.Rank()]
		rng := rand.New(rand.NewSource(int64(c.Rank()) + 42))

		// Private samples: rank r draws from N(r, 1)-ish uniform noise so
		// ranks genuinely hold different data.
		sumX, sumX2 := 0.0, 0.0
		anyOutlier := false
		for i := 0; i < samples; i++ {
			x := float64(c.Rank()) + rng.Float64()*2 - 1
			sumX += x
			sumX2 += x * x
			if x > 5.5 {
				anyOutlier = true
			}
		}

		// Confidential aggregation of the sufficient statistics. Fixed
		// point keeps the sums exact on the shared grid.
		agg := make([]float64, 2)
		if err := ctx.AllreduceFixedSum(c, []float64{sumX, sumX2}, agg); err != nil {
			return err
		}
		n := float64(ranks * samples)
		mean := agg[0] / n
		variance := agg[1]/n - mean*mean

		// Confidential outlier detection: does ANY rank hold an outlier?
		// OR has no inverse, so it rides the counting encoding.
		orOut := make([]bool, 1)
		if err := ctx.AllreduceBoolOr(c, []bool{anyOutlier}, orOut); err != nil {
			return err
		}

		if c.Rank() == 0 {
			fmt.Printf("confidential statistics over %d ranks × %d samples:\n", ranks, samples)
			fmt.Printf("  mean     = %.4f (expected ≈ %.1f)\n", mean, float64(ranks-1)/2)
			fmt.Printf("  variance = %.4f\n", variance)
			fmt.Printf("  any outlier > 5.5 anywhere: %v\n", orOut[0])
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
