package hear

import (
	"fmt"
	"testing"

	"hear/internal/mpi"
)

func TestAllreduceMaxMinViaSecureGather(t *testing.T) {
	const p = 5
	w, ctxs := initWorld(t, p, Options{EnableP2P: true})
	err := w.Run(testTimeout, func(c *mpi.Comm) error {
		ctx := ctxs[c.Rank()]
		// rank r contributes [r*10-20, -(r*3), 7]
		send := []int64{int64(c.Rank()*10 - 20), int64(-c.Rank() * 3), 7}
		maxOut := make([]int64, 3)
		if err := ctx.AllreduceMaxInt64(c, 2, send, maxOut); err != nil {
			return err
		}
		if maxOut[0] != 20 || maxOut[1] != 0 || maxOut[2] != 7 {
			return fmt.Errorf("max = %v", maxOut)
		}
		minOut := make([]int64, 3)
		if err := ctx.AllreduceMinInt64(c, 0, send, minOut); err != nil {
			return err
		}
		if minOut[0] != -20 || minOut[1] != -12 || minOut[2] != 7 {
			return fmt.Errorf("min = %v", minOut)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMaxRequiresP2PKeys(t *testing.T) {
	w, ctxs := initWorld(t, 2, Options{})
	err := w.Run(testTimeout, func(c *mpi.Comm) error {
		err := ctxs[c.Rank()].AllreduceMaxInt64(c, 0, []int64{1}, make([]int64, 1))
		if err == nil {
			return fmt.Errorf("max without pairwise keys accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMaxValidation(t *testing.T) {
	w, ctxs := initWorld(t, 2, Options{EnableP2P: true})
	err := w.Run(testTimeout, func(c *mpi.Comm) error {
		ctx := ctxs[c.Rank()]
		if err := ctx.AllreduceMaxInt64(c, 5, []int64{1}, make([]int64, 1)); err == nil {
			return fmt.Errorf("bad root accepted")
		}
		if err := ctx.AllreduceMaxInt64(c, 0, nil, nil); err == nil {
			return fmt.Errorf("empty vector accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
