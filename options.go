package hear

import "fmt"

// OptionError reports an Options field that fails validation at context
// creation. Init and InitOverComm return it (wrapped) so callers can
// distinguish a configuration mistake from a runtime failure and name the
// offending field in their own diagnostics.
type OptionError struct {
	Field string // Options field name, e.g. "Workers"
	Value any    // the rejected value
}

func (e *OptionError) Error() string {
	return fmt.Sprintf("hear: invalid Options.%s: %v", e.Field, e.Value)
}

// validate rejects option values that would otherwise be silently
// misinterpreted deeper in the stack: a negative worker count reads as
// "serial" to the pool, a negative prefetch budget as "disabled", a
// negative retry bound as "no retries", a negative timeout as "no
// deadline" — all plausible-looking configs that mask a sign bug at the
// call site. Zero stays the documented default for every field.
func (o *Options) validate() error {
	if o.PipelineBlockBytes < 0 {
		return &OptionError{Field: "PipelineBlockBytes", Value: o.PipelineBlockBytes}
	}
	if o.Workers < 0 {
		return &OptionError{Field: "Workers", Value: o.Workers}
	}
	if o.NoisePrefetch < 0 {
		return &OptionError{Field: "NoisePrefetch", Value: o.NoisePrefetch}
	}
	if o.VerifiedRetry < 0 {
		return &OptionError{Field: "VerifiedRetry", Value: o.VerifiedRetry}
	}
	if o.RecvTimeout < 0 {
		return &OptionError{Field: "RecvTimeout", Value: o.RecvTimeout}
	}
	return nil
}
