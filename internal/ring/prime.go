package ring

import "math/bits"

// MersennePrime61 is 2^61 - 1, the prime modulus used by the fast HoMAC
// path. It is large enough for the paper's "reasonable 64-bit p" discussion
// while keeping mulmod branch-free on 64-bit words.
const MersennePrime61 uint64 = (1 << 61) - 1

// Fp is the prime field Z_p for an arbitrary 64-bit prime p.
type Fp struct {
	P uint64
}

// NewFp returns arithmetic mod p. p must be an odd prime > 2; primality is
// the caller's contract (the HoMAC package only constructs it with known
// primes), but trivially-wrong moduli are rejected.
func NewFp(p uint64) Fp {
	if p < 3 || p&1 == 0 {
		panic("ring: field modulus must be an odd prime")
	}
	return Fp{P: p}
}

// Reduce maps x into [0, p).
func (f Fp) Reduce(x uint64) uint64 { return x % f.P }

// Add returns x + y mod p. Inputs must already be reduced.
func (f Fp) Add(x, y uint64) uint64 {
	s, carry := bits.Add64(x, y, 0)
	if carry == 1 || s >= f.P {
		s -= f.P
	}
	return s
}

// Sub returns x - y mod p. Inputs must already be reduced.
func (f Fp) Sub(x, y uint64) uint64 {
	d, borrow := bits.Sub64(x, y, 0)
	if borrow == 1 {
		d += f.P
	}
	return d
}

// Neg returns -x mod p.
func (f Fp) Neg(x uint64) uint64 {
	if x == 0 {
		return 0
	}
	return f.P - x
}

// Mul returns x * y mod p using 128-bit intermediate arithmetic.
func (f Fp) Mul(x, y uint64) uint64 {
	hi, lo := bits.Mul64(x, y)
	_, rem := bits.Div64(hi%f.P, lo, f.P)
	return rem
}

// Pow returns base^exp mod p by square-and-multiply.
func (f Fp) Pow(base, exp uint64) uint64 {
	result := uint64(1)
	base = f.Reduce(base)
	for exp > 0 {
		if exp&1 == 1 {
			result = f.Mul(result, base)
		}
		base = f.Mul(base, base)
		exp >>= 1
	}
	return result
}

// Inv returns x^{-1} mod p via Fermat's little theorem. x must be non-zero.
func (f Fp) Inv(x uint64) uint64 {
	if f.Reduce(x) == 0 {
		panic("ring: zero has no inverse in a field")
	}
	return f.Pow(x, f.P-2)
}
