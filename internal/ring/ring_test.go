package ring

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMask(t *testing.T) {
	cases := []struct {
		b    uint
		want uint64
	}{
		{1, 1}, {4, 0xF}, {8, 0xFF}, {16, 0xFFFF}, {32, 0xFFFFFFFF}, {63, (1 << 63) - 1}, {64, ^uint64(0)},
	}
	for _, c := range cases {
		if got := Mask(c.b); got != c.want {
			t.Errorf("Mask(%d) = %#x, want %#x", c.b, got, c.want)
		}
	}
}

func TestNewZ2Panics(t *testing.T) {
	for _, b := range []uint{0, 65, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewZ2(%d) did not panic", b)
				}
			}()
			NewZ2(b)
		}()
	}
}

func TestZ2AddSubRoundTrip(t *testing.T) {
	for _, b := range []uint{4, 8, 16, 32, 64} {
		r := NewZ2(b)
		f := func(x, y uint64) bool {
			x, y = r.Reduce(x), r.Reduce(y)
			return r.Sub(r.Add(x, y), y) == x && r.Add(r.Sub(x, y), y) == x
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("b=%d: %v", b, err)
		}
	}
}

func TestZ2NegIsAdditiveInverse(t *testing.T) {
	r := NewZ2(16)
	f := func(x uint64) bool {
		x = r.Reduce(x)
		return r.Add(x, r.Neg(x)) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZ2PowMatchesBigInt(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, b := range []uint{4, 8, 31, 32, 63, 64} {
		r := NewZ2(b)
		mod := new(big.Int).Lsh(big.NewInt(1), b)
		for i := 0; i < 200; i++ {
			base := rng.Uint64() & r.mask
			exp := rng.Uint64() >> uint(rng.Intn(60))
			want := new(big.Int).Exp(new(big.Int).SetUint64(base), new(big.Int).SetUint64(exp), mod).Uint64()
			if got := r.Pow(base, exp); got != want {
				t.Fatalf("b=%d: Pow(%d, %d) = %d, want %d", b, base, exp, got, want)
			}
		}
	}
}

func TestZ2PowEdgeCases(t *testing.T) {
	r := NewZ2(32)
	if got := r.Pow(5, 0); got != 1 {
		t.Errorf("x^0 = %d, want 1", got)
	}
	if got := r.Pow(0, 0); got != 1 {
		t.Errorf("0^0 = %d, want 1 (convention)", got)
	}
	if got := r.Pow(0, 7); got != 0 {
		t.Errorf("0^7 = %d, want 0", got)
	}
	if got := r.Pow(1, ^uint64(0)); got != 1 {
		t.Errorf("1^max = %d, want 1", got)
	}
}

func TestZ2InvOddUnits(t *testing.T) {
	for _, b := range []uint{4, 8, 16, 32, 64} {
		r := NewZ2(b)
		f := func(x uint64) bool {
			x = r.Reduce(x) | 1 // force odd
			return r.Mul(x, r.Inv(x)) == 1
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("b=%d: %v", b, err)
		}
	}
}

func TestZ2InvPanicsOnEven(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Inv(4) did not panic")
		}
	}()
	NewZ2(16).Inv(4)
}

func TestGeneratorPowersAreUnits(t *testing.T) {
	r := NewZ2(16)
	seen := map[uint64]bool{}
	for e := uint64(0); e < 1<<14; e++ {
		v := r.PowG(e)
		if v&1 == 0 {
			t.Fatalf("3^%d even", e)
		}
		seen[v] = true
	}
	// g = 3 generates the full order-2^{b-2} subgroup.
	if len(seen) != 1<<14 {
		t.Errorf("subgroup size = %d, want %d", len(seen), 1<<14)
	}
}

func TestInvPowGCancelsPowG(t *testing.T) {
	r := NewZ2(32)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		e := rng.Uint64()
		if r.Mul(r.PowG(e), r.InvPowG(e)) != 1 {
			t.Fatalf("g^%d * g^-%d != 1", e, e)
		}
	}
}

func TestSubgroupOrderPeriodicity(t *testing.T) {
	r := NewZ2(8)
	order := r.SubgroupOrder()
	if order != 64 {
		t.Fatalf("order = %d, want 64", order)
	}
	if r.PowG(order) != 1 {
		t.Errorf("g^order = %d, want 1", r.PowG(order))
	}
	if r.PowG(order/2) == 1 {
		t.Errorf("g^(order/2) = 1; order is not minimal")
	}
}

func TestFpAxioms(t *testing.T) {
	f := NewFp(MersennePrime61)
	g := func(x, y uint64) bool {
		x, y = f.Reduce(x), f.Reduce(y)
		if f.Add(x, f.Neg(x)) != 0 {
			return false
		}
		if f.Sub(f.Add(x, y), y) != x {
			return false
		}
		return f.Add(x, y) == f.Add(y, x)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestFpMulMatchesBigInt(t *testing.T) {
	f := NewFp(MersennePrime61)
	p := new(big.Int).SetUint64(f.P)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		x, y := rng.Uint64()%f.P, rng.Uint64()%f.P
		want := new(big.Int).Mul(new(big.Int).SetUint64(x), new(big.Int).SetUint64(y))
		want.Mod(want, p)
		if got := f.Mul(x, y); got != want.Uint64() {
			t.Fatalf("Mul(%d,%d) = %d, want %s", x, y, got, want)
		}
	}
}

func TestFpInv(t *testing.T) {
	f := NewFp(MersennePrime61)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		x := rng.Uint64()%(f.P-1) + 1
		if f.Mul(x, f.Inv(x)) != 1 {
			t.Fatalf("x * x^-1 != 1 for x=%d", x)
		}
	}
}

func TestFpInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Inv(0) did not panic")
		}
	}()
	NewFp(MersennePrime61).Inv(0)
}

func TestFpRejectsBadModulus(t *testing.T) {
	for _, p := range []uint64{0, 1, 2, 4, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewFp(%d) did not panic", p)
				}
			}()
			NewFp(p)
		}()
	}
}

func BenchmarkZ2Pow(b *testing.B) {
	r := NewZ2(64)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Pow(3, uint64(i)|0x8000000000000000)
	}
	_ = sink
}

func BenchmarkZ2Inv(b *testing.B) {
	r := NewZ2(64)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Inv(uint64(i) | 1)
	}
	_ = sink
}

func BenchmarkFpMul(b *testing.B) {
	f := NewFp(MersennePrime61)
	var sink uint64 = 12345
	for i := 0; i < b.N; i++ {
		sink = f.Mul(sink, 987654321)
	}
	_ = sink
}
