package chaos

import (
	"fmt"
	"net"
	"sync/atomic"
	"time"

	"hear/internal/inc"
	"hear/internal/mpi"
)

// MPIInterceptor adapts the plan to the mpi runtime's delivery hook:
// world.SetInterceptor(plan.MPIInterceptor()). Faults apply per message at
// site (from, to, tag); Drop, Delay, Duplicate, Reorder and Corrupt are
// supported (CrashRank is consulted via CrashPoint, not here).
func (p *Plan) MPIInterceptor() mpi.Interceptor {
	return func(from, to, tag int, data []byte) [][]byte {
		site := siteHash(uint64(LayerMPI), uint64(from), uint64(to), uint64(tag))
		siteStr := fmt.Sprintf("from=%d to=%d tag=%d", from, to, tag)
		match := func(r Rule) bool {
			return r.Fault != FaultCrashRank &&
				matches(from, r.Match.From) && matches(to, r.Match.To) && matches(tag, r.Match.Tag)
		}

		// A frame held back by a reorder rule at this site is released now,
		// after the current frame — the swap that models a reordering fabric.
		var released [][]byte
		p.mu.Lock()
		for i, r := range p.rules {
			if r.Layer != LayerMPI || r.Fault != FaultReorder || !match(r) {
				continue
			}
			key := counterKey{rule: i, site: site}
			if held := p.held[key]; held != nil {
				released = append(released, held)
				delete(p.held, key)
			}
		}
		p.mu.Unlock()

		idx, n := p.step(LayerMPI, site, siteStr, match)
		frames := [][]byte{data}
		if idx >= 0 {
			r := p.rules[idx]
			switch r.Fault {
			case FaultDrop:
				frames = nil
			case FaultDelay:
				time.Sleep(r.Delay)
			case FaultDuplicate:
				dup := make([]byte, len(data))
				copy(dup, data)
				frames = [][]byte{data, dup}
			case FaultCorrupt:
				p.corrupt(data, idx, site, n)
			case FaultReorder:
				p.mu.Lock()
				p.held[counterKey{rule: idx, site: site}] = data
				p.mu.Unlock()
				frames = nil
			}
		}
		return append(frames, released...)
	}
}

// INCInterceptor adapts the plan to the switch tree's frame hook:
// tree.SetInterceptor(plan.INCInterceptor(treeID)). treeID distinguishes
// the data and tag trees of a verified context so one plan can target a
// single tree. Faults apply per frame at site (tree, switch, fromRank,
// round); Drop, Delay, Corrupt and KillSwitch are supported. A killed
// switch swallows every later frame, modelling a dead ASIC rather than a
// lossy link.
func (p *Plan) INCInterceptor(treeID int) inc.Interceptor {
	return func(switchID, fromRank int, seq uint64, frame []byte) bool {
		p.mu.Lock()
		dead := p.killed[killKey(treeID, switchID)]
		p.mu.Unlock()
		if dead {
			return false
		}
		site := siteHash(uint64(LayerINC), uint64(treeID), uint64(switchID), uint64(int64(fromRank)), seq)
		siteStr := fmt.Sprintf("tree=%d switch=%d from=%d round=%d", treeID, switchID, fromRank, seq)
		match := func(r Rule) bool {
			return matches(switchID, r.Match.Switch) && matches(fromRank, r.Match.Rank) &&
				matches(int(seq), r.Match.Round)
		}
		idx, n := p.step(LayerINC, site, siteStr, match)
		if idx < 0 {
			return true
		}
		r := p.rules[idx]
		switch r.Fault {
		case FaultDrop:
			return false
		case FaultKillSwitch:
			p.mu.Lock()
			p.killed[killKey(treeID, switchID)] = true
			p.mu.Unlock()
			return false
		case FaultDelay:
			time.Sleep(r.Delay)
		case FaultCorrupt:
			p.corrupt(frame, idx, site, n)
		}
		return true
	}
}

func killKey(treeID, switchID int) int { return treeID<<16 | switchID }

// CrashPoint consults the plan at a rank's round boundary; a non-nil
// return (wrapping ErrCrashed) means the plan kills this rank here and
// the caller must abort instead of entering the round. Site: (rank); the
// event index is the call count, which equals the round when called once
// per round.
func (p *Plan) CrashPoint(rank, round int) error {
	site := siteHash(uint64(LayerMPI), 0xc4a54ed, uint64(rank))
	siteStr := fmt.Sprintf("rank=%d", rank)
	match := func(r Rule) bool {
		return r.Fault == FaultCrashRank && matches(rank, r.Match.Rank) && matches(round, r.Match.Round)
	}
	idx, _ := p.step(LayerMPI, site, siteStr, match)
	if idx < 0 {
		return nil
	}
	return fmt.Errorf("chaos: rank %d crashed at round %d: %w", rank, round, ErrCrashed)
}

// Conn is a net.Conn whose reads and writes pass through the plan.
// A FaultSever firing closes the underlying connection and fails every
// later op with ErrSevered.
type Conn struct {
	net.Conn
	plan    *Plan
	id      int
	severed atomic.Bool
}

// WrapConn wraps a connection under the plan with a caller-chosen stable
// ID (the site coordinate — reconnections should get fresh IDs).
// Faults apply per Read/Write call at site (conn, direction); Drop (the
// write is swallowed and reported successful), Delay, Corrupt and Sever
// are supported.
func (p *Plan) WrapConn(c net.Conn, id int) *Conn {
	return &Conn{Conn: c, plan: p, id: id}
}

const (
	dirRead  = 0
	dirWrite = 1
)

func (c *Conn) stepDir(dir int) (int, uint64, uint64) {
	site := siteHash(uint64(LayerConn), uint64(c.id), uint64(dir))
	siteStr := fmt.Sprintf("conn=%d dir=%d", c.id, dir)
	match := func(r Rule) bool {
		return matches(c.id, r.Match.Conn) && matches(dir, r.Match.Dir)
	}
	idx, n := c.plan.step(LayerConn, site, siteStr, match)
	return idx, n, site
}

func (c *Conn) Read(b []byte) (int, error) {
	if c.severed.Load() {
		return 0, ErrSevered
	}
	idx, evn, site := c.stepDir(dirRead)
	if idx < 0 {
		return c.Conn.Read(b)
	}
	r := c.plan.rules[idx]
	switch r.Fault {
	case FaultSever:
		c.severed.Store(true)
		c.Conn.Close()
		return 0, ErrSevered
	case FaultDelay:
		time.Sleep(r.Delay)
	}
	n, err := c.Conn.Read(b)
	if r.Fault == FaultCorrupt && n > 0 {
		c.plan.corrupt(b[:n], idx, site, evn)
	}
	return n, err
}

func (c *Conn) Write(b []byte) (int, error) {
	if c.severed.Load() {
		return 0, ErrSevered
	}
	idx, evn, site := c.stepDir(dirWrite)
	if idx < 0 {
		return c.Conn.Write(b)
	}
	r := c.plan.rules[idx]
	switch r.Fault {
	case FaultSever:
		c.severed.Store(true)
		c.Conn.Close()
		return 0, ErrSevered
	case FaultDrop:
		return len(b), nil // swallowed: the peer never sees these bytes
	case FaultDelay:
		time.Sleep(r.Delay)
	case FaultCorrupt:
		dup := make([]byte, len(b))
		copy(dup, b)
		c.plan.corrupt(dup, idx, site, evn)
		return c.Conn.Write(dup)
	}
	return c.Conn.Write(b)
}
