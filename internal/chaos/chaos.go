// Package chaos is a deterministic fault-injection layer for HEAR's three
// transports: the in-process mpi runtime, the INC switch tree, and the
// aggregation-gateway connections. A Plan is a seeded set of Rules; every
// fault decision is a pure function of (seed, rule, site, event index), so
// the same plan replays the same fault schedule byte-identically across
// runs, GOMAXPROCS settings, and the race detector — the property the
// paper's threat-model experiments need to be debuggable at all.
//
// Sites are the stable coordinates of an event: an mpi message is
// (from, to, tag), an INC frame is (tree, switch, fromRank, round), a
// gateway byte-stream op is (conn, direction). Each (rule, site) pair
// keeps its own event counter; events at one site are sequential by
// construction (one sender goroutine, one climbing rank, one stream), so
// the counters never race and the schedule is independent of cross-site
// arrival order. For inter-switch INC hops (fromRank = -1) several
// children share a site: the schedule — which (site, n) events fire — is
// still deterministic, but which racing child's frame is hit is not;
// plans that need full determinism target leaf ingress (fromRank >= 0).
package chaos

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"sync"
	"time"

	"hear/internal/metrics"
)

// Layer identifies which transport adapter a rule applies to.
type Layer uint8

const (
	LayerMPI  Layer = iota // mpi message delivery (Interceptor)
	LayerINC               // INC switch frame ingress (inc.Interceptor)
	LayerConn              // gateway net.Conn reads/writes (WrapConn)
)

func (l Layer) String() string {
	switch l {
	case LayerMPI:
		return "mpi"
	case LayerINC:
		return "inc"
	case LayerConn:
		return "conn"
	}
	return fmt.Sprintf("layer(%d)", uint8(l))
}

// Fault is the failure a rule injects when it fires.
type Fault uint8

const (
	// FaultDrop discards the message/frame (conn: the write is swallowed).
	FaultDrop Fault = iota
	// FaultDelay sleeps Rule.Delay before delivering.
	FaultDelay
	// FaultDuplicate delivers the mpi message twice (mpi only).
	FaultDuplicate
	// FaultReorder holds the mpi message back and delivers it after the
	// next message at the same site, swapping their order. If no later
	// message arrives at the site the held message is lost (mpi only).
	FaultReorder
	// FaultCorrupt flips one deterministically-chosen bit of the payload.
	FaultCorrupt
	// FaultCrashRank makes CrashPoint report that the rank must abort.
	FaultCrashRank
	// FaultKillSwitch permanently swallows every frame through the matched
	// switch from the firing event on (inc only).
	FaultKillSwitch
	// FaultSever closes the underlying connection mid-stream (conn only).
	FaultSever
)

func (f Fault) String() string {
	switch f {
	case FaultDrop:
		return "drop"
	case FaultDelay:
		return "delay"
	case FaultDuplicate:
		return "duplicate"
	case FaultReorder:
		return "reorder"
	case FaultCorrupt:
		return "corrupt"
	case FaultCrashRank:
		return "crash-rank"
	case FaultKillSwitch:
		return "kill-switch"
	case FaultSever:
		return "sever"
	}
	return fmt.Sprintf("fault(%d)", uint8(f))
}

// Typed outcomes surfaced by the adapters.
var (
	// ErrSevered reports an I/O op on a connection a FaultSever rule cut.
	ErrSevered = errors.New("chaos: connection severed")
	// ErrCrashed reports a CrashPoint that a FaultCrashRank rule hit.
	ErrCrashed = errors.New("chaos: rank crashed by plan")
)

// Any is the wildcard for Match fields.
const Any = -1

// Match filters the sites a rule applies to. Any (-1) matches everything;
// which fields are consulted depends on the rule's Layer. Zero is a valid
// rank/tag/ID, so always build rules with NewRule (which wildcards every
// field) and narrow from there.
type Match struct {
	From, To, Tag int // LayerMPI: sender rank, receiver rank, wire tag
	Switch, Rank  int // LayerINC: switch ID, submitting rank (-1 = inter-switch hop)
	Round         int // LayerINC/CrashRank: collective round (seq)
	Conn, Dir     int // LayerConn: connection ID, direction (0 = read, 1 = write)
}

func matchAll() Match {
	return Match{From: Any, To: Any, Tag: Any, Switch: Any, Rank: Any, Round: Any, Conn: Any, Dir: Any}
}

func matches(v, want int) bool { return want == Any || v == want }

// Rule schedules one fault. It fires on a matching event when the event's
// index at its site clears After, the per-site firing count is under
// Limit, and the (seed, rule, site, index) hash clears Prob.
type Rule struct {
	Layer Layer
	Fault Fault
	Match Match
	Prob  float64       // firing probability per event; 1 = always
	After int           // skip the first After matching events per site
	Limit int           // max firings per site; 0 = unlimited
	Delay time.Duration // sleep for FaultDelay
}

// NewRule returns a rule with an all-wildcard match and Prob 1. Narrow it
// by assigning Match fields / Prob / After / Limit on the returned value.
func NewRule(layer Layer, fault Fault) Rule {
	return Rule{Layer: layer, Fault: fault, Match: matchAll(), Prob: 1}
}

// Event is one recorded rule firing.
type Event struct {
	Rule  int // index into the plan's rule list
	Layer Layer
	Fault Fault
	Site  string // human-readable site coordinates
	N     uint64 // event index at the site when the rule fired
}

func (e Event) String() string {
	return fmt.Sprintf("rule=%d %s/%s %s n=%d", e.Rule, e.Layer, e.Fault, e.Site, e.N)
}

// counterKey identifies a (rule, site) stream of events.
type counterKey struct {
	rule int
	site uint64
}

// Plan is a seeded fault schedule. One Plan may back all three adapters
// of a single campaign; all methods are safe for concurrent use.
type Plan struct {
	seed  uint64
	rules []Rule

	mu     sync.Mutex
	next   map[counterKey]uint64 // next event index per (rule, site)
	fired  map[counterKey]uint64 // firings per (rule, site), for Limit
	held   map[counterKey][]byte // reorder holdback buffers
	killed map[int]bool          // switches cut by FaultKillSwitch
	events []Event
}

// NewPlan builds a plan from a seed and its rules. The same (seed, rules)
// always yields the same schedule.
func NewPlan(seed int64, rules ...Rule) *Plan {
	return &Plan{
		seed:   uint64(seed),
		rules:  rules,
		next:   make(map[counterKey]uint64),
		fired:  make(map[counterKey]uint64),
		held:   make(map[counterKey][]byte),
		killed: make(map[int]bool),
	}
}

// Seed returns the plan's seed.
func (p *Plan) Seed() int64 { return int64(p.seed) }

// splitmix64 is the SplitMix64 finalizer — a bijective avalanche mix, the
// standard seed-expansion hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// siteHash folds site coordinates into one 64-bit key. Components pass
// through splitmix64 first so adjacent small ints don't collide.
func siteHash(parts ...uint64) uint64 {
	h := uint64(0x5851f42d4c957f2d)
	for _, part := range parts {
		h = splitmix64(h ^ splitmix64(part))
	}
	return h
}

// roll is the pure fault decision: a uniform hash of (seed, rule, site,
// event index) compared against the rule's probability.
func (p *Plan) roll(ruleIdx int, site, n uint64, prob float64) bool {
	if prob >= 1 {
		return true
	}
	if prob <= 0 {
		return false
	}
	h := splitmix64(p.seed ^ splitmix64(uint64(ruleIdx)+0x9e37) ^ site ^ splitmix64(n+0x79b9))
	return float64(h) < prob*float64(math.MaxUint64)
}

// step advances one event at (layer, site) and returns the index of the
// first rule that fires plus the event index it fired at, or (-1, 0).
// match reports whether a rule covers the event's coordinates. Counters
// for every matching rule advance exactly once per event whether or not
// an earlier rule already fired, so each rule's schedule is independent
// of the others.
func (p *Plan) step(layer Layer, site uint64, siteStr string, match func(Rule) bool) (int, uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	firing, firedAt := -1, uint64(0)
	for i, r := range p.rules {
		if r.Layer != layer || !match(r) {
			continue
		}
		key := counterKey{rule: i, site: site}
		n := p.next[key]
		p.next[key] = n + 1
		if firing >= 0 {
			continue // an earlier rule owns this event; counters still advance
		}
		if n < uint64(r.After) {
			continue
		}
		if r.Limit > 0 && p.fired[key] >= uint64(r.Limit) {
			continue
		}
		if !p.roll(i, site, n, r.Prob) {
			continue
		}
		p.fired[key]++
		p.events = append(p.events, Event{Rule: i, Layer: layer, Fault: r.Fault, Site: siteStr, N: n})
		firing, firedAt = i, n
	}
	return firing, firedAt
}

// corrupt flips one bit of buf, chosen by the deterministic hash of the
// firing coordinates, and returns the (byte, bit) position.
func (p *Plan) corrupt(buf []byte, ruleIdx int, site, n uint64) (int, int) {
	if len(buf) == 0 {
		return 0, 0
	}
	h := splitmix64(p.seed ^ site ^ splitmix64(n) ^ splitmix64(uint64(ruleIdx)+0xc0de))
	byteIdx := int(h % uint64(len(buf)))
	bit := int((h >> 17) % 8)
	buf[byteIdx] ^= 1 << bit
	return byteIdx, bit
}

// Events returns the recorded firings sorted by (rule, site, n). The
// recording order can vary with goroutine interleaving across sites, but
// the sorted set — and therefore Digest — is identical for identical
// runs of the same plan.
func (p *Plan) Events() []Event {
	p.mu.Lock()
	out := make([]Event, len(p.events))
	copy(out, p.events)
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rule != out[j].Rule {
			return out[i].Rule < out[j].Rule
		}
		if out[i].Site != out[j].Site {
			return out[i].Site < out[j].Site
		}
		return out[i].N < out[j].N
	})
	return out
}

// RegisterMetrics publishes the plan's injection accounting into a
// registry as the snapshot-time counter
// hear_chaos_events_total{layer,fault}, so a chaos campaign's fault
// volume lands in the same namespace as the counters it perturbs. A nil
// registry is a no-op.
func (p *Plan) RegisterMetrics(r *metrics.Registry) {
	if r == nil {
		return
	}
	r.RegisterSource(func(emit func(metrics.Sample)) {
		counts := map[[2]string]uint64{}
		for _, e := range p.Events() {
			counts[[2]string{e.Layer.String(), e.Fault.String()}]++
		}
		for k, n := range counts {
			emit(metrics.Sample{
				Name:   "hear_chaos_events_total",
				Labels: metrics.Labels{"layer": k[0], "fault": k[1]},
				Kind:   metrics.KindCounter,
				Value:  float64(n),
			})
		}
	})
}

// Digest hashes the sorted fault schedule; two runs of the same campaign
// match iff their digests match.
func (p *Plan) Digest() uint64 {
	h := fnv.New64a()
	for _, e := range p.Events() {
		fmt.Fprintln(h, e.String())
	}
	return h.Sum64()
}
