package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"hear/internal/inc"
	"hear/internal/mpi"
)

// mpiCampaign runs rounds of sends across a world under a fresh plan with
// the given rules and returns the plan's digest plus which payloads each
// receiver saw (a per-rank outcome fingerprint).
func mpiCampaign(t *testing.T, seed int64, rules []Rule) (uint64, string) {
	t.Helper()
	const p, rounds = 4, 8
	w := mpi.NewWorld(p)
	plan := NewPlan(seed, rules...)
	w.SetInterceptor(plan.MPIInterceptor())
	var mu sync.Mutex
	outcomes := make(map[string]string)
	err := w.Run(30*time.Second, func(c *mpi.Comm) error {
		c.SetRecvTimeout(500 * time.Millisecond)
		// Each rank sends round-stamped payloads to its successor, then
		// receives from its predecessor. All sends go first (they are
		// eager), so every surviving message is queued before any recv
		// deadline starts ticking: "lost" is then exactly "dropped by the
		// plan", independent of scheduling.
		next, prev := (c.Rank()+1)%p, (c.Rank()+p-1)%p
		for round := 0; round < rounds; round++ {
			if err := c.Send(next, round, []byte{byte(c.Rank()), byte(round)}); err != nil {
				return err
			}
		}
		var got []string
		for round := 0; round < rounds; round++ {
			buf := make([]byte, 4)
			n, _, err := c.Recv(prev, round, buf)
			switch {
			// A dropped message surfaces as ErrTimeout or, if the sender
			// already finished, ErrRankExited — same lost message, so the
			// outcome fingerprint must not distinguish them.
			case errors.Is(err, mpi.ErrTimeout), errors.Is(err, mpi.ErrRankExited):
				got = append(got, fmt.Sprintf("r%d:lost", round))
			case err != nil:
				return err
			default:
				got = append(got, fmt.Sprintf("r%d:%x", round, buf[:n]))
			}
		}
		mu.Lock()
		outcomes[fmt.Sprintf("rank%d", c.Rank())] = fmt.Sprint(got)
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"rank0", "rank1", "rank2", "rank3"}
	var sb bytes.Buffer
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s=%s;", k, outcomes[k])
	}
	return plan.Digest(), sb.String()
}

// TestMPIScheduleReplays: the same seed yields the same fault schedule
// and the same per-rank outcomes across repeated runs (run the test with
// -cpu 1,2,4 to cover scheduler variation, as CI does).
func TestMPIScheduleReplays(t *testing.T) {
	rules := []Rule{
		func() Rule {
			r := NewRule(LayerMPI, FaultDrop)
			r.Prob = 0.25
			return r
		}(),
	}
	wantDigest, wantOutcome := mpiCampaign(t, 42, rules)
	if wantDigest == NewPlan(42).Digest() {
		t.Fatal("plan fired nothing; drop probability too low for the test to mean anything")
	}
	for i := 0; i < 3; i++ {
		digest, outcome := mpiCampaign(t, 42, rules)
		if digest != wantDigest {
			t.Fatalf("run %d: digest %x != %x", i, digest, wantDigest)
		}
		if outcome != wantOutcome {
			t.Fatalf("run %d: outcomes diverged:\n%s\n%s", i, outcome, wantOutcome)
		}
	}
	// A different seed must give a different schedule (overwhelmingly).
	digest, _ := mpiCampaign(t, 43, rules)
	if digest == wantDigest {
		t.Fatal("seeds 42 and 43 produced identical schedules")
	}
}

// TestMPIDuplicateAndReorder: duplicate delivers the message twice;
// reorder swaps two consecutive messages at a site.
func TestMPIDuplicateAndReorder(t *testing.T) {
	w := mpi.NewWorld(2)
	dup := NewRule(LayerMPI, FaultDuplicate)
	dup.Match.Tag = 1
	dup.Limit = 1
	reorder := NewRule(LayerMPI, FaultReorder)
	reorder.Match.Tag = 2
	reorder.Limit = 1
	plan := NewPlan(7, dup, reorder)
	w.SetInterceptor(plan.MPIInterceptor())
	err := w.Run(30*time.Second, func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 1, []byte{0xaa}); err != nil {
				return err
			}
			for _, v := range []byte{1, 2} {
				if err := c.Send(1, 2, []byte{v}); err != nil {
					return err
				}
			}
			return nil
		}
		buf := make([]byte, 1)
		// Duplicate: the same tag-1 payload arrives twice.
		for i := 0; i < 2; i++ {
			if _, _, err := c.Recv(0, 1, buf); err != nil {
				return fmt.Errorf("dup recv %d: %w", i, err)
			}
			if buf[0] != 0xaa {
				return fmt.Errorf("dup recv %d: got %x", i, buf[0])
			}
		}
		// Reorder: payload 2 overtakes payload 1.
		want := []byte{2, 1}
		for i := 0; i < 2; i++ {
			if _, _, err := c.Recv(0, 2, buf); err != nil {
				return fmt.Errorf("reorder recv %d: %w", i, err)
			}
			if buf[0] != want[i] {
				return fmt.Errorf("reorder recv %d: got %d, want %d", i, buf[0], want[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestINCInterceptorFaults: kill-switch permanently stalls rounds through
// the dead switch; corrupt flips exactly one bit, deterministically.
func TestINCInterceptorFaults(t *testing.T) {
	fold := func(dst, src []byte) {
		for i := range dst {
			dst[i] += src[i]
		}
	}
	// Corrupt rank 1's leaf ingress on round 0 only.
	corrupt := NewRule(LayerINC, FaultCorrupt)
	corrupt.Match.Rank = 1
	corrupt.Match.Round = 0
	plan := NewPlan(9, corrupt)

	tree, err := inc.NewTree(2, 2, fold)
	if err != nil {
		t.Fatal(err)
	}
	tree.SetInterceptor(plan.INCInterceptor(0))
	run := func(vals ...byte) ([]byte, []error) {
		outs := make([][]byte, 2)
		errs := make([]error, 2)
		var wg sync.WaitGroup
		for r := 0; r < 2; r++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				buf := []byte{vals[rank]}
				errs[rank] = tree.Allreduce(rank, buf)
				outs[rank] = buf
			}(r)
		}
		wg.Wait()
		if !bytes.Equal(outs[0], outs[1]) {
			t.Fatalf("ranks disagree: %x vs %x", outs[0], outs[1])
		}
		return outs[0], errs
	}
	out, errs := run(1, 1)
	if errs[0] != nil || errs[1] != nil {
		t.Fatal(errs)
	}
	if out[0] == 2 {
		t.Fatal("corrupt rule fired but the aggregate is untampered")
	}
	// Round 1 is outside the rule's Match.Round: clean aggregate.
	out, errs = run(1, 1)
	if errs[0] != nil || errs[1] != nil {
		t.Fatal(errs)
	}
	if out[0] != 2 {
		t.Fatalf("round 1: got %d, want clean sum 2", out[0])
	}

	// Kill the root switch of a fresh tree: every round times out.
	kill := NewRule(LayerINC, FaultKillSwitch)
	killPlan := NewPlan(11, kill)
	tree2, err := inc.NewTree(2, 2, fold)
	if err != nil {
		t.Fatal(err)
	}
	tree2.SetTimeout(100 * time.Millisecond)
	tree2.SetInterceptor(killPlan.INCInterceptor(0))
	for round := 0; round < 2; round++ {
		_, errs = func() ([]byte, []error) {
			outs := make([][]byte, 2)
			errs := make([]error, 2)
			var wg sync.WaitGroup
			for r := 0; r < 2; r++ {
				wg.Add(1)
				go func(rank int) {
					defer wg.Done()
					buf := []byte{1}
					errs[rank] = tree2.Allreduce(rank, buf)
					outs[rank] = buf
				}(r)
			}
			wg.Wait()
			return outs[0], errs
		}()
		for rank, e := range errs {
			if !errors.Is(e, inc.ErrTimeout) {
				t.Fatalf("round %d rank %d: want inc.ErrTimeout through killed switch, got %v", round, rank, e)
			}
		}
	}
}

// TestConnSeverAndCrashPoint: a severed conn fails reads and writes with
// ErrSevered and closes the peer; CrashPoint fires per its Match.
func TestConnSeverAndCrashPoint(t *testing.T) {
	sever := NewRule(LayerConn, FaultSever)
	sever.Match.Dir = 1 // cut on the second write
	sever.After = 1
	crash := NewRule(LayerMPI, FaultCrashRank)
	crash.Match.Rank = 2
	crash.Match.Round = 1
	plan := NewPlan(3, sever, crash)

	a, b := net.Pipe()
	defer b.Close()
	wrapped := plan.WrapConn(a, 0)
	go func() {
		buf := make([]byte, 8)
		for {
			if _, err := b.Read(buf); err != nil {
				return
			}
		}
	}()
	if _, err := wrapped.Write([]byte("one")); err != nil {
		t.Fatalf("write 0: %v", err)
	}
	if _, err := wrapped.Write([]byte("two")); !errors.Is(err, ErrSevered) {
		t.Fatalf("write 1: want ErrSevered, got %v", err)
	}
	if _, err := wrapped.Read(make([]byte, 8)); !errors.Is(err, ErrSevered) {
		t.Fatalf("read after sever: want ErrSevered, got %v", err)
	}

	for rank := 0; rank < 4; rank++ {
		for round := 0; round < 3; round++ {
			err := plan.CrashPoint(rank, round)
			shouldCrash := rank == 2 && round == 1
			if shouldCrash && !errors.Is(err, ErrCrashed) {
				t.Fatalf("rank %d round %d: want ErrCrashed, got %v", rank, round, err)
			}
			if !shouldCrash && err != nil {
				t.Fatalf("rank %d round %d: unexpected crash %v", rank, round, err)
			}
		}
	}
}

// TestAfterAndLimit: After skips the first events at a site; Limit caps
// firings per site.
func TestAfterAndLimit(t *testing.T) {
	r := NewRule(LayerConn, FaultDrop)
	r.Match.Dir = 1
	r.After = 2
	r.Limit = 1
	plan := NewPlan(5, r)
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	wrapped := plan.WrapConn(a, 0)
	got := make(chan byte, 16)
	go func() {
		buf := make([]byte, 1)
		for {
			if _, err := b.Read(buf); err != nil {
				return
			}
			got <- buf[0]
		}
	}()
	for i := byte(0); i < 5; i++ {
		if _, err := wrapped.Write([]byte{i}); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	var seen []byte
	timeoutAt := time.After(2 * time.Second)
	for len(seen) < 4 {
		select {
		case v := <-got:
			seen = append(seen, v)
		case <-timeoutAt:
			t.Fatalf("saw only %v", seen)
		}
	}
	if !bytes.Equal(seen, []byte{0, 1, 3, 4}) {
		t.Fatalf("got %v, want write 2 dropped exactly once", seen)
	}
	events := plan.Events()
	if len(events) != 1 || events[0].N != 2 {
		t.Fatalf("events %v, want one firing at n=2", events)
	}
}
