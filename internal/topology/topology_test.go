package topology

import (
	"testing"
)

func TestFatTreeStructure(t *testing.T) {
	n, err := FatTree(4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(n.Hosts()); got != 16 {
		t.Errorf("hosts = %d", got)
	}
	if got := n.NumSwitches(); got != 6 {
		t.Errorf("switches = %d, want 4 leaves + 2 spines", got)
	}
	// host links + leaf-spine links
	if got := len(n.Links); got != 16+4*2 {
		t.Errorf("links = %d", got)
	}
}

func TestFatTreeValidation(t *testing.T) {
	if _, err := FatTree(0, 4, 2); err == nil {
		t.Error("0 leaves accepted")
	}
	if _, err := Dragonfly(1, 2, 2); err == nil {
		t.Error("1-group dragonfly accepted")
	}
}

func TestFatTreeHops(t *testing.T) {
	n, err := FatTree(4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Same leaf: host-leaf-host = 2 hops.
	if h, _ := n.Hops(0, 1); h != 2 {
		t.Errorf("same-leaf hops = %d, want 2", h)
	}
	// Cross leaf: host-leaf-spine-leaf-host = 4 hops.
	if h, _ := n.Hops(0, 5); h != 4 {
		t.Errorf("cross-leaf hops = %d, want 4", h)
	}
	if _, err := n.Hops(0, 999); err == nil {
		t.Error("out-of-range node accepted")
	}
}

func TestDragonflyStructure(t *testing.T) {
	n, err := Dragonfly(4, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(n.Hosts()); got != 24 {
		t.Errorf("hosts = %d", got)
	}
	if got := n.NumSwitches(); got != 12 {
		t.Errorf("routers = %d", got)
	}
	// Every pair of hosts must be connected (global links join all groups).
	hosts := n.Hosts()
	if _, err := n.ShortestPath(hosts[0], hosts[len(hosts)-1]); err != nil {
		t.Errorf("cross-group path missing: %v", err)
	}
	// Dragonfly diameter is small: host-router, intra, global, intra, router-host.
	maxHops := 0
	for i, a := range hosts {
		for _, b := range hosts[i+1:] {
			h, err := n.Hops(a, b)
			if err != nil {
				t.Fatal(err)
			}
			if h > maxHops {
				maxHops = h
			}
		}
	}
	if maxHops > 5 {
		t.Errorf("dragonfly diameter %d, want <= 5", maxHops)
	}
}

func TestShortestPathSelf(t *testing.T) {
	n, _ := FatTree(2, 2, 1)
	p, err := n.ShortestPath(0, 0)
	if err != nil || len(p) != 1 {
		t.Errorf("self path = %v (%v)", p, err)
	}
}

func TestLinkLoadsConservation(t *testing.T) {
	n, _ := FatTree(2, 2, 1)
	flows := []Flow{{From: 0, To: 3, Bytes: 100}} // cross-leaf: 4 links
	loads, total, err := n.LinkLoads(flows)
	if err != nil {
		t.Fatal(err)
	}
	if total != 400 {
		t.Errorf("total link-bytes = %d, want 100 × 4 hops", total)
	}
	nonZero := 0
	for _, l := range loads {
		if l > 0 {
			nonZero++
		}
	}
	if nonZero != 4 {
		t.Errorf("%d links loaded, want 4", nonZero)
	}
	if _, _, err := n.LinkLoads([]Flow{{From: 0, To: 1, Bytes: -5}}); err == nil {
		t.Error("negative flow accepted")
	}
}

func TestMaxLoadAndAverageHops(t *testing.T) {
	if MaxLoad([]int64{3, 9, 1}) != 9 {
		t.Error("MaxLoad wrong")
	}
	n, _ := FatTree(2, 2, 1)
	avg, err := n.AverageHops()
	if err != nil {
		t.Fatal(err)
	}
	// 2 same-leaf pairs at 2 hops, 4 cross-leaf pairs at 4 hops: (2·2+4·4)/6.
	want := (2.0*2 + 4.0*4) / 6
	if avg != want {
		t.Errorf("average hops = %g, want %g", avg, want)
	}
}

func TestRingAllreduceFlows(t *testing.T) {
	hosts := []int{0, 1, 2, 3}
	flows := RingAllreduceFlows(hosts, 1000)
	if len(flows) != 4 {
		t.Fatalf("%d flows", len(flows))
	}
	for _, f := range flows {
		if f.Bytes != 1500 { // 2·(P−1)/P·M = 2·3/4·1000
			t.Errorf("flow bytes = %d, want 1500", f.Bytes)
		}
	}
	if RingAllreduceFlows([]int{0}, 10) != nil {
		t.Error("1-host ring should be empty")
	}
}

// The aggregation property: INC link loads never exceed 2·msgBytes per
// link no matter how many hosts share the path.
func TestINCLinkLoadsAggregation(t *testing.T) {
	n, _ := FatTree(4, 8, 2) // 32 hosts
	loads, total, err := n.INCLinkLoads(n.Hosts(), n.Hosts()[0], 1000)
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range loads {
		if l > 2000 {
			t.Errorf("link %d carries %d B — aggregation did not merge", i, l)
		}
	}
	if total == 0 {
		t.Error("no INC traffic")
	}
}

// The headline number: on realistic fabrics, host-based ring traffic is
// about 2x the in-network aggregation traffic — the paper's INC bandwidth
// motivation, computed from the graph rather than cited.
func TestReductionFactorNearTwo(t *testing.T) {
	for _, tc := range []struct {
		name string
		net  func() (*Network, error)
	}{
		{"fat-tree 4x8", func() (*Network, error) { return FatTree(4, 8, 2) }},
		{"fat-tree 8x4", func() (*Network, error) { return FatTree(8, 4, 4) }},
		{"dragonfly 4x3x2", func() (*Network, error) { return Dragonfly(4, 3, 2) }},
	} {
		n, err := tc.net()
		if err != nil {
			t.Fatal(err)
		}
		factor, err := n.ReductionFactor(1 << 20)
		if err != nil {
			t.Fatal(err)
		}
		if factor < 1.2 || factor > 4.0 {
			t.Errorf("%s: reduction factor %.2f outside the ~2x ballpark", tc.name, factor)
		}
	}
}

func TestTreeAggregationFlowsShape(t *testing.T) {
	flows := TreeAggregationFlows([]int{0, 1, 2}, 0, 500)
	if len(flows) != 4 { // 2 hosts × 2 directions
		t.Errorf("%d flows", len(flows))
	}
}
