// Package topology models the network graphs the paper's context lives in:
// k-ary fat trees (the classic INC deployment target — SHArP runs in
// fat-tree InfiniBand switches) and a dragonfly (the Aries interconnect of
// the paper's Piz Daint testbed is a dragonfly). It provides shortest-path
// routing and per-link byte accounting for arbitrary traffic matrices, so
// experiments can compare where host-based collective traffic actually
// flows against in-network aggregation — the substance behind the paper's
// "bandwidth usage reduced by 2x" motivation and its remark that for
// "dynamically routed networks" the devices involved in a computation are
// not known a priori.
package topology

import (
	"fmt"
	"math"
)

// NodeKind distinguishes hosts from switches.
type NodeKind int

const (
	// Host is an endpoint (compute node).
	Host NodeKind = iota
	// Switch is a forwarding element.
	Switch
)

// Node is one vertex of the network graph.
type Node struct {
	ID   int
	Kind NodeKind
	// Label carries structural info ("leaf-3", "spine-0", "group2-router1").
	Label string
}

// Link is an undirected edge; traffic accounting tracks both directions
// together (full-duplex links are symmetric in all our traffic patterns).
type Link struct {
	A, B int
}

// Network is an undirected graph with hosts attached to switches.
type Network struct {
	Nodes []Node
	Links []Link
	adj   [][]int // adjacency: node -> neighbour node ids
	lidx  map[[2]int]int
	hosts []int
}

// build finalizes adjacency after Nodes/Links are set.
func (n *Network) build() {
	n.adj = make([][]int, len(n.Nodes))
	n.lidx = make(map[[2]int]int, len(n.Links))
	for i, l := range n.Links {
		n.adj[l.A] = append(n.adj[l.A], l.B)
		n.adj[l.B] = append(n.adj[l.B], l.A)
		n.lidx[linkKey(l.A, l.B)] = i
	}
	n.hosts = n.hosts[:0]
	for _, nd := range n.Nodes {
		if nd.Kind == Host {
			n.hosts = append(n.hosts, nd.ID)
		}
	}
}

func linkKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// Hosts returns the host node ids in order.
func (n *Network) Hosts() []int {
	out := make([]int, len(n.hosts))
	copy(out, n.hosts)
	return out
}

// NumSwitches counts forwarding elements.
func (n *Network) NumSwitches() int { return len(n.Nodes) - len(n.hosts) }

// ShortestPath returns a minimum-hop path (node ids, inclusive) via BFS.
func (n *Network) ShortestPath(from, to int) ([]int, error) {
	if from < 0 || from >= len(n.Nodes) || to < 0 || to >= len(n.Nodes) {
		return nil, fmt.Errorf("topology: node out of range")
	}
	if from == to {
		return []int{from}, nil
	}
	prev := make([]int, len(n.Nodes))
	for i := range prev {
		prev[i] = -1
	}
	prev[from] = from
	queue := []int{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range n.adj[cur] {
			if prev[nb] != -1 {
				continue
			}
			prev[nb] = cur
			if nb == to {
				var path []int
				for x := to; x != from; x = prev[x] {
					path = append(path, x)
				}
				path = append(path, from)
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path, nil
			}
			queue = append(queue, nb)
		}
	}
	return nil, fmt.Errorf("topology: no path from %d to %d", from, to)
}

// Hops returns the hop count between two nodes.
func (n *Network) Hops(from, to int) (int, error) {
	p, err := n.ShortestPath(from, to)
	if err != nil {
		return 0, err
	}
	return len(p) - 1, nil
}

// Flow is one (source host, destination host, bytes) entry of a traffic
// matrix.
type Flow struct {
	From, To int
	Bytes    int64
}

// LinkLoads routes every flow over its shortest path and returns the byte
// load per link (indexed like Links) plus the total link-bytes.
func (n *Network) LinkLoads(flows []Flow) ([]int64, int64, error) {
	loads := make([]int64, len(n.Links))
	var total int64
	for _, f := range flows {
		if f.Bytes < 0 {
			return nil, 0, fmt.Errorf("topology: negative flow")
		}
		path, err := n.ShortestPath(f.From, f.To)
		if err != nil {
			return nil, 0, err
		}
		for i := 0; i+1 < len(path); i++ {
			idx, ok := n.lidx[linkKey(path[i], path[i+1])]
			if !ok {
				return nil, 0, fmt.Errorf("topology: path uses unknown link %d-%d", path[i], path[i+1])
			}
			loads[idx] += f.Bytes
			total += f.Bytes
		}
	}
	return loads, total, nil
}

// MaxLoad returns the hottest link's byte count — the congestion proxy.
func MaxLoad(loads []int64) int64 {
	var m int64
	for _, l := range loads {
		if l > m {
			m = l
		}
	}
	return m
}

// AverageHops computes the mean host-to-host hop distance.
func (n *Network) AverageHops() (float64, error) {
	if len(n.hosts) < 2 {
		return 0, fmt.Errorf("topology: need >= 2 hosts")
	}
	sum, cnt := 0, 0
	for i, a := range n.hosts {
		for _, b := range n.hosts[i+1:] {
			h, err := n.Hops(a, b)
			if err != nil {
				return 0, err
			}
			sum += h
			cnt++
		}
	}
	return float64(sum) / float64(cnt), nil
}

// --- constructors ---

// FatTree builds a two-level k-ary fat tree: `leaves` leaf switches with
// `hostsPerLeaf` hosts each, all leaves connected to `spines` spine
// switches. (The classic SHArP/INC deployment shape; a full three-level
// Clos follows the same pattern and is omitted for clarity.)
func FatTree(leaves, hostsPerLeaf, spines int) (*Network, error) {
	if leaves < 1 || hostsPerLeaf < 1 || spines < 1 {
		return nil, fmt.Errorf("topology: fat tree %d/%d/%d invalid", leaves, hostsPerLeaf, spines)
	}
	n := &Network{}
	// Hosts first (ids 0..H-1), then leaves, then spines.
	hostCount := leaves * hostsPerLeaf
	for h := 0; h < hostCount; h++ {
		n.Nodes = append(n.Nodes, Node{ID: h, Kind: Host, Label: fmt.Sprintf("host-%d", h)})
	}
	leafBase := hostCount
	for l := 0; l < leaves; l++ {
		n.Nodes = append(n.Nodes, Node{ID: leafBase + l, Kind: Switch, Label: fmt.Sprintf("leaf-%d", l)})
	}
	spineBase := leafBase + leaves
	for s := 0; s < spines; s++ {
		n.Nodes = append(n.Nodes, Node{ID: spineBase + s, Kind: Switch, Label: fmt.Sprintf("spine-%d", s)})
	}
	for l := 0; l < leaves; l++ {
		for h := 0; h < hostsPerLeaf; h++ {
			n.Links = append(n.Links, Link{A: l*hostsPerLeaf + h, B: leafBase + l})
		}
		for s := 0; s < spines; s++ {
			n.Links = append(n.Links, Link{A: leafBase + l, B: spineBase + s})
		}
	}
	n.build()
	return n, nil
}

// Dragonfly builds an all-to-all dragonfly: `groups` groups of `routers`
// routers each, `hostsPerRouter` hosts per router; routers within a group
// are fully connected, and every pair of groups is joined by one global
// link (distributed round-robin over the routers) — the Aries/Cascade
// arrangement at small scale.
func Dragonfly(groups, routers, hostsPerRouter int) (*Network, error) {
	if groups < 2 || routers < 1 || hostsPerRouter < 1 {
		return nil, fmt.Errorf("topology: dragonfly %d/%d/%d invalid", groups, routers, hostsPerRouter)
	}
	n := &Network{}
	hostCount := groups * routers * hostsPerRouter
	for h := 0; h < hostCount; h++ {
		n.Nodes = append(n.Nodes, Node{ID: h, Kind: Host, Label: fmt.Sprintf("host-%d", h)})
	}
	routerBase := hostCount
	routerID := func(g, r int) int { return routerBase + g*routers + r }
	for g := 0; g < groups; g++ {
		for r := 0; r < routers; r++ {
			n.Nodes = append(n.Nodes, Node{ID: routerID(g, r), Kind: Switch, Label: fmt.Sprintf("g%d-r%d", g, r)})
		}
	}
	// Host links.
	for g := 0; g < groups; g++ {
		for r := 0; r < routers; r++ {
			for h := 0; h < hostsPerRouter; h++ {
				host := (g*routers+r)*hostsPerRouter + h
				n.Links = append(n.Links, Link{A: host, B: routerID(g, r)})
			}
		}
	}
	// Intra-group all-to-all.
	for g := 0; g < groups; g++ {
		for a := 0; a < routers; a++ {
			for b := a + 1; b < routers; b++ {
				n.Links = append(n.Links, Link{A: routerID(g, a), B: routerID(g, b)})
			}
		}
	}
	// One global link per group pair, round-robin over routers.
	pair := 0
	for ga := 0; ga < groups; ga++ {
		for gb := ga + 1; gb < groups; gb++ {
			ra := pair % routers
			rb := (pair + 1) % routers
			n.Links = append(n.Links, Link{A: routerID(ga, ra), B: routerID(gb, rb)})
			pair++
		}
	}
	n.build()
	return n, nil
}

// --- collective traffic matrices ---

// RingAllreduceFlows is the traffic matrix of a ring Allreduce over the
// given hosts: each host sends 2·(P−1)/P·msgBytes to its ring successor.
func RingAllreduceFlows(hosts []int, msgBytes int64) []Flow {
	p := len(hosts)
	if p < 2 {
		return nil
	}
	per := 2 * msgBytes * int64(p-1) / int64(p)
	flows := make([]Flow, 0, p)
	for i, h := range hosts {
		flows = append(flows, Flow{From: h, To: hosts[(i+1)%p], Bytes: per})
	}
	return flows
}

// TreeAggregationFlows is the traffic matrix of in-network aggregation
// over a switch tree embedded in the network: every host sends msgBytes
// toward an aggregation switch and receives msgBytes back. agg is the
// host the aggregate conceptually returns from; with true INC the
// reduction happens at the switches, so each host link carries msgBytes
// each way and the inter-switch links carry one aggregated msgBytes each
// way. This helper approximates that by routing host→agg and agg→host
// flows and then de-duplicating shared path prefixes via the aggregation
// property: callers should use INCLinkLoads instead for exact accounting.
func TreeAggregationFlows(hosts []int, agg int, msgBytes int64) []Flow {
	flows := make([]Flow, 0, 2*len(hosts))
	for _, h := range hosts {
		if h == agg {
			continue
		}
		flows = append(flows, Flow{From: h, To: agg, Bytes: msgBytes})
		flows = append(flows, Flow{From: agg, To: h, Bytes: msgBytes})
	}
	return flows
}

// INCLinkLoads computes exact link loads for in-network aggregation toward
// aggRoot: aggregation means each link carries msgBytes at most ONCE per
// direction regardless of how many host flows share it (partial sums merge
// at every switch; the multicast result fans out the same way).
func (n *Network) INCLinkLoads(hosts []int, aggRoot int, msgBytes int64) ([]int64, int64, error) {
	loads := make([]int64, len(n.Links))
	seen := make(map[int]bool) // links already carrying the aggregate
	for _, h := range hosts {
		if h == aggRoot {
			continue
		}
		path, err := n.ShortestPath(h, aggRoot)
		if err != nil {
			return nil, 0, err
		}
		for i := 0; i+1 < len(path); i++ {
			idx := n.lidx[linkKey(path[i], path[i+1])]
			if !seen[idx] {
				seen[idx] = true
				loads[idx] += 2 * msgBytes // once up (aggregating), once down (multicast)
			}
		}
	}
	var total int64
	for _, l := range loads {
		total += l
	}
	return loads, total, nil
}

// ReductionFactor compares host-based ring traffic against in-network
// aggregation on the same network: total ring link-bytes divided by total
// INC link-bytes — the paper's "2x" quantity, computed on a real graph.
func (n *Network) ReductionFactor(msgBytes int64) (float64, error) {
	hosts := n.Hosts()
	if len(hosts) < 2 {
		return 0, fmt.Errorf("topology: need >= 2 hosts")
	}
	_, ringTotal, err := n.LinkLoads(RingAllreduceFlows(hosts, msgBytes))
	if err != nil {
		return 0, err
	}
	_, incTotal, err := n.INCLinkLoads(hosts, hosts[0], msgBytes)
	if err != nil {
		return 0, err
	}
	if incTotal == 0 {
		return math.Inf(1), nil
	}
	return float64(ringTotal) / float64(incTotal), nil
}
