package mpi

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"
)

func TestSendrecvExchange(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(testTimeout, func(c *Comm) error {
		peer := 1 - c.Rank()
		out := []byte{byte(c.Rank() + 10)}
		in := make([]byte, 1)
		if _, err := c.Sendrecv(peer, 3, out, peer, 3, in); err != nil {
			return err
		}
		if in[0] != byte(peer+10) {
			return fmt.Errorf("rank %d got %d", c.Rank(), in[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitSubCommP2P(t *testing.T) {
	const p = 6
	w := NewWorld(p)
	err := w.Run(testTimeout, func(c *Comm) error {
		sub, err := c.Split(c.Rank()%2, 0)
		if err != nil {
			return err
		}
		// Within each sub-communicator, local rank 0 messages local rank 1.
		// The same local ranks exist in both groups; tags and sources must
		// not cross.
		if sub.Rank() == 0 {
			payload := []byte{byte(100 + c.Rank())}
			if err := sub.Send(1, 7, payload); err != nil {
				return err
			}
		}
		if sub.Rank() == 1 {
			buf := make([]byte, 1)
			n, src, err := sub.Recv(0, 7, buf)
			if err != nil {
				return err
			}
			if n != 1 || src != 0 {
				return fmt.Errorf("n=%d src=%d", n, src)
			}
			// The sender is the world rank with the same parity at local 0.
			want := byte(100 + c.Rank()%2)
			if buf[0] != want {
				return fmt.Errorf("world rank %d received %d, want %d (cross-communicator leak?)", c.Rank(), buf[0], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitCollectivesInterleave(t *testing.T) {
	const p = 8
	w := NewWorld(p)
	err := w.Run(testTimeout, func(c *Comm) error {
		sub, err := c.Split(c.Rank()/4, c.Rank())
		if err != nil {
			return err
		}
		// Interleave world and sub collectives repeatedly.
		for i := 0; i < 5; i++ {
			wbuf := make([]byte, 8)
			binary.LittleEndian.PutUint64(wbuf, 1)
			if err := c.Allreduce(wbuf, wbuf, 1, Uint64, SumInt64); err != nil {
				return err
			}
			if got := binary.LittleEndian.Uint64(wbuf); got != p {
				return fmt.Errorf("world sum = %d", got)
			}
			sbuf := make([]byte, 8)
			binary.LittleEndian.PutUint64(sbuf, 2)
			if err := sub.Allreduce(sbuf, sbuf, 1, Uint64, SumInt64); err != nil {
				return err
			}
			if got := binary.LittleEndian.Uint64(sbuf); got != 8 {
				return fmt.Errorf("sub sum = %d", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNestedSplit(t *testing.T) {
	const p = 8
	w := NewWorld(p)
	err := w.Run(testTimeout, func(c *Comm) error {
		half, err := c.Split(c.Rank()/4, 0) // two groups of 4
		if err != nil {
			return err
		}
		quarter, err := half.Split(half.Rank()/2, 0) // four groups of 2
		if err != nil {
			return err
		}
		if quarter.Size() != 2 {
			return fmt.Errorf("quarter size %d", quarter.Size())
		}
		buf := []byte{byte(c.Rank())}
		all := make([]byte, 2)
		if err := quarter.Allgather(buf, all, 1, Byte); err != nil {
			return err
		}
		// Partner is the adjacent world rank within the quarter.
		base := (c.Rank() / 2) * 2
		if all[0] != byte(base) || all[1] != byte(base+1) {
			return fmt.Errorf("rank %d sees quarter %v", c.Rank(), all)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitBadColor(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(testTimeout, func(c *Comm) error {
		if _, err := c.Split(-5, 0); err == nil {
			return fmt.Errorf("color -5 accepted")
		}
		// Both ranks must still agree on the collective count: issue the
		// failed Split's Allgather manually? No — Split(-5) fails before
		// communicating, so the communicator state is unchanged on both.
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSubCommGroupIsCopy(t *testing.T) {
	w := NewWorld(3)
	err := w.Run(testTimeout, func(c *Comm) error {
		sub, err := c.Split(0, 0)
		if err != nil {
			return err
		}
		g := sub.Group()
		g[0] = 99 // mutating the copy must not corrupt the communicator
		g2 := sub.Group()
		if g2[0] == 99 {
			return fmt.Errorf("Group() exposes internal state")
		}
		if !bytes.Equal([]byte{byte(g2[0]), byte(g2[1]), byte(g2[2])}, []byte{0, 1, 2}) {
			return fmt.Errorf("group = %v", g2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
