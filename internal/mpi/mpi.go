// Package mpi is a from-scratch message-passing runtime with MPI-style
// semantics: a World of P ranks (goroutines), point-to-point Send/Recv
// with (source, tag) matching and per-pair FIFO ordering, and the
// collectives HEAR relies on — Allreduce (four algorithms), the
// non-blocking Iallreduce used by libhear's pipelining, Bcast, Reduce,
// Allgather, Alltoall, Gather, Scatter, and Barrier.
//
// It substitutes for Cray MPICH in the paper's evaluation: HEAR only
// depends on the collective call structure (P ranks reducing element-wise
// with consistent indices), which this runtime provides with the same
// semantics. Per-rank traffic counters let experiments report bandwidth
// the way the paper does.
package mpi

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// message is one in-flight point-to-point transfer.
type message struct {
	from int
	tag  int
	data []byte
}

// mailbox is a rank's receive queue with MPI matching: messages arrive in
// send order per (source, destination) pair, and Recv consumes the first
// message matching (source, tag), leaving non-matching ones queued.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []message
	closed bool
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) put(msg message) {
	m.mu.Lock()
	m.queue = append(m.queue, msg)
	m.mu.Unlock()
	m.cond.Broadcast()
}

// AnySource matches messages from any rank.
const AnySource = -1

// get blocks until a matching message is available. Shutdown ordering: a
// queued matching message always wins — it is checked first on every wake
// — so a peer that sent and then exited is indistinguishable from a live
// peer. Only when no match is queued do the failure conditions apply, in
// order: world shutdown (ErrShutdown), a provably-dead source
// (ErrRankExited via dead), and an expired receive deadline (ErrTimeout).
// The timer and markExited both broadcast under m.mu, pairing with this
// loop's check-then-Wait so no wakeup is lost.
func (m *mailbox) get(from, tag int, timeout time.Duration, dead func(int) bool) (message, error) {
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if timeout > 0 {
		timer := time.AfterFunc(timeout, func() {
			m.mu.Lock()
			m.cond.Broadcast()
			m.mu.Unlock()
		})
		defer timer.Stop()
	}
	for {
		for i, msg := range m.queue {
			if (from == AnySource || msg.from == from) && msg.tag == tag {
				m.queue = append(m.queue[:i], m.queue[i+1:]...)
				return msg, nil
			}
		}
		if m.closed {
			return message{}, fmt.Errorf("mpi: receiving (source %d, tag %d): %w", from, tag, ErrShutdown)
		}
		if from != AnySource && dead != nil && dead(from) {
			return message{}, fmt.Errorf("mpi: rank %d exited before sending (tag %d): %w", from, tag, ErrRankExited)
		}
		if timeout > 0 && !time.Now().Before(deadline) {
			return message{}, fmt.Errorf("mpi: no message (source %d, tag %d) within %v: %w", from, tag, timeout, ErrTimeout)
		}
		m.cond.Wait()
	}
}

func (m *mailbox) close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.cond.Broadcast()
}

// Stats counts a rank's traffic; experiments use it to report bandwidth
// and to demonstrate INC's 2x host-traffic reduction.
type Stats struct {
	BytesSent     atomic.Uint64
	BytesReceived atomic.Uint64
	MessagesSent  atomic.Uint64
}

// World is a communicator universe of P in-process ranks.
type World struct {
	size        int
	mailboxes   []*mailbox
	stats       []Stats
	exited      []atomic.Bool // per-rank: goroutine returned from Run's body
	interceptor Interceptor   // nil = deliver everything verbatim
}

// NewWorld creates a world of the given size. It panics on size < 1
// because no program can make progress in an empty world.
func NewWorld(size int) *World {
	if size < 1 {
		panic("mpi: world size must be >= 1")
	}
	w := &World{
		size:      size,
		mailboxes: make([]*mailbox, size),
		stats:     make([]Stats, size),
		exited:    make([]atomic.Bool, size),
	}
	for i := range w.mailboxes {
		w.mailboxes[i] = newMailbox()
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// Stats returns the traffic counters of a rank.
func (w *World) Stats(rank int) *Stats { return &w.stats[rank] }

// Comm returns the communicator handle for one rank. Each handle must be
// used by a single goroutine at a time (like an MPI process).
func (w *World) Comm(rank int) *Comm {
	if rank < 0 || rank >= w.size {
		panic(fmt.Sprintf("mpi: rank %d outside world of size %d", rank, w.size))
	}
	return &Comm{world: w, rank: rank}
}

// Run spawns one goroutine per rank executing body and waits for all of
// them. Errors from all ranks are joined. A non-positive timeout means no
// watchdog; with a timeout, a hung collective surfaces as an error instead
// of deadlocking the test suite.
func (w *World) Run(timeout time.Duration, body func(c *Comm) error) error {
	for r := range w.exited {
		w.exited[r].Store(false)
	}
	errs := make([]error, w.size)
	var wg sync.WaitGroup
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer w.markExited(rank)
			defer func() {
				if rec := recover(); rec != nil {
					errs[rank] = fmt.Errorf("mpi: rank %d panicked: %v", rank, rec)
				}
			}()
			errs[rank] = body(w.Comm(rank))
		}(r)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	if timeout > 0 {
		select {
		case <-done:
		case <-time.After(timeout):
			for _, m := range w.mailboxes {
				m.close()
			}
			<-done
			return fmt.Errorf("mpi: world timed out after %v", timeout)
		}
	} else {
		<-done
	}
	return errors.Join(errs...)
}

// Comm is one rank's communicator handle. The world communicator has a
// nil group; sub-communicators created by Split carry a member list and a
// disjoint tag namespace.
type Comm struct {
	world       *World
	rank        int          // local rank within the communicator
	group       []int        // member world-ranks in rank order; nil = world
	tagBase     int          // tag namespace offset (0 for the world communicator)
	collSeq     int          // per-rank collective sequence; identical across ranks by MPI call-order semantics
	recvTimeout atomic.Int64 // receive deadline in ns; 0 = block forever (atomic: Iallreduce reads it off-goroutine)
}

// Rank returns this rank's index within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the communicator size.
func (c *Comm) Size() int {
	if c.group != nil {
		return len(c.group)
	}
	return c.world.size
}

// maxUserTag bounds user point-to-point tags; collective-internal tags
// live above it so user traffic can never match collective traffic.
const maxUserTag = 1 << 16

// Send delivers a copy of buf to rank `to` under tag. It is buffered
// (eager): it never blocks on the receiver.
func (c *Comm) Send(to, tag int, buf []byte) error {
	if err := c.checkPeer(to); err != nil {
		return err
	}
	if tag < 0 || tag >= maxUserTag {
		return fmt.Errorf("mpi: user tag %d outside [0, %d)", tag, maxUserTag)
	}
	c.send(to, c.tagBase+tag, buf)
	return nil
}

// send is the internal unchecked path used by collectives. to is a
// communicator-local rank; the wire tag must already be namespaced.
func (c *Comm) send(to, tag int, buf []byte) {
	data := make([]byte, len(buf))
	copy(data, buf)
	self := c.worldRank(c.rank)
	dst := c.worldRank(to)
	st := &c.world.stats[self]
	st.BytesSent.Add(uint64(len(buf)))
	st.MessagesSent.Add(1)
	c.world.stats[dst].BytesReceived.Add(uint64(len(buf)))
	frames := [][]byte{data}
	if ic := c.world.interceptor; ic != nil {
		// The interceptor owns the copy: it may mutate, drop (nil), or
		// duplicate it. Stats above count the logical send exactly once
		// regardless, so traffic accounting stays fault-independent.
		frames = ic(self, dst, tag, data)
	}
	for _, f := range frames {
		c.world.mailboxes[dst].put(message{from: self, tag: tag, data: f})
	}
}

// Recv blocks until a message from `from` (or AnySource) with tag arrives,
// copies it into buf, and returns the payload length and the source rank.
// A message longer than buf is an error (truncation would corrupt data).
func (c *Comm) Recv(from, tag int, buf []byte) (int, int, error) {
	if from != AnySource {
		if err := c.checkPeer(from); err != nil {
			return 0, 0, err
		}
	}
	wireFrom := from
	if from != AnySource {
		wireFrom = c.worldRank(from)
	}
	msg, err := c.world.mailboxes[c.worldRank(c.rank)].get(wireFrom, c.tagBase+tag, c.RecvTimeout(), c.world.isDead)
	if err != nil {
		return 0, 0, err
	}
	if len(msg.data) > len(buf) {
		return 0, 0, fmt.Errorf("mpi: message of %d B exceeds receive buffer of %d B", len(msg.data), len(buf))
	}
	copy(buf, msg.data)
	src := c.localRank(msg.from)
	if src < 0 {
		return 0, 0, fmt.Errorf("mpi: message from non-member world rank %d leaked into communicator", msg.from)
	}
	return len(msg.data), src, nil
}

// recv is the internal path used by collectives (tag already namespaced).
func (c *Comm) recv(from, tag int, buf []byte) (int, error) {
	msg, err := c.world.mailboxes[c.worldRank(c.rank)].get(c.worldRank(from), tag, c.RecvTimeout(), c.world.isDead)
	if err != nil {
		return 0, err
	}
	if len(msg.data) > len(buf) {
		return 0, fmt.Errorf("mpi: internal message of %d B exceeds buffer of %d B", len(msg.data), len(buf))
	}
	copy(buf, msg.data)
	return len(msg.data), nil
}

// Sendrecv performs a simultaneous exchange, safe against head-on
// deadlock because sends are eager.
func (c *Comm) Sendrecv(to, sendTag int, sendBuf []byte, from, recvTag int, recvBuf []byte) (int, error) {
	if err := c.Send(to, sendTag, sendBuf); err != nil {
		return 0, err
	}
	n, _, err := c.Recv(from, recvTag, recvBuf)
	return n, err
}

func (c *Comm) checkPeer(rank int) error {
	if rank < 0 || rank >= c.Size() {
		return fmt.Errorf("mpi: peer rank %d outside communicator of size %d", rank, c.Size())
	}
	if rank == c.rank {
		return fmt.Errorf("mpi: self-messaging not supported (rank %d)", rank)
	}
	return nil
}

// nextCollTag reserves a fresh tag block for one collective call. MPI
// requires every rank to invoke collectives in the same order, so the
// per-rank sequence numbers agree without communication.
func (c *Comm) nextCollTag() int {
	c.collSeq++
	return c.tagBase + maxUserTag + c.collSeq
}
