package mpi

import "fmt"

// Bcast broadcasts buf from root to every rank (binomial tree).
func (c *Comm) Bcast(root int, buf []byte) error {
	if root < 0 || root >= c.Size() {
		return fmt.Errorf("mpi: bcast root %d outside world", root)
	}
	return c.bcastWithTag(c.nextCollTag(), root, buf)
}

func (c *Comm) bcastWithTag(tag, root int, buf []byte) error {
	p := c.Size()
	if p == 1 {
		return nil
	}
	// Rotate so the binomial tree is rooted at rank 0: vrank 0 is the root,
	// every other vrank's parent is vrank with its highest set bit cleared,
	// and its children are vrank + mask for masks above that bit.
	vrank := (c.Rank() - root + p) % p
	childMask := 1
	if vrank != 0 {
		parent := vrank &^ (1 << (bitLen(vrank) - 1))
		if _, err := c.recv((parent+root)%p, tag, buf); err != nil {
			return err
		}
		childMask = 1 << bitLen(vrank)
	}
	for mask := childMask; vrank+mask < p; mask <<= 1 {
		c.send(((vrank+mask)+root)%p, tag, buf)
	}
	return nil
}

// bitLen is bits.Len for non-negative ints.
func bitLen(x int) int {
	n := 0
	for x > 0 {
		x >>= 1
		n++
	}
	return n
}

// Reduce reduces count elements into recvBuf on root only. recvBuf is
// ignored on non-root ranks (may be nil there).
func (c *Comm) Reduce(root int, sendBuf, recvBuf []byte, count int, dt Datatype, op Op) error {
	if root < 0 || root >= c.Size() {
		return fmt.Errorf("mpi: reduce root %d outside world", root)
	}
	nb := count * dt.Size
	if count <= 0 || len(sendBuf) < nb {
		return fmt.Errorf("mpi: reduce: bad count %d or send buffer %d B", count, len(sendBuf))
	}
	if c.Rank() == root && len(recvBuf) < nb {
		return fmt.Errorf("mpi: reduce: root receive buffer %d B < %d", len(recvBuf), nb)
	}
	tag := c.nextCollTag()
	// Reduce into rank 0's virtual position rooted at `root` by rotation.
	p, r := c.Size(), c.Rank()
	vrank := (r - root + p) % p
	work := make([]byte, nb)
	copy(work, sendBuf[:nb])
	scratch := make([]byte, nb)
	for mask := 1; mask < p; mask <<= 1 {
		if vrank&mask != 0 {
			c.send(((vrank-mask)+root)%p, tag, work)
			return nil
		}
		if vrank+mask < p {
			if _, err := c.recv(((vrank+mask)+root)%p, tag, scratch); err != nil {
				return err
			}
			foldElems(op, dt, work, scratch, count)
		}
	}
	copy(recvBuf[:nb], work)
	return nil
}

// Allgather gathers each rank's sendBuf (count elements) into recvBuf
// (size × count elements, rank-ordered) on every rank, via the ring
// algorithm.
func (c *Comm) Allgather(sendBuf, recvBuf []byte, count int, dt Datatype) error {
	p, r := c.Size(), c.Rank()
	nb := count * dt.Size
	if count <= 0 || len(sendBuf) < nb || len(recvBuf) < p*nb {
		return fmt.Errorf("mpi: allgather: bad buffers (%d, %d B) for %d × %d elements", len(sendBuf), len(recvBuf), p, count)
	}
	tag := c.nextCollTag()
	copy(recvBuf[r*nb:(r+1)*nb], sendBuf[:nb])
	if p == 1 {
		return nil
	}
	right, left := (r+1)%p, (r-1+p)%p
	for s := 0; s < p-1; s++ {
		sendIdx := (r - s + p) % p
		recvIdx := (r - s - 1 + p) % p
		c.send(right, tag, recvBuf[sendIdx*nb:(sendIdx+1)*nb])
		if _, err := c.recv(left, tag, recvBuf[recvIdx*nb:(recvIdx+1)*nb]); err != nil {
			return err
		}
	}
	return nil
}

// Alltoall sends block i of sendBuf to rank i and receives block r from
// every rank i into recvBuf block i. Both buffers hold size × count
// elements.
func (c *Comm) Alltoall(sendBuf, recvBuf []byte, count int, dt Datatype) error {
	p, r := c.Size(), c.Rank()
	nb := count * dt.Size
	if count <= 0 || len(sendBuf) < p*nb || len(recvBuf) < p*nb {
		return fmt.Errorf("mpi: alltoall: buffers too small for %d × %d elements", p, count)
	}
	tag := c.nextCollTag()
	copy(recvBuf[r*nb:(r+1)*nb], sendBuf[r*nb:(r+1)*nb])
	// Eager sends make the naive exchange deadlock-free; stagger targets to
	// avoid hot-spotting a single receiver.
	for s := 1; s < p; s++ {
		to := (r + s) % p
		from := (r - s + p) % p
		c.send(to, tag, sendBuf[to*nb:(to+1)*nb])
		if _, err := c.recv(from, tag, recvBuf[from*nb:(from+1)*nb]); err != nil {
			return err
		}
	}
	return nil
}

// Gather collects each rank's count elements into root's recvBuf.
func (c *Comm) Gather(root int, sendBuf, recvBuf []byte, count int, dt Datatype) error {
	p, r := c.Size(), c.Rank()
	if root < 0 || root >= p {
		return fmt.Errorf("mpi: gather root %d outside world", root)
	}
	nb := count * dt.Size
	if count <= 0 || len(sendBuf) < nb {
		return fmt.Errorf("mpi: gather: bad send buffer")
	}
	tag := c.nextCollTag()
	if r == root {
		if len(recvBuf) < p*nb {
			return fmt.Errorf("mpi: gather: receive buffer %d B < %d", len(recvBuf), p*nb)
		}
		copy(recvBuf[r*nb:(r+1)*nb], sendBuf[:nb])
		for i := 0; i < p; i++ {
			if i == root {
				continue
			}
			if _, err := c.recv(i, tag, recvBuf[i*nb:(i+1)*nb]); err != nil {
				return err
			}
		}
		return nil
	}
	c.send(root, tag, sendBuf[:nb])
	return nil
}

// Scatter distributes block i of root's sendBuf to rank i's recvBuf.
func (c *Comm) Scatter(root int, sendBuf, recvBuf []byte, count int, dt Datatype) error {
	p, r := c.Size(), c.Rank()
	if root < 0 || root >= p {
		return fmt.Errorf("mpi: scatter root %d outside world", root)
	}
	nb := count * dt.Size
	if count <= 0 || len(recvBuf) < nb {
		return fmt.Errorf("mpi: scatter: bad receive buffer")
	}
	tag := c.nextCollTag()
	if r == root {
		if len(sendBuf) < p*nb {
			return fmt.Errorf("mpi: scatter: send buffer %d B < %d", len(sendBuf), p*nb)
		}
		for i := 0; i < p; i++ {
			if i == root {
				continue
			}
			c.send(i, tag, sendBuf[i*nb:(i+1)*nb])
		}
		copy(recvBuf[:nb], sendBuf[r*nb:(r+1)*nb])
		return nil
	}
	_, err := c.recv(root, tag, recvBuf[:nb])
	return err
}

// Barrier blocks until every rank has entered it (dissemination barrier,
// ⌈log₂P⌉ rounds).
func (c *Comm) Barrier() error {
	p, r := c.Size(), c.Rank()
	if p == 1 {
		return nil
	}
	tag := c.nextCollTag()
	var token [1]byte
	for dist := 1; dist < p; dist <<= 1 {
		to := (r + dist) % p
		from := (r - dist + p) % p
		c.send(to, tag, token[:])
		if _, err := c.recv(from, tag, token[:]); err != nil {
			return err
		}
	}
	return nil
}
