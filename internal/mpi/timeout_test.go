package mpi

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestRecvTimeoutTyped: a receive with no matching sender unblocks within
// the deadline and reports ErrTimeout, not a hang or a shutdown error.
func TestRecvTimeoutTyped(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(testTimeout, func(c *Comm) error {
		if c.Rank() == 1 {
			return nil // never sends
		}
		c.SetRecvTimeout(50 * time.Millisecond)
		start := time.Now()
		_, _, err := c.Recv(AnySource, 7, make([]byte, 8))
		if err == nil {
			return errors.New("Recv succeeded with no sender")
		}
		if !errors.Is(err, ErrTimeout) {
			return fmt.Errorf("want ErrTimeout, got %v", err)
		}
		if d := time.Since(start); d > 5*time.Second {
			return fmt.Errorf("timeout took %v, deadline not honored", d)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRecvTimeoutMessageWins: a message that is already queued is always
// returned even when the deadline has long expired — timeouts only fire
// when nothing matches.
func TestRecvTimeoutMessageWins(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(testTimeout, func(c *Comm) error {
		if c.Rank() == 1 {
			return c.Send(0, 3, []byte("hi"))
		}
		// Wait for the eager send to land, then recv with a tiny deadline.
		time.Sleep(20 * time.Millisecond)
		c.SetRecvTimeout(time.Nanosecond)
		buf := make([]byte, 8)
		n, src, err := c.Recv(1, 3, buf)
		if err != nil {
			return fmt.Errorf("queued message lost to deadline: %v", err)
		}
		if n != 2 || src != 1 || string(buf[:2]) != "hi" {
			return fmt.Errorf("bad message: n=%d src=%d %q", n, src, buf[:n])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRecvFromExitedRank is the shutdown-ordering satellite: when a peer
// exits the Run body without sending, a pending Recv on it returns a typed
// ErrRankExited instead of hanging. But a peer that sent *before* exiting
// is indistinguishable from a live one — the queued message wins.
func TestRecvFromExitedRank(t *testing.T) {
	w := NewWorld(3)
	err := w.Run(testTimeout, func(c *Comm) error {
		switch c.Rank() {
		case 1:
			return nil // exits immediately, never sends
		case 2:
			if err := c.Send(0, 9, []byte("sent-then-exit")); err != nil {
				return err
			}
			return nil
		default:
			// Rank 1 is dead and never sent: typed error, no hang.
			_, _, err := c.Recv(1, 9, make([]byte, 32))
			if !errors.Is(err, ErrRankExited) {
				return fmt.Errorf("recv from silent dead rank: want ErrRankExited, got %v", err)
			}
			// Rank 2 sent eagerly before exiting: the message must win over
			// the dead flag, whatever order the exits landed in.
			buf := make([]byte, 32)
			n, _, err := c.Recv(2, 9, buf)
			if err != nil {
				return fmt.Errorf("recv of eager-sent message from exited rank: %v", err)
			}
			if string(buf[:n]) != "sent-then-exit" {
				return fmt.Errorf("bad payload %q", buf[:n])
			}
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCollectiveUnblocksOnPeerExit: a rank erroring out of a collective
// early must not strand the others. Every surviving rank's collective
// returns an error (typed, eventually rooted in the dead rank) and Run
// terminates without tripping its watchdog.
func TestCollectiveUnblocksOnPeerExit(t *testing.T) {
	for _, algo := range []Algorithm{AlgoRing, AlgoRecursiveDoubling, AlgoReduceBcast} {
		algo := algo
		t.Run(fmt.Sprintf("algo=%d", algo), func(t *testing.T) {
			w := NewWorld(4)
			injected := errors.New("injected failure")
			err := w.Run(testTimeout, func(c *Comm) error {
				if c.Rank() == 2 {
					return injected // dies before entering the collective
				}
				buf := make([]byte, 4*8)
				err := c.AllreduceAlgo(algo, buf, buf, 4, Uint64, SumInt64)
				if err == nil {
					return fmt.Errorf("rank %d: collective succeeded despite dead peer", c.Rank())
				}
				if !errors.Is(err, ErrRankExited) {
					return fmt.Errorf("rank %d: want ErrRankExited in chain, got %v", c.Rank(), err)
				}
				return nil
			})
			if err == nil {
				t.Fatal("Run returned nil; want the injected failure")
			}
			if !errors.Is(err, injected) {
				t.Fatalf("joined error missing injected failure: %v", err)
			}
			if errors.Is(err, ErrShutdown) {
				t.Fatalf("watchdog fired — a rank hung instead of failing typed: %v", err)
			}
		})
	}
}

// TestRunResetsExitedFlags: a world reused for a second Run must not see
// stale dead-rank flags from the first.
func TestRunResetsExitedFlags(t *testing.T) {
	w := NewWorld(2)
	for round := 0; round < 2; round++ {
		err := w.Run(testTimeout, func(c *Comm) error {
			if c.Rank() == 0 {
				return c.Send(1, 1, []byte{42})
			}
			_, _, err := c.Recv(0, 1, make([]byte, 4))
			return err
		})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}
