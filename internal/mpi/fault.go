package mpi

import (
	"errors"
	"time"
)

// Typed failure sentinels. HEAR's threat model makes partial failure an
// expected condition, so the runtime's blocking primitives fail typed and
// bounded instead of hanging: callers match with errors.Is and decide
// whether to retry (hear's verified-retry ladder), fall back, or abort.
var (
	// ErrTimeout reports a receive that exceeded the communicator's recv
	// deadline (SetRecvTimeout). The message may still arrive later — the
	// mailbox is untouched — but the caller has been unblocked.
	ErrTimeout = errors.New("mpi: receive deadline exceeded")

	// ErrRankExited reports a receive from a rank whose goroutine has
	// already returned from the World.Run body without the awaited message
	// ever being sent. Because sends are eager (buffered before the sender
	// can exit), a matching message always wins over this error: it fires
	// only when the peer is provably never going to send.
	ErrRankExited = errors.New("mpi: peer rank exited")

	// ErrShutdown reports a receive interrupted by the world shutting down
	// (watchdog timeout in World.Run).
	ErrShutdown = errors.New("mpi: world shut down")
)

// Interceptor intercepts every message delivery in a world — the hook the
// chaos layer (internal/chaos) uses to model an adversarial fabric. It is
// called on the sender's goroutine with the already-copied wire data and
// returns the frames actually delivered, in order: nil drops the message,
// a two-element slice duplicates it, and the data may be mutated or
// replaced to model corruption. Returning the input unchanged is the
// identity. It must be installed before the world runs and must be safe
// for concurrent use (ranks send in parallel).
type Interceptor func(from, to, tag int, data []byte) [][]byte

// SetInterceptor installs (or clears, with nil) the delivery interceptor.
// Call it before any rank starts sending.
func (w *World) SetInterceptor(ic Interceptor) { w.interceptor = ic }

// SetRecvTimeout bounds every subsequent blocking receive on this
// communicator handle — user Recv and the receives inside collectives —
// returning an error wrapping ErrTimeout instead of hanging when no
// matching message arrives in time. Zero restores unbounded blocking.
// The setting is per-handle: sub-communicators from Split start unbounded.
func (c *Comm) SetRecvTimeout(d time.Duration) { c.recvTimeout.Store(int64(d)) }

// RecvTimeout returns the handle's current receive deadline (0 = none).
func (c *Comm) RecvTimeout() time.Duration { return time.Duration(c.recvTimeout.Load()) }

// isDead reports whether a rank's goroutine has returned from Run's body.
func (w *World) isDead(rank int) bool { return w.exited[rank].Load() }

// markExited flags a rank as gone and wakes every blocked receiver so
// waits on the dead rank resolve to ErrRankExited. The lock/unlock pair
// per mailbox pairs the flag store with each receiver's check-then-Wait
// critical section, so no wakeup is lost.
func (w *World) markExited(rank int) {
	w.exited[rank].Store(true)
	for _, m := range w.mailboxes {
		m.mu.Lock()
		m.cond.Broadcast()
		m.mu.Unlock()
	}
}
