package mpi

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// This file adds MPI_Comm_split-style sub-communicators. A sub-communicator
// is a view over the world: a member list of world ranks plus a tag
// namespace, so its point-to-point and collective traffic can never match
// another communicator's. HEAR initializes keys *per communicator* (§5),
// which the hear package's InitOverComm exercises on top of Split.

// worldRank translates a communicator-local rank to a world rank.
func (c *Comm) worldRank(local int) int {
	if c.group == nil {
		return local
	}
	return c.group[local]
}

// localRank translates a world rank to this communicator's local rank, or
// -1 when the rank is not a member.
func (c *Comm) localRank(world int) int {
	if c.group == nil {
		return world
	}
	for i, w := range c.group {
		if w == world {
			return i
		}
	}
	return -1
}

// ColorExcluded marks a rank as not belonging to any result communicator
// (MPI_UNDEFINED in the standard); Split then returns (nil, nil) for it.
const ColorExcluded = -1

// Split partitions the communicator: ranks passing equal non-negative
// colors form a new communicator, ordered by (key, then current rank).
// It is collective — every member must call it. Excluded ranks receive a
// nil communicator.
func (c *Comm) Split(color, key int) (*Comm, error) {
	if color < ColorExcluded {
		return nil, fmt.Errorf("mpi: split color %d < %d", color, ColorExcluded)
	}
	// Gather everyone's (color, key) — 16 bytes per rank.
	rec := make([]byte, 16)
	binary.LittleEndian.PutUint64(rec, uint64(int64(color)))
	binary.LittleEndian.PutUint64(rec[8:], uint64(int64(key)))
	all := make([]byte, 16*c.Size())
	if err := c.Allgather(rec, all, 16, Byte); err != nil {
		return nil, fmt.Errorf("mpi: split exchange: %w", err)
	}
	// The split sequence number is identical on every member because
	// collectives execute in program order; it namespaces the child's tags.
	splitSeq := c.collSeq // incremented by the Allgather above

	if color == ColorExcluded {
		return nil, nil
	}
	type member struct {
		localRank int
		key       int
	}
	var members []member
	for r := 0; r < c.Size(); r++ {
		col := int(int64(binary.LittleEndian.Uint64(all[r*16:])))
		k := int(int64(binary.LittleEndian.Uint64(all[r*16+8:])))
		if col == color {
			members = append(members, member{localRank: r, key: k})
		}
	}
	sort.SliceStable(members, func(i, j int) bool {
		if members[i].key != members[j].key {
			return members[i].key < members[j].key
		}
		return members[i].localRank < members[j].localRank
	})
	group := make([]int, len(members))
	myIdx := -1
	for i, m := range members {
		group[i] = c.worldRank(m.localRank)
		if m.localRank == c.rank {
			myIdx = i
		}
	}
	if myIdx < 0 {
		return nil, fmt.Errorf("mpi: split internal error: caller missing from its own color group")
	}
	// Child tag namespace: parent base shifted by the split sequence. Two
	// groups born of the same Split share a base, but their member sets are
	// disjoint, so (source, tag) matching cannot cross them.
	childBase := c.tagBase + splitSeq*tagSpacePerComm
	return &Comm{
		world:   c.world,
		rank:    myIdx,
		group:   group,
		tagBase: childBase,
	}, nil
}

// tagSpacePerComm separates communicator tag namespaces. A communicator
// may issue up to this many collectives (and user tags) before its tags
// could collide with a sibling created later — far beyond any test or
// example in this repository; a production runtime would recycle
// communicator ids instead.
const tagSpacePerComm = 1 << 24

// Translate wraps this communicator's group for callers (like the hear
// package's per-communicator key exchange) that need member identities.
func (c *Comm) Group() []int {
	if c.group == nil {
		out := make([]int, c.world.size)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := make([]int, len(c.group))
	copy(out, c.group)
	return out
}
