package mpi

import (
	"fmt"
	"testing"
)

func TestCollectiveArgumentErrors(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(testTimeout, func(c *Comm) error {
		buf := make([]byte, 64)
		// Bcast root range.
		if err := c.Bcast(-1, buf); err == nil {
			return fmt.Errorf("bcast root -1 accepted")
		}
		if err := c.Bcast(7, buf); err == nil {
			return fmt.Errorf("bcast root 7 accepted")
		}
		// Reduce argument checks.
		if err := c.Reduce(9, buf, buf, 1, Uint64, SumInt64); err == nil {
			return fmt.Errorf("reduce root 9 accepted")
		}
		if err := c.Reduce(0, buf, buf, 0, Uint64, SumInt64); err == nil {
			return fmt.Errorf("reduce count 0 accepted")
		}
		if c.Rank() == 0 {
			if err := c.Reduce(0, buf, make([]byte, 4), 8, Uint64, SumInt64); err == nil {
				return fmt.Errorf("short root recv accepted")
			}
		}
		// Allgather/Alltoall buffers.
		if err := c.Allgather(buf, make([]byte, 4), 8, Uint64); err == nil {
			return fmt.Errorf("short allgather recv accepted")
		}
		if err := c.Alltoall(make([]byte, 4), buf, 8, Uint64); err == nil {
			return fmt.Errorf("short alltoall send accepted")
		}
		// Gather/Scatter roots and buffers.
		if err := c.Gather(5, buf, buf, 1, Uint64); err == nil {
			return fmt.Errorf("gather root 5 accepted")
		}
		if err := c.Scatter(-2, buf, buf, 1, Uint64); err == nil {
			return fmt.Errorf("scatter root -2 accepted")
		}
		if err := c.Scatter(0, buf, make([]byte, 2), 1, Uint64); err == nil {
			return fmt.Errorf("short scatter recv accepted")
		}
		// Ring allreduce explicit with count < size.
		if err := c.AllreduceAlgo(AlgoRing, buf, buf, 1, Uint64, SumInt64); err == nil {
			return fmt.Errorf("ring with count < size accepted")
		}
		// Unknown algorithm.
		if err := c.AllreduceAlgo(Algorithm(42), buf, buf, 8, Uint64, SumInt64); err == nil {
			return fmt.Errorf("unknown algorithm accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIallreduceArgumentErrors(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(testTimeout, func(c *Comm) error {
		buf := make([]byte, 8)
		if _, err := c.Iallreduce(buf, buf, 0, Uint64, SumInt64); err == nil {
			return fmt.Errorf("zero-count iallreduce accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlgorithmStrings(t *testing.T) {
	for algo, want := range map[Algorithm]string{
		AlgoAuto:              "auto",
		AlgoRing:              "ring",
		AlgoRecursiveDoubling: "recursive-doubling",
		AlgoReduceBcast:       "reduce-bcast",
		Algorithm(9):          "algorithm(9)",
	} {
		if got := algo.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(algo), got, want)
		}
	}
}

func TestSingleRankCollectives(t *testing.T) {
	w := NewWorld(1)
	err := w.Run(testTimeout, func(c *Comm) error {
		buf := []byte{1, 2, 3, 4, 5, 6, 7, 8}
		if err := c.Allreduce(buf, buf, 1, Uint64, SumInt64); err != nil {
			return err
		}
		if err := c.Bcast(0, buf); err != nil {
			return err
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		out := make([]byte, 8)
		if err := c.Allgather(buf, out, 1, Uint64); err != nil {
			return err
		}
		if err := c.Alltoall(buf, out, 1, Uint64); err != nil {
			return err
		}
		recv := make([]byte, 8)
		if err := c.Reduce(0, buf, recv, 1, Uint64, SumInt64); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWorldCommPanicsOutOfRange(t *testing.T) {
	w := NewWorld(2)
	defer func() {
		if recover() == nil {
			t.Error("Comm(5) did not panic")
		}
	}()
	w.Comm(5)
}

// In-place allreduce where send and recv alias but with reduce-bcast: the
// non-root ranks must still end with the full result.
func TestReduceBcastAllRanksGetResult(t *testing.T) {
	const p = 5
	w := NewWorld(p)
	err := w.Run(testTimeout, func(c *Comm) error {
		buf := make([]byte, 8)
		buf[0] = 1
		if err := c.AllreduceAlgo(AlgoReduceBcast, buf, buf, 1, Uint64, SumInt64); err != nil {
			return err
		}
		if buf[0] != p {
			return fmt.Errorf("rank %d: %d", c.Rank(), buf[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
