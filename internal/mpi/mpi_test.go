package mpi

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

const testTimeout = 30 * time.Second

func TestNewWorldPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewWorld(0) did not panic")
		}
	}()
	NewWorld(0)
}

func TestSendRecvBasic(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(testTimeout, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 7, []byte("hello"))
		}
		buf := make([]byte, 16)
		n, from, err := c.Recv(0, 7, buf)
		if err != nil {
			return err
		}
		if n != 5 || from != 0 || string(buf[:5]) != "hello" {
			return fmt.Errorf("got %q from %d (%d B)", buf[:n], from, n)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvMatchesTagAndSource(t *testing.T) {
	w := NewWorld(3)
	err := w.Run(testTimeout, func(c *Comm) error {
		switch c.Rank() {
		case 0:
			if err := c.Send(2, 1, []byte{0xA}); err != nil {
				return err
			}
		case 1:
			if err := c.Send(2, 2, []byte{0xB}); err != nil {
				return err
			}
		case 2:
			buf := make([]byte, 1)
			// Receive tag 2 first even if tag 1 arrived earlier.
			if _, _, err := c.Recv(1, 2, buf); err != nil {
				return err
			}
			if buf[0] != 0xB {
				return fmt.Errorf("tag 2 payload %#x", buf[0])
			}
			if _, _, err := c.Recv(0, 1, buf); err != nil {
				return err
			}
			if buf[0] != 0xA {
				return fmt.Errorf("tag 1 payload %#x", buf[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvAnySource(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(testTimeout, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 3, []byte{42})
		}
		buf := make([]byte, 1)
		_, from, err := c.Recv(AnySource, 3, buf)
		if err != nil {
			return err
		}
		if from != 0 || buf[0] != 42 {
			return fmt.Errorf("from=%d payload=%d", from, buf[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFIFOPerPair(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(testTimeout, func(c *Comm) error {
		const k = 100
		if c.Rank() == 0 {
			for i := 0; i < k; i++ {
				if err := c.Send(1, 5, []byte{byte(i)}); err != nil {
					return err
				}
			}
			return nil
		}
		buf := make([]byte, 1)
		for i := 0; i < k; i++ {
			if _, _, err := c.Recv(0, 5, buf); err != nil {
				return err
			}
			if buf[0] != byte(i) {
				return fmt.Errorf("message %d arrived out of order (%d)", i, buf[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendErrors(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(testTimeout, func(c *Comm) error {
		if c.Rank() != 0 {
			return nil
		}
		if err := c.Send(5, 0, nil); err == nil {
			return fmt.Errorf("out-of-range peer accepted")
		}
		if err := c.Send(0, 0, nil); err == nil {
			return fmt.Errorf("self-send accepted")
		}
		if err := c.Send(1, maxUserTag, nil); err == nil {
			return fmt.Errorf("oversized tag accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvTruncationIsError(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(testTimeout, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 1, make([]byte, 64))
		}
		_, _, err := c.Recv(0, 1, make([]byte, 8))
		if err == nil {
			return fmt.Errorf("truncating receive succeeded")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunTimeout(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(100*time.Millisecond, func(c *Comm) error {
		if c.Rank() == 0 {
			// Rank 0 waits for a message that never comes.
			_, _, err := c.Recv(1, 9, make([]byte, 1))
			return err
		}
		return nil
	})
	if err == nil {
		t.Fatal("hung world did not time out")
	}
}

func TestRunRecoversPanics(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(testTimeout, func(c *Comm) error {
		if c.Rank() == 1 {
			panic("rank 1 exploded")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panic not surfaced")
	}
}

func fillU64(rng *rand.Rand, n int) ([]byte, []uint64) {
	buf := make([]byte, n*8)
	vals := make([]uint64, n)
	for i := range vals {
		vals[i] = rng.Uint64()
		binary.LittleEndian.PutUint64(buf[i*8:], vals[i])
	}
	return buf, vals
}

func testAllreduceSum(t *testing.T, algo Algorithm, p, count int) {
	t.Helper()
	w := NewWorld(p)
	want := make([]uint64, count)
	sends := make([][]byte, p)
	for r := 0; r < p; r++ {
		rng := rand.New(rand.NewSource(int64(r*1000 + count)))
		buf, vals := fillU64(rng, count)
		sends[r] = buf
		for j, v := range vals {
			want[j] += v
		}
	}
	err := w.Run(testTimeout, func(c *Comm) error {
		recv := make([]byte, count*8)
		if err := c.AllreduceAlgo(algo, sends[c.Rank()], recv, count, Uint64, SumInt64); err != nil {
			return err
		}
		for j := 0; j < count; j++ {
			if got := binary.LittleEndian.Uint64(recv[j*8:]); got != want[j] {
				return fmt.Errorf("rank %d elem %d: got %d, want %d", c.Rank(), j, got, want[j])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("%v p=%d count=%d: %v", algo, p, count, err)
	}
}

func TestAllreduceAllAlgorithmsAllSizes(t *testing.T) {
	for _, algo := range []Algorithm{AlgoRing, AlgoRecursiveDoubling, AlgoReduceBcast, AlgoAuto} {
		for _, p := range []int{1, 2, 3, 4, 5, 7, 8, 16} {
			for _, count := range []int{16, 33, 1024} {
				if algo == AlgoRing && count < p {
					continue
				}
				testAllreduceSum(t, algo, p, count)
			}
		}
	}
}

func TestAllreduceSmallCountFallsBackFromRing(t *testing.T) {
	// Auto must handle count < size by picking recursive doubling.
	testAllreduceSum(t, AlgoAuto, 8, 2)
}

func TestAllreduceInPlace(t *testing.T) {
	const p, count = 4, 64
	w := NewWorld(p)
	err := w.Run(testTimeout, func(c *Comm) error {
		buf := make([]byte, count*8)
		for j := 0; j < count; j++ {
			binary.LittleEndian.PutUint64(buf[j*8:], uint64(c.Rank()+1))
		}
		if err := c.Allreduce(buf, buf, count, Uint64, SumInt64); err != nil {
			return err
		}
		want := uint64(p * (p + 1) / 2)
		for j := 0; j < count; j++ {
			if got := binary.LittleEndian.Uint64(buf[j*8:]); got != want {
				return fmt.Errorf("elem %d: got %d, want %d", j, got, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceErrors(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(testTimeout, func(c *Comm) error {
		buf := make([]byte, 8)
		if err := c.Allreduce(buf, buf, 0, Uint64, SumInt64); err == nil {
			return fmt.Errorf("zero count accepted")
		}
		if err := c.Allreduce(buf, buf, 2, Uint64, SumInt64); err == nil {
			return fmt.Errorf("short buffer accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestIallreduceOverlap(t *testing.T) {
	const p, count = 4, 512
	w := NewWorld(p)
	err := w.Run(testTimeout, func(c *Comm) error {
		// Launch two non-blocking allreduces, then wait in reverse order.
		a := make([]byte, count*8)
		b := make([]byte, count*8)
		for j := 0; j < count; j++ {
			binary.LittleEndian.PutUint64(a[j*8:], 1)
			binary.LittleEndian.PutUint64(b[j*8:], 2)
		}
		r1, err := c.Iallreduce(a, a, count, Uint64, SumInt64)
		if err != nil {
			return err
		}
		r2, err := c.Iallreduce(b, b, count, Uint64, SumInt64)
		if err != nil {
			return err
		}
		if err := r2.Wait(); err != nil {
			return err
		}
		if err := r1.Wait(); err != nil {
			return err
		}
		if got := binary.LittleEndian.Uint64(a); got != uint64(p) {
			return fmt.Errorf("first allreduce: %d, want %d", got, p)
		}
		if got := binary.LittleEndian.Uint64(b); got != uint64(2*p) {
			return fmt.Errorf("second allreduce: %d, want %d", got, 2*p)
		}
		done, err := r1.Test()
		if !done || err != nil {
			return fmt.Errorf("Test after Wait: %v %v", done, err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBcastAllRootsAllSizes(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8, 13} {
		for root := 0; root < p; root += 2 {
			w := NewWorld(p)
			payload := []byte{1, 2, 3, 4, 5}
			err := w.Run(testTimeout, func(c *Comm) error {
				buf := make([]byte, len(payload))
				if c.Rank() == root {
					copy(buf, payload)
				}
				if err := c.Bcast(root, buf); err != nil {
					return err
				}
				if !bytes.Equal(buf, payload) {
					return fmt.Errorf("rank %d got %v", c.Rank(), buf)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("p=%d root=%d: %v", p, root, err)
			}
		}
	}
}

func TestReduceToEveryRoot(t *testing.T) {
	const p, count = 6, 16
	for root := 0; root < p; root++ {
		w := NewWorld(p)
		err := w.Run(testTimeout, func(c *Comm) error {
			send := make([]byte, count*8)
			for j := 0; j < count; j++ {
				binary.LittleEndian.PutUint64(send[j*8:], uint64(c.Rank()+j))
			}
			var recv []byte
			if c.Rank() == root {
				recv = make([]byte, count*8)
			}
			if err := c.Reduce(root, send, recv, count, Uint64, SumInt64); err != nil {
				return err
			}
			if c.Rank() == root {
				for j := 0; j < count; j++ {
					want := uint64(p*(p-1)/2 + p*j)
					if got := binary.LittleEndian.Uint64(recv[j*8:]); got != want {
						return fmt.Errorf("elem %d: got %d, want %d", j, got, want)
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("root=%d: %v", root, err)
		}
	}
}

func TestAllgather(t *testing.T) {
	for _, p := range []int{1, 2, 4, 7} {
		w := NewWorld(p)
		err := w.Run(testTimeout, func(c *Comm) error {
			send := make([]byte, 8)
			binary.LittleEndian.PutUint64(send, uint64(c.Rank()*11))
			recv := make([]byte, p*8)
			if err := c.Allgather(send, recv, 1, Uint64); err != nil {
				return err
			}
			for i := 0; i < p; i++ {
				if got := binary.LittleEndian.Uint64(recv[i*8:]); got != uint64(i*11) {
					return fmt.Errorf("slot %d: got %d", i, got)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestAlltoall(t *testing.T) {
	for _, p := range []int{1, 2, 3, 6} {
		w := NewWorld(p)
		err := w.Run(testTimeout, func(c *Comm) error {
			send := make([]byte, p*8)
			for i := 0; i < p; i++ {
				binary.LittleEndian.PutUint64(send[i*8:], uint64(c.Rank()*100+i))
			}
			recv := make([]byte, p*8)
			if err := c.Alltoall(send, recv, 1, Uint64); err != nil {
				return err
			}
			for i := 0; i < p; i++ {
				want := uint64(i*100 + c.Rank())
				if got := binary.LittleEndian.Uint64(recv[i*8:]); got != want {
					return fmt.Errorf("rank %d slot %d: got %d, want %d", c.Rank(), i, got, want)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
	}
}

func TestGatherScatterRoundTrip(t *testing.T) {
	const p = 5
	w := NewWorld(p)
	err := w.Run(testTimeout, func(c *Comm) error {
		send := make([]byte, 4)
		binary.LittleEndian.PutUint32(send, uint32(c.Rank()+1))
		var gathered []byte
		if c.Rank() == 2 {
			gathered = make([]byte, p*4)
		}
		if err := c.Gather(2, send, gathered, 1, Uint32); err != nil {
			return err
		}
		if c.Rank() == 2 {
			for i := 0; i < p; i++ {
				if got := binary.LittleEndian.Uint32(gathered[i*4:]); got != uint32(i+1) {
					return fmt.Errorf("gather slot %d: %d", i, got)
				}
			}
		}
		out := make([]byte, 4)
		if err := c.Scatter(2, gathered, out, 1, Uint32); err != nil {
			return err
		}
		if got := binary.LittleEndian.Uint32(out); got != uint32(c.Rank()+1) {
			return fmt.Errorf("scatter returned %d to rank %d", got, c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrier(t *testing.T) {
	const p = 8
	w := NewWorld(p)
	var counter [p]int32
	err := w.Run(testTimeout, func(c *Comm) error {
		// Phase 1 writes, barrier, phase 2 reads: without a working barrier
		// some rank would observe a zero.
		counter[c.Rank()] = 1
		if err := c.Barrier(); err != nil {
			return err
		}
		for i := 0; i < p; i++ {
			if counter[i] != 1 {
				return fmt.Errorf("rank %d saw rank %d unarrived", c.Rank(), i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStatsCountTraffic(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(testTimeout, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 4, make([]byte, 100))
		}
		_, _, err := c.Recv(0, 4, make([]byte, 100))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Stats(0).BytesSent.Load(); got != 100 {
		t.Errorf("rank 0 sent %d B", got)
	}
	if got := w.Stats(1).BytesReceived.Load(); got != 100 {
		t.Errorf("rank 1 received %d B", got)
	}
	if got := w.Stats(0).MessagesSent.Load(); got != 1 {
		t.Errorf("rank 0 sent %d messages", got)
	}
}

func TestMaxMinOps(t *testing.T) {
	const p = 4
	w := NewWorld(p)
	err := w.Run(testTimeout, func(c *Comm) error {
		v := int64(c.Rank()*10 - 15) // -15, -5, 5, 15
		buf := make([]byte, 8)
		binary.LittleEndian.PutUint64(buf, uint64(v))
		maxOut := make([]byte, 8)
		if err := c.Allreduce(buf, maxOut, 1, Int64, MaxInt64); err != nil {
			return err
		}
		if got := int64(binary.LittleEndian.Uint64(maxOut)); got != 15 {
			return fmt.Errorf("max = %d", got)
		}
		minOut := make([]byte, 8)
		if err := c.Allreduce(buf, minOut, 1, Int64, MinInt64); err != nil {
			return err
		}
		if got := int64(binary.LittleEndian.Uint64(minOut)); got != -15 {
			return fmt.Errorf("min = %d", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBXorAllreduce(t *testing.T) {
	const p = 5
	w := NewWorld(p)
	want := uint64(0)
	for r := 0; r < p; r++ {
		want ^= uint64(r)*0x9E3779B97F4A7C15 + 1
	}
	err := w.Run(testTimeout, func(c *Comm) error {
		buf := make([]byte, 8)
		binary.LittleEndian.PutUint64(buf, uint64(c.Rank())*0x9E3779B97F4A7C15+1)
		if err := c.Allreduce(buf, buf, 1, Uint64, BXor); err != nil {
			return err
		}
		if got := binary.LittleEndian.Uint64(buf); got != want {
			return fmt.Errorf("xor = %#x, want %#x", got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestChunkBounds(t *testing.T) {
	for _, tc := range []struct{ count, size int }{{10, 3}, {7, 7}, {100, 8}, {5, 4}, {16, 16}} {
		b := chunkBounds(tc.count, tc.size)
		if len(b) != tc.size+1 || b[0] != 0 || b[tc.size] != tc.count {
			t.Fatalf("chunkBounds(%d,%d) = %v", tc.count, tc.size, b)
		}
		for i := 0; i < tc.size; i++ {
			d := b[i+1] - b[i]
			if d < tc.count/tc.size || d > tc.count/tc.size+1 {
				t.Fatalf("chunkBounds(%d,%d): chunk %d has %d elements", tc.count, tc.size, i, d)
			}
		}
	}
}

func BenchmarkAllreduceRing16MiBWorld4(b *testing.B) {
	benchAllreduce(b, AlgoRing, 4, 16<<20)
}

func BenchmarkAllreduceRD16BWorld4(b *testing.B) {
	benchAllreduce(b, AlgoRecursiveDoubling, 4, 16)
}

func benchAllreduce(b *testing.B, algo Algorithm, p, bytes int) {
	w := NewWorld(p)
	count := bytes / 8
	b.SetBytes(int64(bytes))
	b.ResetTimer()
	err := w.Run(0, func(c *Comm) error {
		buf := make([]byte, count*8)
		for i := 0; i < b.N; i++ {
			if err := c.AllreduceAlgo(algo, buf, buf, count, Uint64, SumInt64); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}
