package mpi

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Datatype describes the element layout of a typed buffer.
type Datatype struct {
	Name string
	Size int // bytes per element
}

// Predefined datatypes. HEAR ciphertext datatypes (odd sizes from γ > 0)
// are created with CipherType.
var (
	Byte    = Datatype{Name: "byte", Size: 1}
	Int32   = Datatype{Name: "int32", Size: 4}
	Int64   = Datatype{Name: "int64", Size: 8}
	Uint32  = Datatype{Name: "uint32", Size: 4}
	Uint64  = Datatype{Name: "uint64", Size: 8}
	Float32 = Datatype{Name: "float32", Size: 4}
	Float64 = Datatype{Name: "float64", Size: 8}
)

// CipherType builds a datatype for HEAR ciphertext elements of the given
// byte size (e.g. 5-byte FP32 ciphertexts at γ = 2).
func CipherType(size int) Datatype {
	return Datatype{Name: fmt.Sprintf("cipher%d", size*8), Size: size}
}

// Op is an elementwise reduction operator over wire buffers. Fold must
// compute dst[j] = dst[j] ⊙ src[j] for n elements.
type Op struct {
	Name string
	Fold func(dst, src []byte, n int)
}

// OpFrom wraps an arbitrary fold function (used to plug HEAR scheme
// reductions into the collectives).
func OpFrom(name string, fold func(dst, src []byte, n int)) Op {
	return Op{Name: name, Fold: fold}
}

// Integer sums are wrapping (mod 2^width) — the property the lossless
// integer schemes rely on.
var (
	SumInt32 = Op{Name: "sum-int32", Fold: func(dst, src []byte, n int) {
		for j := 0; j < n; j++ {
			o := j * 4
			binary.LittleEndian.PutUint32(dst[o:], binary.LittleEndian.Uint32(dst[o:])+binary.LittleEndian.Uint32(src[o:]))
		}
	}}
	SumInt64 = Op{Name: "sum-int64", Fold: func(dst, src []byte, n int) {
		for j := 0; j < n; j++ {
			o := j * 8
			binary.LittleEndian.PutUint64(dst[o:], binary.LittleEndian.Uint64(dst[o:])+binary.LittleEndian.Uint64(src[o:]))
		}
	}}
	ProdInt64 = Op{Name: "prod-int64", Fold: func(dst, src []byte, n int) {
		for j := 0; j < n; j++ {
			o := j * 8
			binary.LittleEndian.PutUint64(dst[o:], binary.LittleEndian.Uint64(dst[o:])*binary.LittleEndian.Uint64(src[o:]))
		}
	}}
	BXor = Op{Name: "bxor", Fold: func(dst, src []byte, n int) {
		// XOR is width-agnostic: fold the whole byte span regardless of the
		// element size the count refers to.
		for i := range dst {
			dst[i] ^= src[i]
		}
	}}
	SumFloat32 = Op{Name: "sum-float32", Fold: func(dst, src []byte, n int) {
		for j := 0; j < n; j++ {
			o := j * 4
			v := math.Float32frombits(binary.LittleEndian.Uint32(dst[o:])) + math.Float32frombits(binary.LittleEndian.Uint32(src[o:]))
			binary.LittleEndian.PutUint32(dst[o:], math.Float32bits(v))
		}
	}}
	SumFloat64 = Op{Name: "sum-float64", Fold: func(dst, src []byte, n int) {
		for j := 0; j < n; j++ {
			o := j * 8
			v := math.Float64frombits(binary.LittleEndian.Uint64(dst[o:])) + math.Float64frombits(binary.LittleEndian.Uint64(src[o:]))
			binary.LittleEndian.PutUint64(dst[o:], math.Float64bits(v))
		}
	}}
	MaxInt64 = Op{Name: "max-int64", Fold: func(dst, src []byte, n int) {
		for j := 0; j < n; j++ {
			o := j * 8
			a := int64(binary.LittleEndian.Uint64(dst[o:]))
			b := int64(binary.LittleEndian.Uint64(src[o:]))
			if b > a {
				binary.LittleEndian.PutUint64(dst[o:], uint64(b))
			}
		}
	}}
	MinInt64 = Op{Name: "min-int64", Fold: func(dst, src []byte, n int) {
		for j := 0; j < n; j++ {
			o := j * 8
			a := int64(binary.LittleEndian.Uint64(dst[o:]))
			b := int64(binary.LittleEndian.Uint64(src[o:]))
			if b < a {
				binary.LittleEndian.PutUint64(dst[o:], uint64(b))
			}
		}
	}}
)

// foldElems applies op over exactly count elements of datatype dt. The
// slices are trimmed to the element span so byte-oriented folds (BXor) and
// element-oriented folds see consistent extents.
func foldElems(op Op, dt Datatype, dst, src []byte, count int) {
	nb := count * dt.Size
	op.Fold(dst[:nb], src[:nb], count)
}
