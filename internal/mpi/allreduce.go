package mpi

import (
	"fmt"
)

// Algorithm selects an Allreduce implementation. The paper's evaluation
// exercises both latency-bound (16 B) and bandwidth-bound (16 MiB)
// regimes; the runtime provides the textbook algorithm for each plus a
// tree reduction mirroring the INC aggregation topology.
type Algorithm int

const (
	// AlgoAuto picks recursive doubling for small messages and the
	// bandwidth-optimal ring for large ones.
	AlgoAuto Algorithm = iota
	// AlgoRing is reduce-scatter + allgather: 2(P−1)/P · n bytes per rank,
	// bandwidth optimal for large messages.
	AlgoRing
	// AlgoRecursiveDoubling is ⌈log₂P⌉ rounds of full-vector exchange,
	// latency optimal for small messages.
	AlgoRecursiveDoubling
	// AlgoReduceBcast is a binomial reduce to rank 0 followed by a binomial
	// broadcast — the host-side analogue of tree aggregation.
	AlgoReduceBcast
)

func (a Algorithm) String() string {
	switch a {
	case AlgoAuto:
		return "auto"
	case AlgoRing:
		return "ring"
	case AlgoRecursiveDoubling:
		return "recursive-doubling"
	case AlgoReduceBcast:
		return "reduce-bcast"
	default:
		return fmt.Sprintf("algorithm(%d)", int(a))
	}
}

// smallMessageBytes is the auto-selection crossover.
const smallMessageBytes = 8192

// Allreduce reduces count elements of dt from sendBuf element-wise with op
// across all ranks and leaves the identical result in recvBuf on every
// rank. sendBuf and recvBuf may alias.
func (c *Comm) Allreduce(sendBuf, recvBuf []byte, count int, dt Datatype, op Op) error {
	return c.AllreduceAlgo(AlgoAuto, sendBuf, recvBuf, count, dt, op)
}

// AllreduceAlgo is Allreduce with an explicit algorithm choice.
func (c *Comm) AllreduceAlgo(algo Algorithm, sendBuf, recvBuf []byte, count int, dt Datatype, op Op) error {
	if err := c.checkCollArgs(sendBuf, recvBuf, count, dt); err != nil {
		return err
	}
	tag := c.nextCollTag()
	return c.allreduceWithTag(algo, tag, sendBuf, recvBuf, count, dt, op)
}

func (c *Comm) allreduceWithTag(algo Algorithm, tag int, sendBuf, recvBuf []byte, count int, dt Datatype, op Op) error {
	nb := count * dt.Size
	if &sendBuf[0] != &recvBuf[0] {
		copy(recvBuf[:nb], sendBuf[:nb])
	}
	if c.Size() == 1 {
		return nil
	}
	if algo == AlgoAuto {
		if nb <= smallMessageBytes || count < c.Size() {
			algo = AlgoRecursiveDoubling
		} else {
			algo = AlgoRing
		}
	}
	switch algo {
	case AlgoRing:
		if count < c.Size() {
			return fmt.Errorf("mpi: ring allreduce needs count >= size (%d < %d)", count, c.Size())
		}
		return c.ringAllreduce(tag, recvBuf, count, dt, op)
	case AlgoRecursiveDoubling:
		return c.rdAllreduce(tag, recvBuf, count, dt, op)
	case AlgoReduceBcast:
		if err := c.treeReduce(tag, recvBuf, count, dt, op); err != nil {
			return err
		}
		return c.bcastWithTag(tag, 0, recvBuf[:nb])
	default:
		return fmt.Errorf("mpi: unknown allreduce algorithm %v", algo)
	}
}

func (c *Comm) checkCollArgs(sendBuf, recvBuf []byte, count int, dt Datatype) error {
	if count < 0 {
		return fmt.Errorf("mpi: negative count %d", count)
	}
	if count == 0 {
		return fmt.Errorf("mpi: zero-element collective")
	}
	nb := count * dt.Size
	if len(sendBuf) < nb || len(recvBuf) < nb {
		return fmt.Errorf("mpi: buffers (%d, %d B) shorter than %d elements × %d B", len(sendBuf), len(recvBuf), count, dt.Size)
	}
	return nil
}

// chunkBounds splits count elements into size contiguous chunks whose
// lengths differ by at most one; it returns size+1 element offsets.
func chunkBounds(count, size int) []int {
	bounds := make([]int, size+1)
	base, rem := count/size, count%size
	off := 0
	for i := 0; i < size; i++ {
		bounds[i] = off
		off += base
		if i < rem {
			off++
		}
	}
	bounds[size] = off
	return bounds
}

// ringAllreduce: reduce-scatter then allgather around the ring.
func (c *Comm) ringAllreduce(tag int, buf []byte, count int, dt Datatype, op Op) error {
	p, r := c.Size(), c.Rank()
	bounds := chunkBounds(count, p)
	right := (r + 1) % p
	left := (r - 1 + p) % p
	scratch := make([]byte, (bounds[1]-bounds[0]+1)*dt.Size)

	chunk := func(i int) (off, elems int) {
		i = ((i % p) + p) % p
		return bounds[i] * dt.Size, bounds[i+1] - bounds[i]
	}

	// Reduce-scatter: after step s, partial sums flow around the ring;
	// rank r ends owning the fully reduced chunk (r+1) mod p.
	for s := 0; s < p-1; s++ {
		sendOff, sendN := chunk(r - s)
		recvOff, recvN := chunk(r - s - 1)
		c.send(right, tag, buf[sendOff:sendOff+sendN*dt.Size])
		n, err := c.recv(left, tag, scratch)
		if err != nil {
			return err
		}
		if n != recvN*dt.Size {
			return fmt.Errorf("mpi: ring step %d: got %d B, want %d", s, n, recvN*dt.Size)
		}
		foldElems(op, dt, buf[recvOff:recvOff+recvN*dt.Size], scratch[:n], recvN)
	}
	// Allgather: circulate the finished chunks.
	for s := 0; s < p-1; s++ {
		sendOff, sendN := chunk(r + 1 - s)
		recvOff, recvN := chunk(r - s)
		c.send(right, tag, buf[sendOff:sendOff+sendN*dt.Size])
		n, err := c.recv(left, tag, buf[recvOff:recvOff+recvN*dt.Size])
		if err != nil {
			return err
		}
		if n != recvN*dt.Size {
			return fmt.Errorf("mpi: ring allgather step %d: got %d B, want %d", s, n, recvN*dt.Size)
		}
	}
	return nil
}

// rdAllreduce: recursive doubling with the standard non-power-of-two
// pre/post folding.
func (c *Comm) rdAllreduce(tag int, buf []byte, count int, dt Datatype, op Op) error {
	p, r := c.Size(), c.Rank()
	nb := count * dt.Size
	scratch := make([]byte, nb)

	p2 := 1
	for p2*2 <= p {
		p2 *= 2
	}
	rem := p - p2

	// Fold the rem extra ranks into their even partners.
	newRank := -1
	switch {
	case r < 2*rem && r%2 == 1:
		c.send(r-1, tag, buf[:nb])
	case r < 2*rem && r%2 == 0:
		if _, err := c.recv(r+1, tag, scratch); err != nil {
			return err
		}
		foldElems(op, dt, buf[:nb], scratch, count)
		newRank = r / 2
	default:
		newRank = r - rem
	}

	if newRank >= 0 {
		for mask := 1; mask < p2; mask <<= 1 {
			partnerNew := newRank ^ mask
			partner := partnerNew
			if partnerNew < rem {
				partner = partnerNew * 2
			} else {
				partner = partnerNew + rem
			}
			c.send(partner, tag, buf[:nb])
			if _, err := c.recv(partner, tag, scratch); err != nil {
				return err
			}
			foldElems(op, dt, buf[:nb], scratch, count)
		}
	}

	// Ship results back to the folded ranks.
	switch {
	case r < 2*rem && r%2 == 0:
		c.send(r+1, tag, buf[:nb])
	case r < 2*rem && r%2 == 1:
		if _, err := c.recv(r-1, tag, buf[:nb]); err != nil {
			return err
		}
	}
	return nil
}

// treeReduce: binomial reduce of buf into rank 0.
func (c *Comm) treeReduce(tag int, buf []byte, count int, dt Datatype, op Op) error {
	p, r := c.Size(), c.Rank()
	nb := count * dt.Size
	scratch := make([]byte, nb)
	for mask := 1; mask < p; mask <<= 1 {
		if r&mask != 0 {
			c.send(r-mask, tag, buf[:nb])
			return nil
		}
		if r+mask < p {
			if _, err := c.recv(r+mask, tag, scratch); err != nil {
				return err
			}
			foldElems(op, dt, buf[:nb], scratch, count)
		}
	}
	return nil
}

// Request tracks a non-blocking collective.
type Request struct {
	done chan struct{}
	err  error
}

// Wait blocks until the operation completes and returns its error.
func (r *Request) Wait() error {
	<-r.done
	return r.err
}

// Test reports completion without blocking.
func (r *Request) Test() (bool, error) {
	select {
	case <-r.done:
		return true, r.err
	default:
		return false, nil
	}
}

// Iallreduce starts a non-blocking Allreduce and returns immediately. The
// buffers must not be touched until Wait returns. libhear's pipelining
// (Figure 6) overlaps encryption of block n+1 and decryption of block n−1
// with the reduction of block n through exactly this call.
func (c *Comm) Iallreduce(sendBuf, recvBuf []byte, count int, dt Datatype, op Op) (*Request, error) {
	if err := c.checkCollArgs(sendBuf, recvBuf, count, dt); err != nil {
		return nil, err
	}
	tag := c.nextCollTag() // reserve in program order before going async
	req := &Request{done: make(chan struct{})}
	go func() {
		defer close(req.done)
		req.err = c.allreduceWithTag(AlgoAuto, tag, sendBuf, recvBuf, count, dt, op)
	}()
	return req, nil
}
