package pool

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunCoversRangeExactlyOnce(t *testing.T) {
	p := New(4)
	defer p.Close()
	for _, tc := range []struct{ n, shard int }{
		{1, 1}, {7, 3}, {100, 7}, {100, 100}, {100, 1000}, {64, 16}, {5, 0},
	} {
		var mu sync.Mutex
		hits := make([]int, tc.n)
		err := p.Run(tc.n, tc.shard, "test", func(start, count int) error {
			mu.Lock()
			defer mu.Unlock()
			for i := start; i < start+count; i++ {
				hits[i]++
			}
			return nil
		})
		if err != nil {
			t.Fatalf("Run(%d,%d): %v", tc.n, tc.shard, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("Run(%d,%d): index %d covered %d times", tc.n, tc.shard, i, h)
			}
		}
	}
}

func TestRunEmptyRange(t *testing.T) {
	p := New(2)
	defer p.Close()
	called := false
	if err := p.Run(0, 4, "test", func(int, int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Fatal("Run(0, ...) invoked fn")
	}
}

func TestRunFirstErrorWinsAndAllShardsRun(t *testing.T) {
	p := New(4)
	defer p.Close()
	boom := errors.New("boom")
	var ran atomic.Int64
	err := p.Run(40, 10, "test", func(start, count int) error {
		ran.Add(1)
		if start >= 20 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Run returned %v, want %v", err, boom)
	}
	if got := ran.Load(); got != 4 {
		t.Fatalf("%d shards ran, want 4 (errors must not cancel siblings)", got)
	}
}

func TestRunRecordsOneSamplePerShard(t *testing.T) {
	p := New(2)
	defer p.Close()
	if err := p.Run(10, 3, "timed", func(int, int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := p.Phases().Snapshot().Count("timed"); got != 4 {
		t.Fatalf("phase recorded %d samples, want 4", got)
	}
}

func TestSubmitAfterCloseRefuses(t *testing.T) {
	p := New(1)
	p.Close()
	if p.Submit(func() { t.Error("task ran after close") }) {
		t.Fatal("Submit accepted a task on a closed pool")
	}
	p.Close() // idempotent
}

// TestCloseNeverDropsAcceptedTask hammers Submit concurrently with Close:
// every task Submit accepted must run exactly once (the gateway's round
// accounting relies on this), and every refused submission must not run.
func TestCloseNeverDropsAcceptedTask(t *testing.T) {
	for iter := 0; iter < 50; iter++ {
		p := New(2)
		var accepted, ran atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 20; i++ {
					if p.Submit(func() { ran.Add(1) }) {
						accepted.Add(1)
					}
				}
			}()
		}
		p.Close()
		wg.Wait()
		if accepted.Load() != ran.Load() {
			t.Fatalf("iter %d: accepted %d tasks but ran %d", iter, accepted.Load(), ran.Load())
		}
	}
}

func TestRunDuringCloseStillCompletes(t *testing.T) {
	p := New(2)
	var mu sync.Mutex
	hits := make([]int, 64)
	done := make(chan error, 1)
	go func() {
		done <- p.Run(64, 4, "test", func(start, count int) error {
			mu.Lock()
			defer mu.Unlock()
			for i := start; i < start+count; i++ {
				hits[i]++
			}
			return nil
		})
	}()
	p.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d covered %d times across Close", i, h)
		}
	}
}

func TestNewDefaultsToPositiveWorkerCount(t *testing.T) {
	p := New(0)
	defer p.Close()
	if p.Workers() < 1 {
		t.Fatalf("Workers() = %d", p.Workers())
	}
}

// countRunner is a pre-allocated task for SubmitTask tests.
type countRunner struct {
	wg *sync.WaitGroup
	n  *atomic.Int64
}

func (r *countRunner) Run() {
	r.n.Add(1)
	r.wg.Done()
}

func TestSubmitTaskRunsRunner(t *testing.T) {
	p := New(2)
	defer p.Close()
	var n atomic.Int64
	var wg sync.WaitGroup
	r := &countRunner{wg: &wg, n: &n}
	const tasks = 64
	for i := 0; i < tasks; i++ {
		wg.Add(1)
		if !p.SubmitTask(r) {
			t.Fatal("SubmitTask refused on an open pool")
		}
	}
	wg.Wait()
	if n.Load() != tasks {
		t.Errorf("ran %d tasks, want %d", n.Load(), tasks)
	}
}

func TestSubmitTaskAfterCloseRefuses(t *testing.T) {
	p := New(1)
	p.Close()
	var n atomic.Int64
	var wg sync.WaitGroup
	if p.SubmitTask(&countRunner{wg: &wg, n: &n}) {
		t.Fatal("SubmitTask accepted after Close")
	}
	if n.Load() != 0 {
		t.Error("refused Runner still ran")
	}
}
