// Package pool is the shared run-to-completion worker pool under HEAR's
// multicore cipher engine (internal/engine) and the aggregation gateway's
// fold stage (internal/aggsvc). It is deliberately key-blind: the package
// schedules opaque closures and records shard timings, nothing more, so
// the gateway can share the infrastructure without key material entering
// its dependency graph (internal/aggsvc's TestServerKeyBlind pins this at
// the import level).
//
// The scheduling model is DPDK-style run-to-completion (the standard
// recipe for counter-mode crypto sharding): a fixed set of workers, every
// task executed once on whichever worker pops it, and no task ever blocks
// on another task — so callers of Run may wait for their shards without
// any deadlock risk, no matter how many callers overlap.
package pool

import (
	"runtime"
	"sync"

	"hear/internal/trace"
)

// Runner is a pre-allocated unit of work. SubmitTask schedules a Runner
// without the per-call closure allocation Submit(func()) costs, so hot
// dispatch loops — the gateway's per-chunk fold path — can reuse pooled
// task objects and stay allocation-free in steady state.
type Runner interface{ Run() }

// task is one queue entry: exactly one of fn and r is set.
type task struct {
	fn func()
	r  Runner
}

func (t task) run() {
	if t.r != nil {
		t.r.Run()
		return
	}
	t.fn()
}

// Pool is a fixed-size worker pool. It is safe for concurrent use.
type Pool struct {
	workers int
	tasks   chan task
	quit    chan struct{}
	wg      sync.WaitGroup
	phases  *trace.SyncBreakdown

	// mu orders Submit against Close: Submit enqueues under the read
	// lock, Close flips closed under the write lock, so once Close holds
	// the lock no further task can slip into the queue behind its drain
	// sweep. A closed check alone (or selecting on quit) leaves a window
	// where an accepted task is enqueued after the sweep and never runs.
	mu     sync.RWMutex
	closed bool
}

// New starts a pool of the given size; workers <= 0 selects GOMAXPROCS.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		workers: workers,
		tasks:   make(chan task, 4*workers),
		quit:    make(chan struct{}),
		phases:  trace.NewSyncBreakdown(),
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// Phases returns the pool's shard-timing accumulator. Run records one
// sample per shard under the caller-supplied phase name; Submit callers
// may record their own phases into it.
func (p *Pool) Phases() *trace.SyncBreakdown { return p.phases }

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		select {
		case t := <-p.tasks:
			t.run()
		case <-p.quit:
			return
		}
	}
}

// Submit queues fn for execution on a worker. It reports false — without
// running fn — once the pool is closed (or closing); callers own the
// fallback (run inline, or unwind whatever bookkeeping the task carried).
// A send on a full queue may block briefly, but the workers stay alive
// for as long as any Submit is in flight (Close waits for the lock), so
// the queue always drains.
func (p *Pool) Submit(fn func()) bool {
	return p.submit(task{fn: fn})
}

// SubmitTask is Submit for pre-allocated Runners: the task travels the
// queue by value, so a pooled Runner costs zero allocations per dispatch.
// Like Submit it reports false — without running r — once the pool is
// closed; callers own the fallback.
func (p *Pool) SubmitTask(r Runner) bool {
	return p.submit(task{r: r})
}

func (p *Pool) submit(t task) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if p.closed {
		return false
	}
	p.tasks <- t
	return true
}

// Close stops the workers and then runs any still-queued tasks inline, so
// no accepted task is ever lost — the gateway's round bookkeeping depends
// on every submitted fold eventually retiring. Close is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	close(p.quit)
	p.wg.Wait()
	for {
		select {
		case t := <-p.tasks:
			t.run()
		default:
			return
		}
	}
}

// Run splits the index range [0, n) into shards of the given size and
// executes fn(start, count) once per shard: the caller runs the first
// shard itself (and any shard the pool refuses) while workers run the
// rest, so a pool of W workers keeps at most W+1 cores busy per call with
// no handoff latency on the serial tail. Run waits for every shard and
// returns the first error; shards are independent, so all of them run
// even when one fails. Each shard records one sample under phase in
// Phases. shard >= n (or <= 0) degenerates to one inline call.
func (p *Pool) Run(n, shard int, phase string, fn func(start, count int) error) error {
	if n <= 0 {
		return nil
	}
	if shard <= 0 || shard >= n {
		return fn(0, n)
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	runShard := func(start, count int) {
		stop := p.phases.Start(phase)
		err := fn(start, count)
		stop()
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
		}
	}
	for start := shard; start < n; start += shard {
		count := shard
		if start+count > n {
			count = n - start
		}
		s, c := start, count
		wg.Add(1)
		task := func() { defer wg.Done(); runShard(s, c) }
		if !p.Submit(task) {
			task() // pool closing: degrade to inline, never drop a shard
		}
	}
	runShard(0, shard)
	wg.Wait()
	return firstErr
}
