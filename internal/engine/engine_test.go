package engine_test

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"testing"

	"hear/internal/core"
	"hear/internal/engine"
	"hear/internal/fixedpoint"
	"hear/internal/hfp"
	"hear/internal/keys"
	"hear/internal/prf"
)

// seqReader is the deterministic entropy source the repo's tests use.
type seqReader struct{ next byte }

func (r *seqReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = r.next
		r.next++
	}
	return len(p), nil
}

func testStates(t testing.TB, p int) []*keys.RankState {
	t.Helper()
	states, err := keys.Generate(p, keys.Config{Backend: prf.BackendAESFast, Rand: &seqReader{next: 5}})
	if err != nil {
		t.Fatal(err)
	}
	return states
}

// fillInts writes deterministic pseudo-random bytes (valid for every
// integer-wire scheme).
func fillInts(plain []byte, seed uint64) {
	x := seed*2862933555777941757 + 3037000493
	for i := range plain {
		x = x*2862933555777941757 + 3037000493
		plain[i] = byte(x >> 56)
	}
}

// fillFloat32 / fillFloat64 write finite, moderate float values — the
// float and fixed point schemes reject NaN/Inf/out-of-range plaintexts.
func fillFloat32(plain []byte, seed uint64) {
	for j := 0; j*4+4 <= len(plain); j++ {
		v := float32(int(seed)+j%2011-1005) * 0.03125
		binary.LittleEndian.PutUint32(plain[j*4:], math.Float32bits(v))
	}
}

func fillFloat64(plain []byte, seed uint64) {
	for j := 0; j*8+8 <= len(plain); j++ {
		v := float64(int(seed)+j%2011-1005) * 0.03125
		binary.LittleEndian.PutUint64(plain[j*8:], math.Float64bits(v))
	}
}

type schemeCase struct {
	name string
	s    core.Scheme
	fill func(plain []byte, seed uint64)
}

// testSchemes builds one instance of every scheme in the repo, so the
// engine's bit-identity claim is pinned for each of them — including the
// wide-cell FP64 ForAdd float path and the Θ(P) naive decrypt.
func testSchemes(t testing.TB, states []*keys.RankState) []schemeCase {
	t.Helper()
	mk := func(s core.Scheme, err error) core.Scheme {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	codec, err := fixedpoint.NewCodec(64, 20)
	if err != nil {
		t.Fatal(err)
	}
	starting := make([]uint64, len(states))
	for i, st := range states {
		starting[i] = st.SelfKey
	}
	return []schemeCase{
		{"int32-sum", mk(core.NewIntSum(32)), fillInts},
		{"int64-sum", mk(core.NewIntSum(64)), fillInts},
		{"int64-prod", mk(core.NewIntProd(64)), fillInts},
		{"int64-xor", mk(core.NewIntXor(64)), fillInts},
		{"float32-sum-g0", mk(core.NewFloatSum(hfp.FP32, 0)), fillFloat32},
		{"float32-sum-g2", mk(core.NewFloatSum(hfp.FP32, 2)), fillFloat32},
		{"float64-sum-g2", mk(core.NewFloatSum(hfp.FP64, 2)), fillFloat64},
		{"float32-prod-g0", mk(core.NewFloatProd(hfp.FP32, 0)), fillFloat32},
		{"float32-sumv2-g2", mk(core.NewFloatSumV2(hfp.FP32, 2)), fillFloat32},
		{"fixed-sum", mk(core.NewFixedSum(codec)), fillFloat64},
		{"fixed-prod", mk(core.NewFixedProd(codec)), fillFloat64},
		{"naive-int64-sum", mk(core.NewNaiveIntSum(64, starting)), fillInts},
		{"parity-int64-sum", mk(core.NewParitySum(64)), fillInts},
	}
}

// elems picks an odd element count big enough that the engine actually
// shards (n·eb well past 2·MinShardBytes) with a ragged final shard.
func elems(s core.Scheme) int {
	eb := s.PlainSize()
	if cs := s.CipherSize(); cs > eb {
		eb = cs
	}
	n := 3*engine.MinShardBytes/eb + 13
	return n | 1
}

// TestEngineBitIdenticalToSerial is the engine's contract test: for every
// scheme, EncryptAt/DecryptAt/Reduce sharded over 4 workers produce the
// same bytes as the serial scheme call, at several global offsets.
func TestEngineBitIdenticalToSerial(t *testing.T) {
	states := testStates(t, 4)
	for _, st := range states {
		st.Advance()
	}
	eng := engine.New(4)
	defer eng.Close()
	for _, tc := range testSchemes(t, states) {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.s
			n := elems(s)
			ps, cs := s.PlainSize(), s.CipherSize()
			plainA := make([]byte, n*ps)
			plainB := make([]byte, n*ps)
			tc.fill(plainA, 17)
			tc.fill(plainB, 99)
			for _, off := range []int{0, 1, 129} {
				st := states[1] // odd rank: covers ParitySum's negate path
				cSerial := make([]byte, n*cs)
				cEngine := make([]byte, n*cs)
				if err := s.EncryptAt(st, plainA, cSerial, n, off); err != nil {
					t.Fatalf("serial encrypt off=%d: %v", off, err)
				}
				if err := eng.EncryptAt(s, st, plainA, cEngine, n, off); err != nil {
					t.Fatalf("engine encrypt off=%d: %v", off, err)
				}
				if !bytes.Equal(cSerial, cEngine) {
					t.Fatalf("encrypt off=%d: engine differs from serial", off)
				}

				other := make([]byte, n*cs)
				if err := s.EncryptAt(states[2], plainB, other, n, off); err != nil {
					t.Fatalf("peer encrypt off=%d: %v", off, err)
				}
				rSerial := append([]byte(nil), cSerial...)
				rEngine := append([]byte(nil), cSerial...)
				s.Reduce(rSerial, other, n)
				eng.Reduce(s, rEngine, other, n)
				if !bytes.Equal(rSerial, rEngine) {
					t.Fatalf("reduce off=%d: engine differs from serial", off)
				}

				pSerial := make([]byte, n*ps)
				pEngine := make([]byte, n*ps)
				if err := s.DecryptAt(st, rSerial, pSerial, n, off); err != nil {
					t.Fatalf("serial decrypt off=%d: %v", off, err)
				}
				if err := eng.DecryptAt(s, st, rSerial, pEngine, n, off); err != nil {
					t.Fatalf("engine decrypt off=%d: %v", off, err)
				}
				if !bytes.Equal(pSerial, pEngine) {
					t.Fatalf("decrypt off=%d: engine differs from serial", off)
				}
			}
		})
	}
}

// TestEngineSmallCallsMatchSerial pins the serial fallback: tiny and
// odd-sized calls (including n so small no shard forms) round-trip
// identically to direct scheme calls.
func TestEngineSmallCallsMatchSerial(t *testing.T) {
	states := testStates(t, 2)
	states[0].Advance()
	eng := engine.New(4)
	defer eng.Close()
	s, err := core.NewIntSum(64)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 3, 17, 255} {
		plain := make([]byte, n*8)
		fillInts(plain, uint64(n))
		cSerial := make([]byte, n*8)
		cEngine := make([]byte, n*8)
		if err := s.EncryptAt(states[0], plain, cSerial, n, 7); err != nil {
			t.Fatal(err)
		}
		if err := eng.EncryptAt(s, states[0], plain, cEngine, n, 7); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(cSerial, cEngine) {
			t.Fatalf("n=%d: small-call encrypt differs", n)
		}
	}
}

// TestEngineUndersizedBufferErrors checks the engine defers length
// validation to the scheme instead of panicking on a short buffer.
func TestEngineUndersizedBufferErrors(t *testing.T) {
	states := testStates(t, 2)
	states[0].Advance()
	eng := engine.New(2)
	defer eng.Close()
	s, err := core.NewIntSum(64)
	if err != nil {
		t.Fatal(err)
	}
	n := elems(s)
	plain := make([]byte, n*8-1) // one byte short
	cipher := make([]byte, n*8)
	if err := eng.EncryptAt(s, states[0], plain, cipher, n, 0); err == nil {
		t.Fatal("undersized plaintext accepted")
	}
	if err := eng.DecryptAt(s, states[0], cipher, plain, n, 0); err == nil {
		t.Fatal("undersized plaintext accepted on decrypt")
	}
}

// TestEngineConcurrentUse drives one shared engine and one shared scheme
// instance from many goroutines — the refactored schemes claim full
// reentrancy (pooled scratch, no per-instance state), and this test under
// `go test -race` is what holds them to it.
func TestEngineConcurrentUse(t *testing.T) {
	states := testStates(t, 4)
	for _, st := range states {
		st.Advance()
	}
	eng := engine.New(4)
	defer eng.Close()
	s, err := core.NewFloatSum(hfp.FP32, 2)
	if err != nil {
		t.Fatal(err)
	}
	n := elems(s)
	ps, cs := s.PlainSize(), s.CipherSize()

	plain := make([]byte, n*ps)
	fillFloat32(plain, 7)
	want := make([]byte, n*cs)
	if err := s.EncryptAt(states[0], plain, want, n, 0); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cipher := make([]byte, n*cs)
			back := make([]byte, n*ps)
			for i := 0; i < 4; i++ {
				if err := eng.EncryptAt(s, states[0], plain, cipher, n, 0); err != nil {
					errs <- fmt.Errorf("goroutine %d: %w", g, err)
					return
				}
				if !bytes.Equal(cipher, want) {
					errs <- fmt.Errorf("goroutine %d: concurrent encrypt diverged", g)
					return
				}
				if err := eng.DecryptAt(s, states[0], cipher, back, n, 0); err != nil {
					errs <- fmt.Errorf("goroutine %d: %w", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
