// Package engine is the multicore cipher engine: it shards one scheme
// call — Encrypt, Decrypt, or Reduce — over element ranges and runs the
// shards concurrently on a shared worker pool (internal/engine/pool).
//
// The sharding is exact, not approximate: HEAR's noise is counter-mode
// PRF keystream addressed by global element index, so element j of a
// vector consumes keystream span [j·w, (j+1)·w) of its stream no matter
// how the vector is cut into calls. EncryptAt/DecryptAt expose exactly
// that addressing (the §6 pipelined data path already relies on it across
// blocks), which makes shards fully independent and the sharded result
// bit-identical to the serial path for every scheme. Reduces are
// elementwise folds with no carried state, so they shard the same way.
// See DESIGN.md, "The multicore cipher engine".
package engine

import (
	"hear/internal/core"
	"hear/internal/engine/pool"
	"hear/internal/keys"
	"hear/internal/trace"
)

// Shard sizing. One shard is the unit a worker runs to completion.
const (
	// MinShardBytes is the smallest shard worth shipping to a worker;
	// below twice this, the whole call runs serially on the caller (the
	// AES-NI keystream for a few KiB costs less than a channel handoff).
	MinShardBytes = 32 << 10
	// MaxShardBytes caps a shard so (a) its keystream scratch stays
	// inside internal/core's pooled-scratch cap — the float schemes draw
	// 16 noise bytes per element, up to 4× the cell size — and (b) large
	// messages split into more shards than workers, which load-balances
	// dynamically when cores are unevenly busy.
	MaxShardBytes = 256 << 10
)

// Phase names recorded per shard into the pool's trace accumulator.
const (
	PhaseEncryptShard = "encrypt_shard"
	PhaseDecryptShard = "decrypt_shard"
	PhaseReduceShard  = "reduce_shard"
)

// Engine shards cipher calls over a worker pool. One engine is shared by
// all of a communicator's rank contexts; it is safe for concurrent use.
type Engine struct {
	p *pool.Pool
}

// New builds an engine over its own pool of the given size; workers <= 0
// selects GOMAXPROCS, workers == 1 still pools (one worker plus the
// caller) but small calls run serially either way.
func New(workers int) *Engine {
	return &Engine{p: pool.New(workers)}
}

// Workers returns the underlying pool size.
func (e *Engine) Workers() int { return e.p.Workers() }

// Phases returns the shard-timing accumulator (encrypt_shard /
// decrypt_shard / reduce_shard samples, one per shard).
func (e *Engine) Phases() *trace.SyncBreakdown { return e.p.Phases() }

// Pool exposes the underlying worker pool so sibling subsystems — the
// noise prefetcher generates next-epoch keystream planes on it — share
// this engine's workers instead of spawning a competing pool. The pool's
// run-to-completion discipline (tasks never block on tasks) is what keeps
// that sharing deadlock-free.
func (e *Engine) Pool() *pool.Pool { return e.p }

// Close stops the worker pool. Idle workers cost nothing, so long-lived
// processes may simply never call it.
func (e *Engine) Close() { e.p.Close() }

// elemBytes is the per-element footprint used for shard sizing: the wider
// of the plaintext and ciphertext cells.
func elemBytes(s core.Scheme) int {
	b := s.PlainSize()
	if cs := s.CipherSize(); cs > b {
		b = cs
	}
	return b
}

// shardElems picks the per-shard element count for an n-element call, or
// returns n for the serial path.
func (e *Engine) shardElems(n, eb int) int {
	if e.p.Workers() <= 1 || n*eb < 2*MinShardBytes {
		return n
	}
	per := (n + e.p.Workers() - 1) / e.p.Workers()
	if lo := (MinShardBytes + eb - 1) / eb; per < lo {
		per = lo
	}
	if hi := MaxShardBytes / eb; hi >= 1 && per > hi {
		per = hi
	}
	return per
}

// EncryptAt shards s.EncryptAt(st, plain, cipher, n, off) over the pool.
// Bit-identical to the serial call; shard k covers elements
// [k·shard, (k+1)·shard) at global offset off+k·shard.
func (e *Engine) EncryptAt(s core.Scheme, st *keys.RankState, plain, cipher []byte, n, off int) error {
	ps, cs := s.PlainSize(), s.CipherSize()
	shard := e.shardElems(n, elemBytes(s))
	if shard >= n || len(plain) < n*ps || len(cipher) < n*cs {
		// Serial path; undersized buffers fall through so the scheme
		// reports its own length error instead of a slice panic here.
		return s.EncryptAt(st, plain, cipher, n, off)
	}
	return e.p.Run(n, shard, PhaseEncryptShard, func(start, count int) error {
		return s.EncryptAt(st, plain[start*ps:(start+count)*ps], cipher[start*cs:(start+count)*cs], count, off+start)
	})
}

// Encrypt is EncryptAt at offset 0.
func (e *Engine) Encrypt(s core.Scheme, st *keys.RankState, plain, cipher []byte, n int) error {
	return e.EncryptAt(s, st, plain, cipher, n, 0)
}

// DecryptAt shards s.DecryptAt(st, cipher, plain, n, off) over the pool.
func (e *Engine) DecryptAt(s core.Scheme, st *keys.RankState, cipher, plain []byte, n, off int) error {
	ps, cs := s.PlainSize(), s.CipherSize()
	shard := e.shardElems(n, elemBytes(s))
	if shard >= n || len(plain) < n*ps || len(cipher) < n*cs {
		return s.DecryptAt(st, cipher, plain, n, off)
	}
	return e.p.Run(n, shard, PhaseDecryptShard, func(start, count int) error {
		return s.DecryptAt(st, cipher[start*cs:(start+count)*cs], plain[start*ps:(start+count)*ps], count, off+start)
	})
}

// Decrypt is DecryptAt at offset 0.
func (e *Engine) Decrypt(s core.Scheme, st *keys.RankState, cipher, plain []byte, n int) error {
	return e.DecryptAt(s, st, cipher, plain, n, 0)
}

// Reduce shards the keyless elementwise fold dst = dst ⊙ src.
func (e *Engine) Reduce(s core.Scheme, dst, src []byte, n int) {
	cs := s.CipherSize()
	shard := e.shardElems(n, cs)
	if shard >= n || len(dst) < n*cs || len(src) < n*cs {
		s.Reduce(dst, src, n)
		return
	}
	e.p.Run(n, shard, PhaseReduceShard, func(start, count int) error {
		s.Reduce(dst[start*cs:(start+count)*cs], src[start*cs:(start+count)*cs], count)
		return nil
	})
}

// ReduceFunc adapts the sharded Reduce to the fold signature the
// message-passing layer's OpFrom and the INC trees accept.
func (e *Engine) ReduceFunc(s core.Scheme) func(dst, src []byte, n int) {
	return func(dst, src []byte, n int) { e.Reduce(s, dst, src, n) }
}
