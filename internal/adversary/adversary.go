// Package adversary implements the paper's security evaluations: the
// maximum-a-posteriori (MAP) plaintext estimator of §5.3.1 that quantifies
// the statistical edge an adversary gains from HFP's non-uniform mantissa
// ciphertexts, χ²/monobit uniformity tests applied to ciphertext captures
// from the INC tap, and the §5.3.5 demonstration that *capping* (instead
// of ring-wrapping) the exponent leaks plaintext information.
package adversary

import (
	"fmt"
	"math"

	"hear/internal/hfp"
)

// MAPResult summarizes the MAP attack on the mantissa channel.
type MAPResult struct {
	MantissaBits uint
	// Uniform is the success probability of blind guessing, 1/2^Lm.
	Uniform float64
	// Avg, Max, Min are the MAP adversary's success probabilities averaged
	// (resp. maximized/minimized) over plaintext mantissas.
	Avg, Max, Min float64
	// Advantage is Avg/Uniform — the paper's FP32 numbers give ≈ 3.0
	// (3.57e-7 vs 1.19e-7).
	Advantage float64
}

// MAPAttack exhaustively evaluates the MAP estimator for a multiplication
// format with mantissaBits fraction bits: for every plaintext mantissa x
// and every noise mantissa f it computes the ciphertext mantissa through
// the real HFP ⊗, builds the likelihood table, and scores the optimal
// guesser. Work and memory are Θ(4^mantissaBits); widths beyond ~12 bits
// are rejected (FP32's 23 bits are obtained by the scale-invariance of the
// advantage — see ExtrapolateAdvantage and the accompanying test).
func MAPAttack(mantissaBits uint) (MAPResult, error) {
	if mantissaBits < 4 || mantissaBits > 12 {
		return MAPResult{}, fmt.Errorf("adversary: mantissa width %d outside [4, 12] (exhaustive attack)", mantissaBits)
	}
	f := hfp.Format{Le: 5, Lm: mantissaBits}.ForMul(0)
	w := f.FracBits() // == mantissaBits for γ=0 multiplication
	n := 1 << w

	// counts[c][x]: how many noise mantissas map plaintext x to ciphertext c.
	counts := make([][]uint32, n)
	for c := range counts {
		counts[c] = make([]uint32, n)
	}
	for x := 0; x < n; x++ {
		a := hfp.Value{Frac: uint64(x), W: uint8(w)}
		for nf := 0; nf < n; nf++ {
			b := hfp.Value{Frac: uint64(nf), W: uint8(w)}
			c := f.Mul(a, b)
			counts[c.Frac][x]++
		}
	}

	// MAP guesser: for each ciphertext pick argmax_x counts[c][x]; the
	// success probability for plaintext x is Σ_{c: guess(c)=x} counts[c][x]/n.
	successes := make([]float64, n)
	for c := 0; c < n; c++ {
		best, bestX := uint32(0), 0
		for x := 0; x < n; x++ {
			if counts[c][x] > best {
				best, bestX = counts[c][x], x
			}
		}
		successes[bestX] += float64(counts[c][bestX]) / float64(n)
	}
	res := MAPResult{
		MantissaBits: mantissaBits,
		Uniform:      1 / float64(n),
		Min:          math.Inf(1),
	}
	sum := 0.0
	for _, s := range successes {
		sum += s
		if s > res.Max {
			res.Max = s
		}
		if s < res.Min {
			res.Min = s
		}
	}
	res.Avg = sum / float64(n)
	res.Advantage = res.Avg / res.Uniform
	return res, nil
}

// ExtrapolateAdvantage predicts the MAP success probability for a wide
// mantissa (e.g. FP32's 23 bits) from the width-invariant advantage ratio:
// success ≈ advantage / 2^bits. The paper's 3.57e-7 for FP32 corresponds
// to advantage ≈ 3.0.
func ExtrapolateAdvantage(advantage float64, mantissaBits uint) float64 {
	return advantage / math.Ldexp(1, int(mantissaBits))
}

// ChiSquareBytes returns the χ² statistic of the byte histogram of data
// against the uniform distribution (255 degrees of freedom). Values beyond
// ~255 + 6·√510 indicate structure an eavesdropper could exploit.
func ChiSquareBytes(data []byte) (float64, error) {
	if len(data) < 256*16 {
		return 0, fmt.Errorf("adversary: need >= %d bytes for a stable χ², got %d", 256*16, len(data))
	}
	var counts [256]int
	for _, b := range data {
		counts[b]++
	}
	expected := float64(len(data)) / 256
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	return chi2, nil
}

// ChiSquareThreshold is the 6σ acceptance bound for ChiSquareBytes.
func ChiSquareThreshold() float64 { return 255 + 6*math.Sqrt(2*255) }

// MonobitFraction returns the fraction of one-bits in data (≈ 0.5 for a
// ciphertext stream with no bias).
func MonobitFraction(data []byte) float64 {
	if len(data) == 0 {
		return 0
	}
	ones := 0
	for _, b := range data {
		for x := b; x != 0; x &= x - 1 {
			ones++
		}
	}
	return float64(ones) / float64(len(data)*8)
}

// ExponentLeakage quantifies §5.3.5's point that the exponent must wrap
// like a ring: it computes the total-variation distance between the
// ciphertext-exponent distributions of two distinct plaintext exponents,
// under ring arithmetic and under capping. With the ring the distance is
// exactly 0 (uniform either way); with a cap the pile-up at the maximum
// leaks which plaintext was encrypted — the rainbow-table attack surface.
func ExponentLeakage(ebits uint, e1, e2 int64, capped bool) (float64, error) {
	if ebits < 2 || ebits > 16 {
		return 0, fmt.Errorf("adversary: exponent width %d outside [2, 16]", ebits)
	}
	n := int64(1) << ebits
	mask := uint64(n - 1)
	if e1 == e2 {
		return 0, fmt.Errorf("adversary: plaintext exponents must differ")
	}
	if e1 < 0 || e1 >= n || e2 < 0 || e2 >= n {
		return 0, fmt.Errorf("adversary: exponents must lie in [0, 2^%d)", ebits)
	}
	dist := func(e int64) []float64 {
		hist := make([]float64, n)
		for r := int64(0); r < n; r++ { // uniform noise exponent
			c := uint64(e+r) & mask
			if capped {
				if e+r >= n-1 { // saturate instead of wrapping
					c = uint64(n - 1)
				} else {
					c = uint64(e + r)
				}
			}
			hist[c] += 1 / float64(n)
		}
		return hist
	}
	h1, h2 := dist(e1), dist(e2)
	tv := 0.0
	for i := range h1 {
		tv += math.Abs(h1[i] - h2[i])
	}
	return tv / 2, nil
}
