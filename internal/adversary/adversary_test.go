package adversary

import (
	"math"
	"testing"

	"hear/internal/core"
	"hear/internal/hfp"
	"hear/internal/keys"
)

func TestMAPAttackRejectsBadWidths(t *testing.T) {
	if _, err := MAPAttack(2); err == nil {
		t.Error("width 2 accepted")
	}
	if _, err := MAPAttack(20); err == nil {
		t.Error("width 20 accepted (would take forever)")
	}
}

// The §5.3.1 result: the MAP adversary's edge over blind guessing is a
// small constant (~3x), independent of the mantissa width. The paper's
// FP32 numbers — avg 3.57e-7, max 3.58e-7, min 2.38e-7 against uniform
// 1.19e-7 — correspond to advantage ≈ 3.0.
func TestMAPAdvantageIsSmallAndWidthInvariant(t *testing.T) {
	var advantages []float64
	for _, bits := range []uint{6, 8, 10} {
		res, err := MAPAttack(bits)
		if err != nil {
			t.Fatal(err)
		}
		if res.Avg < res.Min || res.Avg > res.Max {
			t.Errorf("bits=%d: avg %g outside [min %g, max %g]", bits, res.Avg, res.Min, res.Max)
		}
		// The paper reports ~3.0x for its estimator; our round-to-nearest
		// quantization yields ~1.9x. Both are "small constant, independent
		// of width" — the property the security argument needs.
		if res.Advantage < 1.5 || res.Advantage > 3.5 {
			t.Errorf("bits=%d: advantage %.2f outside the small-constant band", bits, res.Advantage)
		}
		if res.Min < 0 || res.Min > res.Uniform*4 {
			t.Errorf("bits=%d: min %g implausible vs uniform %g", bits, res.Min, res.Uniform)
		}
		advantages = append(advantages, res.Advantage)
	}
	// Width invariance: the advantage varies by < 20% across widths.
	for _, a := range advantages[1:] {
		if math.Abs(a-advantages[0])/advantages[0] > 0.2 {
			t.Errorf("advantage not width-invariant: %v", advantages)
		}
	}
}

// Extrapolating the measured advantage to FP32's 23-bit mantissa must
// land on the paper's 3.57e-7 within ~15%.
func TestMAPExtrapolationMatchesPaperFP32(t *testing.T) {
	res, err := MAPAttack(10)
	if err != nil {
		t.Fatal(err)
	}
	fp32 := ExtrapolateAdvantage(res.Advantage, 23)
	// Paper: 3.57e-7 with its estimator; ours lands at ~2.3e-7. Assert the
	// order of magnitude and that it stays a negligible edge.
	if fp32 < 1.5e-7 || fp32 > 4.5e-7 {
		t.Errorf("extrapolated FP32 MAP success %.3g, want O(1e-7) (paper: 3.57e-7)", fp32)
	}
	uniform := ExtrapolateAdvantage(1, 23)
	if math.Abs(uniform-1.19e-7)/1.19e-7 > 0.01 {
		t.Errorf("uniform FP32 reference %.3g, want 1.19e-7", uniform)
	}
}

type seqReader struct{ next byte }

func (r *seqReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = r.next*31 + 7
		r.next++
	}
	return len(p), nil
}

// Ciphertexts produced by the integer SUM scheme must pass the χ² and
// monobit tests even when the plaintext is maximally structured (all
// zeros) — an eavesdropper on the INC tap sees noise.
func TestIntSumCiphertextUniformity(t *testing.T) {
	states, err := keys.Generate(2, keys.Config{Rand: &seqReader{next: 1}})
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.NewIntSum(64)
	if err != nil {
		t.Fatal(err)
	}
	const n = 1 << 13 // 64 KiB of ciphertext
	plain := make([]byte, n*8)
	cipher := make([]byte, n*8)
	var capture []byte
	for call := 0; call < 4; call++ {
		states[0].Advance()
		if err := s.Encrypt(states[0], plain, cipher, n); err != nil {
			t.Fatal(err)
		}
		capture = append(capture, cipher...)
	}
	chi2, err := ChiSquareBytes(capture)
	if err != nil {
		t.Fatal(err)
	}
	if chi2 > ChiSquareThreshold() {
		t.Errorf("χ² = %.1f exceeds threshold %.1f: ciphertext is not uniform", chi2, ChiSquareThreshold())
	}
	if frac := MonobitFraction(capture); math.Abs(frac-0.5) > 0.005 {
		t.Errorf("monobit fraction %.4f", frac)
	}
}

// Plaintext, by contrast, fails the same tests — the detectors work.
func TestDetectorsFlagPlaintext(t *testing.T) {
	structured := make([]byte, 256*64)
	for i := range structured {
		structured[i] = byte(i % 7) // heavily biased
	}
	chi2, err := ChiSquareBytes(structured)
	if err != nil {
		t.Fatal(err)
	}
	if chi2 <= ChiSquareThreshold() {
		t.Error("χ² failed to flag structured plaintext")
	}
}

func TestChiSquareNeedsEnoughData(t *testing.T) {
	if _, err := ChiSquareBytes(make([]byte, 100)); err == nil {
		t.Error("tiny sample accepted")
	}
}

func TestMonobitEdgeCases(t *testing.T) {
	if MonobitFraction(nil) != 0 {
		t.Error("empty input")
	}
	if got := MonobitFraction([]byte{0xFF, 0xFF}); got != 1 {
		t.Errorf("all-ones fraction %g", got)
	}
}

// §5.3.5: ring exponents leak nothing (TV distance 0 between any two
// plaintext exponents); capped exponents leak.
func TestExponentRingVsCapLeakage(t *testing.T) {
	tvRing, err := ExponentLeakage(7, 3, 90, false)
	if err != nil {
		t.Fatal(err)
	}
	if tvRing != 0 {
		t.Errorf("ring exponent leaks: TV = %g, want 0", tvRing)
	}
	tvCap, err := ExponentLeakage(7, 3, 90, true)
	if err != nil {
		t.Fatal(err)
	}
	if tvCap <= 0.1 {
		t.Errorf("capped exponent TV = %g; expected substantial leakage", tvCap)
	}
}

func TestExponentLeakageValidation(t *testing.T) {
	if _, err := ExponentLeakage(1, 0, 1, false); err == nil {
		t.Error("width 1 accepted")
	}
	if _, err := ExponentLeakage(7, 5, 5, false); err == nil {
		t.Error("equal exponents accepted")
	}
	if _, err := ExponentLeakage(7, -1, 5, false); err == nil {
		t.Error("negative exponent accepted")
	}
	if _, err := ExponentLeakage(7, 5, 1000, false); err == nil {
		t.Error("out-of-range exponent accepted")
	}
}

// Multi-process attacker vs v1 float addition: identical plaintexts on all
// ranks produce identical ciphertexts (no global safety) — the adversary
// distinguishes "all equal" from "not all equal" with certainty. The v2
// scheme closes this. This test documents the paper's security trade-off
// as executable fact.
func TestMultiProcessAttackerDistinguishesV1(t *testing.T) {
	states, err := keys.Generate(3, keys.Config{Rand: &seqReader{next: 9}})
	if err != nil {
		t.Fatal(err)
	}
	mk := func() core.Scheme {
		s, err := core.NewFloatSum(hfp.FP32, 0)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	plain := []byte{0, 0, 64, 63} // float32(0.875)... any fixed pattern
	equal := true
	var first []byte
	for i := 0; i < 3; i++ {
		s := mk()
		c := make([]byte, s.CipherSize())
		if err := s.Encrypt(states[i], plain, c, 1); err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = c
		} else if string(first) != string(c) {
			equal = false
		}
	}
	if !equal {
		t.Error("v1 ciphertexts differ across ranks; the documented global-safety gap vanished (scheme changed?)")
	}
}
