// Package refmath provides the high-precision reference arithmetic the
// paper obtains from MPFR/GMP: 1024-bit big.Float accumulation used as
// ground truth when measuring HFP's precision loss (Figure 3) and the
// libhear validation numbers (§6).
package refmath

import (
	"fmt"
	"math"
	"math/big"
)

// Precision is the reference mantissa precision in bits, matching the
// paper's "sum obtained using 1024 bits of precision".
const Precision = 1024

// Accumulator is a 1024-bit running sum or product.
type Accumulator struct {
	val  *big.Float
	mode rune // '+' or '*'
}

// NewSum returns a zero-initialized 1024-bit summation accumulator.
func NewSum() *Accumulator {
	return &Accumulator{val: big.NewFloat(0).SetPrec(Precision), mode: '+'}
}

// NewProd returns a one-initialized 1024-bit product accumulator.
func NewProd() *Accumulator {
	return &Accumulator{val: big.NewFloat(1).SetPrec(Precision), mode: '*'}
}

// Add folds x into the accumulator with its operation.
func (a *Accumulator) Add(x float64) {
	t := new(big.Float).SetPrec(Precision).SetFloat64(x)
	if a.mode == '+' {
		a.val.Add(a.val, t)
	} else {
		a.val.Mul(a.val, t)
	}
}

// Float64 rounds the reference value to float64.
func (a *Accumulator) Float64() float64 {
	f, _ := a.val.Float64()
	return f
}

// RelErr returns |got − ref| / |ref| computed against the full-precision
// reference (not its float64 rounding), the metric Figure 3 plots.
func (a *Accumulator) RelErr(got float64) float64 {
	ref := new(big.Float).SetPrec(Precision).Set(a.val)
	diff := new(big.Float).SetPrec(Precision).SetFloat64(got)
	diff.Sub(diff, ref)
	diff.Abs(diff)
	ref.Abs(ref)
	if ref.Sign() == 0 {
		f, _ := diff.Float64()
		return f
	}
	diff.Quo(diff, ref)
	out, _ := diff.Float64()
	return out
}

// GeoMean returns the geometric mean of a sample of positive relative
// errors — Figure 3's per-configuration summary statistic (errors span
// orders of magnitude, so the geometric mean is the faithful average).
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("refmath: empty sample")
	}
	sum := 0.0
	n := 0
	for _, x := range xs {
		if x <= 0 {
			// exact results contribute the smallest representable error
			x = 1e-300
		}
		sum += math.Log(x)
		n++
	}
	return math.Exp(sum / float64(n)), nil
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("refmath: empty sample")
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs)), nil
}
