package refmath

import (
	"math"
	"testing"
)

func TestSumMatchesExactArithmetic(t *testing.T) {
	acc := NewSum()
	for i := 1; i <= 100; i++ {
		acc.Add(float64(i))
	}
	if got := acc.Float64(); got != 5050 {
		t.Errorf("sum = %g", got)
	}
}

func TestProdMatchesExactArithmetic(t *testing.T) {
	acc := NewProd()
	for i := 1; i <= 10; i++ {
		acc.Add(float64(i))
	}
	if got := acc.Float64(); got != 3628800 {
		t.Errorf("10! = %g", got)
	}
}

// The whole point of the 1024-bit reference: it must capture cancellation
// that float64 loses.
func TestReferenceBeatsFloat64(t *testing.T) {
	acc := NewSum()
	big := 1e20
	acc.Add(big)
	acc.Add(1)
	acc.Add(-big)
	if got := acc.Float64(); got != 1 {
		t.Errorf("1e20 + 1 - 1e20 = %g at 1024 bits, want exactly 1", got)
	}
	// float64 gets 0 here.
	if f := big + 1 - big; f == 1 {
		t.Skip("platform float64 unexpectedly exact; reference comparison moot")
	}
}

func TestRelErr(t *testing.T) {
	acc := NewSum()
	acc.Add(4)
	if got := acc.RelErr(4); got != 0 {
		t.Errorf("exact value has relerr %g", got)
	}
	if got := acc.RelErr(5); math.Abs(got-0.25) > 1e-15 {
		t.Errorf("relerr(5 vs 4) = %g, want 0.25", got)
	}
	zero := NewSum()
	if got := zero.RelErr(0.5); got != 0.5 {
		t.Errorf("relerr against zero reference = %g, want abs value", got)
	}
}

func TestGeoMean(t *testing.T) {
	got, err := GeoMean([]float64{1e-6, 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1e-7)/1e-7 > 1e-9 {
		t.Errorf("geomean = %g, want 1e-7", got)
	}
	if _, err := GeoMean(nil); err == nil {
		t.Error("empty sample accepted")
	}
	// Zero entries are clamped, not fatal (exact results happen).
	if _, err := GeoMean([]float64{0, 1e-7}); err != nil {
		t.Errorf("zero entry rejected: %v", err)
	}
}

func TestMean(t *testing.T) {
	got, err := Mean([]float64{1, 2, 3})
	if err != nil || got != 2 {
		t.Errorf("mean = %g, %v", got, err)
	}
	if _, err := Mean(nil); err == nil {
		t.Error("empty sample accepted")
	}
}
