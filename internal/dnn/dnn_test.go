package dnn

import (
	"testing"

	"hear/internal/netsim"
)

// floatCosts mimics the measured float-scheme rates: slower than the AES
// integer path because every element passes the software HFP FPU.
func floatCosts() *netsim.HEARCosts {
	return &netsim.HEARCosts{
		EncRate:            0.4e9,
		DecRate:            0.4e9,
		PerCallLatency:     0.5e-6,
		Inflation:          1.0,
		PipelineEfficiency: 0.85,
	}
}

func TestSimulateValidation(t *testing.T) {
	p := netsim.AriesDefaults()
	if _, err := Simulate(Model{Name: "x"}, p, floatCosts()); err == nil {
		t.Error("malformed model accepted")
	}
}

func TestPaperModelsConfig(t *testing.T) {
	ms := PaperModels()
	if len(ms) != 4 {
		t.Fatalf("%d models, want 4", len(ms))
	}
	byName := map[string]Model{}
	for _, m := range ms {
		byName[m.Name] = m
	}
	if g := byName["GPT3"]; g.Ranks != 384 || g.Nodes != 48 {
		t.Errorf("GPT3 config %d/%d, paper uses 384 ranks on 48 nodes", g.Ranks, g.Nodes)
	}
	for _, name := range []string{"ResNet-152", "DLRM", "CosmoFlow"} {
		if m := byName[name]; m.Ranks != 256 || m.Nodes != 8 {
			t.Errorf("%s config %d/%d, paper uses 256 ranks on 8 nodes", name, m.Ranks, m.Nodes)
		}
	}
	if byName["ResNet-152"].OtherCommSeconds != 0 {
		t.Error("ResNet-152 must be Allreduce-only (paper: 'consists of only Allreduce calls')")
	}
}

// Figure 9's shape: every overhead ≥ 1, ResNet-152 the worst, GPT-3 the
// mildest, all within a plausible band of the paper's 1.03–1.31x.
func TestFigure9Shape(t *testing.T) {
	res, err := SimulateAll(netsim.AriesDefaults(), floatCosts())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Result{}
	for _, r := range res {
		byName[r.Model.Name] = r
		if r.RelativeExecTime < 1.0 {
			t.Errorf("%s: HEAR faster than native (%.3f)", r.Model.Name, r.RelativeExecTime)
		}
		if r.RelativeExecTime > 2.0 {
			t.Errorf("%s: overhead %.2fx implausibly large", r.Model.Name, r.RelativeExecTime)
		}
		if r.AllreduceHEAR <= r.AllreduceNative {
			t.Errorf("%s: encrypted allreduce not slower", r.Model.Name)
		}
	}
	worst := byName["ResNet-152"].RelativeExecTime
	for name, r := range byName {
		if name != "ResNet-152" && r.RelativeExecTime > worst {
			t.Errorf("%s (%.3f) exceeds ResNet-152 (%.3f); paper has ResNet worst", name, r.RelativeExecTime, worst)
		}
	}
	if g := byName["GPT3"].RelativeExecTime; g > 1.10 {
		t.Errorf("GPT3 overhead %.3f, paper reports ~1.03 (compute-dominated)", g)
	}
	if worst < 1.15 {
		t.Errorf("ResNet-152 overhead %.3f too mild; paper reports 1.31", worst)
	}
}

func TestNilCostsMeansNativeOnly(t *testing.T) {
	_, err := Simulate(PaperModels()[0], netsim.AriesDefaults(), nil)
	if err == nil {
		t.Error("nil costs should error: the ratio needs a HEAR leg")
	}
}
