package dnn

import (
	"encoding/json"
	"fmt"
	"io"
)

// Trace is the serialized form of a workload suite, so users can define
// their own per-iteration communication traces and replay them against the
// model — the paper's proxy-application methodology (its traces come from
// the HammingMesh suite) generalized to arbitrary workloads.
//
// The JSON shape:
//
//	{
//	  "models": [
//	    {"name": "MyNet", "ranks": 128, "nodes": 4, "params": 25000000,
//	     "compute_seconds": 0.08, "other_comm_seconds": 0.01}
//	  ]
//	}
type Trace struct {
	Models []TraceModel `json:"models"`
}

// TraceModel is the JSON form of Model.
type TraceModel struct {
	Name             string  `json:"name"`
	Ranks            int     `json:"ranks"`
	Nodes            int     `json:"nodes"`
	Params           int64   `json:"params"`
	ComputeSeconds   float64 `json:"compute_seconds"`
	OtherCommSeconds float64 `json:"other_comm_seconds"`
}

// toModel converts with validation.
func (tm TraceModel) toModel() (Model, error) {
	m := Model{
		Name:             tm.Name,
		Ranks:            tm.Ranks,
		Nodes:            tm.Nodes,
		Params:           tm.Params,
		ComputeSeconds:   tm.ComputeSeconds,
		OtherCommSeconds: tm.OtherCommSeconds,
	}
	if m.Name == "" {
		return Model{}, fmt.Errorf("dnn: trace model without a name")
	}
	if m.Ranks < 1 || m.Nodes < 1 || m.Ranks < m.Nodes {
		return Model{}, fmt.Errorf("dnn: %s: bad topology %d ranks / %d nodes", m.Name, m.Ranks, m.Nodes)
	}
	if m.Params < 1 {
		return Model{}, fmt.Errorf("dnn: %s: non-positive parameter count", m.Name)
	}
	if m.ComputeSeconds < 0 || m.OtherCommSeconds < 0 {
		return Model{}, fmt.Errorf("dnn: %s: negative times", m.Name)
	}
	return m, nil
}

// LoadTrace parses and validates a workload trace.
func LoadTrace(r io.Reader) ([]Model, error) {
	var t Trace
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("dnn: parsing trace: %w", err)
	}
	if len(t.Models) == 0 {
		return nil, fmt.Errorf("dnn: trace contains no models")
	}
	out := make([]Model, 0, len(t.Models))
	for _, tm := range t.Models {
		m, err := tm.toModel()
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// SaveTrace serializes models as an indented trace document.
func SaveTrace(w io.Writer, models []Model) error {
	if len(models) == 0 {
		return fmt.Errorf("dnn: nothing to save")
	}
	t := Trace{Models: make([]TraceModel, 0, len(models))}
	for _, m := range models {
		t.Models = append(t.Models, TraceModel{
			Name:             m.Name,
			Ranks:            m.Ranks,
			Nodes:            m.Nodes,
			Params:           m.Params,
			ComputeSeconds:   m.ComputeSeconds,
			OtherCommSeconds: m.OtherCommSeconds,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}
