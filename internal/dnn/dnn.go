// Package dnn models the distributed DNN training proxy workloads of
// §7.2 / Figure 9: one training iteration of ResNet-152, GPT-3, DLRM, and
// CosmoFlow decomposed into compute, gradient Allreduce (the part HEAR
// encrypts), and other communication (Alltoall for DLRM's embedding
// exchange, pipeline point-to-point for GPT-3) that HEAR leaves untouched
// in the paper's experiment.
//
// The paper itself reports *simulated* relative execution times; this
// package reproduces that methodology: replay the per-iteration trace
// against the netsim interconnect model with and without HEAR's measured
// costs and report the ratio. The distinguishing shape — ResNet-152 worst
// (Allreduce-only communication), GPT-3 best (compute-dominated) — follows
// from the traces, not from tuned ratios.
package dnn

import (
	"fmt"

	"hear/internal/netsim"
)

// Model is one proxy workload's per-iteration trace.
type Model struct {
	Name  string
	Ranks int
	Nodes int
	// Params is the parameter count whose FP32 gradients are averaged by
	// Allreduce each iteration.
	Params int64
	// ComputeSeconds is the per-iteration compute time (forward+backward),
	// assumed serial with communication — the paper's declared worst case
	// ("these overheads could be eliminated by further overlapping
	// computation with non-blocking HEAR communication").
	ComputeSeconds float64
	// OtherCommSeconds is non-Allreduce communication (Alltoall, pipeline
	// p2p, synchronization) that HEAR does not encrypt in this experiment.
	OtherCommSeconds float64
}

// AllreduceBytes is the FP32 gradient volume per iteration.
func (m Model) AllreduceBytes() int64 { return m.Params * 4 }

// PaperModels returns the four Figure 9 workloads with their paper
// configurations: GPT-3 across 384 ranks (48 nodes, 8 PPN); the others at
// 256 ranks (8 nodes, 32 PPN). Parameter counts are the public model
// sizes; compute and other-communication times are proxy calibrations
// (the originals come from the HammingMesh proxy suite, which is not
// public) chosen to sit in each model's documented regime:
// compute-dominated GPT-3, Alltoall-heavy DLRM, Allreduce-only ResNet-152.
func PaperModels() []Model {
	return []Model{
		{
			Name: "ResNet-152", Ranks: 256, Nodes: 8,
			Params:         60_200_000, // 60.2M parameters
			ComputeSeconds: 0.040,
			// "whose communication part consists of only Allreduce calls"
			OtherCommSeconds: 0,
		},
		{
			Name: "DLRM", Ranks: 256, Nodes: 8,
			// MLP + dense gradients ride Allreduce; the embedding tables are
			// exchanged via Alltoall and stay unencrypted in this experiment.
			Params:           30_000_000,
			ComputeSeconds:   0.030,
			OtherCommSeconds: 0.080,
		},
		{
			Name: "GPT3", Ranks: 384, Nodes: 48,
			// The 175B parameters are sharded by tensor/pipeline parallelism;
			// only one stage shard's data-parallel gradients ride Allreduce.
			Params:           60_000_000,
			ComputeSeconds:   4.0,
			OtherCommSeconds: 0.8,
		},
		{
			Name: "CosmoFlow", Ranks: 256, Nodes: 8,
			Params:           8_900_000,
			ComputeSeconds:   0.045,
			OtherCommSeconds: 0.005,
		},
	}
}

// Result is one model's simulated iteration times.
type Result struct {
	Model            Model
	NativeSeconds    float64
	HEARSeconds      float64
	AllreduceNative  float64
	AllreduceHEAR    float64
	RelativeExecTime float64 // HEARSeconds / NativeSeconds, Figure 9's bar
}

// Simulate replays one model's iteration against the interconnect model.
// costs carries HEAR's measured float-scheme rates (Figure 9 uses
// MPI_FLOAT / FP32 gradients).
func Simulate(m Model, p netsim.Params, costs *netsim.HEARCosts) (Result, error) {
	if m.Ranks < 1 || m.Nodes < 1 || m.Params < 1 {
		return Result{}, fmt.Errorf("dnn: malformed model %+v", m)
	}
	if costs == nil {
		return Result{}, fmt.Errorf("dnn: %s: HEAR costs are required (the result is a HEAR/native ratio)", m.Name)
	}
	native, hear, err := p.ThroughputPerNode(costs, m.Ranks, m.Nodes, int(m.AllreduceBytes()))
	if err != nil {
		return Result{}, fmt.Errorf("dnn: %s: %w", m.Name, err)
	}
	// A ring Allreduce moves ~2x the payload through each node.
	bytesPerNode := 2 * float64(m.AllreduceBytes())
	arNative := bytesPerNode / native
	arHEAR := bytesPerNode / hear
	res := Result{
		Model:           m,
		AllreduceNative: arNative,
		AllreduceHEAR:   arHEAR,
		NativeSeconds:   m.ComputeSeconds + m.OtherCommSeconds + arNative,
		HEARSeconds:     m.ComputeSeconds + m.OtherCommSeconds + arHEAR,
	}
	res.RelativeExecTime = res.HEARSeconds / res.NativeSeconds
	return res, nil
}

// SimulateAll runs every paper model.
func SimulateAll(p netsim.Params, costs *netsim.HEARCosts) ([]Result, error) {
	models := PaperModels()
	out := make([]Result, 0, len(models))
	for _, m := range models {
		r, err := Simulate(m, p, costs)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
