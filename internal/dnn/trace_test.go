package dnn

import (
	"bytes"
	"strings"
	"testing"

	"hear/internal/netsim"
)

func TestTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveTrace(&buf, PaperModels()); err != nil {
		t.Fatal(err)
	}
	models, err := LoadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	orig := PaperModels()
	if len(models) != len(orig) {
		t.Fatalf("%d models, want %d", len(models), len(orig))
	}
	for i := range orig {
		if models[i] != orig[i] {
			t.Errorf("model %d: %+v != %+v", i, models[i], orig[i])
		}
	}
}

func TestLoadTraceValidation(t *testing.T) {
	cases := map[string]string{
		"empty":         `{"models": []}`,
		"no name":       `{"models": [{"ranks": 2, "nodes": 1, "params": 10}]}`,
		"bad topology":  `{"models": [{"name": "x", "ranks": 1, "nodes": 4, "params": 10}]}`,
		"no params":     `{"models": [{"name": "x", "ranks": 4, "nodes": 2}]}`,
		"negative time": `{"models": [{"name": "x", "ranks": 4, "nodes": 2, "params": 10, "compute_seconds": -1}]}`,
		"unknown field": `{"models": [{"name": "x", "ranks": 4, "nodes": 2, "params": 10, "bogus": 1}]}`,
		"not json":      `hello`,
	}
	for name, doc := range cases {
		if _, err := LoadTrace(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestSaveTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveTrace(&buf, nil); err == nil {
		t.Error("empty save accepted")
	}
}

func TestLoadedTraceSimulates(t *testing.T) {
	doc := `{"models": [{"name": "CustomNet", "ranks": 64, "nodes": 2,
		"params": 5000000, "compute_seconds": 0.02, "other_comm_seconds": 0.001}]}`
	models, err := LoadTrace(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	h := &netsim.HEARCosts{EncRate: 1e9, DecRate: 1e9, Inflation: 1, PipelineEfficiency: 0.85}
	res, err := Simulate(models[0], netsim.AriesDefaults(), h)
	if err != nil {
		t.Fatal(err)
	}
	if res.RelativeExecTime <= 1.0 || res.RelativeExecTime > 2.0 {
		t.Errorf("relative time %g implausible", res.RelativeExecTime)
	}
}
