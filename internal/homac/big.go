package homac

import (
	"crypto/rand"
	"fmt"
	"math/big"

	"hear/internal/keys"
	"hear/internal/prf"
)

// Big is the arbitrary-λ variant of the verifier built on math/big, for
// security parameters beyond 64 bits. It exists to quantify §5.5's point
// that "the overhead is linear with the security parameter": the bench
// suite compares it against the 61-bit fast path.
type Big struct {
	p    *big.Int
	z    *big.Int
	zInv *big.Int
}

// NewBig builds a verifier with a randomly generated λ-bit prime and a
// random verification key.
func NewBig(lambda int) (*Big, error) {
	if lambda < 8 || lambda > 4096 {
		return nil, fmt.Errorf("homac: λ = %d outside [8, 4096]", lambda)
	}
	p, err := rand.Prime(rand.Reader, lambda)
	if err != nil {
		return nil, fmt.Errorf("homac: generating prime: %w", err)
	}
	z, err := rand.Int(rand.Reader, new(big.Int).Sub(p, big.NewInt(1)))
	if err != nil {
		return nil, fmt.Errorf("homac: generating Z: %w", err)
	}
	z.Add(z, big.NewInt(1)) // non-zero
	return &Big{p: p, z: z, zInv: new(big.Int).ModInverse(z, p)}, nil
}

// Lambda returns the bit length of the prime modulus.
func (b *Big) Lambda() int { return b.p.BitLen() }

func (b *Big) keyAt(pr prf.PRF, nonce uint64, j int) *big.Int {
	// Draw ⌈λ/64⌉ PRF words per element.
	words := (b.p.BitLen() + 63) / 64
	buf := make([]byte, words*8)
	pr.Keystream(buf, nonce+macDomain, uint64(j*words*8))
	v := new(big.Int).SetBytes(buf)
	return v.Mod(v, b.p)
}

// Tag produces canceling-form tags for the ciphertext lanes.
func (b *Big) Tag(st *keys.RankState, cipher []uint64, tags []*big.Int) error {
	if len(tags) < len(cipher) {
		return fmt.Errorf("homac: tag buffer %d < %d elements", len(tags), len(cipher))
	}
	self, next := st.SelfNonce(), st.NextNonce()
	last := st.IsLast()
	for j, c := range cipher {
		s := b.keyAt(st.Enc, self, j)
		if !last {
			s.Sub(s, b.keyAt(st.Enc, next, j))
		}
		s.Sub(s, new(big.Int).SetUint64(c))
		s.Mod(s, b.p)
		tags[j] = s.Mul(s, b.zInv).Mod(s, b.p)
	}
	return nil
}

// Aggregate folds src into dst.
func (b *Big) Aggregate(dst, src []*big.Int) {
	for j := range dst {
		dst[j].Add(dst[j], src[j]).Mod(dst[j], b.p)
	}
}

// Verify checks the reduced pairs; wraps bounds the data-lane 2^64 wraps.
func (b *Big) Verify(st *keys.RankState, reducedCipher []uint64, tags []*big.Int, wraps int) int {
	root := st.RootNonce()
	pow64 := new(big.Int).Lsh(big.NewInt(1), 64)
	pow64.Mod(pow64, b.p)
	for j := range reducedCipher {
		s0 := b.keyAt(st.Enc, root, j)
		rhs := new(big.Int).SetUint64(reducedCipher[j])
		rhs.Add(rhs, new(big.Int).Mul(tags[j], b.z)).Mod(rhs, b.p)
		ok := false
		for k := 0; k <= wraps; k++ {
			if rhs.Cmp(s0) == 0 {
				ok = true
				break
			}
			rhs.Add(rhs, pow64).Mod(rhs, b.p)
		}
		if !ok {
			return j
		}
	}
	return -1
}
