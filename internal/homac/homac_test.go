package homac

import (
	"math/big"
	"math/rand"
	"testing"

	"hear/internal/keys"
	"hear/internal/ring"
)

type seqReader struct{ next byte }

func (r *seqReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = r.next*73 + 11
		r.next++
	}
	return len(p), nil
}

func genStates(t testing.TB, p int) []*keys.RankState {
	t.Helper()
	states, err := keys.Generate(p, keys.Config{Rand: &seqReader{next: 3}})
	if err != nil {
		t.Fatal(err)
	}
	return states
}

// fullRun tags random ciphertext vectors on every rank, aggregates both
// lanes like the network would, and returns the reduced lanes plus states.
func fullRun(t *testing.T, v *Vector, p, n int, tamper func(c []uint64, tags []uint64)) (int, []*keys.RankState) {
	t.Helper()
	states := genStates(t, p)
	rng := rand.New(rand.NewSource(int64(p*1000 + n)))
	var cT []uint64
	var sigmaT []uint64
	for i := 0; i < p; i++ {
		states[i].Advance()
		cipher := make([]uint64, n)
		for j := range cipher {
			cipher[j] = rng.Uint64()
		}
		tags := make([]uint64, n)
		if err := v.Tag(states[i], cipher, tags); err != nil {
			t.Fatal(err)
		}
		if cT == nil {
			cT = append([]uint64(nil), cipher...)
			sigmaT = append([]uint64(nil), tags...)
		} else {
			for j := range cT {
				cT[j] += cipher[j] // data lane wraps mod 2^64
			}
			v.Aggregate(sigmaT, tags)
		}
	}
	if tamper != nil {
		tamper(cT, sigmaT)
	}
	return v.Verify(states[0], cT, sigmaT, p), states
}

func TestNewValidation(t *testing.T) {
	if _, err := New(4, 1); err == nil {
		t.Error("even modulus accepted")
	}
	if _, err := New(ring.MersennePrime61, 0); err == nil {
		t.Error("zero Z accepted")
	}
	if _, err := New(ring.MersennePrime61, ring.MersennePrime61); err == nil {
		t.Error("Z ≡ 0 mod p accepted")
	}
}

func TestVerifyAcceptsHonestAggregation(t *testing.T) {
	v, err := New(ring.MersennePrime61, 0xDEADBEEF12345)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 3, 8, 16} {
		if idx, _ := fullRun(t, v, p, 64, nil); idx != -1 {
			t.Errorf("P=%d: honest aggregation rejected at element %d", p, idx)
		}
	}
}

func TestVerifyDetectsDataTampering(t *testing.T) {
	v, err := New(ring.MersennePrime61, 7777777)
	if err != nil {
		t.Fatal(err)
	}
	idx, _ := fullRun(t, v, 4, 32, func(c []uint64, tags []uint64) {
		c[17] += 5 // the malicious switch flips the data lane
	})
	if idx != 17 {
		t.Errorf("tampered element not detected: got index %d, want 17", idx)
	}
}

func TestVerifyDetectsTagTampering(t *testing.T) {
	v, err := New(ring.MersennePrime61, 31337)
	if err != nil {
		t.Fatal(err)
	}
	idx, _ := fullRun(t, v, 4, 32, func(c []uint64, tags []uint64) {
		tags[3] = tags[3] + 1
	})
	if idx != 3 {
		t.Errorf("tampered tag not detected: got index %d, want 3", idx)
	}
}

func TestVerifyDetectsDroppedContribution(t *testing.T) {
	// A switch that drops one rank's pair entirely must be caught.
	v, err := New(ring.MersennePrime61, 999331)
	if err != nil {
		t.Fatal(err)
	}
	const p, n = 3, 8
	states := genStates(t, p)
	var cT, sigmaT []uint64
	for i := 0; i < p; i++ {
		states[i].Advance()
		cipher := make([]uint64, n)
		for j := range cipher {
			cipher[j] = uint64(i*100 + j)
		}
		tags := make([]uint64, n)
		if err := v.Tag(states[i], cipher, tags); err != nil {
			t.Fatal(err)
		}
		if i == 1 {
			continue // dropped by the network
		}
		if cT == nil {
			cT = append([]uint64(nil), cipher...)
			sigmaT = append([]uint64(nil), tags...)
		} else {
			for j := range cT {
				cT[j] += cipher[j]
			}
			v.Aggregate(sigmaT, tags)
		}
	}
	if idx := v.Verify(states[0], cT, sigmaT, p); idx == -1 {
		t.Error("dropped contribution went undetected")
	}
}

func TestNaiveTagVerifyRoundTrip(t *testing.T) {
	v, err := New(ring.MersennePrime61, 0xFEED5)
	if err != nil {
		t.Fatal(err)
	}
	const p, n = 4, 16
	states := genStates(t, p)
	starting := make([]uint64, p)
	for i, s := range states {
		starting[i] = s.SelfKey
	}
	var cT, sigmaT []uint64
	for i := 0; i < p; i++ {
		states[i].Advance()
		cipher := make([]uint64, n)
		for j := range cipher {
			cipher[j] = uint64(i*1000 + j)
		}
		tags := make([]uint64, n)
		if err := v.TagNaive(states[i], cipher, tags); err != nil {
			t.Fatal(err)
		}
		if cT == nil {
			cT = append([]uint64(nil), cipher...)
			sigmaT = append([]uint64(nil), tags...)
		} else {
			for j := range cT {
				cT[j] += cipher[j]
			}
			v.Aggregate(sigmaT, tags)
		}
	}
	if idx := v.VerifyNaive(states[0], starting, cT, sigmaT, p); idx != -1 {
		t.Errorf("honest naive aggregation rejected at %d", idx)
	}
	cT[3]++
	if idx := v.VerifyNaive(states[0], starting, cT, sigmaT, p); idx != 3 {
		t.Errorf("naive tamper detection: got %d, want 3", idx)
	}
}

func TestNaiveTagBufferTooSmall(t *testing.T) {
	v, _ := New(ring.MersennePrime61, 5)
	states := genStates(t, 2)
	if err := v.TagNaive(states[0], make([]uint64, 4), make([]uint64, 2)); err == nil {
		t.Error("short tag buffer accepted")
	}
}

func TestTagBufferTooSmall(t *testing.T) {
	v, _ := New(ring.MersennePrime61, 5)
	states := genStates(t, 2)
	if err := v.Tag(states[0], make([]uint64, 4), make([]uint64, 2)); err == nil {
		t.Error("short tag buffer accepted")
	}
}

func TestOverhead(t *testing.T) {
	v, _ := New(ring.MersennePrime61, 5)
	if got := v.Overhead(64); got < 1.9 || got > 2.0 {
		t.Errorf("Overhead(64) = %g, want ~1.95 (61-bit λ)", got)
	}
	if got := v.Overhead(32); got < 2.8 {
		t.Errorf("Overhead(32) = %g, want ~2.9", got)
	}
}

func TestBigHoMACRoundTrip(t *testing.T) {
	b, err := NewBig(128)
	if err != nil {
		t.Fatal(err)
	}
	if b.Lambda() != 128 {
		t.Errorf("λ = %d", b.Lambda())
	}
	const p, n = 3, 16
	states := genStates(t, p)
	var cT []uint64
	var sigmaT []*big.Int
	for i := 0; i < p; i++ {
		states[i].Advance()
		cipher := make([]uint64, n)
		for j := range cipher {
			cipher[j] = uint64(j)*7 + uint64(i)
		}
		tags := make([]*big.Int, n)
		if err := b.Tag(states[i], cipher, tags); err != nil {
			t.Fatal(err)
		}
		if cT == nil {
			cT = append([]uint64(nil), cipher...)
			sigmaT = tags
		} else {
			for j := range cT {
				cT[j] += cipher[j]
			}
			b.Aggregate(sigmaT, tags)
		}
	}
	if idx := b.Verify(states[0], cT, sigmaT, p); idx != -1 {
		t.Errorf("honest aggregation rejected at %d", idx)
	}
	cT[5] ^= 1
	if idx := b.Verify(states[0], cT, sigmaT, p); idx != 5 {
		t.Errorf("tamper detection: got %d, want 5", idx)
	}
}

func TestNewBigValidation(t *testing.T) {
	if _, err := NewBig(4); err == nil {
		t.Error("λ=4 accepted")
	}
	if _, err := NewBig(10000); err == nil {
		t.Error("λ=10000 accepted")
	}
}

func BenchmarkTag64(b *testing.B) {
	v, _ := New(ring.MersennePrime61, 12345)
	states := genStates(b, 2)
	cipher := make([]uint64, 1024)
	tags := make([]uint64, 1024)
	b.SetBytes(1024 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := v.Tag(states[0], cipher, tags); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTagBig128(b *testing.B) {
	bg, err := NewBig(128)
	if err != nil {
		b.Fatal(err)
	}
	states := genStates(b, 2)
	cipher := make([]uint64, 256)
	tags := make([]*big.Int, 256)
	b.SetBytes(256 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bg.Tag(states[0], cipher, tags); err != nil {
			b.Fatal(err)
		}
	}
}

// subsetRun tags on every rank under shared-group keys, aggregates only
// the survivors' lanes, and verifies against the survivor subset.
func subsetRun(t *testing.T, v *Vector, p, n int, missing []int, tamper func(c, tags []uint64)) (int, error) {
	t.Helper()
	states, err := keys.Generate(p, keys.Config{Rand: &seqReader{next: 5}, SharedGroup: true})
	if err != nil {
		t.Fatal(err)
	}
	gone := make(map[int]bool)
	for _, m := range missing {
		gone[m] = true
	}
	rng := rand.New(rand.NewSource(int64(p*1000 + n)))
	var cT, sigmaT []uint64
	var opener *keys.RankState
	survivors := 0
	for i := 0; i < p; i++ {
		states[i].Advance()
		cipher := make([]uint64, n)
		for j := range cipher {
			cipher[j] = rng.Uint64()
		}
		tags := make([]uint64, n)
		if err := v.Tag(states[i], cipher, tags); err != nil {
			t.Fatal(err)
		}
		if gone[i] {
			continue // the straggler sealed but its lanes never arrived
		}
		survivors++
		opener = states[i]
		if cT == nil {
			cT = append([]uint64(nil), cipher...)
			sigmaT = append([]uint64(nil), tags...)
		} else {
			for j := range cT {
				cT[j] += cipher[j]
			}
			v.Aggregate(sigmaT, tags)
		}
	}
	if tamper != nil {
		tamper(cT, sigmaT)
	}
	return v.VerifySubset(opener, missing, cT, sigmaT, survivors)
}

// TestVerifySubset: survivor-only aggregates verify against the subset key
// sum, and any tampering is still caught.
func TestVerifySubset(t *testing.T) {
	v, err := New(ring.MersennePrime61, 0xBEEF)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 4, 7} {
		missingSets := [][]int{{0}, {p - 1}}
		if p >= 4 {
			missingSets = append(missingSets, []int{1, 2}, []int{0, 2, p - 1})
		}
		for _, missing := range missingSets {
			if bad, err := subsetRun(t, v, p, 32, missing, nil); err != nil || bad != -1 {
				t.Fatalf("p=%d missing=%v: clean subset failed verify: bad=%d err=%v", p, missing, bad, err)
			}
			bad, err := subsetRun(t, v, p, 32, missing, func(c, tags []uint64) { c[7] ^= 1 << 33 })
			if err != nil || bad != 7 {
				t.Fatalf("p=%d missing=%v: tampered element not caught: bad=%d err=%v", p, missing, bad, err)
			}
		}
	}
}

// TestVerifySubsetPolicy: subset verification without shared-group keys
// must error; duplicates in the missing set must error.
func TestVerifySubsetPolicy(t *testing.T) {
	v, err := New(ring.MersennePrime61, 0xBEEF)
	if err != nil {
		t.Fatal(err)
	}
	states := genStates(t, 4)
	states[0].Advance()
	c := make([]uint64, 4)
	tags := make([]uint64, 4)
	if _, err := v.VerifySubset(states[0], []int{1}, c, tags, 3); err == nil {
		t.Error("VerifySubset succeeded without shared-group keys")
	}
	shared, err := keys.Generate(4, keys.Config{Rand: &seqReader{next: 5}, SharedGroup: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.VerifySubset(shared[0], []int{1, 1}, c, tags, 3); err == nil {
		t.Error("VerifySubset accepted a duplicate missing rank")
	}
}
