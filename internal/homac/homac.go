// Package homac implements the homomorphic message authentication codes of
// §5.5 (Catalano–Fiore style), which add result verification to HEAR's
// malleable-by-design ciphertexts. Each rank tags every ciphertext element,
//
//	σ_i[j] = (s_i[j] − c_i[j]) / Z  mod p            (naive form)
//	σ_i[j] = (s_i[j] − s_{i+1}[j] − c_i[j]) / Z mod p  (canceling form)
//
// where s_i[j] is a pseudorandom per-ciphertext key derived from the same
// telescoping key schedule as the encryption noise, Z is the communicator's
// secret verification key, and p a prime of λ bits. The network sums the
// (c, σ) pairs; after reduction the ranks check
//
//	Σ_i s_i[j]  ==  c_t[j] + σ_t[j]·Z  mod p
//
// which with the canceling form needs only s_0[j] — Θ(1), like decryption.
//
// Two deliberate engineering notes, both recorded in DESIGN.md:
//
//   - The data lane sums ciphertexts mod 2^64 while the MAC works mod p,
//     so the true Σc may exceed the data lane's wrapped c_t by k·2^64 for
//     some k < P. Verify searches k ∈ [0, P); an INC device cannot exploit
//     this because it would still need a forged (c, σ) pair consistent
//     for *some* k, which requires Z.
//   - The tag doubles the per-element traffic (64-bit p ⇒ the >200%
//     inflation the paper quotes); Overhead reports it.
package homac

import (
	"fmt"
	"sort"

	"hear/internal/keys"
	"hear/internal/prf"
	"hear/internal/ring"
)

// macDomain separates the MAC key stream from the encryption noise stream
// that shares the PRF: s_i[j] = F_{k_e}(k_s_i + k_c + macDomain, j).
const macDomain uint64 = 0x9E3779B97F4A7C15

// Vector tags and verifies vectors of 64-bit ciphertext lanes.
type Vector struct {
	f    ring.Fp
	z    uint64
	zInv uint64
}

// New builds a verifier over Z_p with verification key z. p must be an odd
// prime (the fast path uses the 61-bit Mersenne prime ring.MersennePrime61);
// z must be a non-zero residue.
func New(p, z uint64) (*Vector, error) {
	if p < 3 || p&1 == 0 {
		return nil, fmt.Errorf("homac: modulus %d is not an odd prime", p)
	}
	f := ring.NewFp(p)
	z = f.Reduce(z)
	if z == 0 {
		return nil, fmt.Errorf("homac: verification key Z must be non-zero mod p")
	}
	return &Vector{f: f, z: z, zInv: f.Inv(z)}, nil
}

// keyAt derives the per-ciphertext homomorphic key s[j] for stream nonce.
func (v *Vector) keyAt(p prf.PRF, nonce uint64, j int) uint64 {
	return v.f.Reduce(p.Uint64(nonce+macDomain, uint64(j)))
}

// Tag produces the canceling-form tags for n ciphertext elements. cipher
// holds 64-bit little-endian lanes (narrower datatypes zero-extend into a
// lane before tagging).
func (v *Vector) Tag(st *keys.RankState, cipher []uint64, tags []uint64) error {
	if len(tags) < len(cipher) {
		return fmt.Errorf("homac: tag buffer %d < %d elements", len(tags), len(cipher))
	}
	self, next := st.SelfNonce(), st.NextNonce()
	last := st.IsLast()
	for j, c := range cipher {
		s := v.keyAt(st.Enc, self, j)
		if !last {
			s = v.f.Sub(s, v.keyAt(st.Enc, next, j))
		}
		sigma := v.f.Mul(v.f.Sub(s, v.f.Reduce(c)), v.zInv)
		tags[j] = sigma
	}
	return nil
}

// Aggregate folds src tags into dst (the network-side σ reduction).
func (v *Vector) Aggregate(dst, src []uint64) {
	for j := range dst {
		dst[j] = v.f.Add(dst[j], v.f.Reduce(src[j]))
	}
}

// Verify checks the reduced (c_t, σ_t) pairs against s_0. reducedCipher is
// the data lane after the mod-2^64 reduction; wraps is the maximum number
// of 2^64 wraps the true sum may have accumulated (use the communicator
// size). It reports the index of the first failing element, or -1.
func (v *Vector) Verify(st *keys.RankState, reducedCipher, tags []uint64, wraps int) int {
	root := st.RootNonce()
	pow64 := v.f.Reduce(1 << 63)
	pow64 = v.f.Add(pow64, pow64) // 2^64 mod p
	for j := range reducedCipher {
		s0 := v.keyAt(st.Enc, root, j)
		rhs := v.f.Add(v.f.Reduce(reducedCipher[j]), v.f.Mul(tags[j], v.z))
		ok := false
		for k := 0; k <= wraps; k++ {
			if rhs == s0 {
				ok = true
				break
			}
			rhs = v.f.Add(rhs, pow64)
		}
		if !ok {
			return j
		}
	}
	return -1
}

// VerifySubset checks a degraded round's reduced (c_t, σ_t) pairs, where
// only the survivor subset contributed: the canceling tag keys telescope
// per missing run [a,b] just like the encryption noise, so the expected key
// sum over the survivors is
//
//	Σ_{i∈S} Δs_i[j]  =  s_0[j] − Σ_{runs} (s_a[j] − s_{b+1}[j])
//
// (the s_{b+1} term vanishes when the run reaches rank P−1). Deriving the
// run-boundary keys needs the shared-group key policy (st.RankNonce);
// states generated without it return an error rather than a bogus verdict.
// missing lists the absent ranks; wraps bounds the data-lane 2^64 wraps
// (use the survivor count). Reports the first failing index, or -1.
func (v *Vector) VerifySubset(st *keys.RankState, missing []int, reducedCipher, tags []uint64, wraps int) (int, error) {
	if len(missing) == 0 {
		return v.Verify(st, reducedCipher, tags, wraps), nil
	}
	// Resolve the run-boundary nonces once; per-element work stays O(runs).
	type run struct {
		pos, neg uint64
		hasNeg   bool
	}
	m := make([]int, len(missing))
	copy(m, missing)
	sort.Ints(m)
	for i := 1; i < len(m); i++ {
		if m[i] == m[i-1] {
			return 0, fmt.Errorf("homac: subset verify: duplicate missing rank %d", m[i])
		}
	}
	var runs []run
	for i := 0; i < len(m); {
		a := m[i]
		b := a
		for i++; i < len(m) && m[i] == b+1; i++ {
			b = m[i]
		}
		pos, err := st.RankNonce(a)
		if err != nil {
			return 0, fmt.Errorf("homac: subset verify: %w", err)
		}
		r := run{pos: pos}
		if b < st.Size-1 {
			neg, err := st.RankNonce(b + 1)
			if err != nil {
				return 0, fmt.Errorf("homac: subset verify: %w", err)
			}
			r.neg, r.hasNeg = neg, true
		}
		runs = append(runs, r)
	}
	root := st.RootNonce()
	pow64 := v.f.Reduce(1 << 63)
	pow64 = v.f.Add(pow64, pow64) // 2^64 mod p
	for j := range reducedCipher {
		want := v.keyAt(st.Enc, root, j)
		for _, r := range runs {
			want = v.f.Sub(want, v.keyAt(st.Enc, r.pos, j))
			if r.hasNeg {
				want = v.f.Add(want, v.keyAt(st.Enc, r.neg, j))
			}
		}
		rhs := v.f.Add(v.f.Reduce(reducedCipher[j]), v.f.Mul(tags[j], v.z))
		ok := false
		for k := 0; k <= wraps; k++ {
			if rhs == want {
				ok = true
				break
			}
			rhs = v.f.Add(rhs, pow64)
		}
		if !ok {
			return j, nil
		}
	}
	return -1, nil
}

// TagNaive produces the non-canceling tags of §5.5's first equation,
// σ = (s_i − c_i)/Z mod p. Each rank's key survives into the aggregate, so
// verification must reconstruct Σ_i s_i[j] — Θ(P) per element, the same
// trade-off the naive encryption scheme has. Kept for the ablation pairing
// the paper's "can be improved by using a canceling method" remark.
func (v *Vector) TagNaive(st *keys.RankState, cipher []uint64, tags []uint64) error {
	if len(tags) < len(cipher) {
		return fmt.Errorf("homac: tag buffer %d < %d elements", len(tags), len(cipher))
	}
	self := st.SelfNonce()
	for j, c := range cipher {
		s := v.keyAt(st.Enc, self, j)
		tags[j] = v.f.Mul(v.f.Sub(s, v.f.Reduce(c)), v.zInv)
	}
	return nil
}

// VerifyNaive checks pairs tagged with TagNaive. allStartingKeys must hold
// every rank's starting key (the Θ(P) key knowledge the canceling form
// avoids); wraps bounds the data-lane 2^64 wraps as in Verify.
func (v *Vector) VerifyNaive(st *keys.RankState, allStartingKeys []uint64, reducedCipher, tags []uint64, wraps int) int {
	pow64 := v.f.Reduce(1 << 63)
	pow64 = v.f.Add(pow64, pow64)
	for j := range reducedCipher {
		var sSum uint64
		for _, k := range allStartingKeys {
			sSum = v.f.Add(sSum, v.keyAt(st.Enc, k+st.Collective(), j))
		}
		rhs := v.f.Add(v.f.Reduce(reducedCipher[j]), v.f.Mul(tags[j], v.z))
		ok := false
		for k := 0; k <= wraps; k++ {
			if rhs == sSum {
				ok = true
				break
			}
			rhs = v.f.Add(rhs, pow64)
		}
		if !ok {
			return j
		}
	}
	return -1
}

// Overhead reports the per-element traffic multiplier the MAC adds for a
// dataBits-wide datatype: (dataBits + λ)/dataBits, e.g. 2.0 (i.e. +100%,
// a >200%-of-plaintext pair) for 64-bit data and a 64-bit p.
func (v *Vector) Overhead(dataBits int) float64 {
	lambda := 0
	for p := v.f.P; p > 0; p >>= 1 {
		lambda++
	}
	return float64(dataBits+lambda) / float64(dataBits)
}
