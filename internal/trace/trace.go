// Package trace provides the phase timers behind Figure 4's critical-path
// breakdown: one Allreduce call decomposes into mem_alloc, encrypt, comm,
// decrypt, and mem_free, and the breakdown reports each phase's share of
// the total. The paper samples x86 RDTSC; we sample the monotonic clock
// and convert to cycles at a nominal frequency for like-for-like plots.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Phase names in critical-path order, matching Figure 4's legend.
const (
	PhaseMemAlloc = "mem_alloc"
	PhaseEncrypt  = "encrypt"
	PhaseComm     = "comm"
	PhaseDecrypt  = "decrypt"
	PhaseMemFree  = "mem_free"
)

// PhaseOrder is the canonical rendering order.
var PhaseOrder = []string{PhaseMemAlloc, PhaseEncrypt, PhaseComm, PhaseDecrypt, PhaseMemFree}

// NominalGHz converts durations to the paper's cycle axis (the testbed's
// Xeon E5-2695 v4 runs at 2.10 GHz).
const NominalGHz = 2.10

// Breakdown accumulates per-phase durations over many iterations, plus
// byte counters for phases that measure volume rather than time (the
// noise prefetcher's hit/miss accounting).
type Breakdown struct {
	totals map[string]time.Duration
	counts map[string]int
	bytes  map[string]int64
	// KeepSamples retains every duration so Median is available — the
	// robust statistic for noisy (virtualized, time-shared) hosts where a
	// single multi-second stall would poison a mean.
	KeepSamples bool
	samples     map[string][]time.Duration
}

// NewBreakdown returns an empty accumulator.
func NewBreakdown() *Breakdown {
	return &Breakdown{
		totals:  map[string]time.Duration{},
		counts:  map[string]int{},
		bytes:   map[string]int64{},
		samples: map[string][]time.Duration{},
	}
}

// Timer measures one phase; obtain with Start, finish with Stop.
type Timer struct {
	b     *Breakdown
	phase string
	t0    time.Time
}

// Start begins timing a phase.
func (b *Breakdown) Start(phase string) Timer {
	return Timer{b: b, phase: phase, t0: time.Now()}
}

// Stop records the elapsed time into the breakdown.
func (t Timer) Stop() {
	t.b.AddDuration(t.phase, time.Since(t.t0))
}

// AddDuration records an externally measured duration.
func (b *Breakdown) AddDuration(phase string, d time.Duration) {
	b.totals[phase] += d
	b.counts[phase]++
	if b.KeepSamples {
		b.samples[phase] = append(b.samples[phase], d)
	}
}

// AddBytes records n bytes under a phase. Byte phases live beside the
// duration phases of one accumulator so a volume metric renders next to
// the critical-path time it explains; they do not appear in Phases or the
// duration statistics.
func (b *Breakdown) AddBytes(phase string, n int64) {
	b.bytes[phase] += n
}

// Bytes returns the accumulated byte counter of a phase.
func (b *Breakdown) Bytes(phase string) int64 { return b.bytes[phase] }

// BytePhases lists phases with byte counters, sorted.
func (b *Breakdown) BytePhases() []string {
	var out []string
	for p := range b.bytes {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Median returns the median duration of a phase. It requires KeepSamples;
// without samples it falls back to the mean.
func (b *Breakdown) Median(phase string) time.Duration {
	s := b.samples[phase]
	if len(s) == 0 {
		return b.Mean(phase)
	}
	sorted := make([]time.Duration, len(s))
	copy(sorted, s)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2]
}

// MedianCycles converts Median to cycles at the nominal frequency.
func (b *Breakdown) MedianCycles(phase string) float64 {
	return b.Median(phase).Seconds() * NominalGHz * 1e9
}

// MedianOverheadPercent is OverheadPercent on medians.
func (b *Breakdown) MedianOverheadPercent() (float64, bool) {
	comm := b.Median(PhaseComm)
	if b.counts[PhaseComm] == 0 || comm == 0 {
		// Comm never recorded — or recorded as zero time, below the clock's
		// resolution: either way "overhead as a % of comm" has no value, as
		// opposed to a genuine 0% (comm measured, no other phases).
		return 0, false
	}
	var other time.Duration
	for _, p := range b.Phases() {
		if p != PhaseComm {
			other += b.Median(p)
		}
	}
	return 100 * float64(other) / float64(comm), true
}

// MedianString renders the median breakdown as a Figure 4-style row.
func (b *Breakdown) MedianString() string {
	var sb strings.Builder
	var total float64
	for i, p := range b.Phases() {
		if i > 0 {
			sb.WriteString("  ")
		}
		c := b.MedianCycles(p)
		total += c
		fmt.Fprintf(&sb, "%s=%.0fcy", p, c)
	}
	fmt.Fprintf(&sb, "  total=%.0fcy overhead=%s", total, formatOverhead(b.MedianOverheadPercent()))
	return sb.String()
}

// formatOverhead renders an overhead percentage, distinguishing a
// measured 0.0% from "comm was never (usably) measured".
func formatOverhead(pct float64, ok bool) string {
	if !ok {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", pct)
}

// Sum returns the accumulated duration of a phase across all iterations.
func (b *Breakdown) Sum(phase string) time.Duration { return b.totals[phase] }

// Count returns how many samples a phase has accumulated.
func (b *Breakdown) Count(phase string) int { return b.counts[phase] }

// Mean returns the average duration of one phase iteration.
func (b *Breakdown) Mean(phase string) time.Duration {
	n := b.counts[phase]
	if n == 0 {
		return 0
	}
	return b.totals[phase] / time.Duration(n)
}

// MeanCycles converts Mean to cycles at the nominal frequency.
func (b *Breakdown) MeanCycles(phase string) float64 {
	return b.Mean(phase).Seconds() * NominalGHz * 1e9
}

// Total returns the mean end-to-end critical path per iteration.
func (b *Breakdown) Total() time.Duration {
	var sum time.Duration
	for _, p := range b.Phases() {
		sum += b.Mean(p)
	}
	return sum
}

// OverheadPercent returns the non-comm share relative to comm — the
// percentage annotations of Figure 4 ("7.1%" for AES-NI, "75.5%" for
// SHA1). The boolean reports whether the percentage is meaningful: false
// when the comm phase was never recorded (or measured as zero time), so
// callers can render "n/a" instead of a bogus 0.0% that is
// indistinguishable from a genuinely overhead-free run.
func (b *Breakdown) OverheadPercent() (float64, bool) {
	comm := b.Mean(PhaseComm)
	if b.counts[PhaseComm] == 0 || comm == 0 {
		return 0, false
	}
	var other time.Duration
	for _, p := range b.Phases() {
		if p != PhaseComm {
			other += b.Mean(p)
		}
	}
	return 100 * float64(other) / float64(comm), true
}

// Phases lists recorded phases in canonical order, then any extras sorted.
func (b *Breakdown) Phases() []string {
	var out []string
	seen := map[string]bool{}
	for _, p := range PhaseOrder {
		if b.counts[p] > 0 {
			out = append(out, p)
			seen[p] = true
		}
	}
	var extra []string
	for p := range b.counts {
		if !seen[p] {
			extra = append(extra, p)
		}
	}
	sort.Strings(extra)
	return append(out, extra...)
}

// SyncBreakdown is a Breakdown safe for concurrent recording. Long-lived
// multi-goroutine services — the aggregation gateway's connection handlers
// and fold workers — record into one SyncBreakdown and publish snapshots;
// the per-rank Breakdown stays lock-free for the single-goroutine
// benchmarking paths.
type SyncBreakdown struct {
	mu sync.Mutex
	b  *Breakdown
}

// NewSyncBreakdown returns an empty concurrent accumulator.
func NewSyncBreakdown() *SyncBreakdown {
	return &SyncBreakdown{b: NewBreakdown()}
}

// AddDuration records an externally measured duration.
func (s *SyncBreakdown) AddDuration(phase string, d time.Duration) {
	s.mu.Lock()
	s.b.AddDuration(phase, d)
	s.mu.Unlock()
}

// AddBytes records a byte count under a phase.
func (s *SyncBreakdown) AddBytes(phase string, n int64) {
	s.mu.Lock()
	s.b.AddBytes(phase, n)
	s.mu.Unlock()
}

// Start begins timing a phase; call the returned stop function to record.
// The returned closure allocates — hot loops that must stay allocation-free
// use StartTimer instead.
func (s *SyncBreakdown) Start(phase string) func() {
	t0 := time.Now()
	return func() { s.AddDuration(phase, time.Since(t0)) }
}

// SyncTimer measures one phase of a SyncBreakdown without allocating: it is
// a plain value, so the gateway's per-chunk receive and fold paths can time
// themselves at zero allocations per operation (TestSyncTimerAllocFree).
type SyncTimer struct {
	s     *SyncBreakdown
	phase string
	t0    time.Time
}

// StartTimer begins timing a phase; finish with Stop.
func (s *SyncBreakdown) StartTimer(phase string) SyncTimer {
	return SyncTimer{s: s, phase: phase, t0: time.Now()}
}

// Stop records the elapsed time into the breakdown.
func (t SyncTimer) Stop() {
	t.s.AddDuration(t.phase, time.Since(t.t0))
}

// SetKeepSamples toggles per-duration sample retention on the underlying
// breakdown, enabling true medians on snapshots (see Breakdown.KeepSamples
// for the cost trade-off). Samples recorded while retention was off are
// not reconstructed.
func (s *SyncBreakdown) SetKeepSamples(keep bool) {
	s.mu.Lock()
	s.b.KeepSamples = keep
	s.mu.Unlock()
}

// Snapshot returns an independent copy of the accumulated breakdown,
// safe to read while recording continues. The copy carries everything the
// accumulator holds — totals, counts, byte counters, and (with
// KeepSamples) the retained samples, so Median on a snapshot is the real
// median, not a silent fall-back to the mean.
func (s *SyncBreakdown) Snapshot() *Breakdown {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := NewBreakdown()
	for p, d := range s.b.totals {
		c.totals[p] = d
	}
	for p, n := range s.b.counts {
		c.counts[p] = n
	}
	for p, n := range s.b.bytes {
		c.bytes[p] = n
	}
	c.KeepSamples = s.b.KeepSamples
	for p, samples := range s.b.samples {
		c.samples[p] = append([]time.Duration(nil), samples...)
	}
	return c
}

// String renders the breakdown as a Figure 4-style row.
func (b *Breakdown) String() string {
	var sb strings.Builder
	for i, p := range b.Phases() {
		if i > 0 {
			sb.WriteString("  ")
		}
		fmt.Fprintf(&sb, "%s=%.0fcy", p, b.MeanCycles(p))
	}
	fmt.Fprintf(&sb, "  total=%.0fcy overhead=%s",
		b.Total().Seconds()*NominalGHz*1e9, formatOverhead(b.OverheadPercent()))
	return sb.String()
}
