package trace

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBreakdownAccumulates(t *testing.T) {
	b := NewBreakdown()
	b.AddDuration(PhaseEncrypt, 100*time.Microsecond)
	b.AddDuration(PhaseEncrypt, 300*time.Microsecond)
	b.AddDuration(PhaseComm, 1*time.Millisecond)
	if got := b.Mean(PhaseEncrypt); got != 200*time.Microsecond {
		t.Errorf("mean encrypt = %v", got)
	}
	if got := b.Mean(PhaseComm); got != time.Millisecond {
		t.Errorf("mean comm = %v", got)
	}
	if got := b.Mean("nonexistent"); got != 0 {
		t.Errorf("mean of unrecorded phase = %v", got)
	}
}

func TestTimerMeasuresElapsed(t *testing.T) {
	b := NewBreakdown()
	tm := b.Start(PhaseDecrypt)
	time.Sleep(2 * time.Millisecond)
	tm.Stop()
	if b.Mean(PhaseDecrypt) < time.Millisecond {
		t.Errorf("timer measured %v, slept 2ms", b.Mean(PhaseDecrypt))
	}
}

func TestOverheadPercent(t *testing.T) {
	b := NewBreakdown()
	b.AddDuration(PhaseComm, 1000*time.Microsecond)
	b.AddDuration(PhaseEncrypt, 50*time.Microsecond)
	b.AddDuration(PhaseDecrypt, 21*time.Microsecond)
	got, ok := b.OverheadPercent()
	if !ok {
		t.Fatal("overhead not measurable despite a recorded comm phase")
	}
	if got < 7.0 || got > 7.2 {
		t.Errorf("overhead = %.2f%%, want 7.1%%", got)
	}
	empty := NewBreakdown()
	if pct, ok := empty.OverheadPercent(); ok || pct != 0 {
		t.Error("empty breakdown reports a measurable overhead")
	}
}

// TestOverheadDistinguishesZeroFromUnmeasured is the regression test for
// the overhead=0.0% ambiguity: a breakdown with comm but no other phases
// is genuinely 0%, a breakdown that never timed comm is n/a — they used
// to render identically.
func TestOverheadDistinguishesZeroFromUnmeasured(t *testing.T) {
	zero := NewBreakdown()
	zero.AddDuration(PhaseComm, time.Millisecond)
	if pct, ok := zero.OverheadPercent(); !ok || pct != 0 {
		t.Errorf("comm-only breakdown = (%.1f, %v), want measurable 0%%", pct, ok)
	}
	if s := zero.String(); !strings.Contains(s, "overhead=0.0%") {
		t.Errorf("comm-only String() = %q, want overhead=0.0%%", s)
	}

	unmeasured := NewBreakdown()
	unmeasured.AddDuration(PhaseEncrypt, time.Millisecond)
	if _, ok := unmeasured.OverheadPercent(); ok {
		t.Error("breakdown without comm reports a measurable overhead")
	}
	if s := unmeasured.String(); !strings.Contains(s, "overhead=n/a") {
		t.Errorf("comm-less String() = %q, want overhead=n/a", s)
	}
	if s := unmeasured.MedianString(); !strings.Contains(s, "overhead=n/a") {
		t.Errorf("comm-less MedianString() = %q, want overhead=n/a", s)
	}

	// Comm recorded but below clock resolution: also not a usable divisor.
	zeroDur := NewBreakdown()
	zeroDur.AddDuration(PhaseComm, 0)
	zeroDur.AddDuration(PhaseEncrypt, time.Millisecond)
	if _, ok := zeroDur.OverheadPercent(); ok {
		t.Error("zero-duration comm reports a measurable overhead")
	}
}

func TestPhasesCanonicalOrder(t *testing.T) {
	b := NewBreakdown()
	b.AddDuration(PhaseMemFree, time.Microsecond)
	b.AddDuration(PhaseEncrypt, time.Microsecond)
	b.AddDuration("custom", time.Microsecond)
	b.AddDuration(PhaseMemAlloc, time.Microsecond)
	got := b.Phases()
	want := []string{PhaseMemAlloc, PhaseEncrypt, PhaseMemFree, "custom"}
	if len(got) != len(want) {
		t.Fatalf("phases = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("phases = %v, want %v", got, want)
		}
	}
}

func TestMeanCyclesUsesNominalFrequency(t *testing.T) {
	b := NewBreakdown()
	b.AddDuration(PhaseComm, time.Microsecond)
	if got := b.MeanCycles(PhaseComm); got < 2090 || got > 2110 {
		t.Errorf("1 µs at 2.1 GHz = %f cycles, want 2100", got)
	}
}

func TestMedianRequiresSamples(t *testing.T) {
	b := NewBreakdown()
	b.AddDuration(PhaseComm, 10*time.Microsecond)
	b.AddDuration(PhaseComm, 20*time.Microsecond)
	// Without KeepSamples, Median falls back to the mean.
	if got := b.Median(PhaseComm); got != 15*time.Microsecond {
		t.Errorf("fallback median = %v, want mean 15µs", got)
	}
}

func TestMedianRobustToOutlier(t *testing.T) {
	b := NewBreakdown()
	b.KeepSamples = true
	for i := 0; i < 9; i++ {
		b.AddDuration(PhaseComm, time.Microsecond)
	}
	b.AddDuration(PhaseComm, time.Minute) // the virtualized-host stall
	if got := b.Median(PhaseComm); got != time.Microsecond {
		t.Errorf("median = %v; an outlier moved it", got)
	}
	if b.Mean(PhaseComm) < time.Second {
		t.Error("mean should be poisoned by the outlier (that is the point)")
	}
}

func TestMedianCyclesAndOverhead(t *testing.T) {
	b := NewBreakdown()
	b.KeepSamples = true
	b.AddDuration(PhaseComm, time.Microsecond)
	b.AddDuration(PhaseEncrypt, 100*time.Nanosecond)
	if got := b.MedianCycles(PhaseComm); got < 2090 || got > 2110 {
		t.Errorf("median cycles = %g", got)
	}
	if got, ok := b.MedianOverheadPercent(); !ok || got < 9.9 || got > 10.1 {
		t.Errorf("median overhead = %g%% (ok=%v), want 10%%", got, ok)
	}
	empty := NewBreakdown()
	if pct, ok := empty.MedianOverheadPercent(); ok || pct != 0 {
		t.Error("empty breakdown reports a measurable median overhead")
	}
}

func TestMedianStringRenders(t *testing.T) {
	b := NewBreakdown()
	b.KeepSamples = true
	b.AddDuration(PhaseEncrypt, time.Microsecond)
	b.AddDuration(PhaseComm, 2*time.Microsecond)
	s := b.MedianString()
	for _, want := range []string{"encrypt", "comm", "total", "overhead"} {
		if !strings.Contains(s, want) {
			t.Errorf("MedianString() = %q missing %q", s, want)
		}
	}
}

func TestTotal(t *testing.T) {
	b := NewBreakdown()
	b.AddDuration(PhaseEncrypt, 3*time.Microsecond)
	b.AddDuration(PhaseComm, 7*time.Microsecond)
	if got := b.Total(); got != 10*time.Microsecond {
		t.Errorf("total = %v", got)
	}
}

func TestStringRendersAllPhases(t *testing.T) {
	b := NewBreakdown()
	b.AddDuration(PhaseEncrypt, time.Microsecond)
	b.AddDuration(PhaseComm, time.Microsecond)
	s := b.String()
	for _, want := range []string{"encrypt", "comm", "total", "overhead"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestSumAndCount(t *testing.T) {
	b := NewBreakdown()
	b.AddDuration(PhaseEncrypt, 3*time.Microsecond)
	b.AddDuration(PhaseEncrypt, 5*time.Microsecond)
	if got := b.Sum(PhaseEncrypt); got != 8*time.Microsecond {
		t.Errorf("Sum = %v", got)
	}
	if got := b.Count(PhaseEncrypt); got != 2 {
		t.Errorf("Count = %d", got)
	}
}

func TestSyncBreakdownConcurrent(t *testing.T) {
	s := NewSyncBreakdown()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s.AddDuration("fold", time.Microsecond)
			}
		}()
	}
	wg.Wait()
	snap := s.Snapshot()
	if got := snap.Count("fold"); got != 800 {
		t.Errorf("Count = %d, want 800", got)
	}
	if got := snap.Sum("fold"); got != 800*time.Microsecond {
		t.Errorf("Sum = %v", got)
	}
	// The snapshot is independent of later recording.
	stop := s.Start("fold")
	stop()
	if got := snap.Count("fold"); got != 800 {
		t.Errorf("snapshot mutated: Count = %d", got)
	}
	if s.Snapshot().Count("fold") != 801 {
		t.Error("Start/stop did not record")
	}
}

// TestSyncSnapshotKeepsSamples is the regression test for the
// Snapshot-drops-samples bug: totals/counts/bytes were copied but the
// retained samples were not, so Median on a snapshot silently degraded to
// the mean — exactly the outlier-poisoned statistic KeepSamples exists to
// avoid.
func TestSyncSnapshotKeepsSamples(t *testing.T) {
	s := NewSyncBreakdown()
	s.SetKeepSamples(true)
	for i := 0; i < 9; i++ {
		s.AddDuration(PhaseComm, time.Microsecond)
	}
	s.AddDuration(PhaseComm, time.Minute) // the stall an accurate median must shrug off
	s.AddBytes("prefetch_hit_bytes", 4096)

	snap := s.Snapshot()
	if got := snap.Median(PhaseComm); got != time.Microsecond {
		t.Errorf("snapshot median = %v, want 1µs (mean fallback = sample loss)", got)
	}
	if !snap.KeepSamples {
		t.Error("snapshot lost the KeepSamples flag")
	}
	if got := snap.Bytes("prefetch_hit_bytes"); got != 4096 {
		t.Errorf("snapshot bytes = %d", got)
	}

	// The copy is deep: recording after the snapshot must not leak into
	// it, and vice versa.
	s.AddDuration(PhaseComm, time.Minute)
	if got := snap.Median(PhaseComm); got != time.Microsecond {
		t.Errorf("snapshot median mutated by later recording: %v", got)
	}
	snap.AddDuration(PhaseComm, time.Minute)
	if got := s.Snapshot().Count(PhaseComm); got != 11 {
		t.Errorf("live accumulator mutated by snapshot write: count = %d", got)
	}
}

func TestSyncTimerMeasuresElapsed(t *testing.T) {
	s := NewSyncBreakdown()
	tm := s.StartTimer(PhaseComm)
	time.Sleep(2 * time.Millisecond)
	tm.Stop()
	snap := s.Snapshot()
	if snap.Count(PhaseComm) != 1 {
		t.Fatalf("count = %d, want 1", snap.Count(PhaseComm))
	}
	if snap.Sum(PhaseComm) < time.Millisecond {
		t.Errorf("recorded %v, want >= 1ms", snap.Sum(PhaseComm))
	}
}

// TestSyncTimerAllocFree pins the zero-copy wire path's timing contract:
// unlike Start's closure, a SyncTimer costs no allocation per phase sample,
// so the gateway's per-chunk recv/fold timing stays off the garbage path.
func TestSyncTimerAllocFree(t *testing.T) {
	s := NewSyncBreakdown()
	s.StartTimer(PhaseComm).Stop() // warm the phase's map entries
	if n := testing.AllocsPerRun(100, func() {
		tm := s.StartTimer(PhaseComm)
		tm.Stop()
	}); n != 0 {
		t.Errorf("SyncTimer allocates %.1f/op, want 0", n)
	}
}
