package baseline

import (
	"testing"
)

// Small key sizes keep the suite fast; correctness is size-independent.
const testPrimeBits = 256

func TestPaillierRoundTrip(t *testing.T) {
	p, err := NewPaillier(testPrimeBits)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []uint64{0, 1, 42, 1 << 40, ^uint64(0)} {
		c, err := p.Encrypt(m)
		if err != nil {
			t.Fatal(err)
		}
		got, ok, err := p.Decrypt(c)
		if err != nil || !ok || got != m {
			t.Fatalf("round trip %d -> %d (%v, %v)", m, got, ok, err)
		}
	}
}

func TestPaillierHomomorphicAdd(t *testing.T) {
	p, err := NewPaillier(testPrimeBits)
	if err != nil {
		t.Fatal(err)
	}
	vals := []uint64{7, 100, 9999, 1 << 30}
	var agg Ciphertext
	var want uint64
	for i, m := range vals {
		c, err := p.Encrypt(m)
		if err != nil {
			t.Fatal(err)
		}
		want += m
		if i == 0 {
			agg = c
		} else {
			agg = p.Combine(agg, c)
		}
	}
	got, ok, err := p.Decrypt(agg)
	if err != nil || !ok || got != want {
		t.Fatalf("homomorphic sum = %d, want %d", got, want)
	}
}

func TestPaillierProbabilistic(t *testing.T) {
	p, err := NewPaillier(testPrimeBits)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := p.Encrypt(5)
	b, _ := p.Encrypt(5)
	if a.parts[0].Cmp(b.parts[0]) == 0 {
		t.Error("identical ciphertexts for equal plaintexts: not semantically secure")
	}
}

func TestRSARoundTripAndHomomorphicMul(t *testing.T) {
	r, err := NewRSA(testPrimeBits)
	if err != nil {
		t.Fatal(err)
	}
	a, err := r.Encrypt(123)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Encrypt(4567)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := r.Decrypt(r.Combine(a, b))
	if err != nil || !ok || got != 123*4567 {
		t.Fatalf("homomorphic product = %d, want %d", got, 123*4567)
	}
	if _, err := r.Encrypt(0); err == nil {
		t.Error("RSA accepted 0")
	}
}

func TestRSADeterminismDocumented(t *testing.T) {
	// Textbook RSA is deterministic — the property that fails IND-CPA and
	// keeps it out of Table 1's acceptable schemes.
	r, err := NewRSA(testPrimeBits)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := r.Encrypt(99)
	b, _ := r.Encrypt(99)
	if a.parts[0].Cmp(b.parts[0]) != 0 {
		t.Error("textbook RSA should be deterministic")
	}
}

func TestElGamalRoundTripAndHomomorphicMul(t *testing.T) {
	e, err := NewElGamal(512)
	if err != nil {
		t.Fatal(err)
	}
	a, err := e.Encrypt(321)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Encrypt(1000)
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := e.Decrypt(e.Combine(a, b))
	if err != nil || !ok || got != 321000 {
		t.Fatalf("homomorphic product = %d (%v, %v), want 321000", got, ok, err)
	}
	if _, err := e.Encrypt(0); err == nil {
		t.Error("ElGamal accepted 0")
	}
}

// Table 1's R1: every baseline violates the 2x inflation budget for 64-bit
// payloads, while HEAR's integer schemes sit at exactly 1x.
func TestInflationViolatesR1(t *testing.T) {
	p, err := NewPaillier(testPrimeBits)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRSA(testPrimeBits)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewElGamal(512)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []PHE{p, r, e} {
		if infl := s.InflationFor(64); infl <= 2 {
			t.Errorf("%s: inflation %.1fx unexpectedly satisfies R1 at toy key sizes", s.Name(), infl)
		}
	}
}

func TestKeySizeValidation(t *testing.T) {
	if _, err := NewPaillier(16); err == nil {
		t.Error("tiny paillier key accepted")
	}
	if _, err := NewRSA(10000); err == nil {
		t.Error("huge rsa key accepted")
	}
	if _, err := NewElGamal(64); err == nil {
		t.Error("tiny elgamal group accepted")
	}
}

func TestMalformedCiphertexts(t *testing.T) {
	p, err := NewPaillier(testPrimeBits)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Decrypt(Ciphertext{}); err == nil {
		t.Error("empty paillier ciphertext accepted")
	}
	r, err := NewRSA(testPrimeBits)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Decrypt(Ciphertext{}); err == nil {
		t.Error("empty rsa ciphertext accepted")
	}
	e, err := NewElGamal(512)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := e.Decrypt(Ciphertext{}); err == nil {
		t.Error("empty elgamal ciphertext accepted")
	}
}

func BenchmarkPaillierEncrypt(b *testing.B) {
	p, err := NewPaillier(512)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Encrypt(uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRSAEncrypt(b *testing.B) {
	r, err := NewRSA(512)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Encrypt(uint64(i) + 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkElGamalEncrypt(b *testing.B) {
	e, err := NewElGamal(512)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Encrypt(uint64(i) + 1); err != nil {
			b.Fatal(err)
		}
	}
}
