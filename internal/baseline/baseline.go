// Package baseline implements the textbook partially-homomorphic schemes
// HEAR is compared against in Table 1: Paillier (additive), RSA
// (multiplicative), and ElGamal (multiplicative), all over math/big. They
// exist so the table's requirement matrix — R1 ciphertext inflation, R3
// operation complexity — is *measured* on the same machine as HEAR rather
// than cited. None of these schemes is deployment-hardened (textbook RSA
// in particular is not even IND-CPA); they are comparators, not products.
package baseline

import (
	"crypto/rand"
	"fmt"
	"math/big"
)

// PHE is a partially homomorphic scheme over uint64 plaintexts.
type PHE interface {
	// Name identifies the scheme.
	Name() string
	// OpName is the homomorphic operation: "add" or "mul".
	OpName() string
	// Encrypt maps a plaintext into a ciphertext.
	Encrypt(m uint64) (Ciphertext, error)
	// Decrypt recovers the (aggregated) plaintext. The aggregate must fit
	// the scheme's message space or the result is reduced mod n — the
	// bounded-operations weakness R2 penalizes.
	Decrypt(c Ciphertext) (uint64, bool, error)
	// Combine applies the homomorphic operation to two ciphertexts.
	Combine(a, b Ciphertext) Ciphertext
	// CiphertextBytes is the wire size of one ciphertext.
	CiphertextBytes() int
	// InflationFor returns ciphertext bytes per plaintext byte for a
	// plaintextBits-wide message (Table 1's R1 measure).
	InflationFor(plaintextBits int) float64
}

// Ciphertext is an opaque list of group elements.
type Ciphertext struct {
	parts []*big.Int
}

// Bytes returns the serialized size.
func (c Ciphertext) Bytes(modBytes int) int { return len(c.parts) * modBytes }

// clone deep-copies a ciphertext so Combine never aliases its inputs.
func clone(x *big.Int) *big.Int { return new(big.Int).Set(x) }

// --- Paillier ---

// Paillier is the additively homomorphic cryptosystem of [72]: ciphertexts
// live in Z*_{n²}, so even in the best case the ciphertext is 2x the
// modulus — for 64-bit HPC payloads the inflation is 2·|n|/64, violating
// R1 by an order of magnitude.
type Paillier struct {
	n, n2, g *big.Int
	lambda   *big.Int
	mu       *big.Int
	modBytes int
}

// NewPaillier generates a key pair with a modulus of 2·primeBits bits.
func NewPaillier(primeBits int) (*Paillier, error) {
	if primeBits < 128 || primeBits > 2048 {
		return nil, fmt.Errorf("baseline: paillier prime size %d outside [128, 2048]", primeBits)
	}
	p, err := rand.Prime(rand.Reader, primeBits)
	if err != nil {
		return nil, err
	}
	q, err := rand.Prime(rand.Reader, primeBits)
	if err != nil {
		return nil, err
	}
	n := new(big.Int).Mul(p, q)
	n2 := new(big.Int).Mul(n, n)
	one := big.NewInt(1)
	pm1 := new(big.Int).Sub(p, one)
	qm1 := new(big.Int).Sub(q, one)
	lambda := new(big.Int).Div(new(big.Int).Mul(pm1, qm1), new(big.Int).GCD(nil, nil, pm1, qm1))
	g := new(big.Int).Add(n, one) // standard choice g = n+1
	// mu = (L(g^lambda mod n²))⁻¹ mod n with L(x) = (x−1)/n.
	glambda := new(big.Int).Exp(g, lambda, n2)
	l := new(big.Int).Div(new(big.Int).Sub(glambda, one), n)
	mu := new(big.Int).ModInverse(l, n)
	if mu == nil {
		return nil, fmt.Errorf("baseline: paillier key generation failed (non-invertible L)")
	}
	return &Paillier{n: n, n2: n2, g: g, lambda: lambda, mu: mu, modBytes: (n2.BitLen() + 7) / 8}, nil
}

func (p *Paillier) Name() string   { return "paillier" }
func (p *Paillier) OpName() string { return "add" }

func (p *Paillier) Encrypt(m uint64) (Ciphertext, error) {
	r, err := rand.Int(rand.Reader, p.n)
	if err != nil {
		return Ciphertext{}, err
	}
	r.Add(r, big.NewInt(1)) // avoid 0
	// c = g^m · r^n mod n²
	gm := new(big.Int).Exp(p.g, new(big.Int).SetUint64(m), p.n2)
	rn := new(big.Int).Exp(r, p.n, p.n2)
	c := gm.Mul(gm, rn)
	c.Mod(c, p.n2)
	return Ciphertext{parts: []*big.Int{c}}, nil
}

func (p *Paillier) Decrypt(c Ciphertext) (uint64, bool, error) {
	if len(c.parts) != 1 {
		return 0, false, fmt.Errorf("baseline: malformed paillier ciphertext")
	}
	x := new(big.Int).Exp(c.parts[0], p.lambda, p.n2)
	l := new(big.Int).Div(new(big.Int).Sub(x, big.NewInt(1)), p.n)
	m := l.Mul(l, p.mu)
	m.Mod(m, p.n)
	return m.Uint64(), m.IsUint64(), nil
}

func (p *Paillier) Combine(a, b Ciphertext) Ciphertext {
	c := clone(a.parts[0])
	c.Mul(c, b.parts[0])
	c.Mod(c, p.n2)
	return Ciphertext{parts: []*big.Int{c}}
}

func (p *Paillier) CiphertextBytes() int { return p.modBytes }

func (p *Paillier) InflationFor(plaintextBits int) float64 {
	return float64(p.modBytes*8) / float64(plaintextBits)
}

// --- RSA (textbook, multiplicative) ---

// RSA is the multiplicatively homomorphic textbook scheme of [78]:
// c = m^e mod n, c₁c₂ = (m₁m₂)^e. Deterministic, hence not IND-CPA —
// listed in Table 1 precisely to show what the requirements exclude.
type RSA struct {
	n, e, d  *big.Int
	modBytes int
}

// NewRSA generates a key with a modulus of 2·primeBits bits and e = 65537.
func NewRSA(primeBits int) (*RSA, error) {
	if primeBits < 128 || primeBits > 2048 {
		return nil, fmt.Errorf("baseline: rsa prime size %d outside [128, 2048]", primeBits)
	}
	e := big.NewInt(65537)
	for {
		p, err := rand.Prime(rand.Reader, primeBits)
		if err != nil {
			return nil, err
		}
		q, err := rand.Prime(rand.Reader, primeBits)
		if err != nil {
			return nil, err
		}
		n := new(big.Int).Mul(p, q)
		phi := new(big.Int).Mul(new(big.Int).Sub(p, big.NewInt(1)), new(big.Int).Sub(q, big.NewInt(1)))
		d := new(big.Int).ModInverse(e, phi)
		if d == nil {
			continue // e not coprime to phi; rare, redraw
		}
		return &RSA{n: n, e: e, d: d, modBytes: (n.BitLen() + 7) / 8}, nil
	}
}

func (r *RSA) Name() string   { return "rsa" }
func (r *RSA) OpName() string { return "mul" }

func (r *RSA) Encrypt(m uint64) (Ciphertext, error) {
	if m == 0 {
		return Ciphertext{}, fmt.Errorf("baseline: rsa cannot encrypt 0 usefully")
	}
	c := new(big.Int).Exp(new(big.Int).SetUint64(m), r.e, r.n)
	return Ciphertext{parts: []*big.Int{c}}, nil
}

func (r *RSA) Decrypt(c Ciphertext) (uint64, bool, error) {
	if len(c.parts) != 1 {
		return 0, false, fmt.Errorf("baseline: malformed rsa ciphertext")
	}
	m := new(big.Int).Exp(c.parts[0], r.d, r.n)
	return m.Uint64(), m.IsUint64(), nil
}

func (r *RSA) Combine(a, b Ciphertext) Ciphertext {
	c := clone(a.parts[0])
	c.Mul(c, b.parts[0])
	c.Mod(c, r.n)
	return Ciphertext{parts: []*big.Int{c}}
}

func (r *RSA) CiphertextBytes() int { return r.modBytes }

func (r *RSA) InflationFor(plaintextBits int) float64 {
	return float64(r.modBytes*8) / float64(plaintextBits)
}

// --- ElGamal (multiplicative) ---

// ElGamal is the multiplicatively homomorphic scheme of [33] over a
// safe-prime group: c = (g^r, m·h^r). Two group elements per ciphertext —
// at least 2x inflation on the modulus alone.
type ElGamal struct {
	p, g, h, x *big.Int // public p, g, h = g^x; secret x
	modBytes   int
}

// NewElGamal generates a key over a bits-wide safe-prime group.
func NewElGamal(bits int) (*ElGamal, error) {
	if bits < 256 || bits > 4096 {
		return nil, fmt.Errorf("baseline: elgamal size %d outside [256, 4096]", bits)
	}
	// Safe prime generation is slow for large sizes; acceptable for a
	// comparator that is constructed once per benchmark run.
	var p *big.Int
	for {
		q, err := rand.Prime(rand.Reader, bits-1)
		if err != nil {
			return nil, err
		}
		p = new(big.Int).Add(new(big.Int).Lsh(q, 1), big.NewInt(1)) // p = 2q+1
		if p.ProbablyPrime(20) {
			break
		}
	}
	g := big.NewInt(4) // quadratic residue, generates the order-q subgroup
	x, err := rand.Int(rand.Reader, new(big.Int).Sub(p, big.NewInt(2)))
	if err != nil {
		return nil, err
	}
	x.Add(x, big.NewInt(1))
	h := new(big.Int).Exp(g, x, p)
	return &ElGamal{p: p, g: g, h: h, x: x, modBytes: (p.BitLen() + 7) / 8}, nil
}

func (e *ElGamal) Name() string   { return "elgamal" }
func (e *ElGamal) OpName() string { return "mul" }

func (e *ElGamal) Encrypt(m uint64) (Ciphertext, error) {
	if m == 0 {
		return Ciphertext{}, fmt.Errorf("baseline: elgamal cannot encrypt 0")
	}
	r, err := rand.Int(rand.Reader, new(big.Int).Sub(e.p, big.NewInt(2)))
	if err != nil {
		return Ciphertext{}, err
	}
	r.Add(r, big.NewInt(1))
	c1 := new(big.Int).Exp(e.g, r, e.p)
	c2 := new(big.Int).Exp(e.h, r, e.p)
	c2.Mul(c2, new(big.Int).SetUint64(m))
	c2.Mod(c2, e.p)
	return Ciphertext{parts: []*big.Int{c1, c2}}, nil
}

func (e *ElGamal) Decrypt(c Ciphertext) (uint64, bool, error) {
	if len(c.parts) != 2 {
		return 0, false, fmt.Errorf("baseline: malformed elgamal ciphertext")
	}
	s := new(big.Int).Exp(c.parts[0], e.x, e.p)
	sInv := new(big.Int).ModInverse(s, e.p)
	if sInv == nil {
		return 0, false, fmt.Errorf("baseline: elgamal shared secret not invertible")
	}
	m := sInv.Mul(sInv, c.parts[1])
	m.Mod(m, e.p)
	return m.Uint64(), m.IsUint64(), nil
}

func (e *ElGamal) Combine(a, b Ciphertext) Ciphertext {
	c1 := clone(a.parts[0])
	c1.Mul(c1, b.parts[0])
	c1.Mod(c1, e.p)
	c2 := clone(a.parts[1])
	c2.Mul(c2, b.parts[1])
	c2.Mod(c2, e.p)
	return Ciphertext{parts: []*big.Int{c1, c2}}
}

func (e *ElGamal) CiphertextBytes() int { return 2 * e.modBytes }

func (e *ElGamal) InflationFor(plaintextBits int) float64 {
	return float64(2*e.modBytes*8) / float64(plaintextBits)
}
