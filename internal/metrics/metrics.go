// Package metrics is HEAR's unified telemetry registry: named counters,
// gauges, and fixed-bucket histograms shared by every long-lived surface
// of the stack — the allreduce data paths, the verified-retry ladder, the
// cipher-engine worker pool, the noise prefetcher, the chaos layer, and
// the aggregation gateway. The paper's evaluation attributes wall time to
// phases for one-shot benchmarks (internal/trace); this package is the
// live, exportable counterpart a service needs (the operational-visibility
// lesson of SHArP-scale collective deployments): one namespace, scraped at
// runtime, with identical counter semantics whether the reader is a
// Prometheus scrape, a STATS frame, or a BENCH_*.json artifact.
//
// Design constraints, in order:
//
//  1. Hot-path cost. Add/Inc/Set/Observe are single atomic operations on
//     pre-registered instruments — no map lookups, no locks, no
//     allocations (metrics_test.go pins 0 allocs/op). The registry mutex
//     is taken only at registration and snapshot time.
//  2. Dependency-free. Standard library only; instruments are plain
//     structs so internal packages can depend on this one without
//     dragging in anything else (the gateway's key-blindness dependency
//     test keeps holding).
//  3. Nil-safety. A nil *Registry returns nil instruments and every
//     instrument method is a no-op on a nil receiver, so call sites wire
//     metrics unconditionally and pay one predictable branch when the
//     operator left telemetry off.
//
// Existing stats that already live elsewhere (trace breakdowns,
// mempool/prefetcher counters, gateway round totals) publish through
// RegisterSource: a callback run at snapshot time that emits samples into
// the same namespace instead of double-counting into new instruments.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is the exposition type of a sample or instrument.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
	// KindUntyped marks source-emitted samples with no declared type.
	KindUntyped
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Labels are constant key/value pairs attached at registration time.
// Per-observation ("dynamic") labels are deliberately unsupported: they
// would force a map lookup onto the hot path. Register one instrument per
// label combination instead.
type Labels map[string]string

// Counter is a monotonically increasing uint64.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; 0 on a nil receiver.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable int64 (worker-pool occupancy, active rounds).
type Gauge struct{ v atomic.Int64 }

// Set stores the gauge value. No-op on a nil receiver.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value; 0 on a nil receiver.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram counts observations into fixed buckets chosen at registration.
// Buckets are upper bounds in ascending order; an implicit +Inf bucket
// catches the tail. Observe is lock-free: one linear scan over a handful
// of bounds (cache-resident, branch-predictable) plus three atomic adds.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; [i] counts v <= bounds[i]
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		s := math.Float64frombits(old) + v
		if h.sumBits.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// Count returns the total number of observations; 0 on a nil receiver.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values; 0 on a nil receiver.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// DurationBuckets is a general-purpose latency ladder in seconds,
// 10 µs – 10 s in half-decade steps — wide enough for both a 16 B
// allreduce and a straggling gateway round.
var DurationBuckets = []float64{
	10e-6, 30e-6, 100e-6, 300e-6, 1e-3, 3e-3, 10e-3, 30e-3, 100e-3, 300e-3, 1, 3, 10,
}

// Sample is one exported time-series value, as produced by Gather.
type Sample struct {
	Name   string
	Labels Labels
	Kind   Kind
	// Value carries the counter/gauge/untyped reading.
	Value float64
	// Histogram-only fields; Buckets[i] is the non-cumulative count of
	// observations <= Bounds[i], with the final entry the +Inf bucket.
	Bounds  []float64
	Buckets []uint64
	Count   uint64
	Sum     float64
}

// key orders and deduplicates samples: name plus rendered labels.
func (s *Sample) key() string { return s.Name + "\x00" + renderLabels(s.Labels) }

// Source is a snapshot-time callback that publishes externally owned
// stats into the registry's namespace. It must emit quickly and must not
// call back into the registry's registration methods.
type Source func(emit func(Sample))

// Registry holds the registered instruments and sources. The zero value
// is not usable; call New. A nil *Registry is a valid "telemetry off"
// registry: registration methods return nil instruments.
type Registry struct {
	mu      sync.Mutex
	order   []*metric // registration order; Gather sorts anyway
	byKey   map[string]*metric
	sources []Source
}

type metric struct {
	name   string
	kind   Kind
	labels Labels
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{byKey: make(map[string]*metric)}
}

// register interns (name, labels, kind); re-registration of the same
// name+labels returns the existing instrument so independent subsystems
// (e.g. several gateway clients in one process) share one counter.
// The instrument itself is allocated here, while r.mu is held, so two
// goroutines racing to register the same series always observe the same
// fully-built instrument (callers only read the field after return).
// Registering the same series under a different kind is a programming
// error and panics — silently exporting one series under two types would
// corrupt every downstream consumer.
func (r *Registry) register(name string, kind Kind, labels Labels, bounds []float64) *metric {
	name = SanitizeName(name)
	key := name + "\x00" + renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byKey[key]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("metrics: %s registered as both %s and %s", name, m.kind, kind))
		}
		return m
	}
	m := &metric{name: name, kind: kind, labels: copyLabels(labels)}
	switch kind {
	case KindCounter:
		m.c = &Counter{}
	case KindGauge:
		m.g = &Gauge{}
	case KindHistogram:
		b := make([]float64, len(bounds))
		copy(b, bounds)
		m.h = &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
	}
	r.byKey[key] = m
	r.order = append(r.order, m)
	return m
}

// Counter registers (or retrieves) a counter. Nil-registry safe.
func (r *Registry) Counter(name string, labels Labels) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, KindCounter, labels, nil).c
}

// Gauge registers (or retrieves) a gauge. Nil-registry safe.
func (r *Registry) Gauge(name string, labels Labels) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, KindGauge, labels, nil).g
}

// Histogram registers (or retrieves) a histogram over the given bucket
// upper bounds (ascending; an +Inf bucket is implicit). Nil-registry
// safe. Re-registration keeps the original bounds.
func (r *Registry) Histogram(name string, labels Labels, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: %s bucket bounds not ascending at %d", name, i))
		}
	}
	return r.register(name, KindHistogram, labels, bounds).h
}

// RegisterSource adds a snapshot-time publisher. Nil-registry safe.
func (r *Registry) RegisterSource(s Source) {
	if r == nil || s == nil {
		return
	}
	r.mu.Lock()
	r.sources = append(r.sources, s)
	r.mu.Unlock()
}

// Gather snapshots every instrument and source into a sorted, isolated
// sample set: the returned slice shares no memory with live instruments,
// so it stays stable while recording continues. Nil-registry safe
// (returns nil).
func (r *Registry) Gather() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ms := make([]*metric, len(r.order))
	copy(ms, r.order)
	srcs := make([]Source, len(r.sources))
	copy(srcs, r.sources)
	r.mu.Unlock()

	samples := make([]Sample, 0, len(ms))
	for _, m := range ms {
		s := Sample{Name: m.name, Labels: copyLabels(m.labels), Kind: m.kind}
		switch m.kind {
		case KindCounter:
			s.Value = float64(m.c.Value())
		case KindGauge:
			s.Value = float64(m.g.Value())
		case KindHistogram:
			s.Bounds = append([]float64(nil), m.h.bounds...)
			s.Buckets = make([]uint64, len(m.h.buckets))
			for i := range m.h.buckets {
				s.Buckets[i] = m.h.buckets[i].Load()
			}
			// Read count after buckets: count is incremented after the
			// bucket on the observe path, so this order can undercount but
			// never report a count with no bucket to hold it.
			s.Count = m.h.Count()
			s.Sum = m.h.Sum()
		}
		samples = append(samples, s)
	}
	for _, src := range srcs {
		src(func(s Sample) {
			s.Name = SanitizeName(s.Name)
			s.Labels = copyLabels(s.Labels)
			samples = append(samples, s)
		})
	}
	sort.SliceStable(samples, func(i, j int) bool { return samples[i].key() < samples[j].key() })
	return samples
}

// Map flattens a snapshot into "name{labels}" → value: counters and
// gauges map to their reading, histograms to _count and _sum entries.
// The flat form is what STATS-style dumps and BENCH_*.json embed.
func (r *Registry) Map() map[string]float64 {
	samples := r.Gather()
	if samples == nil {
		return nil
	}
	m := make(map[string]float64, len(samples))
	for _, s := range samples {
		name := s.Name
		if ls := renderLabels(s.Labels); ls != "" {
			name += "{" + ls + "}"
		}
		if s.Kind == KindHistogram {
			m[name+"_count"] = float64(s.Count)
			m[name+"_sum"] = s.Sum
			continue
		}
		m[name] = s.Value
	}
	return m
}

// SanitizeName maps an arbitrary string onto the Prometheus metric-name
// charset [a-zA-Z_:][a-zA-Z0-9_:]*, replacing every invalid rune with
// '_'. Idempotent; cheap for already-valid names.
func SanitizeName(name string) string {
	if name == "" {
		return "_"
	}
	valid := func(i int, r rune) bool {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_' || r == ':' {
			return true
		}
		return i > 0 && r >= '0' && r <= '9'
	}
	ok := true
	for i, r := range name {
		if !valid(i, r) {
			ok = false
			break
		}
	}
	if ok {
		return name
	}
	var sb strings.Builder
	sb.Grow(len(name))
	for i, r := range name {
		if valid(i, r) {
			sb.WriteRune(r)
		} else {
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// SanitizeLabelName maps an arbitrary string onto the Prometheus label-name
// charset [a-zA-Z_][a-zA-Z0-9_]* — like SanitizeName but without ':', which
// is legal in metric names only. Replaces every invalid rune with '_'.
func SanitizeLabelName(name string) string {
	return strings.ReplaceAll(SanitizeName(name), ":", "_")
}

// renderLabels serializes labels as k1="v1",k2="v2" with keys sorted and
// values escaped; "" for empty. Used for interning keys and exposition.
func renderLabels(l Labels) string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(SanitizeLabelName(k))
		sb.WriteString(`="`)
		sb.WriteString(EscapeLabelValue(l[k]))
		sb.WriteByte('"')
	}
	return sb.String()
}

// EscapeLabelValue escapes a label value for the Prometheus text format:
// backslash, double quote, and newline become \\, \", and \n.
func EscapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	sb.Grow(len(v) + 8)
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

func copyLabels(l Labels) Labels {
	if len(l) == 0 {
		return nil
	}
	c := make(Labels, len(l))
	for k, v := range l {
		c[k] = v
	}
	return c
}
