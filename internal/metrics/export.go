package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
)

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format (version 0.0.4): one # TYPE line per metric family, histograms
// expanded into cumulative _bucket series plus _sum and _count. Samples
// must be sorted by name, as Gather returns them.
func WritePrometheus(w io.Writer, samples []Sample) error {
	lastFamily := ""
	for i := range samples {
		s := &samples[i]
		if s.Name != lastFamily {
			lastFamily = s.Name
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Kind); err != nil {
				return err
			}
		}
		if s.Kind == KindHistogram {
			if err := writePromHistogram(w, s); err != nil {
				return err
			}
			continue
		}
		if err := writePromLine(w, s.Name, renderLabels(s.Labels), s.Value); err != nil {
			return err
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, s *Sample) error {
	base := renderLabels(s.Labels)
	cum := uint64(0)
	for i, n := range s.Buckets {
		cum += n
		le := "+Inf"
		if i < len(s.Bounds) {
			le = formatFloat(s.Bounds[i])
		}
		ls := `le="` + le + `"`
		if base != "" {
			ls = base + "," + ls
		}
		if err := writePromLine(w, s.Name+"_bucket", ls, float64(cum)); err != nil {
			return err
		}
	}
	if err := writePromLine(w, s.Name+"_sum", base, s.Sum); err != nil {
		return err
	}
	return writePromLine(w, s.Name+"_count", base, float64(s.Count))
}

func writePromLine(w io.Writer, name, labels string, v float64) error {
	if labels != "" {
		labels = "{" + labels + "}"
	}
	_, err := fmt.Fprintf(w, "%s%s %s\n", name, labels, formatFloat(v))
	return err
}

// formatFloat renders values the way Prometheus clients do: integers
// without a decimal point, everything else in shortest-roundtrip form.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// jsonSample is the stable JSON shape of one sample.
type jsonSample struct {
	Name    string            `json:"name"`
	Labels  map[string]string `json:"labels,omitempty"`
	Kind    string            `json:"kind"`
	Value   *float64          `json:"value,omitempty"`
	Bounds  []float64         `json:"bounds,omitempty"`
	Buckets []uint64          `json:"buckets,omitempty"`
	Count   *uint64           `json:"count,omitempty"`
	Sum     *float64          `json:"sum,omitempty"`
}

// WriteJSON renders a snapshot as a JSON document: {"metrics": [...]},
// sample order preserved (Gather's name order), so two snapshots of the
// same registry diff cleanly.
func WriteJSON(w io.Writer, samples []Sample) error {
	out := struct {
		Metrics []jsonSample `json:"metrics"`
	}{Metrics: make([]jsonSample, 0, len(samples))}
	for i := range samples {
		s := &samples[i]
		js := jsonSample{Name: s.Name, Labels: s.Labels, Kind: s.Kind.String()}
		if s.Kind == KindHistogram {
			js.Bounds = s.Bounds
			js.Buckets = s.Buckets
			count, sum := s.Count, s.Sum
			js.Count, js.Sum = &count, &sum
		} else {
			v := s.Value
			js.Value = &v
		}
		out.Metrics = append(out.Metrics, js)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WritePrometheus is the registry-level convenience: Gather then render.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return WritePrometheus(w, r.Gather())
}

// WriteJSON is the registry-level convenience: Gather then render.
func (r *Registry) WriteJSON(w io.Writer) error {
	return WriteJSON(w, r.Gather())
}
