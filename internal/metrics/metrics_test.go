package metrics

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestMetricsConcurrentCounts drives every instrument kind from many
// goroutines and checks the totals are exact — run under -race -cpu 1,2,4
// in CI (the metrics-race job).
func TestMetricsConcurrentCounts(t *testing.T) {
	r := New()
	c := r.Counter("hear_test_ops_total", nil)
	g := r.Gauge("hear_test_occupancy", nil)
	h := r.Histogram("hear_test_latency_seconds", nil, []float64{0.5, 1.5, 2.5})

	const goroutines, perG = 16, 999 // perG divisible by 3: j%3 fills buckets evenly
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Add(2)
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(j % 3)) // 0, 1, 2 → one per bucket
			}
		}()
	}
	wg.Wait()

	if got := c.Value(); got != 2*goroutines*perG {
		t.Errorf("counter = %d, want %d", got, 2*goroutines*perG)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	if got := h.Count(); got != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", got, goroutines*perG)
	}
	// perG observations per goroutine of mean 1 → sum = goroutines*perG.
	if got := h.Sum(); math.Abs(got-float64(goroutines*perG)) > 1e-6 {
		t.Errorf("histogram sum = %g, want %d", got, goroutines*perG)
	}
	var snap *Sample
	for _, s := range r.Gather() {
		if s.Name == "hear_test_latency_seconds" {
			s := s
			snap = &s
		}
	}
	if snap == nil {
		t.Fatal("histogram missing from snapshot")
	}
	third := uint64(goroutines * perG / 3)
	for i, n := range snap.Buckets[:3] {
		if n != third {
			t.Errorf("bucket %d = %d, want %d", i, n, third)
		}
	}
	if snap.Buckets[3] != 0 {
		t.Errorf("+Inf bucket = %d, want 0", snap.Buckets[3])
	}

	// Concurrent registration of the same series: every goroutine must get
	// the same instrument (the instrument is built under the registry lock),
	// so no increments are lost to a racing duplicate.
	r2 := New()
	var wg2 sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			for j := 0; j < perG; j++ {
				r2.Counter("hear_test_shared_total", nil).Inc()
				r2.Gauge("hear_test_shared_gauge", nil).Add(1)
				r2.Histogram("hear_test_shared_seconds", nil, []float64{1}).Observe(0.5)
			}
		}()
	}
	wg2.Wait()
	if got := r2.Counter("hear_test_shared_total", nil).Value(); got != goroutines*perG {
		t.Errorf("concurrently registered counter = %d, want %d", got, goroutines*perG)
	}
	if got := r2.Gauge("hear_test_shared_gauge", nil).Value(); got != goroutines*perG {
		t.Errorf("concurrently registered gauge = %d, want %d", got, goroutines*perG)
	}
	if got := r2.Histogram("hear_test_shared_seconds", nil, []float64{1}).Count(); got != goroutines*perG {
		t.Errorf("concurrently registered histogram count = %d, want %d", got, goroutines*perG)
	}
}

// TestSnapshotIsolation pins that Gather's samples are copies: later
// recording must not mutate an already-taken snapshot.
func TestSnapshotIsolation(t *testing.T) {
	r := New()
	c := r.Counter("c_total", nil)
	h := r.Histogram("h", nil, []float64{1})
	c.Add(5)
	h.Observe(0.5)

	snap := r.Gather()
	c.Add(100)
	h.Observe(0.5)
	h.Observe(10)

	for _, s := range snap {
		switch s.Name {
		case "c_total":
			if s.Value != 5 {
				t.Errorf("snapshot counter = %g, want 5", s.Value)
			}
		case "h":
			if s.Count != 1 || s.Buckets[0] != 1 || s.Buckets[1] != 0 {
				t.Errorf("snapshot histogram mutated: %+v", s)
			}
		}
	}
}

// TestReregistrationShares pins interning: the same (name, labels) yields
// the same instrument, and a kind clash panics instead of corrupting the
// export.
func TestReregistrationShares(t *testing.T) {
	r := New()
	a := r.Counter("shared_total", Labels{"path": "sync"})
	b := r.Counter("shared_total", Labels{"path": "sync"})
	if a != b {
		t.Error("same name+labels returned distinct counters")
	}
	other := r.Counter("shared_total", Labels{"path": "inc"})
	if a == other {
		t.Error("distinct labels returned the same counter")
	}
	a.Add(1)
	b.Add(1)
	if a.Value() != 2 {
		t.Errorf("shared counter = %d, want 2", a.Value())
	}
	defer func() {
		if recover() == nil {
			t.Error("kind clash did not panic")
		}
	}()
	r.Gauge("shared_total", Labels{"path": "sync"})
}

func TestNilRegistryAndInstruments(t *testing.T) {
	var r *Registry
	c := r.Counter("x", nil)
	g := r.Gauge("y", nil)
	h := r.Histogram("z", nil, []float64{1})
	c.Inc()
	c.Add(3)
	g.Set(7)
	g.Add(-2)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments accumulated")
	}
	r.RegisterSource(func(emit func(Sample)) { emit(Sample{Name: "s"}) })
	if r.Gather() != nil || r.Map() != nil {
		t.Error("nil registry gathered samples")
	}
}

func TestPrometheusEscaping(t *testing.T) {
	r := New()
	// A name with invalid runes sanitizes; a label value with the three
	// escapable characters must round-trip per the text format.
	r.Counter("bad.name-with spaces", Labels{"msg": "a\\b\"c\nd"}).Add(1)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "# TYPE bad_name_with_spaces counter") {
		t.Errorf("name not sanitized:\n%s", out)
	}
	if !strings.Contains(out, `msg="a\\b\"c\nd"`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
	if strings.Contains(out, "\nd\"") {
		t.Errorf("raw newline leaked into exposition:\n%s", out)
	}
}

func TestPrometheusHistogramCumulative(t *testing.T) {
	r := New()
	h := r.Histogram("lat", Labels{"op": "enc"}, []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(99)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE lat histogram",
		`lat_bucket{op="enc",le="1"} 1`,
		`lat_bucket{op="enc",le="2"} 2`,
		`lat_bucket{op="enc",le="+Inf"} 3`,
		`lat_sum{op="enc"} 101`,
		`lat_count{op="enc"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestSourcePublishesIntoNamespace(t *testing.T) {
	r := New()
	r.Counter("own_total", nil).Add(2)
	r.RegisterSource(func(emit func(Sample)) {
		emit(Sample{Name: "ext total", Kind: KindCounter, Value: 9})
		emit(Sample{Name: "a_first", Kind: KindGauge, Value: 1})
	})
	samples := r.Gather()
	names := make([]string, len(samples))
	for i, s := range samples {
		names[i] = s.Name
	}
	// Sorted namespace: source samples interleave with registered ones.
	want := []string{"a_first", "ext_total", "own_total"}
	if len(names) != len(want) {
		t.Fatalf("names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
	m := r.Map()
	if m["ext_total"] != 9 || m["own_total"] != 2 {
		t.Errorf("Map = %v", m)
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	r := New()
	r.Counter("c_total", Labels{"k": "v"}).Add(4)
	r.Histogram("h", nil, []float64{1}).Observe(0.25)
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []struct {
			Name    string            `json:"name"`
			Labels  map[string]string `json:"labels"`
			Kind    string            `json:"kind"`
			Value   *float64          `json:"value"`
			Buckets []uint64          `json:"buckets"`
			Count   *uint64           `json:"count"`
			Sum     *float64          `json:"sum"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if len(doc.Metrics) != 2 {
		t.Fatalf("metrics = %+v", doc.Metrics)
	}
	if doc.Metrics[0].Name != "c_total" || *doc.Metrics[0].Value != 4 || doc.Metrics[0].Labels["k"] != "v" {
		t.Errorf("counter sample = %+v", doc.Metrics[0])
	}
	if doc.Metrics[1].Name != "h" || *doc.Metrics[1].Count != 1 || *doc.Metrics[1].Sum != 0.25 {
		t.Errorf("histogram sample = %+v", doc.Metrics[1])
	}
}

func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"ok_name:x9":  "ok_name:x9",
		"9leading":    "_leading",
		"with.dots":   "with_dots",
		"with spaces": "with_spaces",
		"":            "_",
	}
	for in, want := range cases {
		if got := SanitizeName(in); got != want {
			t.Errorf("SanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestSanitizeLabelName pins that label keys reject ':' — legal in metric
// names but not in Prometheus label names — so rendered exposition stays
// parseable by scrapers.
func TestSanitizeLabelName(t *testing.T) {
	cases := map[string]string{
		"ok_name:x9": "ok_name_x9",
		"plain_key":  "plain_key",
		"9leading":   "_leading",
		"with.dots":  "with_dots",
	}
	for in, want := range cases {
		if got := SanitizeLabelName(in); got != want {
			t.Errorf("SanitizeLabelName(%q) = %q, want %q", in, got, want)
		}
	}
	r := New()
	r.Counter("colon_label_total", Labels{"name:space": "v"}).Add(1)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `name_space="v"`) {
		t.Errorf("label key with ':' not sanitized:\n%s", sb.String())
	}
}

// TestHotPathAllocFree pins the acceptance criterion directly: 0 allocs
// per op on every hot-path instrument operation.
func TestHotPathAllocFree(t *testing.T) {
	r := New()
	c := r.Counter("c_total", nil)
	g := r.Gauge("g", nil)
	h := r.Histogram("h", nil, DurationBuckets)
	if n := testing.AllocsPerRun(1000, func() { c.Add(1) }); n != 0 {
		t.Errorf("Counter.Add allocates %g/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(3) }); n != 0 {
		t.Errorf("Gauge.Set allocates %g/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.002) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %g/op", n)
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	c := New().Counter("bench_total", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := New().Histogram("bench_seconds", nil, DurationBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0042)
	}
}

func BenchmarkCounterAddParallel(b *testing.B) {
	c := New().Counter("bench_par_total", nil)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
}
