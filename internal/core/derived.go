package core

import (
	"errors"
	"fmt"

	"hear/internal/keys"
)

// This file implements the derived operations of §5.4: logical OR/AND via
// counting (with the documented O(log₂P) ciphertext growth), and the
// rank-parity add/subtract mix the paper gives as an example of combining
// supported operation modes. Min/max and arbitrary user functions are
// deliberately absent — §5.4 explains they are insecure in the network.

// ErrNotBool is returned when a logical input is not 0 or 1.
var ErrNotBool = errors.New("core: logical inputs must be 0 or 1")

// BoolCodec maps logical vectors onto the integer SUM scheme: OR and AND
// have no inverse, so they cannot be encrypted directly (§5.4); instead
// each rank contributes 0/1 and the decrypted count c ∈ [0, P] decodes as
//
//	c == 0 → OR = false, AND = false
//	c == P → OR = true,  AND = true
//	else   → OR = true,  AND = false
//
// The counter needs ⌈log₂(P+1)⌉ bits per element instead of 1 — the
// bandwidth growth the paper quantifies as O(log₂ P).
type BoolCodec struct{ P int }

// EncodeBools writes one uint32 word (0 or 1) per logical into dst.
func (b BoolCodec) EncodeBools(vals []bool, dst []byte) error {
	if len(dst) < 4*len(vals) {
		return fmt.Errorf("core: bool encode: buffer %d B < %d", len(dst), 4*len(vals))
	}
	w := intWire{size: 4}
	for j, v := range vals {
		var x uint64
		if v {
			x = 1
		}
		w.store(dst, j, x)
	}
	return nil
}

// DecodeOr decodes the aggregated counts into ORs.
func (b BoolCodec) DecodeOr(counts []byte, out []bool) error {
	if len(counts) < 4*len(out) {
		return fmt.Errorf("core: bool decode: counts buffer %d B < %d", len(counts), 4*len(out))
	}
	w := intWire{size: 4}
	for j := range out {
		c := w.load(counts, j)
		if c > uint64(b.P) {
			return fmt.Errorf("core: bool decode: count %d > P=%d", c, b.P)
		}
		out[j] = c > 0
	}
	return nil
}

// DecodeAnd decodes the aggregated counts into ANDs.
func (b BoolCodec) DecodeAnd(counts []byte, out []bool) error {
	if len(counts) < 4*len(out) {
		return fmt.Errorf("core: bool decode: counts buffer %d B < %d", len(counts), 4*len(out))
	}
	w := intWire{size: 4}
	for j := range out {
		c := w.load(counts, j)
		if c > uint64(b.P) {
			return fmt.Errorf("core: bool decode: count %d > P=%d", c, b.P)
		}
		out[j] = c == uint64(b.P)
	}
	return nil
}

// CounterBits returns the per-element ciphertext growth in bits relative
// to a 1-bit logical: ⌈log₂(P+1)⌉.
func (b BoolCodec) CounterBits() int {
	bits := 0
	for c := b.P; c > 0; c >>= 1 {
		bits++
	}
	return bits
}

// ParitySum wraps the integer SUM scheme so that even ranks add their data
// and odd ranks subtract it — §5.4's example of a user-specified function
// built from one operation type. The negation happens inside the secure
// environment before encryption; the network still only ever executes the
// additive reduce.
type ParitySum struct {
	name  string
	inner *IntSum
}

// NewParitySum builds the scheme for 32- or 64-bit integers.
func NewParitySum(widthBits int) (*ParitySum, error) {
	inner, err := NewIntSum(widthBits)
	if err != nil {
		return nil, fmt.Errorf("core: parity-sum: %w", err)
	}
	return &ParitySum{name: "parity-" + inner.Name(), inner: inner}, nil
}

func (s *ParitySum) Name() string    { return s.name }
func (s *ParitySum) PlainSize() int  { return s.inner.PlainSize() }
func (s *ParitySum) CipherSize() int { return s.inner.CipherSize() }

func (s *ParitySum) Encrypt(st *keys.RankState, plain, cipher []byte, n int) error {
	return s.EncryptAt(st, plain, cipher, n, 0)
}

func (s *ParitySum) EncryptAt(st *keys.RankState, plain, cipher []byte, n, off int) error {
	if st.Rank%2 == 0 {
		return s.inner.EncryptAt(st, plain, cipher, n, off)
	}
	// Odd rank: negate (two's complement) before encrypting.
	if err := checkSpan(s.Name(), plain, cipher, n, off, s.PlainSize(), s.CipherSize()); err != nil {
		return err
	}
	p1, scratch := getScratch(n * s.inner.width)
	defer putScratch(p1)
	w := intWire{size: s.inner.width}
	for j := 0; j < n; j++ {
		w.store(scratch, j, -w.load(plain, j))
	}
	return s.inner.EncryptAt(st, scratch, cipher, n, off)
}

func (s *ParitySum) Decrypt(st *keys.RankState, cipher, plain []byte, n int) error {
	return s.inner.Decrypt(st, cipher, plain, n)
}

func (s *ParitySum) DecryptAt(st *keys.RankState, cipher, plain []byte, n, off int) error {
	return s.inner.DecryptAt(st, cipher, plain, n, off)
}

func (s *ParitySum) Reduce(dst, src []byte, n int) { s.inner.Reduce(dst, src, n) }
