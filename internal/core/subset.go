package core

import (
	"encoding/binary"
	"fmt"
	"sort"

	"hear/internal/keys"
)

// SubsetCanceler is implemented by schemes whose telescoping noise can be
// re-derived for an arbitrary subset of ranks, enabling dropout-tolerant
// ("degraded") rounds: when ranks M = {0..P−1} \ S never contribute, the
// reduce over the survivors S carries
//
//	F(n_0) − Σ_{i∈M} noise_i            (⊙ for PROD, ⊕ for XOR)
//
// instead of the usual F(n_0). FoldMissingNoise folds Σ_{i∈M} noise_i back
// into the partial aggregate, after which the ordinary Decrypt applies
// unchanged. The per-rank noises are PRF-addressed by n_i = k_s_i + k_c, so
// this is only possible when the key policy lets one rank re-derive
// another's starting key (keys.Config.SharedGroup); FoldMissingNoise fails
// on states without that capability.
//
// The missing ranks coalesce into maximal consecutive runs [a,b], and each
// run's noise telescopes internally to F(n_a) ⊙ F(n_{b+1})⁻¹ (just F(n_a)
// when b = P−1) — so the cost is O(runs) keystreams, not O(|M|).
type SubsetCanceler interface {
	// FoldMissingNoise folds the combined noise of the given missing ranks
	// into cipher (n elements), converting a survivor-subset reduce into a
	// ciphertext the scheme's standard Decrypt can open.
	FoldMissingNoise(st *keys.RankState, cipher []byte, n int, missing []int) error
}

// missingRuns validates a missing-rank set against the communicator size
// and coalesces it into maximal consecutive [a,b] runs. A full wipeout
// (len(missing) == size) is rejected: a round with no survivors has no
// aggregate to open.
func missingRuns(st *keys.RankState, missing []int) ([][2]int, error) {
	if !st.CanDeriveRankKeys() {
		return nil, fmt.Errorf("core: subset cancellation needs shared-group keys (keys.Config.SharedGroup)")
	}
	if len(missing) == 0 {
		return nil, nil
	}
	if len(missing) >= st.Size {
		return nil, fmt.Errorf("core: %d missing ranks of %d leaves no survivors", len(missing), st.Size)
	}
	m := make([]int, len(missing))
	copy(m, missing)
	sort.Ints(m)
	if m[0] < 0 || m[len(m)-1] >= st.Size {
		return nil, fmt.Errorf("core: missing rank out of range [0,%d)", st.Size)
	}
	runs := [][2]int{{m[0], m[0]}}
	for _, r := range m[1:] {
		last := &runs[len(runs)-1]
		switch {
		case r == last[1]:
			return nil, fmt.Errorf("core: duplicate missing rank %d", r)
		case r == last[1]+1:
			last[1] = r
		default:
			runs = append(runs, [2]int{r, r})
		}
	}
	return runs, nil
}

// runNonces resolves one run's boundary stream identifiers: the positive
// term F(n_a) and, unless the run reaches rank P−1 (whose noise has no
// canceling term), the negative term F(n_{b+1}).
func runNonces(st *keys.RankState, run [2]int) (pos, neg uint64, hasNeg bool, err error) {
	if pos, err = st.RankNonce(run[0]); err != nil {
		return 0, 0, false, err
	}
	if run[1] == st.Size-1 {
		return pos, 0, false, nil
	}
	if neg, err = st.RankNonce(run[1] + 1); err != nil {
		return 0, 0, false, err
	}
	return pos, neg, true, nil
}

// FoldMissingNoise adds Σ_{i∈M} (F(n_i) − F(n_{i+1})) — the telescoped
// per-run form — into the partial sum, element-wise mod 2^width.
func (s *IntSum) FoldMissingNoise(st *keys.RankState, cipher []byte, n int, missing []int) error {
	runs, err := missingRuns(st, missing)
	if err != nil {
		return err
	}
	if err := checkLen(s.Name(), cipher, cipher, n, s.width, s.width); err != nil {
		return err
	}
	nb := n * s.width
	p1, ks := getScratch(nb)
	defer putScratch(p1)
	w := intWire{size: s.width}
	for _, run := range runs {
		pos, neg, hasNeg, err := runNonces(st, run)
		if err != nil {
			return err
		}
		st.Enc.Keystream(ks, pos, 0)
		switch s.width {
		case 8:
			for j := 0; j < n; j++ {
				o := j * 8
				binary.LittleEndian.PutUint64(cipher[o:],
					binary.LittleEndian.Uint64(cipher[o:])+binary.LittleEndian.Uint64(ks[o:]))
			}
		default:
			for j := 0; j < n; j++ {
				w.store(cipher, j, w.load(cipher, j)+w.load(ks, j))
			}
		}
		if !hasNeg {
			continue
		}
		st.Enc.Keystream(ks, neg, 0)
		switch s.width {
		case 8:
			for j := 0; j < n; j++ {
				o := j * 8
				binary.LittleEndian.PutUint64(cipher[o:],
					binary.LittleEndian.Uint64(cipher[o:])-binary.LittleEndian.Uint64(ks[o:]))
			}
		default:
			for j := 0; j < n; j++ {
				w.store(cipher, j, w.load(cipher, j)-w.load(ks, j))
			}
		}
	}
	return nil
}

// FoldMissingNoise multiplies Π_{i∈M} g^{F(n_i) − F(n_{i+1})} — per run,
// g^{F(n_a)} · g^{−F(n_{b+1})} — into the partial product. Powers of g are
// units of Z_{2^width}, so the fold is a bijection and lossless.
func (s *IntProd) FoldMissingNoise(st *keys.RankState, cipher []byte, n int, missing []int) error {
	runs, err := missingRuns(st, missing)
	if err != nil {
		return err
	}
	if err := checkLen(s.Name(), cipher, cipher, n, s.width, s.width); err != nil {
		return err
	}
	nb := n * s.width
	p1, ks := getScratch(nb)
	defer putScratch(p1)
	for _, run := range runs {
		pos, neg, hasNeg, err := runNonces(st, run)
		if err != nil {
			return err
		}
		st.Enc.Keystream(ks, pos, 0)
		for j := 0; j < n; j++ {
			s.store(cipher, j, s.r.Mul(s.load(cipher, j), s.r.PowG(s.noiseExp(ks, j))))
		}
		if !hasNeg {
			continue
		}
		st.Enc.Keystream(ks, neg, 0)
		for j := 0; j < n; j++ {
			s.store(cipher, j, s.r.Mul(s.load(cipher, j), s.r.InvPowG(s.noiseExp(ks, j))))
		}
	}
	return nil
}

// FoldMissingNoise XORs ⊕_{i∈M} (F(n_i) ⊕ F(n_{i+1})) — per run, F(n_a) ⊕
// F(n_{b+1}) — into the partial aggregate; XOR is self-inverse so the
// positive and negative terms are the same operation.
func (s *IntXor) FoldMissingNoise(st *keys.RankState, cipher []byte, n int, missing []int) error {
	runs, err := missingRuns(st, missing)
	if err != nil {
		return err
	}
	if err := checkLen(s.Name(), cipher, cipher, n, s.width, s.width); err != nil {
		return err
	}
	nb := n * s.width
	p1, ks := getScratch(nb)
	defer putScratch(p1)
	for _, run := range runs {
		pos, neg, hasNeg, err := runNonces(st, run)
		if err != nil {
			return err
		}
		st.Enc.Keystream(ks, pos, 0)
		for i := 0; i < nb; i++ {
			cipher[i] ^= ks[i]
		}
		if !hasNeg {
			continue
		}
		st.Enc.Keystream(ks, neg, 0)
		for i := 0; i < nb; i++ {
			cipher[i] ^= ks[i]
		}
	}
	return nil
}
