package core

import "hear/internal/hfp"

// This file collects the NoiseProfiler implementations of every scheme
// whose bulk noise reads are statically describable. Keeping them in one
// place makes the seam auditable: a scheme's profile must list exactly the
// Keystream calls its EncryptAt/DecryptAt perform, with the same
// bytes-per-element stride, or the prefetcher would serve bytes from the
// wrong stream position. The offset cross-check tests pin each profile
// against the scheme's observed reads.

// The canceling integer schemes (eqs. 1–3) all read width bytes per
// element: self + next streams on encrypt (next dropped for the last rank
// by the prefetcher, mirroring the cancel flag), root stream on decrypt.

func (s *IntSum) NoiseProfile() NoiseProfile {
	return NoiseProfile{
		BytesPerElem: s.width,
		Encrypt:      []NoiseClass{NoiseSelf, NoiseNext},
		Decrypt:      []NoiseClass{NoiseRoot},
	}
}

func (s *IntProd) NoiseProfile() NoiseProfile {
	return NoiseProfile{
		BytesPerElem: s.width,
		Encrypt:      []NoiseClass{NoiseSelf, NoiseNext},
		Decrypt:      []NoiseClass{NoiseRoot},
	}
}

func (s *IntXor) NoiseProfile() NoiseProfile {
	return NoiseProfile{
		BytesPerElem: s.width,
		Encrypt:      []NoiseClass{NoiseSelf, NoiseNext},
		Decrypt:      []NoiseClass{NoiseRoot},
	}
}

// FloatSum (v1, eq. 7) draws its noise cells from the collective-key-only
// stream on both sides, hfp.NoiseBytes per element.
func (s *FloatSum) NoiseProfile() NoiseProfile {
	return NoiseProfile{
		BytesPerElem: hfp.NoiseBytes,
		Encrypt:      []NoiseClass{NoiseCollective},
		Decrypt:      []NoiseClass{NoiseCollective},
	}
}

// FloatProd (eq. 6) is the canceling shape with hfp.NoiseBytes cells.
func (s *FloatProd) NoiseProfile() NoiseProfile {
	return NoiseProfile{
		BytesPerElem: hfp.NoiseBytes,
		Encrypt:      []NoiseClass{NoiseSelf, NoiseNext},
		Decrypt:      []NoiseClass{NoiseRoot},
	}
}

// The wrapper schemes consume noise only through their inner scheme, so
// they inherit its profile verbatim.

func (s *FloatSumV2) NoiseProfile() NoiseProfile { return s.prod.NoiseProfile() }

func (s *FixedSum) NoiseProfile() NoiseProfile { return s.inner.NoiseProfile() }

func (s *FixedProd) NoiseProfile() NoiseProfile { return s.inner.NoiseProfile() }

func (s *ParitySum) NoiseProfile() NoiseProfile { return s.inner.NoiseProfile() }
