package core

import (
	"math/rand"
	"testing"

	"hear/internal/keys"
)

func genSharedStates(t testing.TB, p int) []*keys.RankState {
	t.Helper()
	states, err := keys.Generate(p, keys.Config{Rand: &seqReader{next: 9}, SharedGroup: true})
	if err != nil {
		t.Fatal(err)
	}
	return states
}

// subsetScheme pairs a SubsetCanceler scheme with its plaintext fold for
// the degraded-round bit-identity checks.
type subsetScheme struct {
	name   string
	scheme interface {
		Scheme
		SubsetCanceler
	}
	fold func(a, b uint64) uint64
	unit uint64
}

func subsetSchemes(t *testing.T) []subsetScheme {
	t.Helper()
	sum, err := NewIntSum(64)
	if err != nil {
		t.Fatal(err)
	}
	prod, err := NewIntProd(64)
	if err != nil {
		t.Fatal(err)
	}
	xor, err := NewIntXor(64)
	if err != nil {
		t.Fatal(err)
	}
	return []subsetScheme{
		{"sum", sum, func(a, b uint64) uint64 { return a + b }, 0},
		{"prod", prod, func(a, b uint64) uint64 { return a * b }, 1},
		{"xor", xor, func(a, b uint64) uint64 { return a ^ b }, 0},
	}
}

// TestSubsetCancellation: a reduce over any survivor subset, after
// FoldMissingNoise, decrypts to exactly the plaintext fold over that
// subset — the core contract degraded gateway rounds stand on.
func TestSubsetCancellation(t *testing.T) {
	const n = 64
	for _, p := range []int{2, 4, 7} {
		states := genSharedStates(t, p)
		for _, s := range states {
			s.Advance()
		}
		missingSets := [][]int{{0}, {p - 1}}
		if p >= 4 {
			missingSets = append(missingSets, []int{1, 2}, []int{0, 1, p - 1}, []int{p - 2, p - 1})
		}
		for _, tc := range subsetSchemes(t) {
			rng := rand.New(rand.NewSource(int64(p) * 7919))
			w := intWire{size: 8}
			plains := make([][]byte, p)
			ciphers := make([][]byte, p)
			for i := range plains {
				plains[i] = make([]byte, n*8)
				for j := 0; j < n; j++ {
					w.store(plains[i], j, rng.Uint64())
				}
				ciphers[i] = make([]byte, n*8)
				if err := tc.scheme.Encrypt(states[i], plains[i], ciphers[i], n); err != nil {
					t.Fatalf("p=%d %s: rank %d encrypt: %v", p, tc.name, i, err)
				}
			}
			for _, missing := range missingSets {
				gone := make(map[int]bool)
				for _, m := range missing {
					gone[m] = true
				}
				agg := make([]byte, n*8)
				want := make([]byte, n*8)
				for j := 0; j < n; j++ {
					w.store(want, j, tc.unit)
				}
				first := true
				var opener *keys.RankState
				for i := 0; i < p; i++ {
					if gone[i] {
						continue
					}
					if first {
						copy(agg, ciphers[i])
						first = false
					} else {
						tc.scheme.Reduce(agg, ciphers[i], n)
					}
					opener = states[i]
					for j := 0; j < n; j++ {
						w.store(want, j, tc.fold(w.load(want, j), w.load(plains[i], j)))
					}
				}
				if err := tc.scheme.FoldMissingNoise(opener, agg, n, missing); err != nil {
					t.Fatalf("p=%d %s missing=%v: fold: %v", p, tc.name, missing, err)
				}
				got := make([]byte, n*8)
				if err := tc.scheme.Decrypt(opener, agg, got, n); err != nil {
					t.Fatalf("p=%d %s missing=%v: decrypt: %v", p, tc.name, missing, err)
				}
				for j := 0; j < n; j++ {
					if w.load(got, j) != w.load(want, j) {
						t.Fatalf("p=%d %s missing=%v: elem %d = %#x, want %#x",
							p, tc.name, missing, j, w.load(got, j), w.load(want, j))
					}
				}
			}
		}
	}
}

// TestSubsetCancellationRequiresSharedGroup: states generated under the
// default independent-key policy must refuse, not mis-derive.
func TestSubsetCancellationRequiresSharedGroup(t *testing.T) {
	states := genStates(t, 4)
	if states[0].CanDeriveRankKeys() {
		t.Fatal("independent-key state claims rank-key derivation")
	}
	sum, err := NewIntSum(64)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8*8)
	if err := sum.FoldMissingNoise(states[0], buf, 8, []int{1}); err == nil {
		t.Fatal("FoldMissingNoise succeeded without shared-group keys")
	}
}

// TestSubsetCancellationRejectsBadSets: wipeouts, duplicates, and
// out-of-range ranks are errors.
func TestSubsetCancellationRejectsBadSets(t *testing.T) {
	states := genSharedStates(t, 4)
	sum, err := NewIntSum(64)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8*8)
	for _, missing := range [][]int{
		{0, 1, 2, 3}, // no survivors
		{1, 1},       // duplicate
		{-1},         // out of range
		{4},          // out of range
	} {
		if err := sum.FoldMissingNoise(states[0], buf, 8, missing); err == nil {
			t.Fatalf("FoldMissingNoise accepted missing=%v", missing)
		}
	}
}
