package core

import (
	"sync"
	"sync/atomic"

	"hear/internal/prf"
)

// This file carries the shared machinery of the fused kernels: scheme
// encrypt/decrypt loops that consume PRF keystream 64 bytes at a time
// (prf.BlockSource) and combine each block with the data in place, instead
// of materializing a full keystream plane into pooled scratch and making a
// second combining pass. The fused loop touches each plaintext and
// ciphertext byte exactly once and keeps the keystream in an L1-resident
// staging buffer, so for working sets larger than cache the memory traffic
// drops from ~4 streams (plain, cipher, keystream write, keystream read)
// to 2 — the fusion argument of HEAAN Demystified applied to HEAR's
// CTR-keystream cipher. The two-pass kernels remain as the reference
// implementation (…TwoPassAt methods) and the bit-identity tests assert
// the fused path produces exactly the same bytes.
//
// Buffer aliasing: like the two-pass kernels, the fused loops read
// plain[done+o] and write cipher[done+o] strictly in order and never
// revisit a byte, so in-place operation (cipher aliasing plain) is safe —
// each element is loaded before its ciphertext is stored.

// fusionOff gates the fused kernels; the zero value means fusion is ON.
// It exists so benchmarks (hearbench roofline) and bisection can A/B the
// fused path against the two-pass reference at runtime.
var fusionOff atomic.Bool

// SetFusion enables (true) or disables (false) the fused single-pass
// kernels process-wide and reports the previous setting. Fusion is enabled
// by default; disabling routes every scheme through the two-pass reference
// path. Both paths are bit-identical, so toggling is safe at any point.
func SetFusion(on bool) bool { return !fusionOff.Swap(!on) }

// FusionEnabled reports whether the fused kernels are active.
func FusionEnabled() bool { return !fusionOff.Load() }

// noiseStream adapts one PRF noise stream for a fused kernel, splitting
// the requested span into (a) a prefix already materialized in the noise
// prefetcher's cache — detected through prf.SpanCache and copied once into
// pooled scratch via the wrapper's hit-accounted Keystream path — and (b)
// a tail generated block-by-block on the live backend, bypassing the
// wrapper. Prefetch hit uses the plane; miss uses fusion.
//
// Streams are pooled (openNoise/close) rather than stack-allocated: the
// BlockSource hands interior pointers of its staging buffer to interface
// method calls, so escape analysis heap-allocates it — pooling makes the
// hot path allocation-free anyway, the same trade getScratch makes for
// keystream planes.
type noiseStream struct {
	pfx  []byte  // cached prefix (whole blocks), served before the tail
	tok  *[]byte // scratch token owning pfx
	at   int     // read position in pfx
	tail bool    // bs holds the generated tail
	bs   prf.BlockSource
}

var noiseStreamPool = sync.Pool{New: func() any { return new(noiseStream) }}

// openNoise takes a pooled stream positioned at byte offset off of stream
// nonce, sized to serve nb bytes in BlockBytes steps. Call close when done
// to return it (and any prefix scratch) to the pool.
func openNoise(enc prf.PRF, nonce, off uint64, nb int) *noiseStream {
	ns := noiseStreamPool.Get().(*noiseStream)
	ns.open(enc, nonce, off, nb)
	return ns
}

func (ns *noiseStream) open(enc prf.PRF, nonce, off uint64, nb int) {
	if ns.tok != nil { // re-open: release the previous prefix scratch
		putScratch(ns.tok)
	}
	ns.pfx = nil
	ns.tok = nil
	ns.at = 0
	ns.tail = false
	if sc, ok := enc.(prf.SpanCache); ok {
		k := sc.CachedSpan(nonce, off, nb)
		k &^= prf.BlockBytes - 1 // serve whole blocks from the prefix
		if k > 0 {
			ns.tok, ns.pfx = getScratch(k)
			sc.Keystream(ns.pfx, nonce, off) // cache-hit copy path
			off += uint64(k)
			nb -= k
		}
		enc = sc.Generator()
	}
	if nb > 0 || ns.pfx == nil {
		ns.bs.Init(enc, nonce, off, nb)
		ns.tail = true
	}
}

// next returns the next BlockBytes noise bytes, valid until the following
// next call.
func (ns *noiseStream) next() *[prf.BlockBytes]byte {
	if ns.at < len(ns.pfx) {
		p := (*[prf.BlockBytes]byte)(ns.pfx[ns.at:])
		ns.at += prf.BlockBytes
		return p
	}
	return ns.bs.Next()
}

// close returns the cached-prefix scratch, if any, and the stream itself
// to their pools. The stream must not be used after close.
func (ns *noiseStream) close() {
	if ns.tok != nil {
		putScratch(ns.tok)
		ns.tok = nil
		ns.pfx = nil
	}
	noiseStreamPool.Put(ns)
}

// blockLen clips one streaming block to the remaining span: the fused
// loops advance done in BlockBytes steps and process min(BlockBytes,
// nb−done) bytes of the final partial block. Every per-element stride (1,
// 2, 4, 8, 16 bytes) divides BlockBytes, so elements never straddle a
// block boundary.
func blockLen(nb, done int) int {
	if m := nb - done; m < prf.BlockBytes {
		return m
	}
	return prf.BlockBytes
}
