package core

import (
	"encoding/binary"
	"fmt"

	"hear/internal/core/fold"
	"hear/internal/keys"
	"hear/internal/prf"
)

// IntXor implements the logical/binary XOR scheme of §5.1.3 (eq. 3):
//
//	c_i[j] = x_i[j] ⊕ F(k_s_i+k_c+j)                          i = P−1
//	c_i[j] = x_i[j] ⊕ F(k_s_i+k_c+j) ⊕ F(k_s_{i+1}+k_c+j)     otherwise
//
// XOR is its own inverse, so the telescoping and the decryption are both
// plain XORs — the scheme is byte-oriented and equivalent to AES-CTR
// stream encryption with structured counters (IND-CPA per the paper's
// citation of the AES-CTR argument). MPI_LXOR on 0/1-valued logicals and
// MPI_BXOR on raw words both ride this scheme; the width parameter only
// fixes the wire element size.
type IntXor struct {
	width int
	name  string
}

// NewIntXor returns the XOR scheme for 8-, 16-, 32-, or 64-bit words
// (XOR is width-agnostic; the width only fixes the wire element size).
func NewIntXor(widthBits int) (*IntXor, error) {
	if err := checkWidth("core: int-xor", widthBits); err != nil {
		return nil, err
	}
	return &IntXor{width: widthBits / 8, name: fmt.Sprintf("int%d-xor", widthBits)}, nil
}

func (s *IntXor) Name() string { return s.name }

func (s *IntXor) PlainSize() int  { return s.width }
func (s *IntXor) CipherSize() int { return s.width }

func (s *IntXor) Encrypt(st *keys.RankState, plain, cipher []byte, n int) error {
	return s.EncryptAt(st, plain, cipher, n, 0)
}

func (s *IntXor) EncryptAt(st *keys.RankState, plain, cipher []byte, n, off int) error {
	if err := checkSpan(s.Name(), plain, cipher, n, off, s.width, s.width); err != nil {
		return err
	}
	if !FusionEnabled() {
		return s.encryptTwoPassAt(st, plain, cipher, n, off)
	}
	nb := n * s.width
	byteOff := uint64(off) * uint64(s.width)
	cancel := !st.IsLast()
	ns1 := openNoise(st.Enc, st.SelfNonce(), byteOff, nb)
	defer ns1.close()
	var ns2 *noiseStream
	if cancel {
		ns2 = openNoise(st.Enc, st.NextNonce(), byteOff, nb)
		defer ns2.close()
	}
	for done := 0; done < nb; done += prf.BlockBytes {
		b1 := ns1.next()
		if cancel {
			// Fold the canceling stream into the staged block first; the
			// combining loop below then runs one XOR chain either way.
			b2 := ns2.next()
			for o := 0; o < prf.BlockBytes; o += 8 {
				binary.LittleEndian.PutUint64(b1[o:],
					binary.LittleEndian.Uint64(b1[o:])^binary.LittleEndian.Uint64(b2[o:]))
			}
		}
		m := blockLen(nb, done)
		xorBlock(cipher[done:done+m], plain[done:done+m], b1)
	}
	return nil
}

// xorBlock writes dst = src ^ ks for one (possibly partial) streaming
// block: whole 8-byte words first, then the byte tail.
func xorBlock(dst, src []byte, ks *[prf.BlockBytes]byte) {
	m := len(dst)
	o := 0
	for ; o+8 <= m; o += 8 {
		binary.LittleEndian.PutUint64(dst[o:],
			binary.LittleEndian.Uint64(src[o:])^binary.LittleEndian.Uint64(ks[o:]))
	}
	for ; o < m; o++ {
		dst[o] = src[o] ^ ks[o]
	}
}

// encryptTwoPassAt is the reference kernel (full plane, second pass).
func (s *IntXor) encryptTwoPassAt(st *keys.RankState, plain, cipher []byte, n, off int) error {
	nb := n * s.width
	byteOff := uint64(off) * uint64(s.width)
	p1, ks1 := getScratch(nb)
	defer putScratch(p1)
	st.Enc.Keystream(ks1, st.SelfNonce(), byteOff)
	if st.IsLast() {
		for i := 0; i < nb; i++ {
			cipher[i] = plain[i] ^ ks1[i]
		}
		return nil
	}
	p2, ks2 := getScratch(nb)
	defer putScratch(p2)
	st.Enc.Keystream(ks2, st.NextNonce(), byteOff)
	for i := 0; i < nb; i++ {
		cipher[i] = plain[i] ^ ks1[i] ^ ks2[i]
	}
	return nil
}

func (s *IntXor) Decrypt(st *keys.RankState, cipher, plain []byte, n int) error {
	return s.DecryptAt(st, cipher, plain, n, 0)
}

func (s *IntXor) DecryptAt(st *keys.RankState, cipher, plain []byte, n, off int) error {
	if err := checkSpan(s.Name(), plain, cipher, n, off, s.width, s.width); err != nil {
		return err
	}
	if !FusionEnabled() {
		return s.decryptTwoPassAt(st, cipher, plain, n, off)
	}
	nb := n * s.width
	ns := openNoise(st.Enc, st.RootNonce(), uint64(off)*uint64(s.width), nb)
	defer ns.close()
	for done := 0; done < nb; done += prf.BlockBytes {
		b1 := ns.next()
		m := blockLen(nb, done)
		xorBlock(plain[done:done+m], cipher[done:done+m], b1)
	}
	return nil
}

// decryptTwoPassAt is the reference kernel (full plane, second pass).
func (s *IntXor) decryptTwoPassAt(st *keys.RankState, cipher, plain []byte, n, off int) error {
	nb := n * s.width
	p1, ks1 := getScratch(nb)
	defer putScratch(p1)
	st.Enc.Keystream(ks1, st.RootNonce(), uint64(off)*uint64(s.width))
	for i := 0; i < nb; i++ {
		plain[i] = cipher[i] ^ ks1[i]
	}
	return nil
}

// Reduce delegates to the shared keyless kernel (internal/core/fold).
func (s *IntXor) Reduce(dst, src []byte, n int) {
	fold.Xor(dst[:n*s.width], src[:n*s.width])
}
