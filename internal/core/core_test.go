package core

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"strings"
	"testing"

	"hear/internal/fixedpoint"
	"hear/internal/hfp"
	"hear/internal/keys"
)

// seqReader gives deterministic key material.
type seqReader struct{ next byte }

func (r *seqReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = r.next * 37
		r.next++
	}
	return len(p), nil
}

func genStates(t testing.TB, p int) []*keys.RankState {
	t.Helper()
	states, err := keys.Generate(p, keys.Config{Rand: &seqReader{next: 1}})
	if err != nil {
		t.Fatal(err)
	}
	return states
}

// runAllreduce simulates the full HEAR pipeline: every rank advances k_c,
// encrypts its plaintext, the network reduces ciphertexts in rank order,
// and every rank decrypts the aggregate. It returns each rank's decrypted
// plaintext buffer.
func runAllreduce(t testing.TB, states []*keys.RankState, schemes []Scheme, plains [][]byte, n int) [][]byte {
	t.Helper()
	p := len(states)
	cs := schemes[0].CipherSize()
	ciphers := make([][]byte, p)
	for i := 0; i < p; i++ {
		states[i].Advance()
		ciphers[i] = make([]byte, n*cs)
		if err := schemes[i].Encrypt(states[i], plains[i], ciphers[i], n); err != nil {
			t.Fatalf("rank %d encrypt: %v", i, err)
		}
	}
	agg := make([]byte, n*cs)
	copy(agg, ciphers[0])
	for i := 1; i < p; i++ {
		schemes[0].Reduce(agg, ciphers[i], n)
	}
	outs := make([][]byte, p)
	for i := 0; i < p; i++ {
		outs[i] = make([]byte, n*schemes[i].PlainSize())
		if err := schemes[i].Decrypt(states[i], agg, outs[i], n); err != nil {
			t.Fatalf("rank %d decrypt: %v", i, err)
		}
	}
	return outs
}

func loadWord(buf []byte, j, size int) uint64 {
	var v uint64
	for i := 0; i < size; i++ {
		v |= uint64(buf[j*size+i]) << (8 * uint(i))
	}
	return v
}

func storeWord(buf []byte, j, size int, v uint64) {
	for i := 0; i < size; i++ {
		buf[j*size+i] = byte(v >> (8 * uint(i)))
	}
}

func u32buf(vals []uint32) []byte {
	b := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(b[i*4:], v)
	}
	return b
}

func u64buf(vals []uint64) []byte {
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[i*8:], v)
	}
	return b
}

func f32buf(vals []float32) []byte {
	b := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(b[i*4:], math.Float32bits(v))
	}
	return b
}

func f64buf(vals []float64) []byte {
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(v))
	}
	return b
}

func TestIntSumRoundTripExact(t *testing.T) {
	for _, width := range []int{8, 16, 32, 64} {
		for _, p := range []int{1, 2, 3, 8, 17} {
			states := genStates(t, p)
			schemes := make([]Scheme, p)
			for i := range schemes {
				s, err := NewIntSum(width)
				if err != nil {
					t.Fatal(err)
				}
				schemes[i] = s
			}
			const n = 100
			rng := rand.New(rand.NewSource(int64(width*100 + p)))
			plains := make([][]byte, p)
			want := make([]uint64, n)
			for i := 0; i < p; i++ {
				vals := make([]uint64, n)
				plains[i] = make([]byte, n*width/8)
				for j := range vals {
					vals[j] = rng.Uint64()
					want[j] += vals[j] // wrapping, as the lossless scheme requires
					storeWord(plains[i], j, width/8, vals[j])
				}
			}
			outs := runAllreduce(t, states, schemes, plains, n)
			mask := ^uint64(0)
			if width < 64 {
				mask = (uint64(1) << width) - 1
			}
			for i := 0; i < p; i++ {
				for j := 0; j < n; j++ {
					got := loadWord(outs[i], j, width/8)
					if got != want[j]&mask {
						t.Fatalf("w%d p%d rank %d elem %d: got %d, want %d", width, p, i, j, got, want[j]&mask)
					}
				}
			}
		}
	}
}

func TestIntProdRoundTripExact(t *testing.T) {
	for _, width := range []int{32, 64} {
		for _, p := range []int{1, 2, 5, 9} {
			states := genStates(t, p)
			schemes := make([]Scheme, p)
			for i := range schemes {
				s, err := NewIntProd(width)
				if err != nil {
					t.Fatal(err)
				}
				schemes[i] = s
			}
			const n = 64
			rng := rand.New(rand.NewSource(int64(width + p)))
			plains := make([][]byte, p)
			want := make([]uint64, n)
			for j := range want {
				want[j] = 1
			}
			for i := 0; i < p; i++ {
				vals := make([]uint64, n)
				for j := range vals {
					vals[j] = rng.Uint64()
					if j%3 == 0 {
						vals[j] |= 1 // mix odd and even plaintexts
					}
					want[j] *= vals[j]
				}
				if width == 32 {
					v32 := make([]uint32, n)
					for j := range vals {
						v32[j] = uint32(vals[j])
					}
					plains[i] = u32buf(v32)
				} else {
					plains[i] = u64buf(vals)
				}
			}
			outs := runAllreduce(t, states, schemes, plains, n)
			for j := 0; j < n; j++ {
				var got uint64
				if width == 32 {
					got = uint64(binary.LittleEndian.Uint32(outs[0][j*4:]))
					if got != uint64(uint32(want[j])) {
						t.Fatalf("w%d p%d elem %d: got %d, want %d", width, p, j, got, uint32(want[j]))
					}
				} else {
					got = binary.LittleEndian.Uint64(outs[0][j*8:])
					if got != want[j] {
						t.Fatalf("w%d p%d elem %d: got %d, want %d", width, p, j, got, want[j])
					}
				}
			}
		}
	}
}

func TestIntXorRoundTripExact(t *testing.T) {
	for _, p := range []int{1, 2, 4, 11} {
		states := genStates(t, p)
		schemes := make([]Scheme, p)
		for i := range schemes {
			s, err := NewIntXor(64)
			if err != nil {
				t.Fatal(err)
			}
			schemes[i] = s
		}
		const n = 50
		rng := rand.New(rand.NewSource(int64(p)))
		plains := make([][]byte, p)
		want := make([]uint64, n)
		for i := 0; i < p; i++ {
			vals := make([]uint64, n)
			for j := range vals {
				vals[j] = rng.Uint64()
				want[j] ^= vals[j]
			}
			plains[i] = u64buf(vals)
		}
		outs := runAllreduce(t, states, schemes, plains, n)
		for j := 0; j < n; j++ {
			if got := binary.LittleEndian.Uint64(outs[p-1][j*8:]); got != want[j] {
				t.Fatalf("p%d elem %d: got %#x, want %#x", p, j, got, want[j])
			}
		}
	}
}

func TestNaiveIntSumMatchesCanceling(t *testing.T) {
	const p, n = 5, 40
	states := genStates(t, p)
	starting := make([]uint64, p)
	for i, s := range states {
		starting[i] = s.SelfKey
	}
	naive := make([]Scheme, p)
	for i := range naive {
		s, err := NewNaiveIntSum(64, starting)
		if err != nil {
			t.Fatal(err)
		}
		naive[i] = s
	}
	rng := rand.New(rand.NewSource(9))
	plains := make([][]byte, p)
	want := make([]uint64, n)
	for i := 0; i < p; i++ {
		vals := make([]uint64, n)
		for j := range vals {
			vals[j] = rng.Uint64()
			want[j] += vals[j]
		}
		plains[i] = u64buf(vals)
	}
	outs := runAllreduce(t, states, naive, plains, n)
	for j := 0; j < n; j++ {
		if got := binary.LittleEndian.Uint64(outs[2][j*8:]); got != want[j] {
			t.Fatalf("elem %d: got %d, want %d", j, got, want[j])
		}
	}
}

func TestFloatSumV1Accuracy(t *testing.T) {
	for _, base := range []hfp.Format{hfp.FP32, hfp.FP64} {
		for gamma := uint(0); gamma <= 2; gamma++ {
			p := 8
			states := genStates(t, p)
			schemes := make([]Scheme, p)
			for i := range schemes {
				s, err := NewFloatSum(base, gamma)
				if err != nil {
					t.Fatal(err)
				}
				schemes[i] = s
			}
			const n = 32
			rng := rand.New(rand.NewSource(int64(gamma)))
			plains := make([][]byte, p)
			want := make([]float64, n)
			for i := 0; i < p; i++ {
				vals := make([]float64, n)
				for j := range vals {
					vals[j] = (rng.Float64() + 0.1) * math.Ldexp(1, rng.Intn(8)-4)
					want[j] += vals[j]
				}
				if base.Lm > 23 {
					plains[i] = f64buf(vals)
				} else {
					v32 := make([]float32, n)
					for j := range vals {
						v32[j] = float32(vals[j])
					}
					plains[i] = f32buf(v32)
					// recompute want in float32 input precision
				}
			}
			if base.Lm <= 23 {
				for j := range want {
					want[j] = 0
					for i := 0; i < p; i++ {
						want[j] += float64(math.Float32frombits(binary.LittleEndian.Uint32(plains[i][j*4:])))
					}
				}
			}
			outs := runAllreduce(t, states, schemes, plains, n)
			f := schemes[0].(*FloatSum).Format()
			tol := float64(4*p) * math.Ldexp(1, -int(f.FracBits()))
			for j := 0; j < n; j++ {
				var got float64
				if base.Lm > 23 {
					got = math.Float64frombits(binary.LittleEndian.Uint64(outs[0][j*8:]))
				} else {
					got = float64(math.Float32frombits(binary.LittleEndian.Uint32(outs[0][j*4:])))
				}
				if math.Abs(got-want[j])/math.Abs(want[j]) > tol {
					t.Fatalf("%v γ=%d elem %d: got %g, want %g", base, gamma, j, got, want[j])
				}
			}
		}
	}
}

func TestFloatProdAccuracy(t *testing.T) {
	for _, base := range []hfp.Format{hfp.FP32, hfp.FP64} {
		p := 6
		states := genStates(t, p)
		schemes := make([]Scheme, p)
		for i := range schemes {
			s, err := NewFloatProd(base, 0)
			if err != nil {
				t.Fatal(err)
			}
			schemes[i] = s
		}
		const n = 32
		rng := rand.New(rand.NewSource(5))
		plains := make([][]byte, p)
		want := make([]float64, n)
		for j := range want {
			want[j] = 1
		}
		for i := 0; i < p; i++ {
			vals := make([]float64, n)
			for j := range vals {
				vals[j] = rng.Float64() + 0.5
				if rng.Intn(2) == 0 {
					vals[j] = -vals[j]
				}
			}
			if base.Lm > 23 {
				plains[i] = f64buf(vals)
				for j := range vals {
					want[j] *= vals[j]
				}
			} else {
				v32 := make([]float32, n)
				for j := range vals {
					v32[j] = float32(vals[j])
					want[j] *= float64(v32[j])
				}
				plains[i] = f32buf(v32)
			}
		}
		outs := runAllreduce(t, states, schemes, plains, n)
		f := schemes[0].(*FloatProd).Format()
		tol := float64(8*p) * math.Ldexp(1, -int(f.FracBits()))
		for j := 0; j < n; j++ {
			var got float64
			if base.Lm > 23 {
				got = math.Float64frombits(binary.LittleEndian.Uint64(outs[1][j*8:]))
			} else {
				got = float64(math.Float32frombits(binary.LittleEndian.Uint32(outs[1][j*4:])))
			}
			if math.Abs(got-want[j])/math.Abs(want[j]) > tol {
				t.Fatalf("%v elem %d: got %g, want %g", base, j, got, want[j])
			}
		}
	}
}

func TestFloatSumV2Accuracy(t *testing.T) {
	p := 8
	states := genStates(t, p)
	schemes := make([]Scheme, p)
	for i := range schemes {
		s, err := NewFloatSumV2(hfp.FP64, 0)
		if err != nil {
			t.Fatal(err)
		}
		schemes[i] = s
	}
	const n = 16
	rng := rand.New(rand.NewSource(6))
	plains := make([][]byte, p)
	want := make([]float64, n)
	for i := 0; i < p; i++ {
		vals := make([]float64, n)
		for j := range vals {
			vals[j] = rng.Float64()*2 - 1 // normalized-weight-like range
			want[j] += vals[j]
		}
		plains[i] = f64buf(vals)
	}
	outs := runAllreduce(t, states, schemes, plains, n)
	// The log decode turns relative error into absolute error ("medium").
	tol := float64(16*p) * math.Ldexp(1, -52)
	for j := 0; j < n; j++ {
		got := math.Float64frombits(binary.LittleEndian.Uint64(outs[0][j*8:]))
		if math.Abs(got-want[j]) > tol {
			t.Fatalf("elem %d: got %g, want %g (abs err %g)", j, got, want[j], math.Abs(got-want[j]))
		}
	}
}

func TestFloatSumV2RejectsOutOfRange(t *testing.T) {
	s, err := NewFloatSumV2(hfp.FP64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.MaxSum() < 700 || s.MaxSum() > 720 {
		t.Errorf("FP64 MaxSum = %g, want ~709", s.MaxSum())
	}
	states := genStates(t, 2)
	plain := f64buf([]float64{800}) // e^800 overflows float64
	cipher := make([]byte, s.CipherSize())
	if err := s.Encrypt(states[0], plain, cipher, 1); err == nil {
		t.Error("e^800 accepted")
	}
}

func TestFixedSumRoundTrip(t *testing.T) {
	codec, err := fixedpoint.NewCodec(64, 20)
	if err != nil {
		t.Fatal(err)
	}
	p := 5
	states := genStates(t, p)
	schemes := make([]Scheme, p)
	for i := range schemes {
		s, err := NewFixedSum(codec)
		if err != nil {
			t.Fatal(err)
		}
		schemes[i] = s
	}
	const n = 20
	rng := rand.New(rand.NewSource(8))
	plains := make([][]byte, p)
	want := make([]float64, n)
	for i := 0; i < p; i++ {
		vals := make([]float64, n)
		for j := range vals {
			vals[j] = math.RoundToEven(rng.Float64()*1000*codec.Scale()) / codec.Scale() // on-grid
			want[j] += vals[j]
		}
		plains[i] = f64buf(vals)
	}
	outs := runAllreduce(t, states, schemes, plains, n)
	for j := 0; j < n; j++ {
		got := math.Float64frombits(binary.LittleEndian.Uint64(outs[0][j*8:]))
		if got != want[j] {
			t.Fatalf("elem %d: got %g, want %g", j, got, want[j])
		}
	}
}

func TestFixedProdRescalesByP(t *testing.T) {
	codec, err := fixedpoint.NewCodec(64, 8)
	if err != nil {
		t.Fatal(err)
	}
	p := 3
	states := genStates(t, p)
	schemes := make([]Scheme, p)
	for i := range schemes {
		s, err := NewFixedProd(codec)
		if err != nil {
			t.Fatal(err)
		}
		schemes[i] = s
	}
	// 2.5 × 4 × 1.5 = 15, all exactly on the 2^-8 grid.
	plains := [][]byte{f64buf([]float64{2.5}), f64buf([]float64{4}), f64buf([]float64{1.5})}
	outs := runAllreduce(t, states, schemes, plains, 1)
	got := math.Float64frombits(binary.LittleEndian.Uint64(outs[0]))
	if got != 15 {
		t.Fatalf("fixed prod = %g, want 15", got)
	}
}

func TestParitySum(t *testing.T) {
	p := 4
	states := genStates(t, p)
	schemes := make([]Scheme, p)
	for i := range schemes {
		s, err := NewParitySum(64)
		if err != nil {
			t.Fatal(err)
		}
		schemes[i] = s
	}
	// ranks contribute 10, 3, 7, 1 → 10 − 3 + 7 − 1 = 13
	plains := [][]byte{
		u64buf([]uint64{10}), u64buf([]uint64{3}), u64buf([]uint64{7}), u64buf([]uint64{1}),
	}
	outs := runAllreduce(t, states, schemes, plains, 1)
	if got := binary.LittleEndian.Uint64(outs[0]); got != 13 {
		t.Fatalf("parity sum = %d, want 13", got)
	}
}

func TestBoolCodecOrAnd(t *testing.T) {
	p := 5
	states := genStates(t, p)
	schemes := make([]Scheme, p)
	for i := range schemes {
		s, err := NewIntSum(32)
		if err != nil {
			t.Fatal(err)
		}
		schemes[i] = s
	}
	bc := BoolCodec{P: p}
	// element 0: all true; element 1: all false; element 2: mixed.
	inputs := [][]bool{
		{true, false, true},
		{true, false, false},
		{true, false, true},
		{true, false, false},
		{true, false, false},
	}
	plains := make([][]byte, p)
	for i := range plains {
		plains[i] = make([]byte, 4*3)
		if err := bc.EncodeBools(inputs[i], plains[i]); err != nil {
			t.Fatal(err)
		}
	}
	outs := runAllreduce(t, states, schemes, plains, 3)
	or := make([]bool, 3)
	and := make([]bool, 3)
	if err := bc.DecodeOr(outs[0], or); err != nil {
		t.Fatal(err)
	}
	if err := bc.DecodeAnd(outs[0], and); err != nil {
		t.Fatal(err)
	}
	if !or[0] || or[1] || !or[2] {
		t.Errorf("OR = %v, want [true false true]", or)
	}
	if !and[0] || and[1] || and[2] {
		t.Errorf("AND = %v, want [true false false]", and)
	}
	if bc.CounterBits() != 3 {
		t.Errorf("CounterBits(P=5) = %d, want 3", bc.CounterBits())
	}
}

// Temporal safety: the same plaintext encrypts differently across
// consecutive Allreduce calls because k_c advances.
func TestTemporalSafety(t *testing.T) {
	states := genStates(t, 2)
	s, err := NewIntSum(64)
	if err != nil {
		t.Fatal(err)
	}
	plain := u64buf([]uint64{42, 42, 42})
	c1 := make([]byte, len(plain))
	c2 := make([]byte, len(plain))
	states[0].Advance()
	if err := s.Encrypt(states[0], plain, c1, 3); err != nil {
		t.Fatal(err)
	}
	states[0].Advance()
	if err := s.Encrypt(states[0], plain, c2, 3); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(c1, c2) {
		t.Error("identical ciphertexts across calls: no temporal safety")
	}
}

// Local safety: equal plaintexts at different vector positions encrypt
// differently within one call.
func TestLocalSafety(t *testing.T) {
	states := genStates(t, 2)
	for _, mk := range []func() (Scheme, error){
		func() (Scheme, error) { return NewIntSum(64) },
		func() (Scheme, error) { return NewIntXor(64) },
		func() (Scheme, error) { return NewFloatSum(hfp.FP32, 0) },
	} {
		s, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		var plain []byte
		if strings.Contains(s.Name(), "float") {
			plain = f32buf([]float32{1.5, 1.5})
		} else {
			plain = u64buf([]uint64{7, 7})
		}
		cipher := make([]byte, 2*s.CipherSize())
		states[0].Advance()
		if err := s.Encrypt(states[0], plain, cipher, 2); err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(cipher[:s.CipherSize()], cipher[s.CipherSize():]) {
			t.Errorf("%s: equal ciphertexts at different positions: no local safety", s.Name())
		}
	}
}

// Global safety: equal plaintexts on different ranks encrypt differently
// for the per-rank-noise schemes — and identically (!) for the v1 float
// addition scheme, which §5.3.3 documents as lacking global safety.
func TestGlobalSafetyByScheme(t *testing.T) {
	states := genStates(t, 3)
	sum0, _ := NewIntSum(64)
	sum1, _ := NewIntSum(64)
	plain := u64buf([]uint64{1234})
	ca := make([]byte, 8)
	cb := make([]byte, 8)
	states[0].Advance()
	states[1].Advance()
	if err := sum0.Encrypt(states[0], plain, ca, 1); err != nil {
		t.Fatal(err)
	}
	if err := sum1.Encrypt(states[1], plain, cb, 1); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ca, cb) {
		t.Error("int-sum: equal ciphertexts across ranks: no global safety")
	}

	// v1 float addition: SAME noise on all ranks → identical ciphertexts.
	fs0, _ := NewFloatSum(hfp.FP32, 0)
	fs1, _ := NewFloatSum(hfp.FP32, 0)
	fplain := f32buf([]float32{2.75})
	fa := make([]byte, fs0.CipherSize())
	fb := make([]byte, fs1.CipherSize())
	if err := fs0.Encrypt(states[0], fplain, fa, 1); err != nil {
		t.Fatal(err)
	}
	if err := fs1.Encrypt(states[1], fplain, fb, 1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fa, fb) {
		t.Error("float-sum-v1 ciphertexts differ across ranks; expected identical (documented lack of global safety)")
	}

	// v2 float addition restores global safety via per-rank noise.
	v20, _ := NewFloatSumV2(hfp.FP32, 0)
	v21, _ := NewFloatSumV2(hfp.FP32, 0)
	va := make([]byte, v20.CipherSize())
	vb := make([]byte, v21.CipherSize())
	if err := v20.Encrypt(states[0], f32buf([]float32{0.5}), va, 1); err != nil {
		t.Fatal(err)
	}
	if err := v21.Encrypt(states[1], f32buf([]float32{0.5}), vb, 1); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(va, vb) {
		t.Error("float-sum-v2: equal ciphertexts across ranks: no global safety")
	}
}

func TestCiphertextDiffersFromPlaintext(t *testing.T) {
	states := genStates(t, 2)
	s, _ := NewIntSum(64)
	plain := u64buf([]uint64{0xDEADBEEF, 0, ^uint64(0)})
	cipher := make([]byte, len(plain))
	states[0].Advance()
	if err := s.Encrypt(states[0], plain, cipher, 3); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(plain, cipher) {
		t.Error("ciphertext equals plaintext")
	}
}

func TestSchemeErrorPaths(t *testing.T) {
	states := genStates(t, 2)
	s, _ := NewIntSum(32)
	small := make([]byte, 4)
	if err := s.Encrypt(states[0], small, small, 2); err == nil {
		t.Error("short buffer accepted")
	}
	if err := s.Encrypt(states[0], small, small, -1); err == nil {
		t.Error("negative count accepted")
	}
	fs, _ := NewFloatSum(hfp.FP32, 0)
	nan := f32buf([]float32{float32(math.NaN())})
	cipher := make([]byte, fs.CipherSize())
	if err := fs.Encrypt(states[0], nan, cipher, 1); err == nil {
		t.Error("NaN accepted by float scheme")
	}
	if _, err := NewIntSum(12); err == nil {
		t.Error("width 12 accepted")
	}
	if _, err := NewIntProd(7); err == nil {
		t.Error("width 7 accepted")
	}
	if _, err := NewIntXor(0); err == nil {
		t.Error("width 0 accepted")
	}
	if _, err := NewNaiveIntSum(64, nil); err == nil {
		t.Error("naive scheme with no keys accepted")
	}
}

// Zero ciphertext inflation for integer schemes (requirement R1).
func TestIntegerSchemesHaveZeroInflation(t *testing.T) {
	for _, mk := range []func() (Scheme, error){
		func() (Scheme, error) { return NewIntSum(32) },
		func() (Scheme, error) { return NewIntSum(64) },
		func() (Scheme, error) { return NewIntProd(64) },
		func() (Scheme, error) { return NewIntXor(32) },
	} {
		s, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		if s.CipherSize() != s.PlainSize() {
			t.Errorf("%s: inflation %d -> %d bytes", s.Name(), s.PlainSize(), s.CipherSize())
		}
	}
}

// Float inflation is exactly γ bits (§5.3.1).
func TestFloatInflationIsGammaBits(t *testing.T) {
	for gamma := uint(0); gamma <= 3; gamma++ {
		s, err := NewFloatSum(hfp.FP32, gamma)
		if err != nil {
			t.Fatal(err)
		}
		f := s.Format()
		if f.CipherBits() != 32+gamma {
			t.Errorf("γ=%d: cipher bits %d, want %d", gamma, f.CipherBits(), 32+gamma)
		}
	}
}

// Table 3's integer worked examples, verified against the scheme equations
// on the 4-bit ring the paper uses (the byte-oriented schemes cover 32/64
// bits; this test pins the published example arithmetic itself).
func TestTable3IntegerExamples(t *testing.T) {
	const mod = 16
	// MPI_SUM: x1=[1,5], x2=[3,8]; noise r1=[2,1], r2=[1,7].
	x1, x2 := []uint64{1, 5}, []uint64{3, 8}
	r1, r2 := []uint64{2, 1}, []uint64{1, 7}
	c1 := []uint64{(x1[0] + r1[0] - r2[0]) % mod, (x1[1] + r1[1] - r2[1] + mod) % mod}
	c2 := []uint64{(x2[0] + r2[0]) % mod, (x2[1] + r2[1]) % mod}
	if c1[0] != 2 || c1[1] != 15 {
		t.Errorf("SUM rank1 encrypted = %v, want [2 15]", c1)
	}
	if c2[0] != 4 || c2[1] != 15 {
		t.Errorf("SUM rank2 encrypted = %v, want [4 15]", c2)
	}
	red := []uint64{(c1[0] + c2[0]) % mod, (c1[1] + c2[1]) % mod}
	if red[0] != 6 || red[1] != 14 {
		t.Errorf("SUM reduced = %v, want [6 14]", red)
	}
	dec := []uint64{(red[0] - r1[0] + mod) % mod, (red[1] - r1[1] + mod) % mod}
	if dec[0] != 4 || dec[1] != 13 {
		t.Errorf("SUM decrypted = %v, want [4 13]", dec)
	}

	// MPI_PROD: x1=[2,4], x2=[7,2]; noise exponents e1=[1,2], e2=[1,0]; g=3.
	pow := func(e uint64) uint64 {
		v := uint64(1)
		for i := uint64(0); i < e; i++ {
			v = v * 3 % mod
		}
		return v
	}
	inv := map[uint64]uint64{1: 1, 3: 11, 9: 9, 11: 3} // inverses mod 16 in <3>
	p1 := []uint64{2 * pow(1) % mod * inv[pow(1)] % mod, 4 * pow(2) % mod * inv[pow(0)] % mod}
	p2 := []uint64{7 * pow(1) % mod, 2 * pow(0) % mod}
	if p1[0] != 2 || p1[1] != 4 {
		t.Errorf("PROD rank1 encrypted = %v, want [2 4]", p1)
	}
	if p2[0] != 5 || p2[1] != 2 {
		t.Errorf("PROD rank2 encrypted = %v, want [5 2]", p2)
	}
	pred := []uint64{p1[0] * p2[0] % mod, p1[1] * p2[1] % mod}
	if pred[0] != 10 || pred[1] != 8 {
		t.Errorf("PROD reduced = %v, want [10 8]", pred)
	}
	pdec := []uint64{pred[0] * inv[pow(1)] % mod, pred[1] * inv[pow(2)] % mod}
	if pdec[0] != 14 || pdec[1] != 8 {
		t.Errorf("PROD decrypted = %v, want [14 8]", pdec)
	}

	// MPI_BXOR: x1=0011, x2=0010; noise n1=0101, n2=1001.
	bx1, bx2 := uint64(0b0011), uint64(0b0010)
	bn1, bn2 := uint64(0b0101), uint64(0b1001)
	bc1 := bx1 ^ bn1 ^ bn2
	bc2 := bx2 ^ bn2
	if bc1 != 0b1111 {
		t.Errorf("XOR rank1 encrypted = %04b, want 1111", bc1)
	}
	if bc2 != 0b1011 {
		t.Errorf("XOR rank2 encrypted = %04b, want 1011", bc2)
	}
	bred := bc1 ^ bc2
	if bred != 0b0100 {
		t.Errorf("XOR reduced = %04b, want 0100", bred)
	}
	if bdec := bred ^ bn1; bdec != 0b0001 {
		t.Errorf("XOR decrypted = %04b, want 0001", bdec)
	}
}
