package core

import (
	"bytes"
	"testing"
	"testing/quick"

	"hear/internal/fixedpoint"
	"hear/internal/hfp"
)

// allSchemes builds one instance of every scheme for offset testing.
func allSchemes(t *testing.T, p int, starting []uint64) []Scheme {
	t.Helper()
	codec, err := fixedpoint.NewCodec(64, 16)
	if err != nil {
		t.Fatal(err)
	}
	mk := []func() (Scheme, error){
		func() (Scheme, error) { return NewIntSum(32) },
		func() (Scheme, error) { return NewIntSum(64) },
		func() (Scheme, error) { return NewIntProd(64) },
		func() (Scheme, error) { return NewIntXor(64) },
		func() (Scheme, error) { return NewNaiveIntSum(64, starting) },
		func() (Scheme, error) { return NewFloatSum(hfp.FP32, 2) },
		func() (Scheme, error) { return NewFloatProd(hfp.FP64, 0) },
		func() (Scheme, error) { return NewFloatSumV2(hfp.FP64, 0) },
		func() (Scheme, error) { return NewFixedSum(codec) },
		func() (Scheme, error) { return NewFixedProd(codec) },
		func() (Scheme, error) { return NewParitySum(64) },
	}
	out := make([]Scheme, 0, len(mk))
	for _, m := range mk {
		s, err := m()
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, s)
	}
	return out
}

// fillPlain produces a valid plaintext buffer for any scheme (floats get
// in-range values, ints get a deterministic pattern).
func fillPlain(s Scheme, n int) []byte {
	buf := make([]byte, n*s.PlainSize())
	switch s.PlainSize() {
	case 4:
		if isFloatScheme(s) {
			w := floatWire{size: 4}
			for j := 0; j < n; j++ {
				w.store(buf, j, 0.5+float64(j%16)/8)
			}
		} else {
			iw := intWire{size: 4}
			for j := 0; j < n; j++ {
				iw.store(buf, j, uint64(j)*2654435761)
			}
		}
	case 8:
		if isFloatScheme(s) {
			w := floatWire{size: 8}
			for j := 0; j < n; j++ {
				w.store(buf, j, 0.25+float64(j%32)/16)
			}
		} else {
			iw := intWire{size: 8}
			for j := 0; j < n; j++ {
				iw.store(buf, j, uint64(j)*0x9E3779B97F4A7C15+1)
			}
		}
	}
	return buf
}

func isFloatScheme(s Scheme) bool {
	switch s.(type) {
	case *FloatSum, *FloatProd, *FloatSumV2, *FixedSum, *FixedProd:
		return true
	}
	return false
}

// EncryptAt(off) must produce exactly the ciphertext span [off, off+n) of
// one whole-buffer Encrypt, for every scheme — the invariant the pipelined
// data path depends on for both correctness and local safety.
func TestEncryptAtMatchesWholeBufferEncrypt(t *testing.T) {
	const total = 96
	states := genStates(t, 3)
	starting := make([]uint64, 3)
	for i, s := range states {
		starting[i] = s.SelfKey
	}
	for _, rank := range []int{0, 2} { // a canceling rank and the last rank
		schemes := allSchemes(t, 3, starting)
		for _, s := range schemes {
			st := states[rank]
			st.Advance()
			plain := fillPlain(s, total)
			whole := make([]byte, total*s.CipherSize())
			if err := s.Encrypt(st, plain, whole, total); err != nil {
				t.Fatalf("%s: %v", s.Name(), err)
			}
			for _, off := range []int{0, 1, 7, 32, 90} {
				n := total - off
				if n > 24 {
					n = 24
				}
				part := make([]byte, n*s.CipherSize())
				if err := s.EncryptAt(st, plain[off*s.PlainSize():], part, n, off); err != nil {
					t.Fatalf("%s off=%d: %v", s.Name(), off, err)
				}
				want := whole[off*s.CipherSize() : (off+n)*s.CipherSize()]
				if !bytes.Equal(part, want) {
					t.Fatalf("%s rank=%d off=%d: EncryptAt diverges from whole-buffer Encrypt", s.Name(), rank, off)
				}
			}
		}
	}
}

// DecryptAt must invert EncryptAt at any offset.
func TestDecryptAtInvertsEncryptAt(t *testing.T) {
	states := genStates(t, 2)
	starting := []uint64{states[0].SelfKey, states[1].SelfKey}
	schemes := allSchemes(t, 2, starting)
	for _, s := range schemes {
		if _, ok := s.(*NaiveIntSum); ok {
			continue // naive decrypt removes ALL ranks' noise; single-rank identity does not hold
		}
		// Use a 1-rank world so the encrypt noise equals the decrypt noise
		// and the identity holds without a reduction.
		solo := genStates(t, 1)[0]
		solo.Advance()
		const n, off = 16, 5
		plain := fillPlain(s, n)
		cipher := make([]byte, n*s.CipherSize())
		if err := s.EncryptAt(solo, plain, cipher, n, off); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		out := make([]byte, n*s.PlainSize())
		if err := s.DecryptAt(solo, cipher, out, n, off); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if err := compareRoundTrip(s, plain, out, n); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
	}
}

// compareRoundTrip allows the float schemes their documented rounding.
func compareRoundTrip(s Scheme, plain, out []byte, n int) error {
	if !isFloatScheme(s) {
		if !bytes.Equal(plain[:n*s.PlainSize()], out[:n*s.PlainSize()]) {
			return errMismatch
		}
		return nil
	}
	w := floatWire{size: s.PlainSize()}
	for j := 0; j < n; j++ {
		a, b := w.load(plain, j), w.load(out, j)
		d := a - b
		if d < 0 {
			d = -d
		}
		if d > 1e-3*absF(a)+1e-6 {
			return errMismatch
		}
	}
	return nil
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

var errMismatch = errForm("round trip mismatch")

type errForm string

func (e errForm) Error() string { return string(e) }

// Property: for arbitrary uint64 vectors and any small communicator, the
// telescoped integer SUM pipeline is the identity on the wrapping sum.
func TestQuickIntSumPipelineIdentity(t *testing.T) {
	f := func(vals []uint64, pRaw uint8) bool {
		p := int(pRaw)%6 + 2
		if len(vals) == 0 {
			vals = []uint64{1}
		}
		if len(vals) > 64 {
			vals = vals[:64]
		}
		n := len(vals)
		states := genStates(t, p)
		want := make([]uint64, n)
		agg := make([]byte, n*8)
		for r := 0; r < p; r++ {
			states[r].Advance()
			s, err := NewIntSum(64)
			if err != nil {
				return false
			}
			plain := make([]byte, n*8)
			iw := intWire{size: 8}
			for j, v := range vals {
				x := v + uint64(r) // vary per rank
				iw.store(plain, j, x)
				want[j] += x
			}
			cipher := make([]byte, n*8)
			if err := s.Encrypt(states[r], plain, cipher, n); err != nil {
				return false
			}
			if r == 0 {
				copy(agg, cipher)
			} else {
				s.Reduce(agg, cipher, n)
			}
		}
		s, _ := NewIntSum(64)
		out := make([]byte, n*8)
		if err := s.Decrypt(states[0], agg, out, n); err != nil {
			return false
		}
		iw := intWire{size: 8}
		for j := range want {
			if iw.load(out, j) != want[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: XOR scheme round-trips arbitrary byte patterns bit-exactly.
func TestQuickXorPipelineIdentity(t *testing.T) {
	f := func(vals []uint64) bool {
		if len(vals) == 0 {
			return true
		}
		if len(vals) > 32 {
			vals = vals[:32]
		}
		n := len(vals)
		const p = 3
		states := genStates(t, p)
		want := make([]uint64, n)
		agg := make([]byte, n*8)
		for r := 0; r < p; r++ {
			states[r].Advance()
			s, err := NewIntXor(64)
			if err != nil {
				return false
			}
			plain := make([]byte, n*8)
			iw := intWire{size: 8}
			for j, v := range vals {
				x := v ^ uint64(r*77)
				iw.store(plain, j, x)
				want[j] ^= x
			}
			cipher := make([]byte, n*8)
			if err := s.Encrypt(states[r], plain, cipher, n); err != nil {
				return false
			}
			if r == 0 {
				copy(agg, cipher)
			} else {
				s.Reduce(agg, cipher, n)
			}
		}
		s, _ := NewIntXor(64)
		out := make([]byte, n*8)
		if err := s.Decrypt(states[1], agg, out, n); err != nil {
			return false
		}
		iw := intWire{size: 8}
		for j := range want {
			if iw.load(out, j) != want[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
