package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"hear/internal/hfp"
	"hear/internal/keys"
	"hear/internal/prf"
)

// floatWire reads/writes plaintext floats on the wire. FP64-family schemes
// use 8-byte float64 elements; FP32- and FP16-family schemes use 4-byte
// float32 elements (Go has no native half type; FP16 precision is enforced
// by the HFP mantissa width, not the wire type).
type floatWire struct{ size int }

func wireFor(base hfp.Format) floatWire {
	if base.Lm > 23 {
		return floatWire{size: 8}
	}
	return floatWire{size: 4}
}

func (w floatWire) load(buf []byte, j int) float64 {
	if w.size == 8 {
		return math.Float64frombits(binary.LittleEndian.Uint64(buf[j*8:]))
	}
	return float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[j*4:])))
}

func (w floatWire) store(buf []byte, j int, x float64) {
	if w.size == 8 {
		binary.LittleEndian.PutUint64(buf[j*8:], math.Float64bits(x))
		return
	}
	binary.LittleEndian.PutUint32(buf[j*4:], math.Float32bits(float32(x)))
}

// FloatSum implements the v1 floating point addition scheme of §5.3.3
// (eq. 7): every rank encrypts element j with the SAME noise factor,
//
//	c_i[j] = x_i[j] ⊗ F_{k_e}(k_c + j)
//
// so ciphertexts add on the HFP ring-exponent FPU and decryption divides
// the common factor out. Because the noise depends only on the collective
// key, the scheme provides temporal and local safety but NOT global safety
// (§5.3.3); it is COA-secure and robust against the single-process
// adversary. γ trades ciphertext inflation for precision (Figure 3).
type FloatSum struct {
	f    hfp.Format
	name string
	wire floatWire
	cell hfp.Cell // precomputed pack/unpack/noise codec (bulk fast path)
}

// NewFloatSum builds the v1 addition scheme over base (hfp.FP16/FP32/FP64)
// with inflation parameter gamma.
func NewFloatSum(base hfp.Format, gamma uint) (*FloatSum, error) {
	f := base.ForAdd(gamma)
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("core: float-sum: %w", err)
	}
	s := &FloatSum{f: f, wire: wireFor(base), cell: f.Cell()}
	s.name = fmt.Sprintf("float%d-sum-v1/γ=%d", 1+f.Le+f.Lm, f.Gamma)
	return s, nil
}

// Format exposes the underlying HFP format (used by precision experiments).
func (s *FloatSum) Format() hfp.Format { return s.f }

func (s *FloatSum) Name() string { return s.name }

func (s *FloatSum) PlainSize() int  { return s.wire.size }
func (s *FloatSum) CipherSize() int { return s.f.ByteSize() }

func (s *FloatSum) Encrypt(st *keys.RankState, plain, cipher []byte, n int) error {
	return s.EncryptAt(st, plain, cipher, n, 0)
}

func (s *FloatSum) EncryptAt(st *keys.RankState, plain, cipher []byte, n, off int) error {
	if err := checkSpan(s.Name(), plain, cipher, n, off, s.PlainSize(), s.CipherSize()); err != nil {
		return err
	}
	if !FusionEnabled() {
		return s.encryptTwoPassAt(st, plain, cipher, n, off)
	}
	cs := s.CipherSize()
	nb := n * hfp.NoiseBytes // noise bytes, the stream the loop is blocked on
	ns := openNoise(st.Enc, st.CollectiveNonce(), uint64(off)*hfp.NoiseBytes, nb)
	defer ns.close()
	for done := 0; done < nb; done += prf.BlockBytes {
		b := ns.next()
		m := blockLen(nb, done)
		for o := 0; o < m; o += hfp.NoiseBytes {
			j := (done + o) / hfp.NoiseBytes
			v, err := s.f.Encode(s.wire.load(plain, j))
			if err != nil {
				return fmt.Errorf("%s: element %d: %w", s.Name(), j, err)
			}
			noise := s.cell.Noise(b[o:])
			s.cell.Pack(s.f.Mul(v, noise), cipher[j*cs:])
		}
	}
	return nil
}

// encryptTwoPassAt is the reference kernel (full plane, second pass).
func (s *FloatSum) encryptTwoPassAt(st *keys.RankState, plain, cipher []byte, n, off int) error {
	cs := s.CipherSize()
	p1, ks := getScratch(n * hfp.NoiseBytes)
	defer putScratch(p1)
	st.Enc.Keystream(ks, st.CollectiveNonce(), uint64(off)*hfp.NoiseBytes)
	for j := 0; j < n; j++ {
		v, err := s.f.Encode(s.wire.load(plain, j))
		if err != nil {
			return fmt.Errorf("%s: element %d: %w", s.Name(), j, err)
		}
		noise := s.cell.Noise(ks[j*hfp.NoiseBytes:])
		s.cell.Pack(s.f.Mul(v, noise), cipher[j*cs:])
	}
	return nil
}

func (s *FloatSum) Decrypt(st *keys.RankState, cipher, plain []byte, n int) error {
	return s.DecryptAt(st, cipher, plain, n, 0)
}

func (s *FloatSum) DecryptAt(st *keys.RankState, cipher, plain []byte, n, off int) error {
	if err := checkSpan(s.Name(), plain, cipher, n, off, s.PlainSize(), s.CipherSize()); err != nil {
		return err
	}
	if !FusionEnabled() {
		return s.decryptTwoPassAt(st, cipher, plain, n, off)
	}
	cs := s.CipherSize()
	nb := n * hfp.NoiseBytes
	ns := openNoise(st.Enc, st.CollectiveNonce(), uint64(off)*hfp.NoiseBytes, nb)
	defer ns.close()
	for done := 0; done < nb; done += prf.BlockBytes {
		b := ns.next()
		m := blockLen(nb, done)
		for o := 0; o < m; o += hfp.NoiseBytes {
			j := (done + o) / hfp.NoiseBytes
			c := s.cell.Unpack(cipher[j*cs:])
			noise := s.cell.Noise(b[o:])
			s.wire.store(plain, j, s.f.Decode(s.f.Div(c, noise)))
		}
	}
	return nil
}

// decryptTwoPassAt is the reference kernel (full plane, second pass).
func (s *FloatSum) decryptTwoPassAt(st *keys.RankState, cipher, plain []byte, n, off int) error {
	cs := s.CipherSize()
	p1, ks := getScratch(n * hfp.NoiseBytes)
	defer putScratch(p1)
	st.Enc.Keystream(ks, st.CollectiveNonce(), uint64(off)*hfp.NoiseBytes)
	for j := 0; j < n; j++ {
		c := s.cell.Unpack(cipher[j*cs:])
		noise := s.cell.Noise(ks[j*hfp.NoiseBytes:])
		s.wire.store(plain, j, s.f.Decode(s.f.Div(c, noise)))
	}
	return nil
}

// Reduce runs the fused ⊞ fold kernel (hfp.Format.FoldAdd).
func (s *FloatSum) Reduce(dst, src []byte, n int) {
	s.f.FoldAdd(dst[:n*s.CipherSize()], src, n)
}
