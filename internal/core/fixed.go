package core

import (
	"fmt"

	"hear/internal/fixedpoint"
	"hear/internal/keys"
)

// FixedSum implements fixed point addition (§5.2): float64 wire values are
// quantized to a shared integer grid (the implicit scaling factor agreed
// before computation) and ride the lossless integer SUM scheme. Lossiness
// is exactly the quantization of the codec; the encryption itself is
// lossless and IND-CPA like the integer scheme it wraps.
type FixedSum struct {
	codec fixedpoint.Codec
	name  string
	inner *IntSum
}

// NewFixedSum builds the scheme with the given codec. The codec's width
// selects the underlying integer scheme width (32 or 64 bits).
func NewFixedSum(codec fixedpoint.Codec) (*FixedSum, error) {
	inner, err := NewIntSum(int(codec.Width))
	if err != nil {
		return nil, fmt.Errorf("core: fixed-sum: %w", err)
	}
	return &FixedSum{
		codec: codec,
		name:  fmt.Sprintf("fixed%d.%d-sum", codec.Width, codec.Frac),
		inner: inner,
	}, nil
}

func (s *FixedSum) Name() string            { return s.name }
func (s *FixedSum) PlainSize() int          { return 8 }
func (s *FixedSum) CipherSize() int         { return s.inner.CipherSize() }
func (s *FixedSum) Codec() fixedpoint.Codec { return s.codec }

func (s *FixedSum) Encrypt(st *keys.RankState, plain, cipher []byte, n int) error {
	return s.EncryptAt(st, plain, cipher, n, 0)
}

func (s *FixedSum) EncryptAt(st *keys.RankState, plain, cipher []byte, n, off int) error {
	if err := checkSpan(s.Name(), plain, cipher, n, off, s.PlainSize(), s.CipherSize()); err != nil {
		return err
	}
	w := floatWire{size: 8}
	iw := intWire{size: s.inner.width}
	p1, scratch := getScratch(n * s.inner.width)
	defer putScratch(p1)
	for j := 0; j < n; j++ {
		word, err := s.codec.Encode(w.load(plain, j))
		if err != nil {
			return fmt.Errorf("%s: element %d: %w", s.Name(), j, err)
		}
		iw.store(scratch, j, word)
	}
	return s.inner.EncryptAt(st, scratch, cipher, n, off)
}

func (s *FixedSum) Decrypt(st *keys.RankState, cipher, plain []byte, n int) error {
	return s.DecryptAt(st, cipher, plain, n, 0)
}

func (s *FixedSum) DecryptAt(st *keys.RankState, cipher, plain []byte, n, off int) error {
	if err := checkSpan(s.Name(), plain, cipher, n, off, s.PlainSize(), s.CipherSize()); err != nil {
		return err
	}
	p1, scratch := getScratch(n * s.inner.width)
	defer putScratch(p1)
	if err := s.inner.DecryptAt(st, cipher, scratch, n, off); err != nil {
		return err
	}
	w := floatWire{size: 8}
	iw := intWire{size: s.inner.width}
	for j := 0; j < n; j++ {
		w.store(plain, j, s.codec.DecodeSum(iw.load(scratch, j)))
	}
	return nil
}

func (s *FixedSum) Reduce(dst, src []byte, n int) { s.inner.Reduce(dst, src, n) }

// FixedProd implements fixed point multiplication (§5.2). The aggregated
// product of P factors carries scale 2^(P·Frac); Decrypt uses the
// communicator size to rescale, exactly as the paper prescribes ("the
// number of involved processes can be used to obtain the correct output
// scaling factor").
type FixedProd struct {
	codec fixedpoint.Codec
	name  string
	inner *IntProd
}

// NewFixedProd builds the multiplicative fixed point scheme.
func NewFixedProd(codec fixedpoint.Codec) (*FixedProd, error) {
	inner, err := NewIntProd(int(codec.Width))
	if err != nil {
		return nil, fmt.Errorf("core: fixed-prod: %w", err)
	}
	return &FixedProd{
		codec: codec,
		name:  fmt.Sprintf("fixed%d.%d-prod", codec.Width, codec.Frac),
		inner: inner,
	}, nil
}

func (s *FixedProd) Name() string    { return s.name }
func (s *FixedProd) PlainSize() int  { return 8 }
func (s *FixedProd) CipherSize() int { return s.inner.CipherSize() }

func (s *FixedProd) Encrypt(st *keys.RankState, plain, cipher []byte, n int) error {
	return s.EncryptAt(st, plain, cipher, n, 0)
}

func (s *FixedProd) EncryptAt(st *keys.RankState, plain, cipher []byte, n, off int) error {
	if err := checkSpan(s.Name(), plain, cipher, n, off, s.PlainSize(), s.CipherSize()); err != nil {
		return err
	}
	w := floatWire{size: 8}
	iw := intWire{size: s.inner.width}
	p1, scratch := getScratch(n * s.inner.width)
	defer putScratch(p1)
	for j := 0; j < n; j++ {
		word, err := s.codec.Encode(w.load(plain, j))
		if err != nil {
			return fmt.Errorf("%s: element %d: %w", s.Name(), j, err)
		}
		iw.store(scratch, j, word)
	}
	return s.inner.EncryptAt(st, scratch, cipher, n, off)
}

func (s *FixedProd) Decrypt(st *keys.RankState, cipher, plain []byte, n int) error {
	return s.DecryptAt(st, cipher, plain, n, 0)
}

func (s *FixedProd) DecryptAt(st *keys.RankState, cipher, plain []byte, n, off int) error {
	if err := checkSpan(s.Name(), plain, cipher, n, off, s.PlainSize(), s.CipherSize()); err != nil {
		return err
	}
	p1, scratch := getScratch(n * s.inner.width)
	defer putScratch(p1)
	if err := s.inner.DecryptAt(st, cipher, scratch, n, off); err != nil {
		return err
	}
	w := floatWire{size: 8}
	iw := intWire{size: s.inner.width}
	for j := 0; j < n; j++ {
		w.store(plain, j, s.codec.DecodeProd(iw.load(scratch, j), st.Size))
	}
	return nil
}

func (s *FixedProd) Reduce(dst, src []byte, n int) { s.inner.Reduce(dst, src, n) }

// intWire reads/writes little-endian integer words of 1, 2, 4, or 8 bytes.
type intWire struct{ size int }

func (w intWire) load(buf []byte, j int) uint64 {
	o := j * w.size
	var v uint64
	for i := 0; i < w.size; i++ {
		v |= uint64(buf[o+i]) << (8 * uint(i))
	}
	return v
}

func (w intWire) store(buf []byte, j int, v uint64) {
	for i := 0; i < w.size; i++ {
		buf[j*w.size+i] = byte(v >> (8 * uint(i)))
	}
}
