package fold

import (
	"encoding/binary"
	"testing"

	"hear/internal/ring"
)

func lanes64(vals ...uint64) []byte {
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[i*8:], v)
	}
	return b
}

func TestSumUint64Wraps(t *testing.T) {
	dst := lanes64(^uint64(0), 7)
	SumUint64(dst, lanes64(2, 3))
	if got := binary.LittleEndian.Uint64(dst); got != 1 {
		t.Errorf("wrap lane = %d, want 1", got)
	}
	if got := binary.LittleEndian.Uint64(dst[8:]); got != 10 {
		t.Errorf("sum lane = %d, want 10", got)
	}
}

func TestSumUint64PartialLane(t *testing.T) {
	// A trailing partial lane must be left untouched, and src shorter than
	// dst bounds the fold.
	dst := append(lanes64(5), 0xAA, 0xBB)
	src := lanes64(6)
	SumUint64(dst, src)
	if got := binary.LittleEndian.Uint64(dst); got != 11 {
		t.Errorf("lane = %d, want 11", got)
	}
	if dst[8] != 0xAA || dst[9] != 0xBB {
		t.Errorf("partial lane modified: % x", dst[8:])
	}
	SumUint64(dst[:8], lanes64(1, 2)) // src longer than dst
	if got := binary.LittleEndian.Uint64(dst); got != 12 {
		t.Errorf("lane = %d, want 12", got)
	}
}

func TestSumMod61(t *testing.T) {
	const p = ring.MersennePrime61
	dst := lanes64(p-1, 3)
	SumMod61(dst, lanes64(1, 4))
	if got := binary.LittleEndian.Uint64(dst); got != 0 {
		t.Errorf("mod lane = %d, want 0", got)
	}
	if got := binary.LittleEndian.Uint64(dst[8:]); got != 7 {
		t.Errorf("sum lane = %d, want 7", got)
	}
}

func TestXor(t *testing.T) {
	dst := []byte{0xF0, 0x0F}
	Xor(dst, []byte{0xFF, 0xFF, 0x12})
	if dst[0] != 0x0F || dst[1] != 0xF0 {
		t.Errorf("xor = % x", dst)
	}
}

func TestSumWidths(t *testing.T) {
	for _, width := range []int{1, 2, 4, 8} {
		f := Sum(width)
		dst := make([]byte, 2*width)
		src := make([]byte, 2*width)
		w := word{size: width}
		w.store(dst, 0, 200)
		w.store(dst, 1, 1)
		w.store(src, 0, 100)
		w.store(src, 1, 2)
		f(dst, src)
		mask := uint64(1)<<(8*width) - 1
		if width == 8 {
			mask = ^uint64(0)
		}
		if got := w.load(dst, 0); got != 300&mask {
			t.Errorf("width %d lane 0 = %d, want %d", width, got, 300&mask)
		}
		if got := w.load(dst, 1); got != 3 {
			t.Errorf("width %d lane 1 = %d, want 3", width, got)
		}
	}
}

func TestProd(t *testing.T) {
	f := Prod(64)
	dst := lanes64(6, 1<<63)
	f(dst, lanes64(7, 2))
	if got := binary.LittleEndian.Uint64(dst); got != 42 {
		t.Errorf("prod lane = %d, want 42", got)
	}
	if got := binary.LittleEndian.Uint64(dst[8:]); got != 0 {
		t.Errorf("wrap lane = %d, want 0 (mod 2^64)", got)
	}
}
