// Package fold provides HEAR's keyless reduction kernels: the element-wise
// operators ⊙ that in-network devices — the §4 INC switch simulated by
// internal/inc, and the aggregation gateway of internal/aggsvc — execute on
// opaque ciphertext lanes. Splitting them out of internal/core keeps the
// untrusted aggregation side key-blind by construction: this package (and
// anything built on it alone) cannot link internal/keys, because folding
// needs no key material. internal/core's schemes reuse the same kernels for
// their Reduce methods, so host-side and network-side folds cannot drift.
package fold

import (
	"encoding/binary"

	"hear/internal/ring"
)

// Func is the element-wise reduction a keyless aggregator executes on two
// equal-length frames (dst = dst ⊙ src). It matches internal/inc's Fold
// contract: implementations fold min(len(dst), len(src)) whole lanes and
// never inspect more than the frame bytes.
type Func func(dst, src []byte)

// blockBytes is the cache-blocking granularity of the hot fold kernels:
// one 64-byte cache line, matching the streaming block size of the fused
// cipher kernels (prf.BlockBytes). Converting each block to a fixed-size
// array pointer hoists the bounds checks out of the unrolled inner loop.
const blockBytes = 64

// SumUint64 folds little-endian 64-bit lanes with wrapping addition — the
// integer SUM scheme's operator on Z_{2^64} (§5.1.1).
func SumUint64(dst, src []byte) {
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	o := 0
	for ; o+blockBytes <= n; o += blockBytes {
		d := (*[blockBytes]byte)(dst[o:])
		s := (*[blockBytes]byte)(src[o:])
		for i := 0; i < blockBytes; i += 8 {
			binary.LittleEndian.PutUint64(d[i:],
				binary.LittleEndian.Uint64(d[i:])+binary.LittleEndian.Uint64(s[i:]))
		}
	}
	for ; o+8 <= n; o += 8 {
		binary.LittleEndian.PutUint64(dst[o:],
			binary.LittleEndian.Uint64(dst[o:])+binary.LittleEndian.Uint64(src[o:]))
	}
}

// SumUint32 folds little-endian 32-bit lanes with wrapping addition.
func SumUint32(dst, src []byte) {
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	o := 0
	for ; o+blockBytes <= n; o += blockBytes {
		d := (*[blockBytes]byte)(dst[o:])
		s := (*[blockBytes]byte)(src[o:])
		for i := 0; i < blockBytes; i += 4 {
			binary.LittleEndian.PutUint32(d[i:],
				binary.LittleEndian.Uint32(d[i:])+binary.LittleEndian.Uint32(s[i:]))
		}
	}
	for ; o+4 <= n; o += 4 {
		binary.LittleEndian.PutUint32(dst[o:],
			binary.LittleEndian.Uint32(dst[o:])+binary.LittleEndian.Uint32(src[o:]))
	}
}

// Xor folds byte lanes with XOR — the §5.1.3 operator, width-agnostic.
// Whole cache-line blocks fold as 8-byte words; the tail byte-by-byte, so
// the fold stays exact for any frame length.
func Xor(dst, src []byte) {
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	o := 0
	for ; o+blockBytes <= n; o += blockBytes {
		d := (*[blockBytes]byte)(dst[o:])
		s := (*[blockBytes]byte)(src[o:])
		for i := 0; i < blockBytes; i += 8 {
			binary.LittleEndian.PutUint64(d[i:],
				binary.LittleEndian.Uint64(d[i:])^binary.LittleEndian.Uint64(s[i:]))
		}
	}
	for ; o+8 <= n; o += 8 {
		binary.LittleEndian.PutUint64(dst[o:],
			binary.LittleEndian.Uint64(dst[o:])^binary.LittleEndian.Uint64(src[o:]))
	}
	for ; o < n; o++ {
		dst[o] ^= src[o]
	}
}

// SumMod61 folds little-endian 64-bit lanes by addition modulo the HoMAC
// verification prime 2^61−1 (§5.5). Lanes must hold reduced residues; the
// modulus is public, so tag aggregation needs no keys either.
func SumMod61(dst, src []byte) {
	const p = ring.MersennePrime61
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	o := 0
	for ; o+blockBytes <= n; o += blockBytes {
		d := (*[blockBytes]byte)(dst[o:])
		sb := (*[blockBytes]byte)(src[o:])
		for i := 0; i < blockBytes; i += 8 {
			s := binary.LittleEndian.Uint64(d[i:]) + binary.LittleEndian.Uint64(sb[i:])
			if s >= p { // p < 2^61, so reduced inputs cannot overflow uint64
				s -= p
			}
			binary.LittleEndian.PutUint64(d[i:], s)
		}
	}
	for ; o+8 <= n; o += 8 {
		a := binary.LittleEndian.Uint64(dst[o:])
		b := binary.LittleEndian.Uint64(src[o:])
		s := a + b
		if s >= p {
			s -= p
		}
		binary.LittleEndian.PutUint64(dst[o:], s)
	}
}

// Sum returns the wrapping-addition fold for integer lanes of the given
// byte width (1, 2, 4, or 8). The 4- and 8-byte widths hit the specialized
// kernels above.
func Sum(width int) Func {
	switch width {
	case 4:
		return SumUint32
	case 8:
		return SumUint64
	}
	w := word{size: width}
	return func(dst, src []byte) {
		for j, n := 0, lanes(dst, src, width); j < n; j++ {
			w.store(dst, j, w.load(dst, j)+w.load(src, j))
		}
	}
}

// Prod returns the modular-multiplication fold on Z_{2^widthBits} — the
// integer PROD scheme's operator (§5.1.2).
func Prod(widthBits int) Func {
	r := ring.NewZ2(uint(widthBits))
	width := widthBits / 8
	w := word{size: width}
	return func(dst, src []byte) {
		for j, n := 0, lanes(dst, src, width); j < n; j++ {
			w.store(dst, j, r.Mul(w.load(dst, j), w.load(src, j)))
		}
	}
}

// lanes returns the number of whole width-byte lanes both frames cover.
func lanes(dst, src []byte, width int) int {
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	return n / width
}

// word reads/writes little-endian integer lanes of 1, 2, 4, or 8 bytes.
type word struct{ size int }

func (w word) load(b []byte, j int) uint64 {
	o := j * w.size
	switch w.size {
	case 1:
		return uint64(b[o])
	case 2:
		return uint64(binary.LittleEndian.Uint16(b[o:]))
	case 4:
		return uint64(binary.LittleEndian.Uint32(b[o:]))
	default:
		return binary.LittleEndian.Uint64(b[o:])
	}
}

func (w word) store(b []byte, j int, v uint64) {
	o := j * w.size
	switch w.size {
	case 1:
		b[o] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(b[o:], uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(b[o:], uint32(v))
	default:
		binary.LittleEndian.PutUint64(b[o:], v)
	}
}
