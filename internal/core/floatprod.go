package core

import (
	"fmt"

	"hear/internal/hfp"
	"hear/internal/keys"
	"hear/internal/prf"
)

// FloatProd implements the floating point multiplication scheme of §5.3.2
// (eq. 6) with noise canceling between neighbouring ranks and no exponent
// inflation (δ = 0):
//
//	c_i[j] = x_i[j] ⊗ F(k_s_i+k_c+j) ⊘ F(k_s_{i+1}+k_c+j)   i < P−1
//	c_i[j] = x_i[j] ⊗ F(k_s_i+k_c+j)                         i = P−1
//
// The factors telescope under ⊗, leaving Πx ⊗ F(k_s_0+k_c+j); decryption
// divides by that factor. Per-rank noises give the scheme global safety in
// addition to temporal and local (§5.3.2); it is COA-secure under both
// adversary models. Division by encrypted values rides the scheme by
// multiplying with reciprocals prepared in the secure environment.
type FloatProd struct {
	f    hfp.Format
	name string
	wire floatWire
	cell hfp.Cell // precomputed pack/unpack/noise codec (bulk fast path)
}

// NewFloatProd builds the multiplication scheme over base with inflation
// parameter gamma (the paper's most performant choice is γ = 0: ciphertext
// width equals plaintext width exactly).
func NewFloatProd(base hfp.Format, gamma uint) (*FloatProd, error) {
	f := base.ForMul(gamma)
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("core: float-prod: %w", err)
	}
	s := &FloatProd{f: f, wire: wireFor(base), cell: f.Cell()}
	s.name = fmt.Sprintf("float%d-prod/γ=%d", 1+f.Le+f.Lm, f.Gamma)
	return s, nil
}

// Format exposes the underlying HFP format.
func (s *FloatProd) Format() hfp.Format { return s.f }

func (s *FloatProd) Name() string { return s.name }

func (s *FloatProd) PlainSize() int  { return s.wire.size }
func (s *FloatProd) CipherSize() int { return s.f.ByteSize() }

func (s *FloatProd) Encrypt(st *keys.RankState, plain, cipher []byte, n int) error {
	return s.EncryptAt(st, plain, cipher, n, 0)
}

func (s *FloatProd) EncryptAt(st *keys.RankState, plain, cipher []byte, n, off int) error {
	if err := checkSpan(s.Name(), plain, cipher, n, off, s.PlainSize(), s.CipherSize()); err != nil {
		return err
	}
	if !FusionEnabled() {
		return s.encryptTwoPassAt(st, plain, cipher, n, off)
	}
	cs := s.CipherSize()
	last := st.IsLast()
	byteOff := uint64(off) * hfp.NoiseBytes
	nb := n * hfp.NoiseBytes
	ns1 := openNoise(st.Enc, st.SelfNonce(), byteOff, nb)
	defer ns1.close()
	var ns2 *noiseStream
	if !last {
		ns2 = openNoise(st.Enc, st.NextNonce(), byteOff, nb)
		defer ns2.close()
	}
	for done := 0; done < nb; done += prf.BlockBytes {
		b1 := ns1.next()
		var b2 *[prf.BlockBytes]byte
		if !last {
			b2 = ns2.next()
		}
		m := blockLen(nb, done)
		for o := 0; o < m; o += hfp.NoiseBytes {
			j := (done + o) / hfp.NoiseBytes
			v, err := s.f.Encode(s.wire.load(plain, j))
			if err != nil {
				return fmt.Errorf("%s: element %d: %w", s.Name(), j, err)
			}
			noise := s.cell.Noise(b1[o:])
			if !last {
				noise = s.f.Div(noise, s.cell.Noise(b2[o:]))
			}
			s.cell.Pack(s.f.Mul(v, noise), cipher[j*cs:])
		}
	}
	return nil
}

// encryptTwoPassAt is the reference kernel (full plane, second pass).
func (s *FloatProd) encryptTwoPassAt(st *keys.RankState, plain, cipher []byte, n, off int) error {
	cs := s.CipherSize()
	last := st.IsLast()
	byteOff := uint64(off) * hfp.NoiseBytes
	p1, ks1 := getScratch(n * hfp.NoiseBytes)
	defer putScratch(p1)
	st.Enc.Keystream(ks1, st.SelfNonce(), byteOff)
	var ks2 []byte
	if !last {
		p2, b := getScratch(n * hfp.NoiseBytes)
		defer putScratch(p2)
		ks2 = b
		st.Enc.Keystream(ks2, st.NextNonce(), byteOff)
	}
	for j := 0; j < n; j++ {
		v, err := s.f.Encode(s.wire.load(plain, j))
		if err != nil {
			return fmt.Errorf("%s: element %d: %w", s.Name(), j, err)
		}
		noise := s.cell.Noise(ks1[j*hfp.NoiseBytes:])
		if !last {
			noise = s.f.Div(noise, s.cell.Noise(ks2[j*hfp.NoiseBytes:]))
		}
		s.cell.Pack(s.f.Mul(v, noise), cipher[j*cs:])
	}
	return nil
}

func (s *FloatProd) Decrypt(st *keys.RankState, cipher, plain []byte, n int) error {
	return s.DecryptAt(st, cipher, plain, n, 0)
}

func (s *FloatProd) DecryptAt(st *keys.RankState, cipher, plain []byte, n, off int) error {
	if err := checkSpan(s.Name(), plain, cipher, n, off, s.PlainSize(), s.CipherSize()); err != nil {
		return err
	}
	if !FusionEnabled() {
		return s.decryptTwoPassAt(st, cipher, plain, n, off)
	}
	cs := s.CipherSize()
	nb := n * hfp.NoiseBytes
	ns := openNoise(st.Enc, st.RootNonce(), uint64(off)*hfp.NoiseBytes, nb)
	defer ns.close()
	for done := 0; done < nb; done += prf.BlockBytes {
		b1 := ns.next()
		m := blockLen(nb, done)
		for o := 0; o < m; o += hfp.NoiseBytes {
			j := (done + o) / hfp.NoiseBytes
			c := s.cell.Unpack(cipher[j*cs:])
			noise := s.cell.Noise(b1[o:])
			s.wire.store(plain, j, s.f.Decode(s.f.Div(c, noise)))
		}
	}
	return nil
}

// decryptTwoPassAt is the reference kernel (full plane, second pass).
func (s *FloatProd) decryptTwoPassAt(st *keys.RankState, cipher, plain []byte, n, off int) error {
	cs := s.CipherSize()
	p1, ks1 := getScratch(n * hfp.NoiseBytes)
	defer putScratch(p1)
	st.Enc.Keystream(ks1, st.RootNonce(), uint64(off)*hfp.NoiseBytes)
	for j := 0; j < n; j++ {
		c := s.cell.Unpack(cipher[j*cs:])
		noise := s.cell.Noise(ks1[j*hfp.NoiseBytes:])
		s.wire.store(plain, j, s.f.Decode(s.f.Div(c, noise)))
	}
	return nil
}

// Reduce runs the fused ⊗ fold kernel (hfp.Format.FoldMul).
func (s *FloatProd) Reduce(dst, src []byte, n int) {
	s.f.FoldMul(dst[:n*s.CipherSize()], src, n)
}
