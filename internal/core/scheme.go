// Package core implements HEAR's encryption schemes (§5): lossless integer
// SUM/PROD/XOR with the canceling technique (eqs. 1–3), the HFP float
// PROD and SUM v1 schemes (eqs. 6–7), the alternative log-space float
// addition (§5.3.4), fixed point (§5.2), and the naive Θ(P)-decrypt
// variant of Figure 1 used for ablation.
//
// Every scheme follows the same shape:
//
//	E(x) = x ★ noise        D(x) = x ★ noise⁻¹
//
// where the per-rank noises are PRF keystreams arranged to telescope under
// the reduction operator, so the aggregated ciphertext carries only rank
// 0's noise and decryption is Θ(1) per element.
package core

import (
	"fmt"
	"math"

	"hear/internal/keys"
)

// Scheme is one HEAR encryption scheme bound to a datatype and reduction
// operator. Scheme instances are immutable after construction (per-call
// scratch comes from a shared sync.Pool, not the instance), so all
// methods are safe for concurrent use. In particular the multicore cipher
// engine (internal/engine) shards one Encrypt/Decrypt/Reduce call over
// element ranges and runs the shards concurrently on one instance —
// counter-mode keystream offsets keep the shards independent.
type Scheme interface {
	// Name identifies the scheme, e.g. "int32-sum".
	Name() string
	// PlainSize is the plaintext element width in bytes on the wire.
	PlainSize() int
	// CipherSize is the ciphertext element width in bytes on the wire.
	// Integer schemes have CipherSize == PlainSize (zero inflation, R1);
	// float schemes inflate by γ bits rounded up to the next byte.
	CipherSize() int
	// Encrypt transforms n plaintext elements from plain into ciphertext
	// elements in cipher using the rank's keys and the current collective
	// key. The caller advances the collective key once per collective call
	// (keys.RankState.Advance), not per Encrypt. Equivalent to
	// EncryptAt(st, plain, cipher, n, 0).
	Encrypt(st *keys.RankState, plain, cipher []byte, n int) error
	// EncryptAt is Encrypt with a global element offset: element i of
	// plain is encrypted as vector element off+i, i.e. with noise
	// F(k + k_c + off + i). The pipelined data path (§6) uses it so that
	// blocks of one collective call never reuse a stream index — reuse
	// would break local safety.
	EncryptAt(st *keys.RankState, plain, cipher []byte, n, off int) error
	// Decrypt transforms n reduced ciphertext elements back to plaintext.
	Decrypt(st *keys.RankState, cipher, plain []byte, n int) error
	// DecryptAt is Decrypt at a global element offset, pairing EncryptAt.
	DecryptAt(st *keys.RankState, cipher, plain []byte, n, off int) error
	// Reduce folds src into dst elementwise with the scheme's operator ⊙
	// (dst = dst ⊙ src). This is the operation in-network devices execute;
	// it uses no key material.
	Reduce(dst, src []byte, n int)
}

// NoiseClass identifies one of the PRF streams a scheme draws bulk noise
// from. The noise prefetcher (internal/noise) maps classes to concrete
// stream nonces for a given key epoch.
type NoiseClass int

const (
	// NoiseSelf is the rank's own stream, F(k_s_i + k_c + ·).
	NoiseSelf NoiseClass = iota
	// NoiseNext is the canceling stream, F(k_s_{i+1} + k_c + ·). The last
	// rank (keys.RankState.IsLast) draws nothing from it — its noise term
	// is the one eqs. 1–3 leave uncanceled.
	NoiseNext
	// NoiseRoot is rank 0's stream, F(k_s_0 + k_c + ·), the one that
	// survives the telescoping reduction and is removed by Θ(1) decryption.
	NoiseRoot
	// NoiseCollective is the k_c-only stream F(k_c + ·) of the float v1
	// addition scheme (eq. 7), whose noise ignores rank keys entirely.
	NoiseCollective
	// NumNoiseClasses bounds the class space for table sizing.
	NumNoiseClasses
)

// NoiseProfile declares a scheme's bulk keystream consumption statically:
// which stream classes Encrypt and Decrypt read and how many keystream
// bytes per element each read consumes. A profile must be exact — an
// n-element call at global element offset off reads exactly bytes
// [off·B, (off+n)·B) of every listed stream and nothing else — which is
// what lets the prefetcher size and place whole next-epoch noise planes
// without running the scheme.
type NoiseProfile struct {
	BytesPerElem int
	Encrypt      []NoiseClass
	Decrypt      []NoiseClass
}

// NoiseProfiler is implemented by schemes whose bulk noise reads are
// statically describable. Schemes without it (the naive Θ(P)-decrypt
// ablation variant, whose decrypt walks P per-rank streams) are simply
// never prefetched. HoMAC's point queries go through PRF.Uint64, which is
// outside profiles and always served by the live backend.
type NoiseProfiler interface {
	NoiseProfile() NoiseProfile
}

// SpanError is the typed error every scheme entry point returns for an
// invalid (n, off) element span: negative counts or offsets, and spans
// whose byte addressing would overflow. It exists because the keystream
// byte offset is computed as uint64(off)·width — a negative off would
// silently wrap into a huge stream offset and produce garbage ciphertext
// instead of failing, which is exactly the class of misuse that must fail
// loudly in a cipher.
type SpanError struct {
	Scheme string // scheme name, e.g. "int64-sum"
	N, Off int    // the rejected element count and offset
	Reason string
}

func (e *SpanError) Error() string {
	return fmt.Sprintf("%s: invalid element span n=%d off=%d: %s", e.Scheme, e.N, e.Off, e.Reason)
}

// maxSpanElems bounds off+n so that (off+n)·stride stays representable for
// the widest per-element keystream stride in the system (hfp.NoiseBytes =
// 16 bytes). 2^59 elements is far beyond any addressable buffer; the bound
// exists to keep the uint64 keystream byte addressing exact.
const maxSpanElems = math.MaxInt64 / 16

// checkSpan validates buffer lengths and the (n, off) element span; every
// scheme entry point calls it so misuse fails loudly (with a typed
// *SpanError) instead of silently truncating data or wrapping the
// keystream offset.
func checkSpan(name string, plain, cipher []byte, n, off, plainSize, cipherSize int) error {
	if n < 0 {
		return &SpanError{Scheme: name, N: n, Off: off, Reason: "negative element count"}
	}
	if off < 0 {
		return &SpanError{Scheme: name, N: n, Off: off, Reason: "negative element offset"}
	}
	if off > maxSpanElems-n {
		return &SpanError{Scheme: name, N: n, Off: off, Reason: "span exceeds the keystream address space"}
	}
	if len(plain) < n*plainSize {
		return fmt.Errorf("%s: plaintext buffer %d B < %d elements × %d B", name, len(plain), n, plainSize)
	}
	if len(cipher) < n*cipherSize {
		return fmt.Errorf("%s: ciphertext buffer %d B < %d elements × %d B", name, len(cipher), n, cipherSize)
	}
	return nil
}

// checkLen is checkSpan at offset 0, for entry points without an offset
// parameter (the keyless subset folds).
func checkLen(name string, plain, cipher []byte, n, plainSize, cipherSize int) error {
	return checkSpan(name, plain, cipher, n, 0, plainSize, cipherSize)
}
