// Package core implements HEAR's encryption schemes (§5): lossless integer
// SUM/PROD/XOR with the canceling technique (eqs. 1–3), the HFP float
// PROD and SUM v1 schemes (eqs. 6–7), the alternative log-space float
// addition (§5.3.4), fixed point (§5.2), and the naive Θ(P)-decrypt
// variant of Figure 1 used for ablation.
//
// Every scheme follows the same shape:
//
//	E(x) = x ★ noise        D(x) = x ★ noise⁻¹
//
// where the per-rank noises are PRF keystreams arranged to telescope under
// the reduction operator, so the aggregated ciphertext carries only rank
// 0's noise and decryption is Θ(1) per element.
package core

import (
	"fmt"

	"hear/internal/keys"
)

// Scheme is one HEAR encryption scheme bound to a datatype and reduction
// operator. Scheme instances are immutable after construction (per-call
// scratch comes from a shared sync.Pool, not the instance), so all
// methods are safe for concurrent use. In particular the multicore cipher
// engine (internal/engine) shards one Encrypt/Decrypt/Reduce call over
// element ranges and runs the shards concurrently on one instance —
// counter-mode keystream offsets keep the shards independent.
type Scheme interface {
	// Name identifies the scheme, e.g. "int32-sum".
	Name() string
	// PlainSize is the plaintext element width in bytes on the wire.
	PlainSize() int
	// CipherSize is the ciphertext element width in bytes on the wire.
	// Integer schemes have CipherSize == PlainSize (zero inflation, R1);
	// float schemes inflate by γ bits rounded up to the next byte.
	CipherSize() int
	// Encrypt transforms n plaintext elements from plain into ciphertext
	// elements in cipher using the rank's keys and the current collective
	// key. The caller advances the collective key once per collective call
	// (keys.RankState.Advance), not per Encrypt. Equivalent to
	// EncryptAt(st, plain, cipher, n, 0).
	Encrypt(st *keys.RankState, plain, cipher []byte, n int) error
	// EncryptAt is Encrypt with a global element offset: element i of
	// plain is encrypted as vector element off+i, i.e. with noise
	// F(k + k_c + off + i). The pipelined data path (§6) uses it so that
	// blocks of one collective call never reuse a stream index — reuse
	// would break local safety.
	EncryptAt(st *keys.RankState, plain, cipher []byte, n, off int) error
	// Decrypt transforms n reduced ciphertext elements back to plaintext.
	Decrypt(st *keys.RankState, cipher, plain []byte, n int) error
	// DecryptAt is Decrypt at a global element offset, pairing EncryptAt.
	DecryptAt(st *keys.RankState, cipher, plain []byte, n, off int) error
	// Reduce folds src into dst elementwise with the scheme's operator ⊙
	// (dst = dst ⊙ src). This is the operation in-network devices execute;
	// it uses no key material.
	Reduce(dst, src []byte, n int)
}

// checkLen validates buffer lengths against element counts; every scheme
// calls it so misuse fails loudly instead of silently truncating data.
func checkLen(name string, plain, cipher []byte, n, plainSize, cipherSize int) error {
	if n < 0 {
		return fmt.Errorf("%s: negative element count %d", name, n)
	}
	if len(plain) < n*plainSize {
		return fmt.Errorf("%s: plaintext buffer %d B < %d elements × %d B", name, len(plain), n, plainSize)
	}
	if len(cipher) < n*cipherSize {
		return fmt.Errorf("%s: ciphertext buffer %d B < %d elements × %d B", name, len(cipher), n, cipherSize)
	}
	return nil
}
