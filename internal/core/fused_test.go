package core

import (
	"bytes"
	"errors"
	"testing"

	"hear/internal/keys"
	"hear/internal/prf"
)

// genStatesBackend is genStates with an explicit PRF backend.
func genStatesBackend(t testing.TB, p int, backend string) []*keys.RankState {
	t.Helper()
	states, err := keys.Generate(p, keys.Config{Rand: &seqReader{next: 1}, Backend: backend})
	if err != nil {
		t.Fatal(err)
	}
	return states
}

// withFusion runs f with the fused kernels forced on or off, restoring the
// previous setting.
func withFusion(on bool, f func()) {
	prev := SetFusion(on)
	defer SetFusion(prev)
	f()
}

// The fused single-pass kernels must be bit-identical to the two-pass
// reference for every scheme, on every backend, at canceling and last
// ranks, across offsets and sizes that exercise partial head/tail blocks
// and staging-buffer refills.
func TestFusedMatchesTwoPass(t *testing.T) {
	backends := []string{prf.BackendAESFast, prf.BackendAESScalar, prf.BackendChaCha20, prf.BackendSHA1}
	offs := []int{0, 1, 7, 129}
	sizes := []int{1, 3, 100, 1000}
	for _, backend := range backends {
		states := genStatesBackend(t, 3, backend)
		starting := make([]uint64, 3)
		for i, s := range states {
			starting[i] = s.SelfKey
		}
		for _, rank := range []int{0, 2} { // canceling rank and last rank
			st := states[rank]
			st.Advance()
			for _, s := range allSchemes(t, 3, starting) {
				for _, off := range offs {
					for _, n := range sizes {
						plain := fillPlain(s, n)
						fusedC := make([]byte, n*s.CipherSize())
						refC := make([]byte, n*s.CipherSize())
						var errF, errR error
						withFusion(true, func() { errF = s.EncryptAt(st, plain, fusedC, n, off) })
						withFusion(false, func() { errR = s.EncryptAt(st, plain, refC, n, off) })
						if errF != nil || errR != nil {
							t.Fatalf("%s/%s rank=%d off=%d n=%d: encrypt fused=%v ref=%v",
								backend, s.Name(), rank, off, n, errF, errR)
						}
						if !bytes.Equal(fusedC, refC) {
							t.Fatalf("%s/%s rank=%d off=%d n=%d: fused encrypt diverges from two-pass",
								backend, s.Name(), rank, off, n)
						}
						fusedP := make([]byte, n*s.PlainSize())
						refP := make([]byte, n*s.PlainSize())
						withFusion(true, func() { errF = s.DecryptAt(st, refC, fusedP, n, off) })
						withFusion(false, func() { errR = s.DecryptAt(st, refC, refP, n, off) })
						if errF != nil || errR != nil {
							t.Fatalf("%s/%s rank=%d off=%d n=%d: decrypt fused=%v ref=%v",
								backend, s.Name(), rank, off, n, errF, errR)
						}
						if !bytes.Equal(fusedP, refP) {
							t.Fatalf("%s/%s rank=%d off=%d n=%d: fused decrypt diverges from two-pass",
								backend, s.Name(), rank, off, n)
						}
					}
				}
			}
		}
	}
}

// In-place operation (cipher aliasing plain) must work on the fused path —
// the loops never revisit a byte.
func TestFusedInPlace(t *testing.T) {
	states := genStatesBackend(t, 2, prf.BackendChaCha20)
	st := states[0]
	st.Advance()
	s, err := NewIntSum(64)
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	plain := fillPlain(s, n)
	want := make([]byte, n*8)
	if err := s.EncryptAt(st, plain, want, n, 3); err != nil {
		t.Fatal(err)
	}
	buf := append([]byte(nil), plain...)
	if err := s.EncryptAt(st, buf, buf, n, 3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, want) {
		t.Fatal("in-place fused encrypt diverges from out-of-place")
	}
}

// The fused hot path must not allocate: software backends stream with zero
// allocations, and no scheme may allocate beyond its backend's inherent
// per-call cost (AES-fast constructs one CTR stream per noise stream,
// exactly like the two-pass path's bulk Keystream call).
func TestFusedAllocs(t *testing.T) {
	const n = 2048 // 16 KiB of int64 lanes, larger than the staging buffer
	sum, err := NewIntSum(64)
	if err != nil {
		t.Fatal(err)
	}
	xor, err := NewIntXor(64)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Scheme{sum, xor} {
		st := genStatesBackend(t, 2, prf.BackendChaCha20)[0]
		st.Advance()
		plain := fillPlain(s, n)
		cipher := make([]byte, n*s.CipherSize())
		if a := testing.AllocsPerRun(20, func() {
			if err := s.EncryptAt(st, plain, cipher, n, 0); err != nil {
				t.Fatal(err)
			}
		}); a != 0 {
			t.Errorf("%s/chacha20: fused encrypt allocates %.1f/run, want 0", s.Name(), a)
		}
		if a := testing.AllocsPerRun(20, func() {
			if err := s.DecryptAt(st, cipher, plain, n, 0); err != nil {
				t.Fatal(err)
			}
		}); a != 0 {
			t.Errorf("%s/chacha20: fused decrypt allocates %.1f/run, want 0", s.Name(), a)
		}
	}
	// AES-fast: fused must not out-allocate the two-pass reference.
	st := genStatesBackend(t, 2, prf.BackendAESFast)[0]
	st.Advance()
	plain := fillPlain(sum, n)
	cipher := make([]byte, n*8)
	var fused, ref float64
	withFusion(true, func() {
		fused = testing.AllocsPerRun(20, func() { sum.EncryptAt(st, plain, cipher, n, 0) })
	})
	withFusion(false, func() {
		ref = testing.AllocsPerRun(20, func() { sum.EncryptAt(st, plain, cipher, n, 0) })
	})
	if fused > ref {
		t.Errorf("int64-sum/aes-fast: fused encrypt allocates %.1f/run > two-pass %.1f/run", fused, ref)
	}
}

// Every scheme entry point must reject negative counts, negative offsets
// (which would silently wrap the uint64 keystream offset), and spans past
// the keystream address space, with a typed *SpanError.
func TestSpanErrors(t *testing.T) {
	states := genStates(t, 2)
	starting := []uint64{states[0].SelfKey, states[1].SelfKey}
	st := states[0]
	st.Advance()
	cases := []struct {
		name   string
		n, off int
	}{
		{"negative count", -1, 0},
		{"negative offset", 4, -1},
		{"negative offset wrap", 4, -1 << 40},
		{"address space overflow", 4, maxSpanElems - 3},
	}
	for _, s := range allSchemes(t, 2, starting) {
		plain := fillPlain(s, 8)
		cipher := make([]byte, 8*s.CipherSize())
		for _, tc := range cases {
			var spanErr *SpanError
			err := s.EncryptAt(st, plain, cipher, tc.n, tc.off)
			if !errors.As(err, &spanErr) {
				t.Errorf("%s: EncryptAt %s: got %v, want *SpanError", s.Name(), tc.name, err)
				continue
			}
			if spanErr.N != tc.n || spanErr.Off != tc.off {
				t.Errorf("%s: EncryptAt %s: SpanError carries n=%d off=%d, want n=%d off=%d",
					s.Name(), tc.name, spanErr.N, spanErr.Off, tc.n, tc.off)
			}
			if err := s.DecryptAt(st, cipher, plain, tc.n, tc.off); !errors.As(err, &spanErr) {
				t.Errorf("%s: DecryptAt %s: got %v, want *SpanError", s.Name(), tc.name, err)
			}
		}
		// Valid spans still pass (no over-rejection at the boundary).
		if err := s.EncryptAt(st, plain, cipher, 8, 0); err != nil {
			t.Errorf("%s: valid span rejected: %v", s.Name(), err)
		}
	}
}

// Short counts buffers must error out of the bool decoders instead of
// panicking in intWire.load (regression: DecodeOr/DecodeAnd used to index
// straight into counts).
func TestBoolCodecShortBuffers(t *testing.T) {
	c := BoolCodec{P: 3}
	out := make([]bool, 4)
	short := make([]byte, 4*len(out)-1)
	if err := c.DecodeOr(short, out); err == nil {
		t.Error("DecodeOr accepted a short counts buffer")
	}
	if err := c.DecodeAnd(short, out); err == nil {
		t.Error("DecodeAnd accepted a short counts buffer")
	}
	if err := c.EncodeBools(make([]bool, 4), short); err == nil {
		t.Error("EncodeBools accepted a short dst buffer")
	}
	// Exact-length buffers work.
	exact := make([]byte, 4*len(out))
	if err := c.EncodeBools([]bool{true, false, true, true}, exact); err != nil {
		t.Fatal(err)
	}
	if err := c.DecodeOr(exact, out); err != nil {
		t.Fatal(err)
	}
	if !out[0] || out[1] || !out[2] || !out[3] {
		t.Error("DecodeOr decoded wrong values")
	}
}
