package core

import (
	"encoding/binary"
	"fmt"

	"hear/internal/core/fold"
	"hear/internal/keys"
	"hear/internal/prf"
)

// IntSum implements the integer addition scheme of §5.1.1 (eq. 1) on the
// abelian group Z_{2^width}:
//
//	c_i[j] = x_i[j] + F(k_s_i + k_c + j)                       i = P−1
//	c_i[j] = x_i[j] + F(k_s_i + k_c + j) − F(k_s_{i+1} + k_c + j)  otherwise
//
// The per-rank noises telescope under addition, leaving F(k_s_0 + k_c + j)
// on the aggregate, which decryption subtracts. Modulo-2^b arithmetic makes
// the scheme lossless and zero-inflation; uniqueness and pseudorandomness
// of the noise give IND-CPA security (the Castelluccia et al. argument the
// paper cites). Subtraction rides the same scheme via two's complement.
type IntSum struct {
	width int // element width in bytes: 4 or 8
	name  string
	fold  fold.Func
}

// NewIntSum returns the SUM scheme for 8-, 16-, 32-, or 64-bit integers
// (the paper's schemes are defined for any datatype length d; MPI maps
// MPI_INT8_T/MPI_SHORT/MPI_INT/MPI_LONG onto these widths).
func NewIntSum(widthBits int) (*IntSum, error) {
	if err := checkWidth("core: int-sum", widthBits); err != nil {
		return nil, err
	}
	return &IntSum{
		width: widthBits / 8,
		name:  fmt.Sprintf("int%d-sum", widthBits),
		fold:  fold.Sum(widthBits / 8),
	}, nil
}

func checkWidth(prefix string, got int) error {
	switch got {
	case 8, 16, 32, 64:
		return nil
	}
	return fmt.Errorf("%s: width must be 8, 16, 32, or 64 bits, got %d", prefix, got)
}

// Name is precomputed at construction so the hot-path span checks do not
// format it per call.
func (s *IntSum) Name() string { return s.name }

func (s *IntSum) PlainSize() int  { return s.width }
func (s *IntSum) CipherSize() int { return s.width }

func (s *IntSum) Encrypt(st *keys.RankState, plain, cipher []byte, n int) error {
	return s.EncryptAt(st, plain, cipher, n, 0)
}

func (s *IntSum) EncryptAt(st *keys.RankState, plain, cipher []byte, n, off int) error {
	if err := checkSpan(s.Name(), plain, cipher, n, off, s.width, s.width); err != nil {
		return err
	}
	if !FusionEnabled() {
		return s.encryptTwoPassAt(st, plain, cipher, n, off)
	}
	nb := n * s.width
	byteOff := uint64(off) * uint64(s.width)
	cancel := !st.IsLast()
	ns1 := openNoise(st.Enc, st.SelfNonce(), byteOff, nb)
	defer ns1.close()
	var ns2 *noiseStream
	if cancel {
		ns2 = openNoise(st.Enc, st.NextNonce(), byteOff, nb)
		defer ns2.close()
	}
	w := intWire{size: s.width}
	for done := 0; done < nb; done += prf.BlockBytes {
		b1 := ns1.next()
		var b2 *[prf.BlockBytes]byte
		if cancel {
			b2 = ns2.next()
		}
		m := blockLen(nb, done)
		switch s.width {
		case 4:
			for o := 0; o < m; o += 4 {
				c := binary.LittleEndian.Uint32(plain[done+o:]) + binary.LittleEndian.Uint32(b1[o:])
				if cancel {
					c -= binary.LittleEndian.Uint32(b2[o:])
				}
				binary.LittleEndian.PutUint32(cipher[done+o:], c)
			}
		case 8:
			for o := 0; o < m; o += 8 {
				c := binary.LittleEndian.Uint64(plain[done+o:]) + binary.LittleEndian.Uint64(b1[o:])
				if cancel {
					c -= binary.LittleEndian.Uint64(b2[o:])
				}
				binary.LittleEndian.PutUint64(cipher[done+o:], c)
			}
		default: // 1- and 2-byte datatypes via the generic word codec
			for o := 0; o < m; o += s.width {
				c := w.load(plain, (done+o)/s.width) + w.load(b1[:], o/s.width)
				if cancel {
					c -= w.load(b2[:], o/s.width)
				}
				w.store(cipher, (done+o)/s.width, c)
			}
		}
	}
	return nil
}

// encryptTwoPassAt is the reference kernel: materialize the full keystream
// plane(s) into pooled scratch, then combine in a second pass.
func (s *IntSum) encryptTwoPassAt(st *keys.RankState, plain, cipher []byte, n, off int) error {
	nb := n * s.width
	byteOff := uint64(off) * uint64(s.width)
	p1, ks1 := getScratch(nb)
	defer putScratch(p1)
	st.Enc.Keystream(ks1, st.SelfNonce(), byteOff)
	cancel := !st.IsLast()
	var ks2 []byte
	if cancel {
		p2, b := getScratch(nb)
		defer putScratch(p2)
		ks2 = b
		st.Enc.Keystream(ks2, st.NextNonce(), byteOff)
	}
	switch s.width {
	case 4:
		for j := 0; j < n; j++ {
			o := j * 4
			c := binary.LittleEndian.Uint32(plain[o:]) + binary.LittleEndian.Uint32(ks1[o:])
			if cancel {
				c -= binary.LittleEndian.Uint32(ks2[o:])
			}
			binary.LittleEndian.PutUint32(cipher[o:], c)
		}
	case 8:
		for j := 0; j < n; j++ {
			o := j * 8
			c := binary.LittleEndian.Uint64(plain[o:]) + binary.LittleEndian.Uint64(ks1[o:])
			if cancel {
				c -= binary.LittleEndian.Uint64(ks2[o:])
			}
			binary.LittleEndian.PutUint64(cipher[o:], c)
		}
	default: // 1- and 2-byte datatypes via the generic word codec
		w := intWire{size: s.width}
		for j := 0; j < n; j++ {
			c := w.load(plain, j) + w.load(ks1, j)
			if cancel {
				c -= w.load(ks2, j)
			}
			w.store(cipher, j, c)
		}
	}
	return nil
}

func (s *IntSum) Decrypt(st *keys.RankState, cipher, plain []byte, n int) error {
	return s.DecryptAt(st, cipher, plain, n, 0)
}

func (s *IntSum) DecryptAt(st *keys.RankState, cipher, plain []byte, n, off int) error {
	if err := checkSpan(s.Name(), plain, cipher, n, off, s.width, s.width); err != nil {
		return err
	}
	if !FusionEnabled() {
		return s.decryptTwoPassAt(st, cipher, plain, n, off)
	}
	nb := n * s.width
	ns := openNoise(st.Enc, st.RootNonce(), uint64(off)*uint64(s.width), nb)
	defer ns.close()
	w := intWire{size: s.width}
	for done := 0; done < nb; done += prf.BlockBytes {
		b1 := ns.next()
		m := blockLen(nb, done)
		switch s.width {
		case 4:
			for o := 0; o < m; o += 4 {
				binary.LittleEndian.PutUint32(plain[done+o:],
					binary.LittleEndian.Uint32(cipher[done+o:])-binary.LittleEndian.Uint32(b1[o:]))
			}
		case 8:
			for o := 0; o < m; o += 8 {
				binary.LittleEndian.PutUint64(plain[done+o:],
					binary.LittleEndian.Uint64(cipher[done+o:])-binary.LittleEndian.Uint64(b1[o:]))
			}
		default:
			for o := 0; o < m; o += s.width {
				j := (done + o) / s.width
				w.store(plain, j, w.load(cipher, j)-w.load(b1[:], o/s.width))
			}
		}
	}
	return nil
}

// decryptTwoPassAt is the reference kernel (full plane, second pass).
func (s *IntSum) decryptTwoPassAt(st *keys.RankState, cipher, plain []byte, n, off int) error {
	nb := n * s.width
	p1, ks1 := getScratch(nb)
	defer putScratch(p1)
	st.Enc.Keystream(ks1, st.RootNonce(), uint64(off)*uint64(s.width))
	switch s.width {
	case 4:
		for j := 0; j < n; j++ {
			o := j * 4
			binary.LittleEndian.PutUint32(plain[o:],
				binary.LittleEndian.Uint32(cipher[o:])-binary.LittleEndian.Uint32(ks1[o:]))
		}
	case 8:
		for j := 0; j < n; j++ {
			o := j * 8
			binary.LittleEndian.PutUint64(plain[o:],
				binary.LittleEndian.Uint64(cipher[o:])-binary.LittleEndian.Uint64(ks1[o:]))
		}
	default:
		w := intWire{size: s.width}
		for j := 0; j < n; j++ {
			w.store(plain, j, w.load(cipher, j)-w.load(ks1, j))
		}
	}
	return nil
}

// Reduce delegates to the shared keyless kernel (internal/core/fold), the
// same code the INC switch and the aggregation gateway execute.
func (s *IntSum) Reduce(dst, src []byte, n int) {
	s.fold(dst[:n*s.width], src[:n*s.width])
}
