package core

import (
	"encoding/binary"
	"fmt"

	"hear/internal/core/fold"
	"hear/internal/keys"
)

// IntSum implements the integer addition scheme of §5.1.1 (eq. 1) on the
// abelian group Z_{2^width}:
//
//	c_i[j] = x_i[j] + F(k_s_i + k_c + j)                       i = P−1
//	c_i[j] = x_i[j] + F(k_s_i + k_c + j) − F(k_s_{i+1} + k_c + j)  otherwise
//
// The per-rank noises telescope under addition, leaving F(k_s_0 + k_c + j)
// on the aggregate, which decryption subtracts. Modulo-2^b arithmetic makes
// the scheme lossless and zero-inflation; uniqueness and pseudorandomness
// of the noise give IND-CPA security (the Castelluccia et al. argument the
// paper cites). Subtraction rides the same scheme via two's complement.
type IntSum struct {
	width int // element width in bytes: 4 or 8
	fold  fold.Func
}

// NewIntSum returns the SUM scheme for 8-, 16-, 32-, or 64-bit integers
// (the paper's schemes are defined for any datatype length d; MPI maps
// MPI_INT8_T/MPI_SHORT/MPI_INT/MPI_LONG onto these widths).
func NewIntSum(widthBits int) (*IntSum, error) {
	if err := checkWidth("core: int-sum", widthBits); err != nil {
		return nil, err
	}
	return &IntSum{width: widthBits / 8, fold: fold.Sum(widthBits / 8)}, nil
}

func checkWidth(prefix string, got int) error {
	switch got {
	case 8, 16, 32, 64:
		return nil
	}
	return fmt.Errorf("%s: width must be 8, 16, 32, or 64 bits, got %d", prefix, got)
}

func (s *IntSum) Name() string {
	return fmt.Sprintf("int%d-sum", s.width*8)
}

func (s *IntSum) PlainSize() int  { return s.width }
func (s *IntSum) CipherSize() int { return s.width }

func (s *IntSum) Encrypt(st *keys.RankState, plain, cipher []byte, n int) error {
	return s.EncryptAt(st, plain, cipher, n, 0)
}

func (s *IntSum) EncryptAt(st *keys.RankState, plain, cipher []byte, n, off int) error {
	if err := checkLen(s.Name(), plain, cipher, n, s.width, s.width); err != nil {
		return err
	}
	nb := n * s.width
	byteOff := uint64(off) * uint64(s.width)
	p1, ks1 := getScratch(nb)
	defer putScratch(p1)
	st.Enc.Keystream(ks1, st.SelfNonce(), byteOff)
	cancel := !st.IsLast()
	var ks2 []byte
	if cancel {
		p2, b := getScratch(nb)
		defer putScratch(p2)
		ks2 = b
		st.Enc.Keystream(ks2, st.NextNonce(), byteOff)
	}
	switch s.width {
	case 4:
		for j := 0; j < n; j++ {
			o := j * 4
			c := binary.LittleEndian.Uint32(plain[o:]) + binary.LittleEndian.Uint32(ks1[o:])
			if cancel {
				c -= binary.LittleEndian.Uint32(ks2[o:])
			}
			binary.LittleEndian.PutUint32(cipher[o:], c)
		}
	case 8:
		for j := 0; j < n; j++ {
			o := j * 8
			c := binary.LittleEndian.Uint64(plain[o:]) + binary.LittleEndian.Uint64(ks1[o:])
			if cancel {
				c -= binary.LittleEndian.Uint64(ks2[o:])
			}
			binary.LittleEndian.PutUint64(cipher[o:], c)
		}
	default: // 1- and 2-byte datatypes via the generic word codec
		w := intWire{size: s.width}
		for j := 0; j < n; j++ {
			c := w.load(plain, j) + w.load(ks1, j)
			if cancel {
				c -= w.load(ks2, j)
			}
			w.store(cipher, j, c)
		}
	}
	return nil
}

func (s *IntSum) Decrypt(st *keys.RankState, cipher, plain []byte, n int) error {
	return s.DecryptAt(st, cipher, plain, n, 0)
}

func (s *IntSum) DecryptAt(st *keys.RankState, cipher, plain []byte, n, off int) error {
	if err := checkLen(s.Name(), plain, cipher, n, s.width, s.width); err != nil {
		return err
	}
	nb := n * s.width
	p1, ks1 := getScratch(nb)
	defer putScratch(p1)
	st.Enc.Keystream(ks1, st.RootNonce(), uint64(off)*uint64(s.width))
	switch s.width {
	case 4:
		for j := 0; j < n; j++ {
			o := j * 4
			binary.LittleEndian.PutUint32(plain[o:],
				binary.LittleEndian.Uint32(cipher[o:])-binary.LittleEndian.Uint32(ks1[o:]))
		}
	case 8:
		for j := 0; j < n; j++ {
			o := j * 8
			binary.LittleEndian.PutUint64(plain[o:],
				binary.LittleEndian.Uint64(cipher[o:])-binary.LittleEndian.Uint64(ks1[o:]))
		}
	default:
		w := intWire{size: s.width}
		for j := 0; j < n; j++ {
			w.store(plain, j, w.load(cipher, j)-w.load(ks1, j))
		}
	}
	return nil
}

// Reduce delegates to the shared keyless kernel (internal/core/fold), the
// same code the INC switch and the aggregation gateway execute.
func (s *IntSum) Reduce(dst, src []byte, n int) {
	s.fold(dst[:n*s.width], src[:n*s.width])
}
