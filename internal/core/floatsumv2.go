package core

import (
	"fmt"
	"math"

	"hear/internal/hfp"
	"hear/internal/keys"
)

// FloatSumV2 implements the alternative addition scheme of §5.3.4, which
// buys global safety at the cost of precision and dynamic range: values
// are encoded as exponentials a_i = e^{x_i}, shipped through the
// multiplicative scheme (per-rank noises, hence global safety), reduced
// multiplicatively so the product is e^{Σx}, and decoded with a logarithm.
//
// Exponentiation compresses the dynamic range: |Σ x_i| must stay below
// (2^(le−1))·ln 2 or the exponent of e^{Σx} leaves the plaintext range
// (≈ 709 for the FP64 base, ≈ 88 for FP32, ≈ 11 for FP16). The relative
// error of the product becomes an *absolute* error of the sum after the
// logarithm — the "medium" lossiness of Table 2. The paper motivates the
// scheme for values known to be in a small range, e.g. normalized ML
// weights.
type FloatSumV2 struct {
	prod *FloatProd
	name string
	wire floatWire
}

// NewFloatSumV2 builds the alternative addition scheme over base with
// inflation parameter gamma.
func NewFloatSumV2(base hfp.Format, gamma uint) (*FloatSumV2, error) {
	p, err := NewFloatProd(base, gamma)
	if err != nil {
		return nil, fmt.Errorf("core: float-sum-v2: %w", err)
	}
	s := &FloatSumV2{prod: p, wire: p.wire}
	s.name = fmt.Sprintf("float%d-sum-v2/γ=%d", 1+p.f.Le+p.f.Lm, p.f.Gamma)
	return s, nil
}

// Format exposes the underlying HFP format.
func (s *FloatSumV2) Format() hfp.Format { return s.prod.f }

func (s *FloatSumV2) Name() string { return s.name }

func (s *FloatSumV2) PlainSize() int  { return s.wire.size }
func (s *FloatSumV2) CipherSize() int { return s.prod.CipherSize() }

// MaxSum returns the largest |Σx| the scheme can decode for its base
// format.
func (s *FloatSumV2) MaxSum() float64 {
	return float64(int64(1)<<(s.prod.f.Le-1)) * math.Ln2
}

func (s *FloatSumV2) Encrypt(st *keys.RankState, plain, cipher []byte, n int) error {
	return s.EncryptAt(st, plain, cipher, n, 0)
}

func (s *FloatSumV2) EncryptAt(st *keys.RankState, plain, cipher []byte, n, off int) error {
	if err := checkSpan(s.Name(), plain, cipher, n, off, s.PlainSize(), s.CipherSize()); err != nil {
		return err
	}
	// Encode x -> e^x into a scratch plaintext buffer, then run the
	// multiplicative scheme over it.
	p1, scratch := getScratch(n * s.PlainSize())
	defer putScratch(p1)
	for j := 0; j < n; j++ {
		x := s.wire.load(plain, j)
		a := math.Exp(x)
		if a == 0 || math.IsInf(a, 0) {
			return fmt.Errorf("%s: element %d: e^%g outside dynamic range", s.Name(), j, x)
		}
		s.wire.store(scratch, j, a)
	}
	return s.prod.EncryptAt(st, scratch, cipher, n, off)
}

func (s *FloatSumV2) Decrypt(st *keys.RankState, cipher, plain []byte, n int) error {
	return s.DecryptAt(st, cipher, plain, n, 0)
}

func (s *FloatSumV2) DecryptAt(st *keys.RankState, cipher, plain []byte, n, off int) error {
	if err := checkSpan(s.Name(), plain, cipher, n, off, s.PlainSize(), s.CipherSize()); err != nil {
		return err
	}
	if err := s.prod.DecryptAt(st, cipher, plain, n, off); err != nil {
		return err
	}
	for j := 0; j < n; j++ {
		s.wire.store(plain, j, math.Log(s.wire.load(plain, j)))
	}
	return nil
}

func (s *FloatSumV2) Reduce(dst, src []byte, n int) { s.prod.Reduce(dst, src, n) }
