package core

import "sync"

// maxPooledScratch caps the per-call scratch buffers (keystream spans,
// wire-conversion staging) kept in the shared pool. Before the pool,
// every scheme instance grew private ks1/ks2 buffers and a single 16 MiB
// allreduce pinned that much scratch in the instance forever; now scratch
// at or below the cap is recycled through one process-wide sync.Pool and
// anything larger is a transient allocation the GC reclaims when the call
// returns. The cap also bounds what one engine shard may demand: the
// engine's MaxShardBytes is sized so a shard's scratch never exceeds it.
const maxPooledScratch = 1 << 20

var scratchPool = sync.Pool{
	New: func() any {
		b := make([]byte, maxPooledScratch)
		return &b
	},
}

// getScratch returns an n-byte scratch slice plus the pool token to hand
// back to putScratch. The contents are unspecified; callers overwrite
// before reading. Oversized requests return a nil token and a transient
// allocation.
func getScratch(n int) (*[]byte, []byte) {
	if n > maxPooledScratch {
		return nil, make([]byte, n)
	}
	p := scratchPool.Get().(*[]byte)
	return p, (*p)[:n]
}

// putScratch recycles a scratch buffer obtained from getScratch. A nil
// token (oversized transient buffer) is ignored.
func putScratch(p *[]byte) {
	if p != nil {
		scratchPool.Put(p)
	}
}
