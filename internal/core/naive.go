package core

import (
	"encoding/binary"
	"fmt"

	"hear/internal/keys"
	"hear/internal/prf"
)

// NaiveIntSum is the non-canceling variant of the integer SUM scheme shown
// in Figure 1 and discussed in §5.1.4: each rank adds only its own noise,
//
//	c_i[j] = x_i[j] + F(k_s_i + k_c + j)
//
// so the aggregate carries Σ_i F(k_s_i + k_c + j) and decryption must
// evaluate one PRF stream per rank — Θ(P) instead of Θ(1). Encryption is
// one PRF stream instead of two. The decrypting party must know every
// starting key, which is why the production scheme prefers canceling; this
// variant exists for the paper's ablation (it is what the intuitive Figure
// 1 presentation does) and for measuring the Θ(P) decryption wall.
type NaiveIntSum struct {
	width       int
	allStarting []uint64 // k_s_i for every rank, needed for Θ(P) decryption
}

// NewNaiveIntSum builds the naive scheme. allStartingKeys must hold every
// rank's starting key in rank order.
func NewNaiveIntSum(widthBits int, allStartingKeys []uint64) (*NaiveIntSum, error) {
	if err := checkWidth("core: naive-int-sum", widthBits); err != nil {
		return nil, err
	}
	if len(allStartingKeys) == 0 {
		return nil, fmt.Errorf("core: naive-int-sum: no starting keys")
	}
	ks := make([]uint64, len(allStartingKeys))
	copy(ks, allStartingKeys)
	return &NaiveIntSum{width: widthBits / 8, allStarting: ks}, nil
}

func (s *NaiveIntSum) Name() string {
	if s.width == 4 {
		return "naive-int32-sum"
	}
	return "naive-int64-sum"
}

func (s *NaiveIntSum) PlainSize() int  { return s.width }
func (s *NaiveIntSum) CipherSize() int { return s.width }

func (s *NaiveIntSum) Encrypt(st *keys.RankState, plain, cipher []byte, n int) error {
	return s.EncryptAt(st, plain, cipher, n, 0)
}

func (s *NaiveIntSum) EncryptAt(st *keys.RankState, plain, cipher []byte, n, off int) error {
	if err := checkSpan(s.Name(), plain, cipher, n, off, s.width, s.width); err != nil {
		return err
	}
	if !FusionEnabled() {
		return s.encryptTwoPassAt(st, plain, cipher, n, off)
	}
	nb := n * s.width
	ns := openNoise(st.Enc, st.SelfNonce(), uint64(off)*uint64(s.width), nb)
	defer ns.close()
	for done := 0; done < nb; done += prf.BlockBytes {
		b := ns.next()
		m := blockLen(nb, done)
		if s.width == 4 {
			for o := 0; o < m; o += 4 {
				binary.LittleEndian.PutUint32(cipher[done+o:],
					binary.LittleEndian.Uint32(plain[done+o:])+binary.LittleEndian.Uint32(b[o:]))
			}
		} else {
			for o := 0; o < m; o += 8 {
				binary.LittleEndian.PutUint64(cipher[done+o:],
					binary.LittleEndian.Uint64(plain[done+o:])+binary.LittleEndian.Uint64(b[o:]))
			}
		}
	}
	return nil
}

// encryptTwoPassAt is the reference kernel (full plane, second pass).
func (s *NaiveIntSum) encryptTwoPassAt(st *keys.RankState, plain, cipher []byte, n, off int) error {
	nb := n * s.width
	p1, ks := getScratch(nb)
	defer putScratch(p1)
	st.Enc.Keystream(ks, st.SelfNonce(), uint64(off)*uint64(s.width))
	if s.width == 4 {
		for j := 0; j < n; j++ {
			o := j * 4
			binary.LittleEndian.PutUint32(cipher[o:],
				binary.LittleEndian.Uint32(plain[o:])+binary.LittleEndian.Uint32(ks[o:]))
		}
		return nil
	}
	for j := 0; j < n; j++ {
		o := j * 8
		binary.LittleEndian.PutUint64(cipher[o:],
			binary.LittleEndian.Uint64(plain[o:])+binary.LittleEndian.Uint64(ks[o:]))
	}
	return nil
}

func (s *NaiveIntSum) Decrypt(st *keys.RankState, cipher, plain []byte, n int) error {
	return s.DecryptAt(st, cipher, plain, n, 0)
}

func (s *NaiveIntSum) DecryptAt(st *keys.RankState, cipher, plain []byte, n, off int) error {
	if err := checkSpan(s.Name(), plain, cipher, n, off, s.width, s.width); err != nil {
		return err
	}
	if len(s.allStarting) != st.Size {
		return fmt.Errorf("%s: scheme built for %d ranks, communicator has %d", s.Name(), len(s.allStarting), st.Size)
	}
	if !FusionEnabled() {
		return s.decryptTwoPassAt(st, cipher, plain, n, off)
	}
	nb := n * s.width
	copy(plain[:nb], cipher[:nb])
	// Θ(P): subtract every rank's noise stream, each fused block-by-block
	// (one pooled stream, re-opened per rank).
	ns := openNoise(st.Enc, s.allStarting[0]+st.Collective(), uint64(off)*uint64(s.width), nb)
	defer ns.close()
	for i, k := range s.allStarting {
		if i > 0 {
			ns.open(st.Enc, k+st.Collective(), uint64(off)*uint64(s.width), nb)
		}
		for done := 0; done < nb; done += prf.BlockBytes {
			b := ns.next()
			m := blockLen(nb, done)
			if s.width == 4 {
				for o := 0; o < m; o += 4 {
					binary.LittleEndian.PutUint32(plain[done+o:],
						binary.LittleEndian.Uint32(plain[done+o:])-binary.LittleEndian.Uint32(b[o:]))
				}
			} else {
				for o := 0; o < m; o += 8 {
					binary.LittleEndian.PutUint64(plain[done+o:],
						binary.LittleEndian.Uint64(plain[done+o:])-binary.LittleEndian.Uint64(b[o:]))
				}
			}
		}
	}
	return nil
}

// decryptTwoPassAt is the reference kernel (full plane per rank, second
// pass per rank).
func (s *NaiveIntSum) decryptTwoPassAt(st *keys.RankState, cipher, plain []byte, n, off int) error {
	nb := n * s.width
	p1, ks := getScratch(nb)
	defer putScratch(p1)
	copy(plain[:nb], cipher[:nb])
	// Θ(P): subtract every rank's noise stream.
	for _, k := range s.allStarting {
		st.Enc.Keystream(ks, k+st.Collective(), uint64(off)*uint64(s.width))
		if s.width == 4 {
			for j := 0; j < n; j++ {
				o := j * 4
				binary.LittleEndian.PutUint32(plain[o:],
					binary.LittleEndian.Uint32(plain[o:])-binary.LittleEndian.Uint32(ks[o:]))
			}
		} else {
			for j := 0; j < n; j++ {
				o := j * 8
				binary.LittleEndian.PutUint64(plain[o:],
					binary.LittleEndian.Uint64(plain[o:])-binary.LittleEndian.Uint64(ks[o:]))
			}
		}
	}
	return nil
}

func (s *NaiveIntSum) Reduce(dst, src []byte, n int) {
	if s.width == 4 {
		for j := 0; j < n; j++ {
			o := j * 4
			binary.LittleEndian.PutUint32(dst[o:],
				binary.LittleEndian.Uint32(dst[o:])+binary.LittleEndian.Uint32(src[o:]))
		}
		return
	}
	for j := 0; j < n; j++ {
		o := j * 8
		binary.LittleEndian.PutUint64(dst[o:],
			binary.LittleEndian.Uint64(dst[o:])+binary.LittleEndian.Uint64(src[o:]))
	}
}
