package core

import (
	"fmt"

	"hear/internal/core/fold"
	"hear/internal/keys"
	"hear/internal/prf"
	"hear/internal/ring"
)

// IntProd implements the integer multiplication scheme of §5.1.2 (eq. 2)
// on the multiplicative structure of Z_{2^width} with the subgroup
// generator g = 3:
//
//	c_i[j] = x_i[j] · g^{F(k_s_i+k_c+j)}                          i = P−1
//	c_i[j] = x_i[j] · g^{F(k_s_i+k_c+j) − F(k_s_{i+1}+k_c+j)}     otherwise
//
// The exponents telescope under multiplication, leaving g^{F(k_s_0+k_c+j)}
// on the aggregate; decryption multiplies by the modular inverse. Every
// power of g is odd and hence a unit, so multiplying by the noise is a
// bijection of Z_{2^b} — the scheme is lossless for *all* plaintexts, even
// though Z*_{2^b} is not cyclic and g only generates the order-2^{b−2}
// subgroup (noted in DESIGN.md; the paper's Table 3 footnote makes the
// same caveat). Modular division rides the scheme by multiplying with the
// modular inverse of the divisor.
//
// Encryption and decryption each cost one O(log d) modular exponentiation
// per element (§5.1.4), implemented with the 2^4-ary method.
type IntProd struct {
	width int
	name  string
	r     ring.Z2
	fold  fold.Func
}

// NewIntProd returns the PROD scheme for 8-, 16-, 32-, or 64-bit integers.
func NewIntProd(widthBits int) (*IntProd, error) {
	if err := checkWidth("core: int-prod", widthBits); err != nil {
		return nil, err
	}
	return &IntProd{
		width: widthBits / 8,
		name:  fmt.Sprintf("int%d-prod", widthBits),
		r:     ring.NewZ2(uint(widthBits)),
		fold:  fold.Prod(widthBits),
	}, nil
}

func (s *IntProd) Name() string { return s.name }

func (s *IntProd) PlainSize() int  { return s.width }
func (s *IntProd) CipherSize() int { return s.width }

// noiseExp extracts the exponent for element j from keystream ks. The
// exponent is reduced modulo the subgroup order implicitly by Pow.
func (s *IntProd) noiseExp(ks []byte, j int) uint64 {
	return intWire{size: s.width}.load(ks, j)
}

func (s *IntProd) load(buf []byte, j int) uint64 {
	return intWire{size: s.width}.load(buf, j)
}

func (s *IntProd) store(buf []byte, j int, v uint64) {
	intWire{size: s.width}.store(buf, j, v)
}

func (s *IntProd) Encrypt(st *keys.RankState, plain, cipher []byte, n int) error {
	return s.EncryptAt(st, plain, cipher, n, 0)
}

func (s *IntProd) EncryptAt(st *keys.RankState, plain, cipher []byte, n, off int) error {
	if err := checkSpan(s.Name(), plain, cipher, n, off, s.width, s.width); err != nil {
		return err
	}
	if !FusionEnabled() {
		return s.encryptTwoPassAt(st, plain, cipher, n, off)
	}
	nb := n * s.width
	byteOff := uint64(off) * uint64(s.width)
	cancel := !st.IsLast()
	ns1 := openNoise(st.Enc, st.SelfNonce(), byteOff, nb)
	defer ns1.close()
	var ns2 *noiseStream
	if cancel {
		ns2 = openNoise(st.Enc, st.NextNonce(), byteOff, nb)
		defer ns2.close()
	}
	for done := 0; done < nb; done += prf.BlockBytes {
		b1 := ns1.next()
		var b2 *[prf.BlockBytes]byte
		if cancel {
			b2 = ns2.next()
		}
		m := blockLen(nb, done)
		for o := 0; o < m; o += s.width {
			j := (done + o) / s.width
			noise := s.r.PowG(s.noiseExp(b1[:], o/s.width))
			if cancel {
				noise = s.r.Mul(noise, s.r.InvPowG(s.noiseExp(b2[:], o/s.width)))
			}
			s.store(cipher, j, s.r.Mul(s.load(plain, j), noise))
		}
	}
	return nil
}

// encryptTwoPassAt is the reference kernel (full plane, second pass).
func (s *IntProd) encryptTwoPassAt(st *keys.RankState, plain, cipher []byte, n, off int) error {
	nb := n * s.width
	byteOff := uint64(off) * uint64(s.width)
	p1, ks1 := getScratch(nb)
	defer putScratch(p1)
	st.Enc.Keystream(ks1, st.SelfNonce(), byteOff)
	cancel := !st.IsLast()
	var ks2 []byte
	if cancel {
		p2, b := getScratch(nb)
		defer putScratch(p2)
		ks2 = b
		st.Enc.Keystream(ks2, st.NextNonce(), byteOff)
	}
	for j := 0; j < n; j++ {
		noise := s.r.PowG(s.noiseExp(ks1, j))
		if cancel {
			noise = s.r.Mul(noise, s.r.InvPowG(s.noiseExp(ks2, j)))
		}
		s.store(cipher, j, s.r.Mul(s.load(plain, j), noise))
	}
	return nil
}

func (s *IntProd) Decrypt(st *keys.RankState, cipher, plain []byte, n int) error {
	return s.DecryptAt(st, cipher, plain, n, 0)
}

func (s *IntProd) DecryptAt(st *keys.RankState, cipher, plain []byte, n, off int) error {
	if err := checkSpan(s.Name(), plain, cipher, n, off, s.width, s.width); err != nil {
		return err
	}
	if !FusionEnabled() {
		return s.decryptTwoPassAt(st, cipher, plain, n, off)
	}
	nb := n * s.width
	ns := openNoise(st.Enc, st.RootNonce(), uint64(off)*uint64(s.width), nb)
	defer ns.close()
	for done := 0; done < nb; done += prf.BlockBytes {
		b1 := ns.next()
		m := blockLen(nb, done)
		for o := 0; o < m; o += s.width {
			j := (done + o) / s.width
			s.store(plain, j, s.r.Mul(s.load(cipher, j), s.r.InvPowG(s.noiseExp(b1[:], o/s.width))))
		}
	}
	return nil
}

// decryptTwoPassAt is the reference kernel (full plane, second pass).
func (s *IntProd) decryptTwoPassAt(st *keys.RankState, cipher, plain []byte, n, off int) error {
	nb := n * s.width
	p1, ks1 := getScratch(nb)
	defer putScratch(p1)
	st.Enc.Keystream(ks1, st.RootNonce(), uint64(off)*uint64(s.width))
	for j := 0; j < n; j++ {
		s.store(plain, j, s.r.Mul(s.load(cipher, j), s.r.InvPowG(s.noiseExp(ks1, j))))
	}
	return nil
}

// Reduce delegates to the shared keyless kernel (internal/core/fold).
func (s *IntProd) Reduce(dst, src []byte, n int) {
	s.fold(dst[:n*s.width], src[:n*s.width])
}
