// Package netsim models the scaling behaviour of Allreduce on an
// Aries-class interconnect (the paper's Piz Daint testbed) so that the
// 2–1152-rank experiments of Figures 7 and 8 can be regenerated without
// 32 Cray nodes. The model is LogGP-flavoured: per-hop latencies, per-rank
// injection rates, a per-node NIC ceiling, and a mild node-scaling penalty
// capturing the network noise the paper attributes its widening min/max
// ranges to.
//
// HEAR's costs are not modelled from first principles — they are *injected
// from measurements*: the benchmark driver first measures this build's
// encryption/decryption throughput and per-call latency (the same way the
// paper profiles libhear in §6) and feeds them in through HEARCosts. The
// model then answers "what would this HEAR do at scale" while the shape of
// the native curves comes from the interconnect parameters.
package netsim

import (
	"fmt"
	"math"
)

// Params describes the interconnect and host model.
type Params struct {
	// NICBandwidth is the per-node injection ceiling in bytes/s
	// (Aries: 100 Gbit/s = 12.5 GB/s).
	NICBandwidth float64
	// PerRankRate is the throughput one MPI process can drive through the
	// stack in bytes/s before NIC sharing binds (observed ~2 GB/s/rank on
	// the paper's Broadwell nodes at low PPN).
	PerRankRate float64
	// InterNodeLatency is one network hop in seconds (Aries ~1.3 µs).
	InterNodeLatency float64
	// IntraNodeLatency is a shared-memory exchange step in seconds.
	IntraNodeLatency float64
	// SwitchHopLatency is one INC switch traversal (wire + aggregation ALU)
	// in seconds — far below a full MPI software hop, which is what gives
	// INC its 3–18x latency advantage.
	SwitchHopLatency float64
	// NodeScalingPenalty is the fractional per-node-doubling throughput
	// loss beyond two nodes (contention/noise, ~4%/doubling on Piz Daint).
	NodeScalingPenalty float64
	// NoiseBase and NoiseGrowth bound the min/max latency spread: the
	// relative spread at P ranks is NoiseBase + NoiseGrowth·log2(P).
	NoiseBase   float64
	NoiseGrowth float64
}

// AriesDefaults returns parameters calibrated to the Piz Daint numbers the
// paper reports (11.1 GB/s/node native peak, ~1.5 µs two-rank latency).
func AriesDefaults() Params {
	return Params{
		NICBandwidth:       12.5e9,
		PerRankRate:        2.0e9,
		InterNodeLatency:   1.3e-6,
		IntraNodeLatency:   0.35e-6,
		SwitchHopLatency:   0.15e-6,
		NodeScalingPenalty: 0.045,
		NoiseBase:          0.08,
		NoiseGrowth:        0.06,
	}
}

// HEARCosts carries the measured HEAR overheads injected into the model.
type HEARCosts struct {
	// EncRate and DecRate are bytes/s of encryption and decryption on one
	// core, measured on the running build (Figure 5's quantities).
	EncRate float64
	DecRate float64
	// PerCallLatency is the fixed small-message overhead in seconds:
	// key progression + 16 B encrypt + decrypt (Figure 4's quantity).
	PerCallLatency float64
	// Inflation is ciphertext bytes per plaintext byte (1.0 for integers).
	Inflation float64
	// PipelineEfficiency is the measured end-to-end throughput ratio of the
	// pipelined HEAR data path relative to the native one at the optimal
	// block size (Figure 6's best point: ~0.85 in the paper). It folds in
	// every per-block cost — extra copies, pool management, the
	// non-overlapped crypto residue.
	PipelineEfficiency float64
}

// Validate rejects physically meaningless configurations.
func (h HEARCosts) Validate() error {
	if h.EncRate <= 0 || h.DecRate <= 0 {
		return fmt.Errorf("netsim: non-positive crypto rates")
	}
	if h.Inflation < 1 {
		return fmt.Errorf("netsim: inflation %g < 1", h.Inflation)
	}
	if h.PipelineEfficiency < 0 || h.PipelineEfficiency > 1 {
		return fmt.Errorf("netsim: pipeline efficiency %g outside [0,1]", h.PipelineEfficiency)
	}
	return nil
}

// Point is one (ranks, nodes) configuration on the Figure 7/8 x-axis.
type Point struct {
	Ranks int
	Nodes int
}

// PaperPoints returns the x-axis of Figures 7/8: PPN scaling on two nodes
// (2–72 ranks), then node scaling at 36 PPN (144–1152 ranks).
func PaperPoints() []Point {
	return []Point{
		{2, 2}, {4, 2}, {8, 2}, {36, 2}, {72, 2},
		{144, 4}, {288, 8}, {576, 16}, {1152, 32},
	}
}

// nativeNodeThroughput returns the native per-node Allreduce throughput in
// bytes/s for a bandwidth-bound message.
func (p Params) nativeNodeThroughput(ranks, nodes int) float64 {
	ppn := float64(ranks) / float64(nodes)
	// Per-node rate grows with PPN until the NIC ceiling binds.
	raw := math.Min(ppn*p.PerRankRate, p.NICBandwidth*0.89) // protocol efficiency
	// Ring allreduce moves 2(P-1)/P of the data; for small P that shows.
	algo := 2 * float64(ranks-1) / float64(ranks) / 2 // normalized to large-P limit 1.0
	if ranks == 1 {
		algo = 1
	}
	raw *= algo
	// Node-scaling contention penalty beyond two nodes.
	if nodes > 2 {
		raw *= 1 - p.NodeScalingPenalty*math.Log2(float64(nodes)/2)
	}
	return raw
}

// ThroughputPerNode returns the modelled per-node throughput in bytes/s
// for the native runtime and for HEAR (nil HEARCosts means native only;
// the second return is then 0).
func (p Params) ThroughputPerNode(h *HEARCosts, ranks, nodes, msgBytes int) (native, hear float64, err error) {
	if ranks < 1 || nodes < 1 || ranks < nodes {
		return 0, 0, fmt.Errorf("netsim: bad configuration ranks=%d nodes=%d", ranks, nodes)
	}
	if msgBytes <= 0 {
		return 0, 0, fmt.Errorf("netsim: non-positive message size")
	}
	native = p.nativeNodeThroughput(ranks, nodes)
	if h == nil {
		return native, 0, nil
	}
	if err := h.Validate(); err != nil {
		return 0, 0, err
	}
	// HEAR's per-rank rate is the native rate scaled by the measured
	// pipeline efficiency and the ciphertext inflation, capped by the
	// serial encrypt+decrypt rate one core can sustain when the link would
	// otherwise outrun the crypto.
	ppn := float64(ranks) / float64(nodes)
	perRankNative := native / ppn
	cryptoRate := 1 / (1/h.EncRate + 1/h.DecRate)
	hearPerRank := math.Min(h.PipelineEfficiency*perRankNative/h.Inflation, cryptoRate)
	hear = hearPerRank * ppn
	return native, hear, nil
}

// LatencyStats is the (min, mean, max) latency triple the paper's Figure 8
// plots as line + band.
type LatencyStats struct {
	Min, Mean, Max float64
}

// Latency returns the modelled small-message Allreduce latency for native
// and HEAR. The band models the network noise growth the paper observes at
// scale ("as the number of ranks increases, the noise within the network
// grows considerably").
func (p Params) Latency(h *HEARCosts, ranks, nodes, msgBytes int) (native, hear LatencyStats, err error) {
	if ranks < 1 || nodes < 1 || ranks < nodes {
		return native, hear, fmt.Errorf("netsim: bad configuration ranks=%d nodes=%d", ranks, nodes)
	}
	// Recursive doubling: log2(P) exchange steps. Steps within a node cost
	// the shared-memory latency; steps that cross nodes cost a network hop.
	ppn := ranks / nodes
	if ppn < 1 {
		ppn = 1
	}
	intraSteps := int(math.Ceil(math.Log2(float64(ppn))))
	totalSteps := int(math.Ceil(math.Log2(float64(ranks))))
	if ranks == 1 {
		intraSteps, totalSteps = 0, 0
	}
	interSteps := totalSteps - intraSteps
	if interSteps < 0 {
		interSteps = 0
	}
	mean := float64(intraSteps)*p.IntraNodeLatency + float64(interSteps)*p.InterNodeLatency
	if mean == 0 {
		mean = p.IntraNodeLatency // self-allreduce floor
	}
	// Serialization of the payload itself (16 B is negligible; kept for
	// generality).
	mean += float64(msgBytes) / p.PerRankRate

	spread := p.NoiseBase
	if ranks > 1 {
		spread += p.NoiseGrowth * math.Log2(float64(ranks))
	}
	native = LatencyStats{Min: mean * (1 - spread/2), Mean: mean, Max: mean * (1 + spread)}
	if h == nil {
		return native, LatencyStats{}, nil
	}
	if err := h.Validate(); err != nil {
		return native, hear, err
	}
	hm := mean + h.PerCallLatency
	hear = LatencyStats{Min: hm * (1 - spread/2), Mean: hm, Max: hm * (1 + spread)}
	return native, hear, nil
}

// INCLatency models an in-network tree aggregation of a small message:
// up and down through depth switch hops. It quantifies the 3–18x latency
// advantage the paper cites as INC's motivation.
func (p Params) INCLatency(ranks, radix, msgBytes int) (float64, error) {
	if ranks < 1 || radix < 2 {
		return 0, fmt.Errorf("netsim: bad INC configuration")
	}
	depth := 1
	for n := ranks; n > radix; n = (n + radix - 1) / radix {
		depth++
	}
	return 2*float64(depth)*p.SwitchHopLatency + float64(msgBytes)/p.NICBandwidth, nil
}
