package netsim

import (
	"testing"
)

func defaultCosts() *HEARCosts {
	return &HEARCosts{
		EncRate:            9e9,
		DecRate:            18e9,
		PerCallLatency:     0.4e-6,
		Inflation:          1.0,
		PipelineEfficiency: 0.85,
	}
}

func TestValidateHEARCosts(t *testing.T) {
	bad := []HEARCosts{
		{EncRate: 0, DecRate: 1, Inflation: 1},
		{EncRate: 1, DecRate: 1, Inflation: 0.5},
		{EncRate: 1, DecRate: 1, Inflation: 1, PipelineEfficiency: 1.5},
	}
	for i, h := range bad {
		if err := h.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if err := defaultCosts().Validate(); err != nil {
		t.Errorf("good costs rejected: %v", err)
	}
}

func TestThroughputRejectsBadConfigs(t *testing.T) {
	p := AriesDefaults()
	if _, _, err := p.ThroughputPerNode(nil, 0, 1, 1024); err == nil {
		t.Error("0 ranks accepted")
	}
	if _, _, err := p.ThroughputPerNode(nil, 2, 4, 1024); err == nil {
		t.Error("ranks < nodes accepted")
	}
	if _, _, err := p.ThroughputPerNode(nil, 4, 2, 0); err == nil {
		t.Error("zero message accepted")
	}
}

// Figure 7 shape: native throughput per node rises with PPN on two nodes,
// peaks near the paper's 11.1 GB/s, then declines moderately with node
// count; HEAR tracks native at roughly 80%.
func TestFigure7Shape(t *testing.T) {
	p := AriesDefaults()
	h := defaultCosts()
	var prev float64
	var peak float64
	points := PaperPoints()
	ratios := make([]float64, 0, len(points))
	for i, pt := range points {
		native, hear, err := p.ThroughputPerNode(h, pt.Ranks, pt.Nodes, 16<<20)
		if err != nil {
			t.Fatal(err)
		}
		if pt.Nodes == 2 && i > 0 && native < prev-1e-9 {
			t.Errorf("PPN section not monotone: %v: %.2f after %.2f GB/s", pt, native/1e9, prev/1e9)
		}
		prev = native
		if native > peak {
			peak = native
		}
		ratios = append(ratios, hear/native)
	}
	if peak < 10e9 || peak > 12.5e9 {
		t.Errorf("native peak %.2f GB/s, paper reports ~11.1", peak/1e9)
	}
	// Node scaling declines.
	nFirst, _, _ := p.ThroughputPerNode(nil, 144, 4, 16<<20)
	nLast, _, _ := p.ThroughputPerNode(nil, 1152, 32, 16<<20)
	if nLast >= nFirst {
		t.Errorf("node scaling does not decline: %g vs %g", nFirst, nLast)
	}
	// HEAR ≈ 80% of native everywhere (paper: "consistently achieving
	// around 80%").
	for i, r := range ratios {
		if r < 0.7 || r > 0.98 {
			t.Errorf("point %v: HEAR/native = %.2f outside [0.7, 0.98]", points[i], r)
		}
	}
}

// Figure 8 shape: latency grows with rank count, HEAR's overhead is small
// and shrinks relative to the growing noise band.
func TestFigure8Shape(t *testing.T) {
	p := AriesDefaults()
	h := defaultCosts()
	var prevMean float64
	for i, pt := range PaperPoints() {
		native, hear, err := p.Latency(h, pt.Ranks, pt.Nodes, 16)
		if err != nil {
			t.Fatal(err)
		}
		if native.Mean <= 0 || native.Min > native.Mean || native.Mean > native.Max {
			t.Fatalf("%v: malformed stats %+v", pt, native)
		}
		if i > 0 && native.Mean < prevMean-1e-12 {
			t.Errorf("latency not monotone at %v", pt)
		}
		prevMean = native.Mean
		if hear.Mean <= native.Mean {
			t.Errorf("%v: HEAR latency %.2g not above native %.2g", pt, hear.Mean, native.Mean)
		}
		// At scale the HEAR mean must sit inside the native noise band —
		// the paper's "overhead is small enough to hide within the network
		// noise for a larger number of ranks".
		if pt.Ranks >= 144 && hear.Mean > native.Max {
			t.Errorf("%v: HEAR mean %.3g µs above native max %.3g µs", pt, hear.Mean*1e6, native.Max*1e6)
		}
	}
	// Two-rank latency should be in the low microseconds like the paper's.
	native, _, _ := p.Latency(nil, 2, 2, 16)
	if native.Mean < 0.5e-6 || native.Mean > 5e-6 {
		t.Errorf("2-rank latency %.2g s implausible for Aries", native.Mean)
	}
}

func TestLatencyRejectsBadConfigs(t *testing.T) {
	p := AriesDefaults()
	if _, _, err := p.Latency(nil, 0, 1, 16); err == nil {
		t.Error("0 ranks accepted")
	}
	if _, _, err := p.Latency(nil, 2, 4, 16); err == nil {
		t.Error("ranks < nodes accepted")
	}
}

// INC motivation: tree aggregation beats host-based allreduce latency by
// the 3–18x the paper cites.
func TestINCLatencyAdvantage(t *testing.T) {
	p := AriesDefaults()
	for _, ranks := range []int{64, 256, 1024} {
		incLat, err := p.INCLatency(ranks, 16, 16)
		if err != nil {
			t.Fatal(err)
		}
		host, _, err := p.Latency(nil, ranks, ranks/32, 16)
		if err != nil {
			t.Fatal(err)
		}
		speedup := host.Mean / incLat
		if speedup < 2 || speedup > 30 {
			t.Errorf("ranks=%d: INC speedup %.1fx outside the paper's 3-18x ballpark", ranks, speedup)
		}
	}
}

func TestINCLatencyValidation(t *testing.T) {
	p := AriesDefaults()
	if _, err := p.INCLatency(0, 4, 16); err == nil {
		t.Error("0 ranks accepted")
	}
	if _, err := p.INCLatency(8, 1, 16); err == nil {
		t.Error("radix 1 accepted")
	}
}

func TestSingleRankDegenerate(t *testing.T) {
	p := AriesDefaults()
	native, hear, err := p.ThroughputPerNode(defaultCosts(), 1, 1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if native <= 0 || hear <= 0 {
		t.Error("degenerate config produced non-positive throughput")
	}
	nl, _, err := p.Latency(defaultCosts(), 1, 1, 16)
	if err != nil || nl.Mean <= 0 {
		t.Errorf("1-rank latency: %v %+v", err, nl)
	}
}

func TestPaperPointsLayout(t *testing.T) {
	pts := PaperPoints()
	if len(pts) != 9 {
		t.Fatalf("%d points, want 9", len(pts))
	}
	if pts[0] != (Point{2, 2}) || pts[len(pts)-1] != (Point{1152, 32}) {
		t.Errorf("endpoints wrong: %v ... %v", pts[0], pts[len(pts)-1])
	}
	for _, pt := range pts[5:] {
		if pt.Ranks/pt.Nodes != 36 {
			t.Errorf("node-scaling point %v is not 36 PPN", pt)
		}
	}
}
