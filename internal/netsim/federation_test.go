package netsim

import (
	"math"
	"testing"
)

func TestFederationFlatEquivalence(t *testing.T) {
	p := AriesDefaults()
	const ranks, msg = 1024, 8192
	s, err := p.Federation(ranks, ranks, 1, msg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Levels != 1 || len(s.Gateways) != 1 || s.Gateways[0] != 1 || s.FanIn[0] != ranks {
		t.Fatalf("flat tree shape: %+v", s)
	}
	// One level, fan-in = ranks: exactly the hand-computed round trip.
	lane := float64(ranks) * float64(msg)
	want := 2 * (p.InterNodeLatency + lane/p.NICBandwidth + lane/p.PerRankRate)
	if math.Abs(s.Latency-want) > 1e-12 {
		t.Fatalf("flat latency %g, want %g", s.Latency, want)
	}
}

func TestFederationTreeShape(t *testing.T) {
	p := AriesDefaults()
	s, err := p.Federation(1_000_000, 100, 3, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if s.Levels != 3 {
		t.Fatalf("1M clients / cohort 100 needs %d levels, want 3", s.Levels)
	}
	wantGW := []int{10_000, 100, 1}
	for i, g := range s.Gateways {
		if g != wantGW[i] {
			t.Fatalf("gateways per level %v, want %v", s.Gateways, wantGW)
		}
		if s.FanIn[i] != 100 {
			t.Fatalf("level %d fan-in %d, want 100", i, s.FanIn[i])
		}
	}
}

func TestFederationExactSmallCase(t *testing.T) {
	p := Params{NICBandwidth: 1e9, PerRankRate: 1e9, InterNodeLatency: 1e-6}
	// 4 clients, cohorts of 2: two leaf gateways then one root, fan-in 2
	// at both levels.
	s, err := p.Federation(4, 2, 2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	perLevel := 2 * (1e-6 + 2000/1e9 + 2000/1e9)
	if want := 2 * perLevel; math.Abs(s.Latency-want) > 1e-12 {
		t.Fatalf("latency %g, want %g", s.Latency, want)
	}
	if want := 1 / perLevel; math.Abs(s.RoundsPerSec-want) > 1e-6 {
		t.Fatalf("rounds/s %g, want %g", s.RoundsPerSec, want)
	}
	if want := 4 / perLevel; math.Abs(s.ClientsPerSec-want) > 1e-3 {
		t.Fatalf("clients/s %g, want %g", s.ClientsPerSec, want)
	}
}

// TestFederationBeatsFlatAtScale pins the reason the subsystem exists: at
// a million clients, a 3-tier cascade's worst per-box fan-in is 100, so
// both its round latency and its sustained intake beat one flat gateway
// serializing a million uploads through one NIC.
func TestFederationBeatsFlatAtScale(t *testing.T) {
	p := AriesDefaults()
	const ranks, msg = 1_000_000, 1024
	flat, err := p.Federation(ranks, ranks, 1, msg)
	if err != nil {
		t.Fatal(err)
	}
	fed, err := p.Federation(ranks, 100, 3, msg)
	if err != nil {
		t.Fatal(err)
	}
	if fed.Latency >= flat.Latency {
		t.Fatalf("federated latency %g >= flat %g", fed.Latency, flat.Latency)
	}
	if fed.ClientsPerSec <= flat.ClientsPerSec {
		t.Fatalf("federated intake %g <= flat %g", fed.ClientsPerSec, flat.ClientsPerSec)
	}
	// A shallower tree with huge cohorts sits between the two: its root
	// still serializes 10k uploads.
	mid, err := p.Federation(ranks, 10_000, 2, msg)
	if err != nil {
		t.Fatal(err)
	}
	if !(fed.Latency < mid.Latency && mid.Latency < flat.Latency) {
		t.Fatalf("latency ordering violated: 3-tier %g, 2-tier %g, flat %g",
			fed.Latency, mid.Latency, flat.Latency)
	}
}

func TestFederationErrors(t *testing.T) {
	p := AriesDefaults()
	cases := []struct {
		name                           string
		ranks, cohort, tiers, msgBytes int
	}{
		{"zero-ranks", 0, 2, 1, 16},
		{"cohort-too-small", 8, 1, 3, 16},
		{"zero-tiers", 8, 2, 0, 16},
		{"zero-msg", 8, 2, 3, 0},
		{"tree-does-not-reach-root", 1 << 20, 2, 3, 16},
	}
	for _, tc := range cases {
		if _, err := p.Federation(tc.ranks, tc.cohort, tc.tiers, tc.msgBytes); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// One client degenerates to a single root, whatever the tier budget.
	s, err := p.Federation(1, 2, 1, 16)
	if err != nil || s.Levels != 1 || s.Gateways[0] != 1 {
		t.Fatalf("single-rank federation: %+v, %v", s, err)
	}
}
