package netsim

import (
	"testing"
)

func TestClusterValidate(t *testing.T) {
	if err := (Cluster{}).Validate(); err == nil {
		t.Error("zero cluster accepted")
	}
	if err := AriesCluster(2, 4).Validate(); err != nil {
		t.Errorf("valid cluster rejected: %v", err)
	}
	cl := AriesCluster(2, 2)
	if _, err := cl.SimulateAllreduce(AlgoRingDES, 0, 0); err == nil {
		t.Error("zero message accepted")
	}
	if _, err := cl.SimulateAllreduce(Algo(99), 64, 0); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestDESSingleRankIsFree(t *testing.T) {
	cl := AriesCluster(1, 1)
	d, err := cl.SimulateAllreduce(AlgoRingDES, 1024, 0)
	if err != nil || d != 0 {
		t.Errorf("1-rank allreduce took %g (%v)", d, err)
	}
}

func TestDESMonotoneInMessageSize(t *testing.T) {
	cl := AriesCluster(4, 8)
	for _, algo := range []Algo{AlgoRingDES, AlgoRecDoublingDES, AlgoTreeDES} {
		prev := 0.0
		for _, m := range []int{1 << 10, 1 << 14, 1 << 18, 1 << 22} {
			d, err := cl.SimulateAllreduce(algo, m, 0)
			if err != nil {
				t.Fatal(err)
			}
			if d <= prev {
				t.Errorf("%v: %d B took %g, not above %g", algo, m, d, prev)
			}
			prev = d
		}
	}
}

// The textbook crossover: recursive doubling wins small messages (fewer
// rounds), the ring wins large ones (bandwidth-optimal chunks).
func TestDESAlgorithmCrossover(t *testing.T) {
	cl := AriesCluster(8, 4)
	smallRing, err := cl.SimulateAllreduce(AlgoRingDES, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	smallRD, err := cl.SimulateAllreduce(AlgoRecDoublingDES, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	if smallRD >= smallRing {
		t.Errorf("64 B: recursive doubling (%g) not faster than ring (%g)", smallRD, smallRing)
	}
	bigRing, err := cl.SimulateAllreduce(AlgoRingDES, 16<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	bigRD, err := cl.SimulateAllreduce(AlgoRecDoublingDES, 16<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if bigRing >= bigRD {
		t.Errorf("16 MiB: ring (%g) not faster than recursive doubling (%g)", bigRing, bigRD)
	}
}

func TestDESNonPowerOfTwoRanks(t *testing.T) {
	cl := AriesCluster(3, 5) // 15 ranks
	for _, algo := range []Algo{AlgoRingDES, AlgoRecDoublingDES, AlgoTreeDES} {
		if _, err := cl.SimulateAllreduce(algo, 1<<16, 0); err != nil {
			t.Errorf("%v failed on 15 ranks: %v", algo, err)
		}
	}
}

func TestDESStragglerSkewPropagates(t *testing.T) {
	cl := AriesCluster(4, 4)
	base, err := cl.SimulateAllreduce(AlgoRecDoublingDES, 1<<16, 0)
	if err != nil {
		t.Fatal(err)
	}
	skewed, err := cl.SimulateAllreduce(AlgoRecDoublingDES, 1<<16, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if skewed <= base {
		t.Errorf("start skew did not slow the collective: %g vs %g", skewed, base)
	}
}

// The DES must agree with the analytic model where their assumptions
// align: one rank per node (no intra-node shortcut, no NIC sharing), the
// bandwidth-bound ring, large messages. Multi-PPN configurations diverge
// by design — the DES resolves intra-node traffic the closed forms average
// into a per-node ceiling — so the cross-check pins the aligned regime.
func TestDESCrossValidatesAnalyticModel(t *testing.T) {
	p := AriesDefaults()
	const msg = 16 << 20
	for _, nodes := range []int{4, 8, 16} {
		analyticTP, _, err := p.ThroughputPerNode(nil, nodes, nodes, msg)
		if err != nil {
			t.Fatal(err)
		}
		cl := AriesCluster(nodes, 1)
		dur, err := cl.SimulateAllreduce(AlgoRingDES, msg, 0)
		if err != nil {
			t.Fatal(err)
		}
		// A ring allreduce moves 2(P−1)/P · M through each node.
		desTP := 2 * float64(msg) * float64(nodes-1) / float64(nodes) / dur
		ratio := desTP / analyticTP
		if ratio < 0.4 || ratio > 2.5 {
			t.Errorf("%d nodes: DES %.2f GB/s/node vs analytic %.2f GB/s/node (ratio %.2f)",
				nodes, desTP/1e9, analyticTP/1e9, ratio)
		}
	}
}

func TestHEARDESOverheadOrdering(t *testing.T) {
	cl := AriesCluster(2, 8)
	h := &HEARCosts{EncRate: 2e9, DecRate: 4e9, PerCallLatency: 4e-7, Inflation: 1, PipelineEfficiency: 0.85}
	native, err := cl.SimulateAllreduce(AlgoRingDES, 16<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	sync, err := cl.SimulateHEARAllreduce(AlgoRingDES, 16<<20, h, 0)
	if err != nil {
		t.Fatal(err)
	}
	piped, err := cl.SimulateHEARAllreduce(AlgoRingDES, 16<<20, h, 256<<10)
	if err != nil {
		t.Fatal(err)
	}
	if !(native < piped && piped < sync) {
		t.Errorf("expected native < pipelined < sync, got %g / %g / %g", native, piped, sync)
	}
	// Pipelining must recover most of the crypto cost (the Figure 6 story).
	if (sync-native)/(piped-native) < 1.5 {
		t.Errorf("pipelining recovered too little: sync-over %g, piped-over %g", sync-native, piped-native)
	}
}

func TestHEARDESValidation(t *testing.T) {
	cl := AriesCluster(2, 2)
	if _, err := cl.SimulateHEARAllreduce(AlgoRingDES, 1024, nil, 0); err == nil {
		t.Error("nil costs accepted")
	}
	bad := &HEARCosts{EncRate: -1, DecRate: 1, Inflation: 1}
	if _, err := cl.SimulateHEARAllreduce(AlgoRingDES, 1024, bad, 0); err == nil {
		t.Error("bad costs accepted")
	}
}

func TestDESInflationCostsBandwidth(t *testing.T) {
	cl := AriesCluster(2, 8)
	h1 := &HEARCosts{EncRate: 1e12, DecRate: 1e12, Inflation: 1.0, PipelineEfficiency: 0.85}
	h2 := &HEARCosts{EncRate: 1e12, DecRate: 1e12, Inflation: 1.25, PipelineEfficiency: 0.85}
	a, err := cl.SimulateHEARAllreduce(AlgoRingDES, 8<<20, h1, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cl.SimulateHEARAllreduce(AlgoRingDES, 8<<20, h2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b <= a {
		t.Errorf("γ-style inflation did not cost time: %g vs %g", b, a)
	}
}

func BenchmarkDESRing1152Ranks(b *testing.B) {
	cl := AriesCluster(32, 36)
	for i := 0; i < b.N; i++ {
		if _, err := cl.SimulateAllreduce(AlgoRingDES, 16<<20, 0); err != nil {
			b.Fatal(err)
		}
	}
}
