package netsim

import (
	"fmt"
	"math"
)

// Federation models hierarchical gateway federation (internal/aggsvc/
// federation): ranks clients hang off a tree of key-blind gateways, each
// gateway folds a cohort of at most cohortSize uploads and relays one
// partial aggregate upstream, and the root's global aggregate fans back
// down the same tree. The model answers the scaling question the flat
// gateway cannot: a single box serializes all N uploads through one NIC,
// while a federation serializes at most cohortSize per box per level —
// the same fan-in argument as the switch-tree INCLatency, but for the
// TCP gateway tier.

// FederationStats describes one modelled federated round.
type FederationStats struct {
	// Levels is the number of gateway tiers the tree actually needs
	// (leaf tier first in the per-level slices).
	Levels int
	// Gateways is the gateway count at each level; the last entry is 1,
	// the federation root.
	Gateways []int
	// FanIn is the maximum per-gateway fan-in at each level.
	FanIn []int
	// Latency is one whole round: every upload serialized and folded up
	// the tree, the global result fanned back down, in seconds.
	Latency float64
	// RoundsPerSec is the pipelined round rate, bound by the busiest
	// gateway's per-round service time.
	RoundsPerSec float64
	// ClientsPerSec and BytesPerSec are the aggregate intake at that rate.
	ClientsPerSec float64
	BytesPerSec   float64
}

// Federation sizes a gateway tree for ranks clients with per-round
// cohorts of at most cohortSize, refusing trees that need more than tiers
// gateway levels, and returns its modelled latency and throughput for
// msgBytes-sized sealed lanes.
func (p Params) Federation(ranks, cohortSize, tiers, msgBytes int) (FederationStats, error) {
	var s FederationStats
	if ranks < 1 {
		return s, fmt.Errorf("netsim: federation over %d ranks", ranks)
	}
	if cohortSize < 2 {
		return s, fmt.Errorf("netsim: federation cohort size %d < 2", cohortSize)
	}
	if tiers < 1 {
		return s, fmt.Errorf("netsim: federation with %d tiers", tiers)
	}
	if msgBytes <= 0 {
		return s, fmt.Errorf("netsim: non-positive message size")
	}

	// Build the tree level by level: each level packs the previous one
	// into balanced cohorts until a single root remains.
	for n := ranks; ; {
		gws := (n + cohortSize - 1) / cohortSize
		s.Gateways = append(s.Gateways, gws)
		s.FanIn = append(s.FanIn, (n+gws-1)/gws)
		s.Levels++
		if gws == 1 {
			break
		}
		if s.Levels == tiers {
			return FederationStats{}, fmt.Errorf(
				"netsim: %d tiers of %d-wide cohorts reach %.0f clients, not %d",
				tiers, cohortSize, math.Pow(float64(cohortSize), float64(tiers)), ranks)
		}
		n = gws
	}

	// Per level, one gateway's round costs a network hop, the fan-in's
	// serialization through its NIC, and the keyless fold (modelled at the
	// per-rank memory rate). The downlink mirrors the uplink: the global
	// lanes fan out over the same edges.
	var busiest float64
	for _, fanIn := range s.FanIn {
		lane := float64(fanIn) * float64(msgBytes)
		oneWay := p.InterNodeLatency + lane/p.NICBandwidth + lane/p.PerRankRate
		s.Latency += 2 * oneWay
		if 2*oneWay > busiest {
			busiest = 2 * oneWay
		}
	}
	// Levels overlap when rounds pipeline, so the sustained rate is set by
	// the busiest gateway, not the end-to-end latency.
	s.RoundsPerSec = 1 / busiest
	s.ClientsPerSec = float64(ranks) * s.RoundsPerSec
	s.BytesPerSec = float64(ranks) * float64(msgBytes) * s.RoundsPerSec
	return s, nil
}

// FederationLatency is the scalar convenience over Federation: the
// modelled end-to-end latency of one federated round, in seconds. A flat
// gateway is the tiers=1, cohortSize=ranks special case, which makes the
// federated-vs-flat comparison a two-call affair.
func (p Params) FederationLatency(ranks, cohortSize, tiers, msgBytes int) (float64, error) {
	s, err := p.Federation(ranks, cohortSize, tiers, msgBytes)
	if err != nil {
		return 0, err
	}
	return s.Latency, nil
}
