package netsim

import (
	"fmt"
	"math"
)

// This file is a discrete-event cross-check of the analytic model: instead
// of closed-form cost formulas, it evaluates the actual communication
// dependency graph of an Allreduce algorithm — every rank's per-step
// timeline, with message completion gated on both endpoints and on NIC
// sharing — and reports the completion time. The scaling figures use the
// analytic model (fast, smooth); the DES validates its shape and exposes
// algorithm-level effects (stragglers, contention) the formulas average
// away. Cross-validation lives in the tests and in `hearbench fig7`'s
// methodology notes.

// Algo selects the simulated Allreduce algorithm.
type Algo int

const (
	// AlgoRingDES is reduce-scatter + allgather around a ring.
	AlgoRingDES Algo = iota
	// AlgoRecDoublingDES is ⌈log₂P⌉ full-vector exchanges.
	AlgoRecDoublingDES
	// AlgoTreeDES is a binomial reduce followed by a binomial broadcast.
	AlgoTreeDES
)

func (a Algo) String() string {
	switch a {
	case AlgoRingDES:
		return "ring"
	case AlgoRecDoublingDES:
		return "recursive-doubling"
	case AlgoTreeDES:
		return "reduce-bcast"
	default:
		return fmt.Sprintf("algo(%d)", int(a))
	}
}

// Cluster is the simulated machine: ranks are block-distributed over
// nodes (ranks [i·PPN, (i+1)·PPN) on node i).
type Cluster struct {
	Nodes int
	PPN   int
	// NICBandwidth is a node's injection/ejection bandwidth in B/s, shared
	// by its ranks' concurrent inter-node flows.
	NICBandwidth float64
	// PerRankRate caps a single rank's injection processing (the MPI-stack
	// bound the analytic model carries as Params.PerRankRate), B/s.
	PerRankRate float64
	// MemBandwidth is the per-rank effective copy/reduce bandwidth for
	// intra-node transfers and fold operations, B/s.
	MemBandwidth float64
	// InterLatency / IntraLatency are per-message latencies in seconds.
	InterLatency float64
	IntraLatency float64
}

// AriesCluster mirrors AriesDefaults for the DES.
func AriesCluster(nodes, ppn int) Cluster {
	return Cluster{
		Nodes:        nodes,
		PPN:          ppn,
		NICBandwidth: 12.5e9,
		PerRankRate:  2.0e9,
		MemBandwidth: 4.0e9,
		InterLatency: 1.3e-6,
		IntraLatency: 0.35e-6,
	}
}

func (cl Cluster) ranks() int { return cl.Nodes * cl.PPN }

func (cl Cluster) node(rank int) int { return rank / cl.PPN }

// Validate rejects unusable clusters.
func (cl Cluster) Validate() error {
	if cl.Nodes < 1 || cl.PPN < 1 {
		return fmt.Errorf("netsim: cluster %d nodes × %d ppn invalid", cl.Nodes, cl.PPN)
	}
	if cl.NICBandwidth <= 0 || cl.MemBandwidth <= 0 || cl.PerRankRate <= 0 {
		return fmt.Errorf("netsim: non-positive bandwidths")
	}
	return nil
}

// transfer returns the time for one m-byte message between two ranks given
// how many inter-node flows currently share each NIC.
func (cl Cluster) transfer(from, to int, m int, interFlowsPerNode float64) float64 {
	if cl.node(from) == cl.node(to) {
		bw := math.Min(cl.MemBandwidth, cl.PerRankRate)
		return cl.IntraLatency + float64(m)/bw
	}
	bw := math.Min(cl.NICBandwidth/math.Max(1, interFlowsPerNode), cl.PerRankRate)
	return cl.InterLatency + float64(m)/bw
}

// foldTime is the cost of reducing m bytes into an accumulator.
func (cl Cluster) foldTime(m int) float64 { return float64(m) / cl.MemBandwidth }

// interFlows counts, for a round where every rank sends to a partner, the
// maximum number of inter-node flows leaving any single node.
func (cl Cluster) interFlows(partner func(r int) int) float64 {
	counts := make([]int, cl.Nodes)
	for r := 0; r < cl.ranks(); r++ {
		p := partner(r)
		if p >= 0 && p != r && cl.node(p) != cl.node(r) {
			counts[cl.node(r)]++
		}
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	return float64(max)
}

// SimulateAllreduce evaluates the dependency graph of one msgBytes
// Allreduce and returns its completion time (the slowest rank's finish).
// startSkew optionally staggers rank start times (seconds per rank index)
// to expose straggler amplification; pass 0 for a synchronized start.
func (cl Cluster) SimulateAllreduce(algo Algo, msgBytes int, startSkew float64) (float64, error) {
	if err := cl.Validate(); err != nil {
		return 0, err
	}
	if msgBytes <= 0 {
		return 0, fmt.Errorf("netsim: non-positive message")
	}
	p := cl.ranks()
	t := make([]float64, p)
	for r := range t {
		t[r] = startSkew * float64(r)
	}
	if p == 1 {
		return t[0], nil
	}
	switch algo {
	case AlgoRecDoublingDES:
		// Power-of-two participants only in the DES: fold the remainder
		// into neighbours first, like the runtime does.
		p2 := 1
		for p2*2 <= p {
			p2 *= 2
		}
		rem := p - p2
		if rem > 0 {
			flows := cl.interFlows(func(r int) int {
				if r < 2*rem && r%2 == 1 {
					return r - 1
				}
				return -1
			})
			for r := 0; r < 2*rem; r += 2 {
				arr := t[r+1] + cl.transfer(r+1, r, msgBytes, flows)
				t[r] = math.Max(t[r], arr) + cl.foldTime(msgBytes)
			}
		}
		active := make([]int, 0, p2)
		for r := 0; r < p; r++ {
			if r < 2*rem && r%2 == 1 {
				continue
			}
			active = append(active, r)
		}
		for mask := 1; mask < p2; mask <<= 1 {
			flows := cl.interFlows(func(r int) int {
				for i, a := range active {
					if a == r {
						return active[i^mask]
					}
				}
				return -1
			})
			next := make([]float64, len(active))
			for i, r := range active {
				partner := active[i^mask]
				arr := t[partner] + cl.transfer(partner, r, msgBytes, flows)
				next[i] = math.Max(t[r], arr) + cl.foldTime(msgBytes)
			}
			for i, r := range active {
				t[r] = next[i]
			}
		}
		if rem > 0 {
			flows := cl.interFlows(func(r int) int {
				if r < 2*rem && r%2 == 0 {
					return r + 1
				}
				return -1
			})
			for r := 0; r < 2*rem; r += 2 {
				t[r+1] = math.Max(t[r+1], t[r]+cl.transfer(r, r+1, msgBytes, flows))
			}
		}
	case AlgoRingDES:
		chunk := (msgBytes + p - 1) / p
		flows := cl.interFlows(func(r int) int { return (r + 1) % p })
		for s := 0; s < 2*(p-1); s++ {
			next := make([]float64, p)
			fold := 0.0
			if s < p-1 {
				fold = cl.foldTime(chunk)
			}
			for r := 0; r < p; r++ {
				left := (r - 1 + p) % p
				arr := t[left] + cl.transfer(left, r, chunk, flows)
				next[r] = math.Max(t[r], arr) + fold
			}
			t = next
		}
	case AlgoTreeDES:
		// Binomial reduce to 0 then binomial broadcast.
		for mask := 1; mask < p; mask <<= 1 {
			flows := cl.interFlows(func(r int) int {
				if r&mask != 0 && r^mask < r {
					return r - mask
				}
				return -1
			})
			for r := 0; r < p; r++ {
				if r&mask != 0 {
					continue
				}
				src := r + mask
				if src < p {
					arr := t[src] + cl.transfer(src, r, msgBytes, flows)
					t[r] = math.Max(t[r], arr) + cl.foldTime(msgBytes)
				}
			}
		}
		for mask := 1; mask < p; mask <<= 1 {
			// broadcast wave: parents at multiples of 2*mask send to +mask
			flows := cl.interFlows(func(r int) int {
				if r%(2*mask) == 0 && r+mask < p {
					return r + mask
				}
				return -1
			})
			for r := 0; r < p; r += 2 * mask {
				dst := r + mask
				if dst < p {
					t[dst] = math.Max(t[dst], t[r]+cl.transfer(r, dst, msgBytes, flows))
				}
			}
		}
	default:
		return 0, fmt.Errorf("netsim: unknown DES algorithm %v", algo)
	}
	max := 0.0
	for _, x := range t {
		if x > max {
			max = x
		}
	}
	return max, nil
}

// SimulateHEARAllreduce adds HEAR's measured crypto to the DES: every rank
// encrypts before the collective and decrypts after. With block pipelining
// the crypto overlaps communication, modeled as the larger of the two plus
// one block of non-overlapped ramp at each end.
func (cl Cluster) SimulateHEARAllreduce(algo Algo, msgBytes int, h *HEARCosts, pipelineBlock int) (float64, error) {
	if h == nil {
		return 0, fmt.Errorf("netsim: nil HEAR costs")
	}
	if err := h.Validate(); err != nil {
		return 0, err
	}
	comm, err := cl.SimulateAllreduce(algo, int(float64(msgBytes)*h.Inflation), 0)
	if err != nil {
		return 0, err
	}
	enc := float64(msgBytes) / h.EncRate
	dec := float64(msgBytes) / h.DecRate
	if pipelineBlock <= 0 || pipelineBlock >= msgBytes {
		// Synchronous: crypto serializes with communication.
		return enc + comm + dec, nil
	}
	// Pipelined: the steady state is bound by the slower of crypto and
	// communication; the ramp costs one block of crypto at each end.
	blockFrac := float64(pipelineBlock) / float64(msgBytes)
	steady := math.Max(comm, enc+dec)
	return steady + (enc+dec)*blockFrac + h.PerCallLatency, nil
}
