package ubench

import (
	"fmt"
	"testing"
	"time"

	"hear/internal/mpi"
)

const testTimeout = 60 * time.Second

func TestConfigValidate(t *testing.T) {
	if err := (Config{Iterations: 0}).Validate(); err == nil {
		t.Error("zero iterations accepted")
	}
	if err := (Config{Iterations: 1, Warmup: -1}).Validate(); err == nil {
		t.Error("negative warmup accepted")
	}
}

func TestDefaultConfigScalesWithSize(t *testing.T) {
	small := DefaultConfig(16)
	large := DefaultConfig(16 << 20)
	if small.Iterations <= large.Iterations {
		t.Errorf("small-message iterations (%d) should exceed large-message (%d)",
			small.Iterations, large.Iterations)
	}
}

func TestNewStats(t *testing.T) {
	if _, err := NewStats(nil); err == nil {
		t.Error("empty sample accepted")
	}
	s, err := NewStats([]time.Duration{3, 1, 2, 10})
	if err != nil {
		t.Fatal(err)
	}
	if s.Min != 1 || s.Max != 10 || s.Median != 3 || s.Samples != 4 {
		t.Errorf("stats = %+v", s)
	}
	if s.Mean != 4 {
		t.Errorf("mean = %v", s.Mean)
	}
}

func TestBandwidthGBs(t *testing.T) {
	if got := BandwidthGBs(time.Second, 1e9); got != 1.0 {
		t.Errorf("1 GB in 1 s = %g GB/s", got)
	}
	if got := BandwidthGBs(0, 100); got != 0 {
		t.Errorf("zero duration = %g", got)
	}
}

func TestSizeSweep(t *testing.T) {
	s := SizeSweep(4, 64)
	want := []int{4, 8, 16, 32, 64}
	if len(s) != len(want) {
		t.Fatalf("sweep = %v", s)
	}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("sweep = %v", s)
		}
	}
}

func TestLatencyPingPong(t *testing.T) {
	w := mpi.NewWorld(3) // rank 2 is a spectator like in OSU
	err := w.Run(testTimeout, func(c *mpi.Comm) error {
		st, err := Latency(c, 64, Config{Warmup: 5, Iterations: 50})
		if err != nil {
			return err
		}
		if c.Rank() == 0 {
			if st.Samples != 50 || st.Min <= 0 || st.Min > st.Median || st.Median > st.Max {
				return fmt.Errorf("malformed stats %+v", st)
			}
		} else if st.Samples != 0 {
			return fmt.Errorf("rank %d got stats", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLatencyNeedsTwoRanks(t *testing.T) {
	w := mpi.NewWorld(1)
	err := w.Run(testTimeout, func(c *mpi.Comm) error {
		if _, err := Latency(c, 8, Config{Iterations: 1}); err == nil {
			return fmt.Errorf("1-rank latency accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceDriver(t *testing.T) {
	w := mpi.NewWorld(4)
	err := w.Run(testTimeout, func(c *mpi.Comm) error {
		st, err := Allreduce(c, 1024, mpi.AlgoAuto, mpi.SumInt64, Config{Warmup: 3, Iterations: 20})
		if err != nil {
			return err
		}
		if st.Samples != 20 || st.Mean <= 0 {
			return fmt.Errorf("stats %+v", st)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceRejectsTinyMessage(t *testing.T) {
	w := mpi.NewWorld(2)
	err := w.Run(testTimeout, func(c *mpi.Comm) error {
		if _, err := Allreduce(c, 4, mpi.AlgoAuto, mpi.SumInt64, Config{Iterations: 1}); err == nil {
			return fmt.Errorf("4 B message accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceFuncCountsCalls(t *testing.T) {
	calls := 0
	st, err := AllreduceFunc(Config{Warmup: 2, Iterations: 5}, func() error {
		calls++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 7 {
		t.Errorf("calls = %d, want warmup+iters = 7", calls)
	}
	if st.Samples != 5 {
		t.Errorf("samples = %d", st.Samples)
	}
}

func TestAllreduceFuncPropagatesError(t *testing.T) {
	boom := fmt.Errorf("boom")
	if _, err := AllreduceFunc(Config{Iterations: 3}, func() error { return boom }); err == nil {
		t.Error("error swallowed")
	}
}
