// Package ubench is an OSU-micro-benchmark-style measurement library for
// the bundled runtime — the paper evaluates libhear with "OSU
// micro-benchmarks (v7.1)", and this package reproduces that harness's
// conventions: warmup iterations excluded from timing, per-iteration
// samples, min/mean/median/max/stddev statistics, and the standard
// latency / bandwidth / allreduce drivers.
package ubench

import (
	"fmt"
	"math"
	"sort"
	"time"

	"hear/internal/mpi"
)

// Config mirrors the OSU runtime options.
type Config struct {
	// Warmup iterations are executed but not timed (OSU default: 10–200
	// depending on size class).
	Warmup int
	// Iterations are timed (OSU default: 100–10000 depending on size).
	Iterations int
}

// DefaultConfig scales warmup/iterations by message size the way OSU does:
// many iterations for small messages, few for large.
func DefaultConfig(msgBytes int) Config {
	switch {
	case msgBytes <= 1<<13:
		return Config{Warmup: 200, Iterations: 10000}
	case msgBytes <= 1<<17:
		return Config{Warmup: 50, Iterations: 1000}
	default:
		return Config{Warmup: 10, Iterations: 100}
	}
}

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	if c.Iterations < 1 {
		return fmt.Errorf("ubench: iterations %d < 1", c.Iterations)
	}
	if c.Warmup < 0 {
		return fmt.Errorf("ubench: negative warmup")
	}
	return nil
}

// Stats summarizes per-iteration samples.
type Stats struct {
	Samples           int
	Min, Mean, Median time.Duration
	Max               time.Duration
	Stddev            time.Duration
}

// NewStats computes the summary of a non-empty sample set.
func NewStats(samples []time.Duration) (Stats, error) {
	if len(samples) == 0 {
		return Stats{}, fmt.Errorf("ubench: no samples")
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, s := range sorted {
		sum += s
	}
	mean := sum / time.Duration(len(sorted))
	var varSum float64
	for _, s := range sorted {
		d := float64(s - mean)
		varSum += d * d
	}
	return Stats{
		Samples: len(sorted),
		Min:     sorted[0],
		Mean:    mean,
		Median:  sorted[len(sorted)/2],
		Max:     sorted[len(sorted)-1],
		Stddev:  time.Duration(math.Sqrt(varSum / float64(len(sorted)))),
	}, nil
}

// BandwidthGBs converts a per-iteration duration into GB/s for msgBytes.
func BandwidthGBs(d time.Duration, msgBytes int) float64 {
	if d <= 0 {
		return 0
	}
	return float64(msgBytes) / d.Seconds() / 1e9
}

// Latency runs the osu_latency pattern between ranks 0 and 1: a ping-pong
// of msgBytes messages, reporting the one-way latency (half the round
// trip), measured on rank 0. Other ranks return a zero Stats.
func Latency(c *mpi.Comm, msgBytes int, cfg Config) (Stats, error) {
	if err := cfg.Validate(); err != nil {
		return Stats{}, err
	}
	if c.Size() < 2 {
		return Stats{}, fmt.Errorf("ubench: latency needs >= 2 ranks")
	}
	if c.Rank() > 1 {
		return Stats{}, nil // spectators, like OSU
	}
	buf := make([]byte, msgBytes)
	const tag = 77
	run := func() error {
		if c.Rank() == 0 {
			if err := c.Send(1, tag, buf); err != nil {
				return err
			}
			_, _, err := c.Recv(1, tag, buf)
			return err
		}
		if _, _, err := c.Recv(0, tag, buf); err != nil {
			return err
		}
		return c.Send(0, tag, buf)
	}
	for i := 0; i < cfg.Warmup; i++ {
		if err := run(); err != nil {
			return Stats{}, err
		}
	}
	samples := make([]time.Duration, 0, cfg.Iterations)
	for i := 0; i < cfg.Iterations; i++ {
		t0 := time.Now()
		if err := run(); err != nil {
			return Stats{}, err
		}
		samples = append(samples, time.Since(t0)/2) // one-way
	}
	if c.Rank() != 0 {
		return Stats{}, nil
	}
	return NewStats(samples)
}

// Allreduce runs the osu_allreduce pattern: timed collective iterations
// over the whole communicator. Every rank gets its own Stats (OSU reports
// the average across ranks; callers can combine).
func Allreduce(c *mpi.Comm, msgBytes int, algo mpi.Algorithm, op mpi.Op, cfg Config) (Stats, error) {
	if err := cfg.Validate(); err != nil {
		return Stats{}, err
	}
	if msgBytes < 8 {
		return Stats{}, fmt.Errorf("ubench: message %d B below one element", msgBytes)
	}
	buf := make([]byte, msgBytes)
	count := msgBytes / 8
	for i := 0; i < cfg.Warmup; i++ {
		if err := c.AllreduceAlgo(algo, buf, buf, count, mpi.Uint64, op); err != nil {
			return Stats{}, err
		}
	}
	samples := make([]time.Duration, 0, cfg.Iterations)
	for i := 0; i < cfg.Iterations; i++ {
		t0 := time.Now()
		if err := c.AllreduceAlgo(algo, buf, buf, count, mpi.Uint64, op); err != nil {
			return Stats{}, err
		}
		samples = append(samples, time.Since(t0))
	}
	return NewStats(samples)
}

// AllreduceFunc times an arbitrary collective closure (the hook the HEAR
// benchmarks use to run the encrypted path under OSU conventions).
func AllreduceFunc(cfg Config, call func() error) (Stats, error) {
	if err := cfg.Validate(); err != nil {
		return Stats{}, err
	}
	for i := 0; i < cfg.Warmup; i++ {
		if err := call(); err != nil {
			return Stats{}, err
		}
	}
	samples := make([]time.Duration, 0, cfg.Iterations)
	for i := 0; i < cfg.Iterations; i++ {
		t0 := time.Now()
		if err := call(); err != nil {
			return Stats{}, err
		}
		samples = append(samples, time.Since(t0))
	}
	return NewStats(samples)
}

// SizeSweep returns the OSU power-of-two message size series in
// [minBytes, maxBytes].
func SizeSweep(minBytes, maxBytes int) []int {
	var out []int
	for s := minBytes; s <= maxBytes; s *= 2 {
		out = append(out, s)
	}
	return out
}
