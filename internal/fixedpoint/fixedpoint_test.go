package fixedpoint

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewCodecValidation(t *testing.T) {
	if _, err := NewCodec(1, 0); err == nil {
		t.Error("width 1 accepted")
	}
	if _, err := NewCodec(65, 10); err == nil {
		t.Error("width 65 accepted")
	}
	if _, err := NewCodec(32, 32); err == nil {
		t.Error("frac == width accepted")
	}
	if _, err := NewCodec(32, 16); err != nil {
		t.Errorf("valid codec rejected: %v", err)
	}
}

func TestEncodeDecodeGridExact(t *testing.T) {
	c, _ := NewCodec(32, 16)
	for _, x := range []float64{0, 1, -1, 0.5, -0.25, 1234.0625, -32767.5} {
		w, err := c.Encode(x)
		if err != nil {
			t.Fatalf("Encode(%g): %v", x, err)
		}
		if got := c.Decode(w); got != x {
			t.Errorf("round trip %g -> %g", x, got)
		}
	}
}

func TestEncodeQuantizes(t *testing.T) {
	c, _ := NewCodec(32, 16)
	f := func(x float64) bool {
		x = math.Mod(x, 30000)
		if math.IsNaN(x) {
			return true
		}
		w, err := c.Encode(x)
		if err != nil {
			return false
		}
		return math.Abs(c.Decode(w)-x) <= c.Ulp()/2+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeOverflow(t *testing.T) {
	c, _ := NewCodec(16, 8)
	if _, err := c.Encode(200); err == nil {
		t.Error("200 fits 16/8? max is ~127.996")
	}
	if _, err := c.Encode(math.NaN()); err == nil {
		t.Error("NaN accepted")
	}
	if _, err := c.Encode(math.Inf(1)); err == nil {
		t.Error("Inf accepted")
	}
	if _, err := c.Encode(c.Max()); err != nil {
		t.Errorf("Max rejected: %v", err)
	}
	if _, err := c.Encode(c.Min()); err != nil {
		t.Errorf("Min rejected: %v", err)
	}
}

func TestSumSemantics(t *testing.T) {
	c, _ := NewCodec(32, 12)
	a, _ := c.Encode(1.5)
	b, _ := c.Encode(-0.75)
	sum := (a + b) & ((1 << 32) - 1)
	if got := c.DecodeSum(sum); got != 0.75 {
		t.Errorf("1.5 + (-0.75) = %g", got)
	}
}

func TestProdSemantics(t *testing.T) {
	c, _ := NewCodec(64, 16)
	a, _ := c.Encode(2.5)
	b, _ := c.Encode(4.0)
	d, _ := c.Encode(-0.5)
	prod := a * b * d // wrapping product of three scaled words
	if got := c.DecodeProd(prod, 3); got != -5.0 {
		t.Errorf("2.5 * 4 * -0.5 = %g, want -5", got)
	}
}

func TestDecodeProdRejectsBadP(t *testing.T) {
	c, _ := NewCodec(32, 8)
	if !math.IsNaN(c.DecodeProd(1, 0)) {
		t.Error("p=0 should yield NaN")
	}
}

func TestNegativeWrapAround(t *testing.T) {
	c, _ := NewCodec(16, 4)
	w, err := c.Encode(-1)
	if err != nil {
		t.Fatal(err)
	}
	if w != 0xFFF0 {
		t.Errorf("-1 encoded as %#x, want 0xfff0", w)
	}
	if got := c.Decode(w); got != -1 {
		t.Errorf("decode = %g", got)
	}
}

func TestWidth64(t *testing.T) {
	c, _ := NewCodec(64, 32)
	x := -123456.789
	w, err := c.Encode(x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.Decode(w)-x) > c.Ulp() {
		t.Errorf("64-bit round trip off: %g", c.Decode(w))
	}
}
