// Package fixedpoint implements the fixed point transmissions of §5.2:
// reals are quantized to an integer grid with an implicit scaling factor
// agreed upon before any computation and shared securely with all ranks.
// The integers then ride the lossless integer schemes unchanged. For
// multiplication, the number of involved processes determines the output
// scaling factor (each factor contributes one 2^-Frac scale).
package fixedpoint

import (
	"errors"
	"fmt"
	"math"
)

// Codec converts between float64 and two's-complement fixed point with
// Frac fractional bits in a Width-bit word.
type Codec struct {
	Width uint // total bits (32 or 64 in practice)
	Frac  uint // fractional bits; the implicit scaling factor is 2^Frac
}

// ErrOverflow is returned when a value does not fit the fixed point range.
var ErrOverflow = errors.New("fixedpoint: value outside representable range")

// NewCodec validates and returns a codec.
func NewCodec(width, frac uint) (Codec, error) {
	if width < 2 || width > 64 {
		return Codec{}, fmt.Errorf("fixedpoint: width %d outside [2, 64]", width)
	}
	if frac >= width {
		return Codec{}, fmt.Errorf("fixedpoint: frac %d must be < width %d", frac, width)
	}
	return Codec{Width: width, Frac: frac}, nil
}

// Scale returns the implicit scaling factor 2^Frac.
func (c Codec) Scale() float64 { return math.Ldexp(1, int(c.Frac)) }

// Max and Min bound the representable range.
func (c Codec) Max() float64 {
	return float64((int64(1)<<(c.Width-1))-1) / c.Scale()
}
func (c Codec) Min() float64 {
	return float64(-(int64(1) << (c.Width - 1))) / c.Scale()
}

// Encode quantizes x to the grid (round to nearest). The result is the
// two's-complement word embedded in uint64, ready for the integer schemes.
func (c Codec) Encode(x float64) (uint64, error) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0, fmt.Errorf("fixedpoint: %w: non-finite input", ErrOverflow)
	}
	scaled := math.RoundToEven(x * c.Scale())
	if scaled > float64((int64(1)<<(c.Width-1))-1) || scaled < float64(-(int64(1)<<(c.Width-1))) {
		return 0, fmt.Errorf("fixedpoint: %w: %g", ErrOverflow, x)
	}
	return uint64(int64(scaled)) & c.mask(), nil
}

// Decode converts a word back to float64.
func (c Codec) Decode(w uint64) float64 {
	return float64(c.signed(w)) / c.Scale()
}

// DecodeSum decodes an aggregated sum (the scale is unchanged by addition).
func (c Codec) DecodeSum(w uint64) float64 { return c.Decode(w) }

// DecodeProd decodes an aggregated product of p factors: the accumulated
// scale is 2^(p·Frac), as §5.2 notes ("the number of involved processes can
// be used to obtain the correct output scaling factor").
func (c Codec) DecodeProd(w uint64, p int) float64 {
	if p < 1 {
		return math.NaN()
	}
	return float64(c.signed(w)) / math.Ldexp(1, p*int(c.Frac))
}

// Ulp is the quantization step 2^-Frac.
func (c Codec) Ulp() float64 { return 1 / c.Scale() }

func (c Codec) mask() uint64 {
	if c.Width == 64 {
		return ^uint64(0)
	}
	return (uint64(1) << c.Width) - 1
}

func (c Codec) signed(w uint64) int64 {
	w &= c.mask()
	if c.Width < 64 && w>>(c.Width-1) == 1 {
		return int64(w) - (int64(1) << c.Width)
	}
	return int64(w)
}
