// Package noise is HEAR's keystream prefetch engine. Figure 4 charges the
// dominant host-side share of an encrypted Allreduce to enc/dec — i.e. to
// PRF keystream generation — but the key schedule makes that cost
// hideable: the collective key advances deterministically
// (k_c ← F_{k_p}(k_c)), so every noise-stream nonce of collective t+1 is
// known the moment collective t begins. A Prefetcher exploits that by
// speculatively generating the next epoch's noise planes on the cipher
// engine's worker pool while the current collective is blocked on the
// network, then serving Encrypt/Decrypt from the precomputed bytes through
// a cache-backed prf.PRF installed as the rank's keys.RankState.Enc.
//
// Correctness rests on three invariants:
//
//  1. Bit-identity. Counter-mode keystream is a pure function of
//     (nonce, offset), so a cache hit copies exactly the bytes the live
//     backend would have produced, and a partial hit composes a cached
//     prefix with a backend-generated tail at the continuation offset.
//     Schemes cannot observe whether they were prefetched.
//
//  2. Epoch tagging. A plane is consumed only when its (nonce, epoch) tag
//     matches the rank state's current epoch at consume time. Out-of-band
//     Advance calls — the verified-retry ladder re-advancing the whole
//     group, a gateway sealer catching up several epochs — simply turn the
//     speculation into a miss; stale noise is never decrypted with.
//
//  3. No consume-side waiting. The consume path never blocks on in-flight
//     generation: a plane that is not ready is a full miss. Waiting could
//     deadlock — decrypt shards occupying every pool worker would starve
//     the generation shards queued behind them — and could never win, since
//     a generation that did not fit inside the communication window would
//     just serialize in front of the fold it was meant to hide.
package noise

import (
	"sync"
	"sync/atomic"

	"hear/internal/core"
	"hear/internal/engine/pool"
	"hear/internal/keys"
	"hear/internal/mempool"
	"hear/internal/prf"
	"hear/internal/trace"
)

// Trace phase names recorded into the engine pool's accumulator, extending
// the Figure-4 breakdown with the overlap's own accounting: prefetch_gen
// carries durations (one sample per generated plane or generation shard),
// the *_bytes phases carry byte counters (trace.Breakdown.Bytes).
const (
	PhaseGen       = "prefetch_gen"
	PhaseHitBytes  = "prefetch_hit_bytes"
	PhaseMissBytes = "prefetch_miss_bytes"
)

const (
	// minPlaneBytes is the smallest plane worth speculating on: below this
	// the AES-NI keystream costs less than the bookkeeping that hides it.
	minPlaneBytes = 1 << 10
	// genShardBytes sizes generation shards on the worker pool, matching
	// the engine's MaxShardBytes so plane generation interleaves with
	// foreground crypto shards instead of monopolizing a worker.
	genShardBytes = 256 << 10
)

// Plan is one key epoch's nonce schedule: the stream identifier of every
// noise class plus the epoch the schedule belongs to.
type Plan struct {
	Epoch  uint64
	Nonces [core.NumNoiseClasses]uint64
}

// Current derives the plan of the state's present epoch.
func Current(st *keys.RankState) Plan {
	return Plan{
		Epoch: st.Epoch(),
		Nonces: [core.NumNoiseClasses]uint64{
			core.NoiseSelf:       st.SelfNonce(),
			core.NoiseNext:       st.NextNonce(),
			core.NoiseRoot:       st.RootNonce(),
			core.NoiseCollective: st.CollectiveNonce(),
		},
	}
}

// Next predicts the plan one Advance ahead via keys.PeekAdvance, without
// touching the schedule: nonce(class) = class key + F_{k_p}(k_c).
func Next(st *keys.RankState) Plan {
	kc, epoch := st.PeekAdvance()
	return Plan{
		Epoch: epoch,
		Nonces: [core.NumNoiseClasses]uint64{
			core.NoiseSelf:       st.SelfKey + kc,
			core.NoiseNext:       st.NextKey + kc,
			core.NoiseRoot:       st.RootKey + kc,
			core.NoiseCollective: kc,
		},
	}
}

// plane is one contiguous keystream span [0, len(buf)) of one stream in
// one epoch. The generation goroutine owns buf until it publishes ready;
// after that the buffer is immutable until a Kick reaps the plane.
type plane struct {
	class core.NoiseClass
	epoch uint64
	nonce uint64
	block []byte        // backing mempool block
	buf   []byte        // block[:planeBytes]
	owner *mempool.Pool // pool the block returns to (pools are swapped on regrow)
	ready atomic.Bool
}

// Stats are a prefetcher's lifetime counters.
type Stats struct {
	// HitBytes / MissBytes split the bulk keystream demand that went
	// through the cached PRF. Point queries (Uint64) are not counted; they
	// always go to the backend.
	HitBytes  uint64
	MissBytes uint64
	// GenBytes / GenPlanes count speculative generation output.
	GenBytes  uint64
	GenPlanes uint64
	// RecycledPlanes counts planes reaped after their epoch passed —
	// consumed or not; a high recycle rate with a low hit rate means the
	// speculation is mispredicting (e.g. out-of-band Advance calls).
	RecycledPlanes uint64
}

// HitRate is HitBytes / (HitBytes + MissBytes), 0 when nothing was asked.
func (s Stats) HitRate() float64 {
	total := s.HitBytes + s.MissBytes
	if total == 0 {
		return 0
	}
	return float64(s.HitBytes) / float64(total)
}

// Prefetcher double-buffers noise planes for one rank: planes of the
// current epoch (being consumed) and of the next (being generated) coexist
// in one list, distinguished by their epoch tags; each Kick reaps planes
// whose epoch has passed and starts generation for the epochs ahead.
//
// Concurrency: Kick and the cached PRF's reads may overlap arbitrarily —
// engine worker shards consume planes concurrently while a generation
// goroutine fills others. Consume paths hold the read lock only for the
// table scan and prefix copy; generation happens outside the lock on
// buffers unreachable until ready publishes them.
type Prefetcher struct {
	st      *keys.RankState
	backend prf.PRF
	pool    *pool.Pool // nil: generate serially on the kick goroutine
	phases  *trace.SyncBreakdown
	budget  int

	mu     sync.RWMutex
	planes []*plane
	blocks *mempool.Pool

	gen sync.WaitGroup

	hitBytes, missBytes, genBytes, genPlanes, recycled atomic.Uint64
}

// Attach builds a prefetcher over the state's live PRF backend and
// installs the cache-backed wrapper as st.Enc, so every scheme consuming
// st's noise flows through the cache from then on. budget caps the total
// bytes of retained planes (<= 0 disables and returns nil). wp may be nil
// (generation then runs unsharded on its own goroutine); phases may be nil
// (a private accumulator is used).
func Attach(st *keys.RankState, wp *pool.Pool, phases *trace.SyncBreakdown, budget int) *Prefetcher {
	if budget <= 0 {
		return nil
	}
	if phases == nil {
		phases = trace.NewSyncBreakdown()
	}
	p := &Prefetcher{st: st, backend: st.Enc, pool: wp, phases: phases, budget: budget}
	st.Enc = cachedPRF{p}
	return p
}

// Backend returns the live PRF the cache falls through to.
func (p *Prefetcher) Backend() prf.PRF { return p.backend }

// Stats snapshots the lifetime counters.
func (p *Prefetcher) Stats() Stats {
	return Stats{
		HitBytes:       p.hitBytes.Load(),
		MissBytes:      p.missBytes.Load(),
		GenBytes:       p.genBytes.Load(),
		GenPlanes:      p.genPlanes.Load(),
		RecycledPlanes: p.recycled.Load(),
	}
}

// Drain blocks until every in-flight generation goroutine has retired.
// Tests use it to make hit/miss assertions deterministic; the data path
// never needs it.
func (p *Prefetcher) Drain() { p.gen.Wait() }

// Kick starts speculative generation for an n-element collective of a
// scheme with the given profile: the current epoch's decrypt planes (a
// cold-start self-heal — in steady state they already exist from the
// previous kick) and the next epoch's encrypt and decrypt planes. Call it
// after this call's Encrypt, as the blocking reduction begins, so
// generation overlaps the communication window. Planes the budget cannot
// cover are truncated (a shorter plane still prefix-hits) or skipped.
// Kick never blocks on generation and is cheap on the caller: table
// bookkeeping plus one goroutine spawn.
func (p *Prefetcher) Kick(prof core.NoiseProfile, n int) {
	if p == nil || n <= 0 || prof.BytesPerElem <= 0 {
		return
	}
	want := n * prof.BytesPerElem
	if want > p.budget {
		want = p.budget
	}
	if want < minPlaneBytes {
		return
	}
	cur, next := Current(p.st), Next(p.st)

	type req struct {
		class core.NoiseClass
		epoch uint64
		nonce uint64
	}
	var reqs []req
	add := func(pl Plan, classes []core.NoiseClass) {
		for _, cl := range classes {
			if cl == core.NoiseNext && p.st.IsLast() {
				continue // the last rank draws no canceling stream
			}
			r := req{class: cl, epoch: pl.Epoch, nonce: pl.Nonces[cl]}
			dup := false
			for _, q := range reqs {
				if q == r {
					dup = true
					break
				}
			}
			if !dup {
				reqs = append(reqs, r)
			}
		}
	}
	// Priority order is consumption order: the current epoch's decrypt
	// planes are needed the moment the in-flight reduction returns, the
	// next epoch's planes only one collective later.
	add(cur, prof.Decrypt)
	add(next, prof.Encrypt)
	add(next, prof.Decrypt)

	var fresh []*plane
	p.mu.Lock()
	p.reapLocked(cur.Epoch)
	live := 0
	for _, q := range p.planes {
		live += len(q.buf)
	}
	for _, r := range reqs {
		if p.haveLocked(r.nonce, r.epoch) {
			continue
		}
		size := want
		if remain := p.budget - live; size > remain {
			size = remain
		}
		if size < minPlaneBytes {
			break
		}
		blk := p.blockLocked(size)
		if blk == nil {
			break
		}
		pl := &plane{class: r.class, epoch: r.epoch, nonce: r.nonce, block: blk, buf: blk[:size], owner: p.blocks}
		p.planes = append(p.planes, pl)
		fresh = append(fresh, pl)
		live += size
	}
	p.mu.Unlock()

	if len(fresh) == 0 {
		return
	}
	p.gen.Add(1)
	go p.generate(fresh)
}

// generate fills planes in priority order and publishes each as it
// completes, so an early consumer can hit plane 0 while plane 2 is still
// generating. Sharding runs on the worker pool via Run, whose first shard
// executes inline on this goroutine — generation makes progress even when
// every worker is busy with foreground crypto, and consumers never wait on
// it (invariant 3), so sharing the pool cannot deadlock.
func (p *Prefetcher) generate(planes []*plane) {
	defer p.gen.Done()
	for _, pl := range planes {
		nb := len(pl.buf)
		if p.pool == nil || nb <= genShardBytes {
			stop := p.phases.Start(PhaseGen)
			p.backend.Keystream(pl.buf, pl.nonce, 0)
			stop()
		} else {
			p.pool.Run(nb, genShardBytes, PhaseGen, func(start, count int) error {
				p.backend.Keystream(pl.buf[start:start+count], pl.nonce, uint64(start))
				return nil
			})
		}
		pl.ready.Store(true)
		p.genBytes.Add(uint64(nb))
		p.genPlanes.Add(1)
	}
}

// haveLocked reports whether a plane (ready or generating) already covers
// (nonce, epoch).
func (p *Prefetcher) haveLocked(nonce, epoch uint64) bool {
	for _, q := range p.planes {
		if q.nonce == nonce && q.epoch == epoch {
			return true
		}
	}
	return false
}

// reapLocked recycles ready planes whose epoch predates the current one.
// A stale plane still being generated keeps its block until a later reap
// finds it ready — its generation goroutine owns the buffer until then.
func (p *Prefetcher) reapLocked(epoch uint64) {
	kept := p.planes[:0]
	for _, q := range p.planes {
		if q.epoch < epoch && q.ready.Load() {
			if q.owner != nil {
				// Put only fails for foreign sizes, impossible for a block
				// returning to the pool it came from.
				_ = q.owner.Put(q.block)
			}
			p.recycled.Add(1)
			continue
		}
		kept = append(kept, q)
	}
	// Drop reaped tail pointers so the backing array doesn't pin planes.
	for i := len(kept); i < len(p.planes); i++ {
		p.planes[i] = nil
	}
	p.planes = kept
}

// blockLocked returns a pooled block of at least size bytes, swapping in a
// larger-blocked pool when planes outgrow the current one. Blocks of a
// replaced pool drain back to their own (plane.owner) pool, which becomes
// garbage once its last plane retires. Block sizes are powers of two, so
// resident memory can exceed the budget by at most 2×.
func (p *Prefetcher) blockLocked(size int) []byte {
	if p.blocks == nil || p.blocks.BlockSize() < size {
		bs := minPlaneBytes
		for bs < size {
			bs <<= 1
		}
		np, err := mempool.New(bs, 0, 0)
		if err != nil {
			return nil
		}
		p.blocks = np
	}
	b, err := p.blocks.Get()
	if err != nil {
		return nil
	}
	return b
}

// keystream is the cached bulk read: serve the longest prefix available
// from a matching ready plane of the current epoch, then fall through to
// the backend for the tail at the continuation offset. Bit-identical to a
// pure backend read by counter-mode purity (invariant 1).
func (p *Prefetcher) keystream(dst []byte, nonce, off uint64) {
	if len(dst) == 0 {
		return
	}
	epoch := p.st.Epoch()
	hit := 0
	p.mu.RLock()
	for _, q := range p.planes {
		if q.nonce == nonce && q.epoch == epoch && q.ready.Load() {
			if off < uint64(len(q.buf)) {
				hit = copy(dst, q.buf[off:])
			}
			break
		}
	}
	p.mu.RUnlock()
	if hit > 0 {
		p.hitBytes.Add(uint64(hit))
		p.phases.AddBytes(PhaseHitBytes, int64(hit))
	}
	if hit < len(dst) {
		miss := len(dst) - hit
		p.backend.Keystream(dst[hit:], nonce, off+uint64(hit))
		p.missBytes.Add(uint64(miss))
		p.phases.AddBytes(PhaseMissBytes, int64(miss))
	}
}

// cachedSpan reports the longest ready cached prefix of span [off, off+n)
// of stream nonce in the current epoch, rounded down to whole streaming
// blocks (prf.BlockBytes), and accounts the remainder as misses — the
// fused caller generates that tail directly on the backend, bypassing this
// wrapper's accounting. The prefix itself is NOT accounted here: the
// caller reads it through Keystream, whose hit path counts it. (If the
// plane is reaped between the two calls, those bytes are re-generated and
// counted as misses instead — a rare epoch-turn race that only skews
// stats, never bytes.)
func (p *Prefetcher) cachedSpan(nonce, off uint64, n int) int {
	if n <= 0 {
		return 0
	}
	epoch := p.st.Epoch()
	k := 0
	p.mu.RLock()
	for _, q := range p.planes {
		if q.nonce == nonce && q.epoch == epoch && q.ready.Load() {
			if off < uint64(len(q.buf)) {
				k = len(q.buf) - int(off)
				if k > n {
					k = n
				}
			}
			break
		}
	}
	p.mu.RUnlock()
	k &^= prf.BlockBytes - 1
	if miss := n - k; miss > 0 {
		p.missBytes.Add(uint64(miss))
		p.phases.AddBytes(PhaseMissBytes, int64(miss))
	}
	return k
}

// cachedPRF is the prf.PRF the prefetcher installs as RankState.Enc. Bulk
// reads go through the plane cache; point queries (Uint64, HoMAC's form)
// bypass it — they are O(1) block encryptions not worth a table scan. It
// also implements prf.SpanCache, which is how the fused scheme kernels
// (internal/core) split a noise span into a plane-served prefix and a
// block-streamed tail: prefetch hit uses the plane, miss uses fusion.
type cachedPRF struct{ p *Prefetcher }

func (c cachedPRF) Name() string { return "prefetch+" + c.p.backend.Name() }

func (c cachedPRF) Keystream(dst []byte, nonce, off uint64) { c.p.keystream(dst, nonce, off) }

func (c cachedPRF) Uint64(nonce, idx uint64) uint64 { return c.p.backend.Uint64(nonce, idx) }

// CachedSpan implements prf.SpanCache.
func (c cachedPRF) CachedSpan(nonce, off uint64, n int) int {
	return c.p.cachedSpan(nonce, off, n)
}

// Generator implements prf.SpanCache: the live backend the fused kernels
// stream uncached tails from.
func (c cachedPRF) Generator() prf.PRF { return c.p.backend }

// cachedPRF must satisfy the probing interface the fused kernels use.
var _ prf.SpanCache = cachedPRF{}
