package noise

import (
	"bytes"
	"sync/atomic"
	"testing"

	"hear/internal/core"
	"hear/internal/engine/pool"
	"hear/internal/keys"
	"hear/internal/prf"
)

// seqReader is a deterministic entropy source for tests.
type seqReader struct{ next byte }

func (r *seqReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = r.next
		r.next++
	}
	return len(p), nil
}

// intProfile mirrors the integer schemes: width-8 noise, self+next streams
// on encrypt, root stream on decrypt.
var intProfile = core.NoiseProfile{
	BytesPerElem: 8,
	Encrypt:      []core.NoiseClass{core.NoiseSelf, core.NoiseNext},
	Decrypt:      []core.NoiseClass{core.NoiseRoot},
}

// attachOne generates a group and attaches a prefetcher to rank 0.
func attachOne(t *testing.T, size, budget int, wp *pool.Pool) (*keys.RankState, *Prefetcher) {
	t.Helper()
	states, err := keys.Generate(size, keys.Config{Rand: &seqReader{next: 7}})
	if err != nil {
		t.Fatal(err)
	}
	st := states[0]
	p := Attach(st, wp, nil, budget)
	if p == nil {
		t.Fatal("Attach returned nil for a positive budget")
	}
	return st, p
}

func TestPrefetchAttachDisabledByZeroBudget(t *testing.T) {
	states, err := keys.Generate(2, keys.Config{Rand: &seqReader{}})
	if err != nil {
		t.Fatal(err)
	}
	before := states[0].Enc
	if p := Attach(states[0], nil, nil, 0); p != nil {
		t.Fatal("budget 0 should disable prefetch")
	}
	if states[0].Enc != before {
		t.Error("disabled Attach must not replace the state's PRF")
	}
	// A nil prefetcher is inert, not a crash.
	var p *Prefetcher
	p.Kick(intProfile, 1<<20)
}

// TestPrefetchPlanPredictsAdvance pins Next against the real schedule: the
// plan computed before Advance must equal Current computed after it.
func TestPrefetchPlanPredictsAdvance(t *testing.T) {
	states, err := keys.Generate(4, keys.Config{Rand: &seqReader{next: 3}})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range states {
		for round := 0; round < 3; round++ {
			predicted := Next(st)
			st.Advance()
			if got := Current(st); got != predicted {
				t.Fatalf("rank %d round %d: predicted %+v, got %+v", st.Rank, round, predicted, got)
			}
		}
	}
}

// TestPrefetchKeystreamBitIdentity is invariant 1: whatever mix of cached
// prefix and live tail serves a read, the bytes must equal a pure backend
// read — across offsets, spans longer than the plane, and unknown nonces.
func TestPrefetchKeystreamBitIdentity(t *testing.T) {
	const elems = 1 << 10 // 8 KiB planes
	st, p := attachOne(t, 3, 1<<20, nil)
	p.Kick(intProfile, elems)
	p.Drain()

	planeBytes := uint64(elems * intProfile.BytesPerElem)
	backend := p.Backend()
	nonces := []uint64{st.SelfNonce(), st.NextNonce(), st.RootNonce(), st.CollectiveNonce(), 0xdeadbeef}
	offs := []uint64{0, 1, 13, prf.BlockSize, planeBytes / 2, planeBytes - 5, planeBytes, planeBytes + 99}
	for _, nonce := range nonces {
		for _, off := range offs {
			for _, n := range []int{1, 64, int(planeBytes), int(planeBytes) + 4096} {
				got := make([]byte, n)
				want := make([]byte, n)
				st.Enc.Keystream(got, nonce, off)
				backend.Keystream(want, nonce, off)
				if !bytes.Equal(got, want) {
					t.Fatalf("nonce %#x off %d len %d: cached read differs from backend", nonce, off, n)
				}
			}
		}
	}
	s := p.Stats()
	// The current epoch's decrypt plane (root nonce) exists, so some of the
	// reads above must have been served from cache.
	if s.HitBytes == 0 {
		t.Error("no hit bytes despite a resident current-epoch plane")
	}
	if s.MissBytes == 0 {
		t.Error("no miss bytes despite unknown-nonce reads")
	}
}

// TestPrefetchNextEpochPlanesHitAfterAdvance drives the steady-state cycle:
// kick during epoch e, advance to e+1, and the speculated planes serve the
// new epoch's encrypt and decrypt streams.
func TestPrefetchNextEpochPlanesHitAfterAdvance(t *testing.T) {
	const elems = 1 << 10
	st, p := attachOne(t, 3, 1<<20, nil)
	p.Kick(intProfile, elems)
	p.Drain()
	st.Advance()

	want := uint64(0)
	for _, nonce := range []uint64{st.SelfNonce(), st.NextNonce(), st.RootNonce()} {
		dst := make([]byte, elems*intProfile.BytesPerElem)
		st.Enc.Keystream(dst, nonce, 0)
		ref := make([]byte, len(dst))
		p.Backend().Keystream(ref, nonce, 0)
		if !bytes.Equal(dst, ref) {
			t.Fatalf("nonce %#x: post-advance read differs from backend", nonce)
		}
		want += uint64(len(dst))
	}
	if s := p.Stats(); s.HitBytes != want {
		t.Errorf("hit bytes = %d, want %d (all three next-epoch planes resident)", s.HitBytes, want)
	}
}

// TestPrefetchStaleEpochIsMiss is invariant 2: once the schedule has moved
// past the speculated epoch — the verified-retry ladder re-advancing, a
// sealer catching up — stale planes must never serve, even for a matching
// nonce value.
func TestPrefetchStaleEpochIsMiss(t *testing.T) {
	const elems = 1 << 10
	st, p := attachOne(t, 3, 1<<20, nil)
	speculated := Next(st)
	p.Kick(intProfile, elems)
	p.Drain()

	// Two advances: the state is now one epoch past every speculated plane.
	st.Advance()
	st.Advance()

	dst := make([]byte, elems*intProfile.BytesPerElem)
	ref := make([]byte, len(dst))
	for cl, nonce := range speculated.Nonces {
		st.Enc.Keystream(dst, nonce, 0)
		p.Backend().Keystream(ref, nonce, 0)
		if !bytes.Equal(dst, ref) {
			t.Fatalf("class %d: stale read differs from backend", cl)
		}
	}
	if s := p.Stats(); s.HitBytes != 0 {
		t.Errorf("hit bytes = %d, want 0: stale-epoch planes must not serve", s.HitBytes)
	}

	// The next kick reaps the stale planes.
	p.Kick(intProfile, elems)
	p.Drain()
	if s := p.Stats(); s.RecycledPlanes == 0 {
		t.Error("stale planes were not recycled by the next kick")
	}
}

// gatedPRF blocks its first Keystream call until released, signalling entry
// first. It lets a test observe the cache while generation is in flight.
type gatedPRF struct {
	prf.PRF
	calls   atomic.Uint64
	entered chan struct{}
	release chan struct{}
}

func (g *gatedPRF) Keystream(dst []byte, nonce, off uint64) {
	if g.calls.Add(1) == 1 {
		close(g.entered)
		<-g.release
	}
	g.PRF.Keystream(dst, nonce, off)
}

// TestPrefetchConsumeNeverWaitsOnGeneration is invariant 3: a plane still
// being generated is a plain miss; the consume path falls through to the
// backend instead of blocking.
func TestPrefetchConsumeNeverWaitsOnGeneration(t *testing.T) {
	states, err := keys.Generate(3, keys.Config{Rand: &seqReader{next: 11}})
	if err != nil {
		t.Fatal(err)
	}
	st := states[0]
	gate := &gatedPRF{PRF: st.Enc, entered: make(chan struct{}), release: make(chan struct{})}
	st.Enc = gate
	p := Attach(st, nil, nil, 1<<20)

	const elems = 1 << 10
	p.Kick(intProfile, elems)
	<-gate.entered // generation goroutine is parked inside the backend

	dst := make([]byte, elems*intProfile.BytesPerElem)
	ref := make([]byte, len(dst))
	st.Enc.Keystream(dst, st.RootNonce(), 0) // would deadlock if consume waited
	if s := p.Stats(); s.HitBytes != 0 || s.MissBytes != uint64(len(dst)) {
		t.Errorf("in-flight plane served: hit=%d miss=%d", s.HitBytes, s.MissBytes)
	}

	close(gate.release)
	p.Drain()
	st.Enc.Keystream(dst, st.RootNonce(), 0)
	p.Backend().Keystream(ref, st.RootNonce(), 0)
	if !bytes.Equal(dst, ref) {
		t.Fatal("post-generation read differs from backend")
	}
	if s := p.Stats(); s.HitBytes != uint64(len(dst)) {
		t.Errorf("ready plane did not serve: hit=%d", s.HitBytes)
	}
}

// TestPrefetchBudgetTruncatesPlanes caps the budget below one full plane:
// the truncated plane still prefix-hits and the tail composes bit-identically.
func TestPrefetchBudgetTruncatesPlanes(t *testing.T) {
	const budget = 4 << 10
	st, p := attachOne(t, 3, budget, nil)
	const elems = 1 << 12 // wants 32 KiB per plane, 8× the budget
	p.Kick(intProfile, elems)
	p.Drain()

	s := p.Stats()
	if s.GenBytes == 0 || s.GenBytes > budget {
		t.Fatalf("generated %d bytes, want within (0, %d]", s.GenBytes, budget)
	}
	dst := make([]byte, elems*intProfile.BytesPerElem)
	ref := make([]byte, len(dst))
	st.Enc.Keystream(dst, st.RootNonce(), 0)
	p.Backend().Keystream(ref, st.RootNonce(), 0)
	if !bytes.Equal(dst, ref) {
		t.Fatal("truncated-plane read differs from backend")
	}
	s = p.Stats()
	if s.HitBytes == 0 {
		t.Error("truncated plane did not prefix-hit")
	}
	if s.HitBytes+s.MissBytes != uint64(len(dst)) {
		t.Errorf("hit+miss = %d, want %d", s.HitBytes+s.MissBytes, len(dst))
	}
}

// TestPrefetchTinyCollectiveSkipped: below minPlaneBytes the kick is a no-op.
func TestPrefetchTinyCollectiveSkipped(t *testing.T) {
	_, p := attachOne(t, 3, 1<<20, nil)
	p.Kick(intProfile, 2) // 16 bytes of noise
	p.Drain()
	if s := p.Stats(); s.GenPlanes != 0 {
		t.Errorf("generated %d planes for a 16-byte collective", s.GenPlanes)
	}
}

// TestPrefetchLastRankSkipsNextStream: the last rank draws no canceling
// stream, so no NoiseNext plane may be generated for it.
func TestPrefetchLastRankSkipsNextStream(t *testing.T) {
	states, err := keys.Generate(3, keys.Config{Rand: &seqReader{next: 9}})
	if err != nil {
		t.Fatal(err)
	}
	st := states[2]
	if !st.IsLast() {
		t.Fatal("rank 2 of 3 should be last")
	}
	p := Attach(st, nil, nil, 1<<20)
	p.Kick(intProfile, 1<<10)
	p.Drain()
	// Root (cur) + self (next) + root (next): exactly 3 planes, no next-key.
	if s := p.Stats(); s.GenPlanes != 3 {
		t.Errorf("last rank generated %d planes, want 3", s.GenPlanes)
	}
}

// TestPrefetchShardedGeneration runs generation across a worker pool with
// planes larger than one generation shard and checks bit-identity.
func TestPrefetchShardedGeneration(t *testing.T) {
	wp := pool.New(4)
	defer wp.Close()
	const elems = 1 << 16 // 512 KiB planes: two generation shards each
	st, p := attachOne(t, 3, 4<<20, wp)
	p.Kick(intProfile, elems)
	p.Drain()

	dst := make([]byte, elems*intProfile.BytesPerElem)
	ref := make([]byte, len(dst))
	for _, nonce := range []uint64{st.RootNonce()} {
		st.Enc.Keystream(dst, nonce, 0)
		p.Backend().Keystream(ref, nonce, 0)
		if !bytes.Equal(dst, ref) {
			t.Fatal("sharded generation produced wrong bytes")
		}
	}
	if s := p.Stats(); s.HitBytes != uint64(len(dst)) {
		t.Errorf("hit bytes = %d, want %d", s.HitBytes, len(dst))
	}
}

// TestPrefetchUint64BypassesCache: point queries are backend-exact.
func TestPrefetchUint64BypassesCache(t *testing.T) {
	st, p := attachOne(t, 3, 1<<20, nil)
	p.Kick(intProfile, 1<<10)
	p.Drain()
	for idx := uint64(0); idx < 64; idx++ {
		if got, want := st.Enc.Uint64(st.RootNonce(), idx), p.Backend().Uint64(st.RootNonce(), idx); got != want {
			t.Fatalf("idx %d: Uint64 = %#x, backend = %#x", idx, got, want)
		}
	}
	if s := p.Stats(); s.HitBytes != 0 || s.MissBytes != 0 {
		t.Error("point queries must not touch the bulk cache counters")
	}
}

// TestPrefetchRepeatedKicksAreIdempotent: re-kicking the same epoch must not
// duplicate planes or regenerate existing ones.
func TestPrefetchRepeatedKicksAreIdempotent(t *testing.T) {
	_, p := attachOne(t, 3, 1<<20, nil)
	p.Kick(intProfile, 1<<10)
	p.Drain()
	first := p.Stats().GenPlanes
	for i := 0; i < 5; i++ {
		p.Kick(intProfile, 1<<10)
	}
	p.Drain()
	if again := p.Stats().GenPlanes; again != first {
		t.Errorf("re-kick grew planes from %d to %d", first, again)
	}
}

// TestCachedSpanReportsPlanePrefix pins the prf.SpanCache probing contract
// the fused kernels rely on: the reported prefix is block-aligned, never
// longer than the resident plane suffix, zero for unknown nonces, and the
// remainder of every probe is accounted as a miss.
func TestCachedSpanReportsPlanePrefix(t *testing.T) {
	const elems = 1 << 10
	st, p := attachOne(t, 3, 1<<20, nil)
	p.Kick(intProfile, elems)
	p.Drain()

	sc, ok := st.Enc.(prf.SpanCache)
	if !ok {
		t.Fatal("attached PRF does not implement prf.SpanCache")
	}
	if sc.Generator() != p.Backend() {
		t.Fatal("Generator must expose the live backend")
	}

	planeBytes := elems * intProfile.BytesPerElem
	root := st.RootNonce()
	demanded := uint64(0)
	for _, tc := range []struct {
		off  uint64
		n    int
		want int
	}{
		{0, planeBytes, planeBytes},       // full plane
		{0, planeBytes + 512, planeBytes}, // past the plane: clipped
		{64, 256, 256},                    // aligned interior span
		{24, 256, 256},                    // unaligned offset: length is what must be block-granular
		{uint64(planeBytes), 128, 0},      // starts past the plane
		{uint64(planeBytes) - 32, 128, 0}, // sub-block suffix rounds to 0
		{0, 0, 0},                         // empty span
	} {
		if got := sc.CachedSpan(root, tc.off, tc.n); got != tc.want {
			t.Errorf("CachedSpan(root, %d, %d) = %d, want %d", tc.off, tc.n, got, tc.want)
		}
		demanded += uint64(tc.n - tc.want) // CachedSpan accounts the remainder as miss
	}
	if got := sc.CachedSpan(0xdeadbeef, 0, 512); got != 0 {
		t.Errorf("CachedSpan(unknown nonce) = %d, want 0", got)
	}
	demanded += 512
	if s := p.Stats(); s.MissBytes != demanded {
		t.Errorf("miss bytes = %d, want %d (probe remainders)", s.MissBytes, demanded)
	}
}

// fusedStates builds two identical key groups from the same deterministic
// seed: one to attach a prefetcher to, one as the pure-backend reference.
func fusedStates(t *testing.T, size int, seed byte) (*keys.RankState, *keys.RankState) {
	t.Helper()
	a, err := keys.Generate(size, keys.Config{Rand: &seqReader{next: seed}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := keys.Generate(size, keys.Config{Rand: &seqReader{next: seed}})
	if err != nil {
		t.Fatal(err)
	}
	return a[0], b[0]
}

// TestFusedThroughPrefetcherBitIdentity drives a fused scheme through an
// attached prefetcher and checks every byte against the two-pass reference
// on a pure backend, across full-hit planes (post-advance), truncated
// planes (prefix hit + generated tail), and unaligned element offsets.
func TestFusedThroughPrefetcherBitIdentity(t *testing.T) {
	scheme, err := core.NewIntSum(64)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name    string
		budget  int
		advance bool
	}{
		// All planes resident; advancing makes the speculated next-epoch
		// planes cover the current epoch's three streams.
		{"full-plane", 1 << 20, true},
		// The budget covers only a truncated current-epoch decrypt plane:
		// decrypt serves a prefix from it and fuses the generated tail,
		// encrypt is a full fusion miss.
		{"truncated-plane", 4 << 10, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const elems = 1 << 10
			st, ref := fusedStates(t, 3, 21)
			p := Attach(st, nil, nil, tc.budget)
			p.Kick(intProfile, elems)
			p.Drain()
			if tc.advance {
				st.Advance()
				ref.Advance()
			}

			defer core.SetFusion(core.SetFusion(true))
			for _, off := range []int{0, 3, 129} {
				n := elems - off
				plain := make([]byte, n*8)
				for i := range plain {
					plain[i] = byte(i * 31)
				}
				cipher := make([]byte, n*8)
				wantCipher := make([]byte, n*8)
				if err := scheme.EncryptAt(st, plain, cipher, n, off); err != nil {
					t.Fatal(err)
				}
				core.SetFusion(false)
				err := scheme.EncryptAt(ref, plain, wantCipher, n, off)
				core.SetFusion(true)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(cipher, wantCipher) {
					t.Fatalf("off %d: fused-through-prefetcher ciphertext differs from two-pass reference", off)
				}

				got := make([]byte, n*8)
				want := make([]byte, n*8)
				if err := scheme.DecryptAt(st, cipher, got, n, off); err != nil {
					t.Fatal(err)
				}
				core.SetFusion(false)
				err = scheme.DecryptAt(ref, wantCipher, want, n, off)
				core.SetFusion(true)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("off %d: fused-through-prefetcher plaintext differs from two-pass reference", off)
				}
			}
			if s := p.Stats(); s.HitBytes == 0 {
				t.Error("no hit bytes: fused kernels never touched the plane cache")
			}
		})
	}
}

// TestFusedPrefetcherAccountingExact: one fused encrypt+decrypt over fully
// resident planes demands 3 noise streams (self, next, root) and every byte
// must be accounted — all hits, no misses, hit+miss == bytes demanded.
func TestFusedPrefetcherAccountingExact(t *testing.T) {
	scheme, err := core.NewIntSum(64)
	if err != nil {
		t.Fatal(err)
	}
	const elems = 1 << 10
	st, _ := fusedStates(t, 3, 33)
	p := Attach(st, nil, nil, 1<<20)
	p.Kick(intProfile, elems)
	p.Drain()
	st.Advance()

	defer core.SetFusion(core.SetFusion(true))
	nb := elems * 8
	buf := make([]byte, nb)
	if err := scheme.EncryptAt(st, buf, buf, elems, 0); err != nil {
		t.Fatal(err)
	}
	if err := scheme.DecryptAt(st, buf, buf, elems, 0); err != nil {
		t.Fatal(err)
	}
	s := p.Stats()
	if want := uint64(3 * nb); s.HitBytes != want || s.MissBytes != 0 {
		t.Errorf("hit=%d miss=%d, want hit=%d miss=0 (3 fully resident streams)", s.HitBytes, s.MissBytes, want)
	}
}

// TestPrefetchSteadyStateManyEpochs cycles kick/advance/consume across many
// epochs, checking bit-identity and a warm hit rate once the cache is primed.
func TestPrefetchSteadyStateManyEpochs(t *testing.T) {
	const elems = 1 << 10
	st, p := attachOne(t, 3, 1<<20, nil)
	planeBytes := elems * intProfile.BytesPerElem
	dst := make([]byte, planeBytes)
	ref := make([]byte, planeBytes)
	for epoch := 0; epoch < 8; epoch++ {
		p.Kick(intProfile, elems)
		p.Drain() // stand-in for the communication window
		for _, nonce := range []uint64{st.SelfNonce(), st.NextNonce(), st.RootNonce()} {
			st.Enc.Keystream(dst, nonce, 0)
			p.Backend().Keystream(ref, nonce, 0)
			if !bytes.Equal(dst, ref) {
				t.Fatalf("epoch %d nonce %#x: mismatch", epoch, nonce)
			}
		}
		st.Advance()
	}
	s := p.Stats()
	if s.HitRate() < 0.5 {
		t.Errorf("steady-state hit rate %.2f, want >= 0.5 (stats: %+v)", s.HitRate(), s)
	}
}
