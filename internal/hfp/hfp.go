// Package hfp implements HFP, the HEAR floating point encoding of §5.3:
// a software FPU for a non-IEEE float whose exponent lives on the ring
// Z_{2^(le+δ)} instead of being capped, whose mantissa is hidden-one
// normalized, and which supports the ⊗ operation (eq. 5), ring-exponent
// addition with the two-difference comparison (§5.3.5), and the δ/γ
// parameters trading ciphertext inflation for precision (Figure 3).
//
// The paper's FPU changes "can be emulated in software if the INC hardware
// allows for this" — this package is that emulation. There are no
// subnormals, no NaN/Inf, no exponent bias (two's complement instead), and
// zero encodes as the smallest representable magnitude (§5.3.6).
package hfp

import (
	"errors"
	"fmt"
	"math"
)

// Format describes one HFP instantiation.
//
//	Le    — plaintext exponent bits (5/8/11 for FP16/FP32/FP64 analogues)
//	Lm    — plaintext mantissa fraction bits (10/23/52)
//	Delta — exponent expansion δ: 0 for the multiplication scheme, 2 for
//	        addition (§5.3.5 derives why two extra bits are required)
//	Gamma — ciphertext inflation γ ≥ 0 restoring mantissa precision
//
// Ciphertext layout: 1 sign bit, Le+δ exponent bits (ring), Lm−δ+γ
// mantissa fraction bits — net inflation is exactly γ bits.
type Format struct {
	Le    uint
	Lm    uint
	Delta uint
	Gamma uint
}

// Predefined plaintext shapes matching the paper's FP16/FP32/FP64 columns,
// plus BF16 (the ML-training truncated float the paper's DNN workloads
// increasingly use; same exponent range as FP32 with a 7-bit mantissa).
var (
	FP16 = Format{Le: 5, Lm: 10}
	BF16 = Format{Le: 8, Lm: 7}
	FP32 = Format{Le: 8, Lm: 23}
	FP64 = Format{Le: 11, Lm: 52}
)

// ForMul returns the format configured for the multiplication scheme
// (δ = 0) with inflation γ.
func (f Format) ForMul(gamma uint) Format { f.Delta = 0; f.Gamma = gamma; return f }

// ForAdd returns the format configured for the addition scheme (δ = 2)
// with inflation γ.
func (f Format) ForAdd(gamma uint) Format { f.Delta = 2; f.Gamma = gamma; return f }

// EBits is the ciphertext exponent width le+δ.
func (f Format) EBits() uint { return f.Le + f.Delta }

// FracBits is the ciphertext mantissa fraction width lm−δ+γ.
func (f Format) FracBits() uint { return f.Lm - f.Delta + f.Gamma }

// CipherBits is the total ciphertext width in bits: 1 + (le+δ) + (lm−δ+γ)
// = 1 + le + lm + γ, i.e. plaintext width plus γ.
func (f Format) CipherBits() uint { return 1 + f.EBits() + f.FracBits() }

// ByteSize is the byte-aligned wire cell for one ciphertext element. The
// bit-level inflation reported by the benchmarks is CipherBits-based; the
// runtime's buffers are byte-aligned for lane-parallel switch aggregation.
func (f Format) ByteSize() int { return int(f.CipherBits()+7) / 8 }

// Validate reports whether the format's widths fit the software FPU
// (mantissa significands must fit in 64-bit words with guard room).
func (f Format) Validate() error {
	if f.Le < 2 || f.Le > 13 {
		return fmt.Errorf("hfp: exponent width %d outside [2, 13]", f.Le)
	}
	if f.Lm < 3 || f.Lm > 52 {
		return fmt.Errorf("hfp: mantissa width %d outside [3, 52]", f.Lm)
	}
	if f.Delta != 0 && f.Delta != 2 {
		return fmt.Errorf("hfp: δ must be 0 (mul) or 2 (add), got %d", f.Delta)
	}
	if f.Gamma > 8 {
		return fmt.Errorf("hfp: γ = %d unreasonably large", f.Gamma)
	}
	if f.Delta > f.Lm {
		return errors.New("hfp: δ exceeds mantissa width")
	}
	return nil
}

// Value is one HFP number: sign, ring exponent, and mantissa fraction of
// width W (the hidden leading one is implicit: significand = 1.Frac).
// Plaintext values carry W = Lm; ciphertexts carry W = FracBits().
type Value struct {
	Sign uint8  // 0 positive, 1 negative
	Exp  uint64 // element of Z_{2^EBits}; plaintexts embed two's complement
	Frac uint64 // fraction bits, width W
	W    uint8  // fraction width of Frac
}

// ErrNotFinite is returned when encoding NaN or ±Inf, which HFP cannot
// represent (§5.3.6: caps break the ring security argument).
var ErrNotFinite = errors.New("hfp: NaN and Inf are not representable")

// ErrRange is returned when a value's exponent exceeds the plaintext range.
var ErrRange = errors.New("hfp: exponent outside plaintext range")

// expMask returns the ring mask for the format's exponent.
func (f Format) expMask() uint64 { return (uint64(1) << f.EBits()) - 1 }

// ringAdd / ringSub operate on the exponent ring.
func (f Format) ringAdd(a, b uint64) uint64 { return (a + b) & f.expMask() }
func (f Format) ringSub(a, b uint64) uint64 { return (a - b) & f.expMask() }

// SignedExp decodes a ring exponent as an EBits-wide two's complement
// integer. After a legitimate decryption the result lies in the plaintext
// range; values outside it signal under/overflow (§5.3.6 uses exactly this
// as the detection mechanism the extra δ bits enable).
func (f Format) SignedExp(e uint64) int64 {
	bits := f.EBits()
	e &= f.expMask()
	if e>>(bits-1) == 1 {
		return int64(e) - (int64(1) << bits)
	}
	return int64(e)
}

// MinExp and MaxExp bound the plaintext exponent range (Le-bit two's
// complement).
func (f Format) MinExp() int64 { return -(int64(1) << (f.Le - 1)) }
func (f Format) MaxExp() int64 { return (int64(1) << (f.Le - 1)) - 1 }

// smallest returns the smallest-magnitude plaintext encoding, which also
// serves as the representation of zero (§5.3.6).
func (f Format) smallest() Value {
	return Value{Sign: 0, Exp: uint64(f.MinExp()) & f.expMask(), Frac: 0, W: uint8(f.Lm)}
}

// Encode converts a float64 into the plaintext HFP representation
// (W = Lm, exponent embedded into the δ-expanded ring). Zero and
// underflowing magnitudes map to the smallest representable value;
// NaN/Inf and overflow return errors.
func (f Format) Encode(x float64) (Value, error) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return Value{}, ErrNotFinite
	}
	if x == 0 {
		return f.smallest(), nil
	}
	var sign uint8
	if math.Signbit(x) {
		sign = 1
		x = -x
	}
	frac, exp := math.Frexp(x) // x = frac * 2^exp, frac in [0.5, 1)
	e := int64(exp - 1)        // significand m = frac*2 in [1, 2)
	m := frac * 2
	// Round the fraction to Lm bits, round-to-nearest-even.
	scaled := (m - 1) * float64(uint64(1)<<f.Lm)
	fr := uint64(math.RoundToEven(scaled))
	if fr == uint64(1)<<f.Lm { // rounded up to 2.0
		fr = 0
		e++
	}
	if e > f.MaxExp() {
		return Value{}, fmt.Errorf("%w: exponent %d > %d", ErrRange, e, f.MaxExp())
	}
	if e < f.MinExp() {
		return f.smallest(), nil
	}
	return Value{Sign: sign, Exp: uint64(e) & f.expMask(), Frac: fr, W: uint8(f.Lm)}, nil
}

// Decode converts a Value back to float64, interpreting the exponent as
// EBits-wide two's complement.
func (f Format) Decode(v Value) float64 {
	m := 1 + float64(v.Frac)/float64(uint64(1)<<v.W)
	x := math.Ldexp(m, int(f.SignedExp(v.Exp)))
	if v.Sign == 1 {
		return -x
	}
	return x
}

// IsZeroEncoding reports whether v is the smallest-magnitude value used to
// represent zero at plaintext level.
func (f Format) IsZeroEncoding(v Value) bool {
	return v.Frac == 0 && f.SignedExp(v.Exp) == f.MinExp()
}

// String renders a value as in the paper's Table 3, e.g. "1.75×2^7".
func (f Format) String(v Value) string {
	m := 1 + float64(v.Frac)/float64(uint64(1)<<v.W)
	s := ""
	if v.Sign == 1 {
		s = "-"
	}
	return fmt.Sprintf("%s%g×2^%d", s, m, f.SignedExp(v.Exp))
}

// Pack writes v into dst (ByteSize bytes, little-endian bit layout:
// fraction in the low bits, then the exponent, sign on top).
func (f Format) Pack(v Value, dst []byte) {
	w := f.FracBits()
	eb := f.EBits()
	// Assemble into a 128-bit little-endian accumulator.
	var lo, hi uint64
	lo = v.Frac & ((uint64(1) << w) - 1)
	put := func(val uint64, at, n uint) {
		if at < 64 {
			lo |= val << at
			if at+n > 64 {
				hi |= val >> (64 - at)
			}
		} else {
			hi |= val << (at - 64)
		}
	}
	put(v.Exp&f.expMask(), w, eb)
	put(uint64(v.Sign), w+eb, 1)
	for i := 0; i < f.ByteSize(); i++ {
		if i < 8 {
			dst[i] = byte(lo >> (8 * uint(i)))
		} else {
			dst[i] = byte(hi >> (8 * uint(i-8)))
		}
	}
}

// Unpack reads a Value previously written by Pack. The value's width is
// the ciphertext fraction width.
func (f Format) Unpack(src []byte) Value {
	var lo, hi uint64
	for i := 0; i < f.ByteSize(); i++ {
		if i < 8 {
			lo |= uint64(src[i]) << (8 * uint(i))
		} else {
			hi |= uint64(src[i]) << (8 * uint(i-8))
		}
	}
	get := func(at, n uint) uint64 {
		var v uint64
		if at < 64 {
			v = lo >> at
			if at+n > 64 {
				v |= hi << (64 - at)
			}
		} else {
			v = hi >> (at - 64)
		}
		return v & ((uint64(1) << n) - 1)
	}
	w := f.FracBits()
	eb := f.EBits()
	return Value{
		Frac: get(0, w),
		Exp:  get(w, eb),
		Sign: uint8(get(w+eb, 1)),
		W:    uint8(w),
	}
}
