package hfp

import (
	"encoding/binary"
	"math/bits"

	"hear/internal/prf"
)

// This file is the software FPU: ⊗ (Mul), its inverse (Div), and the
// non-IEEE ring-exponent addition of §5.3.5. All mantissa arithmetic is
// exact in 64/128-bit integers with round-to-nearest-even at the end, so
// the only precision loss is the rounding the paper quantifies in Fig. 3.

// significand returns the full mantissa (1 << W) | Frac.
func significand(v Value) uint64 { return uint64(1)<<v.W | v.Frac }

// roundTo rounds a significand sig carrying w fraction bits (value
// sig/2^w ∈ [1,2)) down to wt fraction bits with round-to-nearest-even.
// sticky folds in any bits already discarded below sig. It returns the new
// significand and 1 if rounding overflowed to 2.0 (caller bumps exponent).
func roundTo(sig uint64, w, wt uint, sticky uint64) (uint64, uint64) {
	if w <= wt {
		return sig << (wt - w), 0
	}
	shift := w - wt
	dropped := sig & ((uint64(1) << shift) - 1)
	out := sig >> shift
	half := uint64(1) << (shift - 1)
	switch {
	case dropped > half || (dropped == half && sticky != 0):
		out++
	case dropped == half && sticky == 0:
		out += out & 1 // ties to even
	}
	if out == uint64(1)<<(wt+1) {
		return out >> 1, 1
	}
	return out, 0
}

// roundTo128 rounds a 128-bit significand (hi, lo) carrying w fraction
// bits down to wt fraction bits, round-to-nearest-even. Requires w >= wt.
func roundTo128(hi, lo uint64, w, wt uint) (uint64, uint64) {
	shift := w - wt
	var out, dropped, half uint64
	var stickyLow uint64
	switch {
	case shift == 0:
		return lo, 0 // caller guarantees the result fits 64 bits in this case
	case shift < 64:
		dropped = lo & ((uint64(1) << shift) - 1)
		out = lo>>shift | hi<<(64-shift)
		half = uint64(1) << (shift - 1)
		stickyLow = 0
	case shift == 64:
		dropped = lo
		out = hi
		half = uint64(1) << 63
	default: // shift in (64, 128)
		s := shift - 64
		dropped = hi & ((uint64(1) << s) - 1)
		stickyLow = lo
		out = hi >> s
		half = uint64(1) << (s - 1)
	}
	switch {
	case dropped > half || (dropped == half && stickyLow != 0):
		out++
	case dropped == half && stickyLow == 0:
		out += out & 1
	}
	if out == uint64(1)<<(wt+1) {
		return out >> 1, 1
	}
	return out, 0
}

// Mul computes a ⊗ b (eq. 5): sign XOR, exponent ring addition, mantissa
// product rounded to the format's ciphertext fraction width. The operand
// widths may differ (plaintext Lm vs noise lm−δ+γ); the result always has
// W = FracBits().
func (f Format) Mul(a, b Value) Value {
	wt := f.FracBits()
	ma, mb := significand(a), significand(b)
	hi, lo := bits.Mul64(ma, mb)
	pw := uint(a.W) + uint(b.W) // product fraction width; value ∈ [1, 4)
	// Normalize to [1, 2).
	var carry uint64
	topBit := pw + 1 // product ≥ 2 iff bit topBit is set
	var isTop bool
	if topBit < 64 {
		isTop = lo>>topBit != 0 || hi != 0
	} else {
		isTop = hi>>(topBit-64) != 0
	}
	if isTop {
		carry = 1
		pw++
	}
	sig, c2 := roundTo128(hi, lo, pw, wt)
	return Value{
		Sign: a.Sign ^ b.Sign,
		Exp:  f.ringAdd(f.ringAdd(a.Exp, b.Exp), carry+c2),
		Frac: sig & ((uint64(1) << wt) - 1),
		W:    uint8(wt),
	}
}

// Div computes a ⊗ b⁻¹ directly (single rounding), used by decryption:
// dec(k, r, c) = c ⊗ F_k(r)⁻¹. The quotient mantissa is computed by
// 128-by-64-bit integer division with the remainder feeding the sticky bit.
func (f Format) Div(a, b Value) Value {
	wt := f.FracBits()
	ma, mb := significand(a), significand(b)
	// Compute q = ma·2^S / mb with S sized so q has wt+3..wt+4 significant
	// bits: S = wt + 3 - Wa + Wb  ⇒  q ≈ (α/β)·2^(wt+3), α/β ∈ (1/2, 2).
	s := int(wt) + 3 - int(a.W) + int(b.W)
	for s < 0 { // defensive; unreachable with the package's own formats
		mb <<= 1
		s++
	}
	var nHi, nLo uint64
	switch {
	case s < 64:
		nLo = ma << uint(s)
		if s > 0 {
			nHi = ma >> uint(64-s)
		}
	default:
		nHi = ma << uint(s-64)
	}
	q, r := bits.Div64(nHi, nLo, mb) // nHi < mb holds for every Validate-accepted format
	sticky := r
	exp := f.ringSub(a.Exp, b.Exp)
	// q/2^(wt+3) ∈ (1/2, 2): one leading-bit test decides the exponent.
	qw := wt + 3
	if q>>qw == 0 { // quotient < 1: value in (1/2, 1)
		exp = f.ringSub(exp, 1)
		q <<= 1
		// the shifted-in zero is exact; sticky unchanged
	}
	sig, c := roundTo(q, qw, wt, sticky)
	return Value{
		Sign: a.Sign ^ b.Sign,
		Exp:  f.ringAdd(exp, c),
		Frac: sig & ((uint64(1) << wt) - 1),
		W:    uint8(wt),
	}
}

// Add implements the ring-exponent addition of §5.3.5: the two-difference
// comparison (d12 vs d21, the smaller is the true distance and its
// minuend the larger number), mantissa alignment with sticky-preserving
// right shift, signed combination, renormalization, and RNE rounding.
//
// The δ = 2 headroom guarantees the smaller difference is the true one for
// any ciphertexts produced from in-range plaintexts under a common noise
// factor (the v1 addition scheme encrypts every rank's element j with the
// same noise, so exponent *differences* are plaintext differences ±1).
func (f Format) Add(a, b Value) Value {
	wt := f.FracBits()
	// Bring both operands to a common working fraction width.
	w := a.W
	if b.W > w {
		w = b.W
	}
	ma := significand(a) << (w - a.W)
	mb := significand(b) << (w - b.W)

	d12 := f.ringSub(a.Exp, b.Exp)
	d21 := f.ringSub(b.Exp, a.Exp)
	var large, small Value
	var ml, ms uint64
	var shift uint64
	switch {
	case d12 == 0:
		if ma >= mb {
			large, small, ml, ms, shift = a, b, ma, mb, 0
		} else {
			large, small, ml, ms, shift = b, a, mb, ma, 0
		}
	case d12 < d21:
		large, small, ml, ms, shift = a, b, ma, mb, d12
	default:
		large, small, ml, ms, shift = b, a, mb, ma, d21
	}
	_ = small

	// Align the smaller mantissa: guardBits of extra precision + sticky.
	const guardBits = 3
	ml <<= guardBits
	ms <<= guardBits
	gw := uint(w) + guardBits
	var sticky uint64
	if shift >= uint64(gw)+2 {
		sticky = ms // entire small operand is below the guard bits
		ms = 0
	} else {
		sticky = ms & ((uint64(1) << shift) - 1)
		ms >>= shift
	}

	var sig uint64
	var sign uint8
	if a.Sign == b.Sign {
		sign = a.Sign
		sum := ml + ms // ≤ 2^(gw+2); gw ≤ 60 keeps this in range
		exp := large.Exp
		sw := gw
		if sum>>(sw+1) != 0 { // ∈ [2, 4): normalize right
			sticky |= sum & 1
			sum >>= 1
			exp = f.ringAdd(exp, 1)
		}
		out, c := roundTo(sum, sw, wt, sticky)
		return Value{Sign: sign, Exp: f.ringAdd(exp, c), Frac: out & ((uint64(1) << wt) - 1), W: uint8(wt)}
	}

	// Opposite signs: subtract the aligned smaller magnitude.
	sign = large.Sign
	if sticky != 0 {
		// Borrow one ulp for the sticky tail so rounding stays correct:
		// ml - (ms + sticky·ε) = (ml - ms - 1) + (1 - sticky·ε).
		sig = ml - ms - 1
		sticky = (uint64(1) << shift) - sticky // remaining fraction, non-zero
	} else {
		sig = ml - ms
	}
	if sig == 0 && sticky == 0 {
		// Exact cancellation. There is no true zero on the ring (§5.3.6);
		// return a value negligibly small relative to the operands.
		return Value{
			Sign: 0,
			Exp:  f.ringSub(large.Exp, uint64(wt)+2),
			Frac: 0,
			W:    uint8(wt),
		}
	}
	if sig == 0 {
		// The magnitude is entirely in the sticky tail, below one guard ulp
		// of the large operand; clamp to a tiny value at that scale.
		return Value{Sign: sign, Exp: f.ringSub(large.Exp, uint64(wt)+2), Frac: 0, W: uint8(wt)}
	}
	exp := large.Exp
	// Renormalize left; sig may have lost up to gw leading bits.
	top := 63 - bits.LeadingZeros64(sig) // index of leading one
	want := int(gw)
	if top < want {
		n := uint(want - top)
		sig <<= n
		// shifted-in zeros are exact only if sticky == 0; fold sticky into
		// the lowest bit so RNE still sees "something below".
		exp = f.ringSub(exp, uint64(n))
	}
	out, c := roundTo(sig, gw, wt, sticky)
	return Value{Sign: sign, Exp: f.ringAdd(exp, c), Frac: out & ((uint64(1) << wt) - 1), W: uint8(wt)}
}

// NoiseBytes is the keystream consumption per element: two 64-bit words.
const NoiseBytes = 16

// Noise draws the encryption noise F_k(r) ∈ F for element index idx of the
// stream identified by nonce: uniform sign, uniform ring exponent, uniform
// mantissa fraction at ciphertext width (l_mf = lm−δ+γ, l_ef = le+δ as
// §5.3.1 specifies). Two PRF words are consumed per element.
func (f Format) Noise(p prf.PRF, nonce, idx uint64) Value {
	return f.noiseFromWords(p.Uint64(nonce, idx*2), p.Uint64(nonce, idx*2+1))
}

// NoiseFromBytes decodes one element's noise from its 16-byte keystream
// span (bytes [16·idx, 16·idx+16) of the stream). Bit-identical to
// Noise(p, nonce, idx) — the bulk-encrypt path generates the whole
// keystream with one PRF call and slices it per element.
func (f Format) NoiseFromBytes(b []byte) Value {
	w0 := binary.LittleEndian.Uint64(b[0:8])
	w1 := binary.LittleEndian.Uint64(b[8:16])
	return f.noiseFromWords(w0, w1)
}

func (f Format) noiseFromWords(w0, w1 uint64) Value {
	wt := f.FracBits()
	return Value{
		Sign: uint8(w1 & 1),
		Exp:  (w1 >> 1) & f.expMask(),
		Frac: w0 & ((uint64(1) << wt) - 1),
		W:    uint8(wt),
	}
}

// NoiseNoSign is Noise with a fixed positive sign. The v1 addition scheme
// uses it: a shared random sign would be cancelled anyway (common factor),
// but a positive noise keeps the reduced ciphertext's sign equal to the
// sum's sign, which simplifies under/overflow detection after decryption.
func (f Format) NoiseNoSign(p prf.PRF, nonce, idx uint64) Value {
	v := f.Noise(p, nonce, idx)
	v.Sign = 0
	return v
}
