package hfp

import "encoding/binary"

// This file is the bulk fast path of the software FPU. The per-element
// Pack/Unpack in hfp.go assemble a generic 128-bit accumulator through
// closures — correct for every format, but far too slow for the float
// schemes' hot loops, where an FP32 ciphertext element costs two method
// dispatches and ~30 branchy byte operations before any arithmetic runs.
// Cell precomputes the format's bit-layout constants once and collapses
// pack/unpack to a single 64-bit shift/mask sequence for every cell of at
// most 8 bytes (all FP16/BF16/FP32 formats and the γ = 0 FP64 ForMul
// format); wider cells fall back to the generic path. FoldAdd/FoldMul
// fuse the Unpack→Add/Mul→Pack triple the schemes' Reduce used to spell
// out per element. All of it is bit-identical to the generic code — the
// engine's cross-check tests compare the two paths byte for byte.

// Cell is a precomputed codec for one ciphertext cell of a Format.
// The zero Cell is not valid; obtain one with Format.Cell.
type Cell struct {
	f        Format
	cs       int
	w, eb    uint
	fracMask uint64
	expMask  uint64
	wide     bool // cell wider than 8 bytes: generic 128-bit path
}

// Cell returns the bulk codec for the format's ciphertext cells.
func (f Format) Cell() Cell {
	w, eb := f.FracBits(), f.EBits()
	return Cell{
		f:        f,
		cs:       f.ByteSize(),
		w:        w,
		eb:       eb,
		fracMask: uint64(1)<<w - 1,
		expMask:  uint64(1)<<eb - 1,
		wide:     f.ByteSize() > 8,
	}
}

// Size returns the cell width in bytes (Format.ByteSize).
func (c Cell) Size() int { return c.cs }

// load reads exactly cs little-endian bytes. The exact-width loop matters
// for sharded callers: an 8-byte load on a 5-byte cell would read past a
// shard boundary into bytes another goroutine owns.
func (c Cell) load(src []byte) uint64 {
	if c.cs == 8 {
		return binary.LittleEndian.Uint64(src)
	}
	var v uint64
	for i := c.cs - 1; i >= 0; i-- {
		v = v<<8 | uint64(src[i])
	}
	return v
}

// store writes exactly cs little-endian bytes (see load on why exact).
func (c Cell) store(dst []byte, v uint64) {
	if c.cs == 8 {
		binary.LittleEndian.PutUint64(dst, v)
		return
	}
	for i := 0; i < c.cs; i++ {
		dst[i] = byte(v >> (8 * uint(i)))
	}
}

// Unpack reads one packed element, bit-identical to Format.Unpack.
func (c Cell) Unpack(src []byte) Value {
	if c.wide {
		return c.f.Unpack(src)
	}
	bits := c.load(src)
	return Value{
		Frac: bits & c.fracMask,
		Exp:  bits >> c.w & c.expMask,
		Sign: uint8(bits >> (c.w + c.eb) & 1),
		W:    uint8(c.w),
	}
}

// Pack writes one element into dst, bit-identical to Format.Pack.
func (c Cell) Pack(v Value, dst []byte) {
	if c.wide {
		c.f.Pack(v, dst)
		return
	}
	c.store(dst, v.Frac&c.fracMask|(v.Exp&c.expMask)<<c.w|uint64(v.Sign)<<(c.w+c.eb))
}

// Noise decodes one element's noise from its 16-byte keystream span,
// bit-identical to Format.NoiseFromBytes.
func (c Cell) Noise(b []byte) Value {
	w0 := binary.LittleEndian.Uint64(b[0:8])
	w1 := binary.LittleEndian.Uint64(b[8:16])
	return Value{
		Sign: uint8(w1 & 1),
		Exp:  w1 >> 1 & c.expMask,
		Frac: w0 & c.fracMask,
		W:    uint8(c.w),
	}
}

// FoldAdd folds n packed src elements into dst elementwise with the
// ring-exponent addition ⊞ — the float SUM v1 reduce kernel, fused so the
// layout constants are computed once per call instead of six method
// dispatches per element.
func (f Format) FoldAdd(dst, src []byte, n int) {
	c := f.Cell()
	cs := c.cs
	for j := 0; j < n; j++ {
		o := j * cs
		c.Pack(f.Add(c.Unpack(dst[o:]), c.Unpack(src[o:])), dst[o:])
	}
}

// FoldMul is FoldAdd for ⊗ — the float PROD (and SUM v2) reduce kernel.
func (f Format) FoldMul(dst, src []byte, n int) {
	c := f.Cell()
	cs := c.cs
	for j := 0; j < n; j++ {
		o := j * cs
		c.Pack(f.Mul(c.Unpack(dst[o:]), c.Unpack(src[o:])), dst[o:])
	}
}
