package hfp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hear/internal/prf"
)

func mustEncode(t *testing.T, f Format, x float64) Value {
	t.Helper()
	v, err := f.Encode(x)
	if err != nil {
		t.Fatalf("Encode(%g): %v", x, err)
	}
	return v
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

func TestFormatDerivedWidths(t *testing.T) {
	cases := []struct {
		f          Format
		eb, wb, cb uint
		bytes      int
	}{
		{FP32.ForMul(0), 8, 23, 32, 4},
		{FP32.ForAdd(0), 10, 21, 32, 4},
		{FP32.ForAdd(2), 10, 23, 34, 5},
		{FP16.ForAdd(0), 7, 8, 16, 2},
		{FP64.ForAdd(2), 13, 52, 66, 9},
		{FP64.ForMul(0), 11, 52, 64, 8},
	}
	for _, c := range cases {
		if c.f.EBits() != c.eb || c.f.FracBits() != c.wb || c.f.CipherBits() != c.cb || c.f.ByteSize() != c.bytes {
			t.Errorf("%+v: got (%d,%d,%d,%d), want (%d,%d,%d,%d)",
				c.f, c.f.EBits(), c.f.FracBits(), c.f.CipherBits(), c.f.ByteSize(), c.eb, c.wb, c.cb, c.bytes)
		}
	}
}

func TestValidate(t *testing.T) {
	good := []Format{FP16.ForAdd(0), FP32.ForMul(2), FP64.ForAdd(2)}
	for _, f := range good {
		if err := f.Validate(); err != nil {
			t.Errorf("%+v: %v", f, err)
		}
	}
	bad := []Format{
		{Le: 1, Lm: 10},
		{Le: 5, Lm: 2},
		{Le: 5, Lm: 10, Delta: 1},
		{Le: 5, Lm: 10, Gamma: 20},
		{Le: 14, Lm: 10},
	}
	for _, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("%+v: expected error", f)
		}
	}
}

func TestEncodeRejectsSpecials(t *testing.T) {
	f := FP32.ForAdd(0)
	for _, x := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := f.Encode(x); err == nil {
			t.Errorf("Encode(%v) accepted", x)
		}
	}
}

func TestEncodeZeroIsSmallest(t *testing.T) {
	f := FP16.ForAdd(0)
	v, err := f.Encode(0)
	if err != nil {
		t.Fatal(err)
	}
	if !f.IsZeroEncoding(v) {
		t.Errorf("zero encoded as %s, not the smallest value", f.String(v))
	}
	if got := f.Decode(v); got != math.Ldexp(1, int(f.MinExp())) {
		t.Errorf("Decode(zero-encoding) = %g", got)
	}
}

func TestEncodeOverflowErrors(t *testing.T) {
	f := FP16.ForAdd(0) // max exponent 15
	if _, err := f.Encode(math.Ldexp(1, 16)); err == nil {
		t.Error("2^16 accepted by FP16")
	}
	if _, err := f.Encode(math.Ldexp(1, 15)); err != nil {
		t.Errorf("2^15 rejected: %v", err)
	}
}

func TestEncodeUnderflowClampsToSmallest(t *testing.T) {
	f := FP16.ForAdd(0)
	v, err := f.Encode(math.Ldexp(1, -30))
	if err != nil {
		t.Fatal(err)
	}
	if !f.IsZeroEncoding(v) {
		t.Errorf("underflow encoded as %s", f.String(v))
	}
}

func TestEncodeDecodeRoundTripExact(t *testing.T) {
	f := FP32.ForAdd(2) // γ=2 keeps all 23 fraction bits
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		x := float64(math.Float32frombits(rng.Uint32()))
		if math.IsNaN(x) || math.IsInf(x, 0) || x == 0 {
			continue
		}
		fr, e := math.Frexp(x)
		_ = fr
		if int64(e-1) > f.MaxExp() || int64(e-1) < f.MinExp() {
			continue // IEEE subnormals fall below the HFP range
		}
		v, err := f.Encode(x)
		if err != nil {
			t.Fatalf("Encode(%g): %v", x, err)
		}
		if got := f.Decode(v); got != x {
			t.Fatalf("round trip %g -> %g", x, got)
		}
	}
}

func TestEncodeRoundsToNearestEven(t *testing.T) {
	f := Format{Le: 5, Lm: 4} // 4 fraction bits: ulp 1/16
	// 1 + 3/32 is exactly between 1+1/16 and 1+2/16: ties to even -> 1+2/16? no:
	// candidates frac=1 (odd) and frac=2 (even)... halfway rounds to even frac 2? RNE picks 2? halfway = 1.5 ulp -> frac 1.5 -> rounds to 2.
	v := mustEncode(t, f, 1+3.0/32)
	if v.Frac != 2 {
		t.Errorf("frac = %d, want 2 (ties-to-even)", v.Frac)
	}
	// 1 + 1/32 is between frac 0 and 1: ties to even -> 0.
	v = mustEncode(t, f, 1+1.0/32)
	if v.Frac != 0 {
		t.Errorf("frac = %d, want 0 (ties-to-even)", v.Frac)
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	formats := []Format{FP16.ForAdd(0), FP16.ForAdd(2), FP32.ForMul(0), FP32.ForAdd(2), FP64.ForAdd(2), FP64.ForMul(0)}
	rng := rand.New(rand.NewSource(7))
	for _, f := range formats {
		buf := make([]byte, f.ByteSize())
		for i := 0; i < 500; i++ {
			v := Value{
				Sign: uint8(rng.Intn(2)),
				Exp:  rng.Uint64() & f.expMask(),
				Frac: rng.Uint64() & ((uint64(1) << f.FracBits()) - 1),
				W:    uint8(f.FracBits()),
			}
			f.Pack(v, buf)
			got := f.Unpack(buf)
			if got != v {
				t.Fatalf("%+v: pack/unpack %+v -> %+v", f, v, got)
			}
		}
	}
}

func TestMulMatchesFloat64(t *testing.T) {
	for _, f := range []Format{FP32.ForMul(0), FP64.ForMul(0), FP16.ForMul(0)} {
		tol := math.Ldexp(1, -int(f.FracBits()))
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < 3000; i++ {
			x := (rng.Float64() + 0.5) * math.Ldexp(1, rng.Intn(12)-6)
			y := (rng.Float64() + 0.5) * math.Ldexp(1, rng.Intn(12)-6)
			if rng.Intn(2) == 0 {
				x = -x
			}
			a := mustEncode(t, f, x)
			b := mustEncode(t, f, y)
			got := f.Decode(f.Mul(a, b))
			if relErr(got, x*y) > 3*tol {
				t.Fatalf("%g * %g = %g, want %g (relerr %g)", x, y, got, x*y, relErr(got, x*y))
			}
		}
	}
}

func TestDivInvertsMul(t *testing.T) {
	for _, f := range []Format{FP16.ForMul(0), FP32.ForMul(0), FP32.ForAdd(2), FP64.ForMul(0)} {
		tol := 4 * math.Ldexp(1, -int(f.FracBits()))
		rng := rand.New(rand.NewSource(13))
		for i := 0; i < 3000; i++ {
			x := (rng.Float64() + 0.5) * math.Ldexp(1, rng.Intn(8)-4)
			y := (rng.Float64() + 0.5) * math.Ldexp(1, rng.Intn(8)-4)
			a := mustEncode(t, f, x)
			b := mustEncode(t, f, y)
			got := f.Decode(f.Div(f.Mul(a, b), b))
			if relErr(got, x) > tol {
				t.Fatalf("%+v: (x*y)/y = %g, want %g", f, got, x)
			}
		}
	}
}

func TestDivExactCases(t *testing.T) {
	f := FP16.ForAdd(0)
	a := mustEncode(t, f, 6.0)
	b := mustEncode(t, f, 1.5)
	if got := f.Decode(f.Div(a, b)); got != 4.0 {
		t.Errorf("6/1.5 = %g", got)
	}
	if got := f.Decode(f.Div(a, a)); got != 1.0 {
		t.Errorf("x/x = %g", got)
	}
}

func TestAddMatchesFloat64(t *testing.T) {
	for _, f := range []Format{FP32.ForAdd(2), FP64.ForAdd(2), FP16.ForAdd(2)} {
		tol := 4 * math.Ldexp(1, -int(f.FracBits()))
		rng := rand.New(rand.NewSource(17))
		for i := 0; i < 3000; i++ {
			x := (rng.Float64() + 0.5) * math.Ldexp(1, rng.Intn(10)-5)
			y := (rng.Float64() + 0.5) * math.Ldexp(1, rng.Intn(10)-5)
			if rng.Intn(2) == 0 {
				y = -y
			}
			sum := x + y
			if sum == 0 {
				continue // exact cancellation measured separately
			}
			// Cancellation amplifies relative error by the condition number
			// max(|x|,|y|)/|x+y|; scale the tolerance accordingly.
			cond := math.Max(math.Abs(x), math.Abs(y)) / math.Abs(sum)
			a := mustEncode(t, f, x)
			b := mustEncode(t, f, y)
			got := f.Decode(f.Add(a, b))
			if relErr(got, sum) > tol*(cond+1) {
				t.Fatalf("%+v: %g + %g = %g, want %g (relerr %g)", f, x, y, got, sum, relErr(got, sum))
			}
		}
	}
}

func TestAddCommutes(t *testing.T) {
	f := FP32.ForAdd(0)
	cfg := &quick.Config{MaxCount: 300}
	err := quick.Check(func(xb, yb uint32) bool {
		x := float64(math.Float32frombits(xb))
		y := float64(math.Float32frombits(yb))
		if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
			return true
		}
		a, err1 := f.Encode(x)
		b, err2 := f.Encode(y)
		if err1 != nil || err2 != nil {
			return true
		}
		return f.Add(a, b) == f.Add(b, a)
	}, cfg)
	if err != nil {
		t.Error(err)
	}
}

func TestAddExactCancellationIsTiny(t *testing.T) {
	f := FP32.ForAdd(2)
	a := mustEncode(t, f, 3.25)
	b := mustEncode(t, f, -3.25)
	got := f.Decode(f.Add(a, b))
	// No true zero on the ring: the result must be negligibly small
	// relative to the operands.
	if math.Abs(got) > 3.25*math.Ldexp(1, -int(f.FracBits())-1) {
		t.Errorf("cancellation result %g too large", got)
	}
}

// Homomorphic property of the v1 addition scheme: with a COMMON noise n,
// Σ(x_i ⊗ n) ⊗ n⁻¹ ≈ Σ x_i, even when the noise drives exponents around
// the ring (eq. 7, §5.3.3).
func TestHomomorphicAdditionUnderRingWrap(t *testing.T) {
	p, err := prf.New(prf.BackendAESFast, []byte("0123456789abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []Format{FP32.ForAdd(0), FP32.ForAdd(2), FP64.ForAdd(2), FP16.ForAdd(2)} {
		tol := 64 * math.Ldexp(1, -int(f.FracBits()))
		rng := rand.New(rand.NewSource(23))
		for trial := 0; trial < 200; trial++ {
			n := f.Noise(p, uint64(trial), 0)
			var want float64
			sumCipher := Value{}
			first := true
			for i := 0; i < 8; i++ {
				x := (rng.Float64() + 0.5) * math.Ldexp(1, rng.Intn(6)-3)
				if rng.Intn(3) == 0 {
					x = -x
				}
				want += x
				c := f.Mul(mustEncode(t, f, x), n)
				if first {
					sumCipher = c
					first = false
				} else {
					sumCipher = f.Add(sumCipher, c)
				}
			}
			if math.Abs(want) < 0.05 {
				continue
			}
			got := f.Decode(f.Div(sumCipher, n))
			if relErr(got, want) > tol {
				t.Fatalf("%+v trial %d: decrypted sum %g, want %g (relerr %g, noise %s)",
					f, trial, got, want, relErr(got, want), f.String(n))
			}
		}
	}
}

// Homomorphic property of the multiplication scheme: per-rank noises with
// telescoping ratios leave Πx ⊗ n_0 after reduction (eq. 6, §5.3.2).
func TestHomomorphicMultiplicationTelescopes(t *testing.T) {
	p, err := prf.New(prf.BackendAESFast, []byte("0123456789abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	f := FP64.ForMul(0)
	tol := 64 * math.Ldexp(1, -int(f.FracBits()))
	rng := rand.New(rand.NewSource(29))
	const P = 6
	for trial := 0; trial < 200; trial++ {
		noises := make([]Value, P)
		for i := range noises {
			noises[i] = f.Noise(p, uint64(i), uint64(trial))
		}
		want := 1.0
		var reduced Value
		for i := 0; i < P; i++ {
			x := (rng.Float64() + 0.5) * math.Ldexp(1, rng.Intn(4)-2)
			want *= x
			var c Value
			xe := mustEncode(t, f, x)
			if i == P-1 {
				c = f.Mul(xe, noises[i])
			} else {
				c = f.Mul(xe, f.Div(noises[i], noises[i+1]))
			}
			if i == 0 {
				reduced = c
			} else {
				reduced = f.Mul(reduced, c)
			}
		}
		got := f.Decode(f.Div(reduced, noises[0]))
		if relErr(got, want) > tol {
			t.Fatalf("trial %d: decrypted product %g, want %g", trial, got, want)
		}
	}
}

// Table 3 of the paper, float half of the worked examples (FP16, le=5, lm=10).
func TestTable3FloatSum(t *testing.T) {
	f := FP16.ForAdd(0)
	x1 := mustEncode(t, f, 1.75*math.Ldexp(1, 7))
	x2 := mustEncode(t, f, 1.25*math.Ldexp(1, 9))
	noise := mustEncode(t, f, 1.5*math.Ldexp(1, 13))

	c1 := f.Mul(x1, noise)
	c2 := f.Mul(x2, noise)
	if got := f.Decode(c1); got != 1.3125*math.Ldexp(1, 21) {
		t.Errorf("c1 = %s, want 1.3125×2^21", f.String(c1))
	}
	if got := f.Decode(c2); got != 1.875*math.Ldexp(1, 22) {
		t.Errorf("c2 = %s, want 1.875×2^22", f.String(c2))
	}
	reduced := f.Add(c1, c2)
	if got := f.Decode(reduced); got != 1.265625*math.Ldexp(1, 23) {
		t.Errorf("reduced = %s, want 1.265625×2^23", f.String(reduced))
	}
	dec := f.Div(reduced, noise)
	if got := f.Decode(dec); got != 1.6875*math.Ldexp(1, 9) {
		t.Errorf("decrypted = %s, want 1.6875×2^9", f.String(dec))
	}
}

func TestTable3FloatProd(t *testing.T) {
	f := FP16.ForMul(0)
	x1 := mustEncode(t, f, 1.125*math.Ldexp(1, 9))
	x2 := mustEncode(t, f, 1.375*math.Ldexp(1, 1))
	// Noise exponents 22 and −13 sit outside the FP16 *plaintext* range but
	// are valid ring elements; build them directly.
	negExp := int64(-13)
	n1 := Value{Sign: 0, Exp: 22 & f.expMask(), Frac: 0x300, W: uint8(f.FracBits())}             // 1.75×2^22
	n2 := Value{Sign: 0, Exp: uint64(negExp) & f.expMask(), Frac: 0x100, W: uint8(f.FracBits())} // 1.25×2^-13
	c1 := f.Mul(x1, f.Div(n1, n2))
	// On the 5-bit exponent ring (mod 32), Table 3's encrypted exponent 44
	// appears as 44 mod 32 = 12 — the same ring element.
	if e := f.SignedExp(c1.Exp); e != 12 {
		t.Errorf("c1 ring exponent = %d, want 44 mod 32 = 12", e)
	}
	m1 := 1 + float64(c1.Frac)/math.Ldexp(1, int(c1.W))
	if math.Abs(m1-1.575) > 1e-3 {
		t.Errorf("c1 mantissa = %g, want ~1.575", m1)
	}
	c2 := f.Mul(x2, n2)
	if got := f.Decode(c2); relErr(got, 1.71875*math.Ldexp(1, -12)) > 1e-3 {
		t.Errorf("c2 = %s, want 1.719×2^-12", f.String(c2))
	}
	reduced := f.Mul(c1, c2)
	dec := f.Div(reduced, n1)
	if got := f.Decode(dec); relErr(got, 1.546875*math.Ldexp(1, 10)) > 1e-3 {
		t.Errorf("decrypted = %s, want 1.547×2^10", f.String(dec))
	}
}

func TestNoiseIsDeterministicAndInRange(t *testing.T) {
	p, err := prf.New(prf.BackendAESFast, []byte("0123456789abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	f := FP32.ForAdd(2)
	for idx := uint64(0); idx < 100; idx++ {
		a := f.Noise(p, 5, idx)
		b := f.Noise(p, 5, idx)
		if a != b {
			t.Fatal("noise not deterministic")
		}
		if a.Exp > f.expMask() || a.Frac >= uint64(1)<<f.FracBits() || a.Sign > 1 {
			t.Fatalf("noise out of range: %+v", a)
		}
		if uint(a.W) != f.FracBits() {
			t.Fatalf("noise width %d, want %d", a.W, f.FracBits())
		}
	}
	if f.Noise(p, 1, 0) == f.Noise(p, 2, 0) {
		t.Error("noise identical across nonces")
	}
	if f.NoiseNoSign(p, 3, 0).Sign != 0 {
		t.Error("NoiseNoSign produced a negative value")
	}
}

func TestSignedExpWrap(t *testing.T) {
	f := FP16.ForAdd(0) // EBits = 7, ring mod 128
	cases := []struct {
		e    uint64
		want int64
	}{{0, 0}, {1, 1}, {63, 63}, {64, -64}, {127, -1}, {130, 2}}
	for _, c := range cases {
		if got := f.SignedExp(c.e); got != c.want {
			t.Errorf("SignedExp(%d) = %d, want %d", c.e, got, c.want)
		}
	}
}

func BenchmarkMulFP32(b *testing.B) {
	f := FP32.ForAdd(2)
	x, _ := f.Encode(1.337)
	n, _ := f.Encode(1.775)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = f.Mul(x, n)
		x.Exp = 3 // prevent drift
	}
}

func BenchmarkAddFP32(b *testing.B) {
	f := FP32.ForAdd(2)
	x, _ := f.Encode(1.337)
	y, _ := f.Encode(2.25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z := f.Add(x, y)
		_ = z
	}
}

func BenchmarkDivFP32(b *testing.B) {
	f := FP32.ForAdd(2)
	x, _ := f.Encode(1.337)
	y, _ := f.Encode(2.25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z := f.Div(x, y)
		_ = z
	}
}
