package hfp

import (
	"bytes"
	"math/rand"
	"testing"
)

// bulkFormats covers every cell width the schemes exercise: 2-byte FP16,
// sub-word 5-byte FP32.ForAdd(2), exactly-8-byte FP64.ForMul, and the
// 9-byte FP64.ForAdd(2) wide cell that takes the generic fallback.
var bulkFormats = []Format{
	FP16.ForAdd(0),
	FP16.ForMul(0),
	BF16.ForAdd(2),
	FP32.ForAdd(0),
	FP32.ForAdd(2),
	FP32.ForMul(0),
	FP32.ForMul(2),
	FP64.ForMul(0),
	FP64.ForAdd(2), // wide: 9-byte cell
}

// randomValue draws a Value uniform over the format's packed bit ranges —
// including non-canonical fractions — so pack/unpack identity is tested on
// every representable bit pattern, not just arithmetic results.
func randomValue(rng *rand.Rand, f Format) Value {
	return Value{
		Sign: uint8(rng.Intn(2)),
		Exp:  rng.Uint64() & ((uint64(1) << f.EBits()) - 1),
		Frac: rng.Uint64() & ((uint64(1) << f.FracBits()) - 1),
		W:    uint8(f.FracBits()),
	}
}

func TestCellPackUnpackMatchesFormat(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, f := range bulkFormats {
		c := f.Cell()
		if c.Size() != f.ByteSize() {
			t.Fatalf("%+v: Cell.Size %d != ByteSize %d", f, c.Size(), f.ByteSize())
		}
		bufC := make([]byte, c.Size())
		bufF := make([]byte, c.Size())
		for i := 0; i < 200; i++ {
			v := randomValue(rng, f)
			c.Pack(v, bufC)
			f.Pack(v, bufF)
			if !bytes.Equal(bufC, bufF) {
				t.Fatalf("%+v: Pack mismatch for %+v: cell %x format %x", f, v, bufC, bufF)
			}
			got, want := c.Unpack(bufF), f.Unpack(bufF)
			if got != want {
				t.Fatalf("%+v: Unpack mismatch: cell %+v format %+v", f, got, want)
			}
		}
	}
}

func TestCellPackWritesExactWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, f := range bulkFormats {
		c := f.Cell()
		// Pack into the middle of a poisoned buffer: bytes outside the cell
		// must be untouched (shard neighbours own them in the engine).
		buf := make([]byte, c.Size()+16)
		for i := range buf {
			buf[i] = 0xA5
		}
		c.Pack(randomValue(rng, f), buf[8:])
		for i := 0; i < 8; i++ {
			if buf[i] != 0xA5 || buf[8+c.Size()+i] != 0xA5 {
				t.Fatalf("%+v: Pack wrote outside its %d-byte cell", f, c.Size())
			}
		}
	}
}

func TestCellNoiseMatchesNoiseFromBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	span := make([]byte, NoiseBytes)
	for _, f := range bulkFormats {
		c := f.Cell()
		for i := 0; i < 200; i++ {
			rng.Read(span)
			if got, want := c.Noise(span), f.NoiseFromBytes(span); got != want {
				t.Fatalf("%+v: Noise mismatch on %x: cell %+v format %+v", f, span, got, want)
			}
		}
	}
}

// foldRef is the unfused reduce loop the schemes used to spell out.
func foldRef(f Format, op func(a, b Value) Value, dst, src []byte, n int) {
	cs := f.ByteSize()
	for j := 0; j < n; j++ {
		o := j * cs
		f.Pack(op(f.Unpack(dst[o:]), f.Unpack(src[o:])), dst[o:])
	}
}

func TestFoldAddMulMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const n = 257
	for _, f := range bulkFormats {
		cs := f.ByteSize()
		dst := make([]byte, n*cs)
		src := make([]byte, n*cs)
		for j := 0; j < n; j++ {
			f.Pack(randomValue(rng, f), dst[j*cs:])
			f.Pack(randomValue(rng, f), src[j*cs:])
		}
		for _, tc := range []struct {
			name string
			fold func(d, s []byte, n int)
			op   func(a, b Value) Value
		}{
			{"FoldAdd", f.FoldAdd, f.Add},
			{"FoldMul", f.FoldMul, f.Mul},
		} {
			got := append([]byte(nil), dst...)
			want := append([]byte(nil), dst...)
			tc.fold(got, src, n)
			foldRef(f, tc.op, want, src, n)
			if !bytes.Equal(got, want) {
				t.Fatalf("%+v: %s differs from reference loop", f, tc.name)
			}
		}
	}
}
