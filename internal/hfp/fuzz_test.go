package hfp

import (
	"math"
	"testing"
)

// Fuzz targets complement the property tests: the Go fuzzer explores the
// bit-level corners of the software FPU (denormal-adjacent encodings,
// ring-wrap exponents, rounding boundaries) that uniform random sampling
// rarely hits.

func FuzzPackUnpackRoundTrip(f *testing.F) {
	f.Add(uint8(0), uint64(0), uint64(0))
	f.Add(uint8(1), uint64(1023), uint64((1<<23)-1))
	f.Add(uint8(0), uint64(1<<12), uint64(1<<52-1))
	formats := []Format{FP16.ForAdd(0), BF16.ForAdd(2), FP32.ForMul(0), FP32.ForAdd(2), FP64.ForAdd(2)}
	f.Fuzz(func(t *testing.T, sign uint8, exp, frac uint64) {
		for _, fm := range formats {
			v := Value{
				Sign: sign & 1,
				Exp:  exp & fm.expMask(),
				Frac: frac & ((uint64(1) << fm.FracBits()) - 1),
				W:    uint8(fm.FracBits()),
			}
			buf := make([]byte, fm.ByteSize())
			fm.Pack(v, buf)
			if got := fm.Unpack(buf); got != v {
				t.Fatalf("%+v: %+v -> %+v", fm, v, got)
			}
		}
	})
}

func FuzzEncodeDecodeStable(f *testing.F) {
	f.Add(1.5)
	f.Add(-3.25e10)
	f.Add(5.877471754111438e-39)
	f.Fuzz(func(t *testing.T, x float64) {
		fm := FP64.ForAdd(2)
		v, err := fm.Encode(x)
		if err != nil {
			return // out of range / non-finite, fine
		}
		y := fm.Decode(v)
		// Decode∘Encode must be idempotent (a projection).
		v2, err := fm.Encode(y)
		if err != nil {
			t.Fatalf("re-encode of decoded %g failed: %v", y, err)
		}
		if v2 != v {
			t.Fatalf("Encode not idempotent: %g -> %+v -> %g -> %+v", x, v, y, v2)
		}
	})
}

func FuzzMulDivInverse(f *testing.F) {
	f.Add(uint64(100), uint64(5000), uint8(0), uint8(1))
	f.Fuzz(func(t *testing.T, fa, fb uint64, ea, eb uint8) {
		fm := FP32.ForMul(0)
		w := uint8(fm.FracBits())
		a := Value{Exp: uint64(ea) & fm.expMask(), Frac: fa & ((1 << fm.FracBits()) - 1), W: w}
		b := Value{Exp: uint64(eb) & fm.expMask(), Frac: fb & ((1 << fm.FracBits()) - 1), W: w, Sign: 1}
		// (a ⊗ b) ⊘ b must return a up to 2 ulp (two roundings).
		got := fm.Div(fm.Mul(a, b), b)
		if got.Sign != a.Sign {
			t.Fatalf("sign flip: %+v * %+v -> %+v", a, b, got)
		}
		// Compare mantissa·2^exp on the ring via a float reconstruction of
		// the ratio got/a, which must be within 2^-21 of 1.
		ma := 1 + float64(a.Frac)/math.Ldexp(1, int(a.W))
		mg := 1 + float64(got.Frac)/math.Ldexp(1, int(got.W))
		de := int64(got.Exp) - int64(a.Exp)
		if de > 1<<7 {
			de -= 1 << 8 // ring wrap on the 8-bit exponent
		}
		if de < -(1 << 7) {
			de += 1 << 8
		}
		ratio := mg / ma * math.Ldexp(1, int(de))
		if math.Abs(ratio-1) > math.Ldexp(1, -int(fm.FracBits())+2) {
			t.Fatalf("(a*b)/b drifted: ratio %g (a=%+v b=%+v got=%+v)", ratio, a, b, got)
		}
	})
}

func FuzzAddCommutesAndBounds(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint8(10), uint8(20))
	f.Fuzz(func(t *testing.T, fa, fb uint64, ea, eb uint8) {
		fm := FP32.ForAdd(2)
		w := uint8(fm.FracBits())
		a := Value{Exp: uint64(ea) & fm.expMask(), Frac: fa & ((1 << fm.FracBits()) - 1), W: w}
		b := Value{Exp: uint64(eb) & fm.expMask(), Frac: fb & ((1 << fm.FracBits()) - 1), W: w}
		ab := fm.Add(a, b)
		ba := fm.Add(b, a)
		if ab != ba {
			t.Fatalf("Add not commutative: %+v vs %+v", ab, ba)
		}
		if ab.Frac >= 1<<fm.FracBits() || ab.Exp > fm.expMask() {
			t.Fatalf("Add result out of field bounds: %+v", ab)
		}
	})
}
