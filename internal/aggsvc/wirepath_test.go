package aggsvc

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"runtime"
	"testing"
	"time"
)

// ---------------------------------------------------------------------------
// Test doubles: in-memory connections for driving the server's hot paths
// without sockets.

// replayConn replays a pre-encoded inbound byte stream and discards writes.
// Rewind re-arms it for the next benchmark iteration.
type replayConn struct {
	stream []byte
	off    int
}

func (c *replayConn) Read(p []byte) (int, error) {
	if c.off >= len(c.stream) {
		return 0, io.EOF
	}
	n := copy(p, c.stream[c.off:])
	c.off += n
	return n, nil
}

func (c *replayConn) Rewind()                          { c.off = 0 }
func (c *replayConn) Write(p []byte) (int, error)      { return len(p), nil }
func (c *replayConn) Close() error                     { return nil }
func (c *replayConn) LocalAddr() net.Addr              { return pipeAddr{} }
func (c *replayConn) RemoteAddr() net.Addr             { return pipeAddr{} }
func (c *replayConn) SetDeadline(time.Time) error      { return nil }
func (c *replayConn) SetReadDeadline(time.Time) error  { return nil }
func (c *replayConn) SetWriteDeadline(time.Time) error { return nil }

// discardConn counts written bytes and drops them.
type discardConn struct{ n int64 }

func (c *discardConn) Read([]byte) (int, error)         { return 0, io.EOF }
func (c *discardConn) Write(p []byte) (int, error)      { c.n += int64(len(p)); return len(p), nil }
func (c *discardConn) Close() error                     { return nil }
func (c *discardConn) LocalAddr() net.Addr              { return pipeAddr{} }
func (c *discardConn) RemoteAddr() net.Addr             { return pipeAddr{} }
func (c *discardConn) SetDeadline(time.Time) error      { return nil }
func (c *discardConn) SetReadDeadline(time.Time) error  { return nil }
func (c *discardConn) SetWriteDeadline(time.Time) error { return nil }

// encodeSubmitStream pre-encodes one full data lane as in-order SUBMIT
// frames, the exact byte stream a client would send.
func encodeSubmitStream(round uint64, lane []byte, chunk int) []byte {
	var buf bytes.Buffer
	for off := 0; off < len(lane); off += chunk {
		end := off + chunk
		if end > len(lane) {
			end = len(lane)
		}
		hdr := encodeSubmitHeader(submitHeader{Round: round, Lane: LaneData, Offset: off})
		if err := writeFrameSequential(&buf, FrameSubmit, hdr, lane[off:end]); err != nil {
			panic(err)
		}
	}
	return buf.Bytes()
}

// ingestHarness wires a Server, a half-filled round and a replayable SUBMIT
// stream so receiveLanes — the real ingress hot loop — can run repeatedly.
// The round's group is one larger than its membership, so it never
// completes and every iteration re-ingests against live accumulators.
type ingestHarness struct {
	s    *Server
	r    *roundState
	part *participant
	conn *replayConn
}

func newIngestHarness(elems, chunk int) (*ingestHarness, error) {
	s, err := NewServer(Config{Group: 2, ChunkBytes: chunk, RoundTimeout: time.Hour})
	if err != nil {
		return nil, err
	}
	laneBytes := elems * 8
	r := &roundState{
		id:     1,
		params: roundParams{scheme: SchemeInt64Sum, elems: elems},
		group:  2,
		chunk:  chunk,
		data:   make([]byte, laneBytes),
		fullCh: make(chan struct{}),
		doneCh: make(chan struct{}),
		joinCh: make(chan struct{}),
	}
	part := &participant{slot: 0}
	r.parts = []*participant{part}
	lane := make([]byte, laneBytes)
	for i := range lane {
		lane[i] = byte(i * 31)
	}
	conn := &replayConn{stream: encodeSubmitStream(r.id, lane, chunk)}
	return &ingestHarness{s: s, r: r, part: part, conn: conn}, nil
}

// ingestOnce replays the whole lane through receiveLanes and waits for the
// fold workers to drain, so each run's allocations are fully attributed.
func (h *ingestHarness) ingestOnce() error {
	h.conn.Rewind()
	h.part.dataGot, h.part.tagGot, h.part.submitted = 0, 0, false
	if ok := h.s.receiveLanes(h.conn, h.r, h.part, laneFolds[SchemeInt64Sum]); !ok {
		return fmt.Errorf("receiveLanes reported a dead connection")
	}
	if h.r.aborted() {
		return fmt.Errorf("round aborted: %v", h.r.abortErr)
	}
	for {
		h.r.mu.Lock()
		n := h.r.tasks
		h.r.mu.Unlock()
		if n == 0 {
			return nil
		}
		runtime.Gosched()
	}
}

// fanOutOnce runs the server's per-participant RESULT egress — the same
// resultVectors + vectored write finishRound performs — across conns.
func fanOutOnce(s *Server, r *roundState, conns []net.Conn) error {
	for _, c := range conns {
		pre, data, tagN, tags, surv := r.resultVectors()
		if err := s.writeWithDeadline(c, FrameResult, pre, data, tagN, tags, surv); err != nil {
			return err
		}
	}
	return nil
}

func newResultRound(id uint64, laneBytes int, tagged bool) *roundState {
	r := &roundState{
		id:     id,
		params: roundParams{scheme: SchemeInt64Sum, elems: laneBytes / 8, tagged: tagged},
		group:  1,
		data:   make([]byte, laneBytes),
		fullCh: make(chan struct{}),
		doneCh: make(chan struct{}),
		joinCh: make(chan struct{}),
	}
	for i := range r.data {
		r.data[i] = byte(i * 131)
	}
	if tagged {
		r.tags = make([]byte, laneBytes)
		for i := range r.tags {
			r.tags[i] = byte(i * 17)
		}
	}
	return r
}

// ---------------------------------------------------------------------------
// Allocation gates (the CI wirepath-bench job runs these).

// TestWirePathAllocFree pins the tentpole: the server's SUBMIT-fold ingress
// and RESULT fan-out egress allocate nothing at steady state.
func TestWirePathAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops items by design; zero-alloc contract asserted race-free (CI wirepath-bench)")
	}
	h, err := newIngestHarness(2048, 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer h.s.Close()
	// Warm the pools (mempool blocks, foldTasks, wireBufs) before counting.
	for i := 0; i < 3; i++ {
		if err := h.ingestOnce(); err != nil {
			t.Fatal(err)
		}
	}
	if n := testing.AllocsPerRun(20, func() {
		if err := h.ingestOnce(); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("SUBMIT-fold ingress allocates %.1f/op, want 0", n)
	}

	r := newResultRound(7, 64<<10, true)
	conns := make([]net.Conn, 16)
	for i := range conns {
		conns[i] = &discardConn{}
	}
	if err := fanOutOnce(h.s, r, conns); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		if err := fanOutOnce(h.s, r, conns); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("RESULT fan-out allocates %.1f/op, want 0", n)
	}
}

// TestFrameCodecAllocFree covers the fixed-payload encode/decode pairs the
// hot loop touches: staged into pooled scratch, they must not allocate.
func TestFrameCodecAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops items by design; zero-alloc contract asserted race-free (CI wirepath-bench)")
	}
	var scratch [joinPayloadBytes]byte
	h := helloFrame{Version: ProtocolVersion, Scheme: SchemeInt64Sum, Flags: FlagTagged, Elems: 8192, Epoch: 9}
	j := joinFrame{Round: 3, Slot: 1, Group: 8, DeadlineMS: 5000, ChunkBytes: 64 << 10, Epoch: 10}
	sh := submitHeader{Round: 3, Lane: LaneData, Offset: 1 << 20}
	resultPayload := encodeResult(12, make([]byte, 4096), make([]byte, 4096))
	cases := map[string]func(){
		"hello": func() {
			putHello(scratch[:helloPayloadBytesV2], h)
			if _, err := decodeHello(scratch[:helloPayloadBytesV2]); err != nil {
				t.Fatal(err)
			}
		},
		"join": func() {
			putJoin(scratch[:joinPayloadBytes], j)
			if _, err := decodeJoin(scratch[:joinPayloadBytes]); err != nil {
				t.Fatal(err)
			}
		},
		"submit-header": func() {
			putSubmitHeader(scratch[:submitHeaderBytes], sh)
			if _, err := decodeSubmitHeader(scratch[:submitHeaderBytes]); err != nil {
				t.Fatal(err)
			}
		},
		"result-decode": func() {
			if _, _, _, err := decodeResult(resultPayload); err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, fn := range cases {
		fn() // warm up
		if n := testing.AllocsPerRun(100, fn); n != 0 {
			t.Errorf("%s codec pair allocates %.1f/op, want 0", name, n)
		}
	}
	// writeFrame into a pre-grown sink: the vectored emit path itself.
	var sink bytes.Buffer
	payload := make([]byte, 64<<10)
	sink.Grow(len(payload) + 64)
	emit := func() {
		sink.Reset()
		putSubmitHeader(scratch[:submitHeaderBytes], sh)
		if err := writeFrame(&sink, FrameSubmit, scratch[:submitHeaderBytes], payload); err != nil {
			t.Fatal(err)
		}
	}
	emit()
	if n := testing.AllocsPerRun(100, emit); n != 0 {
		t.Errorf("writeFrame allocates %.1f/op, want 0", n)
	}
}

// ---------------------------------------------------------------------------
// Semantics: one encode per round, bit-identical wire bytes.

// TestResultVectorsOneEncode proves the RESULT fan-out performs exactly one
// lane encode per round regardless of participant count: every call hands
// back the same prefix scratch and the accumulators themselves, zero-copy.
func TestResultVectorsOneEncode(t *testing.T) {
	r := newResultRound(42, 4096, true)
	pre0, data0, tagN0, tags0, surv0 := r.resultVectors()
	if surv0 != nil {
		t.Fatalf("complete round carries a survivor trailer: %x", surv0)
	}
	if got := binary.LittleEndian.Uint64(pre0[0:8]); got != 42 {
		t.Fatalf("prefix round = %d, want 42", got)
	}
	if got := binary.LittleEndian.Uint32(pre0[8:12]); int(got) != len(r.data) {
		t.Fatalf("prefix data length = %d, want %d", got, len(r.data))
	}
	if got := binary.LittleEndian.Uint32(tagN0); int(got) != len(r.tags) {
		t.Fatalf("tag length = %d, want %d", got, len(r.tags))
	}
	if &data0[0] != &r.data[0] || &tags0[0] != &r.tags[0] {
		t.Fatal("resultVectors copied a lane; fan-out must reference the accumulators")
	}
	for i := 0; i < 64; i++ { // 64 participants' worth of fan-out calls
		pre, data, tagN, tags, _ := r.resultVectors()
		if &pre[0] != &pre0[0] || &data[0] != &data0[0] || &tagN[0] != &tagN0[0] || &tags[0] != &tags0[0] {
			t.Fatalf("fan-out call %d re-encoded the RESULT", i)
		}
	}
}

// TestResultFanOutBitIdentical proves the vectored fan-out emits wire bytes
// identical to the legacy per-participant encode+copy path, tagged and
// untagged, including through the server's own finishRound vectors.
func TestResultFanOutBitIdentical(t *testing.T) {
	for _, tagged := range []bool{false, true} {
		r := newResultRound(99, 8192, tagged)
		legacy := make([]*bytes.Buffer, 3)
		vectored := make([]*bytes.Buffer, 3)
		lw := make([]io.Writer, 3)
		vw := make([]io.Writer, 3)
		for i := range legacy {
			legacy[i], vectored[i] = &bytes.Buffer{}, &bytes.Buffer{}
			lw[i], vw[i] = legacy[i], vectored[i]
		}
		data, tags := r.resultLanes()
		if err := FanOutResultLegacy(lw, r.id, data, tags); err != nil {
			t.Fatal(err)
		}
		if err := FanOutResultVectored(vw, r.id, data, tags); err != nil {
			t.Fatal(err)
		}
		for i := range legacy {
			if !bytes.Equal(legacy[i].Bytes(), vectored[i].Bytes()) {
				t.Fatalf("tagged=%v conn %d: vectored fan-out diverges from legacy wire bytes", tagged, i)
			}
		}
		// The server's own vectors concatenate to the same frame.
		var srv bytes.Buffer
		pre, d, tagN, tg, st := r.resultVectors()
		if err := writeFrame(&srv, FrameResult, pre, d, tagN, tg, st); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(srv.Bytes(), legacy[0].Bytes()) {
			t.Fatalf("tagged=%v: finishRound vectors diverge from legacy wire bytes", tagged)
		}
	}
}

// fixedSealer submits caller-chosen lane bytes verbatim and captures the
// reduced lanes, so rounds can be driven with known inputs per scheme.
type fixedSealer struct {
	scheme       uint8
	cipher, tags []byte
	gotData      []byte
	gotTags      []byte
}

func (s *fixedSealer) Seal([]int64, uint64) (cipher, tags []byte, err error) {
	return s.cipher, s.tags, nil
}
func (s *fixedSealer) Verify(data, tags []byte) error {
	s.gotData = append([]byte(nil), data...)
	s.gotTags = append([]byte(nil), tags...)
	return nil
}
func (s *fixedSealer) Open([]byte, []int64) error { return nil }
func (s *fixedSealer) Tagged() bool               { return s.tags != nil }
func (s *fixedSealer) Epoch() uint64              { return 0 }
func (s *fixedSealer) SchemeID() uint8            { return s.scheme }

// TestInPlaceFoldBitIdentical runs full rounds through the zero-copy
// gateway — aligned in-place folds, vectored RESULT fan-out — for every
// fold scheme, tagged and untagged, and demands aggregates byte-identical
// to the old path: fold kernels applied to a staged copy of each lane.
func TestInPlaceFoldBitIdentical(t *testing.T) {
	const group, elems = 3, 512
	cases := []struct {
		name   string
		scheme uint8
		tagged bool
	}{
		{"sum", SchemeInt64Sum, false},
		{"sum-tagged", SchemeInt64Sum, true},
		{"prod", SchemeInt64Prod, false},
		{"xor", SchemeInt64Xor, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, l := startPipeServer(t, Config{Group: group, ChunkBytes: 1024})
			lanes := make([]*fixedSealer, group)
			laneBytes := elems * 8
			for i := range lanes {
				lanes[i] = &fixedSealer{scheme: tc.scheme, cipher: make([]byte, laneBytes)}
				for j := range lanes[i].cipher {
					lanes[i].cipher[j] = byte((i + 1) * (j + 13))
				}
				if tc.tagged {
					// Tag lanes carry reduced mod-2^61-1 residues (SumMod61's
					// input contract); unreduced words would make the fold
					// order-sensitive and the comparison meaningless.
					lanes[i].tags = make([]byte, laneBytes)
					for j := 0; j+8 <= laneBytes; j += 8 {
						word := uint64(i+7) * uint64(j+3) * 0x9e3779b9 % ((1 << 61) - 1)
						binary.LittleEndian.PutUint64(lanes[i].tags[j:], word)
					}
				}
			}
			done := make(chan error, group)
			vals := make([]int64, elems)
			for i := range lanes {
				go func(fs *fixedSealer) {
					conn, err := l.Dial()
					if err != nil {
						done <- err
						return
					}
					defer conn.Close()
					c := NewClient(conn, fs, ClientOptions{Timeout: 10 * time.Second})
					out := make([]int64, elems)
					_, err = c.Aggregate(vals, out)
					done <- err
				}(lanes[i])
			}
			for range lanes {
				if err := <-done; err != nil {
					t.Fatal(err)
				}
			}
			// The old path: stage a copy of each submitted lane, fold into a
			// fresh identity-seeded accumulator.
			folds := laneFolds[tc.scheme]
			want := make([]byte, laneBytes)
			identitySeed(tc.scheme, want)
			for _, fs := range lanes {
				staged := append([]byte(nil), fs.cipher...)
				folds.data(want, staged)
			}
			var wantTags []byte
			if tc.tagged {
				wantTags = make([]byte, laneBytes)
				for _, fs := range lanes {
					staged := append([]byte(nil), fs.tags...)
					folds.tag(wantTags, staged)
				}
			}
			for i, fs := range lanes {
				if !bytes.Equal(fs.gotData, want) {
					t.Errorf("client %d: in-place fold diverges from staged-copy fold", i)
				}
				if tc.tagged && !bytes.Equal(fs.gotTags, wantTags) {
					t.Errorf("client %d: tag lane diverges from staged-copy fold", i)
				}
			}
		})
	}
}

// TestClientReadBufReuse pins the client ingest: sequential rounds on one
// client reuse a single high-water read buffer, and a ReadBufPool recycles
// it across client lifetimes.
func TestClientReadBufReuse(t *testing.T) {
	_, l := startPipeServer(t, Config{Group: 1, ChunkBytes: 4096})
	c := dialPipe(t, l, ClientOptions{})
	vals := make([]int64, 1024)
	out := make([]int64, 1024)
	for i := range vals {
		vals[i] = int64(i)
	}
	if _, err := c.Aggregate(vals, out); err != nil {
		t.Fatal(err)
	}
	buf0 := &c.rbuf[0]
	high := cap(c.rbuf)
	for i := 0; i < 3; i++ {
		if _, err := c.Aggregate(vals, out); err != nil {
			t.Fatal(err)
		}
		if &c.rbuf[0] != buf0 || cap(c.rbuf) != high {
			t.Fatalf("round %d reallocated the read buffer", i)
		}
	}
}

// ---------------------------------------------------------------------------
// BenchmarkWirePath: the numbers behind BENCH_wirepath.json's in-repo gate.

func BenchmarkWirePath(b *testing.B) {
	const elems, chunk = 8192, 16 << 10 // 64 KiB lane in 4 chunks
	b.Run("submit-fold", func(b *testing.B) {
		h, err := newIngestHarness(elems, chunk)
		if err != nil {
			b.Fatal(err)
		}
		defer h.s.Close()
		for i := 0; i < 3; i++ {
			if err := h.ingestOnce(); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(elems * 8))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := h.ingestOnce(); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, bc := range []struct {
		name string
		fan  func(conns []net.Conn, s *Server, r *roundState, w []io.Writer) error
	}{
		{"result-fanout", func(conns []net.Conn, s *Server, r *roundState, _ []io.Writer) error {
			return fanOutOnce(s, r, conns)
		}},
		{"result-fanout-legacy", func(_ []net.Conn, _ *Server, r *roundState, w []io.Writer) error {
			data, tags := r.resultLanes()
			return FanOutResultLegacy(w, r.id, data, tags)
		}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			s, err := NewServer(Config{Group: 2})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			r := newResultRound(5, 64<<10, false)
			conns := make([]net.Conn, 64)
			writers := make([]io.Writer, 64)
			for i := range conns {
				c := &discardConn{}
				conns[i], writers[i] = c, c
			}
			if err := bc.fan(conns, s, r, writers); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(conns) * (frameHeaderBytes + 16 + len(r.data))))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := bc.fan(conns, s, r, writers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("client-read", func(b *testing.B) {
		var frame bytes.Buffer
		payload := make([]byte, 64<<10)
		if err := writeFrame(&frame, FrameResult, payload); err != nil {
			b.Fatal(err)
		}
		conn := &replayConn{stream: frame.Bytes()}
		buf := []byte(nil)
		b.SetBytes(int64(frame.Len()))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			conn.Rewind()
			var err error
			_, buf, _, err = ReadFrameInto(conn, buf, DefaultMaxFrameBytes)
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}
