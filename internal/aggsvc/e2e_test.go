package aggsvc_test

import (
	"errors"
	"net"
	"os/exec"
	"strings"
	"sync"
	"testing"
	"time"

	"hear"
	"hear/internal/aggsvc"
	"hear/internal/homac"
	"hear/internal/mpi"
)

// setupGroup builds a gateway group of real HEAR participants sharing a
// world and a HoMAC verification key.
func setupGroup(t *testing.T, size int, seed uint64) []*hear.GatewaySealer {
	t.Helper()
	w := mpi.NewWorld(size)
	ctxs, err := hear.Init(w, hear.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var verifier *homac.Vector
	if seed != 0 {
		verifier, err = hear.NewVerifier(seed)
		if err != nil {
			t.Fatal(err)
		}
	}
	sealers := make([]*hear.GatewaySealer, size)
	for i, c := range ctxs {
		sealers[i] = c.NewGatewaySealer(verifier)
	}
	return sealers
}

// TestEndToEndTCP is the acceptance scenario: 8 clients × 8192 int64
// elements (64 KiB lanes) complete verified SUM rounds over real TCP
// loopback; every decrypted aggregate matches the plaintext reference. The
// gateway only ever sees sealed lanes — it runs in this process but links
// no key material (see TestServerKeyBlind).
func TestEndToEndTCP(t *testing.T) {
	const group, elems, rounds = 8, 8192, 2
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	s, err := aggsvc.NewServer(aggsvc.Config{Group: group, Elems: elems, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	defer s.Close()
	addr := l.Addr().String()

	sealers := setupGroup(t, group, 0xe2e)
	inputs := make([][]int64, group)
	want := make([]int64, elems)
	for i := range inputs {
		inputs[i] = make([]int64, elems)
		for j := range inputs[i] {
			inputs[i][j] = int64((i+1)*(j+1)) - 17
			want[j] += inputs[i][j]
		}
	}

	var wg sync.WaitGroup
	errs := make([]error, group)
	for i := 0; i < group; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := aggsvc.Dial(addr, sealers[i], aggsvc.ClientOptions{Timeout: 30 * time.Second})
			if err != nil {
				errs[i] = err
				return
			}
			defer c.Close()
			out := make([]int64, elems)
			for r := 0; r < rounds; r++ {
				info, err := c.Aggregate(inputs[i], out)
				if err != nil {
					errs[i] = err
					return
				}
				if info.Group != group {
					errs[i] = errors.New("wrong group size in round info")
					return
				}
				for j := range out {
					if out[j] != want[j] {
						t.Errorf("client %d round %d elem %d = %d, want %d", i, r, j, out[j], want[j])
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
}

// A gateway that tampers with the aggregate must be caught by HoMAC
// verification on the client, not decrypted into silently wrong values.
// tamperConn flips one ciphertext bit of the RESULT frame in flight.
type tamperConn struct {
	net.Conn
	tampered bool
}

func (c *tamperConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 40 && !c.tampered { // a RESULT payload, past the lane length prefix
		p[40] ^= 0x01
		c.tampered = true
	}
	return n, err
}

func TestEndToEndTamperDetected(t *testing.T) {
	const group, elems = 2, 64
	s, err := aggsvc.NewServer(aggsvc.Config{Group: group})
	if err != nil {
		t.Fatal(err)
	}
	l := aggsvc.NewPipeListener()
	go s.Serve(l)
	defer s.Close()

	sealers := setupGroup(t, group, 0xbad)
	var wg sync.WaitGroup
	errs := make([]error, group)
	for i := 0; i < group; i++ {
		wg.Add(1)
		conn, err := l.Dial()
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			conn = &tamperConn{Conn: conn}
		}
		c := aggsvc.NewClient(conn, sealers[i], aggsvc.ClientOptions{Timeout: 10 * time.Second})
		go func(i int) {
			defer wg.Done()
			defer c.Close()
			out := make([]int64, elems)
			_, errs[i] = c.Aggregate(make([]int64, elems), out)
		}(i)
	}
	wg.Wait()
	var vf *hear.ErrVerificationFailed
	if !errors.As(errs[0], &vf) {
		t.Errorf("tampered client got %v, want *hear.ErrVerificationFailed", errs[0])
	}
	if errs[1] != nil {
		t.Errorf("untampered client: %v", errs[1])
	}
}

// TestServerKeyBlind pins the gateway's central security property at the
// package level: internal/aggsvc must not depend on any key material — not
// the hear root package (contexts, sealers) and not internal/keys. A client
// links keys; the server never can.
func TestServerKeyBlind(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go tool unavailable: %v", err)
	}
	out, err := exec.Command(goBin, "list", "-deps", "hear/internal/aggsvc").Output()
	if err != nil {
		t.Fatalf("go list -deps: %v", err)
	}
	for _, dep := range strings.Fields(string(out)) {
		if dep == "hear" || dep == "hear/internal/keys" || dep == "hear/internal/homac" {
			t.Errorf("internal/aggsvc depends on key-bearing package %q", dep)
		}
	}
}
