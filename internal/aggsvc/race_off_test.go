//go:build !race

package aggsvc

const raceEnabled = false
