package aggsvc

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"hear/internal/metrics"
)

// TestGatewayMetricsEndToEnd drives a real completed round and a real
// aborted round through one server and asserts the registry moves in
// lockstep with the gateway's own accounting: round counters advance,
// traffic bytes accumulate, and the same snapshot renders as a Prometheus
// exposition.
func TestGatewayMetricsEndToEnd(t *testing.T) {
	reg := metrics.New()
	_, l := startPipeServer(t, Config{
		Group:        2,
		RoundTimeout: 100 * time.Millisecond,
		Metrics:      reg,
	})

	// Round 1: both participants show up — completes.
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		c := dialPipe(t, l, ClientOptions{})
		go func(i int) {
			defer wg.Done()
			out := make([]int64, 8)
			_, errs[i] = c.Aggregate([]int64{1, 2, 3, 4, 5, 6, 7, 8}, out)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}

	// Round 2: one participant alone — aborts at the deadline.
	c := dialPipe(t, l, ClientOptions{Timeout: 5 * time.Second})
	out := make([]int64, 1)
	_, err := c.Aggregate([]int64{9}, out)
	var aerr *AbortError
	if !errors.As(err, &aerr) {
		t.Fatalf("lone aggregate = %v, want *AbortError", err)
	}

	m := reg.Map()
	if got := m["hear_gateway_rounds_completed_total"]; got != 1 {
		t.Errorf("rounds_completed = %g, want 1", got)
	}
	if got := m["hear_gateway_rounds_aborted_total"]; got != 1 {
		t.Errorf("rounds_aborted = %g, want 1", got)
	}
	if got := m["hear_gateway_clients_joined_total"]; got != 3 {
		t.Errorf("clients_joined = %g, want 3", got)
	}
	if m["hear_gateway_bytes_in_total"] == 0 || m["hear_gateway_bytes_out_total"] == 0 {
		t.Errorf("traffic not accounted: in=%g out=%g",
			m["hear_gateway_bytes_in_total"], m["hear_gateway_bytes_out_total"])
	}
	if m[`hear_gateway_phase_ops_total{phase="fold"}`] == 0 {
		t.Error("fold phase did not publish")
	}
	if got := m["hear_gateway_rounds_active"]; got != 0 {
		t.Errorf("rounds_active gauge = %g, want 0 after both rounds ended", got)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE hear_gateway_rounds_completed_total counter",
		"hear_gateway_rounds_completed_total 1",
		"# TYPE hear_gateway_rounds_active gauge",
		`hear_gateway_phase_seconds_total{phase="fold"}`,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
