package aggsvc

import (
	"fmt"
	"time"
)

// Backoff computes jittered exponential retry delays: Base doubling per
// attempt up to Max, with ±25% deterministic jitter derived from Seed and a
// per-Backoff counter — so a thundering herd of identically-configured
// retriers (a client fleet, a federation's leaf gateways redialing one
// root) spreads out instead of hammering in lockstep. The zero value uses
// 50ms/2s. Not safe for concurrent use; each retry loop owns its Backoff.
type Backoff struct {
	Base time.Duration // first delay (default 50ms)
	Max  time.Duration // delay ceiling (default 2s)
	Seed int64         // jitter seed; distinct per retrier
	n    uint64        // lifetime counter feeding the jitter hash
}

// Next returns the delay before re-attempt number attempt (1-based: pass 1
// before the first retry).
func (b *Backoff) Next(attempt int) time.Duration {
	base, max := b.Base, b.Max
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max <= 0 {
		max = 2 * time.Second
	}
	b.n++
	return jitterDelay(base, max, b.Seed, b.n, attempt)
}

// Sleep blocks for Next(attempt).
func (b *Backoff) Sleep(attempt int) { time.Sleep(b.Next(attempt)) }

// jitterDelay maps (base doubling per attempt, capped at max) through a
// ±25% jitter keyed by seed and a lifetime counter. attempt is 1-based.
func jitterDelay(base, max time.Duration, seed int64, counter uint64, attempt int) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	d := base << (attempt - 1)
	if d > max || d <= 0 {
		d = max
	}
	h := uint64(seed) ^ (counter * 0x9e3779b97f4a7c15)
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	// Map the hash into [-d/4, +d/4).
	jitter := time.Duration(int64(h%uint64(d/2+1)) - int64(d/4))
	return d + jitter
}

// GiveUpError is the typed terminal failure of a retried operation: every
// attempt failed and the retry budget is spent. Last is the final attempt's
// error and unwraps, so errors.As still reaches a terminal *AbortError.
type GiveUpError struct {
	Op       string // what was being retried ("round", "dial upstream", ...)
	Attempts int    // total attempts made
	Last     error  // the last attempt's failure
}

func (e *GiveUpError) Error() string {
	return fmt.Sprintf("aggsvc: %s failed after %d attempts: %v", e.Op, e.Attempts, e.Last)
}

func (e *GiveUpError) Unwrap() error { return e.Last }
