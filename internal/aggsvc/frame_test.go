package aggsvc

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"testing"
)

// Every payload codec must round-trip exactly and reject truncated
// buffers with an error, never a panic: the decoders run on bytes an
// untrusted peer framed.

func TestHelloRoundTrip(t *testing.T) {
	cases := []helloFrame{
		// v2 hellos carry a key-schedule rank (rankUnknown on the wire for -1).
		{Version: ProtocolVersion, Scheme: SchemeInt64Sum, Flags: FlagTagged | FlagDegradedOK, Elems: 8192, Epoch: 7, Rank: 3},
		{Version: ProtocolVersion, Scheme: SchemeInt64Prod, Flags: 0, Elems: 1, Epoch: 2, Rank: -1},
		{Version: 0xffff, Scheme: SchemeInt64Prod, Flags: 0, Elems: 0, Epoch: math.MaxUint64, Rank: 0},
		// v1 hellos have no rank field; the decoder reports -1.
		{Version: ProtocolV1, Scheme: SchemeInt64Sum, Flags: FlagTagged, Elems: 8192, Epoch: 7, Rank: -1},
		{Version: 0, Scheme: SchemeInt64Xor, Flags: 0xff, Elems: math.MaxUint32, Epoch: 0, Rank: -1},
	}
	for _, want := range cases {
		p := encodeHello(want)
		if len(p) != helloSize(want.Version) {
			t.Fatalf("HELLO v%d payload %d B, want %d", want.Version, len(p), helloSize(want.Version))
		}
		got, err := decodeHello(p)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("round trip %+v -> %+v", want, got)
		}
	}
	for _, n := range []int{0, 1, helloPayloadBytes - 1, helloPayloadBytes + 1, helloPayloadBytesV2 + 1} {
		if _, err := decodeHello(make([]byte, n)); err == nil {
			t.Errorf("decodeHello accepted %d B payload", n)
		}
	}
	// The payload length is version-determined: a v1 hello padded to v2
	// length (or a v2 hello truncated to v1 length) is a protocol violation.
	long := encodeHello(helloFrame{Version: ProtocolVersion, Scheme: SchemeInt64Sum, Elems: 4, Rank: 1})
	if _, err := decodeHello(long[:helloPayloadBytes]); err == nil {
		t.Error("decodeHello accepted a v2 hello truncated to v1 length")
	}
	short := encodeHello(helloFrame{Version: ProtocolV1, Scheme: SchemeInt64Sum, Elems: 4, Rank: -1})
	if _, err := decodeHello(append(short, 0, 0, 0, 0)); err == nil {
		t.Error("decodeHello accepted a v1 hello padded to v2 length")
	}
	// degradedOK requires both the v2 flag and a v2 version.
	if (helloFrame{Version: ProtocolV1, Flags: FlagDegradedOK}).degradedOK() {
		t.Error("v1 hello reported degradedOK")
	}
	if !(helloFrame{Version: ProtocolVersion, Flags: FlagDegradedOK}).degradedOK() {
		t.Error("v2 hello with FlagDegradedOK not reported degradedOK")
	}
}

func TestSurvivorsRoundTrip(t *testing.T) {
	cases := []survivorsFrame{
		{Round: 9, Complete: true, Ranks: []uint32{0, 2, 5}},
		{Round: 1, Complete: false, Ranks: []uint32{7}},
		{Round: math.MaxUint64, Complete: true, Ranks: nil},
	}
	for _, want := range cases {
		p := encodeSurvivors(want)
		if len(p) != survivorsHeadBytes+4*len(want.Ranks) {
			t.Fatalf("SURVIVORS payload %d B, want %d", len(p), survivorsHeadBytes+4*len(want.Ranks))
		}
		got, err := decodeSurvivors(p)
		if err != nil {
			t.Fatal(err)
		}
		if got.Round != want.Round || got.Complete != want.Complete || !reflect.DeepEqual(got.Ranks, want.Ranks) {
			t.Fatalf("round trip %+v -> %+v", want, got)
		}
		// The rank list length is exact: every strict prefix and any padding
		// must be rejected.
		for n := 0; n < len(p); n++ {
			if _, err := decodeSurvivors(p[:n]); err == nil {
				t.Fatalf("decodeSurvivors accepted %d of %d B", n, len(p))
			}
		}
		if _, err := decodeSurvivors(append(p, 0)); err == nil {
			t.Fatal("decodeSurvivors accepted a padded payload")
		}
	}
	// A declared count overrunning the payload must error, not panic.
	bad := encodeSurvivors(survivorsFrame{Round: 3, Ranks: []uint32{1, 2}})
	bad[9] = 0xff
	if _, err := decodeSurvivors(bad); err == nil {
		t.Error("decodeSurvivors accepted an overrunning rank count")
	}
}

func TestResultV2SurvivorTrailer(t *testing.T) {
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	tags := []byte{9, 10, 11, 12, 13, 14, 15, 16}
	// No trailer: survivors must come back nil (complete aggregate), and the
	// bytes are exactly the v1 encoding.
	plain := encodeResult(5, data, tags)
	round, d, tg, surv, err := decodeResultV2(plain)
	if err != nil {
		t.Fatal(err)
	}
	if round != 5 || !bytes.Equal(d, data) || !bytes.Equal(tg, tags) || surv != nil {
		t.Fatalf("complete RESULT decoded (%d, %x, %x, %v)", round, d, tg, surv)
	}
	// With a trailer: survivors decode exactly, tagged and untagged.
	for _, tgs := range [][]byte{tags, nil} {
		want := []uint32{0, 3, 4}
		p := append(encodeResult(7, data, tgs), encodeSurvivorList(want)...)
		round, d, tg, surv, err = decodeResultV2(p)
		if err != nil {
			t.Fatal(err)
		}
		if round != 7 || !bytes.Equal(d, data) || !bytes.Equal(tg, tgs) || !reflect.DeepEqual(surv, want) {
			t.Fatalf("degraded RESULT decoded (%d, %x, %x, %v)", round, d, tg, surv)
		}
		// Truncating the trailer anywhere must error — a short read cannot
		// silently turn a degraded RESULT into a complete one.
		for n := len(p) - len(encodeSurvivorList(want)) + 1; n < len(p); n++ {
			if _, _, _, _, err := decodeResultV2(p[:n]); err == nil {
				t.Fatalf("decodeResultV2 accepted %d of %d B", n, len(p))
			}
		}
	}
	// An empty survivor set is malformed: it would claim an aggregate over
	// nobody.
	empty := append(encodeResult(7, data, nil), encodeSurvivorList(nil)...)
	if _, _, _, _, err := decodeResultV2(empty); err == nil {
		t.Error("decodeResultV2 accepted an empty survivor set")
	}
}

func TestJoinRoundTrip(t *testing.T) {
	cases := []joinFrame{
		{Round: 1, Slot: 0, Group: 8, DeadlineMS: 10_000, ChunkBytes: 64 << 10, Epoch: 3},
		{Round: math.MaxUint64, Slot: math.MaxUint32, Group: 1, DeadlineMS: 0, ChunkBytes: 0, Epoch: math.MaxUint64},
	}
	for _, want := range cases {
		p := encodeJoin(want)
		if len(p) != joinPayloadBytes {
			t.Fatalf("JOIN payload %d B, want %d", len(p), joinPayloadBytes)
		}
		got, err := decodeJoin(p)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("round trip %+v -> %+v", want, got)
		}
	}
	for _, n := range []int{0, joinPayloadBytes - 1, joinPayloadBytes + 3} {
		if _, err := decodeJoin(make([]byte, n)); err == nil {
			t.Errorf("decodeJoin accepted %d B payload", n)
		}
	}
}

func TestSubmitHeaderRoundTrip(t *testing.T) {
	want := submitHeader{Round: 42, Lane: LaneTag, Offset: 1 << 20}
	p := encodeSubmitHeader(want)
	if len(p) != submitHeaderBytes {
		t.Fatalf("SUBMIT header %d B, want %d", len(p), submitHeaderBytes)
	}
	// Chunk bytes follow the header in a real payload; trailing bytes must
	// not disturb the decode.
	got, err := decodeSubmitHeader(append(p, 0xde, 0xad))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round trip %+v -> %+v", want, got)
	}
	for n := 0; n < submitHeaderBytes; n++ {
		if _, err := decodeSubmitHeader(make([]byte, n)); err == nil {
			t.Errorf("decodeSubmitHeader accepted %d B payload", n)
		}
	}
}

func TestResultRoundTrip(t *testing.T) {
	cases := []struct {
		round      uint64
		data, tags []byte
	}{
		{7, []byte{1, 2, 3, 4, 5, 6, 7, 8}, []byte{9, 10, 11, 12, 13, 14, 15, 16}},
		{0, []byte{0xaa}, nil},
		{math.MaxUint64, nil, nil},
	}
	for _, tc := range cases {
		p := encodeResult(tc.round, tc.data, tc.tags)
		round, data, tags, err := decodeResult(p)
		if err != nil {
			t.Fatal(err)
		}
		if round != tc.round || !bytes.Equal(data, tc.data) || !bytes.Equal(tags, tc.tags) {
			t.Fatalf("round trip (%d, %x, %x) -> (%d, %x, %x)",
				tc.round, tc.data, tc.tags, round, data, tags)
		}
		// The lane lengths are exact, so every strict prefix must be
		// rejected — a short read cannot decode into silently shorter lanes.
		for n := 0; n < len(p); n++ {
			if _, _, _, err := decodeResult(p[:n]); err == nil {
				t.Fatalf("decodeResult accepted %d of %d B", n, len(p))
			}
		}
	}
	// A declared lane length pointing past the payload must not panic.
	bad := encodeResult(1, []byte{1, 2, 3, 4}, nil)
	bad[8] = 0xff // data lane claims 255 B
	if _, _, _, err := decodeResult(bad); err == nil {
		t.Error("decodeResult accepted an overrunning data lane")
	}
}

func TestAbortRoundTrip(t *testing.T) {
	want := &AbortError{Round: 9, Code: AbortUpstream, Msg: "upstream tier unreachable"}
	got, err := decodeAbort(encodeAbort(want))
	if err != nil {
		t.Fatal(err)
	}
	if *got != *want {
		t.Fatalf("round trip %+v -> %+v", want, got)
	}
	// Messages are capped on encode; a declared length past the payload is
	// clamped on decode instead of read out of bounds.
	long := &AbortError{Round: 1, Code: AbortDeadline, Msg: string(make([]byte, 1<<13))}
	p := encodeAbort(long)
	if len(p) != 12+1<<12 {
		t.Fatalf("oversized abort message not capped: %d B payload", len(p))
	}
	clamped, err := decodeAbort(p[:20])
	if err != nil {
		t.Fatal(err)
	}
	if len(clamped.Msg) != 8 {
		t.Fatalf("clamped message %d B, want 8", len(clamped.Msg))
	}
	for n := 0; n < 12; n++ {
		if _, err := decodeAbort(make([]byte, n)); err == nil {
			t.Errorf("decodeAbort accepted %d B payload", n)
		}
	}
}

func TestStatsRoundTrip(t *testing.T) {
	want := map[string]uint64{
		"rounds_completed": 12,
		"cohorts":          4,
		"bytes_folded":     1 << 30,
	}
	keys := []string{"bytes_folded", "cohorts", "rounds_completed"}
	p := encodeStats(want, keys)
	got, err := decodeStats(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip %v -> %v", want, got)
	}
	for n := 0; n < len(p); n++ {
		if _, err := decodeStats(p[:n]); err == nil {
			t.Fatalf("decodeStats accepted %d of %d B", n, len(p))
		}
	}
}

func TestFrameHeaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, FrameSubmit, []byte{1, 2, 3}, []byte{4, 5}); err != nil {
		t.Fatal(err)
	}
	ft, n, err := readFrameHeader(&buf, DefaultMaxFrameBytes)
	if err != nil {
		t.Fatal(err)
	}
	if ft != FrameSubmit || n != 5 {
		t.Fatalf("header (%v, %d), want (SUBMIT, 5)", ft, n)
	}
	// Oversized frames are rejected by declared length, before any payload
	// byte is consumed.
	buf.Reset()
	if err := writeFrame(&buf, FrameResult, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	var tooBig *ErrFrameTooLarge
	if _, _, err := readFrameHeader(&buf, 64); !errors.As(err, &tooBig) {
		t.Fatalf("oversized frame got %v, want ErrFrameTooLarge", err)
	}
	// A zero-length body (no type byte counted) is malformed.
	if _, _, err := readFrameHeader(bytes.NewReader([]byte{0, 0, 0, 0, 1}), 64); err == nil {
		t.Error("zero-length frame accepted")
	}
}

// The fuzz targets pin the decoders' only contract on adversarial bytes:
// no panics, no out-of-bounds, and anything that decodes re-encodes
// consistently. `go test` runs the seed corpus; `go test -fuzz` explores.

func FuzzDecodeHello(f *testing.F) {
	f.Add(encodeHello(helloFrame{Version: ProtocolVersion, Scheme: SchemeInt64Sum, Elems: 4, Epoch: 1}))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, p []byte) {
		h, err := decodeHello(p)
		if err != nil {
			return
		}
		if !bytes.Equal(encodeHello(h), p) {
			t.Fatalf("decode/encode not idempotent for %x", p)
		}
	})
}

func FuzzDecodeJoin(f *testing.F) {
	f.Add(encodeJoin(joinFrame{Round: 3, Group: 2, ChunkBytes: 1 << 16, Epoch: 9}))
	f.Add(make([]byte, joinPayloadBytes-1))
	f.Fuzz(func(t *testing.T, p []byte) {
		j, err := decodeJoin(p)
		if err != nil {
			return
		}
		if !bytes.Equal(encodeJoin(j), p) {
			t.Fatalf("decode/encode not idempotent for %x", p)
		}
	})
}

func FuzzDecodeSurvivors(f *testing.F) {
	f.Add(encodeSurvivors(survivorsFrame{Round: 1, Complete: true, Ranks: []uint32{0, 2}}))
	f.Add(encodeSurvivors(survivorsFrame{Round: 9, Complete: false}))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 1, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, p []byte) {
		s, err := decodeSurvivors(p)
		if err != nil {
			return
		}
		if !bytes.Equal(encodeSurvivors(s), p) {
			t.Fatalf("decode/encode not idempotent for %x", p)
		}
	})
}

func FuzzDecodeSubmitHeader(f *testing.F) {
	f.Add(encodeSubmitHeader(submitHeader{Round: 1, Lane: LaneData, Offset: 0}))
	f.Add(make([]byte, submitHeaderBytes+64))
	f.Fuzz(func(t *testing.T, p []byte) {
		h, err := decodeSubmitHeader(p)
		if err != nil {
			return
		}
		if !bytes.Equal(encodeSubmitHeader(h), p[:submitHeaderBytes]) {
			t.Fatalf("decode/encode not idempotent for %x", p)
		}
	})
}

func FuzzDecodeResult(f *testing.F) {
	f.Add(encodeResult(5, []byte{1, 2, 3, 4}, []byte{5, 6, 7, 8}))
	f.Add(encodeResult(0, nil, nil))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, p []byte) {
		round, data, tags, err := decodeResult(p)
		if err != nil {
			return
		}
		r2, d2, t2, err := decodeResult(encodeResult(round, data, tags))
		if err != nil || r2 != round || !bytes.Equal(d2, data) || !bytes.Equal(t2, tags) {
			t.Fatalf("re-encode of decoded RESULT diverged (%v)", err)
		}
	})
}

func FuzzDecodeAbort(f *testing.F) {
	f.Add(encodeAbort(&AbortError{Round: 1, Code: AbortProtocol, Msg: "x"}))
	f.Add(make([]byte, 12))
	f.Fuzz(func(t *testing.T, p []byte) {
		e, err := decodeAbort(p)
		if err != nil {
			return
		}
		if len(e.Msg) > len(p) {
			t.Fatalf("decoded message longer than payload: %d > %d", len(e.Msg), len(p))
		}
	})
}

func FuzzDecodeStats(f *testing.F) {
	f.Add(encodeStats(map[string]uint64{"a": 1, "bb": 2}, []string{"a", "bb"}))
	f.Add([]byte{0xff, 0xff})
	f.Fuzz(func(t *testing.T, p []byte) {
		m, err := decodeStats(p)
		if err != nil {
			return
		}
		// Each decoded entry consumed >= 9 bytes after the count prefix.
		if len(m) > 0 && len(p) < 2+9*1 {
			t.Fatalf("%d entries decoded from %d B", len(m), len(p))
		}
	})
}
