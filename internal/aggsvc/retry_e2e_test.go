package aggsvc_test

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hear/internal/aggsvc"
)

// dyingConn fails its first write after the JOIN handshake completed (the
// first successful read), closing the underlying conn so the gateway sees
// the participant vanish mid-round. Later conns from the same dialer are
// untouched.
type dyingConn struct {
	net.Conn
	joined bool
}

func (c *dyingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.joined = true
	}
	return n, err
}

func (c *dyingConn) Write(p []byte) (int, error) {
	if c.joined {
		c.Conn.Close()
		return 0, errors.New("injected transport failure")
	}
	return c.Conn.Write(p)
}

// TestClientRetryAfterPeerLoss: client 0's connection dies mid-submit
// after the round has formed. The gateway aborts the round with the
// retryable AbortPeerLost, so BOTH clients retry on fresh connections.
// Because the abort is global, every participant re-seals exactly once
// more — the collective key schedule stays in lockstep and the retried
// round verifies with the correct sum.
func TestClientRetryAfterPeerLoss(t *testing.T) {
	const group, elems = 2, 64
	// Real TCP loopback: socket buffering lets the ABORT reach a client
	// that is still writing (net.Pipe's synchronous writes would wedge the
	// exchange until both sides' deadlines).
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	s, err := aggsvc.NewServer(aggsvc.Config{Group: group, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	defer s.Close()
	addr := l.Addr().String()

	sealers := setupGroup(t, group, 0x4e77)
	inputs := make([][]int64, group)
	want := make([]int64, elems)
	for i := range inputs {
		inputs[i] = make([]int64, elems)
		for j := range inputs[i] {
			inputs[i][j] = int64((i+2)*(j+3)) - 9
			want[j] += inputs[i][j]
		}
	}

	// Client 0's first connection is sabotaged; every redial is clean.
	var dials0 atomic.Int64
	dialer0 := func() (net.Conn, error) {
		conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
		if err != nil {
			return nil, err
		}
		if dials0.Add(1) == 1 {
			return &dyingConn{Conn: conn}, nil
		}
		return conn, nil
	}
	dialer1 := func() (net.Conn, error) { return net.DialTimeout("tcp", addr, 5*time.Second) }

	opts := func(d func() (net.Conn, error)) aggsvc.ClientOptions {
		return aggsvc.ClientOptions{
			Timeout:      10 * time.Second,
			Dialer:       d,
			Retry:        3,
			RetryBackoff: 10 * time.Millisecond,
		}
	}

	var wg sync.WaitGroup
	errs := make([]error, group)
	retries := make([]int, group)
	outs := make([][]int64, group)
	for i := 0; i < group; i++ {
		dialer := dialer1
		if i == 0 {
			dialer = dialer0
		}
		conn, err := dialer()
		if err != nil {
			t.Fatal(err)
		}
		c := aggsvc.NewClient(conn, sealers[i], opts(dialer))
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer c.Close()
			outs[i] = make([]int64, elems)
			info, err := c.Aggregate(inputs[i], outs[i])
			if err != nil {
				errs[i] = err
				return
			}
			retries[i] = info.Retries
		}(i)
	}
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	for i := range outs {
		for j := range outs[i] {
			if outs[i][j] != want[j] {
				t.Fatalf("client %d elem %d = %d, want %d (retried round decrypted wrong)", i, j, outs[i][j], want[j])
			}
		}
	}
	// The sabotaged client burned its first attempt; its peer was dragged
	// into the retry by the global PeerLost abort.
	for i, r := range retries {
		if r < 1 {
			t.Errorf("client %d reported %d retries, want >= 1", i, r)
		}
	}
	if got := dials0.Load(); got < 2 {
		t.Errorf("client 0 dialed %d times, want >= 2 (reconnect after transport failure)", got)
	}
}

// TestClientRetryExhausted: with Retry=0 the sabotaged client surfaces the
// transport failure instead of silently hanging or mislabelling it.
func TestClientRetryExhausted(t *testing.T) {
	const group, elems = 2, 16
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("loopback listen unavailable: %v", err)
	}
	s, err := aggsvc.NewServer(aggsvc.Config{Group: group, RoundTimeout: 500 * time.Millisecond, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(l)
	defer s.Close()
	addr := l.Addr().String()

	sealers := setupGroup(t, group, 0xdead)
	conn0, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c0 := aggsvc.NewClient(&dyingConn{Conn: conn0}, sealers[0], aggsvc.ClientOptions{Timeout: 5 * time.Second})
	defer c0.Close()
	conn1, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c1 := aggsvc.NewClient(conn1, sealers[1], aggsvc.ClientOptions{Timeout: 5 * time.Second})
	defer c1.Close()

	var wg sync.WaitGroup
	errs := make([]error, group)
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, errs[0] = c0.Aggregate(make([]int64, elems), make([]int64, elems))
	}()
	go func() {
		defer wg.Done()
		_, errs[1] = c1.Aggregate(make([]int64, elems), make([]int64, elems))
	}()
	wg.Wait()

	if errs[0] == nil {
		t.Error("sabotaged client with Retry=0 reported success")
	}
	var aerr *aggsvc.AbortError
	if errs[1] == nil {
		t.Error("peer of sabotaged client reported success for an unfillable round")
	} else if !errors.As(errs[1], &aerr) || aerr.Code != aggsvc.AbortPeerLost {
		t.Errorf("peer got %v, want ABORT %s", errs[1], aggsvc.AbortPeerLost)
	}
}
