package aggsvc

import (
	"errors"
)

// This file is the leaf side of hierarchical gateway federation: the
// gateway-of-gateways topology that scales HEAR rounds from one flat box
// to millions of clients. The same property that lets an untrusted switch
// aggregate — the canceling-noise schemes make every aggregator key-blind
// — lets partial folds cascade: a leaf gateway folds its cohort's sealed
// lanes with the keyless kernels, then acts as a *client* of an upstream
// gateway, submitting the partial aggregate over the ordinary
// HELLO/JOIN/SUBMIT/RESULT protocol. No tier can decrypt, and the folds
// are associative and commutative, so the cascaded aggregate is
// bit-identical to a flat round over the same client set.
//
// The one piece of shared state a cascade must thread through the tree is
// the seal epoch: every client of the whole federation has to seal at one
// agreed key epoch. The existing HELLO/JOIN epoch machinery already
// negotiates that for a flat round (JOIN names max(HELLO epochs)+1); a
// federated round reuses it verbatim, with one twist — a leaf advertises
// its cohort's *maximum* upstream, without the +1, and forwards the
// upstream JOIN's epoch verbatim down to its cohort. The +1 is applied
// exactly once, at the federation's root, so the cascaded epoch equals
// what a flat round over all the clients would have agreed on.

// UplinkRound is one upstream-tier exchange, run on behalf of a filled
// leaf round. Implementations (internal/aggsvc/federation) speak the wire
// protocol to the upstream gateway; the server core only sees the two
// rendezvous points a cascade needs.
type UplinkRound interface {
	// Negotiate opens the upstream round: it advertises the cohort's round
	// parameters and maximum HELLO epoch, blocks until the upstream JOIN
	// arrives, and returns the seal epoch the upstream tier fixed. The
	// leaf writes its own JOINs (and its cohort seals) only after this
	// returns.
	Negotiate(scheme uint8, elems int, tagged bool, cohortEpoch uint64) (sealEpoch uint64, err error)
	// Relay submits the cohort's folded partial lanes — declaring which
	// client ranks they cover, and whether that coverage is complete
	// (complete=false when this cohort's own round degraded) — and blocks
	// for the globally reduced lanes, which the leaf fans back down as its
	// RESULT. globalSurv is the upstream RESULT's survivor union (nil when
	// the global aggregate is complete); the leaf forwards it verbatim in
	// its own RESULT trailers so every client of the tree cancels the same
	// missing ranks. covers may be nil with complete=true when the cohort's
	// coverage cannot be expressed (unknown ranks) — the upstream round can
	// then only complete fully.
	Relay(data, tags []byte, covers []uint32, complete bool) (globalData, globalTags []byte, globalSurv []uint32, err error)
	// Close releases the upstream connection. It must be safe to call
	// concurrently with a blocked Negotiate or Relay — the server uses it
	// to cut a pending exchange loose when the leaf round dies underneath.
	Close() error
}

// UplinkDialer opens an upstream exchange for one cohort's round. A
// non-nil Config.Uplink turns the gateway into a leaf (or middle) tier of
// a federation.
type UplinkDialer func(cohort int) (UplinkRound, error)

// runCascade drives one federated round's upstream exchange. It runs on
// its own goroutine from round creation:
//
//	wait fill → Negotiate (upstream HELLO/JOIN) → fix the seal epoch →
//	wait local fold → Relay (upstream SUBMIT/RESULT) → resolve the relay
//
// Any failure aborts (pre-fold) or fails the relay stage of (post-fold)
// the round with the typed AbortUpstream, so a campaign can tell a dead
// upstream tier from a dead cohort.
func (s *Server) runCascade(r *roundState) {
	select {
	case <-r.fullCh:
	case <-r.doneCh:
		return // died while filling; nothing was promised upstream
	}
	u, err := s.cfg.Uplink(r.cohort)
	if err != nil {
		r.abort(AbortUpstream, "cohort %d: upstream dial failed: %v", r.cohort, err)
		return
	}
	defer u.Close()
	// If the leaf round aborts while we are parked inside the uplink
	// (upstream round still filling, say), cut the exchange loose so this
	// goroutine unwinds promptly instead of waiting out upstream timeouts.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-r.doneCh:
			if r.aborted() {
				u.Close()
			}
		case <-stop:
		}
	}()

	epoch, err := u.Negotiate(r.params.scheme, r.params.elems, r.params.tagged, r.cohortEpoch())
	if err != nil {
		s.relayFailures.Add(1)
		r.abort(AbortUpstream, "cohort %d: upstream negotiation failed: %v", r.cohort, err)
		return
	}
	r.fixEpoch(epoch)

	// The cohort now JOINs, seals, and submits; wait out the local fold.
	<-r.doneCh
	if r.aborted() {
		return
	}
	// The partial lanes go up zero-copy (they are this round's immutable
	// accumulators from here on); the global lanes come back already owned
	// by this round — the uplink copied them out of its read buffer — so
	// the downlink RESULT fan-out may reference them for the round's whole
	// lifetime.
	covers, complete, coversOK := r.coverage()
	if !coversOK {
		covers, complete = nil, true
	}
	relayTm := s.phases.StartTimer(PhaseRelay)
	gdata, gtags, gsurv, err := u.Relay(r.data, r.tags, covers, complete)
	relayTm.Stop()
	if err != nil {
		s.relayFailures.Add(1)
		r.failRelay(upstreamAbort(r.id, err))
		return
	}
	if len(gdata) != len(r.data) || (r.params.tagged && len(gtags) != len(r.tags)) {
		s.relayFailures.Add(1)
		r.failRelay(&AbortError{Round: r.id, Code: AbortUpstream,
			Msg: "upstream returned mismatched lane sizes"})
		return
	}
	s.roundsRelayed.Add(1)
	r.finishRelay(gdata, gtags, gsurv)
}

// upstreamAbort wraps an uplink failure as this round's typed abort,
// preserving the upstream tier's own abort code in the message so a
// multi-tier failure stays diagnosable from the leaves.
func upstreamAbort(round uint64, err error) *AbortError {
	var aerr *AbortError
	if errors.As(err, &aerr) {
		return &AbortError{Round: round, Code: AbortUpstream,
			Msg: "upstream round " + aerr.Code.String() + ": " + aerr.Msg}
	}
	return &AbortError{Round: round, Code: AbortUpstream, Msg: err.Error()}
}
