package aggsvc

import (
	"encoding/binary"
	"io"
)

// This file exports the RESULT fan-out in both its historical and its
// zero-copy form so cmd/hearbench's wirepath experiment (and the in-repo
// BenchmarkWirePath suite) can measure the exact before/after pair the
// gateway shipped. The helpers fan one round's reduced lanes out to a set
// of writers the way Server.finishRound does for its participants; they
// carry no round bookkeeping, so the benchmark isolates the codec cost.

// FanOutResultLegacy is the pre-zero-copy egress: one RESULT payload is
// allocated, zeroed and copied per participant (encodeResult), then
// emitted with one Write syscall per slice. Kept as the wirepath
// benchmark's baseline; the server no longer ships this path.
func FanOutResultLegacy(conns []io.Writer, round uint64, data, tags []byte) error {
	for _, c := range conns {
		if err := writeFrameSequential(c, FrameResult, encodeResult(round, data, tags)); err != nil {
			return err
		}
	}
	return nil
}

// FanOutResultVectored is the zero-copy egress the server runs: the round
// prefixes are encoded exactly once, and each participant's RESULT is a
// single vectored write referencing the shared immutable lanes — on a TCP
// connection, one writev of {header, prefix, data, tagN, tags} with no
// staging copy. Wire bytes are identical to FanOutResultLegacy
// (TestResultFanOutBitIdentical).
func FanOutResultVectored(conns []io.Writer, round uint64, data, tags []byte) error {
	var pre [12]byte
	var tagN [4]byte
	binary.LittleEndian.PutUint64(pre[0:8], round)
	binary.LittleEndian.PutUint32(pre[8:12], uint32(len(data)))
	binary.LittleEndian.PutUint32(tagN[:], uint32(len(tags)))
	for _, c := range conns {
		if err := writeFrame(c, FrameResult, pre[:], data, tagN[:], tags); err != nil {
			return err
		}
	}
	return nil
}

// ReadFrameInto reads one frame into buf (growing it only past its
// high-water mark) and returns the possibly-grown buffer with the payload
// length — the reusable-buffer ingest the zero-copy Client runs, exported
// for the wirepath experiment's drain loops. ReadFrameAlloc is the
// historical fresh-buffer-per-frame path.
func ReadFrameInto(r io.Reader, buf []byte, max int) (FrameType, []byte, int, error) {
	t, n, err := readFrameHeader(r, max)
	if err != nil {
		return t, buf, 0, err
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	if _, err := io.ReadFull(r, buf[:n]); err != nil {
		return t, buf, 0, err
	}
	return t, buf, n, nil
}

// ReadFrameAlloc reads one frame into a fresh buffer per call (the
// pre-zero-copy client ingest), kept as the wirepath baseline.
func ReadFrameAlloc(r io.Reader, max int) (FrameType, []byte, error) {
	return readFrame(r, max)
}
