//go:build race

package aggsvc

// raceEnabled lets the allocs/op assertions skip under the race detector:
// race-mode sync.Pool deliberately drops items to expose lifecycle races,
// so pooled paths allocate by design there. The zero-alloc contract is
// asserted in the race-free wirepath-bench CI job instead.
const raceEnabled = true
