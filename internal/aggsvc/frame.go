// Package aggsvc is the secure aggregation gateway: HEAR's §4 in-network
// aggregation served over TCP. Remote clients seal vectors with their own
// keys (hear.GatewaySealer), the gateway folds the opaque ciphertext and
// HoMAC-tag lanes with the keyless kernels of internal/core/fold, and the
// clients verify and decrypt the aggregate. The server is key-blind by
// construction: this package imports no key material and cannot decrypt,
// forge, or selectively modify a verified aggregate — exactly the trust the
// paper places in an untrusted switch.
//
// The wire protocol is a versioned, length-prefixed binary framing:
//
//	| u32 length (LE) | u8 type | payload ... |
//
// where length counts the type byte plus the payload. Frame types: a client
// opens a round with HELLO and is admitted with JOIN; it streams its lanes
// in SUBMIT chunks; the gateway answers every participant with RESULT, or
// with a typed ABORT — HEAR's telescoping noises need every participant, so
// by default a partial aggregate is cryptographically meaningless and the
// round fails closed. STATS exposes the gateway's counters and phase
// timings.
//
// Protocol v2 adds dropout tolerance for clients whose key policy can
// re-derive missing ranks' noise (Config.DegradedRounds): a v2 HELLO
// carries the client's key-schedule rank and a degraded-capable flag, a
// SURVIVORS frame lets a federation leaf declare which ranks its one
// submission covers, and a degraded RESULT appends the explicit survivor
// set after the tag lane. v1 clients interoperate unchanged — a complete
// round's RESULT is bit-identical to v1, and in a degraded round they are
// cut with a retryable ABORT instead of receiving a survivor set they
// cannot decrypt.
package aggsvc

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// ProtocolVersion is the current wire protocol version. The server admits
// both v1 and v2 HELLOs; clients advertise v2 only when they can actually
// consume its one behavioral addition (survivor-set RESULTs), so a fleet
// of fail-closed clients keeps speaking v1 and interoperates with old
// servers.
const ProtocolVersion uint16 = 2

// ProtocolV1 is the original fail-closed protocol version.
const ProtocolV1 uint16 = 1

// FrameType identifies a protocol frame.
type FrameType uint8

// Frame types.
const (
	FrameHello    FrameType = 1 // client → server: request admission to a round
	FrameJoin     FrameType = 2 // server → client: admission (round, slot, group, deadline, chunk)
	FrameSubmit   FrameType = 3 // client → server: one chunk of a lane
	FrameResult   FrameType = 4 // server → client: the reduced lanes
	FrameAbort    FrameType = 5 // either direction: the round failed, typed
	FrameStatsReq FrameType = 6 // client → server: request counters
	FrameStats    FrameType = 7 // server → client: counters and phase timings
	// FrameSurvivors (v2, client → server) declares which key-schedule
	// ranks the sender's one submission covers — a federation leaf relaying
	// its cohort's fold names the cohort's rank set (and whether it is
	// complete), so the upstream tier can compute a sound survivor union
	// when it degrades a round. Flat clients never send it; their coverage
	// is the HELLO rank.
	FrameSurvivors FrameType = 8
)

func (t FrameType) String() string {
	switch t {
	case FrameHello:
		return "HELLO"
	case FrameJoin:
		return "JOIN"
	case FrameSubmit:
		return "SUBMIT"
	case FrameResult:
		return "RESULT"
	case FrameAbort:
		return "ABORT"
	case FrameStatsReq:
		return "STATSREQ"
	case FrameStats:
		return "STATS"
	case FrameSurvivors:
		return "SURVIVORS"
	}
	return fmt.Sprintf("frame(%d)", uint8(t))
}

// Lanes of a SUBMIT frame.
const (
	LaneData = 0 // ciphertext, folded mod 2^64
	LaneTag  = 1 // HoMAC tags, folded mod the verification prime
)

// Scheme identifiers carried in HELLO. The gateway folds lanes with the
// advertised scheme's keyless kernels; it never learns the datatype beyond
// the lane width. Only the additive scheme supports a HoMAC tag lane —
// tag aggregation is linear, so PROD and XOR rounds run untagged.
const (
	SchemeInt64Sum  uint8 = 1
	SchemeInt64Prod uint8 = 2
	SchemeInt64Xor  uint8 = 3
)

// HELLO flag bits.
const (
	FlagTagged uint8 = 1 << 0 // the client submits a HoMAC tag lane
	// FlagDegradedOK (v2) marks a participant able to verify and open a
	// survivor-subset RESULT (its key policy derives missing ranks' noise).
	// Participants without it are cut with a retryable ABORT when a round
	// degrades, never handed a partial aggregate they cannot decrypt.
	FlagDegradedOK uint8 = 1 << 1
)

// DefaultMaxFrameBytes bounds a single frame (length prefix included);
// larger frames are rejected before their payload is read.
const DefaultMaxFrameBytes = 16 << 20

const (
	frameHeaderBytes    = 5 // u32 length + u8 type
	helloPayloadBytes   = 16
	helloPayloadBytesV2 = 20 // v1 payload + u32 key-schedule rank
	joinPayloadBytes    = 32
	submitHeaderBytes   = 13 // round u64 + lane u8 + offset u32
	survivorsHeadBytes  = 13 // round u64 + flags u8 + count u32
)

// rankUnknown is the v2 HELLO rank wire value for "no key-schedule rank"
// (e.g. a federation leaf, whose coverage arrives via SURVIVORS instead).
const rankUnknown = ^uint32(0)

// helloSize is the HELLO payload length for a protocol version.
func helloSize(version uint16) int {
	if version >= 2 {
		return helloPayloadBytesV2
	}
	return helloPayloadBytes
}

// AbortCode classifies why a round failed.
type AbortCode uint16

// Abort codes.
const (
	AbortProtocol  AbortCode = 1 + iota // malformed or out-of-order frame
	AbortVersion                        // client/server protocol version mismatch
	AbortMismatch                       // HELLO parameters incompatible with the open round
	AbortOversize                       // a frame exceeded the size limit
	AbortDeadline                       // the round deadline expired with stragglers
	AbortPeerLost                       // another participant disconnected mid-round
	AbortShutdown                       // the gateway is shutting down
	AbortStraggler                      // deadline expired but quorum finished; stragglers were evicted, retry
	AbortUpstream                       // a federated gateway's upstream tier failed the round
)

func (c AbortCode) String() string {
	switch c {
	case AbortProtocol:
		return "protocol-violation"
	case AbortVersion:
		return "version-mismatch"
	case AbortMismatch:
		return "round-mismatch"
	case AbortOversize:
		return "oversized-frame"
	case AbortDeadline:
		return "deadline-expired"
	case AbortPeerLost:
		return "participant-lost"
	case AbortShutdown:
		return "server-shutdown"
	case AbortStraggler:
		return "straggler-evicted"
	case AbortUpstream:
		return "upstream-failure"
	}
	return fmt.Sprintf("abort(%d)", uint16(c))
}

// AbortError is the typed failure a round participant receives. It is the
// error returned by Client.Aggregate when the gateway aborts.
type AbortError struct {
	Round uint64
	Code  AbortCode
	Msg   string
}

func (e *AbortError) Error() string {
	return fmt.Sprintf("aggsvc: round %d aborted (%s): %s", e.Round, e.Code, e.Msg)
}

// ErrFrameTooLarge reports a frame whose declared length exceeds the limit;
// the payload is never read.
type ErrFrameTooLarge struct {
	Declared, Limit int
}

func (e *ErrFrameTooLarge) Error() string {
	return fmt.Sprintf("aggsvc: frame of %d B exceeds the %d B limit", e.Declared, e.Limit)
}

// wireBuf is the pooled scratch one frame emission needs: the 5-byte frame
// header, room for the largest fixed-size payload encoding (HELLO, JOIN,
// SUBMIT header, the RESULT lane prefixes), and the reusable iovec backing
// array for the vectored write. Pooling it keeps every emit path — client
// HELLO/SUBMIT, server JOIN/RESULT fan-out — allocation-free at steady
// state.
type wireBuf struct {
	hdr   [frameHeaderBytes]byte
	fixed [joinPayloadBytes]byte // largest fixed payload (32 B)
	// vecs is the working iovec slice WriteTo consumes; base preserves the
	// full-capacity backing array so pooled reuse never reallocates it.
	vecs net.Buffers
	base net.Buffers
}

var wireBufs = sync.Pool{
	New: func() any { return &wireBuf{base: make(net.Buffers, 0, 8)} },
}

// writeFrame emits one frame as a single vectored write: the header and
// every payload slice go out through one net.Buffers WriteTo, which on a
// TCP connection is one writev syscall regardless of how many slices the
// caller scatter-gathers (a RESULT fan-out passes the round prefix, the
// shared data lane, the tag length, and the shared tag lane without ever
// coalescing them into a staging buffer). On writers without vectored
// support (net.Pipe, bytes.Buffer) WriteTo degrades to sequential writes
// with identical wire bytes.
func writeFrame(w io.Writer, t FrameType, payload ...[]byte) error {
	b := wireBufs.Get().(*wireBuf)
	err := b.writeFrame(w, t, payload...)
	wireBufs.Put(b)
	return err
}

func (b *wireBuf) writeFrame(w io.Writer, t FrameType, payload ...[]byte) error {
	total := 0
	for _, p := range payload {
		total += len(p)
	}
	binary.LittleEndian.PutUint32(b.hdr[:4], uint32(total+1))
	b.hdr[4] = byte(t)
	b.vecs = append(b.base[:0], b.hdr[:])
	for _, p := range payload {
		if len(p) > 0 {
			b.vecs = append(b.vecs, p)
		}
	}
	// WriteTo consumes its receiver as it drains (net.Buffers reslices it
	// forward), so capture the backing array first: base keeps the full-
	// capacity slice and the pooled buffer reuses it on every frame instead
	// of reallocating iovecs.
	n := len(b.vecs)
	if cap(b.vecs) > cap(b.base) {
		b.base = b.vecs
	}
	_, err := b.vecs.WriteTo(w)
	// Drop retained payload references before pooled reuse.
	used := b.base[:n]
	for i := range used {
		used[i] = nil
	}
	b.vecs = nil
	return err
}

// writeFrameSequential is the pre-vectored emission path — one Write for
// the header, one per payload slice — kept as the before/after baseline the
// wirepath benchmark and the bit-identity tests compare against.
func writeFrameSequential(w io.Writer, t FrameType, payload ...[]byte) error {
	total := 0
	for _, p := range payload {
		total += len(p)
	}
	var hdr [frameHeaderBytes]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(total+1))
	hdr[4] = byte(t)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	for _, p := range payload {
		if _, err := w.Write(p); err != nil {
			return err
		}
	}
	return nil
}

// readFrameHeader reads the fixed header and returns the frame type and
// payload length, validating it against max before any payload byte is
// consumed — oversized frames are rejected without buffering them.
func readFrameHeader(r io.Reader, max int) (FrameType, int, error) {
	// The header lands in pooled scratch: a stack array would escape
	// through the io.Reader interface and cost one allocation per frame —
	// the exact kind of hot-loop garbage the zero-copy path eliminates.
	b := wireBufs.Get().(*wireBuf)
	_, err := io.ReadFull(r, b.hdr[:])
	ln := int(binary.LittleEndian.Uint32(b.hdr[:4]))
	t := FrameType(b.hdr[4])
	wireBufs.Put(b)
	if err != nil {
		return 0, 0, err
	}
	if ln < 1 {
		return 0, 0, fmt.Errorf("aggsvc: frame with zero-length body")
	}
	if ln+4 > max {
		return t, ln - 1, &ErrFrameTooLarge{Declared: ln + 4, Limit: max}
	}
	return t, ln - 1, nil
}

// readFrame reads a whole frame into a fresh buffer (client-side path; the
// server reads SUBMIT payloads into pooled blocks instead).
func readFrame(r io.Reader, max int) (FrameType, []byte, error) {
	t, n, err := readFrameHeader(r, max)
	if err != nil {
		return t, nil, err
	}
	p := make([]byte, n)
	if _, err := io.ReadFull(r, p); err != nil {
		return t, nil, err
	}
	return t, p, nil
}

// helloFrame is the decoded HELLO payload. Epoch is the client's current
// key-epoch counter (opaque to the key-blind gateway): the gateway takes
// the max across a round's participants and hands it back in JOIN so the
// whole group seals at one agreed epoch, even when a participant missed an
// earlier round's JOIN and fell behind the key schedule.
type helloFrame struct {
	Version uint16
	Scheme  uint8
	Flags   uint8
	Elems   int
	Epoch   uint64
	// Rank is the client's key-schedule rank (v2 only; -1 = unknown, the
	// wire form rankUnknown). A degraded round's survivor set names ranks,
	// so the server needs to know which rank a flat participant covers.
	Rank int
}

func (h helloFrame) tagged() bool     { return h.Flags&FlagTagged != 0 }
func (h helloFrame) degradedOK() bool { return h.Version >= 2 && h.Flags&FlagDegradedOK != 0 }

func encodeHello(h helloFrame) []byte {
	p := make([]byte, helloSize(h.Version))
	putHello(p, h)
	return p
}

// putHello encodes a HELLO payload into p (len == helloSize(h.Version))
// without allocating; emit paths encode into pooled wireBuf scratch.
func putHello(p []byte, h helloFrame) {
	binary.LittleEndian.PutUint16(p[0:], h.Version)
	p[2] = h.Scheme
	p[3] = h.Flags
	binary.LittleEndian.PutUint32(p[4:], uint32(h.Elems))
	binary.LittleEndian.PutUint64(p[8:], h.Epoch)
	if len(p) >= helloPayloadBytesV2 {
		rank := rankUnknown
		if h.Rank >= 0 {
			rank = uint32(h.Rank)
		}
		binary.LittleEndian.PutUint32(p[16:], rank)
	}
}

func decodeHello(p []byte) (helloFrame, error) {
	h := helloFrame{Rank: -1}
	switch len(p) {
	case helloPayloadBytes, helloPayloadBytesV2:
	default:
		return helloFrame{}, fmt.Errorf("aggsvc: HELLO payload %d B, want %d or %d",
			len(p), helloPayloadBytes, helloPayloadBytesV2)
	}
	h.Version = binary.LittleEndian.Uint16(p[0:])
	// The payload length is version-determined; a mismatch is a protocol
	// violation, not a tolerated variant (it would also break the codec's
	// encode∘decode identity).
	if want := helloSize(h.Version); len(p) != want {
		return helloFrame{}, fmt.Errorf("aggsvc: HELLO v%d payload %d B, want %d", h.Version, len(p), want)
	}
	h.Scheme = p[2]
	h.Flags = p[3]
	h.Elems = int(binary.LittleEndian.Uint32(p[4:]))
	h.Epoch = binary.LittleEndian.Uint64(p[8:])
	if len(p) >= helloPayloadBytesV2 {
		if rank := binary.LittleEndian.Uint32(p[16:]); rank != rankUnknown {
			h.Rank = int(rank)
		}
	}
	return h, nil
}

// joinFrame is the decoded JOIN payload: the admission ticket into a
// round whose membership has sealed. Epoch is the key epoch every
// participant must seal at (max of the group's HELLO epochs, plus one).
type joinFrame struct {
	Round      uint64
	Slot       int
	Group      int
	DeadlineMS uint32 // time remaining until the round deadline
	ChunkBytes int    // the gateway's SUBMIT chunk granularity
	Epoch      uint64 // the round's agreed seal epoch
}

func encodeJoin(j joinFrame) []byte {
	p := make([]byte, joinPayloadBytes)
	putJoin(p, j)
	return p
}

// putJoin encodes a JOIN payload into p (len >= joinPayloadBytes) without
// allocating.
func putJoin(p []byte, j joinFrame) {
	binary.LittleEndian.PutUint64(p[0:], j.Round)
	binary.LittleEndian.PutUint32(p[8:], uint32(j.Slot))
	binary.LittleEndian.PutUint32(p[12:], uint32(j.Group))
	binary.LittleEndian.PutUint32(p[16:], j.DeadlineMS)
	binary.LittleEndian.PutUint32(p[20:], uint32(j.ChunkBytes))
	binary.LittleEndian.PutUint64(p[24:], j.Epoch)
}

func decodeJoin(p []byte) (joinFrame, error) {
	if len(p) != joinPayloadBytes {
		return joinFrame{}, fmt.Errorf("aggsvc: JOIN payload %d B, want %d", len(p), joinPayloadBytes)
	}
	return joinFrame{
		Round:      binary.LittleEndian.Uint64(p[0:]),
		Slot:       int(binary.LittleEndian.Uint32(p[8:])),
		Group:      int(binary.LittleEndian.Uint32(p[12:])),
		DeadlineMS: binary.LittleEndian.Uint32(p[16:]),
		ChunkBytes: int(binary.LittleEndian.Uint32(p[20:])),
		Epoch:      binary.LittleEndian.Uint64(p[24:]),
	}, nil
}

// survivorsFrame is the decoded SURVIVORS payload: the rank set one
// participant's submission covers. Complete=false marks a subtree whose
// own round already degraded (the listed ranks are its survivors, with
// others lost below), which forces the upstream round to carry a survivor
// set even if nobody at this tier is evicted.
type survivorsFrame struct {
	Round    uint64
	Complete bool
	Ranks    []uint32
}

const flagSurvivorsComplete uint8 = 1 << 0

func encodeSurvivors(s survivorsFrame) []byte {
	p := make([]byte, survivorsHeadBytes+4*len(s.Ranks))
	binary.LittleEndian.PutUint64(p[0:], s.Round)
	if s.Complete {
		p[8] = flagSurvivorsComplete
	}
	binary.LittleEndian.PutUint32(p[9:], uint32(len(s.Ranks)))
	for i, r := range s.Ranks {
		binary.LittleEndian.PutUint32(p[survivorsHeadBytes+4*i:], r)
	}
	return p
}

func decodeSurvivors(p []byte) (survivorsFrame, error) {
	if len(p) < survivorsHeadBytes {
		return survivorsFrame{}, fmt.Errorf("aggsvc: SURVIVORS payload %d B too short", len(p))
	}
	if p[8]&^flagSurvivorsComplete != 0 {
		return survivorsFrame{}, fmt.Errorf("aggsvc: SURVIVORS unknown flag bits %#x", p[8])
	}
	s := survivorsFrame{
		Round:    binary.LittleEndian.Uint64(p[0:]),
		Complete: p[8]&flagSurvivorsComplete != 0,
	}
	n := int(binary.LittleEndian.Uint32(p[9:]))
	if len(p) != survivorsHeadBytes+4*n {
		return survivorsFrame{}, fmt.Errorf("aggsvc: SURVIVORS payload %d B for %d ranks, want %d",
			len(p), n, survivorsHeadBytes+4*n)
	}
	if n == 0 {
		return s, nil
	}
	s.Ranks = make([]uint32, n)
	for i := range s.Ranks {
		s.Ranks[i] = binary.LittleEndian.Uint32(p[survivorsHeadBytes+4*i:])
	}
	return s, nil
}

// encodeSurvivorList encodes the RESULT survivor trailer: u32 count + the
// ranks. It is appended after the tag lane only in degraded rounds, so a
// complete round's RESULT stays bit-identical to protocol v1.
func encodeSurvivorList(ranks []uint32) []byte {
	p := make([]byte, 4+4*len(ranks))
	binary.LittleEndian.PutUint32(p[0:], uint32(len(ranks)))
	for i, r := range ranks {
		binary.LittleEndian.PutUint32(p[4+4*i:], r)
	}
	return p
}

// submitHeader is the fixed prefix of a SUBMIT payload; the chunk bytes
// follow it.
type submitHeader struct {
	Round  uint64
	Lane   uint8
	Offset int // byte offset of this chunk within the lane
}

func encodeSubmitHeader(h submitHeader) []byte {
	p := make([]byte, submitHeaderBytes)
	putSubmitHeader(p, h)
	return p
}

// putSubmitHeader encodes a SUBMIT chunk prefix into p (len >=
// submitHeaderBytes) without allocating.
func putSubmitHeader(p []byte, h submitHeader) {
	binary.LittleEndian.PutUint64(p[0:], h.Round)
	p[8] = h.Lane
	binary.LittleEndian.PutUint32(p[9:], uint32(h.Offset))
}

func decodeSubmitHeader(p []byte) (submitHeader, error) {
	if len(p) < submitHeaderBytes {
		return submitHeader{}, fmt.Errorf("aggsvc: SUBMIT payload %d B < %d B header", len(p), submitHeaderBytes)
	}
	return submitHeader{
		Round:  binary.LittleEndian.Uint64(p[0:]),
		Lane:   p[8],
		Offset: int(binary.LittleEndian.Uint32(p[9:])),
	}, nil
}

// encodeResult frames the reduced lanes into one contiguous payload:
// round, then each lane with a u32 length prefix (the tag lane is empty
// for unverified rounds). The server's fan-out no longer uses it — RESULT
// goes out as a vectored write of the shared accumulators (resultVectors)
// with no per-participant copy — but the staging form remains the
// baseline the bit-identity tests and the wirepath benchmark compare
// against.
func encodeResult(round uint64, data, tags []byte) []byte {
	p := make([]byte, 8+4+len(data)+4+len(tags))
	binary.LittleEndian.PutUint64(p[0:], round)
	binary.LittleEndian.PutUint32(p[8:], uint32(len(data)))
	copy(p[12:], data)
	binary.LittleEndian.PutUint32(p[12+len(data):], uint32(len(tags)))
	if len(tags) > 0 {
		// Untagged rounds encode the zero length directly; there is no
		// empty-lane copy to issue.
		copy(p[16+len(data):], tags)
	}
	return p
}

func decodeResult(p []byte) (round uint64, data, tags []byte, err error) {
	if len(p) < 16 {
		return 0, nil, nil, fmt.Errorf("aggsvc: RESULT payload %d B too short", len(p))
	}
	round = binary.LittleEndian.Uint64(p[0:])
	dn := int(binary.LittleEndian.Uint32(p[8:]))
	if 12+dn+4 > len(p) {
		return 0, nil, nil, fmt.Errorf("aggsvc: RESULT data lane %d B overruns payload", dn)
	}
	data = p[12 : 12+dn]
	tn := int(binary.LittleEndian.Uint32(p[12+dn:]))
	if 16+dn+tn > len(p) {
		return 0, nil, nil, fmt.Errorf("aggsvc: RESULT tag lane %d B overruns payload", tn)
	}
	tags = p[16+dn : 16+dn+tn]
	if tn == 0 {
		tags = nil
	}
	return round, data, tags, nil
}

// decodeResultV2 parses a RESULT including the optional v2 survivor
// trailer (u32 count + count×u32 ranks, appended after the tag lane only
// when the round degraded). A nil survivors return means the aggregate is
// complete; a trailer that is present but malformed — truncated, oversize,
// or an empty survivor set — is an error, never silently ignored: opening
// a partial aggregate as if it were complete would decrypt garbage.
func decodeResultV2(p []byte) (round uint64, data, tags []byte, survivors []uint32, err error) {
	round, data, tags, err = decodeResult(p)
	if err != nil {
		return 0, nil, nil, nil, err
	}
	dn := int(binary.LittleEndian.Uint32(p[8:]))
	tn := int(binary.LittleEndian.Uint32(p[12+dn:]))
	rest := p[16+dn+tn:]
	if len(rest) == 0 {
		return round, data, tags, nil, nil
	}
	if len(rest) < 4 {
		return 0, nil, nil, nil, fmt.Errorf("aggsvc: RESULT survivor trailer %d B too short", len(rest))
	}
	n := int(binary.LittleEndian.Uint32(rest))
	if n == 0 {
		return 0, nil, nil, nil, fmt.Errorf("aggsvc: RESULT names an empty survivor set")
	}
	if len(rest) != 4+4*n {
		return 0, nil, nil, nil, fmt.Errorf("aggsvc: RESULT survivor trailer %d B for %d ranks, want %d",
			len(rest), n, 4+4*n)
	}
	survivors = make([]uint32, n)
	for i := range survivors {
		survivors[i] = binary.LittleEndian.Uint32(rest[4+4*i:])
	}
	return round, data, tags, survivors, nil
}

func encodeAbort(e *AbortError) []byte {
	msg := e.Msg
	if len(msg) > 1<<12 {
		msg = msg[:1<<12]
	}
	p := make([]byte, 12+len(msg))
	binary.LittleEndian.PutUint64(p[0:], e.Round)
	binary.LittleEndian.PutUint16(p[8:], uint16(e.Code))
	binary.LittleEndian.PutUint16(p[10:], uint16(len(msg)))
	copy(p[12:], msg)
	return p
}

func decodeAbort(p []byte) (*AbortError, error) {
	if len(p) < 12 {
		return nil, fmt.Errorf("aggsvc: ABORT payload %d B too short", len(p))
	}
	n := int(binary.LittleEndian.Uint16(p[10:]))
	if 12+n > len(p) {
		n = len(p) - 12
	}
	return &AbortError{
		Round: binary.LittleEndian.Uint64(p[0:]),
		Code:  AbortCode(binary.LittleEndian.Uint16(p[8:])),
		Msg:   string(p[12 : 12+n]),
	}, nil
}

// encodeStats serializes named counters as (u8 name length, name, u64
// value) entries, sorted by key so the wire form is deterministic. The
// payload size is computed exactly from the key set up front, so encoding
// appends into one right-sized allocation instead of growing quadratically.
func encodeStats(stats map[string]uint64, keys []string) []byte {
	size := 2
	for _, k := range keys {
		n := len(k)
		if n > 255 {
			n = 255
		}
		size += 1 + n + 8
	}
	p := make([]byte, 2, size)
	binary.LittleEndian.PutUint16(p, uint16(len(keys)))
	for _, k := range keys {
		name := k
		if len(name) > 255 {
			name = name[:255]
		}
		var v [8]byte
		binary.LittleEndian.PutUint64(v[:], stats[k])
		p = append(p, byte(len(name)))
		p = append(p, name...)
		p = append(p, v[:]...)
	}
	return p
}

func decodeStats(p []byte) (map[string]uint64, error) {
	if len(p) < 2 {
		return nil, fmt.Errorf("aggsvc: STATS payload %d B too short", len(p))
	}
	n := int(binary.LittleEndian.Uint16(p))
	out := make(map[string]uint64, n)
	off := 2
	for i := 0; i < n; i++ {
		if off >= len(p) {
			return nil, fmt.Errorf("aggsvc: STATS entry %d overruns payload", i)
		}
		nl := int(p[off])
		off++
		if off+nl+8 > len(p) {
			return nil, fmt.Errorf("aggsvc: STATS entry %d overruns payload", i)
		}
		name := string(p[off : off+nl])
		out[name] = binary.LittleEndian.Uint64(p[off+nl:])
		off += nl + 8
	}
	return out, nil
}
