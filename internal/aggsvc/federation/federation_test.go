package federation_test

import (
	"errors"
	"fmt"
	"net"
	"os/exec"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hear"
	"hear/internal/aggsvc"
	"hear/internal/aggsvc/federation"
	"hear/internal/homac"
	"hear/internal/metrics"
	"hear/internal/mpi"
)

// newSealers builds size gateway participants sharing one Init world under
// the given scheme. seed != 0 attaches a shared HoMAC verifier (Int64Sum
// only — tags aggregate linearly).
func newSealers(t *testing.T, size int, kind hear.SchemeKind, seed uint64) []*hear.GatewaySealer {
	t.Helper()
	w := mpi.NewWorld(size)
	ctxs, err := hear.Init(w, hear.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var verifier *homac.Vector
	if seed != 0 {
		if verifier, err = hear.NewVerifier(seed); err != nil {
			t.Fatal(err)
		}
	}
	sealers := make([]*hear.GatewaySealer, size)
	for i, c := range ctxs {
		if sealers[i], err = c.NewGatewaySealerScheme(kind, verifier); err != nil {
			t.Fatal(err)
		}
	}
	return sealers
}

// roundRobin assigns arriving connections to cohorts in rotation. Pipe
// connections all share the remote address "pipe", so the production
// host-hash policy cannot spread them; any balanced assignment yields the
// same aggregate (the folds are commutative across the whole client set).
func roundRobin(cohorts int) func(net.Addr) int {
	var n atomic.Int64
	return func(net.Addr) int { return int((n.Add(1) - 1) % int64(cohorts)) }
}

// startTier launches one gateway tier on an in-process pipe listener.
func startTier(t *testing.T, cfg aggsvc.Config) *aggsvc.PipeListener {
	t.Helper()
	s, err := aggsvc.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l := aggsvc.NewPipeListener()
	go s.Serve(l)
	t.Cleanup(func() { s.Close() })
	return l
}

// uplinkTo wires a downstream tier to the given upstream listener.
func uplinkTo(t *testing.T, l *aggsvc.PipeListener, tier int, reg *metrics.Registry) aggsvc.UplinkDialer {
	t.Helper()
	u, err := federation.New(federation.Config{
		Dial:    l.Dial,
		Timeout: 30 * time.Second,
		Tier:    tier,
		Metrics: reg,
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	return u.Dialer()
}

// runClients drives every sealer through `rounds` aggregation rounds
// against the listener and returns the final round's outputs.
func runClients(t *testing.T, l *aggsvc.PipeListener, sealers []*hear.GatewaySealer, inputs [][]int64, rounds int) ([][]int64, []error) {
	t.Helper()
	n := len(sealers)
	outs := make([][]int64, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		conn, err := l.Dial()
		if err != nil {
			t.Fatal(err)
		}
		c := aggsvc.NewClient(conn, sealers[i], aggsvc.ClientOptions{Timeout: 30 * time.Second})
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer c.Close()
			outs[i] = make([]int64, len(inputs[i]))
			for r := 0; r < rounds; r++ {
				if _, err := c.Aggregate(inputs[i], outs[i]); err != nil {
					errs[i] = fmt.Errorf("round %d: %w", r, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	return outs, errs
}

// TestFederationTwoTierBitIdentical is the acceptance scenario: for each
// gateway-foldable scheme, the same client set aggregates through a
// 2-tier federation (leaf gateway with 3 cohorts cascading into a root)
// and through a flat gateway; the decrypted aggregates must be
// bit-identical to each other and to the plaintext reference, and both
// topologies must land on the same seal epoch.
func TestFederationTwoTierBitIdentical(t *testing.T) {
	const clients, cohorts, elems, rounds = 6, 3, 257, 2
	cases := []struct {
		name string
		kind hear.SchemeKind
		seed uint64 // 0 = untagged
		fold func(acc, v int64) int64
		unit int64
	}{
		{"sum-verified", hear.Int64Sum, 0xfed5, func(a, v int64) int64 { return a + v }, 0},
		{"prod", hear.Int64Prod, 0, func(a, v int64) int64 { return int64(uint64(a) * uint64(v)) }, 1},
		{"xor", hear.Int64Xor, 0, func(a, v int64) int64 { return a ^ v }, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inputs := make([][]int64, clients)
			want := make([]int64, elems)
			for j := range want {
				want[j] = tc.unit
			}
			for i := range inputs {
				inputs[i] = make([]int64, elems)
				for j := range inputs[i] {
					// Mixed signs and parities; exact for all three folds.
					inputs[i][j] = int64((i+2)*(j+3)) - 41
					want[j] = tc.fold(want[j], inputs[i][j])
				}
			}

			// Federated: leaf (3 cohorts of 2) cascading into a root of 3.
			rootL := startTier(t, aggsvc.Config{Group: cohorts, Logf: t.Logf})
			leafL := startTier(t, aggsvc.Config{
				Group:    clients / cohorts,
				Cohorts:  cohorts,
				CohortBy: roundRobin(cohorts),
				Uplink:   uplinkTo(t, rootL, 0, nil),
				Logf:     t.Logf,
			})
			fedSealers := newSealers(t, clients, tc.kind, tc.seed)
			fedOuts, errs := runClients(t, leafL, fedSealers, inputs, rounds)
			for i, err := range errs {
				if err != nil {
					t.Fatalf("federated client %d: %v", i, err)
				}
			}

			// Flat: the same client set against one gateway.
			flatL := startTier(t, aggsvc.Config{Group: clients, Logf: t.Logf})
			flatSealers := newSealers(t, clients, tc.kind, tc.seed)
			flatOuts, errs := runClients(t, flatL, flatSealers, inputs, rounds)
			for i, err := range errs {
				if err != nil {
					t.Fatalf("flat client %d: %v", i, err)
				}
			}

			for i := 0; i < clients; i++ {
				for j := 0; j < elems; j++ {
					if fedOuts[i][j] != want[j] {
						t.Fatalf("federated client %d elem %d = %d, want %d", i, j, fedOuts[i][j], want[j])
					}
					if fedOuts[i][j] != flatOuts[i][j] {
						t.Fatalf("client %d elem %d: federated %d != flat %d", i, j, fedOuts[i][j], flatOuts[i][j])
					}
				}
			}
			// The cascade applies the max+1 epoch rule exactly once, at the
			// root, so both topologies advance the key schedule identically.
			if fe, fl := fedSealers[0].Epoch(), flatSealers[0].Epoch(); fe != fl {
				t.Fatalf("seal epoch diverged: federated %d, flat %d", fe, fl)
			}
		})
	}
}

// TestFederationThreeTier cascades through leaf → middle → root (8 clients,
// 4 leaf cohorts, 2 middle cohorts) with verification on, and checks the
// per-tier federation metrics.
func TestFederationThreeTier(t *testing.T) {
	const clients, elems, rounds = 8, 33, 2
	reg := metrics.New()
	rootL := startTier(t, aggsvc.Config{Group: 2, Logf: t.Logf})
	midL := startTier(t, aggsvc.Config{
		Group: 2, Cohorts: 2, CohortBy: roundRobin(2),
		Uplink: uplinkTo(t, rootL, 1, reg), Logf: t.Logf,
	})
	leafL := startTier(t, aggsvc.Config{
		Group: 2, Cohorts: 4, CohortBy: roundRobin(4),
		Uplink: uplinkTo(t, midL, 0, reg), Logf: t.Logf,
	})

	sealers := newSealers(t, clients, hear.Int64Sum, 0x3f3d)
	inputs := make([][]int64, clients)
	want := make([]int64, elems)
	for i := range inputs {
		inputs[i] = make([]int64, elems)
		for j := range inputs[i] {
			inputs[i][j] = int64(i*100+j) - 250
			want[j] += inputs[i][j]
		}
	}
	outs, errs := runClients(t, leafL, sealers, inputs, rounds)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	for i := range outs {
		for j := range outs[i] {
			if outs[i][j] != want[j] {
				t.Fatalf("client %d elem %d = %d, want %d", i, j, outs[i][j], want[j])
			}
		}
	}

	m := reg.Map()
	if got := m[`hear_federation_upstream_rounds_total{tier="0"}`]; got != 4*rounds {
		t.Errorf("leaf upstream rounds = %v, want %d", got, 4*rounds)
	}
	if got := m[`hear_federation_upstream_rounds_total{tier="1"}`]; got != 2*rounds {
		t.Errorf("middle upstream rounds = %v, want %d", got, 2*rounds)
	}
	for _, tier := range []string{"0", "1"} {
		if got := m[`hear_federation_upstream_failures_total{tier="`+tier+`"}`]; got != 0 {
			t.Errorf("tier %s failures = %v, want 0", tier, got)
		}
		if got := m[`hear_federation_upstream_inflight{tier="`+tier+`"}`]; got != 0 {
			t.Errorf("tier %s inflight = %v, want 0", tier, got)
		}
	}
}

// severPostJoin wraps a client connection so its first write after any
// successful read fails and drops the connection — the client writes only
// HELLO before reading JOIN, so this deterministically kills a participant
// at its first post-JOIN SUBMIT byte.
type severPostJoin struct {
	net.Conn
	reads atomic.Int64
}

func (c *severPostJoin) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.reads.Add(1)
	}
	return n, err
}

func (c *severPostJoin) Write(p []byte) (int, error) {
	if c.reads.Load() > 0 {
		c.Conn.Close()
		return 0, errors.New("severed post-JOIN")
	}
	return c.Conn.Write(p)
}

// TestFederationDegradedSurvivorUnion drives a dropout through a 2-tier
// federation: one client of a leaf cohort dies at its first post-JOIN
// SUBMIT byte, the cohort degrades at its deadline and relays a partial
// fold (complete=false) upstream, the root completes its round but names
// the global survivor union, and that union propagates back down so every
// surviving client — including those of the *complete* sibling cohort —
// cancels exactly the dead rank's noise. The decrypted aggregates must
// equal the plaintext fold over the survivor inputs for every
// gateway-foldable scheme.
func TestFederationDegradedSurvivorUnion(t *testing.T) {
	const clients, cohorts, elems, victim = 4, 2, 129, 2
	cases := []struct {
		name string
		kind hear.SchemeKind
		seed uint64
		fold func(acc, v int64) int64
		unit int64
	}{
		{"sum-verified", hear.Int64Sum, 0xd39a, func(a, v int64) int64 { return a + v }, 0},
		{"prod", hear.Int64Prod, 0, func(a, v int64) int64 { return int64(uint64(a) * uint64(v)) }, 1},
		{"xor", hear.Int64Xor, 0, func(a, v int64) int64 { return a ^ v }, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reg := metrics.New()
			root, err := aggsvc.NewServer(aggsvc.Config{
				Group: cohorts, Quorum: 1, DegradedRounds: true, Logf: t.Logf,
			})
			if err != nil {
				t.Fatal(err)
			}
			rootL := aggsvc.NewPipeListener()
			go root.Serve(rootL)
			t.Cleanup(func() { root.Close() })
			leaf, err := aggsvc.NewServer(aggsvc.Config{
				Group:          clients / cohorts,
				Cohorts:        cohorts,
				CohortBy:       roundRobin(cohorts),
				Quorum:         1,
				DegradedRounds: true,
				RoundTimeout:   600 * time.Millisecond,
				Uplink:         uplinkTo(t, rootL, 0, reg),
				Logf:           t.Logf,
			})
			if err != nil {
				t.Fatal(err)
			}
			leafL := aggsvc.NewPipeListener()
			go leaf.Serve(leafL)
			t.Cleanup(func() { leaf.Close() })

			// Shared-group keys: every survivor can derive the dead rank's
			// noise stream.
			w := mpi.NewWorld(clients)
			ctxs, err := hear.Init(w, hear.Options{SharedGroupKeys: true})
			if err != nil {
				t.Fatal(err)
			}
			var verifier *homac.Vector
			if tc.seed != 0 {
				if verifier, err = hear.NewVerifier(tc.seed); err != nil {
					t.Fatal(err)
				}
			}
			sealers := make([]*hear.GatewaySealer, clients)
			for i, c := range ctxs {
				if sealers[i], err = c.NewGatewaySealerScheme(tc.kind, verifier); err != nil {
					t.Fatal(err)
				}
			}

			inputs := make([][]int64, clients)
			want := make([]int64, elems)
			for j := range want {
				want[j] = tc.unit
			}
			for i := range inputs {
				inputs[i] = make([]int64, elems)
				for j := range inputs[i] {
					inputs[i][j] = int64((i+3)*(j+5)) - 77
					if i != victim {
						want[j] = tc.fold(want[j], inputs[i][j])
					}
				}
			}

			// Dial in rank order so roundRobin pairs (0,2) and (1,3) into
			// cohorts; rank `victim` shares its cohort with rank 0.
			outs := make([][]int64, clients)
			rounds := make([]aggsvc.Round, clients)
			errs := make([]error, clients)
			var wg sync.WaitGroup
			for i := 0; i < clients; i++ {
				conn, err := leafL.Dial()
				if err != nil {
					t.Fatal(err)
				}
				if i == victim {
					conn = &severPostJoin{Conn: conn}
				}
				c := aggsvc.NewClient(conn, sealers[i], aggsvc.ClientOptions{Timeout: 30 * time.Second})
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					defer c.Close()
					outs[i] = make([]int64, elems)
					rounds[i], errs[i] = c.Aggregate(inputs[i], outs[i])
				}(i)
			}
			wg.Wait()

			if errs[victim] == nil {
				t.Fatal("severed victim's Aggregate succeeded")
			}
			wantSurv := []int{0, 1, 3}
			for i := 0; i < clients; i++ {
				if i == victim {
					continue
				}
				if errs[i] != nil {
					t.Fatalf("survivor %d: %v", i, errs[i])
				}
				if !rounds[i].Degraded {
					t.Fatalf("survivor %d round not marked degraded", i)
				}
				if fmt.Sprint(rounds[i].Survivors) != fmt.Sprint(wantSurv) {
					t.Fatalf("survivor %d survivor set %v, want %v", i, rounds[i].Survivors, wantSurv)
				}
				for j := range want {
					if outs[i][j] != want[j] {
						t.Fatalf("survivor %d elem %d = %d, want %d (plaintext fold over survivors)",
							i, j, outs[i][j], want[j])
					}
				}
			}
			if got := root.StatsMap()["rounds_degraded"]; got != 1 {
				t.Errorf("root rounds_degraded = %d, want 1", got)
			}
			// Both leaf cohorts' rounds end degraded: the victim's by local
			// eviction, the sibling's by the global survivor union its relay
			// brought back down.
			if got := leaf.StatsMap()["rounds_degraded"]; got != 2 {
				t.Errorf("leaf rounds_degraded = %d, want 2", got)
			}
			m := reg.Map()
			if got := m[`hear_federation_partial_relays_total{tier="0"}`]; got != 1 {
				t.Errorf("partial relays = %v, want 1", got)
			}
			if got := m[`hear_federation_rounds_degraded_total{tier="0"}`]; got != 2 {
				t.Errorf("degraded downlinks = %v, want 2", got)
			}
		})
	}
}

// TestFederationUpstreamDialAbort pins the typed failure path: when the
// upstream tier is unreachable, the leaf's clients get AbortUpstream — a
// retryable, diagnosable code — not a hang or a generic protocol error.
func TestFederationUpstreamDialAbort(t *testing.T) {
	const clients = 2
	reg := metrics.New()
	u, err := federation.New(federation.Config{
		Dial:        func() (net.Conn, error) { return nil, errors.New("connection refused") },
		DialRetry:   2,
		DialBackoff: time.Millisecond,
		Tier:        0,
		Metrics:     reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	leafL := startTier(t, aggsvc.Config{Group: clients, Uplink: u.Dialer(), Logf: t.Logf})

	sealers := newSealers(t, clients, hear.Int64Sum, 0)
	inputs := [][]int64{make([]int64, 8), make([]int64, 8)}
	_, errs := runClients(t, leafL, sealers, inputs, 1)
	for i, err := range errs {
		var aerr *aggsvc.AbortError
		if !errors.As(err, &aerr) || aerr.Code != aggsvc.AbortUpstream {
			t.Errorf("client %d got %v, want AbortUpstream", i, err)
		}
	}
	m := reg.Map()
	if got := m[`hear_federation_upstream_dial_retries_total{tier="0"}`]; got != 2 {
		t.Errorf("dial retries = %v, want 2", got)
	}
	if got := m[`hear_federation_upstream_failures_total{tier="0"}`]; got != 1 {
		t.Errorf("upstream failures = %v, want 1", got)
	}
}

// TestFederationWedgedRootUnwinds pins the watcher path: a root that
// accepts the uplink HELLO but can never fill its round must not wedge the
// leaf — the leaf's own deadline aborts the round, the abort closes the
// pending upstream exchange, and every client unblocks well before the
// upstream timeout.
func TestFederationWedgedRootUnwinds(t *testing.T) {
	const clients = 2
	// Root requires 2 cohort partials but only one leaf cohort exists, so
	// its round can never fill.
	rootL := startTier(t, aggsvc.Config{Group: 2, RoundTimeout: time.Minute, Logf: t.Logf})
	leafL := startTier(t, aggsvc.Config{
		Group:        clients,
		RoundTimeout: 400 * time.Millisecond,
		Uplink:       uplinkTo(t, rootL, 0, nil),
		Logf:         t.Logf,
	})
	sealers := newSealers(t, clients, hear.Int64Sum, 0)
	inputs := [][]int64{make([]int64, 4), make([]int64, 4)}
	start := time.Now()
	_, errs := runClients(t, leafL, sealers, inputs, 1)
	elapsed := time.Since(start)
	for i, err := range errs {
		var aerr *aggsvc.AbortError
		if !errors.As(err, &aerr) {
			t.Errorf("client %d got %v, want a typed abort", i, err)
		}
	}
	if elapsed > 10*time.Second {
		t.Fatalf("leaf took %v to unwind from a wedged root", elapsed)
	}
}

// TestFederationKeyBlind extends the gateway's central security property
// to the cascade: the federation package relays sealed lanes between tiers
// and must never link key material — not the hear root package, not
// internal/keys, not internal/homac.
func TestFederationKeyBlind(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go tool unavailable: %v", err)
	}
	out, err := exec.Command(goBin, "list", "-deps", "hear/internal/aggsvc/federation").Output()
	if err != nil {
		t.Fatalf("go list -deps: %v", err)
	}
	for _, dep := range strings.Fields(string(out)) {
		if dep == "hear" || dep == "hear/internal/keys" || dep == "hear/internal/homac" {
			t.Errorf("federation depends on key-bearing package %q", dep)
		}
	}
}

// TestFederationSchemeIDMapping pins the structural contract between the
// root package's GatewaySealer (which cannot import the gateway) and the
// wire scheme identifiers the gateway dispatches folds on.
func TestFederationSchemeIDMapping(t *testing.T) {
	w := mpi.NewWorld(1)
	ctxs, err := hear.Init(w, hear.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		kind hear.SchemeKind
		want uint8
	}{
		{hear.Int64Sum, aggsvc.SchemeInt64Sum},
		{hear.Int64Prod, aggsvc.SchemeInt64Prod},
		{hear.Int64Xor, aggsvc.SchemeInt64Xor},
	} {
		g, err := ctxs[0].NewGatewaySealerScheme(tc.kind, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := g.SchemeID(); got != tc.want {
			t.Errorf("%s: SchemeID = %d, want %d", tc.kind, got, tc.want)
		}
	}
	// Non-foldable kinds and tagged non-sum schemes are refused up front.
	if _, err := ctxs[0].NewGatewaySealerScheme(hear.Float64Sum, nil); err == nil {
		t.Error("Float64Sum accepted as a gateway scheme")
	}
	v, err := hear.NewVerifier(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctxs[0].NewGatewaySealerScheme(hear.Int64Prod, v); err == nil {
		t.Error("verifier accepted for a non-additive scheme")
	}
}
