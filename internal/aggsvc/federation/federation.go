// Package federation cascades key-blind partial folds across gateway
// tiers: the gateway-of-gateways topology that scales HEAR's secure
// aggregation from one flat internal/aggsvc box to millions of clients.
//
// A leaf gateway folds its cohort's sealed lanes with the ordinary worker-
// pool fold kernels, then acts as a *client* of an upstream gateway: it
// speaks the existing HELLO/JOIN/SUBMIT/RESULT frame protocol to submit
// the partial aggregate, and fans the globally reduced RESULT back down to
// its cohort. The cascade is safe for exactly the reason the paper trusts
// an in-network switch: HEAR's canceling-noise schemes make every
// aggregator key-blind, and the fold operators are associative and
// commutative, so a tree of partial folds is bit-identical to one flat
// fold — this package imports no key material and cannot decrypt at any
// tier (see TestFederationKeyBlind).
//
// Epoch negotiation reuses the HELLO/JOIN seal-epoch machinery unchanged:
// a leaf advertises its cohort's *maximum* HELLO epoch upstream (without
// the +1 a flat round would apply) and forwards the upstream JOIN's epoch
// verbatim down to its cohort. The max+1 rule therefore runs exactly once,
// at the federation's root, and every client of the whole tree seals at
// the same epoch a flat round over the same client set would have agreed
// on.
package federation

import (
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hear/internal/aggsvc"
	"hear/internal/metrics"
)

// Defaults for Config zero values.
const (
	DefaultTimeout        = 30 * time.Second
	DefaultDialBackoff    = 50 * time.Millisecond
	DefaultDialBackoffMax = 2 * time.Second
)

// Config configures one gateway's uplink to its upstream tier.
type Config struct {
	// Addr is the upstream gateway's TCP address. Ignored when Dial is set.
	Addr string
	// Dial, when non-nil, produces upstream connections (tests use
	// PipeListener.Dial; production leaves it nil for TCP).
	Dial func() (net.Conn, error)
	// Timeout bounds one whole upstream exchange — HELLO through RESULT —
	// so a wedged upstream tier cannot hang a leaf's cohorts forever
	// (default 30s). It should exceed the upstream gateway's round
	// deadline.
	Timeout time.Duration
	// DialRetry is how many times a failed upstream dial is re-attempted
	// (with DialBackoff between tries) before the cohort's round aborts.
	// Dialing happens before anything is sealed, so retrying it is always
	// safe; the exchange itself is never retried — a re-rounded upstream
	// could name a different seal epoch than the one the cohort already
	// sealed at, so mid-round failures abort typed (AbortUpstream) and the
	// *clients* re-round end to end.
	DialRetry int
	// DialBackoff is the first sleep between dial attempts (default 50ms),
	// doubling per attempt up to DialBackoffMax (default 2s) with
	// deterministic jitter — a whole leaf tier redialing a restarted root
	// must spread out, not stampede in lockstep.
	DialBackoff time.Duration
	// DialBackoffMax caps the exponential dial backoff (default 2s).
	DialBackoffMax time.Duration
	// MaxFrameBytes bounds upstream frames (default aggsvc's).
	MaxFrameBytes int
	// Tier labels this gateway's depth in the federation (leaves are tier
	// 0's aggregators; the root has no uplink). Only used for metrics.
	Tier int
	// Metrics, when non-nil, publishes per-tier federation counters:
	// upstream rounds/failures/dial retries, negotiate and relay
	// latencies, and in-flight exchanges, all labeled with the tier.
	Metrics *metrics.Registry
	// Logf, when non-nil, receives one line per upstream failure.
	Logf func(format string, args ...any)
}

func (c *Config) fill() error {
	if c.Addr == "" && c.Dial == nil {
		return fmt.Errorf("federation: neither upstream address nor dialer configured")
	}
	if c.Timeout <= 0 {
		c.Timeout = DefaultTimeout
	}
	if c.DialRetry < 0 {
		return fmt.Errorf("federation: negative dial retry %d", c.DialRetry)
	}
	if c.DialBackoff <= 0 {
		c.DialBackoff = DefaultDialBackoff
	}
	if c.DialBackoffMax <= 0 {
		c.DialBackoffMax = DefaultDialBackoffMax
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return nil
}

// Uplink connects a gateway to its upstream tier. Its Dialer plugs into
// aggsvc.Config.Uplink; each cohort round gets an independent upstream
// exchange, so many cohorts cascade concurrently over separate
// connections.
type Uplink struct {
	cfg Config

	// bufs recycles the per-exchange frame read buffers: each upstream
	// round's client draws its reusable RESULT/JOIN buffer here and
	// returns it on Close, so a long-lived leaf's steady state keeps a
	// handful of high-water buffers instead of allocating one per round.
	bufs sync.Pool

	dialSeq atomic.Int64 // distinct jitter seed per dial loop

	rounds        *metrics.Counter
	failures      *metrics.Counter
	dialRetries   *metrics.Counter
	partialRelays *metrics.Counter
	degradedDown  *metrics.Counter
	inflight      *metrics.Gauge
	negotiateS    *metrics.Histogram
	relayS        *metrics.Histogram
}

// latencyBounds bucket upstream phase latencies from sub-millisecond
// (in-process pipes) to tens of seconds (a straggling upstream round).
var latencyBounds = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 30}

// New validates cfg and returns an uplink ready for Dialer.
func New(cfg Config) (*Uplink, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	u := &Uplink{cfg: cfg}
	if r := cfg.Metrics; r != nil {
		labels := metrics.Labels{"tier": strconv.Itoa(cfg.Tier)}
		u.rounds = r.Counter("hear_federation_upstream_rounds_total", labels)
		u.failures = r.Counter("hear_federation_upstream_failures_total", labels)
		u.dialRetries = r.Counter("hear_federation_upstream_dial_retries_total", labels)
		u.partialRelays = r.Counter("hear_federation_partial_relays_total", labels)
		u.degradedDown = r.Counter("hear_federation_rounds_degraded_total", labels)
		u.inflight = r.Gauge("hear_federation_upstream_inflight", labels)
		u.negotiateS = r.Histogram("hear_federation_negotiate_seconds", labels, latencyBounds)
		u.relayS = r.Histogram("hear_federation_relay_seconds", labels, latencyBounds)
		r.Gauge("hear_federation_tier", labels).Set(int64(cfg.Tier))
	}
	return u, nil
}

// Dialer returns the aggsvc.Config.Uplink hook: it dials the upstream
// gateway (with retry — nothing is sealed yet) and hands back the
// exchange.
func (u *Uplink) Dialer() aggsvc.UplinkDialer {
	return func(cohort int) (aggsvc.UplinkRound, error) {
		conn, err := u.dial()
		if err != nil {
			u.failures.Inc()
			u.cfg.Logf("federation: cohort %d: upstream dial failed: %v", cohort, err)
			return nil, err
		}
		u.inflight.Add(1)
		return &wireRound{u: u, cohort: cohort, conn: conn, done: make(chan error, 1)}, nil
	}
}

func (u *Uplink) dial() (net.Conn, error) {
	dial := u.cfg.Dial
	if dial == nil {
		addr := u.cfg.Addr
		timeout := u.cfg.Timeout
		dial = func() (net.Conn, error) { return net.DialTimeout("tcp", addr, timeout) }
	}
	bo := &aggsvc.Backoff{Base: u.cfg.DialBackoff, Max: u.cfg.DialBackoffMax,
		Seed: int64(u.cfg.Tier)<<32 ^ u.dialSeq.Add(1)}
	var lastErr error
	for attempt := 0; attempt <= u.cfg.DialRetry; attempt++ {
		if attempt > 0 {
			u.dialRetries.Inc()
			bo.Sleep(attempt)
		}
		conn, err := dial()
		if err == nil {
			return conn, nil
		}
		lastErr = err
	}
	return nil, &aggsvc.GiveUpError{Op: "dial upstream", Attempts: u.cfg.DialRetry + 1, Last: lastErr}
}

// lanePair carries the two lanes of one exchange direction.
type lanePair struct{ data, tags []byte }

// globalLanes is the downward leg of one exchange: the globally reduced
// lanes plus the upstream RESULT's survivor union (nil when complete).
type globalLanes struct {
	data, tags []byte
	surv       []uint32
}

// cascadeSealer is the pass-through "sealer" a leaf presents to the
// upstream tier. It holds no keys: Seal hands over the cohort's already-
// folded lanes, Verify captures the global lanes (the *clients* verify —
// a leaf cannot, and must not need to), and Open is a no-op. The channel
// rendezvous is what splits aggsvc.Client's single Aggregate call into
// the two phases a cascade needs: the epoch handshake before the cohort
// seals, and the lane relay after it folds.
type cascadeSealer struct {
	scheme uint8
	tagged bool
	epoch  uint64 // the cohort's max HELLO epoch, advertised upstream

	// Rank coverage of the relayed fold, written by wireRound.Relay before
	// the lanesCh send (whose happens-before edge publishes them to the
	// client goroutine, which reads Coverage only after Seal returns).
	covers         []uint32
	coversComplete bool
	coversSet      bool

	epochCh  chan uint64      // ← Seal: the upstream JOIN's agreed epoch
	lanesCh  chan lanePair    // → Seal: the cohort's folded partial lanes
	globalCh chan globalLanes // ← Verify: the globally reduced lanes (+ survivors)
	closeCh  chan struct{}    // broken rendezvous: the leaf round died
}

func (s *cascadeSealer) Tagged() bool    { return s.tagged }
func (s *cascadeSealer) SchemeID() uint8 { return s.scheme }
func (s *cascadeSealer) Epoch() uint64   { return s.epoch }

// RankID: a relay has no key-schedule rank of its own — its submission
// stands in for the ranks Coverage declares.
func (s *cascadeSealer) RankID() int { return -1 }

// AcceptsDegraded: a key-blind relay always accepts a survivor-set RESULT —
// it verifies and opens nothing itself; the survivor union just fans down
// to the cohort's clients, who do.
func (s *cascadeSealer) AcceptsDegraded() bool { return true }

// Coverage reports the rank set the relayed fold covers (set by Relay).
func (s *cascadeSealer) Coverage() (ranks []uint32, complete bool, ok bool) {
	return s.covers, s.coversComplete, s.coversSet
}

// Seal reports the upstream-agreed epoch to the waiting Negotiate, then
// blocks until Relay supplies the folded partial lanes.
func (s *cascadeSealer) Seal(_ []int64, epoch uint64) (cipher, tags []byte, err error) {
	s.epochCh <- epoch
	select {
	case l := <-s.lanesCh:
		return l.data, l.tags, nil
	case <-s.closeCh:
		return nil, nil, fmt.Errorf("federation: leaf round ended before its fold completed")
	}
}

// Verify captures the globally reduced lanes; verification itself belongs
// to the key-holding clients at the tree's leaves. The lanes alias the
// uplink client's recycled read buffer, and the leaf's downlink fan-out
// outlives this exchange (the buffer returns to the shared pool on Close,
// where the next cohort's round would scribble over it) — so this is the
// single copy the cascade pays per cohort round, and everything past it is
// zero-copy (see DESIGN.md, "Zero-copy wire path").
func (s *cascadeSealer) Verify(reducedCipher, reducedTags []byte) error {
	return s.capture(reducedCipher, reducedTags, nil)
}

// VerifySurvivors captures a *degraded* global RESULT: the lanes plus the
// survivor union, which the leaf forwards verbatim in its own RESULT
// trailers. A key-blind tier cannot (and must not need to) check the
// subset math — the cohort's clients verify against the same survivor set.
func (s *cascadeSealer) VerifySurvivors(reducedCipher, reducedTags []byte, survivors []int) error {
	surv := make([]uint32, len(survivors))
	for i, rk := range survivors {
		if rk < 0 {
			return fmt.Errorf("federation: negative survivor rank %d", rk)
		}
		surv[i] = uint32(rk)
	}
	return s.capture(reducedCipher, reducedTags, surv)
}

func (s *cascadeSealer) capture(reducedCipher, reducedTags []byte, surv []uint32) error {
	g := globalLanes{data: append([]byte(nil), reducedCipher...), surv: surv}
	if reducedTags != nil {
		g.tags = append([]byte(nil), reducedTags...)
	}
	s.globalCh <- g
	return nil
}

// Open is a no-op: a key-blind tier has nothing to decrypt.
func (s *cascadeSealer) Open([]byte, []int64) error { return nil }

// OpenSurvivors is likewise a no-op.
func (s *cascadeSealer) OpenSurvivors([]byte, []int64, []int) error { return nil }

// wireRound is one upstream exchange: an aggsvc.Client round driven on its
// own goroutine, with the cascadeSealer as the rendezvous between the
// server core's Negotiate/Relay phases and the client's Seal/Verify
// callbacks.
type wireRound struct {
	u      *Uplink
	cohort int
	conn   net.Conn

	sealer *cascadeSealer
	done   chan error // the Aggregate goroutine's outcome

	mu      sync.Mutex
	started bool
	closed  bool
}

// Negotiate starts the upstream round and blocks until its JOIN names the
// federation's agreed seal epoch.
func (w *wireRound) Negotiate(scheme uint8, elems int, tagged bool, cohortEpoch uint64) (uint64, error) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return 0, fmt.Errorf("federation: uplink round closed")
	}
	w.sealer = &cascadeSealer{
		scheme:   scheme,
		tagged:   tagged,
		epoch:    cohortEpoch,
		epochCh:  make(chan uint64, 1),
		lanesCh:  make(chan lanePair),
		globalCh: make(chan globalLanes, 1),
		closeCh:  make(chan struct{}),
	}
	client := aggsvc.NewClient(w.conn, w.sealer, aggsvc.ClientOptions{
		Timeout:       w.u.cfg.Timeout,
		MaxFrameBytes: w.u.cfg.MaxFrameBytes,
		ReadBufPool:   &w.u.bufs,
	})
	w.started = true
	w.mu.Unlock()

	w.u.rounds.Inc()
	start := time.Now()
	go func() {
		// The dummy vector sizes HELLO's element count; the cascade sealer
		// ignores its contents and hands over real lanes.
		dummy := make([]int64, elems)
		_, err := client.Aggregate(dummy, dummy)
		// The exchange is over (Verify already copied the global lanes), so
		// the read buffer can rejoin the pool. Only this goroutine may do
		// it: wireRound.Close can race a still-blocked Aggregate, and
		// recycling under a mid-flight read would hand the buffer to
		// another cohort while ours still writes it. Closing the conn here
		// is safe — each upstream exchange owns its connection.
		client.Close()
		w.done <- err
	}()
	select {
	case epoch := <-w.sealer.epochCh:
		w.u.negotiateS.Observe(time.Since(start).Seconds())
		return epoch, nil
	case err := <-w.done:
		w.u.failures.Inc()
		w.u.cfg.Logf("federation: cohort %d: upstream negotiation failed: %v", w.cohort, err)
		if err == nil {
			err = fmt.Errorf("federation: upstream round ended before JOIN")
		}
		return 0, err
	}
}

// Relay hands the cohort's folded partial lanes — with their declared rank
// coverage — to the in-flight upstream round and blocks for the globally
// reduced ones plus the global survivor union (nil when complete).
func (w *wireRound) Relay(data, tags []byte, covers []uint32, complete bool) ([]byte, []byte, []uint32, error) {
	w.mu.Lock()
	started := w.started
	w.mu.Unlock()
	if !started {
		return nil, nil, nil, fmt.Errorf("federation: Relay before Negotiate")
	}
	if !complete {
		w.u.partialRelays.Inc()
	}
	// Publish coverage before the lanesCh send: the channel edge makes it
	// visible to the client goroutine, which reads Coverage after Seal.
	w.sealer.covers = covers
	w.sealer.coversComplete = complete
	w.sealer.coversSet = covers != nil || !complete
	start := time.Now()
	select {
	case w.sealer.lanesCh <- lanePair{data, tags}:
	case err := <-w.done:
		w.u.failures.Inc()
		if err == nil {
			err = fmt.Errorf("federation: upstream round ended before the relay")
		}
		w.u.cfg.Logf("federation: cohort %d: upstream relay failed: %v", w.cohort, err)
		return nil, nil, nil, err
	}
	if err := <-w.done; err != nil {
		w.u.failures.Inc()
		w.u.cfg.Logf("federation: cohort %d: upstream relay failed: %v", w.cohort, err)
		return nil, nil, nil, err
	}
	w.u.relayS.Observe(time.Since(start).Seconds())
	g := <-w.sealer.globalCh
	if g.surv != nil {
		w.u.degradedDown.Inc()
	}
	return g.data, g.tags, g.surv, nil
}

// Close releases the upstream connection and breaks any pending
// rendezvous, so a leaf round dying underneath a blocked exchange unwinds
// promptly. Safe to call concurrently and repeatedly.
func (w *wireRound) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	sealer := w.sealer
	w.mu.Unlock()
	if sealer != nil {
		close(sealer.closeCh)
	}
	w.u.inflight.Add(-1)
	return w.conn.Close()
}
