package aggsvc

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// foldStripes is the number of stripe locks guarding a round's
// accumulators: chunks at different stripes fold concurrently across the
// worker pool, chunks landing on the same stripe serialize.
const foldStripes = 64

// roundParams are the properties every participant of a round must agree
// on; they are fixed by the first HELLO that opens the round.
type roundParams struct {
	scheme uint8
	elems  int
	tagged bool
}

// participant is one admitted client of a round.
type participant struct {
	slot      int
	conn      net.Conn // read-deadline poked on abort to unblock its reader
	dataGot   int      // bytes accepted on the data lane (in-order)
	tagGot    int      // bytes accepted on the tag lane
	submitted bool
}

// roundState is one aggregation round: N participants, two lane
// accumulators, a deadline, and a single outcome — RESULT for everyone or
// a typed ABORT for everyone.
type roundState struct {
	id     uint64
	params roundParams
	group  int

	deadline time.Time
	timer    *time.Timer

	// Lane accumulators. Folding happens under per-stripe locks so chunks
	// from different regions proceed concurrently; all folds are commutative
	// and associative with identity 0, so arrival order is irrelevant.
	data    []byte
	tags    []byte
	stripes [foldStripes]sync.Mutex
	chunk   int

	mu       sync.Mutex
	parts    []*participant
	finished int // participants that submitted every lane byte
	tasks    int // outstanding fold tasks
	done     bool
	abortErr *AbortError
	doneCh   chan struct{}
	endOnce  sync.Once // server-side end-of-round bookkeeping
}

// laneSize returns the byte length of one lane.
func (r *roundState) laneSize() int { return r.params.elems * 8 }

// stripe returns the lock guarding the accumulator region of a chunk that
// starts at byte offset off.
func (r *roundState) stripe(off int) *sync.Mutex {
	return &r.stripes[(off/r.chunk)%foldStripes]
}

// taskAdded registers an outstanding fold task. It returns false when the
// round already ended (late chunks are dropped, not folded).
func (r *roundState) taskAdded() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done {
		return false
	}
	r.tasks++
	return true
}

// taskDone retires a fold task, completing the round if it was the last
// obligation.
func (r *roundState) taskDone() {
	r.mu.Lock()
	r.tasks--
	r.maybeCompleteLocked()
	r.mu.Unlock()
}

// submitted marks a participant as fully delivered.
func (r *roundState) submitted(p *participant) {
	r.mu.Lock()
	if !p.submitted {
		p.submitted = true
		r.finished++
		r.maybeCompleteLocked()
	}
	r.mu.Unlock()
}

func (r *roundState) maybeCompleteLocked() {
	if r.done || r.finished < r.group || r.tasks > 0 || len(r.parts) < r.group {
		return
	}
	r.done = true
	if r.timer != nil {
		r.timer.Stop()
	}
	close(r.doneCh)
}

// abort fails the round with a typed error. The first abort wins; every
// participant's pending read is interrupted so its handler can deliver the
// ABORT frame promptly instead of blocking until its own deadline.
func (r *roundState) abort(code AbortCode, format string, args ...any) {
	r.mu.Lock()
	if r.done {
		r.mu.Unlock()
		return
	}
	r.done = true
	r.abortErr = &AbortError{Round: r.id, Code: code, Msg: fmt.Sprintf(format, args...)}
	if r.timer != nil {
		r.timer.Stop()
	}
	parts := make([]*participant, len(r.parts))
	copy(parts, r.parts)
	close(r.doneCh)
	r.mu.Unlock()
	past := time.Unix(1, 0)
	for _, p := range parts {
		p.conn.SetReadDeadline(past)
	}
}

// outcome blocks until the round ends and returns its abort error (nil
// means the aggregate in r.data/r.tags is complete).
func (r *roundState) outcome() *AbortError {
	<-r.doneCh
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.abortErr
}

// aborted reports whether the round ended in failure.
func (r *roundState) aborted() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.done && r.abortErr != nil
}

// roundManager groups arriving HELLOs into rounds of exactly group
// participants.
type roundManager struct {
	group   int
	timeout time.Duration
	chunk   int

	mu     sync.Mutex
	nextID uint64
	open   *roundState // collecting participants; nil when none or sealed
}

// join admits a client into the open round (creating one if needed) and
// returns its participant record. A HELLO whose parameters disagree with
// the open round is refused without poisoning that round.
func (m *roundManager) join(conn net.Conn, params roundParams) (*roundState, *participant, *AbortError) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r := m.open
	if r != nil && (r.params != params || r.aborted()) {
		if r.aborted() {
			// The open round died (deadline) before filling; start fresh.
			m.open = nil
			r = nil
		} else {
			return nil, nil, &AbortError{Round: r.id, Code: AbortMismatch,
				Msg: fmt.Sprintf("open round %d has %d-element tagged=%v frames", r.id, r.params.elems, r.params.tagged)}
		}
	}
	if r == nil {
		r = &roundState{
			id:       m.nextID,
			params:   params,
			group:    m.group,
			deadline: time.Now().Add(m.timeout),
			data:     make([]byte, params.elems*8),
			chunk:    m.chunk,
			doneCh:   make(chan struct{}),
		}
		m.nextID++
		if params.tagged {
			r.tags = make([]byte, params.elems*8)
		}
		r.timer = time.AfterFunc(m.timeout, func() {
			r.abort(AbortDeadline, "round %d deadline (%s) expired before all %d participants finished",
				r.id, m.timeout, r.group)
		})
		m.open = r
	}
	p := &participant{slot: len(r.parts), conn: conn}
	r.mu.Lock()
	r.parts = append(r.parts, p)
	full := len(r.parts) == r.group
	r.mu.Unlock()
	if full {
		m.open = nil // sealed: it no longer accepts joiners
	}
	return r, p, nil
}
