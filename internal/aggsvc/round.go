package aggsvc

import (
	"encoding/binary"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"
)

// foldStripes is the number of stripe locks guarding a round's
// accumulators: chunks at different stripes fold concurrently across the
// worker pool, chunks landing on the same stripe serialize.
const foldStripes = 64

// roundParams are the properties every participant of a round must agree
// on; they are fixed by the first HELLO that opens the round.
type roundParams struct {
	scheme uint8
	elems  int
	tagged bool
}

// participant is one admitted client of a round.
type participant struct {
	slot      int
	conn      net.Conn // read-deadline poked on abort to unblock its reader
	dataGot   int      // bytes accepted on the data lane (in-order)
	tagGot    int      // bytes accepted on the tag lane
	submitted bool
	evicted   bool // straggler cut at the deadline under a quorum policy

	// Protocol v2 identity (from HELLO / SURVIVORS), consulted when a
	// degraded round needs to name its survivor set.
	version  uint16
	rank     int      // key-schedule rank (-1 unknown)
	degraded bool     // FlagDegradedOK: can verify/open a survivor-set RESULT
	covers   []uint32 // explicit rank coverage (federation leaf); nil = {rank}
	coversOK bool     // covers declared complete for the sender's subtree

	// Degraded-mode staging (DegradedRounds only): SUBMIT chunks accumulate
	// privately per participant and fold into the shared accumulators only
	// once the last byte arrives, so a straggler killed mid-submit leaves
	// the survivors' fold untouched — the in-place fold cannot un-fold a
	// half-delivered lane (PROD noise factors are units, plaintexts need
	// not be).
	delivered bool // every lane byte arrived; staged lanes folded (or folding)
	lane      []byte
	tagLane   []byte
}

// roundState is one aggregation round: N participants, two lane
// accumulators, a deadline, and a single outcome — RESULT for everyone or
// a typed ABORT for everyone.
//
// A federated round (one whose gateway has an Uplink) adds a second stage:
// after the local fold completes, the cascade driver relays the partial
// aggregate upstream and the round's RESULT carries the globally reduced
// lanes instead of the local ones. The seal epoch of a federated round is
// imposed by the upstream tier (fixEpoch) rather than derived locally.
type roundState struct {
	id        uint64
	cohort    int
	params    roundParams
	group     int
	quorum    int  // 0 = no eviction policy; see Config.Quorum
	federated bool // RESULT comes from the uplink, not the local fold
	// degradedMode (Config.DegradedRounds): stage submissions per
	// participant and, at the deadline with quorum met, complete the round
	// over the delivered set instead of failing closed.
	degradedMode bool

	deadline time.Time
	timer    *time.Timer

	// Lane accumulators. Folding happens under per-stripe locks so chunks
	// from different regions proceed concurrently; all folds are commutative
	// and associative with identity 0, so arrival order is irrelevant.
	data    []byte
	tags    []byte
	stripes [foldStripes]sync.Mutex
	chunk   int

	mu       sync.Mutex
	parts    []*participant
	maxEpoch uint64 // highest key epoch any joiner advertised in HELLO
	finished int    // participants that submitted every lane byte
	tasks    int    // outstanding fold tasks
	done     bool
	abortErr *AbortError
	fullCh   chan struct{} // closed when the membership seals at group size
	doneCh   chan struct{}
	endOnce  sync.Once // server-side end-of-round bookkeeping

	// Degraded completion state. expire sets degrading once the deadline
	// passes with quorum delivered; finalization then waits until every
	// survivor's staged fold has retired (finished == survivors) before
	// sealing the survivor union and closing doneCh with a nil abortErr.
	degrading bool
	survivors int         // delivered participants at the degrade point
	evictErr  *AbortError // handed to the evicted (and to v1 survivors)
	survSet   []uint32    // survivor rank union; nil = complete aggregate
	resultSur []byte      // encoded RESULT survivor trailer (resultVectors)

	// Seal-epoch fix point. JOIN may only be written once the round's seal
	// epoch is known: immediately at fill for flat rounds, after the
	// upstream JOIN names it for federated ones.
	joinCh     chan struct{}
	epochSet   bool
	epochFixed uint64

	// RESULT prefix scratch, encoded exactly once per round (resultVectors):
	// the round id + data length words and the tag length word that frame
	// the shared lane accumulators during vectored fan-out.
	resultOnce sync.Once
	resultPre  [12]byte
	resultTagN [4]byte

	// Relay stage (federated rounds only).
	relayCh    chan struct{} // closed when the uplink exchange resolves
	relaySet   bool
	relayErr   *AbortError
	globalData []byte
	globalTags []byte
	globalSur  []uint32 // survivor union from the upstream RESULT (nil = complete)
}

// laneSize returns the byte length of one lane.
func (r *roundState) laneSize() int { return r.params.elems * 8 }

// stripe returns the lock guarding the accumulator region of a chunk that
// starts at byte offset off.
func (r *roundState) stripe(off int) *sync.Mutex {
	return &r.stripes[(off/r.chunk)%foldStripes]
}

// taskAdded registers an outstanding fold task. It returns false when the
// round already ended (late chunks are dropped, not folded).
func (r *roundState) taskAdded() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done {
		return false
	}
	r.tasks++
	return true
}

// taskDone retires a fold task, completing the round if it was the last
// obligation.
func (r *roundState) taskDone() {
	r.mu.Lock()
	r.tasks--
	r.maybeCompleteLocked()
	r.mu.Unlock()
}

// submitted marks a participant as fully delivered.
func (r *roundState) submitted(p *participant) {
	r.mu.Lock()
	if !p.submitted {
		p.submitted = true
		r.finished++
		r.maybeCompleteLocked()
	}
	r.mu.Unlock()
}

func (r *roundState) maybeCompleteLocked() {
	if r.done || r.tasks > 0 {
		return
	}
	if r.degrading {
		// Degraded finalization: every survivor's staged fold must retire.
		if r.finished < r.survivors {
			return
		}
	} else if r.finished < r.group || len(r.parts) < r.group {
		return
	}
	if r.degradedMode && !r.sealSurvivorsLocked() {
		// The delivered set cannot be named on the wire (unknown rank,
		// overlapping coverage): fail closed rather than mis-describe the
		// aggregate. Retryable — the next round re-forms without the dead.
		r.abortErr = &AbortError{Round: r.id, Code: AbortStraggler,
			Msg: fmt.Sprintf("round %d survivor set not expressible — retry", r.id)}
	}
	r.endLocked()
	close(r.doneCh)
}

// endLocked marks the round over and releases its deadline timer — both on
// completion and on every abort path, so a round that ends early never pins
// the timer (or, transitively, the participant connections its expire
// closure references) until the deadline would have fired.
func (r *roundState) endLocked() {
	r.done = true
	if r.timer != nil {
		r.timer.Stop()
		r.timer = nil
	}
}

// markDelivered transitions a degraded-mode participant to delivered once
// its final staged lane byte has arrived. It returns false when the round
// already ended or the participant was evicted at the deadline — the caller
// must then discard the staged lanes unfolded instead of touching the
// shared accumulators.
func (r *roundState) markDelivered(p *participant) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done || p.evicted {
		return false
	}
	p.delivered = true
	return true
}

// markLost records a degraded-mode participant whose connection died
// mid-submit, before the deadline. Fail-closed rounds abort on any post-JOIN
// loss (the telescoping noise needs every rank), but a degraded round can
// survive it: the lost participant is marked evicted with its stage
// discarded, and the deadline either completes the round over the delivered
// survivors or fails it by quorum. Returns false when the round is already
// resolving — the caller falls back to the ordinary outcome paths.
func (r *roundState) markLost(p *participant) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done || r.degrading || p.evicted {
		return false
	}
	p.evicted = true
	p.lane, p.tagLane = nil, nil
	return true
}

// sealSurvivorsLocked computes the round's survivor rank union at
// finalization. The round is partial when stragglers were evicted here or
// when any participant relayed coverage it declared incomplete (a leaf
// gateway whose own cohort degraded below us); a complete round leaves
// survSet nil so its RESULT stays bit-identical to protocol v1. Returns
// false when the surviving set cannot be expressed on the wire — a survivor
// of unknown rank, or two participants claiming the same rank.
func (r *roundState) sealSurvivorsLocked() bool {
	partial := false
	for _, p := range r.parts {
		if p.evicted {
			partial = true
		} else if p.covers != nil && !p.coversOK {
			partial = true
		}
	}
	if !partial {
		return true
	}
	seen := make(map[uint32]bool, len(r.parts))
	var union []uint32
	for _, p := range r.parts {
		if p.evicted {
			continue
		}
		ranks := p.covers
		if ranks == nil {
			if p.rank < 0 {
				return false
			}
			ranks = []uint32{uint32(p.rank)}
		}
		for _, rk := range ranks {
			if seen[rk] {
				return false
			}
			seen[rk] = true
			union = append(union, rk)
		}
	}
	if len(union) == 0 {
		return false
	}
	sort.Slice(union, func(i, j int) bool { return union[i] < union[j] })
	r.survSet = union
	return true
}

// coverage reports the rank set this round's fold covers and whether that
// set is complete — what a federation leaf forwards upstream so the root
// can name the global survivor union. Valid once the local outcome has
// resolved. ok=false means the coverage cannot be expressed (a participant
// of unknown rank, overlapping claims); the leaf then relays without a
// coverage declaration and the global round can only complete fully.
func (r *roundState) coverage() (ranks []uint32, complete bool, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.survSet != nil {
		return r.survSet, false, true
	}
	seen := make(map[uint32]bool, len(r.parts))
	for _, p := range r.parts {
		if p.evicted {
			return nil, false, false
		}
		rks := p.covers
		if rks == nil {
			if p.rank < 0 {
				return nil, true, false
			}
			rks = []uint32{uint32(p.rank)}
		}
		for _, rk := range rks {
			if seen[rk] {
				return nil, true, false
			}
			seen[rk] = true
			ranks = append(ranks, rk)
		}
	}
	sort.Slice(ranks, func(i, j int) bool { return ranks[i] < ranks[j] })
	return ranks, true, true
}

// abort fails the round with a typed error. The first abort wins; every
// participant's pending read is interrupted so its handler can deliver the
// ABORT frame promptly instead of blocking until its own deadline.
func (r *roundState) abort(code AbortCode, format string, args ...any) {
	r.mu.Lock()
	if r.done {
		r.mu.Unlock()
		return
	}
	r.endLocked()
	r.abortErr = &AbortError{Round: r.id, Code: code, Msg: fmt.Sprintf(format, args...)}
	parts := r.parts
	r.parts = nil // release participant references; the round is over
	r.mu.Unlock()
	// Poke every participant's blocked read *before* releasing the
	// outcome waiters: finishRound clears the poke once it wakes, so a
	// poke landing after the clear would kill a healthy connection's next
	// (post-round) read.
	past := time.Unix(1, 0)
	for _, p := range parts {
		p.conn.SetReadDeadline(past)
	}
	close(r.doneCh)
}

// outcome blocks until the round ends and returns its abort error (nil
// means the aggregate in r.data/r.tags is complete).
func (r *roundState) outcome() *AbortError {
	<-r.doneCh
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.abortErr
}

// aborted reports whether the round ended in failure.
func (r *roundState) aborted() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.done && r.abortErr != nil
}

// isEvicted reports whether a participant was cut as a straggler.
func (r *roundState) isEvicted(p *participant) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return p.evicted
}

// evictionErr returns the typed error handed to participants evicted from a
// degrading round (nil when no eviction happened).
func (r *roundState) evictionErr() *AbortError {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.evictErr
}

// slotOf reads a participant's slot under the round lock — pre-fill leaves
// renumber slots, so unsynchronized reads are only safe after fullCh.
func (r *roundState) slotOf(p *participant) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return p.slot
}

// sealEpoch is the key epoch this round's participants must seal at. For a
// flat round it is fixed at fill time as one past the highest epoch any
// participant advertised, so a rank that fell behind the group's key
// schedule catches up and nobody moves backwards. For a federated round it
// is whatever the upstream tier's JOIN named — the root of the federation
// applies the max+1 rule exactly once over every cohort's advertised
// maximum, so all clients of the whole tree seal at one epoch. Valid only
// after joinCh has closed.
func (r *roundState) sealEpoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epochFixed
}

// cohortEpoch is the highest key epoch this round's participants advertised
// — what a leaf gateway forwards upstream in its own HELLO, *without* the
// +1 a flat round would apply: the increment belongs to the federation's
// root alone, so the cascaded epoch equals the flat-round epoch for the
// same client set. Stable once the membership seals.
func (r *roundState) cohortEpoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.maxEpoch
}

// fixEpoch fixes the round's seal epoch and releases the JOIN writers. The
// first fix wins; flat rounds fix at fill, federated rounds when the
// upstream JOIN arrives.
func (r *roundState) fixEpoch(epoch uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fixEpochLocked(epoch)
}

func (r *roundState) fixEpochLocked(epoch uint64) {
	if r.epochSet {
		return
	}
	r.epochSet = true
	r.epochFixed = epoch
	close(r.joinCh)
}

// finishRelay resolves a federated round's second stage with the globally
// reduced lanes the upstream tier returned, plus the global survivor union
// from the upstream RESULT (nil when the global aggregate is complete).
func (r *roundState) finishRelay(data, tags []byte, surv []uint32) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.relaySet {
		return
	}
	r.relaySet = true
	r.globalData = data
	r.globalTags = tags
	r.globalSur = surv
	close(r.relayCh)
}

// failRelay resolves a federated round's second stage with a typed failure;
// every participant receives it as its round outcome.
func (r *roundState) failRelay(aerr *AbortError) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.relaySet {
		return
	}
	r.relaySet = true
	r.relayErr = aerr
	close(r.relayCh)
}

// relayOutcome blocks until the relay stage resolves and returns its
// failure (nil means resultLanes now carries the global aggregate).
func (r *roundState) relayOutcome() *AbortError {
	<-r.relayCh
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.relayErr
}

// resultLanes returns the lanes RESULT should carry: the globally reduced
// ones for a federated round, the local fold otherwise.
func (r *roundState) resultLanes() (data, tags []byte) {
	if !r.federated {
		return r.data, r.tags
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.globalData, r.globalTags
}

// resultSurvivors returns the survivor rank union the RESULT must declare:
// the upstream tier's global union for a federated round (it strictly
// contains the local one), the locally sealed set otherwise. nil means the
// aggregate is complete.
func (r *roundState) resultSurvivors() []uint32 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.federated {
		return r.globalSur
	}
	return r.survSet
}

// resultVectors returns the five slices whose concatenation is the RESULT
// payload: the 12-byte round-id/data-length prefix, the data lane, the
// 4-byte tag-length word, the tag lane, and — degraded rounds only — the
// survivor-set trailer (nil for a complete round, keeping the payload
// bit-identical to protocol v1). The prefixes and trailer are encoded
// exactly once per round regardless of participant count; the lanes are the
// round's accumulators themselves, referenced zero-copy. Callable only
// after the round's outcome (and relay, if federated) has resolved — from
// then on the lanes are immutable and every fan-out writer may read them
// concurrently, but nobody may write them (see DESIGN.md, "Zero-copy wire
// path").
func (r *roundState) resultVectors() (pre, data, tagN, tags, surv []byte) {
	data, tags = r.resultLanes()
	r.resultOnce.Do(func() {
		binary.LittleEndian.PutUint64(r.resultPre[0:8], r.id)
		binary.LittleEndian.PutUint32(r.resultPre[8:12], uint32(len(data)))
		binary.LittleEndian.PutUint32(r.resultTagN[:], uint32(len(tags)))
		if s := r.resultSurvivors(); s != nil {
			r.resultSur = encodeSurvivorList(s)
		}
	})
	return r.resultPre[:], data, r.resultTagN[:], tags, r.resultSur
}

// leave removes a participant from a round whose membership is still open —
// the pre-fill death path. Nothing has been sealed against this round yet
// (clients seal only after JOIN, which is only sent once the round fills),
// so the slot is simply freed and the remaining participants renumbered.
// It reports whether the participant left and whether the round is now
// empty; both are false once the round has filled or ended, where a loss
// must instead fail the whole round.
func (r *roundState) leave(p *participant) (left, empty bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done || len(r.parts) == r.group {
		return false, false
	}
	for i, q := range r.parts {
		if q == p {
			r.parts = append(r.parts[:i], r.parts[i+1:]...)
			for j, rest := range r.parts {
				rest.slot = j
			}
			return true, len(r.parts) == 0
		}
	}
	return false, false
}

// expire handles the round deadline. HEAR's telescoping noise needs every
// participant's submission for a *silently complete* aggregate, so by
// default the round fails closed. A quorum policy changes the failure's
// shape: when at least quorum participants finished, the stragglers are
// marked evicted (their handlers drop the connection after the ABORT) and
// everyone gets the retryable AbortStraggler instead of AbortDeadline, so
// live clients re-round immediately against a gateway that has shed the
// dead weight.
//
// DegradedRounds goes one step further: if every delivered participant can
// verify and open a survivor-set RESULT (shared-group keys, known rank or
// coverage), the round *completes* over the delivered set — the evicted
// stragglers' staged lanes are discarded unfolded, the RESULT names the
// survivor union explicitly, and clients cancel exactly the missing ranks'
// noise. When the delivered set is not degradable (a v1 client among the
// survivors, unknown ranks), the round falls back to the evict-and-retry
// failure above rather than shipping an unopenable aggregate.
func (r *roundState) expire(timeout time.Duration) {
	r.mu.Lock()
	if r.done || r.degrading {
		r.mu.Unlock()
		return
	}
	if r.degradedMode && r.quorum > 0 && len(r.parts) == r.group {
		delivered := 0
		degradable := true
		for _, p := range r.parts {
			if !p.delivered {
				continue
			}
			delivered++
			if !p.degraded || (p.covers == nil && p.rank < 0) {
				degradable = false
			}
		}
		if delivered >= r.quorum && degradable {
			r.degrading = true
			r.survivors = delivered
			evicted := 0
			past := time.Unix(1, 0)
			for _, p := range r.parts {
				if p.delivered {
					continue
				}
				p.evicted = true
				p.lane, p.tagLane = nil, nil // discard the partial stage
				evicted++
				// Unblock the straggler's pending read so its handler
				// delivers the eviction ABORT promptly.
				p.conn.SetReadDeadline(past)
			}
			r.evictErr = &AbortError{Round: r.id, Code: AbortStraggler,
				Msg: fmt.Sprintf("deadline (%s) expired with %d/%d delivered; round degraded, %d stragglers evicted (quorum %d) — retry",
					timeout, delivered, r.group, evicted, r.quorum)}
			// Finalize now if every survivor's staged fold already retired;
			// otherwise the last submitted() call completes the round.
			r.maybeCompleteLocked()
			r.mu.Unlock()
			return
		}
	}
	if r.quorum > 0 && r.finished >= r.quorum && len(r.parts) > 0 {
		r.endLocked()
		evicted := 0
		for _, p := range r.parts {
			if !p.submitted {
				p.evicted = true
				evicted++
			}
		}
		r.abortErr = &AbortError{Round: r.id, Code: AbortStraggler,
			Msg: fmt.Sprintf("deadline (%s) expired with %d/%d finished; %d stragglers evicted (quorum %d) — retry",
				timeout, r.finished, r.group, evicted, r.quorum)}
		parts := r.parts
		r.parts = nil // release participant references; the round is over
		r.mu.Unlock()
		// Poke before close(doneCh), as in abort: the outcome waiters
		// clear the poke on wake.
		past := time.Unix(1, 0)
		for _, p := range parts {
			p.conn.SetReadDeadline(past)
		}
		close(r.doneCh)
		return
	}
	r.mu.Unlock()
	r.abort(AbortDeadline, "round %d deadline (%s) expired before all %d participants finished",
		r.id, timeout, r.group)
}

// roundManager shards arriving HELLOs into per-cohort rounds of exactly
// group participants: each cohort fills its own rounds independently, so
// one gateway multiplexes many concurrent rounds — the sharding a
// federation's leaf tier needs to keep millions of clients off a single
// round queue. Rounds are keyed by (round ID, cohort): IDs are globally
// unique across cohorts, and each cohort holds at most one filling round.
type roundManager struct {
	group     int
	quorum    int
	timeout   time.Duration
	chunk     int
	federated bool // rounds defer their seal epoch to the uplink
	degraded  bool // rounds complete over survivors at the deadline (Config.DegradedRounds)

	mu     sync.Mutex
	nextID uint64
	open   map[int]*roundState // cohort → collecting round; absent when none or sealed
}

// partMeta is the protocol identity a HELLO carries into join: the wire
// version the client spoke, its key-schedule rank (-1 unknown), and whether
// it declared itself able to verify and open a survivor-set RESULT.
type partMeta struct {
	version    uint16
	rank       int
	degradedOK bool
}

// join admits a client into its cohort's open round (creating one if
// needed) and returns its participant record, plus whether this join
// created the round. A HELLO whose parameters disagree with the cohort's
// open round is refused without poisoning that round. epoch is the
// joiner's advertised key epoch; the round tracks the max so JOIN can name
// the group's agreed seal epoch.
func (m *roundManager) join(conn net.Conn, params roundParams, epoch uint64, cohort int, pm partMeta) (*roundState, *participant, bool, *AbortError) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.open == nil {
		m.open = make(map[int]*roundState)
	}
	r := m.open[cohort]
	created := false
	if r != nil && (r.params != params || r.aborted()) {
		if r.aborted() {
			// The open round died (deadline) before filling; start fresh.
			delete(m.open, cohort)
			r = nil
		} else {
			return nil, nil, false, &AbortError{Round: r.id, Code: AbortMismatch,
				Msg: fmt.Sprintf("open round %d has %d-element tagged=%v frames", r.id, r.params.elems, r.params.tagged)}
		}
	}
	if r == nil {
		r = &roundState{
			id:           m.nextID,
			cohort:       cohort,
			params:       params,
			group:        m.group,
			quorum:       m.quorum,
			federated:    m.federated,
			degradedMode: m.degraded,
			deadline:     time.Now().Add(m.timeout),
			data:         make([]byte, params.elems*8),
			chunk:        m.chunk,
			fullCh:       make(chan struct{}),
			doneCh:       make(chan struct{}),
			joinCh:       make(chan struct{}),
			relayCh:      make(chan struct{}),
		}
		m.nextID++
		created = true
		identitySeed(params.scheme, r.data)
		if params.tagged {
			r.tags = make([]byte, params.elems*8)
		}
		timeout := m.timeout
		r.timer = time.AfterFunc(timeout, func() { r.expire(timeout) })
		m.open[cohort] = r
	}
	p := &participant{conn: conn, version: pm.version, rank: pm.rank, degraded: pm.degradedOK}
	r.mu.Lock()
	p.slot = len(r.parts) // assigned under the lock: pre-fill leaves renumber
	r.parts = append(r.parts, p)
	if epoch > r.maxEpoch {
		r.maxEpoch = epoch
	}
	full := len(r.parts) == r.group
	if full {
		close(r.fullCh)
		if !m.federated {
			// Flat rounds know their seal epoch the moment the membership
			// seals; federated rounds wait for the upstream JOIN to name it.
			r.fixEpochLocked(r.maxEpoch + 1)
		}
	}
	r.mu.Unlock()
	if full {
		delete(m.open, cohort) // sealed: it no longer accepts joiners
	}
	return r, p, created, nil
}
