package aggsvc

import (
	"encoding/binary"
	"errors"
	"net"
	"sync"
	"testing"
	"time"
)

// plainSealer is a key-free Sealer for transport tests: lanes are plaintext
// LE int64, so the gateway's SumUint64 fold produces the plain vector sum.
// Crypto correctness belongs to gateway_test.go / the e2e test; these tests
// exercise framing, rounds, and failure paths.
type plainSealer struct{}

func (plainSealer) Seal(vals []int64, _ uint64) (cipher, tags []byte, err error) {
	b := make([]byte, len(vals)*8)
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[i*8:], uint64(v))
	}
	return b, nil, nil
}

func (plainSealer) Verify(_, _ []byte) error { return nil }

func (plainSealer) Tagged() bool { return false }

func (plainSealer) Epoch() uint64 { return 0 }

func (plainSealer) Open(reduced []byte, out []int64) error {
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(reduced[i*8:]))
	}
	return nil
}

// startPipeServer runs a gateway on an in-process pipe listener and tears
// it down with the test.
func startPipeServer(t *testing.T, cfg Config) (*Server, *PipeListener) {
	t.Helper()
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l := NewPipeListener()
	go s.Serve(l)
	t.Cleanup(func() { s.Close() })
	return s, l
}

func dialPipe(t *testing.T, l *PipeListener, opt ClientOptions) *Client {
	t.Helper()
	conn, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	if opt.Timeout == 0 {
		opt.Timeout = 10 * time.Second // net.Pipe never times out on its own
	}
	return NewClient(conn, plainSealer{}, opt)
}

func TestPipeRoundTrip(t *testing.T) {
	const group, elems = 3, 100
	s, l := startPipeServer(t, Config{Group: group, ChunkBytes: 128})
	want := make([]int64, elems)
	inputs := make([][]int64, group)
	for i := range inputs {
		inputs[i] = make([]int64, elems)
		for j := range inputs[i] {
			inputs[i][j] = int64(i*10000 + j - 5000)
			want[j] += inputs[i][j]
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, group)
	outs := make([][]int64, group)
	for i := 0; i < group; i++ {
		wg.Add(1)
		c := dialPipe(t, l, ClientOptions{})
		go func(i int) {
			defer wg.Done()
			outs[i] = make([]int64, elems)
			_, errs[i] = c.Aggregate(inputs[i], outs[i])
		}(i)
	}
	wg.Wait()
	for i := 0; i < group; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		for j := range want {
			if outs[i][j] != want[j] {
				t.Fatalf("client %d elem %d = %d, want %d", i, j, outs[i][j], want[j])
			}
		}
	}
	if got := s.roundsCompleted.Load(); got != 1 {
		t.Errorf("rounds_completed = %d, want 1", got)
	}
}

// Two rounds of two clients each run concurrently: the first pair's round
// seals when full, so the second pair lands in a fresh round while the
// first may still be folding.
func TestConcurrentRounds(t *testing.T) {
	const group, elems, pairs = 2, 64, 2
	s, l := startPipeServer(t, Config{Group: group, ChunkBytes: 64})
	in := make([]int64, elems)
	for j := range in {
		in[j] = int64(j + 1)
	}
	var wg sync.WaitGroup
	errs := make([]error, group*pairs)
	for i := 0; i < group*pairs; i++ {
		wg.Add(1)
		c := dialPipe(t, l, ClientOptions{})
		go func(i int) {
			defer wg.Done()
			out := make([]int64, elems)
			_, err := c.Aggregate(in, out)
			if err == nil {
				for j := range out {
					if out[j] != int64(group)*in[j] {
						errs[i] = &AbortError{Msg: "bad aggregate"}
						return
					}
				}
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	if got := s.roundsCompleted.Load(); got != pairs {
		t.Errorf("rounds_completed = %d, want %d", got, pairs)
	}
}

// The same connection runs several rounds back to back (re-HELLO).
func TestSequentialRoundsOneConn(t *testing.T) {
	const rounds = 3
	_, l := startPipeServer(t, Config{Group: 1})
	c := dialPipe(t, l, ClientOptions{})
	for r := 0; r < rounds; r++ {
		in := []int64{int64(r), -int64(r)}
		out := make([]int64, 2)
		info, err := c.Aggregate(in, out)
		if err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
		if info.ID != uint64(r) {
			t.Errorf("round id %d, want %d", info.ID, r)
		}
		if out[0] != in[0] || out[1] != in[1] {
			t.Errorf("round %d aggregate %v, want %v", r, out, in)
		}
	}
}

// A participant vanishing mid-round must abort the round for the survivor
// with a typed participant-lost error — never a partial aggregate.
func TestClientDropMidSubmitAbortsRound(t *testing.T) {
	const elems = 32
	s, l := startPipeServer(t, Config{Group: 2, ChunkBytes: 64})

	// The dropper speaks raw frames: admitted, submits one 64 B chunk of its
	// 256 B lane, then drops the connection.
	dconn, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	hello := encodeHello(helloFrame{Version: ProtocolVersion, Scheme: SchemeInt64Sum, Elems: elems})
	if err := writeFrame(dconn, FrameHello, hello); err != nil {
		t.Fatal(err)
	}

	// The survivor runs the full client; its arrival fills the round, so
	// the dropper's JOIN arrives only now.
	surv := dialPipe(t, l, ClientOptions{})
	done := make(chan error, 1)
	go func() {
		out := make([]int64, elems)
		_, err := surv.Aggregate(make([]int64, elems), out)
		done <- err
	}()
	ft, p, err := readFrame(dconn, DefaultMaxFrameBytes)
	if err != nil || ft != FrameJoin {
		t.Fatalf("dropper admission: %s %v", ft, err)
	}
	join, err := decodeJoin(p)
	if err != nil {
		t.Fatal(err)
	}
	chunk := make([]byte, 64)
	hdr := encodeSubmitHeader(submitHeader{Round: join.Round, Lane: LaneData, Offset: 0})
	if err := writeFrame(dconn, FrameSubmit, hdr, chunk); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let the survivor finish submitting
	dconn.Close()

	err = <-done
	var aerr *AbortError
	if !errors.As(err, &aerr) {
		t.Fatalf("survivor got %v, want *AbortError", err)
	}
	if aerr.Code != AbortPeerLost {
		t.Errorf("abort code %s, want %s", aerr.Code, AbortPeerLost)
	}
	if got := s.roundsAborted.Load(); got != 1 {
		t.Errorf("rounds_aborted = %d, want 1", got)
	}
}

// A round that never fills aborts at its deadline; the waiting participant
// receives the deadline abort rather than hanging.
func TestDeadlineExpiry(t *testing.T) {
	_, l := startPipeServer(t, Config{Group: 2, RoundTimeout: 50 * time.Millisecond})
	c := dialPipe(t, l, ClientOptions{Timeout: 5 * time.Second})
	out := make([]int64, 4)
	_, err := c.Aggregate([]int64{1, 2, 3, 4}, out)
	var aerr *AbortError
	if !errors.As(err, &aerr) {
		t.Fatalf("got %v, want *AbortError", err)
	}
	if aerr.Code != AbortDeadline {
		t.Errorf("abort code %s, want %s", aerr.Code, AbortDeadline)
	}
}

// A dead open round (deadline expired before filling) must not wedge the
// gateway: the next HELLO starts a fresh round.
func TestRoundRecoversAfterDeadline(t *testing.T) {
	// The timeout bounds the recovery round too; keep enough margin that a
	// loaded test machine can fill it (the lone-client abort just waits
	// that much longer).
	_, l := startPipeServer(t, Config{Group: 2, RoundTimeout: 250 * time.Millisecond})
	c := dialPipe(t, l, ClientOptions{Timeout: 5 * time.Second})
	out := make([]int64, 1)
	if _, err := c.Aggregate([]int64{7}, out); err == nil {
		t.Fatal("lone client completed a group-2 round")
	}

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		wg.Add(1)
		nc := dialPipe(t, l, ClientOptions{})
		go func(i int) {
			defer wg.Done()
			o := make([]int64, 1)
			_, errs[i] = nc.Aggregate([]int64{5}, o)
			if errs[i] == nil && o[0] != 10 {
				errs[i] = errors.New("bad aggregate")
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("post-recovery client %d: %v", i, err)
		}
	}
}

func TestWrongVersionHello(t *testing.T) {
	startVersioned := func() net.Conn {
		_, l := startPipeServer(t, Config{Group: 1})
		conn, err := l.Dial()
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { conn.Close() })
		return conn
	}
	conn := startVersioned()
	hello := encodeHello(helloFrame{Version: 99, Scheme: SchemeInt64Sum, Elems: 8})
	if err := writeFrame(conn, FrameHello, hello); err != nil {
		t.Fatal(err)
	}
	ft, p, err := readFrame(conn, DefaultMaxFrameBytes)
	if err != nil {
		t.Fatal(err)
	}
	if ft != FrameAbort {
		t.Fatalf("got %s, want ABORT", ft)
	}
	aerr, err := decodeAbort(p)
	if err != nil {
		t.Fatal(err)
	}
	if aerr.Code != AbortVersion {
		t.Errorf("abort code %s, want %s", aerr.Code, AbortVersion)
	}
}

// A frame declaring a payload beyond the limit is refused before any
// payload byte is read.
func TestOversizedFrameRejected(t *testing.T) {
	s, l := startPipeServer(t, Config{Group: 1, MaxFrameBytes: 1 << 16, ChunkBytes: 1 << 12})
	conn, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var hdr [frameHeaderBytes]byte
	binary.LittleEndian.PutUint32(hdr[:4], 1<<20)
	hdr[4] = byte(FrameSubmit)
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	ft, p, err := readFrame(conn, DefaultMaxFrameBytes)
	if err != nil {
		t.Fatal(err)
	}
	if ft != FrameAbort {
		t.Fatalf("got %s, want ABORT", ft)
	}
	aerr, err := decodeAbort(p)
	if err != nil {
		t.Fatal(err)
	}
	if aerr.Code != AbortOversize {
		t.Errorf("abort code %s, want %s", aerr.Code, AbortOversize)
	}
	if got := s.framesRejected.Load(); got != 1 {
		t.Errorf("frames_rejected = %d, want 1", got)
	}
}

// A HELLO disagreeing with the open round's geometry is refused without
// poisoning that round.
func TestMismatchedHelloRefused(t *testing.T) {
	_, l := startPipeServer(t, Config{Group: 2})
	first := dialPipe(t, l, ClientOptions{Timeout: 5 * time.Second})
	firstDone := make(chan error, 1)
	go func() {
		out := make([]int64, 8)
		_, err := first.Aggregate(make([]int64, 8), out)
		firstDone <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the first client open the round

	conn, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hello := encodeHello(helloFrame{Version: ProtocolVersion, Scheme: SchemeInt64Sum, Elems: 16})
	if err := writeFrame(conn, FrameHello, hello); err != nil {
		t.Fatal(err)
	}
	ft, p, err := readFrame(conn, DefaultMaxFrameBytes)
	if err != nil {
		t.Fatal(err)
	}
	if ft != FrameAbort {
		t.Fatalf("got %s, want ABORT", ft)
	}
	aerr, _ := decodeAbort(p)
	if aerr.Code != AbortMismatch {
		t.Errorf("abort code %s, want %s", aerr.Code, AbortMismatch)
	}

	// The open round is intact: a conforming second client completes it.
	second := dialPipe(t, l, ClientOptions{})
	out := make([]int64, 8)
	if _, err := second.Aggregate(make([]int64, 8), out); err != nil {
		t.Fatalf("conforming client after mismatch: %v", err)
	}
	if err := <-firstDone; err != nil {
		t.Fatalf("first client: %v", err)
	}
}

// Chunks must arrive in order per lane; an out-of-order offset is a
// protocol violation that fails the round closed.
func TestOutOfOrderChunkAborts(t *testing.T) {
	_, l := startPipeServer(t, Config{Group: 1, ChunkBytes: 64})
	conn, err := l.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hello := encodeHello(helloFrame{Version: ProtocolVersion, Scheme: SchemeInt64Sum, Elems: 32})
	if err := writeFrame(conn, FrameHello, hello); err != nil {
		t.Fatal(err)
	}
	ft, p, err := readFrame(conn, DefaultMaxFrameBytes)
	if err != nil || ft != FrameJoin {
		t.Fatalf("admission: %s %v", ft, err)
	}
	join, _ := decodeJoin(p)
	hdr := encodeSubmitHeader(submitHeader{Round: join.Round, Lane: LaneData, Offset: 128})
	if err := writeFrame(conn, FrameSubmit, hdr, make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	ft, p, err = readFrame(conn, DefaultMaxFrameBytes)
	if err != nil {
		t.Fatal(err)
	}
	if ft != FrameAbort {
		t.Fatalf("got %s, want ABORT", ft)
	}
	aerr, _ := decodeAbort(p)
	if aerr.Code != AbortProtocol {
		t.Errorf("abort code %s, want %s", aerr.Code, AbortProtocol)
	}
}

func TestServerStats(t *testing.T) {
	_, l := startPipeServer(t, Config{Group: 1})
	c := dialPipe(t, l, ClientOptions{})
	out := make([]int64, 16)
	if _, err := c.Aggregate(make([]int64, 16), out); err != nil {
		t.Fatal(err)
	}
	stats, err := c.ServerStats()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"rounds_completed", "clients_joined", "chunks_folded", "bytes_folded", "pool_blocks"} {
		if _, ok := stats[k]; !ok {
			t.Errorf("stats missing %q", k)
		}
	}
	if stats["rounds_completed"] != 1 {
		t.Errorf("rounds_completed = %d, want 1", stats["rounds_completed"])
	}
	if stats["bytes_folded"] != 16*8 {
		t.Errorf("bytes_folded = %d, want %d", stats["bytes_folded"], 16*8)
	}
	if _, ok := stats["phase_ns_"+PhaseFold]; !ok {
		t.Errorf("stats missing phase timing for %q", PhaseFold)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewServer(Config{Group: 0}); err == nil {
		t.Error("group 0 accepted")
	}
	if _, err := NewServer(Config{Group: 1, ChunkBytes: 1 << 20, MaxFrameBytes: 1 << 10}); err == nil {
		t.Error("chunk larger than frame limit accepted")
	}
}

func TestPipeListenerClose(t *testing.T) {
	l := NewPipeListener()
	l.Close()
	if _, err := l.Accept(); !errors.Is(err, net.ErrClosed) {
		t.Errorf("Accept after Close: %v, want net.ErrClosed", err)
	}
	if _, err := l.Dial(); !errors.Is(err, net.ErrClosed) {
		t.Errorf("Dial after Close: %v, want net.ErrClosed", err)
	}
	l.Close() // idempotent
}
