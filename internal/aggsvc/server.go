package aggsvc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hear/internal/core/fold"
	enginepool "hear/internal/engine/pool"
	"hear/internal/inc"
	"hear/internal/mempool"
	"hear/internal/metrics"
	"hear/internal/trace"
)

// laneFolds maps a HELLO scheme id onto the keyless kernels the gateway
// executes. The folds are typed as internal/inc's Fold: the gateway is that
// package's switch contract served over TCP — opaque lanes in, the same
// lanes folded out, no keys anywhere. A nil tag fold means the scheme
// cannot carry a HoMAC lane (tag aggregation is linear; only SUM rides it)
// and tagged HELLOs are refused at admission.
var laneFolds = map[uint8]struct{ data, tag inc.Fold }{
	SchemeInt64Sum:  {data: fold.SumUint64, tag: fold.SumMod61},
	SchemeInt64Prod: {data: inc.Fold(fold.Prod(64)), tag: nil},
	SchemeInt64Xor:  {data: fold.Xor, tag: nil},
}

// identitySeed seeds a fresh accumulator lane with its fold's identity
// element. A zeroed buffer already is the identity for SUM and XOR; PROD
// folds multiplicatively, so its lanes start at the word 1 — folding into
// zeros would annihilate every submission.
func identitySeed(scheme uint8, lane []byte) {
	if scheme != SchemeInt64Prod {
		return
	}
	for off := 0; off+8 <= len(lane); off += 8 {
		binary.LittleEndian.PutUint64(lane[off:], 1)
	}
}

// Server phase names reported through STATS (internal/trace timings).
const (
	PhaseRecv  = "recv"  // reading SUBMIT payloads off connections
	PhaseFold  = "fold"  // worker-pool lane folding
	PhaseWait  = "wait"  // handlers parked until their round resolves
	PhaseSend  = "send"  // writing RESULT frames
	PhaseRelay = "relay" // federated: upstream SUBMIT→RESULT exchange
)

// Defaults for Config zero values.
const (
	DefaultRoundTimeout = 10 * time.Second
	DefaultWriteTimeout = 30 * time.Second
	DefaultChunkBytes   = 64 << 10
)

// ErrServerClosed is returned by Serve after Close.
var ErrServerClosed = errors.New("aggsvc: server closed")

// Config configures a gateway server.
type Config struct {
	// Group is the number of clients aggregated per round (required).
	Group int
	// Elems, when non-zero, pins the vector length; zero accepts any
	// length, fixed per round by the first HELLO.
	Elems int
	// RoundTimeout bounds a round from its first JOIN to its last SUBMIT
	// byte; stragglers abort the round for everyone (default 10s).
	RoundTimeout time.Duration
	// Quorum, when non-zero, changes what the deadline does: if at least
	// Quorum participants finished when it expires, the stragglers are
	// evicted (connections dropped) and every participant receives the
	// retryable AbortStraggler instead of AbortDeadline. The round still
	// fails closed — HEAR's telescoping noise makes a partial aggregate
	// meaningless — but live clients get a fast, typed signal to re-round
	// without the dead weight. Must not exceed Group.
	Quorum int
	// DegradedRounds changes what a met quorum means at the deadline: the
	// round *completes* over the delivered participants instead of failing
	// closed. Submissions are staged per participant (a straggler killed
	// mid-submit never touches the accumulator), the evicted stragglers'
	// lanes are discarded, and the RESULT names the survivor rank set
	// explicitly so clients cancel exactly the missing ranks' noise
	// (protocol v2, shared-group keys). Survivors that cannot open a
	// partial aggregate — v1 clients, or v2 clients without rank-key
	// derivation — receive the retryable AbortStraggler instead of an
	// unopenable RESULT; if any such client is *among* the survivors the
	// whole round falls back to evict-and-retry, since a degraded RESULT
	// would strand it. Requires Quorum ≥ 1. The default (false) preserves
	// fail-closed semantics exactly.
	DegradedRounds bool
	// WriteTimeout bounds any single outgoing frame so one stuck client
	// cannot wedge a handler (default 30s).
	WriteTimeout time.Duration
	// MaxFrameBytes rejects larger frames before reading their payload
	// (default 16 MiB). It must accommodate the RESULT frame.
	MaxFrameBytes int
	// ChunkBytes is the SUBMIT granularity, advertised to clients in JOIN
	// and the unit of fold parallelism (default 64 KiB).
	ChunkBytes int
	// Workers sizes the fold worker pool — the same key-blind
	// run-to-completion pool (internal/engine/pool) that backs the rank
	// side's multicore cipher engine (default GOMAXPROCS).
	Workers int
	// PoolBlocks caps the pooled SUBMIT buffers (default 4×Workers); an
	// exhausted pool throttles intake instead of growing.
	PoolBlocks int
	// Cohorts shards the round manager: arriving clients are partitioned
	// into this many cohorts, and each cohort fills its own rounds of
	// Group participants independently (default 1 — the flat gateway).
	// With an Uplink configured, each cohort's partial fold is relayed
	// upstream as one federated client.
	Cohorts int
	// CohortStatic pins client source hosts (the host part of the remote
	// address) to cohorts, overriding the hash assignment. Values must lie
	// in [0, Cohorts).
	CohortStatic map[string]int
	// CohortBy, when non-nil, replaces the assignment policy entirely
	// (tests and custom topologies); it must return a value in
	// [0, Cohorts).
	CohortBy func(remote net.Addr) int
	// Uplink, when non-nil, turns this gateway into a leaf (or middle)
	// tier of a federation: a filled round negotiates its seal epoch
	// through the uplink before JOIN, folds its cohort locally, relays the
	// partial aggregate upstream, and fans the global RESULT back down.
	Uplink UplinkDialer
	// Logf, when non-nil, receives one line per round outcome and
	// connection error.
	Logf func(format string, args ...any)
	// Metrics, when non-nil, publishes the gateway's counters into the
	// registry under hear_gateway_*: the StatsMap totals (rounds, clients,
	// traffic, pool behavior) plus per-phase fold timings. The registry
	// reads the server's own atomics at snapshot time, so the numbers are
	// identical to a STATS frame taken at the same moment.
	Metrics *metrics.Registry
}

func (c *Config) fill() error {
	if c.Group < 1 {
		return fmt.Errorf("aggsvc: group size %d < 1", c.Group)
	}
	if c.Elems < 0 {
		return fmt.Errorf("aggsvc: negative vector length %d", c.Elems)
	}
	if c.Quorum < 0 || c.Quorum > c.Group {
		return fmt.Errorf("aggsvc: quorum %d outside [0, group %d]", c.Quorum, c.Group)
	}
	if c.DegradedRounds && c.Quorum < 1 {
		return fmt.Errorf("aggsvc: DegradedRounds requires a quorum in [1, group]; got %d", c.Quorum)
	}
	if c.RoundTimeout <= 0 {
		c.RoundTimeout = DefaultRoundTimeout
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = DefaultWriteTimeout
	}
	if c.MaxFrameBytes <= 0 {
		c.MaxFrameBytes = DefaultMaxFrameBytes
	}
	if c.ChunkBytes <= 0 {
		c.ChunkBytes = DefaultChunkBytes
	}
	if c.ChunkBytes+submitHeaderBytes+frameHeaderBytes > c.MaxFrameBytes {
		return fmt.Errorf("aggsvc: chunk %d B does not fit the %d B frame limit", c.ChunkBytes, c.MaxFrameBytes)
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.PoolBlocks <= 0 {
		c.PoolBlocks = 4 * c.Workers
	}
	if c.Cohorts == 0 {
		c.Cohorts = 1
	}
	if c.Cohorts < 1 {
		return fmt.Errorf("aggsvc: cohort count %d < 1", c.Cohorts)
	}
	for host, idx := range c.CohortStatic {
		if idx < 0 || idx >= c.Cohorts {
			return fmt.Errorf("aggsvc: static cohort %d for %q outside [0, %d)", idx, host, c.Cohorts)
		}
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return nil
}

// Pooled SUBMIT blocks are laid out so the chunk bytes land 8-byte
// aligned: 3 pad bytes, the 13-byte SUBMIT header, then the chunk at byte
// 16. Go heap slices are at least 8-byte aligned at their base, so the
// 64-bit fold kernels run on aligned words, folding each chunk in place
// where the read landed — no staging copy between the wire and the
// accumulator pass.
const (
	submitPad  = 3
	submitBase = submitPad + submitHeaderBytes // 16: chunk bytes start here
)

// foldTask is one pooled SUBMIT chunk awaiting aggregation. Tasks recycle
// through foldTasks and dispatch via the worker pool's SubmitTask, so the
// per-chunk fold path allocates nothing at steady state.
type foldTask struct {
	s     *Server
	r     *roundState
	lane  uint8
	off   int
	n     int
	block []byte // pooled; chunk bytes at [submitBase, submitBase+n)
	fold  inc.Fold
}

var foldTasks = sync.Pool{New: func() any { return new(foldTask) }}

// Run executes the fold on a pool worker and recycles the task.
func (t *foldTask) Run() {
	t.s.foldChunk(t)
	t.release()
}

// release drops the task's references and returns it to the pool.
func (t *foldTask) release() {
	*t = foldTask{}
	foldTasks.Put(t)
}

// Server is the aggregation gateway daemon. It is safe for concurrent use;
// one Server may serve several listeners.
type Server struct {
	cfg    Config
	rm     roundManager
	pool   *mempool.Pool
	fold   *enginepool.Pool
	phases *trace.SyncBreakdown

	closed    chan struct{}
	closeOnce sync.Once
	handlers  sync.WaitGroup
	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}

	connsAccepted   atomic.Uint64
	clientsJoined   atomic.Uint64
	roundsStarted   atomic.Uint64
	roundsCompleted atomic.Uint64
	roundsAborted   atomic.Uint64
	clientsEvicted  atomic.Uint64
	chunksFolded    atomic.Uint64
	bytesFolded     atomic.Uint64
	statsServed     atomic.Uint64
	framesRejected  atomic.Uint64
	activeRounds    atomic.Int64
	bytesIn         atomic.Uint64
	bytesOut        atomic.Uint64
	roundsRelayed   atomic.Uint64
	relayFailures   atomic.Uint64
	roundsDegraded  atomic.Uint64
}

// NewServer validates cfg, starts the fold worker pool, and returns a
// server ready for Serve.
func NewServer(cfg Config) (*Server, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	pool, err := mempool.New(cfg.ChunkBytes+submitBase, cfg.PoolBlocks, cfg.PoolBlocks)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg: cfg,
		rm: roundManager{group: cfg.Group, quorum: cfg.Quorum, timeout: cfg.RoundTimeout,
			chunk: cfg.ChunkBytes, federated: cfg.Uplink != nil, degraded: cfg.DegradedRounds},
		pool:      pool,
		fold:      enginepool.New(cfg.Workers),
		phases:    trace.NewSyncBreakdown(),
		closed:    make(chan struct{}),
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
	}
	s.registerMetrics(cfg.Metrics)
	return s, nil
}

// registerMetrics publishes the server's accounting as a snapshot-time
// source: counters keep their StatsMap names under a hear_gateway_ prefix
// with a _total suffix, point-in-time values become gauges, and the fold
// phases export as seconds/ops pairs keyed by phase.
func (s *Server) registerMetrics(r *metrics.Registry) {
	if r == nil {
		return
	}
	gauges := map[string]bool{"rounds_active": true, "pool_blocks": true, "cohorts": true}
	r.RegisterSource(func(emit func(metrics.Sample)) {
		for k, v := range s.StatsMap() {
			if strings.HasPrefix(k, "phase_") {
				continue // exported structured below, not as raw ns blobs
			}
			if gauges[k] {
				emit(metrics.Sample{Name: "hear_gateway_" + k,
					Kind: metrics.KindGauge, Value: float64(v)})
				continue
			}
			emit(metrics.Sample{Name: "hear_gateway_" + k + "_total",
				Kind: metrics.KindCounter, Value: float64(v)})
		}
		snap := s.phases.Snapshot()
		for _, ph := range snap.Phases() {
			labels := metrics.Labels{"phase": ph}
			emit(metrics.Sample{Name: "hear_gateway_phase_seconds_total", Labels: labels,
				Kind: metrics.KindCounter, Value: snap.Sum(ph).Seconds()})
			emit(metrics.Sample{Name: "hear_gateway_phase_ops_total", Labels: labels,
				Kind: metrics.KindCounter, Value: float64(snap.Count(ph))})
		}
		// Degraded-round health, under stable names independent of the
		// hear_gateway_ StatsMap mapping (dashboards alert on these).
		emit(metrics.Sample{Name: "hear_rounds_degraded_total",
			Kind: metrics.KindCounter, Value: float64(s.roundsDegraded.Load())})
		emit(metrics.Sample{Name: "hear_participants_evicted_total",
			Kind: metrics.KindCounter, Value: float64(s.clientsEvicted.Load())})
	})
}

// ListenAndServe binds a TCP listener and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// Serve accepts connections from l until Close (or a listener error) and
// handles each on its own goroutine.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return ErrServerClosed
			default:
				return err
			}
		}
		s.connsAccepted.Add(1)
		s.mu.Lock()
		// Registration and Close's connection sweep exclude each other
		// under mu; a conn accepted after the sweep must be dropped here
		// or no one would ever close it (and Close's handler-drain would
		// wait forever).
		select {
		case <-s.closed:
			s.mu.Unlock()
			conn.Close()
			continue
		default:
		}
		s.conns[conn] = struct{}{}
		s.handlers.Add(1)
		s.mu.Unlock()
		go func() {
			defer s.handlers.Done()
			s.handle(conn)
		}()
	}
}

// Close stops the listeners, drops every connection (aborting in-flight
// rounds), and retires the worker pool.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		close(s.closed)
		s.mu.Lock()
		for l := range s.listeners {
			l.Close()
		}
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		// Drains still-queued folds inline, so every accepted task retires
		// and no round's completion accounting is left dangling.
		s.fold.Close()
		// Join the connection handlers: dropped conns poke every blocked
		// read and in-flight rounds fail closed, so this terminates — and
		// once it returns, nothing touches cfg.Logf or the metrics
		// registry again.
		s.handlers.Wait()
	})
	return nil
}

// foldChunk folds one pooled chunk into its round accumulator under the
// chunk's stripe lock, returns the block, and retires the task. The fold
// reads the chunk in place where the wire read landed (8-byte aligned at
// submitBase) — the ingress path never stages a copy.
func (s *Server) foldChunk(t *foldTask) {
	// A round that aborted while this task sat in the worker queue must not
	// be folded into: the accumulator may already have been handed to
	// nobody, but more importantly an aborted round's accounting only waits
	// for tasks to retire, not to execute. Drop the chunk, keep the
	// obligations (block back to the pool, task retired).
	if t.r.aborted() {
		s.pool.Put(t.block)
		t.r.taskDone()
		return
	}
	tm := s.phases.StartTimer(PhaseFold)
	acc := t.r.data
	f := t.fold
	if t.lane == LaneTag {
		acc = t.r.tags
	}
	m := t.r.stripe(t.off)
	m.Lock()
	f(acc[t.off:t.off+t.n], t.block[submitBase:submitBase+t.n])
	m.Unlock()
	tm.Stop()
	s.chunksFolded.Add(1)
	s.bytesFolded.Add(uint64(t.n))
	s.pool.Put(t.block)
	t.r.taskDone()
}

// assignCohort maps a connection to its cohort: the CohortBy override if
// set, then a static host pin, then an FNV-1a hash of the remote host —
// so a client's cohort is stable across reconnects and a fleet spreads
// evenly without coordination.
func (s *Server) assignCohort(conn net.Conn) int {
	if s.cfg.CohortBy != nil {
		if c := s.cfg.CohortBy(conn.RemoteAddr()); c >= 0 && c < s.cfg.Cohorts {
			return c
		}
		return 0
	}
	if s.cfg.Cohorts == 1 {
		return 0
	}
	addr := conn.RemoteAddr().String()
	host := addr
	if h, _, err := net.SplitHostPort(addr); err == nil {
		host = h
	}
	if c, ok := s.cfg.CohortStatic[host]; ok {
		return c
	}
	h := fnv.New32a()
	h.Write([]byte(host))
	return int(h.Sum32() % uint32(s.cfg.Cohorts))
}

// handle runs one connection: any number of HELLO→round cycles plus STATS
// queries, until the peer drops or violates the protocol.
func (s *Server) handle(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	for {
		t, plen, err := readFrameHeader(conn, s.cfg.MaxFrameBytes)
		if err != nil {
			var tooBig *ErrFrameTooLarge
			if errors.As(err, &tooBig) {
				s.framesRejected.Add(1)
				s.writeAbort(conn, &AbortError{Code: AbortOversize, Msg: tooBig.Error()})
			}
			return
		}
		// The payload is consumed by the branch below (or the connection
		// dies); account the whole frame here where its size is known.
		s.bytesIn.Add(uint64(frameHeaderBytes + plen))
		switch t {
		case FrameStatsReq:
			if err := discard(conn, plen); err != nil {
				return
			}
			s.statsServed.Add(1)
			if err := s.writeStats(conn); err != nil {
				return
			}
		case FrameHello:
			if plen != helloPayloadBytes && plen != helloPayloadBytesV2 {
				s.writeAbort(conn, &AbortError{Code: AbortProtocol, Msg: "malformed HELLO"})
				return
			}
			var p [helloPayloadBytesV2]byte
			if _, err := io.ReadFull(conn, p[:plen]); err != nil {
				return
			}
			h, err := decodeHello(p[:plen])
			if err != nil {
				s.writeAbort(conn, &AbortError{Code: AbortProtocol, Msg: err.Error()})
				return
			}
			if !s.serveRound(conn, h, s.assignCohort(conn)) {
				return
			}
		default:
			s.writeAbort(conn, &AbortError{Code: AbortProtocol, Msg: "expected HELLO or STATSREQ, got " + t.String()})
			return
		}
	}
}

// admit validates a HELLO against this gateway's configuration.
func (s *Server) admit(h helloFrame) *AbortError {
	if h.Version != ProtocolVersion && h.Version != ProtocolV1 {
		return &AbortError{Code: AbortVersion,
			Msg: fmt.Sprintf("client speaks protocol v%d, server v%d", h.Version, ProtocolVersion)}
	}
	folds, ok := laneFolds[h.Scheme]
	if !ok {
		return &AbortError{Code: AbortMismatch, Msg: fmt.Sprintf("unknown scheme %d", h.Scheme)}
	}
	if h.tagged() && folds.tag == nil {
		return &AbortError{Code: AbortMismatch,
			Msg: fmt.Sprintf("scheme %d does not support a tag lane", h.Scheme)}
	}
	if h.Elems <= 0 {
		return &AbortError{Code: AbortProtocol, Msg: fmt.Sprintf("non-positive vector length %d", h.Elems)}
	}
	if s.cfg.Elems > 0 && h.Elems != s.cfg.Elems {
		return &AbortError{Code: AbortMismatch,
			Msg: fmt.Sprintf("gateway aggregates %d-element vectors, client offered %d", s.cfg.Elems, h.Elems)}
	}
	lanes := 1
	if h.tagged() {
		lanes = 2
	}
	if resultBytes := frameHeaderBytes + 16 + h.Elems*8*lanes; resultBytes > s.cfg.MaxFrameBytes {
		return &AbortError{Code: AbortMismatch,
			Msg: fmt.Sprintf("RESULT frame (%d B) would exceed the %d B frame limit", resultBytes, s.cfg.MaxFrameBytes)}
	}
	return nil
}

// serveRound drives one admitted client through a round in its cohort. It
// reports whether the connection is still healthy enough to serve another
// HELLO.
func (s *Server) serveRound(conn net.Conn, h helloFrame, cohort int) bool {
	if aerr := s.admit(h); aerr != nil {
		s.writeAbort(conn, aerr)
		return false
	}
	folds := laneFolds[h.Scheme]
	r, part, created, aerr := s.rm.join(conn, roundParams{scheme: h.Scheme, elems: h.Elems, tagged: h.tagged()},
		h.Epoch, cohort, partMeta{version: h.Version, rank: h.Rank, degradedOK: h.degradedOK()})
	if aerr != nil {
		s.writeAbort(conn, aerr)
		return false
	}
	if created {
		s.roundsStarted.Add(1)
		s.activeRounds.Add(1)
		if s.cfg.Uplink != nil {
			go s.runCascade(r)
		}
	}
	s.clientsJoined.Add(1)

	// JOIN is an admission ticket into a *full* round: it is only written
	// once the membership has sealed, and the client seals (advancing its
	// collective key) only after reading it. A participant dying while the
	// round is still filling therefore frees its slot without anyone
	// having burned a key epoch; only post-fill losses abort globally, and
	// there the whole group re-seals in lockstep.
	if !s.awaitFull(conn, r, part) {
		return false
	}
	if r.aborted() {
		// Died before filling (deadline). The abort is retryable and the
		// client sealed nothing, so the conn may serve another HELLO.
		s.finishRound(conn, r, part)
		return true
	}
	join := joinFrame{
		Round:      r.id,
		Slot:       part.slot,
		Group:      r.group,
		DeadlineMS: uint32(time.Until(r.deadline).Milliseconds()),
		ChunkBytes: r.chunk,
		Epoch:      r.sealEpoch(),
	}
	if err := s.writeJoin(conn, join); err != nil {
		r.abort(AbortPeerLost, "slot %d unreachable at JOIN: %v", part.slot, err)
		s.finishRound(conn, r, part)
		return false
	}

	healthy := s.receiveLanes(conn, r, part, folds)
	s.finishRound(conn, r, part)
	if r.isEvicted(part) {
		// Straggler under a quorum policy: it got its ABORT, now it loses
		// the connection so the next round forms from live clients.
		s.clientsEvicted.Add(1)
		return false
	}
	// After an abort the framing may be mid-stream; a healthy client that
	// wants another round re-HELLOs on the same connection and the handler
	// resynchronizes or rejects — either way the conn outlives the round.
	return healthy
}

// joinProbeInterval is how often the JOIN-wait loop samples a pending
// participant's connection for early death or protocol violations.
const joinProbeInterval = 20 * time.Millisecond

// isTimeout reports whether err is a read-deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// awaitFull parks an admitted participant until its round's seal epoch is
// fixed (joinCh — at fill for flat rounds, after the upstream JOIN for
// federated ones) or the round ends (doneCh). A legal client sends nothing
// between HELLO and JOIN, so the wait probes the connection with short
// read deadlines: silence means alive, data is a protocol violation, and
// a dead connection frees the slot — a pre-fill death must not poison the
// round, because nothing has been sealed against it yet. It reports
// whether the handler should continue into the round (joinable or
// aborted); false means this connection is done for.
func (s *Server) awaitFull(conn net.Conn, r *roundState, part *participant) bool {
	var probe [1]byte
	for {
		select {
		case <-r.joinCh:
			conn.SetReadDeadline(time.Time{})
			return true
		case <-r.doneCh:
			conn.SetReadDeadline(time.Time{})
			return true
		default:
		}
		conn.SetReadDeadline(time.Now().Add(joinProbeInterval))
		n, err := conn.Read(probe[:])
		switch {
		case n > 0:
			// The client may write only after JOIN, which has not been
			// sent. Cut it loose; the round survives if its membership was
			// still open, and fails closed if it had just sealed (the
			// stream is unusable either way).
			if left, empty := r.leave(part); left {
				s.writeAbort(conn, &AbortError{Round: r.id, Code: AbortProtocol, Msg: "data before JOIN"})
				if empty {
					r.abort(AbortPeerLost, "round %d lost every participant before filling", r.id)
					s.finishRound(conn, r, part)
				}
				return false
			}
			r.abort(AbortProtocol, "slot %d sent data before JOIN", r.slotOf(part))
			s.finishRound(conn, r, part)
			return false
		case err == nil || isTimeout(err):
			// Silence: still waiting. (An abort's read-deadline poke also
			// lands here and is caught by the doneCh check next pass.)
		default:
			// The connection died. With the membership still open the slot
			// is freed so the round fills from live clients; if the round
			// sealed in the meantime it cannot proceed without this
			// participant — fail it closed for everyone.
			if left, empty := r.leave(part); left {
				if empty {
					r.abort(AbortPeerLost, "round %d lost every participant before filling", r.id)
					s.finishRound(conn, r, part)
				}
				return false
			}
			if !r.aborted() {
				r.abort(AbortPeerLost, "slot %d lost between fill and JOIN: %v", r.slotOf(part), err)
			}
			s.finishRound(conn, r, part)
			return false
		}
	}
}

// receiveLanes reads the participant's SUBMIT stream, folding chunks
// through the worker pool, until the participant has delivered every lane
// byte or the round fails. It reports whether the connection survived.
// The loop body is the server's ingress hot path and allocates nothing at
// steady state: frames land in pre-headered pooled blocks (chunk bytes
// 8-byte aligned at submitBase), dispatch rides pooled foldTasks, and
// every fmt call sits on a failure branch (BenchmarkWirePath pins this at
// 0 allocs/op).
func (s *Server) receiveLanes(conn net.Conn, r *roundState, part *participant, folds struct{ data, tag inc.Fold }) bool {
	ls := r.laneSize()
	degraded := r.degradedMode
	maxPayload := s.cfg.ChunkBytes + submitHeaderBytes
	for !part.submitted {
		t, plen, err := readFrameHeader(conn, s.cfg.MaxFrameBytes)
		if err != nil {
			if r.aborted() {
				return true // interrupted by the round's own abort poke
			}
			if r.isEvicted(part) {
				// Evicted at the deadline of a *degrading* round: the poke
				// interrupted this read, but the round itself is completing
				// over the survivors — it must not be aborted for a
				// straggler's account. finishRound delivers the eviction.
				return true
			}
			var tooBig *ErrFrameTooLarge
			if errors.As(err, &tooBig) {
				s.framesRejected.Add(1)
				r.abort(AbortOversize, "slot %d: %v", part.slot, err)
				return true // conn itself still healthy; the round is not
			}
			if degraded && r.markLost(part) {
				// A degraded round outlives a mid-submit disconnect: this
				// participant is cut, its stage discarded, and the deadline
				// resolves the round over whoever delivers.
				return false
			}
			r.abort(AbortPeerLost, "slot %d disconnected mid-submit: %v", part.slot, err)
			return false
		}
		s.bytesIn.Add(uint64(frameHeaderBytes + plen))
		if t == FrameSurvivors {
			// A leaf gateway declaring which ranks its submission covers
			// (federation). Read, validate, and attach to the participant
			// before its delivery completes.
			if !s.receiveSurvivors(conn, r, part, plen) {
				return true
			}
			continue
		}
		if t != FrameSubmit {
			r.abort(AbortProtocol, "slot %d sent %s during submission", part.slot, t)
			return true
		}
		if plen < submitHeaderBytes+1 || plen > maxPayload {
			r.abort(AbortProtocol, "slot %d chunk payload %d B outside (%d, %d]",
				part.slot, plen, submitHeaderBytes, maxPayload)
			return true
		}
		tm := s.phases.StartTimer(PhaseRecv)
		block := s.pool.GetWait()
		_, err = io.ReadFull(conn, block[submitPad:submitPad+plen])
		tm.Stop()
		if err != nil {
			s.pool.Put(block)
			if r.aborted() {
				return true
			}
			if r.isEvicted(part) {
				return true // poked out of a degrading round; see above
			}
			if degraded && r.markLost(part) {
				return false // see the header-read path above
			}
			r.abort(AbortPeerLost, "slot %d disconnected mid-chunk: %v", part.slot, err)
			return false
		}
		hd, err := decodeSubmitHeader(block[submitPad : submitPad+plen])
		n := plen - submitHeaderBytes
		bad := ""
		switch {
		case err != nil:
			bad = err.Error()
		case hd.Round != r.id:
			bad = fmt.Sprintf("chunk for round %d during round %d", hd.Round, r.id)
		case hd.Lane != LaneData && hd.Lane != LaneTag:
			bad = fmt.Sprintf("unknown lane %d", hd.Lane)
		case hd.Lane == LaneTag && !r.params.tagged:
			bad = "tag chunk in an untagged round"
		case hd.Offset+n > ls:
			bad = fmt.Sprintf("chunk [%d, %d) overruns the %d B lane", hd.Offset, hd.Offset+n, ls)
		case hd.Lane == LaneData && hd.Offset != part.dataGot:
			bad = fmt.Sprintf("data chunk at %d, expected %d (in-order)", hd.Offset, part.dataGot)
		case hd.Lane == LaneTag && hd.Offset != part.tagGot:
			bad = fmt.Sprintf("tag chunk at %d, expected %d (in-order)", hd.Offset, part.tagGot)
		}
		if bad != "" {
			s.pool.Put(block)
			r.abort(AbortProtocol, "slot %d: %s", part.slot, bad)
			return true
		}
		f := folds.data
		if hd.Lane == LaneTag {
			part.tagGot += n
			f = folds.tag
		} else {
			part.dataGot += n
		}
		if degraded {
			// Stage privately: the chunk reaches the shared accumulators
			// only if this participant delivers everything before the
			// deadline. An eviction mid-submit then simply discards the
			// stage — the in-place fold could never have un-folded it.
			lane := &part.lane
			if hd.Lane == LaneTag {
				lane = &part.tagLane
			}
			if *lane == nil {
				*lane = make([]byte, ls)
			}
			copy((*lane)[hd.Offset:hd.Offset+n], block[submitBase:submitBase+n])
			s.pool.Put(block)
		} else if r.taskAdded() {
			t := foldTasks.Get().(*foldTask)
			*t = foldTask{s: s, r: r, lane: hd.Lane, off: hd.Offset, n: n, block: block, fold: f}
			if !s.fold.SubmitTask(t) {
				// Server closing: retire the task ourselves so the round's
				// completion accounting stays balanced.
				s.pool.Put(block)
				r.taskDone()
				t.release()
			}
		} else {
			s.pool.Put(block) // round already over; drop the late chunk
		}
		if part.dataGot == ls && (!r.params.tagged || part.tagGot == ls) {
			if !degraded {
				r.submitted(part)
			} else if r.markDelivered(part) {
				s.foldStaged(r, part, folds)
				r.submitted(part)
			} else {
				// Round over or participant evicted between the last byte
				// and delivery: drop the stage unfolded.
				part.lane, part.tagLane = nil, nil
				return true
			}
		}
	}
	return true
}

// receiveSurvivors consumes a SURVIVORS frame during submission: a
// federation leaf naming the client ranks its (possibly degraded) cohort
// fold covers. It reports whether the submission loop should continue;
// false means the round was aborted here.
func (s *Server) receiveSurvivors(conn net.Conn, r *roundState, part *participant, plen int) bool {
	if plen < survivorsHeadBytes || plen > s.cfg.MaxFrameBytes-frameHeaderBytes {
		r.abort(AbortProtocol, "slot %d: malformed SURVIVORS (%d B)", part.slot, plen)
		return false
	}
	buf := make([]byte, plen)
	if _, err := io.ReadFull(conn, buf); err != nil {
		if !r.aborted() && !r.isEvicted(part) && !(r.degradedMode && r.markLost(part)) {
			r.abort(AbortPeerLost, "slot %d disconnected mid-SURVIVORS: %v", part.slot, err)
		}
		return false
	}
	sv, err := decodeSurvivors(buf)
	if err != nil {
		r.abort(AbortProtocol, "slot %d: %v", part.slot, err)
		return false
	}
	if sv.Round != r.id {
		r.abort(AbortProtocol, "slot %d: SURVIVORS for round %d during round %d", part.slot, sv.Round, r.id)
		return false
	}
	if !sv.Complete && !r.degradedMode {
		// A partial relay from below cannot be expressed without degraded
		// rounds enabled on this tier: the RESULT would silently misdescribe
		// a partial aggregate as complete.
		r.abort(AbortStraggler, "slot %d relayed a partial fold but degraded rounds are disabled here", part.slot)
		return false
	}
	r.mu.Lock()
	part.covers = sv.Ranks
	part.coversOK = sv.Complete
	r.mu.Unlock()
	return true
}

// foldStaged folds a delivered participant's staged lanes into the shared
// accumulators under the stripe locks, with the same accounting as the
// worker-pool path. Degraded rounds fold inline on the handler goroutine
// instead of dispatching to the pool: pool tasks cannot be recalled per
// participant, and eviction must guarantee a straggler's bytes never reach
// the accumulator.
func (s *Server) foldStaged(r *roundState, part *participant, folds struct{ data, tag inc.Fold }) {
	tm := s.phases.StartTimer(PhaseFold)
	foldLane := func(acc, lane []byte, f inc.Fold) {
		for off := 0; off < len(lane); off += r.chunk {
			n := len(lane) - off
			if n > r.chunk {
				n = r.chunk
			}
			m := r.stripe(off)
			m.Lock()
			f(acc[off:off+n], lane[off:off+n])
			m.Unlock()
			s.chunksFolded.Add(1)
			s.bytesFolded.Add(uint64(n))
		}
	}
	foldLane(r.data, part.lane, folds.data)
	if r.params.tagged {
		foldLane(r.tags, part.tagLane, folds.tag)
	}
	tm.Stop()
	part.lane, part.tagLane = nil, nil
}

// finishRound waits for the round outcome — including, for federated
// rounds, the upstream relay stage — and delivers RESULT or ABORT to this
// participant. It reports whether the round aborted.
func (s *Server) finishRound(conn net.Conn, r *roundState, part *participant) bool {
	waitTm := s.phases.StartTimer(PhaseWait)
	aerr := r.outcome()
	if aerr == nil && r.federated {
		// The local fold is a partial aggregate; the round's RESULT is
		// whatever the upstream tier reduces it into.
		aerr = r.relayOutcome()
	}
	waitTm.Stop()
	conn.SetReadDeadline(time.Time{}) // clear the abort poke, if any
	var surv []uint32
	if aerr == nil {
		surv = r.resultSurvivors()
	}
	r.endOnce.Do(func() {
		s.activeRounds.Add(-1)
		if aerr != nil {
			s.roundsAborted.Add(1)
			s.cfg.Logf("aggsvc: round %d aborted: %s: %s", r.id, aerr.Code, aerr.Msg)
		} else if surv != nil {
			s.roundsCompleted.Add(1)
			s.roundsDegraded.Add(1)
			s.cfg.Logf("aggsvc: round %d complete DEGRADED (%d survivor ranks, %d B lanes)",
				r.id, len(surv), r.laneSize())
		} else {
			s.roundsCompleted.Add(1)
			s.cfg.Logf("aggsvc: round %d complete (%d × %d B)", r.id, r.group, r.laneSize())
		}
	})
	if aerr != nil {
		s.writeAbort(conn, aerr)
		return true
	}
	if r.isEvicted(part) {
		// A straggler of a round that *completed* without it (degraded):
		// the round outcome is nil, but this participant's is the eviction.
		ev := r.evictionErr()
		if ev == nil {
			ev = &AbortError{Round: r.id, Code: AbortStraggler, Msg: "evicted at the deadline — retry"}
		}
		s.writeAbort(conn, ev)
		return true
	}
	if surv != nil && !part.degraded {
		// This survivor cannot open a partial aggregate (protocol v1, or no
		// rank-key derivation); a RESULT it would silently mis-open must
		// never leave the gateway. Retryable: the next round may complete
		// fully.
		s.writeAbort(conn, &AbortError{Round: r.id, Code: AbortStraggler,
			Msg: fmt.Sprintf("round %d degraded to %d survivor ranks; this client cannot open a partial aggregate — retry", r.id, len(surv))})
		return true
	}
	// Fan-out is copy-free: the round's lane prefixes are encoded exactly
	// once (resultVectors), and every participant's RESULT is one vectored
	// write referencing the same immutable accumulators — per-participant
	// cost is the 5-byte frame header plus iovec setup. A degraded RESULT
	// appends the shared survivor-set trailer as a fifth vector.
	sendTm := s.phases.StartTimer(PhaseSend)
	pre, data, tagN, tags, st := r.resultVectors()
	err := s.writeWithDeadline(conn, FrameResult, pre, data, tagN, tags, st)
	sendTm.Stop()
	if err != nil {
		s.cfg.Logf("aggsvc: round %d: result undeliverable: %v", r.id, err)
	}
	return false
}

func (s *Server) writeWithDeadline(conn net.Conn, t FrameType, payload ...[]byte) error {
	b := wireBufs.Get().(*wireBuf)
	err := s.writeBufWithDeadline(b, conn, t, payload...)
	wireBufs.Put(b)
	return err
}

func (s *Server) writeBufWithDeadline(b *wireBuf, conn net.Conn, t FrameType, payload ...[]byte) error {
	conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	defer conn.SetWriteDeadline(time.Time{})
	n := frameHeaderBytes
	for _, p := range payload {
		n += len(p)
	}
	s.bytesOut.Add(uint64(n))
	return b.writeFrame(conn, t, payload...)
}

// writeJoin emits a JOIN, staging the fixed payload in the pooled wireBuf
// so admission costs no per-participant allocation.
func (s *Server) writeJoin(conn net.Conn, j joinFrame) error {
	b := wireBufs.Get().(*wireBuf)
	putJoin(b.fixed[:joinPayloadBytes], j)
	err := s.writeBufWithDeadline(b, conn, FrameJoin, b.fixed[:joinPayloadBytes])
	wireBufs.Put(b)
	return err
}

func (s *Server) writeAbort(conn net.Conn, e *AbortError) {
	if err := s.writeWithDeadline(conn, FrameAbort, encodeAbort(e)); err != nil {
		s.cfg.Logf("aggsvc: abort undeliverable: %v", err)
	}
}

// StatsMap snapshots the gateway's counters: round and traffic totals,
// memory-pool behavior, and per-phase timings (phase_ns_*/phase_n_* pairs
// from internal/trace).
func (s *Server) StatsMap() map[string]uint64 {
	hits, misses, allocated := s.pool.Stats()
	m := map[string]uint64{
		"conns_accepted":   s.connsAccepted.Load(),
		"clients_joined":   s.clientsJoined.Load(),
		"rounds_started":   s.roundsStarted.Load(),
		"rounds_completed": s.roundsCompleted.Load(),
		"rounds_aborted":   s.roundsAborted.Load(),
		"clients_evicted":  s.clientsEvicted.Load(),
		"rounds_active":    uint64(s.activeRounds.Load()),
		"chunks_folded":    s.chunksFolded.Load(),
		"bytes_folded":     s.bytesFolded.Load(),
		"stats_served":     s.statsServed.Load(),
		"frames_rejected":  s.framesRejected.Load(),
		"bytes_in":         s.bytesIn.Load(),
		"bytes_out":        s.bytesOut.Load(),
		"cohorts":          uint64(s.cfg.Cohorts),
		"rounds_relayed":   s.roundsRelayed.Load(),
		"relay_failures":   s.relayFailures.Load(),
		"rounds_degraded":  s.roundsDegraded.Load(),
		"pool_hits":        hits,
		"pool_misses":      misses,
		"pool_blocks":      uint64(allocated),
		"pool_waits":       s.pool.Waits(),
	}
	snap := s.phases.Snapshot()
	for _, ph := range snap.Phases() {
		m["phase_ns_"+ph] = uint64(snap.Sum(ph).Nanoseconds())
		m["phase_n_"+ph] = uint64(snap.Count(ph))
	}
	return m
}

func (s *Server) writeStats(conn net.Conn) error {
	m := s.StatsMap()
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return s.writeWithDeadline(conn, FrameStats, encodeStats(m, keys))
}

func discard(r io.Reader, n int) error {
	_, err := io.CopyN(io.Discard, r, int64(n))
	return err
}
